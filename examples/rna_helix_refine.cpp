// RNA double-helix refinement: the paper's Helix workload end to end, with
// hierarchical decomposition and real multithreaded execution.
//
// Builds an 8-base-pair A-form helix, generates the five categories of
// distance constraints (plus reference-frame anchors), and compiles the
// problem with phmse::Engine — decomposition per the paper's Fig. 2, Eq.-1
// work model calibrated on this host, §4.3 schedule over the hardware
// threads — then refines a perturbed structure on a thread pool, writing
// before/after XYZ files.
#include <cstdio>
#include <fstream>
#include <thread>

#include "constraints/helix_gen.hpp"
#include "engine/engine.hpp"
#include "molecule/rna_helix.hpp"
#include "molecule/xyz_io.hpp"
#include "support/rng.hpp"

using namespace phmse;

int main() {
  // The molecule and its measurements.
  const mol::HelixModel model = mol::build_helix(8);
  cons::HelixNoise noise;
  noise.anchor_first_pair = true;  // pin the global frame
  const cons::ConstraintSet data =
      cons::generate_helix_constraints(model, noise);
  std::printf("helix: %lld bp, %lld atoms, %lld constraints\n",
              static_cast<long long>(model.num_pairs()),
              static_cast<long long>(model.num_atoms()),
              static_cast<long long>(data.size()));

  // Compile: Fig.-2 decomposition, constraint assignment, host-calibrated
  // Eq.-1 work model, and a §4.3 schedule over the hardware threads — all
  // observation-independent, all done once.
  const int threads =
      static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  engine::Problem problem = engine::Problem::custom(
      model.topology.size(), data,
      [&model] { return core::build_helix_hierarchy(model); });
  engine::CompileOptions copts;
  copts.solve.prior_sigma = 0.5;
  copts.solve.max_cycles = 20;
  copts.solve.tolerance = 0.02;
  copts.processors = threads;
  copts.calibrate_work_model = true;  // measure Eq. 1 on this host
  engine::Plan plan = Engine::compile(problem, copts);
  std::printf("hierarchy: %lld nodes, depth %lld\n",
              static_cast<long long>(plan.hierarchy().num_nodes()),
              static_cast<long long>(plan.hierarchy().depth()));
  std::printf("compiled in %.1f ms (calibration %.1f ms) for %d "
              "processor(s)\n",
              plan.timings().total_seconds * 1e3,
              plan.timings().calibrate_seconds * 1e3, plan.processors());

  Rng rng(7);
  linalg::Vector initial = model.topology.true_state();
  for (auto& v : initial) v += rng.gaussian(0.0, 0.5);
  std::printf("initial RMSD to truth: %.3f A\n",
              model.topology.rmsd_to_truth(initial));

  {
    std::ofstream f("helix_initial.xyz");
    mol::write_xyz(f, model.topology, initial, "perturbed initial estimate");
  }

  par::ThreadPool pool(threads);
  const engine::Result result = plan.solve(pool, initial);
  std::printf("solved on %d thread(s) in %.2f s wall, %d cycles "
              "(converged: %s)\n",
              threads, result.seconds, result.cycles,
              result.converged ? "yes" : "no");

  std::printf("final RMSD to truth:  %.3f A\n",
              model.topology.rmsd_to_truth(result.posterior().x));
  std::printf("constraint RMS residual: %.3f -> %.3f\n",
              cons::rms_residual(data, model.topology, initial),
              cons::rms_residual(data, model.topology,
                                 result.posterior().x));

  {
    std::ofstream f("helix_refined.xyz");
    mol::write_xyz(f, model.topology, result.posterior().x,
                   "refined estimate");
  }
  std::printf("wrote helix_initial.xyz and helix_refined.xyz\n");
  return 0;
}
