// RNA double-helix refinement: the paper's Helix workload end to end, with
// hierarchical decomposition and real multithreaded execution.
//
// Builds an 8-base-pair A-form helix, generates the five categories of
// distance constraints (plus reference-frame anchors), decomposes it per
// the paper's Fig. 2, schedules the hierarchy over the host's threads, and
// refines a perturbed structure, writing before/after XYZ files.
#include <cstdio>
#include <fstream>
#include <thread>

#include "constraints/helix_gen.hpp"
#include "core/assign.hpp"
#include "core/hier_solver.hpp"
#include "core/schedule.hpp"
#include "core/work_model.hpp"
#include "molecule/rna_helix.hpp"
#include "molecule/xyz_io.hpp"
#include "support/rng.hpp"
#include "support/stopwatch.hpp"

using namespace phmse;

int main() {
  // The molecule and its measurements.
  const mol::HelixModel model = mol::build_helix(8);
  cons::HelixNoise noise;
  noise.anchor_first_pair = true;  // pin the global frame
  const cons::ConstraintSet data =
      cons::generate_helix_constraints(model, noise);
  std::printf("helix: %lld bp, %lld atoms, %lld constraints\n",
              static_cast<long long>(model.num_pairs()),
              static_cast<long long>(model.num_atoms()),
              static_cast<long long>(data.size()));

  // Hierarchical decomposition (paper Fig. 2) and constraint assignment.
  core::Hierarchy hierarchy = core::build_helix_hierarchy(model);
  const core::AssignStats stats = core::assign_constraints(hierarchy, data);
  std::printf("hierarchy: %lld nodes, depth %lld; %lld constraints on "
              "leaves, %lld at the root\n",
              static_cast<long long>(hierarchy.num_nodes()),
              static_cast<long long>(hierarchy.depth()),
              static_cast<long long>(stats.on_leaves),
              static_cast<long long>(stats.per_level[0]));

  // Schedule over the host's hardware threads and solve in parallel.
  const int threads =
      std::max(1u, std::thread::hardware_concurrency());
  core::estimate_work(hierarchy, core::WorkModel{}, 16);
  core::assign_processors(hierarchy, threads);

  Rng rng(7);
  linalg::Vector initial = model.topology.true_state();
  for (auto& v : initial) v += rng.gaussian(0.0, 0.5);
  std::printf("initial RMSD to truth: %.3f A\n",
              model.topology.rmsd_to_truth(initial));

  {
    std::ofstream f("helix_initial.xyz");
    mol::write_xyz(f, model.topology, initial, "perturbed initial estimate");
  }

  par::ThreadPool pool(threads);
  core::HierSolveOptions opts;
  opts.prior_sigma = 0.5;
  opts.max_cycles = 20;
  opts.tolerance = 0.02;
  Stopwatch sw;
  const core::HierSolveResult result =
      core::solve_hierarchical_threaded(hierarchy, initial, opts, pool);
  std::printf("solved on %d thread(s) in %.2f s wall, %d cycles "
              "(converged: %s)\n",
              threads, sw.seconds(), result.cycles,
              result.converged ? "yes" : "no");

  std::printf("final RMSD to truth:  %.3f A\n",
              model.topology.rmsd_to_truth(result.state.x));
  std::printf("constraint RMS residual: %.3f -> %.3f\n",
              cons::rms_residual(data, model.topology, initial),
              cons::rms_residual(data, model.topology, result.state.x));

  {
    std::ofstream f("helix_refined.xyz");
    mol::write_xyz(f, model.topology, result.state.x, "refined estimate");
  }
  std::printf("wrote helix_initial.xyz and helix_refined.xyz\n");
  return 0;
}
