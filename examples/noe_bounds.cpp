// Non-Gaussian data: structure determination from NOE-style distance
// *bounds* and outlier-prone measurements.
//
// Real NMR distance data arrives as intervals (NOE intensity classes map
// to "these protons are 1.8-2.7 A apart") and occasionally as outright
// misassignments.  The paper's framework handles both through its
// non-Gaussian extension (reference [2]); this example runs a small helix
// with (a) interval constraints instead of exact distances and (b) a
// slab-and-spike mixture model protecting against planted outliers.
#include <cstdio>
#include <vector>

#include "constraints/helix_gen.hpp"
#include "estimation/analysis.hpp"
#include "estimation/nongaussian.hpp"
#include "estimation/update.hpp"
#include "molecule/rna_helix.hpp"
#include "support/rng.hpp"

using namespace phmse;

int main() {
  const mol::HelixModel model = mol::build_helix(4);
  const mol::Topology& topo = model.topology;
  Rng rng(11);

  // --- Data synthesis -----------------------------------------------------
  // NOE-style bounds: for every category-4/5 contact, only an interval is
  // known.  Intra-base geometry stays as precise Gaussian bond data, plus
  // frame anchors.
  cons::HelixNoise noise;
  noise.anchor_first_pair = true;
  const cons::ConstraintSet full =
      cons::generate_helix_constraints(model, noise);

  // Intra-base geometry (categories 0-3: anchors + general chemistry)
  // remains precise Gaussian data; every cross-base distance (categories
  // 4-5, the experimentally measured ones) becomes an NOE interval
  // bracketing the true distance.
  cons::ConstraintSet gaussians;
  std::vector<est::BoundConstraint> bounds;
  for (const cons::Constraint& c : full.all()) {
    if (c.category <= 3) {
      gaussians.add(c);
      continue;
    }
    const double true_d = mol::distance(topo.atom(c.atoms[0]).position,
                                        topo.atom(c.atoms[1]).position);
    est::BoundConstraint b;
    b.kind = cons::Kind::kDistance;
    b.atoms = c.atoms;
    b.lower = std::max(0.0, true_d - 0.5);
    b.upper = true_d + 0.5;
    b.tail_sigma = 0.15;
    bounds.push_back(b);
  }
  std::printf("data: %lld Gaussian constraints, %zu NOE-style bounds\n",
              static_cast<long long>(gaussians.size()), bounds.size());

  // A few poisoned long-range measurements with 15%% misassignment rate,
  // modeled with a slab-and-spike mixture.
  std::vector<est::MixtureConstraint> contacts;
  for (Index p = 0; p + 1 < model.num_pairs(); ++p) {
    const Index i = model.pairs[static_cast<std::size_t>(p)].strand1
                        .sidechain_begin;
    const Index j = model.pairs[static_cast<std::size_t>(p + 1)].strand2
                        .sidechain_begin;
    const double true_d =
        mol::distance(topo.atom(i).position, topo.atom(j).position);
    est::MixtureConstraint mc;
    mc.geometry.kind = cons::Kind::kDistance;
    mc.geometry.atoms = {i, j, 0, 0};
    // Plant one outlier: the first contact reports nonsense.
    mc.geometry.observed = p == 0 ? true_d + 6.0
                                  : true_d + rng.gaussian(0.0, 0.1);
    mc.noise = {{0.85, 0.0, 0.1}, {0.15, 0.0, 5.0}};
    contacts.push_back(mc);
  }
  std::printf("      %zu long-range contacts (first one is a planted "
              "outlier)\n",
              contacts.size());

  // --- Refinement ---------------------------------------------------------
  Rng prng(12);
  est::NodeState state = est::make_initial_state(
      topo, 0, topo.size(), /*prior_sigma=*/0.5, /*perturb_sigma=*/0.4, prng);
  std::printf("initial RMSD: %.3f A\n", topo.rmsd_to_truth(state.x));

  par::SerialContext ctx;
  est::BatchUpdater gaussian_updater;
  est::NonGaussianUpdater ng;
  for (int cycle = 0; cycle < 25; ++cycle) {
    state.reset_covariance(0.5);
    gaussian_updater.apply_all(ctx, state, gaussians, 16);
    ng.apply_bounds(ctx, state, bounds);
    for (const auto& mc : contacts) ng.apply_mixture(ctx, state, mc);
  }
  std::printf("final RMSD:   %.3f A (interval data of width 1.0 A "
              "determines the fold only to\n              interval "
              "precision — satisfaction of the bounds is the real "
              "criterion)\n",
              topo.rmsd_to_truth(state.x));

  // How many bounds does the refined structure satisfy?
  Index satisfied = 0;
  const auto pos = topo.positions_from_state(state.x);
  for (const auto& b : bounds) {
    const double d = mol::distance(pos[static_cast<std::size_t>(b.atoms[0])],
                                   pos[static_cast<std::size_t>(b.atoms[1])]);
    if (d >= b.lower - 0.1 && d <= b.upper + 0.1) ++satisfied;
  }
  std::printf("bounds satisfied: %lld / %zu\n",
              static_cast<long long>(satisfied), bounds.size());

  // The planted outlier must not have dragged its atoms away: check the
  // residual of the poisoned contact vs a clean one.
  const auto check = [&](const est::MixtureConstraint& mc) {
    const double d =
        mol::distance(pos[static_cast<std::size_t>(mc.geometry.atoms[0])],
                      pos[static_cast<std::size_t>(mc.geometry.atoms[1])]);
    return mc.geometry.observed - d;
  };
  std::printf("poisoned contact residual: %.2f A (the filter rejected it); "
              "clean contact residual: %.2f A\n",
              check(contacts[0]), check(contacts[1]));

  std::printf("\n%s", est::uncertainty_report(state, topo, 3).c_str());
  return 0;
}
