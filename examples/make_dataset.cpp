// make_dataset: exports the paper's reconstructed workloads as plain files
// (XYZ structure + constraint list) for use with phmse_solve or external
// tools.
//
// Usage:
//   make_dataset helix <base_pairs> <out_prefix> [--perturb S] [--anchors]
//   make_dataset ribo30s <out_prefix> [--perturb S]
//
// Writes <out_prefix>.xyz (the perturbed starting structure), <out_prefix>
// _truth.xyz (the ground truth, for scoring) and <out_prefix>.constraints.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "constraints/helix_gen.hpp"
#include "constraints/io.hpp"
#include "constraints/ribo_gen.hpp"
#include "molecule/ribo30s.hpp"
#include "molecule/rna_helix.hpp"
#include "molecule/xyz_io.hpp"
#include "support/rng.hpp"

using namespace phmse;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: make_dataset helix <base_pairs> <out_prefix> "
               "[--perturb S] [--anchors]\n"
               "       make_dataset ribo30s <out_prefix> [--perturb S]\n");
  return 2;
}

void write_files(const mol::Topology& topo, const cons::ConstraintSet& set,
                 const std::string& prefix, double perturb,
                 const std::string& what) {
  Rng rng(77);
  linalg::Vector start = topo.true_state();
  for (auto& v : start) v += rng.gaussian(0.0, perturb);

  {
    std::ofstream f(prefix + ".xyz");
    PHMSE_CHECK(f.good(), "cannot write " + prefix + ".xyz");
    mol::write_xyz(f, topo, start, what + " — perturbed start");
  }
  {
    std::ofstream f(prefix + "_truth.xyz");
    PHMSE_CHECK(f.good(), "cannot write " + prefix + "_truth.xyz");
    mol::write_xyz(f, topo, what + " — ground truth");
  }
  {
    std::ofstream f(prefix + ".constraints");
    PHMSE_CHECK(f.good(), "cannot write " + prefix + ".constraints");
    cons::write_constraints(f, set, what);
  }
  std::printf("wrote %s.xyz, %s_truth.xyz, %s.constraints (%lld atoms, "
              "%lld constraints)\n",
              prefix.c_str(), prefix.c_str(), prefix.c_str(),
              static_cast<long long>(topo.size()),
              static_cast<long long>(set.size()));
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string kind = argv[1];
  double perturb = 0.3;
  bool anchors = false;
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--perturb") == 0 && i + 1 < argc) {
      perturb = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--anchors") == 0) {
      anchors = true;
    }
  }

  try {
    if (kind == "helix") {
      if (argc < 4) return usage();
      const Index length = std::atol(argv[2]);
      const std::string prefix = argv[3];
      const mol::HelixModel model = mol::build_helix(length);
      cons::HelixNoise noise;
      noise.anchor_first_pair = anchors;
      const cons::ConstraintSet set =
          cons::generate_helix_constraints(model, noise);
      write_files(model.topology, set, prefix,
                  perturb, "RNA double helix, " +
                               std::to_string(length) + " bp");
    } else if (kind == "ribo30s") {
      const std::string prefix = argv[2];
      const mol::Ribo30sModel model = mol::build_ribo30s();
      const cons::ConstraintSet set = cons::generate_ribo_constraints(model);
      write_files(model.topology, set, prefix, perturb,
                  "synthetic 30S ribosomal subunit");
    } else {
      return usage();
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
