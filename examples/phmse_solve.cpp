// phmse_solve: the command-line face of the library.
//
// Reads an initial structure (XYZ) and a measurement file (see
// src/constraints/io.hpp), estimates the structure, and writes the refined
// XYZ plus an uncertainty report.
//
// Usage:
//   phmse_solve <structure.xyz> <constraints.txt> [options]
//     --out FILE      refined structure output (default: refined.xyz)
//     --cycles N      maximum cycles (default 30)
//     --tol T         convergence tolerance in A RMS (default 0.01)
//     --prior S       prior/damping sigma in A (default 1.0)
//     --batch M       constraint batch dimension (default 16)
//     --threads T     worker threads (default: hardware)
//     --flat          disable the hierarchical decomposition
//     --leaf N        target leaf size for auto-decomposition (default 16)
//
// Without --flat, the molecule is decomposed automatically by partitioning
// the constraint graph (paper Section 5), scheduled across the threads
// (Section 4.3), and solved hierarchically.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <thread>

#include "constraints/io.hpp"
#include "core/graph_partition.hpp"
#include "engine/engine.hpp"
#include "estimation/analysis.hpp"
#include "estimation/residuals.hpp"
#include "molecule/xyz_io.hpp"
#include "support/stopwatch.hpp"

using namespace phmse;

namespace {

struct Options {
  std::string structure;
  std::string constraints;
  std::string out = "refined.xyz";
  int cycles = 30;
  double tol = 0.01;
  double prior = 1.0;
  Index batch = 16;
  int threads = 0;
  bool flat = false;
  Index leaf = 16;
};

int usage() {
  std::fprintf(stderr,
               "usage: phmse_solve <structure.xyz> <constraints.txt> "
               "[--out FILE] [--cycles N]\n"
               "                   [--tol T] [--prior S] [--batch M] "
               "[--threads T] [--flat] [--leaf N]\n");
  return 2;
}

bool parse_args(int argc, char** argv, Options& o) {
  if (argc < 3) return false;
  o.structure = argv[1];
  o.constraints = argv[2];
  for (int i = 3; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", what);
        return nullptr;
      }
      return argv[++i];
    };
    if (a == "--flat") {
      o.flat = true;
    } else if (a == "--out") {
      const char* v = next("--out");
      if (v == nullptr) return false;
      o.out = v;
    } else if (a == "--cycles") {
      const char* v = next("--cycles");
      if (v == nullptr) return false;
      o.cycles = std::atoi(v);
    } else if (a == "--tol") {
      const char* v = next("--tol");
      if (v == nullptr) return false;
      o.tol = std::atof(v);
    } else if (a == "--prior") {
      const char* v = next("--prior");
      if (v == nullptr) return false;
      o.prior = std::atof(v);
    } else if (a == "--batch") {
      const char* v = next("--batch");
      if (v == nullptr) return false;
      o.batch = std::atol(v);
    } else if (a == "--threads") {
      const char* v = next("--threads");
      if (v == nullptr) return false;
      o.threads = std::atoi(v);
    } else if (a == "--leaf") {
      const char* v = next("--leaf");
      if (v == nullptr) return false;
      o.leaf = std::atol(v);
    } else {
      std::fprintf(stderr, "unknown option %s\n", a.c_str());
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) return usage();

  try {
    std::ifstream sf(opt.structure);
    PHMSE_CHECK(sf.good(), "cannot open structure file: " + opt.structure);
    const mol::Topology topo = mol::read_xyz(sf);
    const cons::ConstraintSet data =
        cons::read_constraints_file(opt.constraints, topo.size());
    std::printf("structure: %lld atoms; data: %lld constraints\n",
                static_cast<long long>(topo.size()),
                static_cast<long long>(data.size()));

    const linalg::Vector x0 = topo.true_state();  // file positions = start
    est::NodeState result;
    int cycles = 0;
    bool converged = false;
    Stopwatch sw;

    engine::CompileOptions copts;
    copts.solve.batch_size = opt.batch;
    copts.solve.max_cycles = opt.cycles;
    copts.solve.tolerance = opt.tol;
    copts.solve.prior_sigma = opt.prior;

    if (opt.flat) {
      engine::Plan plan =
          Engine::compile(engine::Problem::flat(topo.size(), data), copts);
      const engine::Result r = plan.solve(x0);
      cycles = r.cycles;
      converged = r.converged;
      result = r.posterior();
    } else {
      // Decompose by partitioning the constraint graph; the constraints
      // and the state are remapped into partition order, so the engine
      // sees the REMAPPED problem and the answer is mapped back below.
      core::GraphPartitionOptions gpo;
      gpo.max_leaf_atoms = opt.leaf;
      core::Decomposition d =
          core::decompose_by_graph_partition(topo.size(), data, gpo);
      const cons::ConstraintSet remapped =
          core::remap_constraints(data, d.rank);

      const int threads =
          opt.threads > 0
              ? opt.threads
              : static_cast<int>(
                    std::max(1u, std::thread::hardware_concurrency()));
      engine::Problem problem = engine::Problem::custom(
          topo.size(), remapped, [&topo, &data, &gpo] {
            return core::decompose_by_graph_partition(topo.size(), data, gpo)
                .hierarchy;
          });
      copts.processors = threads;
      engine::Plan plan = Engine::compile(problem, copts);
      std::printf("decomposition: %lld nodes, depth %lld, %d thread(s)\n",
                  static_cast<long long>(plan.hierarchy().num_nodes()),
                  static_cast<long long>(plan.hierarchy().depth()), threads);

      par::ThreadPool pool(threads);
      const engine::Result r =
          plan.solve(pool, core::remap_state(x0, d.order));
      cycles = r.cycles;
      converged = r.converged;

      // Back to the input atom order (covariance diagonal blocks follow).
      const est::NodeState& solved = r.posterior();
      result.atom_begin = 0;
      result.atom_end = topo.size();
      result.x = core::unmap_state(solved.x, d.order);
      result.c.resize_zero(3 * topo.size(), 3 * topo.size());
      for (Index new_a = 0; new_a < topo.size(); ++new_a) {
        const Index old_a = d.order[static_cast<std::size_t>(new_a)];
        for (Index new_b = 0; new_b < topo.size(); ++new_b) {
          const Index old_b = d.order[static_cast<std::size_t>(new_b)];
          for (int i = 0; i < 3; ++i) {
            for (int j = 0; j < 3; ++j) {
              result.c(3 * old_a + i, 3 * old_b + j) =
                  solved.c(3 * new_a + i, 3 * new_b + j);
            }
          }
        }
      }
    }

    std::printf("solved in %.2f s, %d cycle(s), converged: %s\n",
                sw.seconds(), cycles, converged ? "yes" : "no");
    std::printf("RMS residual at solution: %.4f\n",
                cons::rms_residual(data, topo, result.x));

    std::ofstream of(opt.out);
    PHMSE_CHECK(of.good(), "cannot open output file: " + opt.out);
    mol::write_xyz(of, topo, result.x, "refined by phmse_solve");
    std::printf("wrote %s\n\n", opt.out.c_str());
    std::printf("%s\n", est::uncertainty_report(result, topo, 5).c_str());
    std::printf("%s", est::residual_report(result, data, 5).c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
