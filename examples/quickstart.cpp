// Quickstart: estimate the structure of a tiny molecule from noisy
// distance measurements, and read out the uncertainty of the answer.
//
// This walks the whole public API in ~80 lines:
//   1. describe the atoms (a Topology),
//   2. state what was measured (a ConstraintSet),
//   3. pick an initial estimate (x, C),
//   4. run the iterated update procedure (solve_flat),
//   5. inspect the refined coordinates and their variances.
#include <cstdio>

#include "constraints/set.hpp"
#include "estimation/solver.hpp"
#include "molecule/topology.hpp"
#include "support/rng.hpp"

using namespace phmse;

int main() {
  // 1. A four-atom "molecule" shaped like a zig-zag chain.  The positions
  //    here are the ground truth used to synthesize noisy measurements;
  //    the estimator never sees them directly.
  mol::Topology topo;
  topo.add_atom("A", {0.0, 0.0, 0.0});
  topo.add_atom("B", {1.5, 0.0, 0.0});
  topo.add_atom("C", {2.3, 1.2, 0.0});
  topo.add_atom("D", {3.8, 1.3, 0.2});

  // 2. Measurements: every pairwise distance several times (as a wet-lab
  //    experiment would repeat it), a bond angle and a torsion from general
  //    chemistry, plus position anchors on atoms A and B.  Distances alone
  //    determine a structure only up to rigid motion and reflection; the
  //    anchors pin the frame and the torsion breaks the mirror ambiguity.
  //    Three non-collinear anchors are needed: with only A and B pinned the
  //    molecule could still spin freely about the A-B axis.
  Rng rng(2024);
  cons::ConstraintSet data;
  for (int repeat = 0; repeat < 5; ++repeat) {
    for (Index i = 0; i < topo.size(); ++i) {
      for (Index j = i + 1; j < topo.size(); ++j) {
        data.add(cons::make_observed(cons::Kind::kDistance, {i, j, 0, 0},
                                     topo, /*sigma=*/0.05, rng));
      }
    }
  }
  data.add(cons::make_observed(cons::Kind::kAngle, {0, 1, 2, 0}, topo,
                               /*sigma=*/0.02, rng));
  data.add(cons::make_observed(cons::Kind::kTorsion, {0, 1, 2, 3}, topo,
                               /*sigma=*/0.02, rng));
  for (Index atom : {Index{0}, Index{1}, Index{2}}) {
    for (int axis = 0; axis < 3; ++axis) {
      data.add(cons::make_observed(cons::Kind::kPosition, {atom, 0, 0, 0},
                                   topo, /*sigma=*/0.02, rng, /*category=*/0,
                                   axis));
    }
  }
  std::printf("measurements: %lld scalar constraints\n",
              static_cast<long long>(data.size()));

  // 3. Initial estimate: the truth shaken by 0.4 A per coordinate, with a
  //    spherical prior.
  est::NodeState estimate =
      est::make_initial_state(topo, 0, topo.size(), /*prior_sigma=*/0.8,
                              /*perturb_sigma=*/0.4, rng);
  std::printf("initial RMSD to truth: %.3f A\n",
              topo.rmsd_to_truth(estimate.x));

  // 4. Iterate cycles of the update procedure until the estimate settles.
  par::SerialContext ctx;
  est::SolveOptions opts;
  opts.batch_size = 8;
  opts.max_cycles = 60;
  opts.prior_sigma = 0.8;
  opts.tolerance = 1e-3;
  const est::SolveResult result = est::solve_flat(ctx, estimate, data, opts);
  std::printf("solved in %d cycles (converged: %s)\n", result.cycles,
              result.converged ? "yes" : "no");

  // 5. Results: coordinates and their standard deviations from the
  //    covariance diagonal.
  std::printf("final RMSD to truth:  %.3f A\n\n",
              topo.rmsd_to_truth(estimate.x));
  std::printf("%-4s %22s %28s\n", "atom", "estimated position",
              "marginal std-dev (x y z)");
  for (Index a = 0; a < topo.size(); ++a) {
    const mol::Vec3 pos = estimate.position(a);
    std::printf("%-4s (%6.3f %6.3f %6.3f)    (%.4f %.4f %.4f)\n",
                topo.atom(a).label.c_str(), pos.x, pos.y, pos.z,
                std::sqrt(estimate.c(3 * a + 0, 3 * a + 0)),
                std::sqrt(estimate.c(3 * a + 1, 3 * a + 1)),
                std::sqrt(estimate.c(3 * a + 2, 3 * a + 2)));
  }
  std::printf("\nNote how atom A (anchored) has tiny variances while the "
              "chain end D, constrained\nonly through distances, is the "
              "least certain — the covariance output is the point\nof the "
              "method, not just the coordinates.\n");
  return 0;
}
