// Quickstart: estimate the structure of a tiny molecule from noisy
// distance measurements, and read out the uncertainty of the answer.
//
// This walks the whole public API in ~80 lines:
//   1. describe the atoms (a Topology),
//   2. state what was measured (a ConstraintSet),
//   3. pick an initial estimate,
//   4. compile the problem once (phmse::Engine) and solve it,
//   5. inspect the refined coordinates and their variances,
//   6. re-solve the same plan — the compiled artifact is reusable.
#include <cstdio>

#include "constraints/set.hpp"
#include "engine/engine.hpp"
#include "estimation/solver.hpp"
#include "molecule/topology.hpp"
#include "support/rng.hpp"

using namespace phmse;

int main() {
  // 1. A four-atom "molecule" shaped like a zig-zag chain.  The positions
  //    here are the ground truth used to synthesize noisy measurements;
  //    the estimator never sees them directly.
  mol::Topology topo;
  topo.add_atom("A", {0.0, 0.0, 0.0});
  topo.add_atom("B", {1.5, 0.0, 0.0});
  topo.add_atom("C", {2.3, 1.2, 0.0});
  topo.add_atom("D", {3.8, 1.3, 0.2});

  // 2. Measurements: every pairwise distance several times (as a wet-lab
  //    experiment would repeat it), a bond angle and a torsion from general
  //    chemistry, plus position anchors on atoms A and B.  Distances alone
  //    determine a structure only up to rigid motion and reflection; the
  //    anchors pin the frame and the torsion breaks the mirror ambiguity.
  //    Three non-collinear anchors are needed: with only A and B pinned the
  //    molecule could still spin freely about the A-B axis.
  Rng rng(2024);
  cons::ConstraintSet data;
  for (int repeat = 0; repeat < 5; ++repeat) {
    for (Index i = 0; i < topo.size(); ++i) {
      for (Index j = i + 1; j < topo.size(); ++j) {
        data.add(cons::make_observed(cons::Kind::kDistance, {i, j, 0, 0},
                                     topo, /*sigma=*/0.05, rng));
      }
    }
  }
  data.add(cons::make_observed(cons::Kind::kAngle, {0, 1, 2, 0}, topo,
                               /*sigma=*/0.02, rng));
  data.add(cons::make_observed(cons::Kind::kTorsion, {0, 1, 2, 3}, topo,
                               /*sigma=*/0.02, rng));
  for (Index atom : {Index{0}, Index{1}, Index{2}}) {
    for (int axis = 0; axis < 3; ++axis) {
      data.add(cons::make_observed(cons::Kind::kPosition, {atom, 0, 0, 0},
                                   topo, /*sigma=*/0.02, rng, /*category=*/0,
                                   axis));
    }
  }
  std::printf("measurements: %lld scalar constraints\n",
              static_cast<long long>(data.size()));

  // 3. Initial estimate: the truth shaken by 0.4 A per coordinate.
  linalg::Vector x0 = topo.true_state();
  for (auto& v : x0) v += rng.gaussian(0.0, 0.4);
  std::printf("initial RMSD to truth: %.3f A\n", topo.rmsd_to_truth(x0));

  // 4. Compile once, solve.  A four-atom molecule needs no decomposition,
  //    so Problem::flat (one node) is the right recipe; larger molecules
  //    use Problem::bisection or a custom hierarchy (see the other
  //    examples).  Everything observation-independent — decomposition,
  //    constraint assignment, workspace sizing — happens inside compile();
  //    solve() just runs numbers through the plan.
  engine::Problem problem =
      engine::Problem::flat(topo.size(), data);
  engine::CompileOptions copts;
  copts.solve.batch_size = 8;
  copts.solve.max_cycles = 60;
  copts.solve.prior_sigma = 0.8;
  copts.solve.tolerance = 1e-3;
  engine::Plan plan = Engine::compile(problem, copts);
  const engine::Result result = plan.solve(x0);
  const est::NodeState& estimate = result.posterior();
  std::printf("solved in %d cycles (converged: %s)\n", result.cycles,
              result.converged ? "yes" : "no");

  // 5. Results: coordinates and their standard deviations from the
  //    covariance diagonal.
  std::printf("final RMSD to truth:  %.3f A\n\n",
              topo.rmsd_to_truth(estimate.x));
  std::printf("%-4s %22s %28s\n", "atom", "estimated position",
              "marginal std-dev (x y z)");
  for (Index a = 0; a < topo.size(); ++a) {
    const mol::Vec3 pos = estimate.position(a);
    std::printf("%-4s (%6.3f %6.3f %6.3f)    (%.4f %.4f %.4f)\n",
                topo.atom(a).label.c_str(), pos.x, pos.y, pos.z,
                std::sqrt(estimate.c(3 * a + 0, 3 * a + 0)),
                std::sqrt(estimate.c(3 * a + 1, 3 * a + 1)),
                std::sqrt(estimate.c(3 * a + 2, 3 * a + 2)));
  }
  std::printf("\nNote how atom A (anchored) has tiny variances while the "
              "chain end D, constrained\nonly through distances, is the "
              "least certain — the covariance output is the point\nof the "
              "method, not just the coordinates.\n");

  // 6. The plan is a reusable artifact: solve again (new starting point,
  //    same measurements) without recompiling.  After the first solve the
  //    serial path re-uses every workspace — no heap allocation.
  linalg::Vector x1 = topo.true_state();
  for (auto& v : x1) v += rng.gaussian(0.0, 0.4);
  const engine::Result again = plan.solve(x1);
  std::printf("\nre-solved the compiled plan from a new start: %d cycles, "
              "RMSD %.3f A\n", again.cycles,
              topo.rmsd_to_truth(again.posterior().x));
  return 0;
}
