// Automatic decomposition of a user-defined molecule.
//
// The paper requires the user to supply the structure hierarchy, with a
// recursive-bisection fallback, and sketches a bottom-up alternative
// (Section 5).  This example builds an artificial two-domain chain
// molecule with NO hand-written hierarchy and compares the decompositions
// PHMSE offers — flat, recursive bisection, bottom-up grouping from
// residue-level leaves, and constraint-graph partitioning — each stated
// as an engine::Problem and compiled to a plan.
#include <cstdio>
#include <vector>

#include "core/graph_partition.hpp"
#include "engine/engine.hpp"
#include "molecule/topology.hpp"
#include "support/rng.hpp"

using namespace phmse;

namespace {

// A chain of `residues` residues, 6 pseudo-atoms each, folded into two
// spatially separate domains with a short linker.
struct ChainMolecule {
  mol::Topology topo;
  std::vector<std::pair<Index, Index>> residue_ranges;
};

ChainMolecule build_chain(Index residues) {
  ChainMolecule m;
  Rng rng(5);
  for (Index r = 0; r < residues; ++r) {
    const Index begin = m.topo.size();
    const double domain_shift = r < residues / 2 ? 0.0 : 40.0;
    const double t = static_cast<double>(r);
    const mol::Vec3 center{4.0 * std::cos(0.7 * t) + domain_shift,
                           4.0 * std::sin(0.7 * t), 1.8 * t};
    for (Index k = 0; k < 6; ++k) {
      const double u = static_cast<double>(k);
      m.topo.add_atom("r" + std::to_string(r) + "_" + std::to_string(k),
                      center + mol::Vec3{1.4 * std::cos(2.1 * u),
                                         1.4 * std::sin(2.1 * u),
                                         0.4 * u} +
                          mol::Vec3{rng.gaussian(0.0, 0.05),
                                    rng.gaussian(0.0, 0.05),
                                    rng.gaussian(0.0, 0.05)});
    }
    m.residue_ranges.emplace_back(begin, m.topo.size());
  }
  return m;
}

cons::ConstraintSet make_data(const ChainMolecule& m) {
  Rng rng(6);
  cons::ConstraintSet data;
  // Dense geometry inside each residue, sparse links between neighbours.
  for (const auto& [begin, end] : m.residue_ranges) {
    for (Index i = begin; i < end; ++i) {
      for (Index j = i + 1; j < end; ++j) {
        data.add(cons::make_observed(cons::Kind::kDistance, {i, j, 0, 0},
                                     m.topo, 0.05, rng, 1));
      }
    }
  }
  for (std::size_t r = 0; r + 1 < m.residue_ranges.size(); ++r) {
    const auto& [b1, e1] = m.residue_ranges[r];
    const auto& [b2, e2] = m.residue_ranges[r + 1];
    for (int k = 0; k < 4; ++k) {
      data.add(cons::make_observed(cons::Kind::kDistance,
                                   {b1 + k, b2 + k, 0, 0}, m.topo, 0.2, rng,
                                   2));
    }
  }
  // Frame anchors on the first residue.
  for (int axis = 0; axis < 3; ++axis) {
    data.add(cons::make_observed(cons::Kind::kPosition, {0, 0, 0, 0}, m.topo,
                                 0.05, rng, 0, axis));
    data.add(cons::make_observed(cons::Kind::kPosition, {3, 0, 0, 0}, m.topo,
                                 0.05, rng, 0, axis));
  }
  return data;
}

// Compiles `problem` (one timed cycle) and returns plan + solve seconds.
std::pair<engine::Plan, double> solve_with(const engine::Problem& problem,
                                           const linalg::Vector& initial) {
  engine::CompileOptions copts;  // one cycle
  copts.solve.prior_sigma = 0.5;
  engine::Plan plan = Engine::compile(problem, copts);
  const double seconds = plan.solve(initial).seconds;
  return {std::move(plan), seconds};
}

}  // namespace

int main() {
  const ChainMolecule molecule = build_chain(48);
  const cons::ConstraintSet data = make_data(molecule);
  std::printf("chain molecule: %lld atoms, %lld constraints\n",
              static_cast<long long>(molecule.topo.size()),
              static_cast<long long>(data.size()));

  Rng rng(8);
  linalg::Vector initial = molecule.topo.true_state();
  for (auto& v : initial) v += rng.gaussian(0.0, 0.4);

  // (a) Flat: everything in one node.
  const double t_flat =
      solve_with(engine::Problem::flat(molecule.topo.size(), data), initial)
          .second;
  std::printf("flat organization:        %.3f s / cycle\n", t_flat);

  // (b) Recursive bisection, blind to the residue structure.
  const double t_bisect =
      solve_with(engine::Problem::bisection(molecule.topo.size(), data, 12),
                 initial)
          .second;
  std::printf("recursive bisection:      %.3f s / cycle (%.1fx)\n", t_bisect,
              t_flat / t_bisect);

  // (c) Bottom-up grouping from residue leaves (paper Section 5): merges
  //     the strongly-coupled neighbours first, so almost every constraint
  //     is applied deep in the tree.
  auto [bottom_up, t_bu] = solve_with(
      engine::Problem::custom(molecule.topo.size(), data,
                              [&molecule, &data] {
                                return core::build_bottom_up_hierarchy(
                                    molecule.residue_ranges, data);
                              }),
      initial);
  std::printf("bottom-up from residues:  %.3f s / cycle (%.1fx)\n", t_bu,
              t_flat / t_bu);

  // (d) Graph partitioning (paper Section 5's preferred direction): build
  //     the constraint graph, bisect it recursively with FM refinement, and
  //     solve in the resulting atom order.  The constraints and the state
  //     are remapped into partition order, so the problem is stated over
  //     the REMAPPED data; the decomposition recipe re-partitions inside
  //     the lambda.
  {
    core::Decomposition d = core::decompose_by_graph_partition(
        molecule.topo.size(), data);
    const cons::ConstraintSet remapped =
        core::remap_constraints(data, d.rank);
    engine::Problem problem = engine::Problem::custom(
        molecule.topo.size(), remapped, [&molecule, &data] {
          return core::decompose_by_graph_partition(molecule.topo.size(),
                                                    data)
              .hierarchy;
        });
    const double t_gp =
        solve_with(problem, core::remap_state(initial, d.order)).second;
    std::printf("graph partitioning:       %.3f s / cycle (%.1fx)\n", t_gp,
                t_flat / t_gp);
  }

  std::printf("\nbottom-up tree (top levels):\n");
  const std::string desc = bottom_up.hierarchy().describe(false);
  // Print only the first few lines.
  std::size_t pos = 0;
  for (int line = 0; line < 8 && pos != std::string::npos; ++line) {
    const std::size_t next = desc.find('\n', pos);
    std::printf("%s\n", desc.substr(pos, next - pos).c_str());
    pos = next == std::string::npos ? next : next + 1;
  }
  return 0;
}
