// Automatic decomposition of a user-defined molecule.
//
// The paper requires the user to supply the structure hierarchy, with a
// recursive-bisection fallback, and sketches a bottom-up alternative
// (Section 5).  This example builds an artificial two-domain chain
// molecule with NO hand-written hierarchy and compares the three
// decompositions PHMSE offers: flat, recursive bisection, and bottom-up
// grouping from residue-level leaves.
#include <cstdio>
#include <vector>

#include "core/assign.hpp"
#include "core/graph_partition.hpp"
#include "core/hier_solver.hpp"
#include "core/schedule.hpp"
#include "core/work_model.hpp"
#include "molecule/topology.hpp"
#include "support/rng.hpp"
#include "support/stopwatch.hpp"

using namespace phmse;

namespace {

// A chain of `residues` residues, 6 pseudo-atoms each, folded into two
// spatially separate domains with a short linker.
struct ChainMolecule {
  mol::Topology topo;
  std::vector<std::pair<Index, Index>> residue_ranges;
};

ChainMolecule build_chain(Index residues) {
  ChainMolecule m;
  Rng rng(5);
  for (Index r = 0; r < residues; ++r) {
    const Index begin = m.topo.size();
    const double domain_shift = r < residues / 2 ? 0.0 : 40.0;
    const double t = static_cast<double>(r);
    const mol::Vec3 center{4.0 * std::cos(0.7 * t) + domain_shift,
                           4.0 * std::sin(0.7 * t), 1.8 * t};
    for (Index k = 0; k < 6; ++k) {
      const double u = static_cast<double>(k);
      m.topo.add_atom("r" + std::to_string(r) + "_" + std::to_string(k),
                      center + mol::Vec3{1.4 * std::cos(2.1 * u),
                                         1.4 * std::sin(2.1 * u),
                                         0.4 * u} +
                          mol::Vec3{rng.gaussian(0.0, 0.05),
                                    rng.gaussian(0.0, 0.05),
                                    rng.gaussian(0.0, 0.05)});
    }
    m.residue_ranges.emplace_back(begin, m.topo.size());
  }
  return m;
}

cons::ConstraintSet make_data(const ChainMolecule& m) {
  Rng rng(6);
  cons::ConstraintSet data;
  // Dense geometry inside each residue, sparse links between neighbours.
  for (const auto& [begin, end] : m.residue_ranges) {
    for (Index i = begin; i < end; ++i) {
      for (Index j = i + 1; j < end; ++j) {
        data.add(cons::make_observed(cons::Kind::kDistance, {i, j, 0, 0},
                                     m.topo, 0.05, rng, 1));
      }
    }
  }
  for (std::size_t r = 0; r + 1 < m.residue_ranges.size(); ++r) {
    const auto& [b1, e1] = m.residue_ranges[r];
    const auto& [b2, e2] = m.residue_ranges[r + 1];
    for (int k = 0; k < 4; ++k) {
      data.add(cons::make_observed(cons::Kind::kDistance,
                                   {b1 + k, b2 + k, 0, 0}, m.topo, 0.2, rng,
                                   2));
    }
  }
  // Frame anchors on the first residue.
  for (int axis = 0; axis < 3; ++axis) {
    data.add(cons::make_observed(cons::Kind::kPosition, {0, 0, 0, 0}, m.topo,
                                 0.05, rng, 0, axis));
    data.add(cons::make_observed(cons::Kind::kPosition, {3, 0, 0, 0}, m.topo,
                                 0.05, rng, 0, axis));
  }
  return data;
}

double solve_with(core::Hierarchy& h, const ChainMolecule& m,
                  const cons::ConstraintSet& data,
                  const linalg::Vector& initial) {
  core::assign_constraints(h, data);
  core::estimate_work(h, core::WorkModel{}, 16);
  core::assign_processors(h, 1);
  par::SerialContext ctx;
  core::HierSolveOptions opts;  // one timed cycle
  opts.prior_sigma = 0.5;
  Stopwatch sw;
  core::solve_hierarchical(ctx, h, initial, opts);
  return sw.seconds();
}

}  // namespace

int main() {
  const ChainMolecule molecule = build_chain(48);
  const cons::ConstraintSet data = make_data(molecule);
  std::printf("chain molecule: %lld atoms, %lld constraints\n",
              static_cast<long long>(molecule.topo.size()),
              static_cast<long long>(data.size()));

  Rng rng(8);
  linalg::Vector initial = molecule.topo.true_state();
  for (auto& v : initial) v += rng.gaussian(0.0, 0.4);

  // (a) Flat: everything in one node.
  core::Hierarchy flat = core::build_flat_hierarchy(molecule.topo.size());
  const double t_flat = solve_with(flat, molecule, data, initial);
  std::printf("flat organization:        %.3f s / cycle\n", t_flat);

  // (b) Recursive bisection, blind to the residue structure.
  core::Hierarchy bisect =
      core::build_bisection_hierarchy(molecule.topo.size(), 12);
  const double t_bisect = solve_with(bisect, molecule, data, initial);
  std::printf("recursive bisection:      %.3f s / cycle (%.1fx)\n", t_bisect,
              t_flat / t_bisect);

  // (c) Bottom-up grouping from residue leaves (paper Section 5): merges
  //     the strongly-coupled neighbours first, so almost every constraint
  //     is applied deep in the tree.
  core::Hierarchy bottom_up =
      core::build_bottom_up_hierarchy(molecule.residue_ranges, data);
  const double t_bu = solve_with(bottom_up, molecule, data, initial);
  std::printf("bottom-up from residues:  %.3f s / cycle (%.1fx)\n", t_bu,
              t_flat / t_bu);

  // (d) Graph partitioning (paper Section 5's preferred direction): build
  //     the constraint graph, bisect it recursively with FM refinement, and
  //     solve in the resulting atom order.
  {
    core::Decomposition d = core::decompose_by_graph_partition(
        molecule.topo.size(), data);
    core::Hierarchy gp = std::move(d.hierarchy);
    const cons::ConstraintSet remapped =
        core::remap_constraints(data, d.rank);
    core::assign_constraints(gp, remapped);
    core::estimate_work(gp, core::WorkModel{}, 16);
    core::assign_processors(gp, 1);
    par::SerialContext ctx;
    core::HierSolveOptions opts;
    opts.prior_sigma = 0.5;
    Stopwatch sw;
    core::solve_hierarchical(ctx, gp, core::remap_state(initial, d.order),
                             opts);
    const double t_gp = sw.seconds();
    std::printf("graph partitioning:       %.3f s / cycle (%.1fx)\n", t_gp,
                t_flat / t_gp);
  }

  std::printf("\nbottom-up tree (top levels):\n");
  const std::string desc = bottom_up.describe(false);
  // Print only the first few lines.
  std::size_t pos = 0;
  for (int line = 0; line < 8 && pos != std::string::npos; ++line) {
    const std::size_t next = desc.find('\n', pos);
    std::printf("%s\n", desc.substr(pos, next - pos).c_str());
    pos = next == std::string::npos ? next : next + 1;
  }
  return 0;
}
