// Outer-loop refinement on a scrambled helix (DESIGN.md §14).
//
// The paper's solver makes ONE sequential sweep, linearizing every
// constraint at the initial geometry.  Scramble the initial coordinates far
// enough and that single pass lands nowhere near the true structure — the
// distance Jacobians computed at the scrambled geometry point the wrong
// way.  This example shows the failure and both recoveries:
//
//   single_pass — today's behaviour through the Refiner (bitwise identical
//                 to Plan::solve, plus monitoring): stays lost;
//   iterated    — re-linearizes at each posterior and re-solves;
//   annealed    — additionally inflates observation sigmas by a cooling
//                 temperature schedule and restarts from seeded
//                 perturbations when progress plateaus.
//
// Writes helix_scrambled.xyz (the starting point) and helix_refined.xyz
// (the best refined structure).
#include <cstdio>
#include <fstream>

#include "constraints/helix_gen.hpp"
#include "engine/engine.hpp"
#include "molecule/rna_helix.hpp"
#include "molecule/xyz_io.hpp"
#include "refine/refiner.hpp"
#include "support/rng.hpp"

using namespace phmse;

static void print_report(const char* label, const mol::HelixModel& model,
                         const engine::Result& result) {
  const core::RefineReport& rr = result.report.refine;
  std::printf("%-11s  rmsd %6.3f A   chi2 %12.1f -> %10.1f   "
              "%2d iteration(s), %d restart(s)%s%s\n",
              label, model.topology.rmsd_to_truth(result.posterior().x),
              rr.initial_chi2, rr.best_chi2, rr.iterations, rr.restarts,
              rr.converged ? ", converged" : "",
              rr.diverged ? ", diverged" : "");
  for (const core::RefineIteration& step : rr.trajectory) {
    std::printf("    it %2lld  T=%4.2f  chi2=%12.1f  rms=%7.3f  step=%7.3f%s\n",
                static_cast<long long>(&step - rr.trajectory.data()) + 1,
                step.temperature, step.chi2, step.rms_residual, step.step_norm,
                step.restart ? "  (restart)" : "");
  }
}

int main() {
  // The molecule, its measurements, and one compiled plan shared by every
  // mode below (a refine iteration is just another plan execution).
  const mol::HelixModel model = mol::build_helix(8);
  cons::HelixNoise noise;
  noise.anchor_first_pair = true;
  const cons::ConstraintSet data =
      cons::generate_helix_constraints(model, noise);
  engine::Problem problem = engine::Problem::custom(
      model.topology.size(), data,
      [&model] { return core::build_helix_hierarchy(model); });
  engine::CompileOptions copts;
  copts.solve.prior_sigma = 0.5;
  copts.solve.max_cycles = 1;  // one sweep per outer iteration
  engine::Plan plan = Engine::compile(problem, copts);
  std::printf("helix: %lld bp, %lld atoms, %lld constraints\n",
              static_cast<long long>(model.num_pairs()),
              static_cast<long long>(model.num_atoms()),
              static_cast<long long>(data.size()));

  // Scramble the initial coordinates far beyond the linearization's basin.
  Rng rng(19);
  linalg::Vector scrambled = model.topology.true_state();
  for (double& v : scrambled) v += rng.gaussian(0.0, 2.5);
  std::printf("scrambled start: rmsd %.3f A to truth\n",
              model.topology.rmsd_to_truth(scrambled));
  {
    std::ofstream f("helix_scrambled.xyz");
    mol::write_xyz(f, model.topology, scrambled, "scrambled initial estimate");
  }

  // Clean-start reference: the same single sweep, begun at the truth.
  const engine::Result clean = plan.solve(model.topology.true_state());
  std::printf("clean-start reference: rmsd %.3f A after one sweep\n\n",
              model.topology.rmsd_to_truth(clean.posterior().x));

  // Mode 1: today's single pass (through the Refiner: same numbers,
  // plus the monitoring that quantifies the failure).
  refine::Refiner single_pass(plan, refine::RefineOptions{});
  const engine::Result sp = single_pass.refine(scrambled);
  print_report("single_pass", model, sp);

  // Mode 2: iterated re-linearization.
  refine::RefineOptions it_options;
  it_options.mode = refine::Mode::kIterated;
  it_options.max_iterations = 32;
  it_options.step_tolerance = 1e-6;
  refine::Refiner iterated(plan, it_options);
  const engine::Result it = iterated.refine(scrambled);
  print_report("iterated", model, it);

  // Mode 3: annealed with seeded restarts.
  refine::RefineOptions an_options;
  an_options.mode = refine::Mode::kAnnealed;
  an_options.max_iterations = 32;
  an_options.step_tolerance = 1e-6;
  an_options.initial_temperature = 8.0;
  an_options.cooling = 0.5;
  an_options.max_restarts = 3;
  an_options.restart_sigma = 0.5;
  an_options.seed = 1;
  refine::Refiner annealed(plan, an_options);
  const engine::Result an = annealed.refine(scrambled);
  print_report("annealed", model, an);

  const double it_rmsd = model.topology.rmsd_to_truth(it.posterior().x);
  const double an_rmsd = model.topology.rmsd_to_truth(an.posterior().x);
  const engine::Result& best = an_rmsd < it_rmsd ? an : it;
  {
    std::ofstream f("helix_refined.xyz");
    mol::write_xyz(f, model.topology, best.posterior().x,
                   "refined estimate (best of iterated/annealed)");
  }
  std::printf("\nwrote helix_scrambled.xyz and helix_refined.xyz "
              "(best rmsd %.3f A)\n",
              model.topology.rmsd_to_truth(best.posterior().x));
  return 0;
}
