// 30S ribosomal subunit modeling: the paper's second workload.
//
// Builds the synthetic 30S model (21 neutron-mapped proteins, 65 helices,
// 65 coils; ~900 pseudo-atoms, ~6500 constraints), decomposes it into
// spatial domains (paper Fig. 4 — note the high branching factor), and
// solves it both sequentially and on the simulated 32-processor DASH,
// printing the parallel work-time breakdown.
#include <cstdio>

#include "constraints/ribo_gen.hpp"
#include "core/assign.hpp"
#include "estimation/analysis.hpp"
#include "core/hier_solver.hpp"
#include "core/schedule.hpp"
#include "core/work_model.hpp"
#include "molecule/ribo30s.hpp"
#include "support/rng.hpp"
#include "support/stopwatch.hpp"

using namespace phmse;

int main() {
  const mol::Ribo30sModel model = mol::build_ribo30s();
  const cons::ConstraintSet data = cons::generate_ribo_constraints(model);
  std::printf("ribo30S: %lld pseudo-atoms in %lld segments, %lld "
              "constraints\n",
              static_cast<long long>(model.num_atoms()),
              static_cast<long long>(model.num_segments()),
              static_cast<long long>(data.size()));

  core::Hierarchy hierarchy = core::build_ribo_hierarchy(model);
  core::assign_constraints(hierarchy, data);
  std::printf("hierarchy (cf. paper Fig. 4): root branches into %zu "
              "domains, %lld leaves\n",
              hierarchy.root().children.size(),
              static_cast<long long>(hierarchy.num_leaves()));

  core::estimate_work(hierarchy, core::WorkModel{}, 16);
  core::assign_processors(hierarchy, 32);

  // A crude initial layout: everything near the truth +- 2 A (in practice
  // this comes from the discrete conformational-space search the paper
  // cites as preprocessing).
  Rng rng(30);
  linalg::Vector initial = model.topology.true_state();
  for (auto& v : initial) v += rng.gaussian(0.0, 2.0);
  std::printf("initial RMSD: %.2f A\n",
              model.topology.rmsd_to_truth(initial));

  // Sequential refinement for the estimate itself.
  {
    core::Hierarchy h2 = core::build_ribo_hierarchy(model);
    core::assign_constraints(h2, data);
    par::SerialContext ctx;
    core::HierSolveOptions opts;
    opts.prior_sigma = 1.0;
    opts.max_cycles = 12;
    opts.tolerance = 0.05;
    Stopwatch sw;
    const core::HierSolveResult res =
        core::solve_hierarchical(ctx, h2, initial, opts);
    std::printf("sequential solve: %.2f s wall, %d cycles, final RMSD "
                "%.2f A, residual %.3f\n",
                sw.seconds(), res.cycles,
                model.topology.rmsd_to_truth(res.state.x),
                cons::rms_residual(data, model.topology, res.state.x));

    // "Which parts of the molecule are better defined by the data" (paper
    // Section 2) — the neutron-anchored proteins should top the list.
    std::printf("\n%s\n",
                est::uncertainty_report(res.state, model.topology, 4)
                    .c_str());
  }

  // One timed cycle on the simulated DASH, as in the paper's Table 4.
  {
    simarch::SimMachine machine(simarch::dash32());
    core::HierSolveOptions opts;  // one cycle
    const core::SimSolveResult res =
        core::solve_hierarchical_sim(hierarchy, initial, opts, machine);
    std::printf("\none cycle on simulated DASH (32 procs): %.2f virtual "
                "seconds\n",
                res.vtime);
    std::printf("breakdown: %s\n", res.breakdown.summary(2).c_str());
  }
  return 0;
}
