// 30S ribosomal subunit modeling: the paper's second workload.
//
// Builds the synthetic 30S model (21 neutron-mapped proteins, 65 helices,
// 65 coils; ~900 pseudo-atoms, ~6500 constraints), states it once as an
// engine::Problem with the spatial-domain decomposition (paper Fig. 4 —
// note the high branching factor), and compiles it twice: a refinement
// plan solved sequentially, and a one-cycle plan solved on the simulated
// 32-processor DASH, printing the parallel work-time breakdown.
#include <cstdio>

#include "constraints/ribo_gen.hpp"
#include "engine/engine.hpp"
#include "estimation/analysis.hpp"
#include "molecule/ribo30s.hpp"
#include "support/rng.hpp"

using namespace phmse;

int main() {
  const mol::Ribo30sModel model = mol::build_ribo30s();
  const cons::ConstraintSet data = cons::generate_ribo_constraints(model);
  std::printf("ribo30S: %lld pseudo-atoms in %lld segments, %lld "
              "constraints\n",
              static_cast<long long>(model.num_atoms()),
              static_cast<long long>(model.num_segments()),
              static_cast<long long>(data.size()));

  // One problem statement serves every compilation below.
  const engine::Problem problem = engine::Problem::custom(
      model.topology.size(), data,
      [&model] { return core::build_ribo_hierarchy(model); });

  // A crude initial layout: everything near the truth +- 2 A (in practice
  // this comes from the discrete conformational-space search the paper
  // cites as preprocessing).
  Rng rng(30);
  linalg::Vector initial = model.topology.true_state();
  for (auto& v : initial) v += rng.gaussian(0.0, 2.0);
  std::printf("initial RMSD: %.2f A\n",
              model.topology.rmsd_to_truth(initial));

  // Sequential refinement for the estimate itself.
  {
    engine::CompileOptions copts;
    copts.solve.prior_sigma = 1.0;
    copts.solve.max_cycles = 12;
    copts.solve.tolerance = 0.05;
    engine::Plan plan = Engine::compile(problem, copts);
    std::printf("hierarchy (cf. paper Fig. 4): root branches into %zu "
                "domains, %lld leaves; compiled in %.1f ms\n",
                plan.hierarchy().root().children.size(),
                static_cast<long long>(plan.hierarchy().num_leaves()),
                plan.timings().total_seconds * 1e3);

    const engine::Result res = plan.solve(initial);
    std::printf("sequential solve: %.2f s wall, %d cycles, final RMSD "
                "%.2f A, residual %.3f\n",
                res.seconds, res.cycles,
                model.topology.rmsd_to_truth(res.posterior().x),
                cons::rms_residual(data, model.topology,
                                   res.posterior().x));

    // "Which parts of the molecule are better defined by the data" (paper
    // Section 2) — the neutron-anchored proteins should top the list.
    std::printf("\n%s\n",
                est::uncertainty_report(res.posterior(), model.topology, 4)
                    .c_str());
  }

  // One timed cycle on the simulated DASH, as in the paper's Table 4: the
  // same problem compiled for 32 processors, executed on the simulator.
  {
    engine::CompileOptions copts;  // one cycle
    copts.processors = 32;
    engine::Plan plan = Engine::compile(problem, copts);
    simarch::SimMachine machine(simarch::dash32());
    const engine::Result res = plan.solve(machine, initial);
    std::printf("\none cycle on simulated DASH (32 procs): %.2f virtual "
                "seconds\n",
                res.vtime);
    std::printf("breakdown: %s\n", res.breakdown.summary(2).c_str());
  }
  return 0;
}
