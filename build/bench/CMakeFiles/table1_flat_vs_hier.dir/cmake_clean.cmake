file(REMOVE_RECURSE
  "CMakeFiles/table1_flat_vs_hier.dir/table1_flat_vs_hier.cpp.o"
  "CMakeFiles/table1_flat_vs_hier.dir/table1_flat_vs_hier.cpp.o.d"
  "table1_flat_vs_hier"
  "table1_flat_vs_hier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_flat_vs_hier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
