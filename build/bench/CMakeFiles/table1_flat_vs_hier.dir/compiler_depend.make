# Empty compiler generated dependencies file for table1_flat_vs_hier.
# This may be replaced when dependencies are built.
