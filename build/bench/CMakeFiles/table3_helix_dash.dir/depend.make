# Empty dependencies file for table3_helix_dash.
# This may be replaced when dependencies are built.
