file(REMOVE_RECURSE
  "CMakeFiles/table3_helix_dash.dir/table3_helix_dash.cpp.o"
  "CMakeFiles/table3_helix_dash.dir/table3_helix_dash.cpp.o.d"
  "table3_helix_dash"
  "table3_helix_dash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_helix_dash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
