file(REMOVE_RECURSE
  "CMakeFiles/table5_helix_challenge.dir/table5_helix_challenge.cpp.o"
  "CMakeFiles/table5_helix_challenge.dir/table5_helix_challenge.cpp.o.d"
  "table5_helix_challenge"
  "table5_helix_challenge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_helix_challenge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
