# Empty dependencies file for table5_helix_challenge.
# This may be replaced when dependencies are built.
