file(REMOVE_RECURSE
  "CMakeFiles/table4_ribo_dash.dir/table4_ribo_dash.cpp.o"
  "CMakeFiles/table4_ribo_dash.dir/table4_ribo_dash.cpp.o.d"
  "table4_ribo_dash"
  "table4_ribo_dash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_ribo_dash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
