# Empty compiler generated dependencies file for table4_ribo_dash.
# This may be replaced when dependencies are built.
