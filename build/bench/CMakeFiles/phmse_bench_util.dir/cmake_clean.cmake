file(REMOVE_RECURSE
  "../lib/libphmse_bench_util.a"
  "../lib/libphmse_bench_util.pdb"
  "CMakeFiles/phmse_bench_util.dir/bench_util.cpp.o"
  "CMakeFiles/phmse_bench_util.dir/bench_util.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phmse_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
