file(REMOVE_RECURSE
  "../lib/libphmse_bench_util.a"
)
