# Empty compiler generated dependencies file for phmse_bench_util.
# This may be replaced when dependencies are built.
