file(REMOVE_RECURSE
  "CMakeFiles/ablation_combine.dir/ablation_combine.cpp.o"
  "CMakeFiles/ablation_combine.dir/ablation_combine.cpp.o.d"
  "ablation_combine"
  "ablation_combine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_combine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
