# Empty dependencies file for ablation_combine.
# This may be replaced when dependencies are built.
