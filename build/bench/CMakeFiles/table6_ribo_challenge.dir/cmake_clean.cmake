file(REMOVE_RECURSE
  "CMakeFiles/table6_ribo_challenge.dir/table6_ribo_challenge.cpp.o"
  "CMakeFiles/table6_ribo_challenge.dir/table6_ribo_challenge.cpp.o.d"
  "table6_ribo_challenge"
  "table6_ribo_challenge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_ribo_challenge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
