# Empty compiler generated dependencies file for table6_ribo_challenge.
# This may be replaced when dependencies are built.
