# Empty dependencies file for table2_batch_sweep.
# This may be replaced when dependencies are built.
