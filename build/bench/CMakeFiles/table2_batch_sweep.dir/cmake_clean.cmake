file(REMOVE_RECURSE
  "CMakeFiles/table2_batch_sweep.dir/table2_batch_sweep.cpp.o"
  "CMakeFiles/table2_batch_sweep.dir/table2_batch_sweep.cpp.o.d"
  "table2_batch_sweep"
  "table2_batch_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_batch_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
