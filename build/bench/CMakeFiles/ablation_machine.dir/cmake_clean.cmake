file(REMOVE_RECURSE
  "CMakeFiles/ablation_machine.dir/ablation_machine.cpp.o"
  "CMakeFiles/ablation_machine.dir/ablation_machine.cpp.o.d"
  "ablation_machine"
  "ablation_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
