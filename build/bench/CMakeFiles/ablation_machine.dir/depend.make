# Empty dependencies file for ablation_machine.
# This may be replaced when dependencies are built.
