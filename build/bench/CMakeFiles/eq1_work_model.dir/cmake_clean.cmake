file(REMOVE_RECURSE
  "CMakeFiles/eq1_work_model.dir/eq1_work_model.cpp.o"
  "CMakeFiles/eq1_work_model.dir/eq1_work_model.cpp.o.d"
  "eq1_work_model"
  "eq1_work_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eq1_work_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
