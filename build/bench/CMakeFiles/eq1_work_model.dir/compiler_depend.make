# Empty compiler generated dependencies file for eq1_work_model.
# This may be replaced when dependencies are built.
