# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for eq1_work_model.
