# Empty compiler generated dependencies file for ablation_locality.
# This may be replaced when dependencies are built.
