file(REMOVE_RECURSE
  "CMakeFiles/ablation_locality.dir/ablation_locality.cpp.o"
  "CMakeFiles/ablation_locality.dir/ablation_locality.cpp.o.d"
  "ablation_locality"
  "ablation_locality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
