
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/phmse_core.dir/DependInfo.cmake"
  "/root/repo/build/src/estimation/CMakeFiles/phmse_estimation.dir/DependInfo.cmake"
  "/root/repo/build/src/constraints/CMakeFiles/phmse_constraints.dir/DependInfo.cmake"
  "/root/repo/build/src/molecule/CMakeFiles/phmse_molecule.dir/DependInfo.cmake"
  "/root/repo/build/src/simarch/CMakeFiles/phmse_simarch.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/phmse_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/phmse_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/phmse_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/phmse_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
