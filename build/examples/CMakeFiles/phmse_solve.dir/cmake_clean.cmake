file(REMOVE_RECURSE
  "CMakeFiles/phmse_solve.dir/phmse_solve.cpp.o"
  "CMakeFiles/phmse_solve.dir/phmse_solve.cpp.o.d"
  "phmse_solve"
  "phmse_solve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phmse_solve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
