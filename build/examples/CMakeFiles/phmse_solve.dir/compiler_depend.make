# Empty compiler generated dependencies file for phmse_solve.
# This may be replaced when dependencies are built.
