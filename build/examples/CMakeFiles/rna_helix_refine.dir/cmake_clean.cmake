file(REMOVE_RECURSE
  "CMakeFiles/rna_helix_refine.dir/rna_helix_refine.cpp.o"
  "CMakeFiles/rna_helix_refine.dir/rna_helix_refine.cpp.o.d"
  "rna_helix_refine"
  "rna_helix_refine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rna_helix_refine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
