# Empty dependencies file for rna_helix_refine.
# This may be replaced when dependencies are built.
