file(REMOVE_RECURSE
  "CMakeFiles/noe_bounds.dir/noe_bounds.cpp.o"
  "CMakeFiles/noe_bounds.dir/noe_bounds.cpp.o.d"
  "noe_bounds"
  "noe_bounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noe_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
