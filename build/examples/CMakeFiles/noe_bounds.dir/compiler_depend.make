# Empty compiler generated dependencies file for noe_bounds.
# This may be replaced when dependencies are built.
