file(REMOVE_RECURSE
  "CMakeFiles/ribosome_30s.dir/ribosome_30s.cpp.o"
  "CMakeFiles/ribosome_30s.dir/ribosome_30s.cpp.o.d"
  "ribosome_30s"
  "ribosome_30s.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ribosome_30s.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
