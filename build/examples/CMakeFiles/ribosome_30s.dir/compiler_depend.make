# Empty compiler generated dependencies file for ribosome_30s.
# This may be replaced when dependencies are built.
