file(REMOVE_RECURSE
  "CMakeFiles/make_dataset.dir/make_dataset.cpp.o"
  "CMakeFiles/make_dataset.dir/make_dataset.cpp.o.d"
  "make_dataset"
  "make_dataset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/make_dataset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
