# Empty compiler generated dependencies file for make_dataset.
# This may be replaced when dependencies are built.
