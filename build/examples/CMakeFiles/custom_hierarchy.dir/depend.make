# Empty dependencies file for custom_hierarchy.
# This may be replaced when dependencies are built.
