file(REMOVE_RECURSE
  "CMakeFiles/custom_hierarchy.dir/custom_hierarchy.cpp.o"
  "CMakeFiles/custom_hierarchy.dir/custom_hierarchy.cpp.o.d"
  "custom_hierarchy"
  "custom_hierarchy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
