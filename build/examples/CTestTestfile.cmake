# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_rna_helix_refine "/root/repo/build/examples/rna_helix_refine")
set_tests_properties(example_rna_helix_refine PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_custom_hierarchy "/root/repo/build/examples/custom_hierarchy")
set_tests_properties(example_custom_hierarchy PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_noe_bounds "/root/repo/build/examples/noe_bounds")
set_tests_properties(example_noe_bounds PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cli_pipeline "bash" "-c" "/root/repo/build/examples/make_dataset helix 1 cli_demo --anchors &&    /root/repo/build/examples/phmse_solve cli_demo.xyz cli_demo.constraints      --out cli_demo_refined.xyz --cycles 10 --prior 0.5 --tol 0.05")
set_tests_properties(example_cli_pipeline PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
