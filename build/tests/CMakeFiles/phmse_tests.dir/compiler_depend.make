# Empty compiler generated dependencies file for phmse_tests.
# This may be replaced when dependencies are built.
