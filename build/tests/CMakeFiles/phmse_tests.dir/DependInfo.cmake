
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analysis_test.cpp" "tests/CMakeFiles/phmse_tests.dir/analysis_test.cpp.o" "gcc" "tests/CMakeFiles/phmse_tests.dir/analysis_test.cpp.o.d"
  "/root/repo/tests/assign_test.cpp" "tests/CMakeFiles/phmse_tests.dir/assign_test.cpp.o" "gcc" "tests/CMakeFiles/phmse_tests.dir/assign_test.cpp.o.d"
  "/root/repo/tests/blas_test.cpp" "tests/CMakeFiles/phmse_tests.dir/blas_test.cpp.o" "gcc" "tests/CMakeFiles/phmse_tests.dir/blas_test.cpp.o.d"
  "/root/repo/tests/cholesky_test.cpp" "tests/CMakeFiles/phmse_tests.dir/cholesky_test.cpp.o" "gcc" "tests/CMakeFiles/phmse_tests.dir/cholesky_test.cpp.o.d"
  "/root/repo/tests/combine_test.cpp" "tests/CMakeFiles/phmse_tests.dir/combine_test.cpp.o" "gcc" "tests/CMakeFiles/phmse_tests.dir/combine_test.cpp.o.d"
  "/root/repo/tests/constraint_io_test.cpp" "tests/CMakeFiles/phmse_tests.dir/constraint_io_test.cpp.o" "gcc" "tests/CMakeFiles/phmse_tests.dir/constraint_io_test.cpp.o.d"
  "/root/repo/tests/constraint_test.cpp" "tests/CMakeFiles/phmse_tests.dir/constraint_test.cpp.o" "gcc" "tests/CMakeFiles/phmse_tests.dir/constraint_test.cpp.o.d"
  "/root/repo/tests/csr_test.cpp" "tests/CMakeFiles/phmse_tests.dir/csr_test.cpp.o" "gcc" "tests/CMakeFiles/phmse_tests.dir/csr_test.cpp.o.d"
  "/root/repo/tests/dynamic_test.cpp" "tests/CMakeFiles/phmse_tests.dir/dynamic_test.cpp.o" "gcc" "tests/CMakeFiles/phmse_tests.dir/dynamic_test.cpp.o.d"
  "/root/repo/tests/edge_cases_test.cpp" "tests/CMakeFiles/phmse_tests.dir/edge_cases_test.cpp.o" "gcc" "tests/CMakeFiles/phmse_tests.dir/edge_cases_test.cpp.o.d"
  "/root/repo/tests/equivalence_test.cpp" "tests/CMakeFiles/phmse_tests.dir/equivalence_test.cpp.o" "gcc" "tests/CMakeFiles/phmse_tests.dir/equivalence_test.cpp.o.d"
  "/root/repo/tests/generators_test.cpp" "tests/CMakeFiles/phmse_tests.dir/generators_test.cpp.o" "gcc" "tests/CMakeFiles/phmse_tests.dir/generators_test.cpp.o.d"
  "/root/repo/tests/geom_test.cpp" "tests/CMakeFiles/phmse_tests.dir/geom_test.cpp.o" "gcc" "tests/CMakeFiles/phmse_tests.dir/geom_test.cpp.o.d"
  "/root/repo/tests/graph_partition_test.cpp" "tests/CMakeFiles/phmse_tests.dir/graph_partition_test.cpp.o" "gcc" "tests/CMakeFiles/phmse_tests.dir/graph_partition_test.cpp.o.d"
  "/root/repo/tests/helix_model_test.cpp" "tests/CMakeFiles/phmse_tests.dir/helix_model_test.cpp.o" "gcc" "tests/CMakeFiles/phmse_tests.dir/helix_model_test.cpp.o.d"
  "/root/repo/tests/hier_solver_test.cpp" "tests/CMakeFiles/phmse_tests.dir/hier_solver_test.cpp.o" "gcc" "tests/CMakeFiles/phmse_tests.dir/hier_solver_test.cpp.o.d"
  "/root/repo/tests/hierarchy_test.cpp" "tests/CMakeFiles/phmse_tests.dir/hierarchy_test.cpp.o" "gcc" "tests/CMakeFiles/phmse_tests.dir/hierarchy_test.cpp.o.d"
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/phmse_tests.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/phmse_tests.dir/integration_test.cpp.o.d"
  "/root/repo/tests/kernels_test.cpp" "tests/CMakeFiles/phmse_tests.dir/kernels_test.cpp.o" "gcc" "tests/CMakeFiles/phmse_tests.dir/kernels_test.cpp.o.d"
  "/root/repo/tests/matrix_test.cpp" "tests/CMakeFiles/phmse_tests.dir/matrix_test.cpp.o" "gcc" "tests/CMakeFiles/phmse_tests.dir/matrix_test.cpp.o.d"
  "/root/repo/tests/nongaussian_test.cpp" "tests/CMakeFiles/phmse_tests.dir/nongaussian_test.cpp.o" "gcc" "tests/CMakeFiles/phmse_tests.dir/nongaussian_test.cpp.o.d"
  "/root/repo/tests/partition_test.cpp" "tests/CMakeFiles/phmse_tests.dir/partition_test.cpp.o" "gcc" "tests/CMakeFiles/phmse_tests.dir/partition_test.cpp.o.d"
  "/root/repo/tests/perf_test.cpp" "tests/CMakeFiles/phmse_tests.dir/perf_test.cpp.o" "gcc" "tests/CMakeFiles/phmse_tests.dir/perf_test.cpp.o.d"
  "/root/repo/tests/residuals_test.cpp" "tests/CMakeFiles/phmse_tests.dir/residuals_test.cpp.o" "gcc" "tests/CMakeFiles/phmse_tests.dir/residuals_test.cpp.o.d"
  "/root/repo/tests/ribo_model_test.cpp" "tests/CMakeFiles/phmse_tests.dir/ribo_model_test.cpp.o" "gcc" "tests/CMakeFiles/phmse_tests.dir/ribo_model_test.cpp.o.d"
  "/root/repo/tests/schedule_fuzz_test.cpp" "tests/CMakeFiles/phmse_tests.dir/schedule_fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/phmse_tests.dir/schedule_fuzz_test.cpp.o.d"
  "/root/repo/tests/schedule_test.cpp" "tests/CMakeFiles/phmse_tests.dir/schedule_test.cpp.o" "gcc" "tests/CMakeFiles/phmse_tests.dir/schedule_test.cpp.o.d"
  "/root/repo/tests/simarch_test.cpp" "tests/CMakeFiles/phmse_tests.dir/simarch_test.cpp.o" "gcc" "tests/CMakeFiles/phmse_tests.dir/simarch_test.cpp.o.d"
  "/root/repo/tests/solver_test.cpp" "tests/CMakeFiles/phmse_tests.dir/solver_test.cpp.o" "gcc" "tests/CMakeFiles/phmse_tests.dir/solver_test.cpp.o.d"
  "/root/repo/tests/study_test.cpp" "tests/CMakeFiles/phmse_tests.dir/study_test.cpp.o" "gcc" "tests/CMakeFiles/phmse_tests.dir/study_test.cpp.o.d"
  "/root/repo/tests/support_test.cpp" "tests/CMakeFiles/phmse_tests.dir/support_test.cpp.o" "gcc" "tests/CMakeFiles/phmse_tests.dir/support_test.cpp.o.d"
  "/root/repo/tests/thread_pool_test.cpp" "tests/CMakeFiles/phmse_tests.dir/thread_pool_test.cpp.o" "gcc" "tests/CMakeFiles/phmse_tests.dir/thread_pool_test.cpp.o.d"
  "/root/repo/tests/topology_test.cpp" "tests/CMakeFiles/phmse_tests.dir/topology_test.cpp.o" "gcc" "tests/CMakeFiles/phmse_tests.dir/topology_test.cpp.o.d"
  "/root/repo/tests/update_property_test.cpp" "tests/CMakeFiles/phmse_tests.dir/update_property_test.cpp.o" "gcc" "tests/CMakeFiles/phmse_tests.dir/update_property_test.cpp.o.d"
  "/root/repo/tests/update_test.cpp" "tests/CMakeFiles/phmse_tests.dir/update_test.cpp.o" "gcc" "tests/CMakeFiles/phmse_tests.dir/update_test.cpp.o.d"
  "/root/repo/tests/work_model_test.cpp" "tests/CMakeFiles/phmse_tests.dir/work_model_test.cpp.o" "gcc" "tests/CMakeFiles/phmse_tests.dir/work_model_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/phmse_core.dir/DependInfo.cmake"
  "/root/repo/build/src/estimation/CMakeFiles/phmse_estimation.dir/DependInfo.cmake"
  "/root/repo/build/src/constraints/CMakeFiles/phmse_constraints.dir/DependInfo.cmake"
  "/root/repo/build/src/molecule/CMakeFiles/phmse_molecule.dir/DependInfo.cmake"
  "/root/repo/build/src/simarch/CMakeFiles/phmse_simarch.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/phmse_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/phmse_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/phmse_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/phmse_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
