file(REMOVE_RECURSE
  "libphmse_support.a"
)
