# Empty dependencies file for phmse_support.
# This may be replaced when dependencies are built.
