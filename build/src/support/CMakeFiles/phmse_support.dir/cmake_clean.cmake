file(REMOVE_RECURSE
  "CMakeFiles/phmse_support.dir/check.cpp.o"
  "CMakeFiles/phmse_support.dir/check.cpp.o.d"
  "CMakeFiles/phmse_support.dir/env.cpp.o"
  "CMakeFiles/phmse_support.dir/env.cpp.o.d"
  "CMakeFiles/phmse_support.dir/rng.cpp.o"
  "CMakeFiles/phmse_support.dir/rng.cpp.o.d"
  "CMakeFiles/phmse_support.dir/stopwatch.cpp.o"
  "CMakeFiles/phmse_support.dir/stopwatch.cpp.o.d"
  "CMakeFiles/phmse_support.dir/table.cpp.o"
  "CMakeFiles/phmse_support.dir/table.cpp.o.d"
  "libphmse_support.a"
  "libphmse_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phmse_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
