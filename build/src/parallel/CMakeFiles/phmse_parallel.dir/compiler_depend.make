# Empty compiler generated dependencies file for phmse_parallel.
# This may be replaced when dependencies are built.
