file(REMOVE_RECURSE
  "CMakeFiles/phmse_parallel.dir/exec.cpp.o"
  "CMakeFiles/phmse_parallel.dir/exec.cpp.o.d"
  "CMakeFiles/phmse_parallel.dir/partition.cpp.o"
  "CMakeFiles/phmse_parallel.dir/partition.cpp.o.d"
  "CMakeFiles/phmse_parallel.dir/team.cpp.o"
  "CMakeFiles/phmse_parallel.dir/team.cpp.o.d"
  "CMakeFiles/phmse_parallel.dir/thread_pool.cpp.o"
  "CMakeFiles/phmse_parallel.dir/thread_pool.cpp.o.d"
  "libphmse_parallel.a"
  "libphmse_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phmse_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
