file(REMOVE_RECURSE
  "libphmse_parallel.a"
)
