
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/assign.cpp" "src/core/CMakeFiles/phmse_core.dir/assign.cpp.o" "gcc" "src/core/CMakeFiles/phmse_core.dir/assign.cpp.o.d"
  "/root/repo/src/core/dynamic.cpp" "src/core/CMakeFiles/phmse_core.dir/dynamic.cpp.o" "gcc" "src/core/CMakeFiles/phmse_core.dir/dynamic.cpp.o.d"
  "/root/repo/src/core/graph_partition.cpp" "src/core/CMakeFiles/phmse_core.dir/graph_partition.cpp.o" "gcc" "src/core/CMakeFiles/phmse_core.dir/graph_partition.cpp.o.d"
  "/root/repo/src/core/hier_solver.cpp" "src/core/CMakeFiles/phmse_core.dir/hier_solver.cpp.o" "gcc" "src/core/CMakeFiles/phmse_core.dir/hier_solver.cpp.o.d"
  "/root/repo/src/core/hierarchy.cpp" "src/core/CMakeFiles/phmse_core.dir/hierarchy.cpp.o" "gcc" "src/core/CMakeFiles/phmse_core.dir/hierarchy.cpp.o.d"
  "/root/repo/src/core/schedule.cpp" "src/core/CMakeFiles/phmse_core.dir/schedule.cpp.o" "gcc" "src/core/CMakeFiles/phmse_core.dir/schedule.cpp.o.d"
  "/root/repo/src/core/study.cpp" "src/core/CMakeFiles/phmse_core.dir/study.cpp.o" "gcc" "src/core/CMakeFiles/phmse_core.dir/study.cpp.o.d"
  "/root/repo/src/core/work_model.cpp" "src/core/CMakeFiles/phmse_core.dir/work_model.cpp.o" "gcc" "src/core/CMakeFiles/phmse_core.dir/work_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/estimation/CMakeFiles/phmse_estimation.dir/DependInfo.cmake"
  "/root/repo/build/src/simarch/CMakeFiles/phmse_simarch.dir/DependInfo.cmake"
  "/root/repo/build/src/constraints/CMakeFiles/phmse_constraints.dir/DependInfo.cmake"
  "/root/repo/build/src/molecule/CMakeFiles/phmse_molecule.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/phmse_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/phmse_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/phmse_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/phmse_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
