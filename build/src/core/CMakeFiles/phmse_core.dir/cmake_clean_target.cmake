file(REMOVE_RECURSE
  "libphmse_core.a"
)
