file(REMOVE_RECURSE
  "CMakeFiles/phmse_core.dir/assign.cpp.o"
  "CMakeFiles/phmse_core.dir/assign.cpp.o.d"
  "CMakeFiles/phmse_core.dir/dynamic.cpp.o"
  "CMakeFiles/phmse_core.dir/dynamic.cpp.o.d"
  "CMakeFiles/phmse_core.dir/graph_partition.cpp.o"
  "CMakeFiles/phmse_core.dir/graph_partition.cpp.o.d"
  "CMakeFiles/phmse_core.dir/hier_solver.cpp.o"
  "CMakeFiles/phmse_core.dir/hier_solver.cpp.o.d"
  "CMakeFiles/phmse_core.dir/hierarchy.cpp.o"
  "CMakeFiles/phmse_core.dir/hierarchy.cpp.o.d"
  "CMakeFiles/phmse_core.dir/schedule.cpp.o"
  "CMakeFiles/phmse_core.dir/schedule.cpp.o.d"
  "CMakeFiles/phmse_core.dir/study.cpp.o"
  "CMakeFiles/phmse_core.dir/study.cpp.o.d"
  "CMakeFiles/phmse_core.dir/work_model.cpp.o"
  "CMakeFiles/phmse_core.dir/work_model.cpp.o.d"
  "libphmse_core.a"
  "libphmse_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phmse_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
