# Empty dependencies file for phmse_core.
# This may be replaced when dependencies are built.
