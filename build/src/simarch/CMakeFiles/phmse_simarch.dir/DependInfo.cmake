
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simarch/machine.cpp" "src/simarch/CMakeFiles/phmse_simarch.dir/machine.cpp.o" "gcc" "src/simarch/CMakeFiles/phmse_simarch.dir/machine.cpp.o.d"
  "/root/repo/src/simarch/sim_context.cpp" "src/simarch/CMakeFiles/phmse_simarch.dir/sim_context.cpp.o" "gcc" "src/simarch/CMakeFiles/phmse_simarch.dir/sim_context.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/parallel/CMakeFiles/phmse_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/phmse_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/phmse_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
