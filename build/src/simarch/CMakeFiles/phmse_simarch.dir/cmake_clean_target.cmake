file(REMOVE_RECURSE
  "libphmse_simarch.a"
)
