# Empty dependencies file for phmse_simarch.
# This may be replaced when dependencies are built.
