file(REMOVE_RECURSE
  "CMakeFiles/phmse_simarch.dir/machine.cpp.o"
  "CMakeFiles/phmse_simarch.dir/machine.cpp.o.d"
  "CMakeFiles/phmse_simarch.dir/sim_context.cpp.o"
  "CMakeFiles/phmse_simarch.dir/sim_context.cpp.o.d"
  "libphmse_simarch.a"
  "libphmse_simarch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phmse_simarch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
