file(REMOVE_RECURSE
  "CMakeFiles/phmse_linalg.dir/blas.cpp.o"
  "CMakeFiles/phmse_linalg.dir/blas.cpp.o.d"
  "CMakeFiles/phmse_linalg.dir/cholesky.cpp.o"
  "CMakeFiles/phmse_linalg.dir/cholesky.cpp.o.d"
  "CMakeFiles/phmse_linalg.dir/csr.cpp.o"
  "CMakeFiles/phmse_linalg.dir/csr.cpp.o.d"
  "CMakeFiles/phmse_linalg.dir/kernels.cpp.o"
  "CMakeFiles/phmse_linalg.dir/kernels.cpp.o.d"
  "CMakeFiles/phmse_linalg.dir/matrix.cpp.o"
  "CMakeFiles/phmse_linalg.dir/matrix.cpp.o.d"
  "libphmse_linalg.a"
  "libphmse_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phmse_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
