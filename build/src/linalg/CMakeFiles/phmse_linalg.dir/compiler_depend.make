# Empty compiler generated dependencies file for phmse_linalg.
# This may be replaced when dependencies are built.
