
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linalg/blas.cpp" "src/linalg/CMakeFiles/phmse_linalg.dir/blas.cpp.o" "gcc" "src/linalg/CMakeFiles/phmse_linalg.dir/blas.cpp.o.d"
  "/root/repo/src/linalg/cholesky.cpp" "src/linalg/CMakeFiles/phmse_linalg.dir/cholesky.cpp.o" "gcc" "src/linalg/CMakeFiles/phmse_linalg.dir/cholesky.cpp.o.d"
  "/root/repo/src/linalg/csr.cpp" "src/linalg/CMakeFiles/phmse_linalg.dir/csr.cpp.o" "gcc" "src/linalg/CMakeFiles/phmse_linalg.dir/csr.cpp.o.d"
  "/root/repo/src/linalg/kernels.cpp" "src/linalg/CMakeFiles/phmse_linalg.dir/kernels.cpp.o" "gcc" "src/linalg/CMakeFiles/phmse_linalg.dir/kernels.cpp.o.d"
  "/root/repo/src/linalg/matrix.cpp" "src/linalg/CMakeFiles/phmse_linalg.dir/matrix.cpp.o" "gcc" "src/linalg/CMakeFiles/phmse_linalg.dir/matrix.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/phmse_support.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/phmse_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/phmse_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
