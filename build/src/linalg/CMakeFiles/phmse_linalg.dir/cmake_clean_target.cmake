file(REMOVE_RECURSE
  "libphmse_linalg.a"
)
