file(REMOVE_RECURSE
  "libphmse_constraints.a"
)
