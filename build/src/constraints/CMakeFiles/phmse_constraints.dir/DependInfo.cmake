
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/constraints/constraint.cpp" "src/constraints/CMakeFiles/phmse_constraints.dir/constraint.cpp.o" "gcc" "src/constraints/CMakeFiles/phmse_constraints.dir/constraint.cpp.o.d"
  "/root/repo/src/constraints/helix_gen.cpp" "src/constraints/CMakeFiles/phmse_constraints.dir/helix_gen.cpp.o" "gcc" "src/constraints/CMakeFiles/phmse_constraints.dir/helix_gen.cpp.o.d"
  "/root/repo/src/constraints/io.cpp" "src/constraints/CMakeFiles/phmse_constraints.dir/io.cpp.o" "gcc" "src/constraints/CMakeFiles/phmse_constraints.dir/io.cpp.o.d"
  "/root/repo/src/constraints/ribo_gen.cpp" "src/constraints/CMakeFiles/phmse_constraints.dir/ribo_gen.cpp.o" "gcc" "src/constraints/CMakeFiles/phmse_constraints.dir/ribo_gen.cpp.o.d"
  "/root/repo/src/constraints/set.cpp" "src/constraints/CMakeFiles/phmse_constraints.dir/set.cpp.o" "gcc" "src/constraints/CMakeFiles/phmse_constraints.dir/set.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/molecule/CMakeFiles/phmse_molecule.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/phmse_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/phmse_support.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/phmse_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/phmse_perf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
