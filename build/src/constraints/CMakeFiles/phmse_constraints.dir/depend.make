# Empty dependencies file for phmse_constraints.
# This may be replaced when dependencies are built.
