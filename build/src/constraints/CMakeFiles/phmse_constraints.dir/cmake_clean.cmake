file(REMOVE_RECURSE
  "CMakeFiles/phmse_constraints.dir/constraint.cpp.o"
  "CMakeFiles/phmse_constraints.dir/constraint.cpp.o.d"
  "CMakeFiles/phmse_constraints.dir/helix_gen.cpp.o"
  "CMakeFiles/phmse_constraints.dir/helix_gen.cpp.o.d"
  "CMakeFiles/phmse_constraints.dir/io.cpp.o"
  "CMakeFiles/phmse_constraints.dir/io.cpp.o.d"
  "CMakeFiles/phmse_constraints.dir/ribo_gen.cpp.o"
  "CMakeFiles/phmse_constraints.dir/ribo_gen.cpp.o.d"
  "CMakeFiles/phmse_constraints.dir/set.cpp.o"
  "CMakeFiles/phmse_constraints.dir/set.cpp.o.d"
  "libphmse_constraints.a"
  "libphmse_constraints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phmse_constraints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
