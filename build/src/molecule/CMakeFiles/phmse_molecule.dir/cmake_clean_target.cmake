file(REMOVE_RECURSE
  "libphmse_molecule.a"
)
