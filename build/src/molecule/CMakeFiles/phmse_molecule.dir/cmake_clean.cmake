file(REMOVE_RECURSE
  "CMakeFiles/phmse_molecule.dir/geom.cpp.o"
  "CMakeFiles/phmse_molecule.dir/geom.cpp.o.d"
  "CMakeFiles/phmse_molecule.dir/ribo30s.cpp.o"
  "CMakeFiles/phmse_molecule.dir/ribo30s.cpp.o.d"
  "CMakeFiles/phmse_molecule.dir/rna_helix.cpp.o"
  "CMakeFiles/phmse_molecule.dir/rna_helix.cpp.o.d"
  "CMakeFiles/phmse_molecule.dir/topology.cpp.o"
  "CMakeFiles/phmse_molecule.dir/topology.cpp.o.d"
  "CMakeFiles/phmse_molecule.dir/xyz_io.cpp.o"
  "CMakeFiles/phmse_molecule.dir/xyz_io.cpp.o.d"
  "libphmse_molecule.a"
  "libphmse_molecule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phmse_molecule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
