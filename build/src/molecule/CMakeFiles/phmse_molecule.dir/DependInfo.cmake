
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/molecule/geom.cpp" "src/molecule/CMakeFiles/phmse_molecule.dir/geom.cpp.o" "gcc" "src/molecule/CMakeFiles/phmse_molecule.dir/geom.cpp.o.d"
  "/root/repo/src/molecule/ribo30s.cpp" "src/molecule/CMakeFiles/phmse_molecule.dir/ribo30s.cpp.o" "gcc" "src/molecule/CMakeFiles/phmse_molecule.dir/ribo30s.cpp.o.d"
  "/root/repo/src/molecule/rna_helix.cpp" "src/molecule/CMakeFiles/phmse_molecule.dir/rna_helix.cpp.o" "gcc" "src/molecule/CMakeFiles/phmse_molecule.dir/rna_helix.cpp.o.d"
  "/root/repo/src/molecule/topology.cpp" "src/molecule/CMakeFiles/phmse_molecule.dir/topology.cpp.o" "gcc" "src/molecule/CMakeFiles/phmse_molecule.dir/topology.cpp.o.d"
  "/root/repo/src/molecule/xyz_io.cpp" "src/molecule/CMakeFiles/phmse_molecule.dir/xyz_io.cpp.o" "gcc" "src/molecule/CMakeFiles/phmse_molecule.dir/xyz_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/phmse_support.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/phmse_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/phmse_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/phmse_perf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
