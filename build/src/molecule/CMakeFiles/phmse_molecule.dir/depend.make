# Empty dependencies file for phmse_molecule.
# This may be replaced when dependencies are built.
