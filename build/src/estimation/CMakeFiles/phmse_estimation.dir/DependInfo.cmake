
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/estimation/analysis.cpp" "src/estimation/CMakeFiles/phmse_estimation.dir/analysis.cpp.o" "gcc" "src/estimation/CMakeFiles/phmse_estimation.dir/analysis.cpp.o.d"
  "/root/repo/src/estimation/combine.cpp" "src/estimation/CMakeFiles/phmse_estimation.dir/combine.cpp.o" "gcc" "src/estimation/CMakeFiles/phmse_estimation.dir/combine.cpp.o.d"
  "/root/repo/src/estimation/nongaussian.cpp" "src/estimation/CMakeFiles/phmse_estimation.dir/nongaussian.cpp.o" "gcc" "src/estimation/CMakeFiles/phmse_estimation.dir/nongaussian.cpp.o.d"
  "/root/repo/src/estimation/residuals.cpp" "src/estimation/CMakeFiles/phmse_estimation.dir/residuals.cpp.o" "gcc" "src/estimation/CMakeFiles/phmse_estimation.dir/residuals.cpp.o.d"
  "/root/repo/src/estimation/solver.cpp" "src/estimation/CMakeFiles/phmse_estimation.dir/solver.cpp.o" "gcc" "src/estimation/CMakeFiles/phmse_estimation.dir/solver.cpp.o.d"
  "/root/repo/src/estimation/state.cpp" "src/estimation/CMakeFiles/phmse_estimation.dir/state.cpp.o" "gcc" "src/estimation/CMakeFiles/phmse_estimation.dir/state.cpp.o.d"
  "/root/repo/src/estimation/update.cpp" "src/estimation/CMakeFiles/phmse_estimation.dir/update.cpp.o" "gcc" "src/estimation/CMakeFiles/phmse_estimation.dir/update.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/constraints/CMakeFiles/phmse_constraints.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/phmse_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/phmse_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/phmse_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/phmse_support.dir/DependInfo.cmake"
  "/root/repo/build/src/molecule/CMakeFiles/phmse_molecule.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
