file(REMOVE_RECURSE
  "libphmse_estimation.a"
)
