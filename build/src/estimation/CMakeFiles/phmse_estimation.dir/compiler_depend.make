# Empty compiler generated dependencies file for phmse_estimation.
# This may be replaced when dependencies are built.
