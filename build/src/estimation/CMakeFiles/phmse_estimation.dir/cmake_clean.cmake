file(REMOVE_RECURSE
  "CMakeFiles/phmse_estimation.dir/analysis.cpp.o"
  "CMakeFiles/phmse_estimation.dir/analysis.cpp.o.d"
  "CMakeFiles/phmse_estimation.dir/combine.cpp.o"
  "CMakeFiles/phmse_estimation.dir/combine.cpp.o.d"
  "CMakeFiles/phmse_estimation.dir/nongaussian.cpp.o"
  "CMakeFiles/phmse_estimation.dir/nongaussian.cpp.o.d"
  "CMakeFiles/phmse_estimation.dir/residuals.cpp.o"
  "CMakeFiles/phmse_estimation.dir/residuals.cpp.o.d"
  "CMakeFiles/phmse_estimation.dir/solver.cpp.o"
  "CMakeFiles/phmse_estimation.dir/solver.cpp.o.d"
  "CMakeFiles/phmse_estimation.dir/state.cpp.o"
  "CMakeFiles/phmse_estimation.dir/state.cpp.o.d"
  "CMakeFiles/phmse_estimation.dir/update.cpp.o"
  "CMakeFiles/phmse_estimation.dir/update.cpp.o.d"
  "libphmse_estimation.a"
  "libphmse_estimation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phmse_estimation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
