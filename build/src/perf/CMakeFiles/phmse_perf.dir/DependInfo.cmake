
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/perf/category.cpp" "src/perf/CMakeFiles/phmse_perf.dir/category.cpp.o" "gcc" "src/perf/CMakeFiles/phmse_perf.dir/category.cpp.o.d"
  "/root/repo/src/perf/profile.cpp" "src/perf/CMakeFiles/phmse_perf.dir/profile.cpp.o" "gcc" "src/perf/CMakeFiles/phmse_perf.dir/profile.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/phmse_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
