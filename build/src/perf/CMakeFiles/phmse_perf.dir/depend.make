# Empty dependencies file for phmse_perf.
# This may be replaced when dependencies are built.
