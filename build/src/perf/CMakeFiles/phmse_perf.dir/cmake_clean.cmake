file(REMOVE_RECURSE
  "CMakeFiles/phmse_perf.dir/category.cpp.o"
  "CMakeFiles/phmse_perf.dir/category.cpp.o.d"
  "CMakeFiles/phmse_perf.dir/profile.cpp.o"
  "CMakeFiles/phmse_perf.dir/profile.cpp.o.d"
  "libphmse_perf.a"
  "libphmse_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phmse_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
