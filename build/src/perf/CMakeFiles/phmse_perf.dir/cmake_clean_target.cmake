file(REMOVE_RECURSE
  "libphmse_perf.a"
)
