#include "perf/profile.hpp"

#include <algorithm>
#include <sstream>

#include "support/table.hpp"

namespace phmse::perf {

double Profile::total() const {
  double sum = 0.0;
  for (double t : times_) sum += t;
  return sum;
}

Profile& Profile::operator+=(const Profile& other) {
  for (std::size_t i = 0; i < kNumCategories; ++i) times_[i] += other.times_[i];
  return *this;
}

Profile Profile::minus(const Profile& other) const {
  Profile out;
  for (std::size_t i = 0; i < kNumCategories; ++i) {
    out.times_[i] = std::max(0.0, times_[i] - other.times_[i]);
  }
  return out;
}

void Profile::max_with(const Profile& other) {
  for (std::size_t i = 0; i < kNumCategories; ++i) {
    times_[i] = std::max(times_[i], other.times_[i]);
  }
}

std::string Profile::summary(int precision) const {
  std::ostringstream os;
  bool first = true;
  for (Category c : all_categories()) {
    if (!first) os << ' ';
    first = false;
    os << category_name(c) << '=' << format_fixed(time(c), precision);
  }
  return os.str();
}

}  // namespace phmse::perf
