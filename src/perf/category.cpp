#include "perf/category.hpp"

namespace phmse::perf {

std::string_view category_name(Category c) {
  switch (c) {
    case Category::kDenseSparse: return "d-s";
    case Category::kCholesky: return "chol";
    case Category::kSystemSolve: return "sys";
    case Category::kMatMat: return "m-m";
    case Category::kMatVec: return "m-v";
    case Category::kVector: return "vec";
    case Category::kOther: return "other";
  }
  return "?";
}

}  // namespace phmse::perf
