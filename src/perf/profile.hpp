// Per-category time accumulation.
//
// A Profile records how much time (real seconds on the host, or virtual
// seconds on a simulated machine) was spent in each operation category.
// This reproduces the breakdown columns of the paper's Tables 3-6.
#pragma once

#include <array>
#include <string>

#include "perf/category.hpp"

namespace phmse::perf {

/// Accumulated time per operation category.  Addable so per-worker or
/// per-node profiles can be merged.
class Profile {
 public:
  Profile() { times_.fill(0.0); }

  void add(Category c, double seconds) {
    times_[static_cast<std::size_t>(c)] += seconds;
  }

  double time(Category c) const {
    return times_[static_cast<std::size_t>(c)];
  }

  /// Sum across all categories (including `other`).
  double total() const;

  Profile& operator+=(const Profile& other);

  /// Element-wise max; used to report the critical-path view of a team.
  void max_with(const Profile& other);

  /// Element-wise difference clamped at zero; used to report what one solve
  /// added to a context whose profile accumulates across solves.
  Profile minus(const Profile& other) const;

  void clear() { times_.fill(0.0); }

  /// One-line summary "d-s=... chol=... ..." for logs.
  std::string summary(int precision = 3) const;

 private:
  std::array<double, kNumCategories> times_;
};

}  // namespace phmse::perf
