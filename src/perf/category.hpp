// Operation categories used in the paper's time-distribution tables.
//
// The paper (Tables 3-6) breaks execution time into six categories of array
// operations that account for almost all of the run time:
//   d-s  : dense-sparse matrix multiplications (C*H^T and H*(C*H^T))
//   chol : Cholesky factorization of the innovation covariance
//   sys  : triangular system solves for the filter gain
//   m-m  : dense matrix multiplications (covariance update)
//   m-v  : dense matrix-vector multiplications (state update)
//   vec  : vector operations (residuals, axpy, copies)
// `other` collects everything else (constraint evaluation, bookkeeping).
#pragma once

#include <array>
#include <cstddef>
#include <string_view>

namespace phmse::perf {

enum class Category : int {
  kDenseSparse = 0,
  kCholesky,
  kSystemSolve,
  kMatMat,
  kMatVec,
  kVector,
  kOther,
};

inline constexpr std::size_t kNumCategories = 7;

/// Short labels matching the column headers of the paper's tables.
std::string_view category_name(Category c);

/// All categories in table-column order.
constexpr std::array<Category, kNumCategories> all_categories() {
  return {Category::kDenseSparse, Category::kCholesky, Category::kSystemSolve,
          Category::kMatMat,      Category::kMatVec,   Category::kVector,
          Category::kOther};
}

}  // namespace phmse::perf
