// Constraint generator for the RNA double-helix problems.
//
// Reproduces the paper's five categories of distance constraints (Section
// 3.1):
//   1. distances between atoms in the backbones;
//   2. distances between atoms in the sidechains;
//   3. backbone-to-sidechain distances within a base;
//   4. distances across the two sides of a base pair;
//   5. distances across two adjacent base pairs.
//
// With all-pairs generation inside groups, sidechain-sidechain plus
// backbone-backbone pairs across a base pair, and per-junction stacking +
// backbone-link pairs, the totals land within 0.2% of the paper's Table 1
// (675, 1574, 3294, 6810, 13824 for helices of 1..16 base pairs; ours are
// 675, 1574, 3288, 6792, 13800).
#pragma once

#include "constraints/set.hpp"
#include "molecule/rna_helix.hpp"

namespace phmse::cons {

/// Noise levels per category; defaults reflect precise general-chemistry
/// data for intra-base geometry and coarser experimental data across bases.
struct HelixNoise {
  double intra_base_sigma = 0.05;   // categories 1-3
  double cross_pair_sigma = 0.15;   // category 4
  double junction_sigma = 0.30;     // category 5
  /// When true, adds 12 position observations (category 0) on four atoms of
  /// the first base pair, pinning the reference frame the way the paper's
  /// ribosome problem is pinned by its neutron-mapped proteins.  Distance
  /// data alone leaves the global pose unobservable, so convergence studies
  /// enable this; the Table-1/2 timing runs leave it off to keep the
  /// constraint counts exactly comparable to the paper.
  bool anchor_first_pair = false;
  double anchor_sigma = 0.05;
  /// When true, adds general-chemistry bond-angle (category 6) and torsion
  /// (category 7) observations along each backbone — the paper's Section 1
  /// lists bond angles and torsion angles among the knowledge sources,
  /// though its timing experiments use distances only (which is why these
  /// are off by default).
  bool include_chemistry_angles = false;
  double angle_sigma = 0.03;    // radians
  double torsion_sigma = 0.08;  // radians
  std::uint64_t seed = 0xbadc0ffeULL;
};

/// Generates the full constraint set for `model`.  Category tags 1..5 match
/// the list above.
ConstraintSet generate_helix_constraints(const mol::HelixModel& model,
                                         const HelixNoise& noise = {});

/// Closed-form constraint count for a helix of the given sequence (used by
/// tests and by Table 1's row metadata without generating the set).
Index helix_constraint_count(const std::string& sequence);

}  // namespace phmse::cons
