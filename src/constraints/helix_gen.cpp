#include "constraints/helix_gen.hpp"

#include "support/check.hpp"

namespace phmse::cons {
namespace {

using mol::BaseGroup;
using mol::BasePair;
using mol::HelixModel;

void all_pairs_within(const HelixModel& model, Index begin, Index end,
                      double sigma, int category, Rng& rng,
                      ConstraintSet& out) {
  for (Index i = begin; i < end; ++i) {
    for (Index j = i + 1; j < end; ++j) {
      out.add(make_observed(Kind::kDistance, {i, j, 0, 0}, model.topology,
                            sigma, rng, category));
    }
  }
}

void all_pairs_between(const HelixModel& model, Index b1, Index e1, Index b2,
                       Index e2, double sigma, int category, Rng& rng,
                       ConstraintSet& out) {
  for (Index i = b1; i < e1; ++i) {
    for (Index j = b2; j < e2; ++j) {
      out.add(make_observed(Kind::kDistance, {i, j, 0, 0}, model.topology,
                            sigma, rng, category));
    }
  }
}

// Category 5 backbone links: each backbone atom of base `cur` to the two
// same-rank and next-rank atoms of the next base's backbone (24 pairs).
void backbone_links(const HelixModel& model, const BaseGroup& cur,
                    const BaseGroup& next, double sigma, Rng& rng,
                    ConstraintSet& out) {
  const Index n = mol::kBackboneAtoms;
  for (Index k = 0; k < n; ++k) {
    const Index a = cur.backbone_begin + k;
    const Index b0 = next.backbone_begin + k;
    const Index b1 = next.backbone_begin + (k + 1) % n;
    out.add(make_observed(Kind::kDistance, {a, b0, 0, 0}, model.topology,
                          sigma, rng, 5));
    out.add(make_observed(Kind::kDistance, {a, b1, 0, 0}, model.topology,
                          sigma, rng, 5));
  }
}

}  // namespace

ConstraintSet generate_helix_constraints(const mol::HelixModel& model,
                                         const HelixNoise& noise) {
  ConstraintSet out;
  Rng rng(noise.seed);

  if (noise.anchor_first_pair) {
    const BasePair& first = model.pairs.front();
    const std::array<Index, 4> anchors = {
        first.strand1.backbone_begin, first.strand1.backbone_begin + 5,
        first.strand2.backbone_begin, first.strand2.backbone_begin + 5};
    for (Index atom : anchors) {
      for (int axis = 0; axis < 3; ++axis) {
        out.add(make_observed(Kind::kPosition, {atom, 0, 0, 0},
                              model.topology, noise.anchor_sigma, rng, 0,
                              axis));
      }
    }
  }

  for (const BasePair& pair : model.pairs) {
    for (const BaseGroup* base : {&pair.strand1, &pair.strand2}) {
      // Category 1: within-backbone distances.
      all_pairs_within(model, base->backbone_begin, base->backbone_end,
                       noise.intra_base_sigma, 1, rng, out);
      // Category 2: within-sidechain distances.
      all_pairs_within(model, base->sidechain_begin, base->sidechain_end,
                       noise.intra_base_sigma, 2, rng, out);
      // Category 3: backbone-to-sidechain distances of the base.
      all_pairs_between(model, base->backbone_begin, base->backbone_end,
                        base->sidechain_begin, base->sidechain_end,
                        noise.intra_base_sigma, 3, rng, out);
    }
    // Category 4: across the base pair — sidechain-sidechain (the
    // Watson-Crick interface) and backbone-backbone (the groove widths).
    all_pairs_between(model, pair.strand1.sidechain_begin,
                      pair.strand1.sidechain_end,
                      pair.strand2.sidechain_begin,
                      pair.strand2.sidechain_end, noise.cross_pair_sigma, 4,
                      rng, out);
    all_pairs_between(model, pair.strand1.backbone_begin,
                      pair.strand1.backbone_end, pair.strand2.backbone_begin,
                      pair.strand2.backbone_end, noise.cross_pair_sigma, 4,
                      rng, out);
  }

  // Categories 6-7 (optional): general-chemistry bond angles and torsions
  // along each backbone chain.
  if (noise.include_chemistry_angles) {
    for (const BasePair& pair : model.pairs) {
      for (const BaseGroup* base : {&pair.strand1, &pair.strand2}) {
        for (Index a = base->backbone_begin; a + 2 < base->backbone_end;
             ++a) {
          out.add(make_observed(Kind::kAngle, {a, a + 1, a + 2, 0},
                                model.topology, noise.angle_sigma, rng, 6));
        }
        for (Index a = base->backbone_begin; a + 3 < base->backbone_end;
             ++a) {
          out.add(make_observed(Kind::kTorsion, {a, a + 1, a + 2, a + 3},
                                model.topology, noise.torsion_sigma, rng,
                                7));
        }
      }
    }
  }

  // Category 5: junctions between adjacent base pairs — sidechain stacking
  // on each strand plus backbone chain links.
  for (Index p = 0; p + 1 < model.num_pairs(); ++p) {
    const BasePair& cur = model.pairs[static_cast<std::size_t>(p)];
    const BasePair& nxt = model.pairs[static_cast<std::size_t>(p + 1)];
    all_pairs_between(model, cur.strand1.sidechain_begin,
                      cur.strand1.sidechain_end, nxt.strand1.sidechain_begin,
                      nxt.strand1.sidechain_end, noise.junction_sigma, 5, rng,
                      out);
    all_pairs_between(model, cur.strand2.sidechain_begin,
                      cur.strand2.sidechain_end, nxt.strand2.sidechain_begin,
                      nxt.strand2.sidechain_end, noise.junction_sigma, 5, rng,
                      out);
    backbone_links(model, cur.strand1, nxt.strand1, noise.junction_sigma, rng,
                   out);
    backbone_links(model, cur.strand2, nxt.strand2, noise.junction_sigma, rng,
                   out);
  }
  return out;
}

Index helix_constraint_count(const std::string& sequence) {
  const Index bb = mol::kBackboneAtoms;
  Index total = 0;
  Index prev_s1 = -1;
  Index prev_s2 = -1;
  for (char t1 : sequence) {
    const Index s1 = mol::sidechain_atoms(t1);
    const Index s2 = mol::sidechain_atoms(mol::complement(t1));
    // Categories 1-3, both bases.
    total += 2 * (bb * (bb - 1) / 2);
    total += s1 * (s1 - 1) / 2 + s2 * (s2 - 1) / 2;
    total += bb * s1 + bb * s2;
    // Category 4.
    total += s1 * s2 + bb * bb;
    // Category 5 from the previous pair.
    if (prev_s1 >= 0) {
      total += prev_s1 * s1 + prev_s2 * s2 + 2 * (2 * bb);
    }
    prev_s1 = s1;
    prev_s2 = s2;
  }
  return total;
}

}  // namespace phmse::cons
