#include "constraints/set.hpp"

#include <cmath>

#include "support/check.hpp"

namespace phmse::cons {

void ConstraintSet::append(const ConstraintSet& other) {
  constraints_.insert(constraints_.end(), other.constraints_.begin(),
                      other.constraints_.end());
}

std::pair<Index, Index> ConstraintSet::atom_span() const {
  if (constraints_.empty()) return {0, -1};
  Index lo = constraints_[0].atoms[0];
  Index hi = lo;
  for (const Constraint& c : constraints_) {
    const Index n = arity(c.kind);
    for (Index k = 0; k < n; ++k) {
      lo = std::min(lo, c.atoms[static_cast<std::size_t>(k)]);
      hi = std::max(hi, c.atoms[static_cast<std::size_t>(k)]);
    }
  }
  return {lo, hi};
}

Index ConstraintSet::count_category(int category) const {
  Index n = 0;
  for (const Constraint& c : constraints_) {
    if (c.category == category) ++n;
  }
  return n;
}

Constraint make_observed(Kind kind, const std::array<Index, 4>& atoms,
                         const mol::Topology& topology, double sigma,
                         Rng& rng, int category, int axis) {
  PHMSE_CHECK(sigma > 0.0, "observation noise must be positive");
  Constraint c;
  c.kind = kind;
  c.atoms = atoms;
  c.axis = axis;
  c.category = category;
  c.variance = sigma * sigma;

  std::array<mol::Vec3, 4> pos{};
  for (Index k = 0; k < arity(kind); ++k) {
    pos[static_cast<std::size_t>(k)] =
        topology.atom(atoms[static_cast<std::size_t>(k)]).position;
  }
  c.observed = evaluate(c, pos) + rng.gaussian(0.0, sigma);
  return c;
}

double rms_residual(const ConstraintSet& set, const mol::Topology& topology,
                    const linalg::Vector& state) {
  if (set.empty()) return 0.0;
  const auto positions = topology.positions_from_state(state);
  double sum = 0.0;
  for (const Constraint& c : set.all()) {
    std::array<mol::Vec3, 4> pos{};
    for (Index k = 0; k < arity(c.kind); ++k) {
      pos[static_cast<std::size_t>(k)] =
          positions[static_cast<std::size_t>(c.atoms[static_cast<std::size_t>(k)])];
    }
    const double r = c.observed - evaluate(c, pos);
    sum += r * r;
  }
  return std::sqrt(sum / static_cast<double>(set.size()));
}

}  // namespace phmse::cons
