#include "constraints/ribo_gen.hpp"

#include <algorithm>
#include <set>
#include <utility>
#include <vector>

#include "support/check.hpp"

namespace phmse::cons {
namespace {

using mol::Ribo30sModel;
using mol::Segment;

// Indices of the `k` nearest segments to `from` among `candidates`
// (by layout-center distance, excluding `from` itself).
std::vector<Index> nearest_segments(const Ribo30sModel& model, Index from,
                                    const std::vector<Index>& candidates,
                                    int k) {
  const auto& segs = model.segments;
  std::vector<std::pair<double, Index>> dist;
  dist.reserve(candidates.size());
  for (Index j : candidates) {
    if (j == from) continue;
    const double d = mol::distance(segs[static_cast<std::size_t>(from)].center,
                                   segs[static_cast<std::size_t>(j)].center);
    dist.emplace_back(d, j);
  }
  const std::size_t take = std::min<std::size_t>(dist.size(),
                                                 static_cast<std::size_t>(k));
  std::partial_sort(dist.begin(), dist.begin() + static_cast<std::ptrdiff_t>(take),
                    dist.end());
  std::vector<Index> out;
  out.reserve(take);
  for (std::size_t i = 0; i < take; ++i) out.push_back(dist[i].second);
  return out;
}

// Adds `count` atom-pair distance constraints between two segments,
// spreading the picked atoms across both ranges deterministically.
void link_segments(const Ribo30sModel& model, const Segment& a,
                   const Segment& b, int count, double sigma, int category,
                   Rng& rng, ConstraintSet& out) {
  for (int p = 0; p < count; ++p) {
    const Index ai = a.begin + (p * 2654435761u) % a.size();
    const Index bi = b.begin + (p * 2246822519u + 1) % b.size();
    out.add(make_observed(Kind::kDistance, {ai, bi, 0, 0}, model.topology,
                          sigma, rng, category));
  }
}

}  // namespace

ConstraintSet generate_ribo_constraints(const mol::Ribo30sModel& model,
                                        const RiboGenOptions& options) {
  ConstraintSet out;
  Rng rng(options.seed);

  std::vector<Index> rna_segments;
  std::vector<Index> protein_segments;
  for (Index s = 0; s < model.num_segments(); ++s) {
    const Segment& seg = model.segments[static_cast<std::size_t>(s)];
    if (seg.kind == Segment::Kind::kProtein) {
      protein_segments.push_back(s);
    } else {
      rna_segments.push_back(s);
    }
  }

  // Category 1: intra-segment geometry (all pairs).
  for (Index s : rna_segments) {
    const Segment& seg = model.segments[static_cast<std::size_t>(s)];
    for (Index i = seg.begin; i < seg.end; ++i) {
      for (Index j = i + 1; j < seg.end; ++j) {
        out.add(make_observed(Kind::kDistance, {i, j, 0, 0}, model.topology,
                              options.intra_sigma, rng, 1));
      }
    }
  }

  // Category 2: RNA-to-RNA links between nearby segments.
  std::set<std::pair<Index, Index>> linked;
  for (Index s : rna_segments) {
    for (Index t : nearest_segments(model, s, rna_segments,
                                    options.neighbours)) {
      const auto key = std::minmax(s, t);
      if (!linked.insert({key.first, key.second}).second) continue;
      link_segments(model, model.segments[static_cast<std::size_t>(s)],
                    model.segments[static_cast<std::size_t>(t)],
                    options.pairs_per_link, options.inter_sigma, 2, rng, out);
    }
  }

  // Category 3: RNA segment to its nearest protein.
  for (Index s : rna_segments) {
    const auto near = nearest_segments(model, s, protein_segments, 1);
    if (near.empty()) continue;
    link_segments(model, model.segments[static_cast<std::size_t>(s)],
                  model.segments[static_cast<std::size_t>(near[0])],
                  options.pairs_per_protein_link, options.protein_sigma, 3,
                  rng, out);
  }

  // Category 4: protein anchors (neutron map).
  for (Index s : protein_segments) {
    const Segment& seg = model.segments[static_cast<std::size_t>(s)];
    for (int axis = 0; axis < 3; ++axis) {
      out.add(make_observed(Kind::kPosition, {seg.begin, 0, 0, 0},
                            model.topology, options.anchor_sigma, rng, 4,
                            axis));
    }
  }
  return out;
}

}  // namespace phmse::cons
