// Collections of constraints.
#pragma once

#include <vector>

#include "constraints/constraint.hpp"
#include "molecule/topology.hpp"
#include "support/rng.hpp"

namespace phmse::cons {

/// An ordered collection of scalar constraints.
class ConstraintSet {
 public:
  ConstraintSet() = default;

  void add(const Constraint& c) { constraints_.push_back(c); }

  /// Appends all of `other`'s constraints.
  void append(const ConstraintSet& other);

  Index size() const { return static_cast<Index>(constraints_.size()); }
  bool empty() const { return constraints_.empty(); }

  const Constraint& operator[](Index i) const {
    PHMSE_ASSERT(i >= 0 && i < size());
    return constraints_[static_cast<std::size_t>(i)];
  }

  const std::vector<Constraint>& all() const { return constraints_; }

  /// Overwrites the observed value of constraint `i` in place.  Lets a
  /// compiled solve plan rebind fresh measurements without re-running
  /// constraint-to-node assignment.
  void set_observed(Index i, double value) {
    PHMSE_ASSERT(i >= 0 && i < size());
    constraints_[static_cast<std::size_t>(i)].observed = value;
  }

  /// Smallest / largest atom id referenced (the whole set must fit inside
  /// one hierarchy node's contiguous atom range).  Empty set: {0, -1}.
  std::pair<Index, Index> atom_span() const;

  /// Count of constraints tagged with `category`.
  Index count_category(int category) const;

 private:
  std::vector<Constraint> constraints_;
};

/// Creates a constraint of `kind` over `atoms`, observing the ground-truth
/// value of `topology` plus Gaussian noise of standard deviation `sigma`.
Constraint make_observed(Kind kind, const std::array<Index, 4>& atoms,
                         const mol::Topology& topology, double sigma,
                         Rng& rng, int category = 0, int axis = 0);

/// Root-mean-square residual of the set at the positions in `state`
/// (observed minus predicted); the convergence studies report this.
double rms_residual(const ConstraintSet& set, const mol::Topology& topology,
                    const linalg::Vector& state);

}  // namespace phmse::cons
