#include "constraints/io.hpp"

#include <cmath>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "support/check.hpp"

namespace phmse::cons {
namespace {

[[noreturn]] void fail(int line, const std::string& what) {
  throw Error("constraint file, line " + std::to_string(line) + ": " + what);
}

Index parse_atom(const std::string& tok, Index num_atoms, int line) {
  std::size_t pos = 0;
  long long v = 0;
  try {
    v = std::stoll(tok, &pos);
  } catch (const std::exception&) {
    fail(line, "bad atom id '" + tok + "'");
  }
  if (pos != tok.size() || v < 0) fail(line, "bad atom id '" + tok + "'");
  if (num_atoms >= 0 && v >= num_atoms) {
    fail(line, "atom id " + tok + " out of range (structure has " +
                   std::to_string(num_atoms) + " atoms)");
  }
  return static_cast<Index>(v);
}

double parse_num(const std::string& tok, int line, const char* what) {
  std::size_t pos = 0;
  double v = 0.0;
  try {
    v = std::stod(tok, &pos);
  } catch (const std::exception&) {
    fail(line, std::string("bad ") + what + " '" + tok + "'");
  }
  if (pos != tok.size()) {
    fail(line, std::string("bad ") + what + " '" + tok + "'");
  }
  return v;
}

int parse_axis(const std::string& tok, int line) {
  if (tok == "x" || tok == "0") return 0;
  if (tok == "y" || tok == "1") return 1;
  if (tok == "z" || tok == "2") return 2;
  fail(line, "bad axis '" + tok + "' (want x, y or z)");
}

}  // namespace

ConstraintSet read_constraints(std::istream& is, Index num_atoms) {
  ConstraintSet out;
  std::string line;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    // Strip comments.
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::string kind;
    if (!(ls >> kind)) continue;  // blank

    std::vector<std::string> tok;
    for (std::string t; ls >> t;) tok.push_back(t);

    Constraint c;
    std::size_t expect_atoms = 0;
    if (kind == "distance") {
      c.kind = Kind::kDistance;
      expect_atoms = 2;
    } else if (kind == "angle") {
      c.kind = Kind::kAngle;
      expect_atoms = 3;
    } else if (kind == "torsion") {
      c.kind = Kind::kTorsion;
      expect_atoms = 4;
    } else if (kind == "position") {
      c.kind = Kind::kPosition;
      expect_atoms = 1;
    } else {
      fail(line_no, "unknown constraint kind '" + kind + "'");
    }

    const std::size_t extra = c.kind == Kind::kPosition ? 1 : 0;  // axis
    if (tok.size() != expect_atoms + extra + 2 &&
        tok.size() != expect_atoms + extra + 3) {
      fail(line_no, "expected " + std::to_string(expect_atoms + extra + 2) +
                        " or " +
                        std::to_string(expect_atoms + extra + 3) +
                        " fields after '" + kind + "', got " +
                        std::to_string(tok.size()));
    }

    std::size_t t = 0;
    for (std::size_t a = 0; a < expect_atoms; ++a) {
      c.atoms[a] = parse_atom(tok[t++], num_atoms, line_no);
    }
    if (c.kind == Kind::kPosition) c.axis = parse_axis(tok[t++], line_no);
    c.observed = parse_num(tok[t++], line_no, "observed value");
    // std::stod happily parses "nan" and "inf"; an observation that is not a
    // finite number can never be satisfied and would poison the solve, so
    // reject it here with the line number rather than mid-update.
    if (!std::isfinite(c.observed)) {
      fail(line_no, "observed value must be finite");
    }
    const double sigma = parse_num(tok[t++], line_no, "sigma");
    if (!std::isfinite(sigma)) fail(line_no, "sigma must be finite");
    if (sigma <= 0.0) fail(line_no, "sigma must be positive");
    c.variance = sigma * sigma;
    if (!std::isfinite(c.variance) || c.variance <= 0.0) {
      fail(line_no, "sigma^2 overflows or underflows a double");
    }
    if (t < tok.size()) {
      // A non-finite or out-of-range value would make the int cast UB
      // (observed in the wild as category -2147483648).
      const double cat = parse_num(tok[t++], line_no, "category");
      if (!(cat >= -2147483648.0 && cat <= 2147483647.0)) {
        fail(line_no, "category out of range");
      }
      c.category = static_cast<int>(cat);
    }
    out.add(c);
  }
  return out;
}

ConstraintSet read_constraints_file(const std::string& path,
                                    Index num_atoms) {
  std::ifstream f(path);
  PHMSE_CHECK(f.good(), "cannot open constraint file: " + path);
  return read_constraints(f, num_atoms);
}

void write_constraints(std::ostream& os, const ConstraintSet& set,
                       const std::string& comment) {
  os << "# PHMSE constraint file";
  if (!comment.empty()) os << " — " << comment;
  os << "\n# " << set.size() << " constraints\n";
  os.precision(12);
  for (const Constraint& c : set.all()) {
    switch (c.kind) {
      case Kind::kDistance:
        os << "distance " << c.atoms[0] << ' ' << c.atoms[1];
        break;
      case Kind::kAngle:
        os << "angle " << c.atoms[0] << ' ' << c.atoms[1] << ' '
           << c.atoms[2];
        break;
      case Kind::kTorsion:
        os << "torsion " << c.atoms[0] << ' ' << c.atoms[1] << ' '
           << c.atoms[2] << ' ' << c.atoms[3];
        break;
      case Kind::kPosition:
        os << "position " << c.atoms[0] << ' '
           << (c.axis == 0 ? 'x' : c.axis == 1 ? 'y' : 'z');
        break;
    }
    os << ' ' << c.observed << ' ' << std::sqrt(c.variance) << ' '
       << c.category << '\n';
  }
}

}  // namespace phmse::cons
