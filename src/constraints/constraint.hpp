// Scalar structural constraints and their measurement functions.
//
// A constraint is one scalar observation z = h(x) + v of the molecular
// state (paper Section 2): an interatomic distance, a bond angle, a torsion
// angle, or a direct position observation of one coordinate.  Each carries
// the noise variance of its measurement process; the estimator treats
// scalar constraints batched into vectors (paper Section 4.3 studies the
// batch dimension).
#pragma once

#include <array>

#include "molecule/geom.hpp"
#include "support/types.hpp"

namespace phmse::cons {

/// Kind of measurement function.
enum class Kind : int {
  kDistance = 0,  // |p_i - p_j|                       (2 atoms)
  kAngle,         // bond angle at j of (i, j, k)      (3 atoms)
  kTorsion,       // dihedral of (i, j, k, l)          (4 atoms)
  kPosition,      // one coordinate of one atom        (1 atom)
};

/// Number of atoms the measurement function of `kind` depends on.
Index arity(Kind kind);

/// One scalar constraint.  Atom ids are global topology indices; the
/// estimation layer remaps them into a node's local state.
struct Constraint {
  Kind kind = Kind::kDistance;
  std::array<Index, 4> atoms = {0, 0, 0, 0};
  /// For kPosition: which coordinate (0=x, 1=y, 2=z).
  int axis = 0;
  /// Observed value (Angstroms or radians).
  double observed = 0.0;
  /// Noise variance of the observation.
  double variance = 1.0;
  /// Generator category tag (e.g. the paper's five helix distance
  /// categories); purely informational.
  int category = 0;
};

/// Gradient of a scalar measurement: up to 4 atoms x 3 coordinates.
struct Gradient {
  std::array<mol::Vec3, 4> d{};  // d[k] = d h / d position(atoms[k])
};

/// Evaluates h at the given atom positions.  `pos[k]` is the position of
/// `c.atoms[k]` (only the first arity(c.kind) entries are read).
double evaluate(const Constraint& c, const std::array<mol::Vec3, 4>& pos);

/// Evaluates h and its gradient.  Degenerate geometries (zero-length bond,
/// straight angle) yield a zero gradient rather than NaN, so a stray
/// configuration cannot poison the filter.
double evaluate_with_gradient(const Constraint& c,
                              const std::array<mol::Vec3, 4>& pos,
                              Gradient& grad);

}  // namespace phmse::cons
