#include "constraints/constraint.hpp"

#include <cmath>

#include "support/check.hpp"

namespace phmse::cons {
namespace {

using mol::Vec3;

constexpr double kDegenerate = 1e-9;

double eval_distance(const Vec3& a, const Vec3& b, Gradient* grad) {
  const Vec3 u = a - b;
  const double d = u.norm();
  if (grad != nullptr) {
    if (d > kDegenerate) {
      const Vec3 g = u * (1.0 / d);
      grad->d[0] = g;
      grad->d[1] = g * -1.0;
    } else {
      grad->d[0] = Vec3{};
      grad->d[1] = Vec3{};
    }
  }
  return d;
}

double eval_angle(const Vec3& a, const Vec3& b, const Vec3& c,
                  Gradient* grad) {
  const Vec3 u = a - b;
  const Vec3 v = c - b;
  const double nu = u.norm();
  const double nv = v.norm();
  if (nu < kDegenerate || nv < kDegenerate) {
    if (grad != nullptr) *grad = Gradient{};
    return 0.0;
  }
  double cosine = u.dot(v) / (nu * nv);
  cosine = cosine > 1.0 ? 1.0 : (cosine < -1.0 ? -1.0 : cosine);
  const double theta = std::acos(cosine);
  if (grad != nullptr) {
    const double sine = std::sqrt(std::max(0.0, 1.0 - cosine * cosine));
    if (sine < kDegenerate) {
      *grad = Gradient{};
    } else {
      // d(theta)/da = -1/sin * d(cos)/da, etc.
      const Vec3 dcos_da = (v * (1.0 / (nu * nv))) - u * (cosine / (nu * nu));
      const Vec3 dcos_dc = (u * (1.0 / (nu * nv))) - v * (cosine / (nv * nv));
      grad->d[0] = dcos_da * (-1.0 / sine);
      grad->d[2] = dcos_dc * (-1.0 / sine);
      grad->d[1] = (grad->d[0] + grad->d[2]) * -1.0;
    }
  }
  return theta;
}

double eval_torsion(const Vec3& a, const Vec3& b, const Vec3& c, const Vec3& d,
                    Gradient* grad) {
  const Vec3 b1 = b - a;
  const Vec3 b2 = c - b;
  const Vec3 b3 = d - c;
  const Vec3 n1 = b1.cross(b2);
  const Vec3 n2 = b2.cross(b3);
  const double nb2 = b2.norm();
  const double n1sq = n1.norm2();
  const double n2sq = n2.norm2();
  if (nb2 < kDegenerate || n1sq < kDegenerate || n2sq < kDegenerate) {
    if (grad != nullptr) *grad = Gradient{};
    return 0.0;
  }
  // Same IUPAC sign convention as mol::dihedral.
  const double phi =
      std::atan2(b2.dot(n1.cross(n2)) / nb2, n1.dot(n2));
  if (grad != nullptr) {
    // Standard analytic dihedral gradient (Blondel-Karplus form, adapted to
    // the b1 = b-a, b2 = c-b, b3 = d-c bond vectors; validated against
    // finite differences in tests/constraint_test.cpp).
    const Vec3 dphi_da = n1 * (-nb2 / n1sq);
    const Vec3 dphi_dd = n2 * (nb2 / n2sq);
    const double s12 = b1.dot(b2) / (nb2 * nb2);
    const double s32 = b3.dot(b2) / (nb2 * nb2);
    grad->d[0] = dphi_da;
    grad->d[1] = dphi_da * (-1.0 - s12) + dphi_dd * s32;
    grad->d[2] = dphi_da * s12 + dphi_dd * (-1.0 - s32);
    grad->d[3] = dphi_dd;
  }
  return phi;
}

double eval_position(const Vec3& a, int axis, Gradient* grad) {
  PHMSE_ASSERT(axis >= 0 && axis <= 2);
  if (grad != nullptr) {
    *grad = Gradient{};
    Vec3 g;
    (axis == 0 ? g.x : axis == 1 ? g.y : g.z) = 1.0;
    grad->d[0] = g;
  }
  return axis == 0 ? a.x : axis == 1 ? a.y : a.z;
}

double eval_dispatch(const Constraint& c, const std::array<Vec3, 4>& pos,
                     Gradient* grad) {
  switch (c.kind) {
    case Kind::kDistance:
      return eval_distance(pos[0], pos[1], grad);
    case Kind::kAngle:
      return eval_angle(pos[0], pos[1], pos[2], grad);
    case Kind::kTorsion:
      return eval_torsion(pos[0], pos[1], pos[2], pos[3], grad);
    case Kind::kPosition:
      return eval_position(pos[0], c.axis, grad);
  }
  PHMSE_CHECK(false, "unknown constraint kind");
  return 0.0;
}

double eval(const Constraint& c, const std::array<Vec3, 4>& pos,
            Gradient* grad) {
  const double value = eval_dispatch(c, pos, grad);
  // The per-kind evaluators guard coincident / collinear geometry (zero
  // gradient, value 0), but non-finite positions sail past those guards —
  // NaN fails every `< kDegenerate` test — and would otherwise leak NaN
  // into the residual AND its gradient.  Extend the same convention to any
  // non-finite evaluation: zero gradient, finite value.  Note this makes
  // the *function* total; a poisoned state is still reported, because
  // BatchUpdater::linearize checks the positions themselves for finiteness.
  if (!std::isfinite(value)) {
    if (grad != nullptr) *grad = Gradient{};
    return 0.0;
  }
  if (grad != nullptr) {
    for (Vec3& g : grad->d) {
      if (!(std::isfinite(g.x) && std::isfinite(g.y) && std::isfinite(g.z))) {
        g = Vec3{};
      }
    }
  }
  return value;
}

}  // namespace

Index arity(Kind kind) {
  switch (kind) {
    case Kind::kDistance: return 2;
    case Kind::kAngle: return 3;
    case Kind::kTorsion: return 4;
    case Kind::kPosition: return 1;
  }
  PHMSE_CHECK(false, "unknown constraint kind");
  return 0;
}

double evaluate(const Constraint& c, const std::array<mol::Vec3, 4>& pos) {
  return eval(c, pos, nullptr);
}

double evaluate_with_gradient(const Constraint& c,
                              const std::array<mol::Vec3, 4>& pos,
                              Gradient& grad) {
  return eval(c, pos, &grad);
}

}  // namespace phmse::cons
