// Plain-text constraint file I/O.
//
// A line-oriented format for exchanging measurement sets, used by the
// phmse_solve command-line tool:
//
//   # comments and blank lines are ignored
//   distance <atom_i> <atom_j> <observed_A> <sigma_A> [category]
//   angle    <i> <j> <k> <observed_rad> <sigma_rad> [category]
//   torsion  <i> <j> <k> <l> <observed_rad> <sigma_rad> [category]
//   position <atom> <axis:x|y|z> <observed_A> <sigma_A> [category]
//
// Values are Angstroms and radians.  Atom ids are 0-based indices into the
// accompanying structure file.
#pragma once

#include <iosfwd>
#include <string>

#include "constraints/set.hpp"

namespace phmse::cons {

/// Parses a constraint stream; throws phmse::Error with a line number on
/// malformed input.  `num_atoms` bounds the atom ids (pass a negative
/// value to skip the check).
ConstraintSet read_constraints(std::istream& is, Index num_atoms = -1);

/// Convenience: reads from a file path.
ConstraintSet read_constraints_file(const std::string& path,
                                    Index num_atoms = -1);

/// Writes `set` in the same format (with a header comment).
void write_constraints(std::ostream& os, const ConstraintSet& set,
                       const std::string& comment = "");

}  // namespace phmse::cons
