// Constraint generator for the synthetic 30S ribosome problem.
//
// The paper's ribo30S problem has ~6500 constraints: geometric constraints
// within helices and coils, experimental distances between helices, and
// distances from helices to the neutron-mapped proteins, which act as
// reference points.  Categories:
//   1. intra-segment distances (all pairs within a helix/coil);
//   2. RNA segment-to-segment distances (k-nearest neighbours by layout);
//   3. RNA segment-to-protein distances;
//   4. protein position anchors (the neutron map), as direct coordinate
//      observations — these also fix the global reference frame.
#pragma once

#include "constraints/set.hpp"
#include "molecule/ribo30s.hpp"

namespace phmse::cons {

/// Generation parameters; defaults land near the paper's ~6500 constraints.
struct RiboGenOptions {
  double intra_sigma = 0.08;
  double inter_sigma = 1.0;     // experimental helix-helix data is coarse
  double protein_sigma = 0.8;   // helix-protein distances
  double anchor_sigma = 0.5;    // neutron-map positional accuracy
  /// Each RNA segment links to its k nearest RNA segments...
  int neighbours = 6;
  /// ...with this many atom-pair distances per link.
  int pairs_per_link = 7;
  /// And to its nearest protein with this many atom-pair distances.
  int pairs_per_protein_link = 4;
  std::uint64_t seed = 0x16517ULL;
};

/// Generates the constraint set for a 30S model.
ConstraintSet generate_ribo_constraints(const mol::Ribo30sModel& model,
                                        const RiboGenOptions& options = {});

}  // namespace phmse::cons
