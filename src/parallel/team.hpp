// TeamContext: fork-join execution on a contiguous range of pool workers.
//
// A team mirrors the paper's notion of "the processors assigned to a node"
// of the structure hierarchy.  The calling thread acts as lane 0 (it is
// typically the first worker of the range, dispatched there by the tree
// executor); lanes 1..k-1 run on the remaining workers of the range.
//
// Exception safety: parallel() and sequential() are exception-transparent.
// If a body throws on any lane, every forked lane still arrives at the
// join (no deadlock, no std::terminate), the elapsed time is still charged
// to the kernel's category, and the first recorded exception — lane 0's
// preferred — is rethrown on the calling lane.  The team and its pool
// remain usable afterwards.
#pragma once

#include <thread>

#include "parallel/exec.hpp"
#include "parallel/thread_pool.hpp"

namespace phmse::par {

/// Fork-join execution context over workers [first, first+size) of a pool.
class TeamContext final : public ExecContext {
 public:
  /// The caller must ensure the worker range is not concurrently used by
  /// another team (the tree executor guarantees disjointness).
  TeamContext(ThreadPool& pool, int first_worker, int size);

  int width() const override { return size_; }

  void parallel(perf::Category cat, Index n, const CostFn& cost,
                const BodyFn& body) override;

  void sequential(perf::Category cat, const CostFn& cost,
                  const SectionFn& body) override;

  const perf::Profile& profile() const override { return profile_; }

  int first_worker() const { return first_; }

 private:
  ThreadPool& pool_;
  int first_;
  int size_;
  perf::Profile profile_;
  /// profile_ is written by the constructing (lane-0) thread only; the
  /// kernel entry points assert this so a cross-thread write — a data race
  /// TSan would flag — fails fast instead.
  std::thread::id owner_;
};

}  // namespace phmse::par
