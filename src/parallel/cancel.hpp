// Cooperative cancellation for the solve stack (DESIGN.md §13).
//
// A CancelToken is one atomic flag plus one deadline clock.  Whoever owns
// the solve arms it — an explicit cancel() from a watchdog thread, a
// deadline set from a per-request budget, or both — and the executors poll
// it at the natural transaction boundaries of the hierarchical solve
// (batch and node boundaries; see core::SolvePlan).  Polling is wait-free
// and costs one relaxed atomic load when no deadline is set; the deadline
// check adds one steady_clock read.
//
// The token itself never interrupts anything: a poll site that observes
// stop_requested() throws CancelledError, which propagates through the
// ordinary exception channels (TaskGroup joins every lane and rethrows on
// the caller), so cancellation is exactly as safe as any other solve
// failure — and the transactional batch update guarantees the state a
// cancelled run leaves behind is a mix of complete per-batch commits,
// never a torn one.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>

#include "support/check.hpp"
#include "support/types.hpp"

namespace phmse::par {

/// Thrown by a cancellation poll site when its token fired.  Carries where
/// the solve stopped (the node's atom range and the batch ordinal, -1 when
/// unknown) and whether the deadline clock — rather than an explicit
/// cancel() — triggered it, so the engine can translate deadline expiry
/// into DeadlineError while passing explicit cancellation through.
class CancelledError : public Error {
 public:
  CancelledError(const std::string& what, bool deadline_expired,
                 Index atom_begin = -1, Index atom_end = -1, Index batch = -1)
      : Error(what),
        deadline_expired(deadline_expired),
        atom_begin(atom_begin),
        atom_end(atom_end),
        batch(batch) {}

  bool deadline_expired = false;
  Index atom_begin = -1;
  Index atom_end = -1;
  Index batch = -1;
};

/// One cancellation scope: an atomic flag plus a steady-clock deadline.
/// Thread-safe by construction — any thread may cancel() while executor
/// lanes poll — but arming (set_deadline*/link/reset) belongs to the owner
/// between solves, not to concurrent pollers.
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Requests cancellation.  Sticky until reset(); safe from any thread.
  void cancel() noexcept { cancelled_.store(true, std::memory_order_release); }

  /// Arms the deadline clock at an absolute steady-clock instant.
  void set_deadline(std::chrono::steady_clock::time_point when) noexcept {
    deadline_ns_.store(when.time_since_epoch().count(),
                       std::memory_order_release);
  }

  /// Arms the deadline clock `seconds` from now (<= 0 fires immediately).
  void set_deadline_after(double seconds) noexcept {
    set_deadline(std::chrono::steady_clock::now() +
                 std::chrono::nanoseconds(
                     static_cast<std::int64_t>(seconds * 1e9)));
  }

  /// Chains an upstream token: this token also reports stop when
  /// `upstream` does (e.g. an engine-owned deadline token observing the
  /// caller's cancellation token).  Set before sharing; null detaches.
  void link(const CancelToken* upstream) noexcept { upstream_ = upstream; }

  /// Disarms flag and deadline (the upstream link survives; re-link to
  /// change it).  Owner-only, between solves.
  void reset() noexcept {
    cancelled_.store(false, std::memory_order_release);
    deadline_ns_.store(kNoDeadline, std::memory_order_release);
  }

  /// True when cancel() was called (here or upstream); never from the
  /// deadline clock alone.
  bool cancel_requested() const noexcept {
    if (cancelled_.load(std::memory_order_acquire)) return true;
    return upstream_ != nullptr && upstream_->cancel_requested();
  }

  /// True when an armed deadline (here or upstream) has passed.
  bool expired() const noexcept {
    const std::int64_t ns = deadline_ns_.load(std::memory_order_acquire);
    if (ns != kNoDeadline &&
        std::chrono::steady_clock::now().time_since_epoch().count() >= ns) {
      return true;
    }
    return upstream_ != nullptr && upstream_->expired();
  }

  /// The poll predicate: explicit cancellation or deadline expiry.
  bool stop_requested() const noexcept {
    return cancel_requested() || expired();
  }

  /// Seconds until the armed deadline (negative once past); +infinity when
  /// no deadline is armed here or upstream.
  double remaining_seconds() const noexcept;

 private:
  static constexpr std::int64_t kNoDeadline =
      std::numeric_limits<std::int64_t>::max();

  std::atomic<bool> cancelled_{false};
  std::atomic<std::int64_t> deadline_ns_{kNoDeadline};
  const CancelToken* upstream_ = nullptr;
};

/// Throws the CancelledError for a poll site that observed `token` firing,
/// naming the node (atom range) and batch it stopped at.  The message is
/// built only on the throw path, so polling itself stays allocation-free.
[[noreturn]] void throw_cancelled(const CancelToken& token, Index atom_begin,
                                  Index atom_end, Index batch);

}  // namespace phmse::par
