// TaskGroup: a fork-join rendezvous that never loses an exception and
// never loses an arrival.
//
// The raw Latch + submit pattern has a classic failure mode: a forked task
// that throws skips its count_down(), so the joining thread blocks forever
// while the exception escapes the worker loop and terminates the process.
// TaskGroup closes both holes.  Every task body runs inside run(), which
// records the first exception thrown by any task and *always* counts the
// arrival; a task whose submission itself failed is accounted for with
// fail().  The joining thread first waits for all arrivals (so forked tasks
// can never outlive the stack frame they capture), then rethrows the first
// recorded exception on its own lane.
#pragma once

#include <exception>
#include <mutex>
#include <utility>

#include "parallel/cancel.hpp"
#include "parallel/thread_pool.hpp"

namespace phmse::par {

/// Joins `count` forked tasks and propagates the first exception any of
/// them threw.  Single-use, like Latch.  Typical shape:
///
///   TaskGroup group(k);
///   for (int i = 0; i < k; ++i) {
///     try {
///       pool.submit(w[i], [&group, ...] { group.run([&] { work(i); }); });
///     } catch (...) {
///       group.fail(std::current_exception());  // submission never ran
///     }
///   }
///   ... optional inline work on the calling thread ...
///   group.wait();         // ALWAYS reached before unwinding this frame
///   group.rethrow_any();  // surface a forked failure on the calling lane
class TaskGroup {
 public:
  explicit TaskGroup(int count) : latch_(count) {}

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Runs `fn` on the calling thread.  An exception thrown by `fn` is
  /// recorded (first one wins) instead of propagating, and the arrival is
  /// counted unconditionally, so wait() cannot deadlock on a failed task.
  ///
  /// With a bound cancel token (DESIGN.md §13), a task that has not started
  /// when the token fires is never entered: its arrival is counted and a
  /// CancelledError recorded instead, so a cancelled fork-join tree stops
  /// at the next task boundary rather than executing every queued subtree
  /// to completion first.
  template <typename Fn>
  void run(Fn&& fn) noexcept {
    if (cancel_ != nullptr && cancel_->stop_requested()) {
      try {
        throw_cancelled(*cancel_, -1, -1, -1);
      } catch (...) {
        record(std::current_exception());
      }
      latch_.count_down();
      return;
    }
    try {
      std::forward<Fn>(fn)();
    } catch (...) {
      record(std::current_exception());
    }
    latch_.count_down();
  }

  /// Binds the token run() consults before entering each task.  Set before
  /// the first submission; null (the default) disables the check.
  void bind_cancel_token(const CancelToken* token) { cancel_ = token; }

  /// Accounts for a task that could never run (e.g. its submission was
  /// rejected by a stopping pool): records `error` and counts the arrival.
  void fail(std::exception_ptr error) noexcept;

  /// Blocks until all `count` tasks have arrived.  Never throws; call this
  /// before unwinding any frame the forked tasks capture by reference.
  void wait() noexcept { latch_.wait(); }

  /// The first recorded exception, or nullptr if every task succeeded.
  std::exception_ptr error() const;

  /// Rethrows the first recorded exception, if any.  Call after wait().
  void rethrow_any();

  /// wait() followed by rethrow_any().
  void join() {
    wait();
    rethrow_any();
  }

 private:
  void record(std::exception_ptr error) noexcept;

  Latch latch_;
  mutable std::mutex mutex_;
  std::exception_ptr first_;
  const CancelToken* cancel_ = nullptr;
};

}  // namespace phmse::par
