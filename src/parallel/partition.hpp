// Static partitioning of iteration ranges.
#pragma once

#include <vector>

#include "support/types.hpp"

namespace phmse::par {

/// A half-open index range [begin, end).
struct Range {
  Index begin = 0;
  Index end = 0;

  Index size() const { return end - begin; }
  bool empty() const { return end <= begin; }
  bool operator==(const Range&) const = default;
};

/// Splits [0, n) into `parts` contiguous ranges whose sizes differ by at
/// most one (the first `n % parts` ranges get the extra element).  Ranges
/// may be empty when parts > n.
std::vector<Range> split_evenly(Index n, int parts);

/// The `lane`-th of `parts` even chunks of [0, n); equivalent to
/// split_evenly(n, parts)[lane] without materializing the vector.
Range even_chunk(Index n, int parts, int lane);

/// Splits [0, n) into contiguous ranges so each range's summed weight is as
/// close as possible to total/parts (greedy prefix cut).  `weight[i]` is the
/// weight of element i; weights must be non-negative.
std::vector<Range> split_weighted(const std::vector<double>& weight,
                                  int parts);

}  // namespace phmse::par
