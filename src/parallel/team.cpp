#include "parallel/team.hpp"

#include <exception>

#include "parallel/partition.hpp"
#include "parallel/task_group.hpp"
#include "support/check.hpp"
#include "support/stopwatch.hpp"

namespace phmse::par {

TeamContext::TeamContext(ThreadPool& pool, int first_worker, int size)
    : pool_(pool),
      first_(first_worker),
      size_(size),
      owner_(std::this_thread::get_id()) {
  PHMSE_CHECK(size >= 1, "team needs at least one lane");
  PHMSE_CHECK(first_worker >= 0 && first_worker + size <= pool.size(),
              "team worker range exceeds pool");
}

void TeamContext::parallel(perf::Category cat, Index n, const CostFn& cost,
                           const BodyFn& body) {
  (void)cost;
  // Single-writer invariant for profile_ (and for the team's worker range).
  PHMSE_ASSERT(std::this_thread::get_id() == owner_);
  Stopwatch sw;
  std::exception_ptr error;
  if (size_ == 1 || n < size_) {
    // Too little work to be worth a fork; run on the calling lane.
    try {
      if (n > 0) body(0, n, 0);
    } catch (...) {
      error = std::current_exception();
    }
  } else {
    TaskGroup group(size_ - 1);
    for (int lane = 1; lane < size_; ++lane) {
      const Range r = even_chunk(n, size_, lane);
      try {
        pool_.submit(first_ + lane, [&group, &body, r, lane] {
          group.run([&] {
            if (!r.empty()) body(r.begin, r.end, lane);
          });
        });
      } catch (...) {
        group.fail(std::current_exception());
      }
    }
    const Range r0 = even_chunk(n, size_, 0);
    try {
      if (!r0.empty()) body(r0.begin, r0.end, 0);
    } catch (...) {
      error = std::current_exception();
    }
    // Join unconditionally before unwinding: the forked lanes capture this
    // frame (group, body) by reference.
    group.wait();
    if (!error) error = group.error();
  }
  profile_.add(cat, sw.seconds());
  if (error) std::rethrow_exception(error);
}

void TeamContext::sequential(perf::Category cat, const CostFn& cost,
                             const SectionFn& body) {
  (void)cost;
  PHMSE_ASSERT(std::this_thread::get_id() == owner_);
  Stopwatch sw;
  std::exception_ptr error;
  try {
    body();
  } catch (...) {
    error = std::current_exception();
  }
  profile_.add(cat, sw.seconds());
  if (error) std::rethrow_exception(error);
}

}  // namespace phmse::par
