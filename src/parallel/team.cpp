#include "parallel/team.hpp"

#include "parallel/partition.hpp"
#include "support/check.hpp"
#include "support/stopwatch.hpp"

namespace phmse::par {

TeamContext::TeamContext(ThreadPool& pool, int first_worker, int size)
    : pool_(pool), first_(first_worker), size_(size) {
  PHMSE_CHECK(size >= 1, "team needs at least one lane");
  PHMSE_CHECK(first_worker >= 0 && first_worker + size <= pool.size(),
              "team worker range exceeds pool");
}

void TeamContext::parallel(perf::Category cat, Index n, const CostFn& cost,
                           const BodyFn& body) {
  (void)cost;
  Stopwatch sw;
  if (size_ == 1 || n < size_) {
    // Too little work to be worth a fork; run on the calling lane.
    if (n > 0) body(0, n, 0);
  } else {
    Latch done(size_ - 1);
    for (int lane = 1; lane < size_; ++lane) {
      const Range r = even_chunk(n, size_, lane);
      pool_.submit(first_ + lane, [&, r, lane] {
        if (!r.empty()) body(r.begin, r.end, lane);
        done.count_down();
      });
    }
    const Range r0 = even_chunk(n, size_, 0);
    if (!r0.empty()) body(r0.begin, r0.end, 0);
    done.wait();
  }
  profile_.add(cat, sw.seconds());
}

void TeamContext::sequential(perf::Category cat, const CostFn& cost,
                             const std::function<void()>& body) {
  (void)cost;
  Stopwatch sw;
  body();
  profile_.add(cat, sw.seconds());
}

}  // namespace phmse::par
