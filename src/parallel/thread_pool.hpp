// A thread pool with addressable workers.
//
// Unlike a generic task pool, PHMSE's scheduler assigns *specific* workers
// to subtrees of the structure hierarchy (paper §4.3), so tasks are
// submitted to a particular worker id.  Worker 0..P-1 mirror the paper's
// processors 0..P-1.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace phmse::par {

/// Fixed-size pool whose workers are addressed by id.
class ThreadPool {
 public:
  /// Spawns `workers` threads.  `workers` >= 1.
  explicit ThreadPool(int workers);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Joins all workers; pending tasks are completed first.
  ~ThreadPool();

  int size() const { return static_cast<int>(slots_.size()); }

  /// Enqueues `task` for execution on worker `worker`.
  void submit(int worker, std::function<void()> task);

 private:
  struct Slot {
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<std::function<void()>> queue;
    bool stop = false;
  };

  void worker_loop(int id);

  std::vector<std::unique_ptr<Slot>> slots_;
  std::vector<std::thread> threads_;
};

/// A completion latch: counts down to zero, wait() blocks until it does.
class Latch {
 public:
  explicit Latch(int count) : count_(count) {}

  void count_down();
  void wait();

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  int count_;
};

}  // namespace phmse::par
