// A thread pool with addressable workers.
//
// Unlike a generic task pool, PHMSE's scheduler assigns *specific* workers
// to subtrees of the structure hierarchy (paper §4.3), so tasks are
// submitted to a particular worker id.  Worker 0..P-1 mirror the paper's
// processors 0..P-1.
//
// Lifecycle and error contract
// ----------------------------
//  * submit() is legal from any thread (including pool workers) until
//    shutdown begins.  Once shutdown() starts — explicitly or via the
//    destructor — submit() fails deterministically with phmse::Error
//    instead of silently racing the teardown; the decision is made under
//    the target worker's queue lock, so a task either runs to completion
//    before the worker exits or is rejected, never dropped.
//  * Tasks must not let exceptions escape: the fork-join layers (TaskGroup,
//    TeamContext) capture exceptions and rethrow them on the joining lane.
//    As a last-resort backstop a raw task that does throw is contained in
//    worker_loop (no std::terminate); the first such exception is retained
//    and can be inspected with take_uncaught_error().
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace phmse::par {

/// Fixed-size pool whose workers are addressed by id.
class ThreadPool {
 public:
  /// Spawns `workers` threads.  `workers` >= 1.
  explicit ThreadPool(int workers);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Equivalent to shutdown().
  ~ThreadPool();

  /// Stops accepting work, lets every worker drain its queue, and joins
  /// all worker threads.  Idempotent; concurrent callers block until the
  /// first call completes.  Must not be called from a pool worker (a
  /// worker cannot join itself).
  void shutdown();

  /// True until shutdown() begins.  Tasks that outlive their submitter can
  /// poll this to bail out of long waits during teardown.
  bool accepting() const noexcept {
    return accepting_.load(std::memory_order_acquire);
  }

  int size() const { return static_cast<int>(slots_.size()); }

  /// Enqueues `task` for execution on worker `worker`.  Throws phmse::Error
  /// if `worker` is out of range, `task` is empty, or shutdown has begun
  /// (submit-after-stop is a contract violation, not a silent no-op).
  void submit(int worker, std::function<void()> task);

  /// Returns and clears the first exception that escaped a raw submitted
  /// task (nullptr if none).  Fork-join layers never trip this — they
  /// capture exceptions before they reach the worker loop.
  std::exception_ptr take_uncaught_error() noexcept;

 private:
  struct Slot {
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<std::function<void()>> queue;
    bool stop = false;
  };

  void worker_loop(int id);

  std::vector<std::unique_ptr<Slot>> slots_;
  std::vector<std::thread> threads_;
  std::once_flag shutdown_once_;
  std::atomic<bool> accepting_{true};
  std::mutex error_mutex_;
  std::exception_ptr uncaught_;
};

/// A completion latch: counts down to zero, wait() blocks until it does.
/// Single-use by default: counting below zero throws phmse::Error (it
/// would otherwise mask a lost-wakeup or double-arrival bug).  reset()
/// re-arms a drained latch for reuse once no waiter can still be inside
/// wait().
class Latch {
 public:
  /// `count` >= 0; with count 0 the latch starts open (wait() returns
  /// immediately).
  explicit Latch(int count);

  Latch(const Latch&) = delete;
  Latch& operator=(const Latch&) = delete;

  /// Records one arrival.  Throws phmse::Error on underflow (more
  /// count_down() calls than the armed count).
  void count_down();

  /// Blocks until the count reaches zero.
  void wait();

  /// Re-arms a drained latch with a new count.  The caller must ensure all
  /// prior waiters have returned from wait(); throws phmse::Error if the
  /// current count is not yet zero.
  void reset(int count);

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  int count_;
};

}  // namespace phmse::par
