#include "parallel/task_group.hpp"

namespace phmse::par {

void TaskGroup::fail(std::exception_ptr error) noexcept {
  record(std::move(error));
  latch_.count_down();
}

std::exception_ptr TaskGroup::error() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return first_;
}

void TaskGroup::rethrow_any() {
  if (std::exception_ptr e = error()) std::rethrow_exception(e);
}

void TaskGroup::record(std::exception_ptr error) noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!first_) first_ = std::move(error);
}

}  // namespace phmse::par
