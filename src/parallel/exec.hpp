// Execution contexts: the seam between numerical kernels and the machinery
// that runs them.
//
// Every parallel kernel in PHMSE is written once against ExecContext and can
// then run three ways:
//   * SerialContext  — plain sequential execution with real wall-clock
//                      category timing (used for the flat baseline and for
//                      the 1-processor rows of the tables);
//   * TeamContext    — fork-join execution on a subset of a ThreadPool's
//                      workers (genuine multicore parallelism);
//   * SimContext     — execution-driven simulation: the numerics run
//                      sequentially, while each lane of a simulated
//                      cache-coherent multiprocessor is charged virtual time
//                      from a cost model (src/simarch).  This reproduces the
//                      paper's DASH/Challenge speedup studies on any host.
//
// A kernel invocation describes (a) an iteration space of `n` independent
// units, (b) a cost function giving flop and memory-traffic estimates for a
// slice of that space, and (c) a body executing a slice.  Real contexts
// ignore the cost function; the simulator ignores wall-clock time.
#pragma once

#include <algorithm>
#include <memory>
#include <type_traits>

#include "parallel/cancel.hpp"
#include "perf/category.hpp"
#include "perf/profile.hpp"
#include "support/types.hpp"

namespace phmse::par {

/// Lightweight non-owning callable reference: two words, no heap, no
/// virtual dispatch.  Kernel invocations are fully synchronous — every
/// ExecContext joins its lanes before parallel()/sequential() returns — so
/// binding a call-site lambda temporary is safe, and the steady-state solve
/// loop stays free of the per-call allocation a std::function at this seam
/// would cost (captures beyond two words defeat its small-buffer storage).
template <typename Signature>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  FunctionRef(F&& f) noexcept {  // NOLINT(google-explicit-constructor)
    using Fn = std::remove_reference_t<F>;
    if constexpr (std::is_function_v<Fn>) {
      obj_ = reinterpret_cast<void*>(&f);
      call_ = [](void* obj, Args... args) -> R {
        return reinterpret_cast<Fn*>(obj)(std::forward<Args>(args)...);
      };
    } else {
      obj_ = const_cast<void*>(static_cast<const void*>(std::addressof(f)));
      call_ = [](void* obj, Args... args) -> R {
        return (*static_cast<Fn*>(obj))(std::forward<Args>(args)...);
      };
    }
  }

  R operator()(Args... args) const {
    return call_(obj_, std::forward<Args>(args)...);
  }

 private:
  void* obj_;
  R (*call_)(void*, Args...);
};

/// Work estimate for a slice of a kernel's iteration space, used by the
/// simulated machine's cost model.
struct KernelStats {
  /// Floating-point operations performed.
  double flops = 0.0;
  /// Bytes accessed with streaming/spatial locality (unit-stride sweeps).
  double bytes_stream = 0.0;
  /// Bytes accessed irregularly (gather/scatter through an index structure);
  /// each access is a potential cache miss.
  double bytes_irregular = 0.0;
  /// Working set the kernel re-sweeps and assumes stays cache-resident
  /// (e.g. the m x n gain block the covariance update streams once per
  /// covariance row).  Machines with a finite modeled cache charge extra
  /// traffic when this overflows: see simarch::chunk_time.
  double resident_bytes = 0.0;
  /// How many times the resident working set is swept.
  double resident_sweeps = 1.0;

  KernelStats& operator+=(const KernelStats& o) {
    flops += o.flops;
    bytes_stream += o.bytes_stream;
    bytes_irregular += o.bytes_irregular;
    resident_bytes = std::max(resident_bytes, o.resident_bytes);
    resident_sweeps += o.resident_sweeps - 1.0;
    return *this;
  }
};

/// Cost of the slice [begin, end) of the iteration space.
using CostFn = FunctionRef<KernelStats(Index begin, Index end)>;

/// Executes the slice [begin, end); `lane` identifies the executing lane in
/// [0, width()) for scratch-buffer selection.
using BodyFn = FunctionRef<void(Index begin, Index end, int lane)>;

/// A sequential-section body (see ExecContext::sequential).
using SectionFn = FunctionRef<void()>;

/// Abstract execution context.  See file comment.
///
/// Exception-safety contract (all implementations): parallel() and
/// sequential() are exception-transparent.  If the body throws on any lane,
/// every lane still reaches the implicit barrier (forked lanes are joined —
/// no deadlock, no escaped exception on a worker thread), the elapsed
/// real/virtual time is still charged to `cat`, and then the first recorded
/// exception is rethrown on the calling lane.  A context that reported a
/// body failure this way remains fully usable for subsequent kernels.
/// Kernels written against ExecContext therefore need no try/catch of their
/// own to be exception-transparent.
class ExecContext {
 public:
  virtual ~ExecContext() = default;

  /// Number of lanes (processors) this context runs on.
  virtual int width() const = 0;

  /// Runs `body` over [0, n) split into width() contiguous chunks, one per
  /// lane, with an implicit team barrier afterwards.  Time (real or virtual)
  /// is charged to category `cat`.
  virtual void parallel(perf::Category cat, Index n, const CostFn& cost,
                        const BodyFn& body) = 0;

  /// Runs `body` once on lane 0 while the other lanes wait at the implicit
  /// barrier.  Models inherently sequential sections (e.g. the panel step of
  /// a small Cholesky factorization).
  virtual void sequential(perf::Category cat, const CostFn& cost,
                          const SectionFn& body) = 0;

  /// Per-category time observed by this context so far.  For parallel
  /// contexts this is the critical-path view: each kernel contributes the
  /// largest per-lane time.
  virtual const perf::Profile& profile() const = 0;

  /// Cooperative cancellation (DESIGN.md §13).  Binding a token does not
  /// interrupt anything by itself: kernels written against ExecContext poll
  /// cancel_pending() at their transaction boundaries and throw through
  /// par::throw_cancelled, which propagates like any other body exception
  /// (all lanes joined, rethrown on the caller).  Null detaches.  Binding
  /// belongs to whoever orchestrates the solve, between kernels.
  void bind_cancel_token(const CancelToken* token) { cancel_ = token; }
  const CancelToken* cancel_token() const { return cancel_; }

  /// True when a bound token requests a stop.  One null check when no token
  /// is bound — cheap enough for per-batch polling.
  bool cancel_pending() const {
    return cancel_ != nullptr && cancel_->stop_requested();
  }

 private:
  const CancelToken* cancel_ = nullptr;
};

/// Sequential execution with real wall-clock category timing.
class SerialContext final : public ExecContext {
 public:
  SerialContext() = default;

  int width() const override { return 1; }

  void parallel(perf::Category cat, Index n, const CostFn& cost,
                const BodyFn& body) override;

  void sequential(perf::Category cat, const CostFn& cost,
                  const SectionFn& body) override;

  const perf::Profile& profile() const override { return profile_; }

  void clear_profile() { profile_.clear(); }

 private:
  perf::Profile profile_;
};

}  // namespace phmse::par
