#include "parallel/exec.hpp"

#include <exception>

#include "support/stopwatch.hpp"

namespace phmse::par {

void SerialContext::parallel(perf::Category cat, Index n, const CostFn& cost,
                             const BodyFn& body) {
  (void)cost;  // real contexts measure, they do not model
  Stopwatch sw;
  std::exception_ptr error;
  try {
    if (n > 0) body(0, n, 0);
  } catch (...) {
    error = std::current_exception();
  }
  profile_.add(cat, sw.seconds());
  if (error) std::rethrow_exception(error);
}

void SerialContext::sequential(perf::Category cat, const CostFn& cost,
                               const SectionFn& body) {
  (void)cost;
  Stopwatch sw;
  std::exception_ptr error;
  try {
    body();
  } catch (...) {
    error = std::current_exception();
  }
  profile_.add(cat, sw.seconds());
  if (error) std::rethrow_exception(error);
}

}  // namespace phmse::par
