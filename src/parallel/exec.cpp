#include "parallel/exec.hpp"

#include "support/stopwatch.hpp"

namespace phmse::par {

void SerialContext::parallel(perf::Category cat, Index n, const CostFn& cost,
                             const BodyFn& body) {
  (void)cost;  // real contexts measure, they do not model
  Stopwatch sw;
  if (n > 0) body(0, n, 0);
  profile_.add(cat, sw.seconds());
}

void SerialContext::sequential(perf::Category cat, const CostFn& cost,
                               const std::function<void()>& body) {
  (void)cost;
  Stopwatch sw;
  body();
  profile_.add(cat, sw.seconds());
}

}  // namespace phmse::par
