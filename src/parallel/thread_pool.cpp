#include "parallel/thread_pool.hpp"

#include "support/check.hpp"

namespace phmse::par {

ThreadPool::ThreadPool(int workers) {
  PHMSE_CHECK(workers >= 1, "pool needs at least one worker");
  slots_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    slots_.push_back(std::make_unique<Slot>());
  }
  threads_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  for (auto& slot : slots_) {
    std::lock_guard<std::mutex> lock(slot->mutex);
    slot->stop = true;
    slot->cv.notify_all();
  }
  for (auto& t : threads_) t.join();
}

void ThreadPool::submit(int worker, std::function<void()> task) {
  PHMSE_CHECK(worker >= 0 && worker < size(), "worker id out of range");
  Slot& slot = *slots_[static_cast<std::size_t>(worker)];
  {
    std::lock_guard<std::mutex> lock(slot.mutex);
    slot.queue.push_back(std::move(task));
  }
  slot.cv.notify_one();
}

void ThreadPool::worker_loop(int id) {
  Slot& slot = *slots_[static_cast<std::size_t>(id)];
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(slot.mutex);
      slot.cv.wait(lock, [&] { return slot.stop || !slot.queue.empty(); });
      if (slot.queue.empty()) return;  // stop requested and drained
      task = std::move(slot.queue.front());
      slot.queue.pop_front();
    }
    task();
  }
}

void Latch::count_down() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (--count_ == 0) cv_.notify_all();
}

void Latch::wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [&] { return count_ <= 0; });
}

}  // namespace phmse::par
