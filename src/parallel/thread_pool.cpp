#include "parallel/thread_pool.hpp"

#include <utility>

#include "support/check.hpp"

namespace phmse::par {

ThreadPool::ThreadPool(int workers) {
  PHMSE_CHECK(workers >= 1, "pool needs at least one worker");
  slots_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    slots_.push_back(std::make_unique<Slot>());
  }
  threads_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  std::call_once(shutdown_once_, [this] {
    // Flip the acceptance flag first so in-flight tasks polling accepting()
    // observe the teardown before their worker's stop bit is set.
    accepting_.store(false, std::memory_order_release);
    for (auto& slot : slots_) {
      std::lock_guard<std::mutex> lock(slot->mutex);
      slot->stop = true;
      slot->cv.notify_all();
    }
    for (auto& t : threads_) t.join();
  });
}

void ThreadPool::submit(int worker, std::function<void()> task) {
  PHMSE_CHECK(worker >= 0 && worker < size(), "worker id out of range");
  PHMSE_CHECK(task != nullptr, "cannot submit an empty task");
  PHMSE_CHECK(accepting(), "submit on a ThreadPool that is shutting down");
  Slot& slot = *slots_[static_cast<std::size_t>(worker)];
  {
    std::lock_guard<std::mutex> lock(slot.mutex);
    // Re-check under the queue lock: after `stop` is set the worker may
    // exit as soon as its queue is empty, so enqueueing here would drop
    // the task on the floor.  Rejecting makes the race a hard error.
    PHMSE_CHECK(!slot.stop, "submit on a ThreadPool that is shutting down");
    slot.queue.push_back(std::move(task));
  }
  slot.cv.notify_one();
}

std::exception_ptr ThreadPool::take_uncaught_error() noexcept {
  std::lock_guard<std::mutex> lock(error_mutex_);
  return std::exchange(uncaught_, nullptr);
}

void ThreadPool::worker_loop(int id) {
  Slot& slot = *slots_[static_cast<std::size_t>(id)];
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(slot.mutex);
      slot.cv.wait(lock, [&] { return slot.stop || !slot.queue.empty(); });
      if (slot.queue.empty()) return;  // stop requested and drained
      task = std::move(slot.queue.front());
      slot.queue.pop_front();
    }
    // Backstop: an exception escaping here would std::terminate the whole
    // process.  Fork-join layers catch before this point; a raw task that
    // still throws is contained and its first exception retained.
    try {
      task();
    } catch (...) {
      std::lock_guard<std::mutex> lock(error_mutex_);
      if (!uncaught_) uncaught_ = std::current_exception();
    }
  }
}

Latch::Latch(int count) : count_(count) {
  PHMSE_CHECK(count >= 0, "latch count must be non-negative");
}

void Latch::count_down() {
  std::lock_guard<std::mutex> lock(mutex_);
  PHMSE_CHECK(count_ > 0, "latch underflow: more arrivals than armed count");
  if (--count_ == 0) cv_.notify_all();
}

void Latch::wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [&] { return count_ <= 0; });
}

void Latch::reset(int count) {
  PHMSE_CHECK(count >= 0, "latch count must be non-negative");
  std::lock_guard<std::mutex> lock(mutex_);
  PHMSE_CHECK(count_ == 0, "latch reset while arrivals are still pending");
  count_ = count;
}

}  // namespace phmse::par
