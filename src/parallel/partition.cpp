#include "parallel/partition.hpp"

#include "support/check.hpp"

namespace phmse::par {

Range even_chunk(Index n, int parts, int lane) {
  PHMSE_CHECK(parts > 0, "partition needs at least one part");
  PHMSE_CHECK(lane >= 0 && lane < parts, "lane out of range");
  const Index base = n / parts;
  const Index extra = n % parts;
  const Index begin = lane * base + (lane < extra ? lane : extra);
  const Index size = base + (lane < extra ? 1 : 0);
  return Range{begin, begin + size};
}

std::vector<Range> split_evenly(Index n, int parts) {
  PHMSE_CHECK(parts > 0, "partition needs at least one part");
  std::vector<Range> out;
  out.reserve(static_cast<std::size_t>(parts));
  for (int lane = 0; lane < parts; ++lane) {
    out.push_back(even_chunk(n, parts, lane));
  }
  return out;
}

std::vector<Range> split_weighted(const std::vector<double>& weight,
                                  int parts) {
  PHMSE_CHECK(parts > 0, "partition needs at least one part");
  const Index n = static_cast<Index>(weight.size());
  double total = 0.0;
  for (double w : weight) {
    PHMSE_CHECK(w >= 0.0, "weights must be non-negative");
    total += w;
  }

  std::vector<Range> out(static_cast<std::size_t>(parts));
  Index cursor = 0;
  double consumed = 0.0;
  for (int lane = 0; lane < parts; ++lane) {
    const double target = total * (lane + 1) / parts;
    Index end = cursor;
    double acc = consumed;
    // Advance while adding the next element keeps us at or below target, or
    // while later lanes would otherwise run out of elements to take.
    while (end < n) {
      const Index remaining_lanes = parts - lane - 1;
      const Index remaining_elems = n - end;
      if (remaining_elems <= remaining_lanes) break;  // leave one per lane
      const double next = acc + weight[static_cast<std::size_t>(end)];
      // Take the element if doing so overshoots the target by less than
      // stopping short of it.
      if (acc >= target) break;
      if (next - target > target - acc) {
        // Overshoot: still take it if we are otherwise empty.
        if (end == cursor) {
          acc = next;
          ++end;
        }
        break;
      }
      acc = next;
      ++end;
    }
    if (lane == parts - 1) end = n;  // last lane absorbs the tail
    out[static_cast<std::size_t>(lane)] = Range{cursor, end};
    cursor = end;
    consumed = acc;
  }
  return out;
}

}  // namespace phmse::par
