#include "parallel/cancel.hpp"

#include <algorithm>
#include <string>

namespace phmse::par {

double CancelToken::remaining_seconds() const noexcept {
  double remaining = std::numeric_limits<double>::infinity();
  const std::int64_t ns = deadline_ns_.load(std::memory_order_acquire);
  if (ns != kNoDeadline) {
    const std::int64_t now =
        std::chrono::steady_clock::now().time_since_epoch().count();
    remaining = static_cast<double>(ns - now) * 1e-9;
  }
  if (upstream_ != nullptr) {
    remaining = std::min(remaining, upstream_->remaining_seconds());
  }
  return remaining;
}

void throw_cancelled(const CancelToken& token, Index atom_begin,
                     Index atom_end, Index batch) {
  // Deadline expiry and explicit cancellation can race; report the deadline
  // when it has passed — the engine maps that case to DeadlineError, and a
  // watchdog that cancelled an over-deadline solve means the same thing.
  const bool deadline = token.expired();
  std::string what = deadline ? "solve deadline expired" : "solve cancelled";
  if (atom_begin >= 0 && atom_end >= 0) {
    what += " at node atoms [" + std::to_string(atom_begin) + ", " +
            std::to_string(atom_end) + ")";
  }
  if (batch >= 0) what += ", batch " + std::to_string(batch);
  throw CancelledError(what, deadline, atom_begin, atom_end, batch);
}

}  // namespace phmse::par
