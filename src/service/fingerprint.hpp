// Structural fingerprint of a (Problem, CompileOptions) pair.
//
// Engine::compile depends on everything about a problem EXCEPT the observed
// measurement values: the atom count, the decomposition recipe, each
// constraint's kind / atoms / axis / variance / category, and the compile
// options that shape the plan (solve parameters, policy, processor count).
// Two submissions that agree on all of that can share one compiled plan and
// differ only via Plan::set_observations — which is exactly what the
// phmse::Server plan cache exploits.
//
// The fingerprint is a canonical word encoding of those structural fields
// plus a 64-bit FNV-1a digest of it.  Lookups compare the digest first and
// then the full encoding, so a hash collision can never alias two
// structurally different problems onto one plan (the property tests in
// tests/service_test.cpp pin both directions).
#pragma once

#include <cstdint>
#include <vector>

#include "engine/engine.hpp"

namespace phmse::service {

/// Canonical structural identity of a compile input.  Equality is exact
/// (full encoding compare), not just hash equality.
struct Fingerprint {
  std::uint64_t digest = 0;
  /// Canonical encoding the digest is computed over; kept so equality can
  /// never be fooled by a 64-bit collision.
  std::vector<std::uint64_t> words;

  bool operator==(const Fingerprint& other) const = default;

  /// False for problems that opted out of caching (empty Problem::recipe):
  /// the decompose callable is opaque, so without a recipe tag two
  /// different decompositions would be indistinguishable.
  bool cacheable() const { return !words.empty(); }
};

/// Fingerprints `problem` under `options`.  Returns a non-cacheable (empty)
/// fingerprint when problem.recipe is empty.
Fingerprint fingerprint(const engine::Problem& problem,
                        const engine::CompileOptions& options);

}  // namespace phmse::service
