#include "service/server.hpp"

#include <exception>
#include <utility>

#include "support/check.hpp"

namespace phmse::service {

Server::Server(const ServerOptions& options)
    : options_(options),
      cache_(options.plan_cache_capacity),
      pool_(options.workers) {
  PHMSE_CHECK(options.workers >= 1, "Server needs at least one worker");
  PHMSE_CHECK(options.max_pending >= 1 && options.max_pending_per_tenant >= 1,
              "Server admission bounds must be >= 1");
  free_workers_.reserve(static_cast<std::size_t>(options.workers));
  for (int w = options.workers - 1; w >= 0; --w) free_workers_.push_back(w);
}

Server::~Server() { shutdown(/*drain_queued=*/true); }

std::future<Response> Server::submit(const std::string& tenant,
                                     Request request) {
  // Validate synchronously: a malformed request is the submitter's bug and
  // should fail at the call site, not inside a worker.
  PHMSE_CHECK(request.problem.decompose != nullptr,
              "submit: problem has no decomposition recipe");
  if (!request.observations.empty() &&
      static_cast<Index>(request.observations.size()) !=
          request.problem.constraints.size()) {
    throw Error("submit: " + std::to_string(request.observations.size()) +
                " observations for a problem with " +
                std::to_string(request.problem.constraints.size()) +
                " constraints");
  }
  if (static_cast<Index>(request.initial.size()) !=
      3 * request.problem.num_atoms) {
    throw Error("submit: initial state has dimension " +
                std::to_string(request.initial.size()) + ", expected 3 * " +
                std::to_string(request.problem.num_atoms));
  }

  std::future<Response> future;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!accepting_) {
      ++rejected_;
      throw ShutdownError("submit: server is shutting down");
    }
    if (queued_ >= options_.max_pending) {
      ++rejected_;
      throw AdmissionError("submit: server queue is full (" +
                           std::to_string(options_.max_pending) +
                           " pending solves)");
    }
    std::deque<Job>& queue = tenants_[tenant];
    if (queue.size() >= options_.max_pending_per_tenant) {
      ++rejected_;
      throw AdmissionError("submit: tenant '" + tenant +
                           "' queue is full (" +
                           std::to_string(options_.max_pending_per_tenant) +
                           " pending solves)");
    }
    Job job;
    job.request = std::move(request);
    future = job.promise.get_future();
    if (queue.empty()) round_robin_.push_back(tenant);
    queue.push_back(std::move(job));
    ++queued_;
    ++submitted_;
    arm_pumps_();
  }
  return future;
}

void Server::arm_pumps_() {
  while (!round_robin_.empty() && !free_workers_.empty()) {
    const int worker = free_workers_.back();
    try {
      pool_.submit(worker, [this, worker] { pump_(worker); });
    } catch (const Error&) {
      // The pool refused the task (teardown race).  The queued jobs must
      // not be abandoned: fail them all with the distinct shutdown error.
      for (const std::string& tenant : round_robin_) {
        std::deque<Job>& queue = tenants_[tenant];
        for (Job& job : queue) {
          job.promise.set_exception(std::make_exception_ptr(ShutdownError(
              "solve abandoned: server worker pool is shut down")));
          ++shutdown_failed_;
        }
        queued_ -= queue.size();
        queue.clear();
      }
      round_robin_.clear();
      idle_cv_.notify_all();
      return;
    }
    free_workers_.pop_back();
    ++active_pumps_;
  }
}

void Server::pump_(int worker) {
  for (;;) {
    Job job;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (round_robin_.empty()) {
        free_workers_.push_back(worker);
        --active_pumps_;
        if (queued_ == 0 && active_pumps_ == 0) idle_cv_.notify_all();
        return;
      }
      // Round-robin across tenants: take the head job of the next tenant,
      // then rotate the tenant to the back if it still has work.
      const std::string tenant = std::move(round_robin_.front());
      round_robin_.pop_front();
      std::deque<Job>& queue = tenants_[tenant];
      job = std::move(queue.front());
      queue.pop_front();
      --queued_;
      if (!queue.empty()) round_robin_.push_back(tenant);
    }
    execute_(job);
  }
}

void Server::execute_(Job& job) {
  try {
    const Request& req = job.request;
    Response response;
    {
      PlanLease lease = cache_.acquire(req.problem, req.compile);

      // Rebind the observed values unconditionally: a cache hit hands back
      // a plan carrying whatever values its previous user bound.
      if (!req.observations.empty()) {
        lease.plan().set_observations(req.observations);
      } else {
        std::vector<double> values;
        values.reserve(
            static_cast<std::size_t>(req.problem.constraints.size()));
        for (const cons::Constraint& c : req.problem.constraints.all()) {
          values.push_back(c.observed);
        }
        lease.plan().set_observations(values);
      }

      // Incremental path (DESIGN.md §11): on a warm leased instance,
      // set_observations above marked only the constraints this request
      // actually changed, so repeat submissions re-execute just the dirty
      // subtrees.  A cold (freshly compiled) instance has no checkpoint and
      // the call degrades to a full solve — either way the response is
      // bitwise identical to a compile-per-request solve
      // (tests/service_stress_test.cpp pins this).
      const engine::Result result = lease.plan().solve_incremental(req.initial);
      response.x = result.posterior().x;
      response.cycles = result.cycles;
      response.converged = result.converged;
      response.seconds = result.seconds;
      response.cache_hit = lease.cache_hit();
      response.report = result.report;
      // Lease scope ends here: the warm instance is back in the cache
      // before the tenant's future wakes, so an immediate follow-up
      // submission hits instead of compiling a duplicate.
    }
    // Count before fulfilling: a tenant that consumes the future and then
    // reads stats() must already see this solve counted.
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      ++completed_;
    }
    job.promise.set_value(std::move(response));
  } catch (...) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      ++failed_;
    }
    job.promise.set_exception(std::current_exception());
  }
}

void Server::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return queued_ == 0 && active_pumps_ == 0; });
}

void Server::shutdown(bool drain_queued) {
  const std::lock_guard<std::mutex> shutdown_lock(shutdown_mutex_);
  if (shutdown_done_) return;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    accepting_ = false;
    if (!drain_queued) {
      // Fail every queued-but-unstarted solve with the distinct shutdown
      // error; in-flight solves (inside a pump) run to completion.
      for (const std::string& tenant : round_robin_) {
        std::deque<Job>& queue = tenants_[tenant];
        for (Job& job : queue) {
          job.promise.set_exception(std::make_exception_ptr(ShutdownError(
              "solve abandoned: server shut down before it started")));
          ++shutdown_failed_;
        }
        queued_ -= queue.size();
        queue.clear();
      }
      round_robin_.clear();
    }
    idle_cv_.wait(lock,
                  [this] { return queued_ == 0 && active_pumps_ == 0; });
  }
  pool_.shutdown();
  shutdown_done_ = true;
}

ServerStats Server::stats() const {
  ServerStats s;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    s.submitted = submitted_;
    s.completed = completed_;
    s.failed = failed_;
    s.rejected = rejected_;
    s.shutdown_failed = shutdown_failed_;
    s.pending = queued_;
  }
  s.cache = cache_.stats();
  return s;
}

}  // namespace phmse::service
