#include "service/server.hpp"

#include <algorithm>
#include <cmath>
#include <exception>
#include <optional>
#include <utility>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace phmse::service {

static double elapsed_seconds(std::chrono::steady_clock::time_point from,
                              std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

Server::Server(const ServerOptions& options)
    : options_(options),
      cache_(options.plan_cache_capacity),
      pool_(options.workers) {
  PHMSE_CHECK(options.workers >= 1, "Server needs at least one worker");
  PHMSE_CHECK(options.max_pending >= 1 && options.max_pending_per_tenant >= 1,
              "Server admission bounds must be >= 1");
  PHMSE_CHECK(options.breaker_failure_threshold >= 0,
              "Server breaker threshold must be >= 0 (0 disables)");
  PHMSE_CHECK(options.breaker_cooldown_seconds >= 0.0 &&
                  std::isfinite(options.breaker_cooldown_seconds),
              "Server breaker cooldown must be finite and >= 0");
  PHMSE_CHECK(options.watchdog_interval_seconds > 0.0 &&
                  std::isfinite(options.watchdog_interval_seconds),
              "Server watchdog interval must be finite and > 0");
  PHMSE_CHECK(options.max_refine_iterations >= 1,
              "Server max_refine_iterations must be >= 1");
  for (const auto& [tenant, cap] : options.tenant_refine_iteration_caps) {
    PHMSE_CHECK(cap >= 1, "Server refine iteration cap for tenant '" + tenant +
                              "' must be >= 1");
  }
  free_workers_.reserve(static_cast<std::size_t>(options.workers));
  for (int w = options.workers - 1; w >= 0; --w) free_workers_.push_back(w);
  watchdog_ = std::thread([this] { watchdog_loop_(); });
}

Server::~Server() { shutdown(/*drain_queued=*/true); }

std::future<Response> Server::submit(const std::string& tenant,
                                     Request request) {
  // Validate synchronously: a malformed request is the submitter's bug and
  // should fail at the call site, not inside a worker.
  PHMSE_CHECK(request.problem.decompose != nullptr,
              "submit: problem has no decomposition recipe");
  if (!request.observations.empty() &&
      static_cast<Index>(request.observations.size()) !=
          request.problem.constraints.size()) {
    throw Error("submit: " + std::to_string(request.observations.size()) +
                " observations for a problem with " +
                std::to_string(request.problem.constraints.size()) +
                " constraints");
  }
  // Non-finite inputs can only produce garbage (or a mid-solve abort)
  // downstream: reject them here, where the submitter can see which
  // request was malformed, instead of burning a worker first.
  for (std::size_t i = 0; i < request.observations.size(); ++i) {
    if (!std::isfinite(request.observations[i])) {
      throw Error("submit: observation " + std::to_string(i) +
                  " is not finite");
    }
  }
  if (static_cast<Index>(request.initial.size()) !=
      3 * request.problem.num_atoms) {
    throw Error("submit: initial state has dimension " +
                std::to_string(request.initial.size()) + ", expected 3 * " +
                std::to_string(request.problem.num_atoms));
  }
  for (std::size_t i = 0; i < request.initial.size(); ++i) {
    if (!std::isfinite(request.initial[i])) {
      throw Error("submit: initial state entry " + std::to_string(i) +
                  " is not finite");
    }
  }
  if (std::isnan(request.deadline_seconds)) {
    throw Error("submit: deadline_seconds is NaN (use <= 0 for unbounded)");
  }
  if (request.retry_budget < 0) {
    throw Error("submit: retry_budget must be >= 0");
  }
  if (!(request.retry_backoff_seconds >= 0.0) ||
      !std::isfinite(request.retry_backoff_seconds)) {
    throw Error("submit: retry_backoff_seconds must be finite and >= 0");
  }
  // Refinement controls (DESIGN.md §14): validate here so a malformed loop
  // configuration fails at the call site, then clamp the iteration count to
  // the tenant's server-side cap — the operator bounds how much worker time
  // one request may multiply into.  The refine deadline/cancel fields are
  // server-owned: the request's end-to-end budget is the only clock.
  refine::validate(request.refine);
  if (request.refine.mode != refine::Mode::kSinglePass) {
    const auto cap_it = options_.tenant_refine_iteration_caps.find(tenant);
    const int cap = cap_it != options_.tenant_refine_iteration_caps.end()
                        ? cap_it->second
                        : options_.max_refine_iterations;
    request.refine.max_iterations = std::min(request.refine.max_iterations, cap);
  }
  request.refine.deadline_seconds = 0.0;
  request.refine.cancel = nullptr;

  const Clock::time_point now = Clock::now();
  std::future<Response> future;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!accepting_) {
      ++rejected_;
      throw ShutdownError("submit: server is shutting down");
    }
    // Circuit breaker (DESIGN.md §13): a tenant with threshold consecutive
    // execute-side failures is rejected outright until the cooldown
    // elapses, then admitted one probe at a time until a probe succeeds.
    bool probe = false;
    if (options_.breaker_failure_threshold > 0) {
      const auto it = breakers_.find(tenant);
      if (it != breakers_.end()) {
        Breaker& b = it->second;
        if (b.state == BreakerState::kOpen) {
          if (elapsed_seconds(b.opened_at, now) >=
              options_.breaker_cooldown_seconds) {
            b.state = BreakerState::kHalfOpen;
          } else {
            ++rejected_;
            ++breaker_rejected_;
            throw CircuitOpenError(
                "submit: tenant '" + tenant +
                "' circuit breaker is open (cooling down after repeated "
                "failures)");
          }
        }
        if (b.state == BreakerState::kHalfOpen) {
          if (b.probe_in_flight) {
            ++rejected_;
            ++breaker_rejected_;
            throw CircuitOpenError("submit: tenant '" + tenant +
                                   "' circuit breaker is half-open with a "
                                   "probe already in flight");
          }
          b.probe_in_flight = true;
          probe = true;
        }
      }
    }
    if (queued_ >= options_.max_pending) {
      if (probe) breakers_[tenant].probe_in_flight = false;
      ++rejected_;
      throw AdmissionError("submit: server queue is full (" +
                           std::to_string(options_.max_pending) +
                           " pending solves)");
    }
    std::deque<Job>& queue = tenants_[tenant];
    if (queue.size() >= options_.max_pending_per_tenant) {
      if (probe) breakers_[tenant].probe_in_flight = false;
      ++rejected_;
      throw AdmissionError("submit: tenant '" + tenant +
                           "' queue is full (" +
                           std::to_string(options_.max_pending_per_tenant) +
                           " pending solves)");
    }
    Job job;
    job.tenant = tenant;
    job.submitted = now;
    job.has_deadline = request.deadline_seconds > 0.0 &&
                       std::isfinite(request.deadline_seconds);
    if (job.has_deadline) {
      job.deadline_at =
          now + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(request.deadline_seconds));
    }
    job.probe = probe;
    job.seq = next_seq_++;
    job.request = std::move(request);
    future = job.promise.get_future();
    if (queue.empty()) round_robin_.push_back(tenant);
    queue.push_back(std::move(job));
    ++queued_;
    ++submitted_;
    arm_pumps_();
  }
  return future;
}

void Server::arm_pumps_() {
  while (!round_robin_.empty() && !free_workers_.empty()) {
    const int worker = free_workers_.back();
    try {
      pool_.submit(worker, [this, worker] { pump_(worker); });
    } catch (const Error&) {
      // The pool refused the task (teardown race).  The queued jobs must
      // not be abandoned: fail them all with the distinct shutdown error.
      for (const std::string& tenant : round_robin_) {
        std::deque<Job>& queue = tenants_[tenant];
        for (Job& job : queue) {
          if (job.probe) {
            Breaker& b = breakers_[job.tenant];
            b.probe_in_flight = false;
            b.state = BreakerState::kOpen;
          }
          job.promise.set_exception(std::make_exception_ptr(ShutdownError(
              "solve abandoned: server worker pool is shut down")));
          ++shutdown_failed_;
        }
        queued_ -= queue.size();
        queue.clear();
      }
      round_robin_.clear();
      idle_cv_.notify_all();
      return;
    }
    free_workers_.pop_back();
    ++active_pumps_;
  }
}

void Server::shed_expired_(Job& job) {
  if (job.probe) {
    // The probe never ran, so it proved nothing: the breaker stays open
    // and the next post-cooldown submission becomes the new probe.
    Breaker& b = breakers_[job.tenant];
    b.probe_in_flight = false;
    b.state = BreakerState::kOpen;
  }
  ++expired_;
  job.promise.set_exception(std::make_exception_ptr(engine::DeadlineError(
      "solve deadline expired while queued (the solve never started)")));
}

void Server::shed_expired_queued_(Clock::time_point now) {
  bool any = false;
  for (auto it = round_robin_.begin(); it != round_robin_.end();) {
    std::deque<Job>& queue = tenants_[*it];
    for (auto jit = queue.begin(); jit != queue.end();) {
      if (jit->has_deadline && now >= jit->deadline_at) {
        shed_expired_(*jit);
        jit = queue.erase(jit);
        --queued_;
        any = true;
      } else {
        ++jit;
      }
    }
    if (queue.empty()) {
      it = round_robin_.erase(it);
    } else {
      ++it;
    }
  }
  if (any && queued_ == 0 && active_pumps_ == 0) idle_cv_.notify_all();
}

void Server::pump_(int worker) {
  for (;;) {
    Job job;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (round_robin_.empty()) {
        free_workers_.push_back(worker);
        --active_pumps_;
        if (queued_ == 0 && active_pumps_ == 0) idle_cv_.notify_all();
        return;
      }
      // Round-robin across tenants: take the head job of the next tenant,
      // then rotate the tenant to the back if it still has work.
      const std::string tenant = std::move(round_robin_.front());
      round_robin_.pop_front();
      std::deque<Job>& queue = tenants_[tenant];
      job = std::move(queue.front());
      queue.pop_front();
      --queued_;
      if (!queue.empty()) round_robin_.push_back(tenant);
      // Dispatch-time shedding: a request whose budget is already gone
      // must not occupy this worker (the watchdog also sheds between
      // dispatches; this closes the window since its last tick).
      if (job.has_deadline && Clock::now() >= job.deadline_at) {
        // (this pump still counts as active, so drain waiters wake when it
        // loops back around and retires above)
        shed_expired_(job);
        continue;
      }
    }
    execute_(job);
  }
}

void Server::record_outcome_(const Job& job, bool success) {
  if (options_.breaker_failure_threshold <= 0) return;
  Breaker& b = breakers_[job.tenant];
  if (success) {
    b.consecutive_failures = 0;
    b.state = BreakerState::kClosed;
    b.probe_in_flight = false;
    return;
  }
  if (job.probe) {
    // A failed probe re-opens the breaker and restarts the cooldown.
    b.state = BreakerState::kOpen;
    b.opened_at = Clock::now();
    b.probe_in_flight = false;
    b.consecutive_failures = options_.breaker_failure_threshold;
    ++breaker_trips_;
    return;
  }
  ++b.consecutive_failures;
  if (b.state == BreakerState::kClosed &&
      b.consecutive_failures >= options_.breaker_failure_threshold) {
    b.state = BreakerState::kOpen;
    b.opened_at = Clock::now();
    ++breaker_trips_;
  }
}

bool Server::backoff_sleep_(double seconds,
                            const par::CancelToken* token) const {
  // Sleep in short slices so a backing-off worker notices shutdown and
  // deadline expiry within ~10ms instead of stalling the drain.
  constexpr double kSlice = 0.01;
  double remaining = seconds;
  for (;;) {
    if (stopping_.load(std::memory_order_acquire)) return false;
    if (token != nullptr && token->stop_requested()) return false;
    if (remaining <= 0.0) return true;
    const double s = std::min(kSlice, remaining);
    std::this_thread::sleep_for(std::chrono::duration<double>(s));
    remaining -= s;
  }
}

void Server::execute_(Job& job) {
  const Clock::time_point start = Clock::now();
  // The solve runs under a stack-local token carrying the request's
  // absolute deadline; registering it lets the watchdog cancel this solve
  // once over-deadline (the executors also self-observe the deadline at
  // every poll — the watchdog is belt over braces for stalled kernels).
  par::CancelToken token;
  if (job.has_deadline) {
    token.set_deadline(job.deadline_at);
    const std::lock_guard<std::mutex> lock(mutex_);
    inflight_.emplace(job.seq, &token);
  }
  bool low_rank = false;
  bool refined = false;
  bool refine_degraded = false;
  try {
    const Request& req = job.request;
    Response response;
    response.queue_seconds = elapsed_seconds(job.submitted, start);
    // Deterministic jitter: seeded from the submission ordinal, so a
    // replayed workload backs off identically run to run.
    Rng jitter(job.seq * 0x9e3779b97f4a7c15ULL + 0x2545f4914f6cdd1dULL);
    int attempts = 0;
    for (;;) {
      ++attempts;
      try {
        PlanLease lease = cache_.acquire(req.problem, req.compile);

        // Rebind the observed values unconditionally: a cache hit hands
        // back a plan carrying whatever values its previous user bound.
        if (!req.observations.empty()) {
          lease.plan().set_observations(req.observations);
        } else {
          std::vector<double> values;
          values.reserve(
              static_cast<std::size_t>(req.problem.constraints.size()));
          for (const cons::Constraint& c : req.problem.constraints.all()) {
            values.push_back(c.observed);
          }
          lease.plan().set_observations(values);
        }

        // Incremental path (DESIGN.md §11): on a warm leased instance,
        // set_observations above marked only the constraints this request
        // actually changed, so repeat submissions re-execute just the
        // dirty subtrees.  A cold (freshly compiled) instance has no
        // checkpoint and the call degrades to a full solve — either way
        // the response is bitwise identical to a compile-per-request solve
        // (tests/service_stress_test.cpp pins this).  The controls carry
        // the deadline token and the degradation opt-in (DESIGN.md §13);
        // with neither armed this is exactly the uncontrolled call.
        engine::SolveOptions controls;
        controls.cancel = job.has_deadline ? &token : nullptr;
        controls.degrade_lowrank = req.degrade_lowrank;
        engine::Result result;
        // Kept alive until the response copies out below: an iterated or
        // annealed result borrows its posterior from the Refiner, not the
        // plan.
        std::optional<refine::Refiner> refiner;
        if (req.refine.mode == refine::Mode::kSinglePass) {
          result = lease.plan().solve_incremental(req.initial, controls);
        } else {
          // Refined request (DESIGN.md §14): run the outer loop on the
          // leased plan under the job's deadline token.  Every iteration is
          // an exact solve (no low-rank rung), and once one iterate exists
          // an expiring deadline degrades the response to the best so far
          // instead of failing it — report.refine records both the
          // trajectory and the degradation.
          refine::RefineOptions ropts = req.refine;
          ropts.cancel = job.has_deadline ? &token : nullptr;
          refiner.emplace(lease.plan(), ropts);
          result = refiner->refine(req.initial);
          refined = true;
          refine_degraded = result.report.refine.deadline_degraded;
        }
        response.x = result.posterior().x;
        response.cycles = result.cycles;
        response.converged = result.converged;
        response.seconds = result.seconds;
        response.cache_hit = lease.cache_hit();
        response.report = result.report;
        low_rank = result.report.low_rank;
        break;
        // Lease scope ends here: the warm instance is back in the cache
        // before the tenant's future wakes, so an immediate follow-up
        // submission hits instead of compiling a duplicate.
      } catch (const engine::DeadlineError&) {
        throw;  // the budget is spent; retrying cannot help
      } catch (const par::CancelledError&) {
        throw;  // explicit cancellation is a decision, not a fault
      } catch (const ShutdownError&) {
        throw;
      } catch (const Error&) {
        // Transient solve failure (regularized-retry exhaustion, a plan
        // lease contended away, ...): retry inside the request's budget
        // with exponential backoff and jitter.
        if (attempts > req.retry_budget) throw;
        const double base =
            req.retry_backoff_seconds * std::pow(2.0, attempts - 1);
        const double sleep_s = base * jitter.uniform(0.5, 1.5);
        if (!backoff_sleep_(sleep_s, job.has_deadline ? &token : nullptr)) {
          if (job.has_deadline && token.expired()) {
            throw engine::DeadlineError(
                "solve deadline expired during retry backoff");
          }
          throw;  // shutdown or explicit cancel: surface the last failure
        }
        const std::lock_guard<std::mutex> lock(mutex_);
        ++retried_;
      }
    }
    response.attempts = attempts;
    // Count before fulfilling: a tenant that consumes the future and then
    // reads stats() must already see this solve counted.
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      ++completed_;
      if (low_rank) ++degraded_;
      if (refined) ++refined_;
      if (refine_degraded) ++refine_degraded_;
      record_outcome_(job, /*success=*/true);
      if (job.has_deadline) inflight_.erase(job.seq);
    }
    job.promise.set_value(std::move(response));
  } catch (...) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      ++failed_;
      record_outcome_(job, /*success=*/false);
      if (job.has_deadline) inflight_.erase(job.seq);
    }
    job.promise.set_exception(std::current_exception());
  }
}

void Server::watchdog_loop_() {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto interval =
      std::chrono::duration<double>(options_.watchdog_interval_seconds);
  while (!watchdog_stop_) {
    watchdog_cv_.wait_for(lock, interval);
    if (watchdog_stop_) return;
    const Clock::time_point now = Clock::now();
    // Shed queued requests whose budget expired before a worker freed up:
    // they fail immediately instead of occupying a worker just to fail.
    shed_expired_queued_(now);
    // Cancel over-deadline in-flight solves.  The poll sites observe the
    // token's own deadline clock anyway; the explicit cancel() is for the
    // pathological case where the clock read races a long kernel.
    for (const auto& [seq, token] : inflight_) {
      if (token->expired()) token->cancel();
    }
  }
}

void Server::stop_watchdog_() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    watchdog_stop_ = true;
  }
  watchdog_cv_.notify_all();
  if (watchdog_.joinable()) watchdog_.join();
}

void Server::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return queued_ == 0 && active_pumps_ == 0; });
}

void Server::shutdown(bool drain_queued) {
  const std::lock_guard<std::mutex> shutdown_lock(shutdown_mutex_);
  if (shutdown_done_) return;
  stopping_.store(true, std::memory_order_release);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    accepting_ = false;
    if (!drain_queued) {
      // Fail every queued-but-unstarted solve with the distinct shutdown
      // error; in-flight solves (inside a pump) run to completion.
      for (const std::string& tenant : round_robin_) {
        std::deque<Job>& queue = tenants_[tenant];
        for (Job& job : queue) {
          if (job.probe) {
            Breaker& b = breakers_[job.tenant];
            b.probe_in_flight = false;
            b.state = BreakerState::kOpen;
          }
          job.promise.set_exception(std::make_exception_ptr(ShutdownError(
              "solve abandoned: server shut down before it started")));
          ++shutdown_failed_;
        }
        queued_ -= queue.size();
        queue.clear();
      }
      round_robin_.clear();
    }
    idle_cv_.wait(lock,
                  [this] { return queued_ == 0 && active_pumps_ == 0; });
  }
  pool_.shutdown();
  stop_watchdog_();
  shutdown_done_ = true;
}

ServerStats Server::stats() const {
  ServerStats s;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    s.submitted = submitted_;
    s.completed = completed_;
    s.failed = failed_;
    s.rejected = rejected_;
    s.shutdown_failed = shutdown_failed_;
    s.expired = expired_;
    s.retried = retried_;
    s.degraded = degraded_;
    s.refined = refined_;
    s.refine_degraded = refine_degraded_;
    s.breaker_rejected = breaker_rejected_;
    s.breaker_trips = breaker_trips_;
    for (const auto& [tenant, b] : breakers_) {
      if (b.state != BreakerState::kClosed) ++s.breaker_open;
    }
    s.pending = queued_;
  }
  s.cache = cache_.stats();
  return s;
}

BreakerState Server::breaker_state(const std::string& tenant) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (options_.breaker_failure_threshold <= 0) return BreakerState::kClosed;
  const auto it = breakers_.find(tenant);
  if (it == breakers_.end()) return BreakerState::kClosed;
  const Breaker& b = it->second;
  if (b.state == BreakerState::kOpen &&
      elapsed_seconds(b.opened_at, Clock::now()) >=
          options_.breaker_cooldown_seconds) {
    return BreakerState::kHalfOpen;  // cooldown elapsed; next submit probes
  }
  return b.state;
}

}  // namespace phmse::service
