// phmse::Server — the multi-tenant solve service (DESIGN.md §10, §13).
//
// The paper's premise is compile-once / solve-many: plan compile is cheap
// and observation-independent, the solve is the steady-state cost.  At
// service scale many tenants submit molecules from the same structural
// family (same topology, same constraint structure, fresh measurements),
// so the Server puts an LRU plan cache in front of Engine::compile and
// batches the resulting independent solves across a ThreadPool:
//
//   * submissions are queued per tenant and dispatched round-robin across
//     tenants, so one tenant's backlog never starves another's single
//     request;
//   * admission is bounded (total and per tenant): past the bound submit()
//     throws AdmissionError instead of growing the queue without limit;
//   * each in-flight solve leases its own plan instance from the cache
//     (plans are single-flight), runs serially on one pool worker — cross-
//     problem parallelism, no worker ever blocks on another tenant's work
//     — and returns the warm instance for the next hit;
//   * shutdown either drains the queue or fails every queued-but-unstarted
//     submission with ShutdownError; a submission is never abandoned.
//
// End-to-end deadlines (DESIGN.md §13): a Request may carry a wall-clock
// budget measured from submit().  A queued request whose budget expires is
// shed — failed with engine::DeadlineError — before it ever occupies a
// worker (both at dispatch and by the watchdog thread between dispatches);
// an in-flight request runs under a CancelToken armed with the absolute
// deadline, which the executors poll at batch/node boundaries, and the
// watchdog additionally cancels it once over-deadline.  Transient solve
// failures retry with exponential backoff and jitter inside the request's
// remaining budget; per-tenant circuit breakers stop a persistently
// failing tenant from burning workers (closed → open after N consecutive
// failures → half-open probe → closed on success).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "engine/engine.hpp"
#include "parallel/cancel.hpp"
#include "parallel/thread_pool.hpp"
#include "refine/refiner.hpp"
#include "service/plan_cache.hpp"

namespace phmse::service {

/// Submission rejected by admission control (queue bound reached).
class AdmissionError : public Error {
 public:
  using Error::Error;
};

/// Submission rejected, or a queued solve failed, because the server is
/// shutting down.  Distinct from AdmissionError so callers can retry
/// elsewhere rather than back off.
class ShutdownError : public Error {
 public:
  using Error::Error;
};

/// Submission rejected because the tenant's circuit breaker is open (or a
/// half-open probe is already in flight).  Distinct from AdmissionError:
/// the queue has room, the tenant's recent history does not.
class CircuitOpenError : public Error {
 public:
  using Error::Error;
};

/// Per-tenant circuit-breaker state (DESIGN.md §13).
enum class BreakerState : int {
  kClosed = 0,  ///< normal admission
  kOpen,        ///< rejecting: threshold consecutive failures, cooling down
  kHalfOpen,    ///< cooldown elapsed: admitting one probe request
};

struct ServerOptions {
  /// Pool workers executing solves (>= 1).
  int workers = 2;
  /// Total idle plan instances the cache retains (see PlanCache).
  std::size_t plan_cache_capacity = 8;
  /// Admission bounds: queued-but-unstarted submissions, total and per
  /// tenant.  Both >= 1.
  std::size_t max_pending = 256;
  std::size_t max_pending_per_tenant = 64;
  /// Consecutive execute-side failures that trip a tenant's breaker open;
  /// 0 disables circuit breaking.  Queue shedding (deadline expiry before
  /// the solve starts, shutdown) never counts against the breaker.
  int breaker_failure_threshold = 5;
  /// Seconds an open breaker rejects before admitting a half-open probe.
  double breaker_cooldown_seconds = 0.5;
  /// Watchdog period: how often queued requests are checked for expired
  /// deadlines and over-deadline in-flight solves are cancelled.
  double watchdog_interval_seconds = 0.02;
  /// Outer-iteration ceiling for refined requests (DESIGN.md §14): a
  /// Request.refine.max_iterations above the tenant's cap is clamped (not
  /// rejected) at submit() — refinement multiplies solve cost by its
  /// iteration count, so the operator, not the tenant, bounds worker time.
  /// Must be >= 1.  single_pass requests are unaffected.
  int max_refine_iterations = 32;
  /// Per-tenant overrides of max_refine_iterations (each >= 1): lets an
  /// operator grant a heavy tenant more refinement headroom — or throttle
  /// one — without touching everyone else's ceiling.
  std::unordered_map<std::string, int> tenant_refine_iteration_caps;
};

/// One tenant submission: a problem (or a cached family member), compile
/// options, fresh observed values, and the initial estimate.
struct Request {
  engine::Problem problem;
  engine::CompileOptions compile;
  /// Observed values to bind before solving, one per problem constraint in
  /// order.  Empty = use the observed values already in problem.constraints.
  /// Every entry must be finite (submit() rejects NaN/inf up front).
  std::vector<double> observations;
  /// Initial full-molecule estimate (dimension 3 * num_atoms, finite).
  linalg::Vector initial;
  /// End-to-end wall-clock budget measured from submit(); <= 0 = unbounded.
  /// Covers queueing, retries and the solve itself: on expiry the future
  /// fails with engine::DeadlineError wherever the request happens to be.
  double deadline_seconds = 0.0;
  /// Transient-failure retries (regularized-retry exhaustion and similar
  /// recoverable solve errors) before the future fails; each retry backs
  /// off exponentially with jitter.  Deadline expiry, cancellation and
  /// shutdown never retry.
  int retry_budget = 0;
  /// First retry's backoff; doubles per retry, jittered in [0.5x, 1.5x).
  double retry_backoff_seconds = 0.01;
  /// Opt-in graceful degradation (engine::SolveOptions::degrade_lowrank):
  /// when the remaining budget is too tight for the exact path, answer
  /// with the first-order low-rank root update when its preconditions
  /// hold; Response::report.low_rank marks a degraded answer.  Ignored by
  /// refined requests (every refine iteration is an exact solve).
  bool degrade_lowrank = false;
  /// Outer-loop refinement (DESIGN.md §14).  The default single_pass mode
  /// keeps today's incremental fast path; iterated/annealed requests run
  /// through a refine::Refiner on the leased plan.  max_iterations is
  /// clamped to the tenant's server-side cap at submit(); the refine
  /// deadline/cancel fields are overridden by the request's own end-to-end
  /// budget (set deadline_seconds on the Request, not here), under which a
  /// refined request degrades to its best iterate once one exists
  /// (Response::report.refine.deadline_degraded) instead of failing.
  /// Response::report.refine carries the per-iteration trajectory.
  refine::RefineOptions refine;
};

/// What a tenant gets back.  The posterior mean is copied out of the leased
/// plan (the plan returns to the cache when the solve finishes, so the
/// response cannot borrow from it).
struct Response {
  linalg::Vector x;  ///< posterior mean, dimension 3 * num_atoms
  int cycles = 0;
  bool converged = false;
  double seconds = 0.0;       ///< solve wall time (excludes queueing)
  double queue_seconds = 0.0; ///< submit() to solve start (queue latency)
  int attempts = 1;           ///< solve attempts (1 + retries consumed)
  bool cache_hit = false;     ///< plan came from the cache, not a compile
  core::SolveReport report;   ///< per-batch fault-tolerance diagnostics
};

struct ServerStats {
  long submitted = 0;
  long completed = 0;        ///< futures fulfilled with a Response
  long failed = 0;           ///< futures fulfilled with a solve error
  long rejected = 0;         ///< submit() refused (admission/shutdown/breaker)
  long shutdown_failed = 0;  ///< queued solves failed by shutdown(false)
  long expired = 0;          ///< queued solves shed by deadline expiry
  long retried = 0;          ///< transient-failure retry attempts performed
  long degraded = 0;         ///< responses answered by the low-rank rung
  long refined = 0;          ///< responses served through the refine loop
  long refine_degraded = 0;  ///< refined responses cut to best-so-far by deadline
  long breaker_rejected = 0; ///< submit() refusals due to an open breaker
  long breaker_trips = 0;    ///< closed/half-open -> open transitions
  std::size_t breaker_open = 0;  ///< tenants currently not closed
  std::size_t pending = 0;   ///< queued-but-unstarted right now
  PlanCache::Stats cache;
};

/// Multi-tenant solve service over one ThreadPool and one PlanCache.
class Server {
 public:
  explicit Server(const ServerOptions& options = {});
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Drains outstanding work (shutdown(true)).
  ~Server();

  /// Enqueues a solve for `tenant` and returns the future response.
  /// Validates the request synchronously (decompose recipe present,
  /// observation count and finiteness, initial-state dimension and
  /// finiteness, control parameters) and throws AdmissionError /
  /// ShutdownError / CircuitOpenError when the queue bound is hit, the
  /// server is stopping, or the tenant's breaker is open.  The future
  /// carries any error the solve itself raises.
  std::future<Response> submit(const std::string& tenant, Request request);

  /// Blocks until every queued and in-flight solve has completed.  New
  /// submissions remain accepted (this is a checkpoint, not a stop).
  void drain();

  /// Stops accepting submissions, then either completes the queue
  /// (`drain_queued` = true) or fails every queued-but-unstarted solve
  /// with ShutdownError (false; in-flight solves still complete).  Blocks
  /// until all work has settled and the pool has joined.  Idempotent;
  /// concurrent callers block until the first call finishes.
  void shutdown(bool drain_queued = true);

  ServerStats stats() const;

  /// The tenant's breaker state right now (cooldown expiry is reflected:
  /// an open breaker whose cooldown elapsed reads as half-open).  Tenants
  /// never seen, and all tenants when breaking is disabled, read closed.
  BreakerState breaker_state(const std::string& tenant) const;

  int workers() const { return options_.workers; }

 private:
  using Clock = std::chrono::steady_clock;

  struct Job {
    std::promise<Response> promise;
    Request request;
    std::string tenant;
    Clock::time_point submitted{};
    Clock::time_point deadline_at{};
    bool has_deadline = false;
    bool probe = false;        ///< half-open probe: its outcome sets the breaker
    std::uint64_t seq = 0;     ///< submission ordinal (deterministic jitter)
  };

  struct Breaker {
    BreakerState state = BreakerState::kClosed;
    int consecutive_failures = 0;
    Clock::time_point opened_at{};
    bool probe_in_flight = false;
  };

  void pump_(int worker);
  void execute_(Job& job);
  /// Spawns pump tasks while work is queued and workers are free; caller
  /// holds mutex_.  Failures to reach the pool fail the queued jobs with
  /// ShutdownError rather than leaving them stranded.
  void arm_pumps_();
  /// Fails `job` with DeadlineError without occupying a worker; caller
  /// holds mutex_.  Counts `expired` and releases a probe reservation.
  void shed_expired_(Job& job);
  /// Walks every tenant queue and sheds jobs whose deadline passed;
  /// caller holds mutex_.
  void shed_expired_queued_(Clock::time_point now);
  /// Records an execute-side outcome against the tenant's breaker; caller
  /// holds mutex_.  No-op when breaking is disabled.
  void record_outcome_(const Job& job, bool success);
  /// Sleeps ~`seconds` in short slices, aborting early when `token` stops
  /// or the server begins shutting down.  Returns false on early abort.
  bool backoff_sleep_(double seconds, const par::CancelToken* token) const;
  void watchdog_loop_();
  void stop_watchdog_();

  ServerOptions options_;
  PlanCache cache_;
  par::ThreadPool pool_;

  mutable std::mutex mutex_;
  std::condition_variable idle_cv_;
  std::unordered_map<std::string, std::deque<Job>> tenants_;
  std::deque<std::string> round_robin_;  // tenants with queued work, once each
  std::vector<int> free_workers_;
  std::unordered_map<std::string, Breaker> breakers_;
  /// In-flight deadline registry: seq -> the stack-local token execute_()
  /// is solving under, so the watchdog can cancel an over-deadline solve.
  std::unordered_map<std::uint64_t, par::CancelToken*> inflight_;
  std::size_t queued_ = 0;
  int active_pumps_ = 0;
  bool accepting_ = true;
  std::uint64_t next_seq_ = 0;

  long submitted_ = 0;
  long completed_ = 0;
  long failed_ = 0;
  long rejected_ = 0;
  long shutdown_failed_ = 0;
  long expired_ = 0;
  long retried_ = 0;
  long degraded_ = 0;
  long refined_ = 0;
  long refine_degraded_ = 0;
  long breaker_rejected_ = 0;
  long breaker_trips_ = 0;

  /// Set at the top of shutdown(); read by retry backoff so a backing-off
  /// worker gives up promptly instead of stalling the drain.
  std::atomic<bool> stopping_{false};

  std::condition_variable watchdog_cv_;
  bool watchdog_stop_ = false;  // guarded by mutex_
  std::thread watchdog_;

  std::mutex shutdown_mutex_;  // serializes shutdown()
  bool shutdown_done_ = false;
};

}  // namespace phmse::service

namespace phmse {
using service::Server;
}  // namespace phmse
