// phmse::Server — the multi-tenant solve service (DESIGN.md §10).
//
// The paper's premise is compile-once / solve-many: plan compile is cheap
// and observation-independent, the solve is the steady-state cost.  At
// service scale many tenants submit molecules from the same structural
// family (same topology, same constraint structure, fresh measurements),
// so the Server puts an LRU plan cache in front of Engine::compile and
// batches the resulting independent solves across a ThreadPool:
//
//   * submissions are queued per tenant and dispatched round-robin across
//     tenants, so one tenant's backlog never starves another's single
//     request;
//   * admission is bounded (total and per tenant): past the bound submit()
//     throws AdmissionError instead of growing the queue without limit;
//   * each in-flight solve leases its own plan instance from the cache
//     (plans are single-flight), runs serially on one pool worker — cross-
//     problem parallelism, no worker ever blocks on another tenant's work
//     — and returns the warm instance for the next hit;
//   * shutdown either drains the queue or fails every queued-but-unstarted
//     submission with ShutdownError; a submission is never abandoned.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <future>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/engine.hpp"
#include "parallel/thread_pool.hpp"
#include "service/plan_cache.hpp"

namespace phmse::service {

/// Submission rejected by admission control (queue bound reached).
class AdmissionError : public Error {
 public:
  using Error::Error;
};

/// Submission rejected, or a queued solve failed, because the server is
/// shutting down.  Distinct from AdmissionError so callers can retry
/// elsewhere rather than back off.
class ShutdownError : public Error {
 public:
  using Error::Error;
};

struct ServerOptions {
  /// Pool workers executing solves (>= 1).
  int workers = 2;
  /// Total idle plan instances the cache retains (see PlanCache).
  std::size_t plan_cache_capacity = 8;
  /// Admission bounds: queued-but-unstarted submissions, total and per
  /// tenant.  Both >= 1.
  std::size_t max_pending = 256;
  std::size_t max_pending_per_tenant = 64;
};

/// One tenant submission: a problem (or a cached family member), compile
/// options, fresh observed values, and the initial estimate.
struct Request {
  engine::Problem problem;
  engine::CompileOptions compile;
  /// Observed values to bind before solving, one per problem constraint in
  /// order.  Empty = use the observed values already in problem.constraints.
  std::vector<double> observations;
  /// Initial full-molecule estimate (dimension 3 * num_atoms).
  linalg::Vector initial;
};

/// What a tenant gets back.  The posterior mean is copied out of the leased
/// plan (the plan returns to the cache when the solve finishes, so the
/// response cannot borrow from it).
struct Response {
  linalg::Vector x;  ///< posterior mean, dimension 3 * num_atoms
  int cycles = 0;
  bool converged = false;
  double seconds = 0.0;     ///< solve wall time (excludes queueing)
  bool cache_hit = false;   ///< plan came from the cache, not a compile
  core::SolveReport report; ///< per-batch fault-tolerance diagnostics
};

struct ServerStats {
  long submitted = 0;
  long completed = 0;        ///< futures fulfilled with a Response
  long failed = 0;           ///< futures fulfilled with a solve error
  long rejected = 0;         ///< submit() refused (admission or shutdown)
  long shutdown_failed = 0;  ///< queued solves failed by shutdown(false)
  std::size_t pending = 0;   ///< queued-but-unstarted right now
  PlanCache::Stats cache;
};

/// Multi-tenant solve service over one ThreadPool and one PlanCache.
class Server {
 public:
  explicit Server(const ServerOptions& options = {});
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Drains outstanding work (shutdown(true)).
  ~Server();

  /// Enqueues a solve for `tenant` and returns the future response.
  /// Validates the request synchronously (decompose recipe present,
  /// observation count, initial-state dimension) and throws
  /// AdmissionError / ShutdownError when the queue bound is hit or the
  /// server is stopping.  The future carries any error the solve itself
  /// raises.
  std::future<Response> submit(const std::string& tenant, Request request);

  /// Blocks until every queued and in-flight solve has completed.  New
  /// submissions remain accepted (this is a checkpoint, not a stop).
  void drain();

  /// Stops accepting submissions, then either completes the queue
  /// (`drain_queued` = true) or fails every queued-but-unstarted solve
  /// with ShutdownError (false; in-flight solves still complete).  Blocks
  /// until all work has settled and the pool has joined.  Idempotent;
  /// concurrent callers block until the first call finishes.
  void shutdown(bool drain_queued = true);

  ServerStats stats() const;
  int workers() const { return options_.workers; }

 private:
  struct Job {
    std::promise<Response> promise;
    Request request;
  };

  void pump_(int worker);
  void execute_(Job& job);
  /// Spawns pump tasks while work is queued and workers are free; caller
  /// holds mutex_.  Failures to reach the pool fail the queued jobs with
  /// ShutdownError rather than leaving them stranded.
  void arm_pumps_();

  ServerOptions options_;
  PlanCache cache_;
  par::ThreadPool pool_;

  mutable std::mutex mutex_;
  std::condition_variable idle_cv_;
  std::unordered_map<std::string, std::deque<Job>> tenants_;
  std::deque<std::string> round_robin_;  // tenants with queued work, once each
  std::vector<int> free_workers_;
  std::size_t queued_ = 0;
  int active_pumps_ = 0;
  bool accepting_ = true;

  long submitted_ = 0;
  long completed_ = 0;
  long failed_ = 0;
  long rejected_ = 0;
  long shutdown_failed_ = 0;

  std::mutex shutdown_mutex_;  // serializes shutdown()
  bool shutdown_done_ = false;
};

}  // namespace phmse::service

namespace phmse {
using service::Server;
}  // namespace phmse
