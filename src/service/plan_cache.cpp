#include "service/plan_cache.hpp"

#include <utility>

namespace phmse::service {

PlanLease::PlanLease(PlanCache* cache, Fingerprint fingerprint,
                     engine::Plan plan, bool hit)
    : cache_(cache),
      fingerprint_(std::move(fingerprint)),
      plan_(std::move(plan)),
      hit_(hit) {}

PlanLease::PlanLease(PlanLease&& other) noexcept
    : cache_(std::exchange(other.cache_, nullptr)),
      fingerprint_(std::move(other.fingerprint_)),
      plan_(std::move(other.plan_)),
      hit_(other.hit_) {
  other.plan_.reset();
}

PlanLease& PlanLease::operator=(PlanLease&& other) noexcept {
  if (this != &other) {
    if (cache_ != nullptr && plan_.has_value()) {
      cache_->release_(fingerprint_, std::move(*plan_));
    }
    cache_ = std::exchange(other.cache_, nullptr);
    fingerprint_ = std::move(other.fingerprint_);
    plan_ = std::move(other.plan_);
    other.plan_.reset();
    hit_ = other.hit_;
  }
  return *this;
}

PlanLease::~PlanLease() {
  if (cache_ != nullptr && plan_.has_value()) {
    cache_->release_(fingerprint_, std::move(*plan_));
  }
}

PlanCache::PlanCache(std::size_t capacity) : capacity_(capacity) {}

PlanLease PlanCache::acquire(const engine::Problem& problem,
                             const engine::CompileOptions& options) {
  Fingerprint fp = fingerprint(problem, options);
  if (!fp.cacheable()) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      ++uncacheable_;
    }
    return PlanLease(nullptr, std::move(fp), Engine::compile(problem, options),
                     /*hit=*/false);
  }

  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->fingerprint.digest != fp.digest || it->fingerprint != fp) {
        continue;
      }
      entries_.splice(entries_.begin(), entries_, it);  // touch MRU
      if (!it->idle.empty()) {
        engine::Plan plan = std::move(it->idle.back());
        it->idle.pop_back();
        --idle_instances_;
        ++hits_;
        return PlanLease(this, std::move(fp), std::move(plan), /*hit=*/true);
      }
      break;  // every instance is in flight: compile another arena
    }
    ++misses_;
  }
  // Compile outside the lock: a miss on one fingerprint must not stall
  // concurrent hits on others.
  return PlanLease(this, std::move(fp), Engine::compile(problem, options),
                   /*hit=*/false);
}

void PlanCache::release_(const Fingerprint& fingerprint, engine::Plan plan) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->fingerprint.digest == fingerprint.digest &&
        it->fingerprint == fingerprint) {
      entries_.splice(entries_.begin(), entries_, it);
      it->idle.push_back(std::move(plan));
      ++idle_instances_;
      evict_to_capacity_();
      return;
    }
  }
  Entry entry;
  entry.fingerprint = fingerprint;
  entry.idle.push_back(std::move(plan));
  entries_.push_front(std::move(entry));
  ++idle_instances_;
  evict_to_capacity_();
}

void PlanCache::evict_to_capacity_() {
  while (idle_instances_ > capacity_ && !entries_.empty()) {
    Entry& lru = entries_.back();
    if (lru.idle.empty()) {
      // All instances of the coldest entry are in flight; nothing idle to
      // drop there.  Leases re-create entries on release, so simply
      // forgetting the empty shell is safe.
      entries_.pop_back();
      continue;
    }
    lru.idle.pop_back();
    --idle_instances_;
    ++evictions_;
    if (lru.idle.empty()) entries_.pop_back();
  }
}

PlanCache::Stats PlanCache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.uncacheable = uncacheable_;
  s.entries = entries_.size();
  s.idle_instances = idle_instances_;
  return s;
}

void PlanCache::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (Entry& e : entries_) {
    evictions_ += static_cast<long>(e.idle.size());
  }
  entries_.clear();
  idle_instances_ = 0;
}

}  // namespace phmse::service
