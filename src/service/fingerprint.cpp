#include "service/fingerprint.hpp"

#include <bit>
#include <cstring>

namespace phmse::service {

namespace {

/// Appends fields to the canonical word stream.  Doubles are encoded by
/// bit pattern: the fingerprint must distinguish any value change exactly,
/// not up to rounding.
class Encoder {
 public:
  explicit Encoder(std::vector<std::uint64_t>& words) : words_(words) {}

  void word(std::uint64_t w) { words_.push_back(w); }
  void integer(long long v) { word(static_cast<std::uint64_t>(v)); }
  void real(double v) { word(std::bit_cast<std::uint64_t>(v)); }

  void string(const std::string& s) {
    integer(static_cast<long long>(s.size()));
    std::uint64_t w = 0;
    std::size_t filled = 0;
    for (unsigned char c : s) {
      w |= static_cast<std::uint64_t>(c) << (8 * filled);
      if (++filled == 8) {
        word(w);
        w = 0;
        filled = 0;
      }
    }
    if (filled != 0) word(w);
  }

 private:
  std::vector<std::uint64_t>& words_;
};

std::uint64_t fnv1a(const std::vector<std::uint64_t>& words) {
  std::uint64_t h = 14695981039346656037ull;
  for (std::uint64_t w : words) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (w >> (8 * byte)) & 0xffu;
      h *= 1099511628211ull;
    }
  }
  return h;
}

}  // namespace

Fingerprint fingerprint(const engine::Problem& problem,
                        const engine::CompileOptions& options) {
  Fingerprint fp;
  if (problem.recipe.empty()) return fp;  // opaque decompose: uncacheable

  Encoder enc(fp.words);
  enc.string(problem.recipe);
  enc.integer(problem.num_atoms);

  // Compile options that shape the plan.  calibrate_work_model and the
  // work-model coefficients are deliberately excluded: they steer the
  // schedule (a performance property), and reschedule() revises the
  // schedule on a cached plan anyway — the numerics are bitwise identical
  // across schedules (DESIGN.md §8).
  const core::HierSolveOptions& s = options.solve;
  enc.integer(s.batch_size);
  enc.integer(s.max_cycles);
  enc.real(s.tolerance);
  enc.real(s.prior_sigma);
  enc.integer(s.symmetrize_every);
  enc.integer(static_cast<long long>(s.policy.on_failure));
  enc.integer(s.policy.max_retries);
  enc.real(s.policy.regularization_init);
  enc.real(s.policy.regularization_growth);
  enc.real(s.policy.gate_chi2_per_dof);

  // Constraint structure in problem order: everything the compiled slots
  // depend on except the observed value (which set_observations rebinds).
  enc.integer(problem.constraints.size());
  for (const cons::Constraint& c : problem.constraints.all()) {
    enc.integer(static_cast<long long>(c.kind));
    for (Index atom : c.atoms) enc.integer(atom);
    enc.integer(c.axis);
    enc.real(c.variance);
    enc.integer(c.category);
  }

  fp.digest = fnv1a(fp.words);
  return fp;
}

}  // namespace phmse::service
