// Thread-safe LRU cache of compiled plans, keyed by structural fingerprint.
//
// A Plan's solves are single-flight (per-node state is mutated while a
// solve runs), so the cache does not hand the same Plan object to two
// concurrent solvers.  Instead every fingerprint maps to a small pool of
// interchangeable plan *instances*: acquire() checks an idle instance out
// (or compiles a fresh one on a miss / when every instance is in flight),
// and the returned PlanLease moves the instance back when it is destroyed.
// Under concurrency an entry therefore grows to the observed parallelism
// and then stops compiling — each returned instance is warm (its
// workspaces were allocated by earlier solves), so a steady-state cache
// hit costs no compile and no allocation.
//
// Eviction is LRU over fingerprint entries, bounded by a total idle
// instance budget; counters (hits / misses / evictions / uncacheable) feed
// the Server stats and the service benchmark.
#pragma once

#include <cstddef>
#include <list>
#include <mutex>
#include <optional>
#include <vector>

#include "engine/engine.hpp"
#include "service/fingerprint.hpp"

namespace phmse::service {

class PlanCache;

/// Exclusive use of one compiled plan instance.  Movable; the destructor
/// returns the instance to the cache (or drops it for uncacheable
/// problems).  A lease must not outlive its cache.
class PlanLease {
 public:
  PlanLease(PlanLease&& other) noexcept;
  PlanLease& operator=(PlanLease&& other) noexcept;
  PlanLease(const PlanLease&) = delete;
  PlanLease& operator=(const PlanLease&) = delete;
  ~PlanLease();

  engine::Plan& plan() { return *plan_; }
  /// True when the instance came out of the cache rather than a compile.
  bool cache_hit() const { return hit_; }
  const Fingerprint& fingerprint() const { return fingerprint_; }

 private:
  friend class PlanCache;
  PlanLease(PlanCache* cache, Fingerprint fingerprint, engine::Plan plan,
            bool hit);

  PlanCache* cache_ = nullptr;  // null after move-from or for uncacheable
  Fingerprint fingerprint_;
  std::optional<engine::Plan> plan_;
  bool hit_ = false;
};

/// Thread-safe LRU plan cache.  All methods may be called concurrently;
/// Engine::compile runs outside the cache lock, so a slow compile never
/// stalls hits on other fingerprints.
class PlanCache {
 public:
  struct Stats {
    long hits = 0;         ///< acquire() served by an idle cached instance
    long misses = 0;       ///< acquire() had to compile (incl. contention)
    long evictions = 0;    ///< idle instances dropped by the LRU bound
    long uncacheable = 0;  ///< acquire() for problems with no recipe tag
    std::size_t entries = 0;         ///< distinct fingerprints held
    std::size_t idle_instances = 0;  ///< plan instances ready to lease
  };

  /// `capacity` bounds the total number of *idle* plan instances retained
  /// across all fingerprints (checked-out leases are not counted).
  /// Capacity 0 disables retention: every acquire compiles.
  explicit PlanCache(std::size_t capacity);

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Checks out a plan for `problem` under `options`, compiling one if the
  /// cache holds no idle instance for the fingerprint.  The leased plan
  /// retains whatever observed values its last user bound — callers rebind
  /// via Plan::set_observations before solving.
  PlanLease acquire(const engine::Problem& problem,
                    const engine::CompileOptions& options);

  Stats stats() const;

  /// Drops every idle instance (counted as evictions).
  void clear();

 private:
  friend class PlanLease;

  struct Entry {
    Fingerprint fingerprint;
    std::vector<engine::Plan> idle;
  };

  /// Returns a leased instance to its entry and applies the LRU bound.
  void release_(const Fingerprint& fingerprint, engine::Plan plan);
  void evict_to_capacity_();  // caller holds mutex_

  mutable std::mutex mutex_;
  std::size_t capacity_ = 0;
  std::list<Entry> entries_;  // most recently used first
  std::size_t idle_instances_ = 0;
  long hits_ = 0;
  long misses_ = 0;
  long evictions_ = 0;
  long uncacheable_ = 0;
};

}  // namespace phmse::service
