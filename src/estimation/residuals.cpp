#include "estimation/residuals.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "support/check.hpp"

namespace phmse::est {
namespace {

// Scalar linearization: h(x), and s = H C H^T for one constraint.
double predict(const NodeState& state, const cons::Constraint& c,
               double& innovation_var) {
  std::array<mol::Vec3, 4> pos{};
  const Index na = cons::arity(c.kind);
  for (Index k = 0; k < na; ++k) {
    pos[static_cast<std::size_t>(k)] =
        state.position(c.atoms[static_cast<std::size_t>(k)]);
  }
  cons::Gradient grad;
  const double h = cons::evaluate_with_gradient(c, pos, grad);

  // s = sum_ab H_a C(a,b) H_b over the touched coordinates.
  std::array<std::pair<Index, double>, 12> hrow;
  int nnz = 0;
  for (Index k = 0; k < na; ++k) {
    const Index col =
        state.coord_index(c.atoms[static_cast<std::size_t>(k)], 0);
    const mol::Vec3& g = grad.d[static_cast<std::size_t>(k)];
    hrow[static_cast<std::size_t>(nnz++)] = {col + 0, g.x};
    hrow[static_cast<std::size_t>(nnz++)] = {col + 1, g.y};
    hrow[static_cast<std::size_t>(nnz++)] = {col + 2, g.z};
  }
  double s = 0.0;
  for (int a = 0; a < nnz; ++a) {
    for (int b = 0; b < nnz; ++b) {
      s += hrow[static_cast<std::size_t>(a)].second *
           state.c(hrow[static_cast<std::size_t>(a)].first,
                   hrow[static_cast<std::size_t>(b)].first) *
           hrow[static_cast<std::size_t>(b)].second;
    }
  }
  innovation_var = s;
  return h;
}

}  // namespace

std::vector<ResidualRecord> residual_records(
    const NodeState& state, const cons::ConstraintSet& set) {
  std::vector<ResidualRecord> out;
  out.reserve(static_cast<std::size_t>(set.size()));
  for (Index i = 0; i < set.size(); ++i) {
    const cons::Constraint& c = set[i];
    double s = 0.0;
    const double h = predict(state, c, s);
    ResidualRecord rec;
    rec.constraint_index = i;
    rec.residual = c.observed - h;
    rec.predicted_sigma = std::sqrt(std::max(0.0, s) + c.variance);
    rec.normalized = rec.predicted_sigma > 0.0
                         ? rec.residual / rec.predicted_sigma
                         : 0.0;
    out.push_back(rec);
  }
  return out;
}

ResidualStats overall_stats(const std::vector<ResidualRecord>& records,
                            const cons::ConstraintSet& set) {
  (void)set;
  ResidualStats st;
  st.count = static_cast<Index>(records.size());
  if (records.empty()) return st;
  double sum2 = 0.0;
  double chi2 = 0.0;
  for (const ResidualRecord& r : records) {
    sum2 += r.residual * r.residual;
    chi2 += r.normalized * r.normalized;
    st.max_abs = std::max(st.max_abs, std::abs(r.residual));
  }
  st.rms = std::sqrt(sum2 / static_cast<double>(records.size()));
  st.mean_chi2 = chi2 / static_cast<double>(records.size());
  return st;
}

std::map<int, ResidualStats> stats_by_category(
    const std::vector<ResidualRecord>& records,
    const cons::ConstraintSet& set) {
  std::map<int, std::vector<ResidualRecord>> grouped;
  for (const ResidualRecord& r : records) {
    grouped[set[r.constraint_index].category].push_back(r);
  }
  std::map<int, ResidualStats> out;
  for (const auto& [cat, recs] : grouped) {
    out[cat] = overall_stats(recs, set);
  }
  return out;
}

std::vector<ResidualRecord> worst_residuals(
    std::vector<ResidualRecord> records, Index count) {
  std::sort(records.begin(), records.end(),
            [](const ResidualRecord& a, const ResidualRecord& b) {
              return std::abs(a.normalized) > std::abs(b.normalized);
            });
  if (static_cast<Index>(records.size()) > count) {
    records.resize(static_cast<std::size_t>(count));
  }
  return records;
}

std::string residual_report(const NodeState& state,
                            const cons::ConstraintSet& set,
                            Index highlight_count) {
  const auto records = residual_records(state, set);
  const ResidualStats all = overall_stats(records, set);
  std::ostringstream os;
  os << "residuals: " << all.count << " constraints, rms " << all.rms
     << ", worst " << all.max_abs << ", mean chi2 " << all.mean_chi2
     << "\n";
  for (const auto& [cat, st] : stats_by_category(records, set)) {
    os << "  category " << cat << ": n=" << st.count << " rms=" << st.rms
       << " chi2=" << st.mean_chi2 << "\n";
  }
  os << "largest normalized residuals:\n";
  for (const ResidualRecord& r : worst_residuals(records, highlight_count)) {
    os << "  constraint " << r.constraint_index << ": r=" << r.residual
       << " (" << r.normalized << " sigma)\n";
  }
  return os.str();
}

}  // namespace phmse::est
