#include "estimation/update.hpp"

#include <algorithm>
#include <cmath>

#include "estimation/fault_injection.hpp"
#include "linalg/backend.hpp"
#include "linalg/blas.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/kernels.hpp"
#include "support/check.hpp"

namespace phmse::est {

using cons::Constraint;
using linalg::CsrBuilder;

void BatchUpdater::linearize(par::ExecContext& ctx, const NodeState& state,
                             std::span<const cons::Constraint> batch) {
  const Index m = static_cast<Index>(batch.size());
  residual_.resize(static_cast<std::size_t>(m));
  rdiag_.resize(static_cast<std::size_t>(m));
  positions_finite_ = true;

  // Jacobian assembly is sequential (CSR rows build in order), but it is
  // O(m) work per batch — the paper leaves it outside the six categories.
  auto cost = [&](Index, Index) {
    par::KernelStats st;
    st.flops = 60.0 * static_cast<double>(m);  // ~ per-constraint evaluation
    st.bytes_stream = 48.0 * static_cast<double>(m);
    return st;
  };
  ctx.sequential(perf::Category::kOther, cost, [&] {
    CsrBuilder& builder = builder_;
    builder.reset(state.dim());
    bool finite = true;
    for (Index j = 0; j < m; ++j) {
      const Constraint& c = batch[static_cast<std::size_t>(j)];
      const Index na = cons::arity(c.kind);
      std::array<mol::Vec3, 4> pos{};
      for (Index k = 0; k < na; ++k) {
        const Index atom = c.atoms[static_cast<std::size_t>(k)];
        // API-boundary contract (see update.hpp): enforced with an always-on
        // check — position() itself only asserts, which compiles out under
        // NDEBUG and would turn a bad batch into an out-of-bounds read.
        PHMSE_CHECK(atom >= state.atom_begin && atom < state.atom_end,
                    "constraint atom outside the node's state range");
        const mol::Vec3 p = state.position(atom);
        finite = finite && std::isfinite(p.x) && std::isfinite(p.y) &&
                 std::isfinite(p.z);
        pos[static_cast<std::size_t>(k)] = p;
      }
      cons::Gradient grad;
      const double predicted = cons::evaluate_with_gradient(c, pos, grad);
      residual_[static_cast<std::size_t>(j)] = c.observed - predicted;
      // At the default scale the variance is copied verbatim: x * 1.0 is
      // bitwise x for every finite double, but skipping the multiply keeps
      // even non-finite inputs (caught by validation) byte-exact.
      rdiag_[static_cast<std::size_t>(j)] =
          variance_scale_ == 1.0 ? c.variance : c.variance * variance_scale_;

      builder.begin_row();
      for (Index k = 0; k < na; ++k) {
        const Index atom = c.atoms[static_cast<std::size_t>(k)];
        const mol::Vec3& g = grad.d[static_cast<std::size_t>(k)];
        const Index col = state.coord_index(atom, 0);
        if (g.x != 0.0) builder.add(col + 0, g.x);
        if (g.y != 0.0) builder.add(col + 1, g.y);
        if (g.z != 0.0) builder.add(col + 2, g.z);
      }
    }
    positions_finite_ = finite;
    builder.finish_into(h_);
  });
}

void BatchUpdater::set_variance_scale(double scale) {
  PHMSE_CHECK(std::isfinite(scale) && scale > 0.0,
              "variance scale must be finite and > 0");
  variance_scale_ = scale;
}

bool BatchUpdater::batch_inputs_valid_() const {
  if (!positions_finite_) return false;
  for (std::size_t j = 0; j < residual_.size(); ++j) {
    if (!std::isfinite(residual_[j])) return false;
    const double r = rdiag_[j];
    if (!(r > 0.0) || !std::isfinite(r)) return false;
  }
  return true;
}

BatchOutcome BatchUpdater::apply(par::ExecContext& ctx, NodeState& state,
                                 std::span<const cons::Constraint> batch,
                                 const SolvePolicy& policy,
                                 Index batch_index) {
  BatchOutcome out;
  if (batch.empty()) return out;
  const Index n = state.dim();
  const Index m = static_cast<Index>(batch.size());
  const bool can_retry =
      policy.on_failure == FailAction::kRetryRegularized ||
      policy.on_failure == FailAction::kGateOutliers;

  fault::maybe_stall(state, batch_index);
  fault::maybe_poison_state(state, batch_index);

  linearize(ctx, state, batch);

  fault::maybe_corrupt_observation(state, batch_index, residual_);

  // Pre-update validation: non-finite positions, observations or residuals
  // (and non-positive variances) can only produce garbage downstream.  The
  // check is O(m) against the update's O(m n^2) — noise.
  if (!batch_inputs_valid_()) {
    PHMSE_CHECK(policy.on_failure != FailAction::kAbort,
                "batch update: non-finite constraint inputs "
                "(observation, variance, or linearization point)");
    out.status = BatchStatus::kSkipped;
    out.attempts = 0;
    return out;
  }

  const linalg::Backend& be =
      backend_ != nullptr ? *backend_ : linalg::default_backend();

  be.sparse_dense(ctx, h_, state.c, g_);                  // G = H C       d-s

  // Factor S = L L^T under the policy's retry ladder.  The first attempt
  // factors S exactly as the historical code path; a retry re-assembles S
  // from the untouched G, H and R (the factorization is destructive) and
  // adds the rung's Tikhonov term lambda I before factoring again.  The
  // state is not written anywhere in this loop, so a batch that exhausts
  // the ladder is dropped with the state bitwise intact.
  double lambda = 0.0;
  double scale = 0.0;
  for (int attempt = 0;; ++attempt) {
    be.innovation_covariance(ctx, g_, h_, rdiag_, s_);       // S = G H^T + R
    fault::maybe_force_non_spd(state, batch_index, s_);
    if (lambda > 0.0) {
      for (Index i = 0; i < m; ++i) s_(i, i) += lambda;
    }
    const linalg::CholeskyResult chol =
        be.cholesky_factor(ctx, s_, 48);                     // S = L L^T chol
    out.attempts = attempt + 1;
    if (chol.ok()) break;
    out.failed_pivot = chol.failed_pivot;
    PHMSE_CHECK(policy.on_failure != FailAction::kAbort,
                "cholesky: matrix is not positive definite");
    if (!can_retry || attempt >= policy.max_retries) {
      out.status = can_retry ? BatchStatus::kFailed : BatchStatus::kSkipped;
      out.regularization = lambda;
      return out;
    }
    if (scale == 0.0) {
      // Ladder scale: the mean |diagonal| of S as just assembled, computed
      // once on the first failure so every rung grows from the same base
      // and the ladder stays deterministic.
      double trace = 0.0;
      for (Index i = 0; i < m; ++i) trace += std::abs(s_(i, i));
      scale = std::max(trace / static_cast<double>(m), 1e-300);
    }
    lambda = lambda == 0.0 ? policy.regularization_init * scale
                           : lambda * policy.regularization_growth;
  }
  out.regularization = lambda;
  if (out.attempts > 1) out.status = BatchStatus::kRetried;

  // With W = L^{-1} H C- the remaining steps become symmetric by
  // construction:
  //   K (z - h) = (H C-)^T S^{-1} r = W^T (L^{-1} r)        and
  //   C+ = C- - K H C- = C- - (HC)^T S^{-1} (HC) = C- - W^T W.
  //
  // The whitened residual w = L^{-1} r comes first (it is independent of
  // the m x n gain solve), because w^T w is the batch's innovation
  // chi-squared — the gate can drop an outlier batch before the expensive
  // solve runs.
  w_ = residual_;  // member scratch: no per-batch allocation past warm-up
  ctx.sequential(
      perf::Category::kSystemSolve,
      [&](Index, Index) {
        par::KernelStats st;
        const double md = static_cast<double>(w_.size());
        st.flops = md * md;
        st.bytes_stream = 8.0 * md * md / 2.0;
        return st;
      },
      [&] { linalg::trsv_lower(s_, w_); });          // w = L^-1 r        sys
  out.chi2_per_dof =
      linalg::dot(w_.data(), w_.data(), m) / static_cast<double>(m);
  if (policy.on_failure == FailAction::kGateOutliers &&
      out.chi2_per_dof > policy.gate_chi2_per_dof) {
    out.status = BatchStatus::kGated;
    return out;
  }

  // Commit: every fallible step is behind us, so from here the batch either
  // applies completely or (on a crash) not at all — no half-mutated state.
  be.trsm_lower(ctx, s_, g_);                        // W = L^-1 G        sys
  dx_.assign(static_cast<std::size_t>(n), 0.0);
  be.gain_times_residual(ctx, g_, w_, dx_);          // dx = W^T w        m-v
  linalg::vec_add_inplace(ctx, dx_, state.x);        // x += dx           vec
  be.covariance_downdate(ctx, g_, g_, state.c);      // C -= W^T W        m-v
  return out;
}

bool BatchUpdater::applied_row(Index i, std::span<const Index>& cols,
                               std::span<const double>& vals) const {
  if (i < 0 || i >= static_cast<Index>(arch_len_.size())) return false;
  const int len = arch_len_[static_cast<std::size_t>(i)];
  if (len < 0) return false;
  const std::size_t base = static_cast<std::size_t>(i) *
                           static_cast<std::size_t>(kMaxRowNnz);
  cols = {arch_cols_.data() + base, static_cast<std::size_t>(len)};
  vals = {arch_vals_.data() + base, static_cast<std::size_t>(len)};
  return true;
}

void BatchUpdater::archive_batch_(Index start, Index len, bool applied) {
  for (Index r = 0; r < len; ++r) {
    const auto i = static_cast<std::size_t>(start + r);
    if (!applied) {
      arch_len_[i] = -1;
      continue;
    }
    const std::span<const Index> cols = h_.row_indices(r);
    const std::span<const double> vals = h_.row_values(r);
    PHMSE_CHECK(static_cast<Index>(cols.size()) <= kMaxRowNnz,
                "constraint Jacobian row wider than the archive stride");
    const std::size_t base = i * static_cast<std::size_t>(kMaxRowNnz);
    std::copy(cols.begin(), cols.end(), arch_cols_.begin() + base);
    std::copy(vals.begin(), vals.end(), arch_vals_.begin() + base);
    arch_len_[i] = static_cast<int>(cols.size());
  }
}

void BatchUpdater::reserve(Index max_m, Index n) {
  PHMSE_CHECK(max_m >= 0 && n >= 0, "reserve sizes must be >= 0");
  const auto m = static_cast<std::size_t>(max_m);
  residual_.reserve(m);
  rdiag_.reserve(m);
  w_.reserve(m);
  dx_.reserve(static_cast<std::size_t>(n));
  g_.resize(max_m, n);
  s_.resize(max_m, max_m);
  g_.resize(0, 0);
  s_.resize(0, 0);
}

void BatchUpdater::apply_all(par::ExecContext& ctx, NodeState& state,
                             const cons::ConstraintSet& set, Index batch_size,
                             Index symmetrize_every, const SolvePolicy& policy,
                             NodeReport* report) {
  PHMSE_CHECK(batch_size >= 1, "batch size must be >= 1");
  const auto& all = set.all();
  // (Re)size the applied-Jacobian archive for this set; the sizes are
  // stable across sweeps of the same set, so only the first sweep
  // allocates.
  const auto slots = static_cast<std::size_t>(set.size()) *
                     static_cast<std::size_t>(kMaxRowNnz);
  arch_cols_.resize(slots);
  arch_vals_.resize(slots);
  arch_len_.assign(static_cast<std::size_t>(set.size()), -1);
  Index applied_batches = 0;
  for (Index start = 0; start < set.size(); start += batch_size) {
    // Batch-boundary cancellation poll (DESIGN.md §13): between batches the
    // state holds only complete per-batch commits (apply is transactional),
    // so this is the finest point where an abort cannot tear anything.
    if (ctx.cancel_pending()) {
      par::throw_cancelled(*ctx.cancel_token(), state.atom_begin,
                           state.atom_end, applied_batches);
    }
    const Index len = std::min(batch_size, set.size() - start);
    const BatchOutcome out =
        apply(ctx, state,
              std::span<const cons::Constraint>(all.data() + start,
                                                static_cast<std::size_t>(len)),
              policy, applied_batches);
    archive_batch_(start, len, out.applied());
    if (report != nullptr) report->record(applied_batches, out);
    ++applied_batches;
    if (symmetrize_every > 0 && applied_batches % symmetrize_every == 0) {
      linalg::symmetrize(ctx, state.c);
    }
  }
}

}  // namespace phmse::est
