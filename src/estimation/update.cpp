#include "estimation/update.hpp"

#include "linalg/blas.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/kernels.hpp"
#include "support/check.hpp"

namespace phmse::est {

using cons::Constraint;
using linalg::CsrBuilder;

void BatchUpdater::linearize(par::ExecContext& ctx, const NodeState& state,
                             std::span<const cons::Constraint> batch) {
  const Index m = static_cast<Index>(batch.size());
  residual_.resize(static_cast<std::size_t>(m));
  rdiag_.resize(static_cast<std::size_t>(m));

  // Jacobian assembly is sequential (CSR rows build in order), but it is
  // O(m) work per batch — the paper leaves it outside the six categories.
  auto cost = [&](Index, Index) {
    par::KernelStats st;
    st.flops = 60.0 * static_cast<double>(m);  // ~ per-constraint evaluation
    st.bytes_stream = 48.0 * static_cast<double>(m);
    return st;
  };
  ctx.sequential(perf::Category::kOther, cost, [&] {
    CsrBuilder& builder = builder_;
    builder.reset(state.dim());
    for (Index j = 0; j < m; ++j) {
      const Constraint& c = batch[static_cast<std::size_t>(j)];
      const Index na = cons::arity(c.kind);
      std::array<mol::Vec3, 4> pos{};
      for (Index k = 0; k < na; ++k) {
        const Index atom = c.atoms[static_cast<std::size_t>(k)];
        // API-boundary contract (see update.hpp): enforced with an always-on
        // check — position() itself only asserts, which compiles out under
        // NDEBUG and would turn a bad batch into an out-of-bounds read.
        PHMSE_CHECK(atom >= state.atom_begin && atom < state.atom_end,
                    "constraint atom outside the node's state range");
        pos[static_cast<std::size_t>(k)] = state.position(atom);
      }
      cons::Gradient grad;
      const double predicted = cons::evaluate_with_gradient(c, pos, grad);
      residual_[static_cast<std::size_t>(j)] = c.observed - predicted;
      rdiag_[static_cast<std::size_t>(j)] = c.variance;

      builder.begin_row();
      for (Index k = 0; k < na; ++k) {
        const Index atom = c.atoms[static_cast<std::size_t>(k)];
        const mol::Vec3& g = grad.d[static_cast<std::size_t>(k)];
        const Index col = state.coord_index(atom, 0);
        if (g.x != 0.0) builder.add(col + 0, g.x);
        if (g.y != 0.0) builder.add(col + 1, g.y);
        if (g.z != 0.0) builder.add(col + 2, g.z);
      }
    }
    builder.finish_into(h_);
  });
}

void BatchUpdater::apply(par::ExecContext& ctx, NodeState& state,
                         std::span<const cons::Constraint> batch) {
  if (batch.empty()) return;
  const Index n = state.dim();

  linearize(ctx, state, batch);

  linalg::sparse_dense(ctx, h_, state.c, g_);             // G = H C       d-s
  linalg::innovation_covariance(ctx, g_, h_, rdiag_, s_); // S = G H^T + R m-m
  linalg::cholesky(ctx, s_);                              // S = L L^T    chol
  linalg::trsm_lower(ctx, s_, g_);                        // W = L^-1 G    sys
  // With W = L^{-1} H C- the remaining steps become symmetric by
  // construction:
  //   K (z - h) = (H C-)^T S^{-1} r = W^T (L^{-1} r)        and
  //   C+ = C- - K H C- = C- - (HC)^T S^{-1} (HC) = C- - W^T W.
  w_ = residual_;  // member scratch: no per-batch allocation past warm-up
  ctx.sequential(
      perf::Category::kSystemSolve,
      [&](Index, Index) {
        par::KernelStats st;
        const double md = static_cast<double>(w_.size());
        st.flops = md * md;
        st.bytes_stream = 8.0 * md * md / 2.0;
        return st;
      },
      [&] { linalg::trsv_lower(s_, w_); });          // w = L^-1 r        sys
  dx_.assign(static_cast<std::size_t>(n), 0.0);
  linalg::gain_times_residual(ctx, g_, w_, dx_);     // dx = W^T w        m-v
  linalg::vec_add_inplace(ctx, dx_, state.x);        // x += dx           vec
  linalg::covariance_downdate(ctx, g_, g_, state.c); // C -= W^T W        m-v
}

void BatchUpdater::reserve(Index max_m, Index n) {
  PHMSE_CHECK(max_m >= 0 && n >= 0, "reserve sizes must be >= 0");
  const auto m = static_cast<std::size_t>(max_m);
  residual_.reserve(m);
  rdiag_.reserve(m);
  w_.reserve(m);
  dx_.reserve(static_cast<std::size_t>(n));
  g_.resize(max_m, n);
  s_.resize(max_m, max_m);
  g_.resize(0, 0);
  s_.resize(0, 0);
}

void BatchUpdater::apply_all(par::ExecContext& ctx, NodeState& state,
                             const cons::ConstraintSet& set, Index batch_size,
                             Index symmetrize_every) {
  PHMSE_CHECK(batch_size >= 1, "batch size must be >= 1");
  const auto& all = set.all();
  Index applied_batches = 0;
  for (Index start = 0; start < set.size(); start += batch_size) {
    const Index len = std::min(batch_size, set.size() - start);
    apply(ctx, state,
          std::span<const cons::Constraint>(all.data() + start,
                                            static_cast<std::size_t>(len)));
    ++applied_batches;
    if (symmetrize_every > 0 && applied_batches % symmetrize_every == 0) {
      linalg::symmetrize(ctx, state.c);
    }
  }
}

}  // namespace phmse::est
