// The sequential update algorithm (paper Figure 1) for one constraint batch.
//
// Given the estimate (x-, C-) and an m-dimensional observation batch
// z = h(x) + v, v ~ N(0, R):
//   H  = dh/dx |x-                          (sparse, m x n)
//   G  = H C-                               (d-s;  G^T = C- H^T)
//   S  = G H^T + R                          (m-m;  innovation covariance)
//   S  = L L^T                              (chol)
//   V  = L^{-T} L^{-1} G                    (sys;  V = K^T, the gain)
//   x+ = x- + V^T (z - h(x-))               (m-v / vec)
//   C+ = C- - V^T G                         (m-v;  see kernels.hpp)
//
// BatchUpdater owns the scratch buffers so repeated application over
// thousands of batches does not allocate.
#pragma once

#include <span>

#include "constraints/set.hpp"
#include "estimation/policy.hpp"
#include "estimation/state.hpp"
#include "linalg/csr.hpp"
#include "parallel/exec.hpp"

namespace phmse::linalg {
struct Backend;
}  // namespace phmse::linalg

namespace phmse::est {

/// Applies constraint batches to a NodeState (paper Fig. 1).
class BatchUpdater {
 public:
  BatchUpdater() = default;

  /// Pins the kernel backend this updater calls through (linalg/backend.hpp).
  /// Null (the default) means the process-default backend, re-read on every
  /// apply so a test that swaps PHMSE_BACKEND between solves is honored.
  /// The pointer must outlive the updater; registry backends are static.
  void set_backend(const linalg::Backend* backend) { backend_ = backend; }

  /// Multiplies every constraint's noise variance by `scale` at
  /// linearization time — the annealing seam of DESIGN.md §14: inflating
  /// observation sigmas by a temperature T means scale = T^2.  The
  /// constraints themselves are never touched, so dropping the scale back
  /// to 1.0 restores the exact original noise model.  At the default 1.0
  /// the variance is copied verbatim (no multiply), so unscaled sweeps stay
  /// bitwise identical to the historical path.  Must be finite and > 0.
  void set_variance_scale(double scale);
  double variance_scale() const { return variance_scale_; }

  /// Applies one batch of scalar constraints to `state`.  All constraint
  /// atoms must lie inside the state's atom range.  Execution (serial,
  /// threaded, or simulated) is directed by `ctx`.
  ///
  /// Transactional (DESIGN.md §9): every fallible step — input validation,
  /// the S = L L^T factorization and its retry ladder, the innovation gate
  /// — runs before `state` is touched, and x/C are only written once all of
  /// them have succeeded.  A batch that is rejected, under any policy,
  /// therefore leaves the state bitwise identical to its pre-batch value.
  /// With the default (abort) policy a failure throws phmse::Error exactly
  /// as it always has.  `batch_index` identifies the batch within a sweep
  /// for diagnostics and the fault-injection seam (-1 = standalone call).
  BatchOutcome apply(par::ExecContext& ctx, NodeState& state,
                     std::span<const cons::Constraint> batch,
                     const SolvePolicy& policy = {}, Index batch_index = -1);

  /// Applies an entire set in consecutive batches of `batch_size` (the last
  /// batch may be smaller).  Symmetrizes the covariance every
  /// `symmetrize_every` batches (0 disables) to contain round-off drift.
  /// Failed batches are handled per `policy`; when `report` is non-null
  /// every batch outcome is tallied into it (non-ok outcomes individually).
  void apply_all(par::ExecContext& ctx, NodeState& state,
                 const cons::ConstraintSet& set, Index batch_size,
                 Index symmetrize_every = 64, const SolvePolicy& policy = {},
                 NodeReport* report = nullptr);

  /// Upper bound on one scalar constraint's Jacobian-row nonzeros (4 atoms
  /// x 3 coordinates; the widest kind is a torsion).
  static constexpr Index kMaxRowNnz = 12;

  /// Jacobian row of constraint `i` (the set's sweep order) exactly as it
  /// was linearized when apply_all last applied its batch — the archive the
  /// low-rank observation rebind of DESIGN.md §11 reads.  The sensitivity
  /// of the finished sweep to one observed value is C_post H_i^T R_i^{-1}
  /// with H_i at its ORIGINAL linearization point (the chain of
  /// (I - K H) damping factors telescopes to exactly that in information
  /// space), so a rebind must reuse this row, not a fresh linearization at
  /// the evolved posterior.  Column indices are node-local state indices.
  /// Returns false when the constraint's batch was dropped by the policy
  /// (its information never entered the state) or no sweep has run.
  bool applied_row(Index i, std::span<const Index>& cols,
                   std::span<const double>& vals) const;

  /// Pre-sizes every scratch buffer for batches of up to `max_m` constraints
  /// against an `n`-dimensional state, so that subsequent apply() calls work
  /// entirely inside existing capacity.  (Without this, the first applied
  /// batch warms the buffers instead.)
  void reserve(Index max_m, Index n);

 private:
  /// Evaluates the batch at the current state: fills residual_, rdiag_ and
  /// the Jacobian, and records whether every position read was finite.
  /// Charged to the `other` category (the paper's O(m) constraint-function
  /// evaluation).
  void linearize(par::ExecContext& ctx, const NodeState& state,
                 std::span<const cons::Constraint> batch);

  /// Pre-update validation: the positions the batch linearized against and
  /// the observation data (residuals, variances) must all be finite, and
  /// every variance strictly positive.
  bool batch_inputs_valid_() const;

  /// Kernel dispatch table (see set_backend); null = process default.
  const linalg::Backend* backend_ = nullptr;

  /// Observation-variance multiplier (see set_variance_scale); 1.0 = the
  /// exact noise model, applied without a multiply.
  double variance_scale_ = 1.0;

  linalg::Csr h_;
  linalg::CsrBuilder builder_;  // Jacobian assembly; capacity swaps with h_
  linalg::Matrix g_;        // H * C            (m x n)
  linalg::Matrix s_;        // innovation cov   (m x m)
  linalg::Vector residual_; // z - h(x)         (m)
  linalg::Vector rdiag_;    // noise variances  (m)
  linalg::Vector dx_;       // state correction (n)
  linalg::Vector w_;        // whitened residual L^-1 r (m)
  bool positions_finite_ = true;  // set by linearize

  /// Applied-Jacobian archive (see applied_row): fixed kMaxRowNnz-stride
  /// (cols, vals) slots per constraint of the last apply_all set, plus a
  /// per-constraint nonzero count (-1 = dropped / never applied).  Sized
  /// once per set size, so steady-state sweeps refresh it without
  /// allocating.
  std::vector<Index> arch_cols_;
  std::vector<double> arch_vals_;
  std::vector<int> arch_len_;

  /// Copies the freshly applied batch's h_ rows [0, len) into the archive
  /// at constraints [start, start + len); `applied` false marks them
  /// dropped instead.
  void archive_batch_(Index start, Index len, bool applied);
};

}  // namespace phmse::est
