#include "estimation/state.hpp"

namespace phmse::est {

void NodeState::reset_covariance(double prior_sigma) {
  PHMSE_CHECK(prior_sigma > 0.0, "prior sigma must be positive");
  c.resize_zero(dim(), dim());
  c.set_scaled_identity(prior_sigma * prior_sigma);
}

NodeState make_initial_state(const mol::Topology& topology, Index begin,
                             Index end, double prior_sigma,
                             double perturb_sigma, Rng& rng) {
  PHMSE_CHECK(begin >= 0 && begin <= end && end <= topology.size(),
              "atom range out of bounds");
  NodeState st;
  st.atom_begin = begin;
  st.atom_end = end;
  st.x.resize(static_cast<std::size_t>(st.dim()));
  for (Index a = begin; a < end; ++a) {
    const mol::Vec3& p = topology.atom(a).position;
    const Index i = 3 * (a - begin);
    st.x[static_cast<std::size_t>(i + 0)] = p.x + rng.gaussian(0.0, perturb_sigma);
    st.x[static_cast<std::size_t>(i + 1)] = p.y + rng.gaussian(0.0, perturb_sigma);
    st.x[static_cast<std::size_t>(i + 2)] = p.z + rng.gaussian(0.0, perturb_sigma);
  }
  st.reset_covariance(prior_sigma);
  return st;
}

NodeState make_state_from_full(const linalg::Vector& full_x, Index begin,
                               Index end, double prior_sigma) {
  NodeState st;
  fill_state_from_full(st, full_x, begin, end, prior_sigma);
  return st;
}

void fill_state_from_full(NodeState& st, const linalg::Vector& full_x,
                          Index begin, Index end, double prior_sigma) {
  PHMSE_CHECK(begin >= 0 && begin <= end &&
                  3 * end <= static_cast<Index>(full_x.size()),
              "atom range out of bounds");
  st.atom_begin = begin;
  st.atom_end = end;
  st.x.assign(full_x.begin() + 3 * begin, full_x.begin() + 3 * end);
  st.reset_covariance(prior_sigma);
}

}  // namespace phmse::est
