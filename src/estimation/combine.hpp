// Combination of independent updates (paper Figure 3).
//
// The coarse-grained intra-node parallelization the paper considers (and
// rejects, Section 4.1): split a node's constraints into disjoint subsets,
// let each produce its own posterior from the shared prior, then fuse the
// posteriors.  For Gaussian estimates sharing the prior (x0, C0) the fused
// information is
//      Cf^-1      = C1^-1 + C2^-1 - C0^-1
//      Cf^-1 * xf = C1^-1 x1 + C2^-1 x2 - C0^-1 x0
// which is exact when the measurement functions are linear.  Fusing more
// than two posteriors proceeds pairwise in a "tournament" (the partial
// fusions each carry the prior exactly once, so the pairwise formula keeps
// applying).
//
// The procedure costs O(n^3) — "essentially the same amount of work as
// applying a constraint vector of the same dimension [as the state]" — and
// duplicates the (x, C) pair per branch, which is why the paper prefers
// parallelism inside the update procedure.  PHMSE ships it as a baseline;
// bench/ablation_combine reproduces the comparison.
#pragma once

#include <vector>

#include "estimation/state.hpp"
#include "parallel/exec.hpp"

namespace phmse::est {

/// Fuses two posteriors produced independently from the shared spherical
/// prior (prior_x, prior_sigma^2 I).  Both must cover the same atom range.
NodeState combine_independent(par::ExecContext& ctx, const NodeState& a,
                              const NodeState& b,
                              const linalg::Vector& prior_x,
                              double prior_sigma);

/// Pairwise tournament fusion of any number of posteriors (size >= 1).
NodeState combine_tournament(par::ExecContext& ctx,
                             std::vector<NodeState> posteriors,
                             const linalg::Vector& prior_x,
                             double prior_sigma);

}  // namespace phmse::est
