// The structure estimate (x, C).
//
// The pair of a state vector x (3 coordinates per atom) and a covariance
// matrix C is the paper's representation of "our best estimate of the
// molecular structure along with an indication of the variability of the
// estimated numbers" (Section 2).  A NodeState covers a contiguous range of
// global atom ids — the whole molecule for the flat solver, or one
// hierarchy node's atoms.
#pragma once

#include "linalg/matrix.hpp"
#include "molecule/topology.hpp"
#include "support/rng.hpp"
#include "support/types.hpp"

namespace phmse::est {

/// Estimate over the contiguous global atom range [atom_begin, atom_end).
struct NodeState {
  Index atom_begin = 0;
  Index atom_end = 0;
  linalg::Vector x;   // dimension 3 * (atom_end - atom_begin)
  linalg::Matrix c;   // square, same dimension

  Index num_atoms() const { return atom_end - atom_begin; }
  Index dim() const { return 3 * num_atoms(); }

  /// Local state offset of coordinate `axis` of global atom `atom`.
  Index coord_index(Index atom, int axis) const {
    PHMSE_ASSERT(atom >= atom_begin && atom < atom_end);
    return 3 * (atom - atom_begin) + axis;
  }

  /// Position of global atom `atom` as stored in x.
  mol::Vec3 position(Index atom) const {
    const Index i = coord_index(atom, 0);
    return {x[static_cast<std::size_t>(i)], x[static_cast<std::size_t>(i + 1)],
            x[static_cast<std::size_t>(i + 2)]};
  }

  /// Re-initializes the covariance to the spherical prior sigma^2 * I (the
  /// paper re-initializes C between cycles of constraint application).
  void reset_covariance(double prior_sigma);
};

/// Builds an initial estimate over atoms [begin, end): the ground-truth
/// positions of `topology` perturbed by N(0, perturb_sigma^2) per
/// coordinate, with covariance prior_sigma^2 * I.
NodeState make_initial_state(const mol::Topology& topology, Index begin,
                             Index end, double prior_sigma,
                             double perturb_sigma, Rng& rng);

/// Slices a full-molecule state vector into [begin, end) with the spherical
/// prior; used to give every hierarchy leaf a consistent starting point.
NodeState make_state_from_full(const linalg::Vector& full_x, Index begin,
                               Index end, double prior_sigma);

/// In-place variant of make_state_from_full: refills `st` from `full_x`
/// reusing its existing x/C capacity, so a leaf state that persists across
/// solves never reallocates.
void fill_state_from_full(NodeState& st, const linalg::Vector& full_x,
                          Index begin, Index end, double prior_sigma);

}  // namespace phmse::est
