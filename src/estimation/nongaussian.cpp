#include "estimation/nongaussian.hpp"

#include <cmath>

#include "linalg/kernels.hpp"
#include "support/check.hpp"

namespace phmse::est {
namespace {

constexpr double kSqrt2 = 1.4142135623730951;
constexpr double kInvSqrt2Pi = 0.3989422804014327;

double normal_pdf(double t) { return kInvSqrt2Pi * std::exp(-0.5 * t * t); }

double normal_cdf(double t) { return 0.5 * std::erfc(-t / kSqrt2); }

}  // namespace

void truncated_normal_moments(double mu, double sigma, double a, double b,
                              double& mean, double& var) {
  PHMSE_CHECK(sigma > 0.0, "truncation needs a positive sigma");
  PHMSE_CHECK(a <= b, "truncation interval is inverted");
  const double alpha = (a - mu) / sigma;
  const double beta = (b - mu) / sigma;
  const double z = normal_cdf(beta) - normal_cdf(alpha);
  if (z < 1e-12) {
    // Essentially no prior mass inside the interval: collapse to the
    // nearest endpoint with a small residual spread.
    mean = mu < a ? a : b;
    var = sigma * sigma * 1e-6;
    return;
  }
  const double pa = normal_pdf(alpha);
  const double pb = normal_pdf(beta);
  const double d1 = (pa - pb) / z;
  const double d2 = (alpha * pa - beta * pb) / z;
  mean = mu + sigma * d1;
  var = sigma * sigma * (1.0 + d2 - d1 * d1);
  if (var < 0.0) var = 0.0;  // numerical guard near degenerate intervals
}

double NonGaussianUpdater::linearize_scalar(par::ExecContext& ctx,
                                            const NodeState& state,
                                            const cons::Constraint& c,
                                            linalg::Vector& g, double& s0) {
  const Index n = state.dim();
  g.assign(static_cast<std::size_t>(n), 0.0);

  std::array<mol::Vec3, 4> pos{};
  const Index na = cons::arity(c.kind);
  for (Index k = 0; k < na; ++k) {
    pos[static_cast<std::size_t>(k)] =
        state.position(c.atoms[static_cast<std::size_t>(k)]);
  }
  cons::Gradient grad;
  const double predicted = cons::evaluate_with_gradient(c, pos, grad);

  // Sparse Jacobian row as (index, value) pairs.
  std::array<std::pair<Index, double>, 12> hrow;
  int nnz = 0;
  for (Index k = 0; k < na; ++k) {
    const Index col =
        state.coord_index(c.atoms[static_cast<std::size_t>(k)], 0);
    const mol::Vec3& gk = grad.d[static_cast<std::size_t>(k)];
    hrow[static_cast<std::size_t>(nnz++)] = {col + 0, gk.x};
    hrow[static_cast<std::size_t>(nnz++)] = {col + 1, gk.y};
    hrow[static_cast<std::size_t>(nnz++)] = {col + 2, gk.z};
  }

  // g = C H^T (one dense-sparse pass over the touched rows of C) and
  // s0 = H C H^T.
  double s = 0.0;
  ctx.parallel(
      perf::Category::kDenseSparse, n,
      [&](Index begin, Index end) {
        par::KernelStats st;
        st.flops = 2.0 * static_cast<double>(nnz) *
                   static_cast<double>(end - begin);
        st.bytes_irregular = 8.0 * static_cast<double>(nnz) *
                             static_cast<double>(end - begin);
        return st;
      },
      [&](Index begin, Index end, int /*lane*/) {
        for (int k = 0; k < nnz; ++k) {
          const auto [col, value] = hrow[static_cast<std::size_t>(k)];
          const auto row = state.c.row(col);
          for (Index i = begin; i < end; ++i) {
            g[static_cast<std::size_t>(i)] += value * row[i];
          }
        }
      });
  for (int k = 0; k < nnz; ++k) {
    const auto [col, value] = hrow[static_cast<std::size_t>(k)];
    s += value * g[static_cast<std::size_t>(col)];
  }
  s0 = s;
  return predicted;
}

void NonGaussianUpdater::apply_mixture(par::ExecContext& ctx,
                                       NodeState& state,
                                       const MixtureConstraint& constraint) {
  PHMSE_CHECK(!constraint.noise.empty(), "mixture needs >= 1 component");
  double s0 = 0.0;
  const double predicted =
      linearize_scalar(ctx, state, constraint.geometry, g_, s0);
  if (s0 <= 0.0) return;  // direction already fully determined

  const double nu0 = constraint.geometry.observed - predicted;

  // Posterior component weights via log-sum-exp.
  const std::size_t k = constraint.noise.size();
  std::vector<double> logl(k);
  double max_logl = -1e300;
  for (std::size_t i = 0; i < k; ++i) {
    const NoiseComponent& c = constraint.noise[i];
    PHMSE_CHECK(c.weight > 0.0 && c.sigma > 0.0,
                "mixture component needs positive weight and sigma");
    const double cap_s = s0 + c.sigma * c.sigma;
    const double nu = nu0 - c.mean;
    logl[i] = std::log(c.weight) -
              0.5 * (std::log(cap_s) + nu * nu / cap_s);
    max_logl = std::max(max_logl, logl[i]);
  }
  double norm = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    logl[i] = std::exp(logl[i] - max_logl);
    norm += logl[i];
  }

  // Collapsed-posterior statistics along the gain direction.
  double a1 = 0.0;  // sum w nu/S          (mean shift multiplier)
  double a2 = 0.0;  // sum w / S           (variance reduction)
  double a3 = 0.0;  // sum w (nu/S)^2      (spread of component means)
  for (std::size_t i = 0; i < k; ++i) {
    const NoiseComponent& c = constraint.noise[i];
    const double w = logl[i] / norm;
    const double cap_s = s0 + c.sigma * c.sigma;
    const double ratio = (nu0 - c.mean) / cap_s;
    a1 += w * ratio;
    a2 += w / cap_s;
    a3 += w * ratio * ratio;
  }
  const double alpha = -a2 + (a3 - a1 * a1);

  // x += a1 * g;  C += alpha * g g^T.
  dx_.assign(g_.size(), 0.0);
  for (std::size_t i = 0; i < g_.size(); ++i) dx_[i] = a1 * g_[i];
  linalg::vec_add_inplace(ctx, dx_, state.x);
  linalg::rank1_update(ctx, g_, alpha, state.c);
}

void NonGaussianUpdater::apply_bound(par::ExecContext& ctx, NodeState& state,
                                     const BoundConstraint& constraint) {
  PHMSE_CHECK(constraint.lower <= constraint.upper,
              "bound constraint interval is inverted");
  PHMSE_CHECK(constraint.tail_sigma > 0.0,
              "bound constraint needs a positive tail sigma");
  cons::Constraint geom;
  geom.kind = constraint.kind;
  geom.atoms = constraint.atoms;
  geom.axis = constraint.axis;

  double s0 = 0.0;
  const double predicted = linearize_scalar(ctx, state, geom, g_, s0);
  if (s0 <= 1e-300) return;

  // Predictive distribution of the measured quantity y = h(x) is
  // N(predicted, s0 + tail^2) — the bound softness enters as measurement
  // noise.  Moment-match it against the interval to get the target
  // posterior marginal (m1, v1) of y.
  const double tail2 = constraint.tail_sigma * constraint.tail_sigma;
  const double pred_var = s0 + tail2;
  double m1 = 0.0;
  double v1 = 0.0;
  truncated_normal_moments(predicted, std::sqrt(pred_var), constraint.lower,
                           constraint.upper, m1, v1);
  // The bound can never pin y tighter than its own softness.
  v1 = std::max(v1, std::min(tail2, 0.9 * pred_var));

  // If the prior on y (variance s0) is already at least as tight as the
  // target, the bound carries no further information — once the estimate
  // is more certain than the interval softness, bounds become inert.
  if (v1 >= s0 * (1.0 - 1e-9)) return;

  // A Gaussian update of the y-prior N(predicted, s0) that lands exactly
  // on (m1, v1) shifts the state by g*(m1 - predicted)/s0 and shrinks the
  // covariance by g g^T * (s0 - v1)/s0^2 (the equivalent observation has
  // variance r_eq = s0*v1/(s0 - v1); these are its gain expressions).
  const double gain_mult = (m1 - predicted) / s0;
  const double shrink = (s0 - v1) / (s0 * s0);

  dx_.assign(g_.size(), 0.0);
  for (std::size_t i = 0; i < g_.size(); ++i) dx_[i] = gain_mult * g_[i];
  linalg::vec_add_inplace(ctx, dx_, state.x);
  linalg::rank1_update(ctx, g_, -shrink, state.c);
}

void NonGaussianUpdater::apply_bounds(
    par::ExecContext& ctx, NodeState& state,
    const std::vector<BoundConstraint>& constraints) {
  for (const BoundConstraint& c : constraints) apply_bound(ctx, state, c);
}

}  // namespace phmse::est
