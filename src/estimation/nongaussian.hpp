// Non-Gaussian constraints (the extension the paper cites as [2]:
// Altman, Chen, Poland & Singh, "Probabilistic Constraint Satisfaction
// with Non-Gaussian Noise", UAI'94).
//
// Two non-Gaussian observation models are supported, both reduced to the
// Gaussian machinery of update.hpp at the point of application:
//
// * Bound (interval) constraints — the natural form of NOE data: the
//   measured quantity lies in [lower, upper].  The scalar predictive
//   distribution of the measurement is moment-matched against the interval
//   (truncated-normal moments), and the result is converted into an
//   *equivalent Gaussian observation* (z_eq, r_eq) that produces exactly
//   that posterior mean and variance, which is then applied with the
//   standard update.  A bound that the prediction already satisfies
//   comfortably carries little information and produces a near-no-op.
//
// * Gaussian-mixture noise — z = h(x) + v with v ~ sum_k w_k N(mu_k,
//   sigma_k^2), which models outlier-prone measurements (e.g. a slab-and-
//   spike error model) or multimodal calibrations.  Each component yields
//   a scalar Kalman update; the component posteriors are collapsed by
//   moment matching.  The collapsed covariance differs from the prior by a
//   rank-1 term along the gain direction, which can even *increase*
//   variance when the components disagree — faithfully representing the
//   added ambiguity.
#pragma once

#include <vector>

#include "constraints/constraint.hpp"
#include "estimation/state.hpp"
#include "parallel/exec.hpp"

namespace phmse::est {

/// One component of a Gaussian-mixture noise model.
struct NoiseComponent {
  double weight = 1.0;  // mixture weight (normalized internally)
  double mean = 0.0;    // noise bias of this component
  double sigma = 1.0;   // noise standard deviation
};

/// A scalar constraint whose noise is a Gaussian mixture.  `geometry.kind`,
/// `geometry.atoms`, `geometry.axis` and `geometry.observed` are used;
/// `geometry.variance` is ignored in favour of the mixture.
struct MixtureConstraint {
  cons::Constraint geometry;
  std::vector<NoiseComponent> noise;
};

/// A scalar interval constraint: the measured quantity lies in
/// [lower, upper]; `tail_sigma` is the softness of the bounds (measurement
/// uncertainty of the interval endpoints).
struct BoundConstraint {
  cons::Kind kind = cons::Kind::kDistance;
  std::array<Index, 4> atoms = {0, 0, 0, 0};
  int axis = 0;
  double lower = 0.0;
  double upper = 0.0;
  double tail_sigma = 0.1;
};

/// Mean and variance of N(mu, sigma^2) truncated to [a, b].  Falls back to
/// clamping toward the nearest bound when the interval mass underflows.
/// Exposed for tests.
void truncated_normal_moments(double mu, double sigma, double a, double b,
                              double& mean, double& var);

/// Applies non-Gaussian scalar constraints to a node state.
class NonGaussianUpdater {
 public:
  /// Applies one mixture-noise constraint.  Exactly equivalent to the
  /// standard scalar update when the mixture has a single zero-mean
  /// component.
  void apply_mixture(par::ExecContext& ctx, NodeState& state,
                     const MixtureConstraint& constraint);

  /// Applies one interval constraint via the equivalent-Gaussian reduction.
  void apply_bound(par::ExecContext& ctx, NodeState& state,
                   const BoundConstraint& constraint);

  /// Convenience: applies a whole set of bounds in sequence.
  void apply_bounds(par::ExecContext& ctx, NodeState& state,
                    const std::vector<BoundConstraint>& constraints);

 private:
  /// Computes h, the gain direction g = C H^T (a vector for scalar
  /// constraints) and the predictive variance s0 = H C H^T.
  double linearize_scalar(par::ExecContext& ctx, const NodeState& state,
                          const cons::Constraint& c, linalg::Vector& g,
                          double& s0);

  linalg::Vector g_;   // gain direction scratch
  linalg::Vector dx_;  // state-correction scratch
};

}  // namespace phmse::est
