// Residual diagnostics: does the estimate actually explain the data, and
// is the reported uncertainty consistent with the misfit?
//
// For each constraint the residual r = z - h(x) is compared against its
// predicted standard deviation sqrt(H C H^T + R).  The normalized residual
// (r over that sigma) should look standard-normal when the filter is
// consistent; per-category statistics localize problems (e.g. junction
// data systematically misfit while intra-base geometry is tight).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "constraints/set.hpp"
#include "estimation/state.hpp"

namespace phmse::est {

/// Misfit statistics for a group of constraints.
struct ResidualStats {
  Index count = 0;
  double rms = 0.0;           // RMS of raw residuals
  double max_abs = 0.0;       // worst raw residual
  /// Mean of squared normalized residuals r^2 / (H C H^T + R); ~1 for a
  /// consistent filter, >> 1 when the covariance is overconfident.
  double mean_chi2 = 0.0;
};

/// Per-constraint diagnostic record.
struct ResidualRecord {
  Index constraint_index = 0;
  double residual = 0.0;
  double predicted_sigma = 0.0;  // sqrt(H C H^T + R)
  double normalized = 0.0;       // residual / predicted_sigma
};

/// Evaluates every constraint at `state` (which must cover all referenced
/// atoms) and returns the per-constraint records.
std::vector<ResidualRecord> residual_records(const NodeState& state,
                                             const cons::ConstraintSet& set);

/// Aggregates records over all constraints.
ResidualStats overall_stats(const std::vector<ResidualRecord>& records,
                            const cons::ConstraintSet& set);

/// Aggregates records per generator category.
std::map<int, ResidualStats> stats_by_category(
    const std::vector<ResidualRecord>& records,
    const cons::ConstraintSet& set);

/// The `count` constraints with the largest |normalized residual| — the
/// measurements the estimate most disagrees with (outlier candidates).
std::vector<ResidualRecord> worst_residuals(
    std::vector<ResidualRecord> records, Index count);

/// Human-readable misfit report.
std::string residual_report(const NodeState& state,
                            const cons::ConstraintSet& set,
                            Index highlight_count = 5);

}  // namespace phmse::est
