// Numerical fault-tolerance policy and per-batch diagnostics for the
// Fig.-1 update (DESIGN.md §9).
//
// One degenerate constraint batch — a NaN observation, a non-positive
// variance, a covariance driven indefinite by round-off — must not abort a
// production solve mid-update.  SolvePolicy selects what BatchUpdater does
// instead of throwing; BatchOutcome / NodeReport carry what actually
// happened back up through SolvePlan into core::SolveReport.
#pragma once

#include <vector>

#include "support/types.hpp"

namespace phmse::est {

/// What BatchUpdater::apply does when a batch fails numerically: non-finite
/// positions/observations/variances at linearization, or an innovation
/// covariance S that is not (numerically) positive definite.
enum class FailAction : int {
  /// Throw phmse::Error, aborting the solve — the historical behavior and
  /// the default (a run with this action is bitwise identical to pre-policy
  /// builds).
  kAbort = 0,
  /// Drop the failing batch and continue; the node state is left bitwise
  /// untouched by the dropped batch.
  kSkipBatch,
  /// Re-factor S with escalating Tikhonov regularization (S + lambda I —
  /// equivalent to inflating the measurement noise R), bounded by
  /// max_retries; a batch still failing at the top rung is dropped.
  kRetryRegularized,
  /// kRetryRegularized plus chi-squared innovation gating: a batch whose
  /// whitened innovation chi^2 per degree of freedom exceeds
  /// gate_chi2_per_dof is dropped as an outlier before the state is
  /// touched.
  kGateOutliers,
};

/// Degradation policy for numerical failures during constraint application.
struct SolvePolicy {
  FailAction on_failure = FailAction::kAbort;

  /// Maximum regularized re-factorizations after the first failure
  /// (kRetryRegularized / kGateOutliers).
  int max_retries = 5;

  /// The first retry adds regularization_init * (trace(S)/m) to diag(S);
  /// every further rung multiplies the term by regularization_growth.  With
  /// the defaults the ladder tops out at 100 * trace(S)/m — far above the
  /// matrix scale, so any finite indefiniteness is eventually absorbed (at
  /// the price of a nearly information-free update for that batch).
  double regularization_init = 1e-6;
  double regularization_growth = 100.0;

  /// kGateOutliers: drop a batch whose whitened innovation chi^2 per degree
  /// of freedom exceeds this.  A statistically consistent batch sits near
  /// 1; wildly inconsistent data is orders of magnitude above.
  double gate_chi2_per_dof = 25.0;

  static SolvePolicy abort() { return {}; }
  static SolvePolicy skip_batch() {
    SolvePolicy p;
    p.on_failure = FailAction::kSkipBatch;
    return p;
  }
  static SolvePolicy retry_regularized() {
    SolvePolicy p;
    p.on_failure = FailAction::kRetryRegularized;
    return p;
  }
  static SolvePolicy gate_outliers() {
    SolvePolicy p;
    p.on_failure = FailAction::kGateOutliers;
    return p;
  }
};

/// How one constraint batch ended.
enum class BatchStatus : int {
  kOk = 0,   ///< applied, first factorization attempt succeeded
  kRetried,  ///< applied after >= 1 regularized re-factorization
  kGated,    ///< dropped by the chi-squared innovation gate
  kSkipped,  ///< dropped: non-finite inputs, or kSkipBatch on a failed factor
  kFailed,   ///< dropped: factorization still failing after the retry ladder
};

const char* to_string(BatchStatus status);

/// Diagnostics of one BatchUpdater::apply call.
struct BatchOutcome {
  BatchStatus status = BatchStatus::kOk;
  /// Factorization attempts made (1 = first try succeeded; 0 = the batch
  /// never reached the factorization, e.g. rejected by validation).
  int attempts = 1;
  /// Tikhonov term added to diag(S) on the successful attempt (absolute).
  double regularization = 0.0;
  /// Whitened innovation chi^2 per degree of freedom (0 when the batch
  /// never reached the gate computation).
  double chi2_per_dof = 0.0;
  /// Failing pivot index of the last failed factorization, -1 if none.
  Index failed_pivot = -1;

  /// True when the batch updated the state (kOk or kRetried).
  bool applied() const {
    return status == BatchStatus::kOk || status == BatchStatus::kRetried;
  }
};

/// One non-ok batch, as recorded by apply_all into a NodeReport.
struct BatchIncident {
  /// Batch ordinal within the node's constraint sweep (cycle-local).
  Index batch = -1;
  BatchOutcome outcome;
};

/// Per-node tally of apply_all: counters over every batch plus the
/// individual non-ok incidents.  clear() keeps the incident capacity, so a
/// clean steady-state solve records into it without allocating.
struct NodeReport {
  long batches = 0;
  long ok = 0;
  long retried = 0;
  long gated = 0;
  long skipped = 0;
  long failed = 0;
  int max_attempts = 0;
  double max_regularization = 0.0;
  std::vector<BatchIncident> incidents;

  bool clean() const { return retried + gated + skipped + failed == 0; }

  void clear() {
    batches = ok = retried = gated = skipped = failed = 0;
    max_attempts = 0;
    max_regularization = 0.0;
    incidents.clear();
  }

  /// Folds another tally into this one.  Used by the incremental solve to
  /// replay a checkpointed node's saved sweep tally without re-executing
  /// the sweep (core::SolvePlan, DESIGN.md §11).
  void merge_from(const NodeReport& other) {
    batches += other.batches;
    ok += other.ok;
    retried += other.retried;
    gated += other.gated;
    skipped += other.skipped;
    failed += other.failed;
    if (other.max_attempts > max_attempts) max_attempts = other.max_attempts;
    if (other.max_regularization > max_regularization) {
      max_regularization = other.max_regularization;
    }
    incidents.insert(incidents.end(), other.incidents.begin(),
                     other.incidents.end());
  }

  void record(Index batch_index, const BatchOutcome& out) {
    ++batches;
    switch (out.status) {
      case BatchStatus::kOk: ++ok; break;
      case BatchStatus::kRetried: ++retried; break;
      case BatchStatus::kGated: ++gated; break;
      case BatchStatus::kSkipped: ++skipped; break;
      case BatchStatus::kFailed: ++failed; break;
    }
    if (out.attempts > max_attempts) max_attempts = out.attempts;
    if (out.regularization > max_regularization) {
      max_regularization = out.regularization;
    }
    if (out.status != BatchStatus::kOk) {
      incidents.push_back({batch_index, out});
    }
  }
};

inline const char* to_string(BatchStatus status) {
  switch (status) {
    case BatchStatus::kOk: return "ok";
    case BatchStatus::kRetried: return "retried";
    case BatchStatus::kGated: return "gated";
    case BatchStatus::kSkipped: return "skipped";
    case BatchStatus::kFailed: return "failed";
  }
  return "?";
}

}  // namespace phmse::est
