#include "estimation/combine.hpp"

#include "linalg/blas.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/kernels.hpp"
#include "support/check.hpp"

namespace phmse::est {
namespace {

using linalg::Matrix;
using linalg::Vector;

// Y = C^{-1} via Cholesky: C = L L^T, W = L^{-1} I, Y = W^T W.
Matrix information_matrix(par::ExecContext& ctx, const Matrix& c) {
  Matrix l = c;
  linalg::cholesky(ctx, l);
  Matrix w(c.rows(), c.cols());
  w.set_identity();
  linalg::trsm_lower(ctx, l, w);
  Matrix y;
  linalg::gram(ctx, w, y);
  return y;
}

// y = A x, charged as a dense matrix-vector product.
Vector matvec(par::ExecContext& ctx, const Matrix& a, const Vector& x) {
  Vector y;
  ctx.sequential(
      perf::Category::kMatVec,
      [&](Index, Index) {
        par::KernelStats st;
        st.flops = 2.0 * static_cast<double>(a.rows()) *
                   static_cast<double>(a.cols());
        st.bytes_stream = 8.0 * static_cast<double>(a.rows()) *
                          static_cast<double>(a.cols());
        return st;
      },
      [&] { linalg::gemv(a, x, y); });
  return y;
}

}  // namespace

NodeState combine_independent(par::ExecContext& ctx, const NodeState& a,
                              const NodeState& b,
                              const linalg::Vector& prior_x,
                              double prior_sigma) {
  PHMSE_CHECK(a.atom_begin == b.atom_begin && a.atom_end == b.atom_end,
              "combine: posteriors must cover the same atoms");
  PHMSE_CHECK(prior_x.size() == a.x.size(),
              "combine: prior dimension mismatch");
  PHMSE_CHECK(prior_sigma > 0.0, "combine: prior sigma must be positive");
  const Index n = a.dim();
  const double y0 = 1.0 / (prior_sigma * prior_sigma);

  const Matrix ya = information_matrix(ctx, a.c);
  const Matrix yb = information_matrix(ctx, b.c);

  // Fused information matrix: Ya + Yb - Y0 (Y0 spherical).
  Matrix lambda = ya;
  ctx.sequential(
      perf::Category::kVector,
      [&](Index, Index) {
        par::KernelStats st;
        st.flops = static_cast<double>(n) * static_cast<double>(n);
        st.bytes_stream = 24.0 * static_cast<double>(n * n);
        return st;
      },
      [&] {
        for (Index i = 0; i < n; ++i) {
          double* lrow = lambda.row(i).data();
          const double* brow = yb.row(i).data();
          for (Index j = 0; j < n; ++j) lrow[j] += brow[j];
          lrow[i] -= y0;
        }
      });

  // Fused information vector: Ya xa + Yb xb - Y0 x0.
  Vector eta_a = matvec(ctx, ya, a.x);
  const Vector eta_b = matvec(ctx, yb, b.x);
  for (std::size_t i = 0; i < eta_a.size(); ++i) {
    eta_a[i] += eta_b[i] - y0 * prior_x[i];
  }

  // Recover (xf, Cf) from information form.
  NodeState fused;
  fused.atom_begin = a.atom_begin;
  fused.atom_end = a.atom_end;
  fused.c = information_matrix(ctx, lambda);  // Cf = Lambda^{-1}
  fused.x = matvec(ctx, fused.c, eta_a);
  return fused;
}

NodeState combine_tournament(par::ExecContext& ctx,
                             std::vector<NodeState> posteriors,
                             const linalg::Vector& prior_x,
                             double prior_sigma) {
  PHMSE_CHECK(!posteriors.empty(), "combine: need at least one posterior");
  // Pairwise rounds, as the paper describes.
  while (posteriors.size() > 1) {
    std::vector<NodeState> next;
    for (std::size_t i = 0; i + 1 < posteriors.size(); i += 2) {
      next.push_back(combine_independent(ctx, posteriors[i],
                                         posteriors[i + 1], prior_x,
                                         prior_sigma));
    }
    if (posteriors.size() % 2 == 1) {
      next.push_back(std::move(posteriors.back()));
    }
    posteriors = std::move(next);
  }
  return std::move(posteriors.front());
}

}  // namespace phmse::est
