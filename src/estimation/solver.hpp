// Flat (non-hierarchical) iterated solver.
//
// Applies the whole constraint set to a single node covering the molecule,
// cycling until convergence: because the measurement functions are
// nonlinear, the covariance is re-initialized and the cycle of updates
// repeated until the estimate settles (paper Section 2).  The flat solver
// is both the baseline of the paper's Table 1 and the engine used inside
// each hierarchy node.
#pragma once

#include <string>

#include "constraints/set.hpp"
#include "estimation/state.hpp"
#include "estimation/update.hpp"
#include "parallel/exec.hpp"

namespace phmse::est {

/// Options for the iterated solve.
struct SolveOptions {
  /// Constraint batch dimension m (the paper's Table 2 studies this; 16 is
  /// the measured optimum).
  Index batch_size = 16;
  /// Number of cycles over the full constraint set.  The paper's timing
  /// experiments measure exactly one cycle; convergence runs use more.
  int max_cycles = 1;
  /// If positive, stop early once the RMS state change of a full cycle
  /// drops below this threshold.
  double tolerance = 0.0;
  /// Spherical prior standard deviation used to (re-)initialize C.  Beyond
  /// expressing prior uncertainty this acts as a step damper for the
  /// relinearized cycles (large priors let early batches overshoot their
  /// linearization region); ~1 Angstrom works well for molecular data.
  double prior_sigma = 1.0;
  /// Symmetrize C every this many batches (0 = never).
  Index symmetrize_every = 64;
  /// Kernel backend for this solve: "ref", "blocked", "simd", or empty for
  /// the process default (PHMSE_BACKEND, else best available).  Unknown
  /// names fail fast with the valid names and this CPU's support — see
  /// linalg/backend.hpp.
  std::string backend;
};

/// Result of an iterated solve.
struct SolveResult {
  int cycles = 0;
  /// RMS change of the state vector during the last cycle.
  double last_cycle_delta = 0.0;
  bool converged = false;
};

/// Runs `options.max_cycles` cycles of the Fig.-1 update over `set`,
/// re-initializing the covariance before every cycle.  The state must
/// cover every atom the constraints reference.
SolveResult solve_flat(par::ExecContext& ctx, NodeState& state,
                       const cons::ConstraintSet& set,
                       const SolveOptions& options);

}  // namespace phmse::est
