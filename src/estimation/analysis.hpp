// Uncertainty analysis of a structure estimate.
//
// The covariance matrix is half of the method's output: "the information
// contained in the covariance matrix is useful in assessing, for example,
// which parts of the molecule are better defined by the data" (paper
// Section 2).  This module turns (x, C) into exactly those assessments:
// per-atom positional uncertainty (3x3 marginal covariances and their
// principal axes), inter-atom correlation queries, and a ranking of the
// best/worst determined regions.
#pragma once

#include <string>
#include <vector>

#include "estimation/state.hpp"

namespace phmse::est {

/// Per-atom positional uncertainty derived from the 3x3 marginal
/// covariance block of one atom.
struct AtomUncertainty {
  Index atom = 0;
  /// Eigenvalues of the 3x3 marginal covariance, descending (variances
  /// along the principal axes, in A^2).
  std::array<double, 3> eigenvalues{};
  /// Unit principal axes, matching `eigenvalues`.
  std::array<mol::Vec3, 3> axes{};
  /// RMS positional uncertainty: sqrt(trace / 3).
  double rms() const {
    return std::sqrt((eigenvalues[0] + eigenvalues[1] + eigenvalues[2]) /
                     3.0);
  }
  /// Anisotropy: largest / smallest axis variance (1 = spherical).
  double anisotropy() const {
    return eigenvalues[2] > 0.0 ? eigenvalues[0] / eigenvalues[2]
                                : std::numeric_limits<double>::infinity();
  }
};

/// Eigen-decomposition of a symmetric 3x3 matrix (values descending).
/// Exposed for tests; uses the analytic characteristic-polynomial method
/// with an orthonormalized eigenbasis.
void eigen_symmetric_3x3(const std::array<std::array<double, 3>, 3>& m,
                         std::array<double, 3>& values,
                         std::array<mol::Vec3, 3>& vectors);

/// The 3x3 marginal covariance block of `atom`.
std::array<std::array<double, 3>, 3> marginal_covariance(
    const NodeState& state, Index atom);

/// Uncertainty summary of one atom.
AtomUncertainty atom_uncertainty(const NodeState& state, Index atom);

/// Uncertainty summaries for every atom in the state.
std::vector<AtomUncertainty> all_atom_uncertainties(const NodeState& state);

/// Pearson correlation between coordinate `axis_a` of `atom_a` and
/// coordinate `axis_b` of `atom_b` (zero if either variance vanishes).
double coordinate_correlation(const NodeState& state, Index atom_a,
                              int axis_a, Index atom_b, int axis_b);

/// The `count` atoms with the largest RMS positional uncertainty,
/// descending — "which parts of the molecule are worst defined".
std::vector<AtomUncertainty> worst_determined(const NodeState& state,
                                              Index count);

/// The `count` atoms with the smallest RMS positional uncertainty,
/// ascending — the best defined parts.
std::vector<AtomUncertainty> best_determined(const NodeState& state,
                                             Index count);

/// A short human-readable report (used by the examples).
std::string uncertainty_report(const NodeState& state,
                               const mol::Topology& topology,
                               Index highlight_count = 5);

}  // namespace phmse::est
