#include "estimation/solver.hpp"

#include <cmath>

#include "linalg/backend.hpp"
#include "support/check.hpp"

namespace phmse::est {

SolveResult solve_flat(par::ExecContext& ctx, NodeState& state,
                       const cons::ConstraintSet& set,
                       const SolveOptions& options) {
  PHMSE_CHECK(options.max_cycles >= 1, "need at least one cycle");
  const auto span = set.atom_span();
  PHMSE_CHECK(set.empty() || (span.first >= state.atom_begin &&
                              span.second < state.atom_end),
              "constraints reference atoms outside the state");

  BatchUpdater updater;
  updater.set_backend(
      &linalg::resolve_backend(options.backend, "SolveOptions.backend"));
  SolveResult result;
  for (int cycle = 0; cycle < options.max_cycles; ++cycle) {
    state.reset_covariance(options.prior_sigma);
    const linalg::Vector before = state.x;
    updater.apply_all(ctx, state, set, options.batch_size,
                      options.symmetrize_every);
    ++result.cycles;

    double sum = 0.0;
    for (std::size_t i = 0; i < before.size(); ++i) {
      const double d = state.x[i] - before[i];
      sum += d * d;
    }
    result.last_cycle_delta =
        before.empty() ? 0.0
                       : std::sqrt(sum / static_cast<double>(before.size()));
    if (options.tolerance > 0.0 &&
        result.last_cycle_delta < options.tolerance) {
      result.converged = true;
      break;
    }
  }
  return result;
}

}  // namespace phmse::est
