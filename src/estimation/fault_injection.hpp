// Deterministic fault-injection seam for the fault-tolerance tests.
//
// Header-only and compiled out by default: unless the build defines
// PHMSE_FAULT_INJECTION (CMake option of the same name; the CI presets turn
// it on), every hook below is an empty inline function and the seam costs
// nothing.  With the macro defined, tests arm a process-wide Injector with
// (node, batch) sites and the BatchUpdater hooks fire deterministically —
// sites are keyed on the node's atom range and the batch ordinal, both of
// which are identical across the serial, threaded and simulated executors,
// so an injected fault reproduces bitwise on all three.
//
// Three fault kinds, matching the failure modes DESIGN.md §9 catalogues:
//   kNonSpd             — after S = G H^T + R is assembled, subtract twice
//                         the smallest diagonal entry from the whole
//                         diagonal: S - delta I is certainly not SPD, and a
//                         Tikhonov rung lambda >= delta provably repairs it
//                         (S + (lambda - delta) I >= S), so the retry
//                         ladder is exercised end to end.  Fires on every
//                         assembly, including retries (a persistent fault).
//   kCorruptObservation — overwrite the first residual with `magnitude`
//                         (default 1e6: finite but wildly inconsistent, the
//                         chi-squared gate's case; a NaN magnitude instead
//                         exercises the validation path).
//   kPoisonState        — write NaN into the node state before the batch
//                         linearizes (pre-update validation must catch it).
//   kStall              — sleep `magnitude` wall-clock seconds at the batch
//                         boundary, before the batch linearizes.  The site
//                         (atom range + batch ordinal) is deterministic
//                         across executors, so deadline/cancellation tests
//                         get a reproducible "pathological molecule" whose
//                         slow point is known exactly: the cancellation
//                         poll right after the stalled batch observes the
//                         expired deadline (DESIGN.md §13).
#pragma once

#include <limits>

#include "estimation/state.hpp"
#include "linalg/matrix.hpp"
#include "support/types.hpp"

#ifdef PHMSE_FAULT_INJECTION
#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>
#endif

namespace phmse::fault {

enum class Kind : int { kNonSpd = 0, kCorruptObservation, kPoisonState,
                        kStall };

/// One armed injection site.  (atom_begin, atom_end) selects the target
/// node by its atom range (-1 = wildcard; note an ancestor shares its
/// first leaf's atom_begin, so pinning ONE node needs both ends); batch
/// selects the batch ordinal within that node's sweep (-1 = any batch,
/// including direct apply() calls).
struct Site {
  Kind kind = Kind::kNonSpd;
  Index atom_begin = -1;
  Index atom_end = -1;
  Index batch = -1;
  /// kCorruptObservation: value written over the first residual.
  /// kStall: wall-clock seconds to sleep.
  double magnitude = 1e6;
  /// How many times this site may fire before going dormant (-1 = forever,
  /// the historical persistent-fault behavior).  A finite count models
  /// TRANSIENT faults: `max_fires = 1` fails exactly one attempt, so the
  /// service layer's retry-with-backoff path can be exercised end to end.
  int max_fires = -1;
};

#ifdef PHMSE_FAULT_INJECTION

/// Process-wide registry of armed sites.  Thread-safe: hooks fire from
/// executor lanes; arming/clearing happens on the test thread between runs.
class Injector {
 public:
  static Injector& instance() {
    static Injector inj;
    return inj;
  }

  void arm(const Site& site) {
    std::lock_guard<std::mutex> lock(mu_);
    sites_.push_back(site);
    armed_.store(true, std::memory_order_release);
  }

  void clear() {
    std::lock_guard<std::mutex> lock(mu_);
    sites_.clear();
    fired_ = 0;
    armed_.store(false, std::memory_order_release);
  }

  /// Total hook firings since the last clear().
  long fired() const {
    std::lock_guard<std::mutex> lock(mu_);
    return fired_;
  }

  /// Returns true (and counts the firing) when a site matching
  /// (kind, atom range, batch) is armed; `magnitude` (optional) receives
  /// the site's payload.
  bool fire(Kind kind, Index atom_begin, Index atom_end, Index batch,
            double* magnitude = nullptr) {
    if (!armed_.load(std::memory_order_acquire)) return false;
    std::lock_guard<std::mutex> lock(mu_);
    for (Site& s : sites_) {
      if (s.kind != kind) continue;
      if (s.atom_begin >= 0 && s.atom_begin != atom_begin) continue;
      if (s.atom_end >= 0 && s.atom_end != atom_end) continue;
      if (s.batch >= 0 && s.batch != batch) continue;
      if (s.max_fires == 0) continue;  // transient site already spent
      if (s.max_fires > 0) --s.max_fires;
      ++fired_;
      if (magnitude != nullptr) *magnitude = s.magnitude;
      return true;
    }
    return false;
  }

 private:
  Injector() = default;
  mutable std::mutex mu_;
  std::vector<Site> sites_;
  long fired_ = 0;
  std::atomic<bool> armed_{false};
};

inline void maybe_poison_state(est::NodeState& state, Index batch) {
  if (Injector::instance().fire(Kind::kPoisonState, state.atom_begin,
                                state.atom_end, batch)) {
    state.x[0] = std::numeric_limits<double>::quiet_NaN();
  }
}

inline void maybe_stall(const est::NodeState& state, Index batch) {
  double seconds = 0.0;
  if (Injector::instance().fire(Kind::kStall, state.atom_begin,
                                state.atom_end, batch, &seconds)) {
    if (seconds > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
    }
  }
}

inline void maybe_corrupt_observation(const est::NodeState& state,
                                      Index batch,
                                      linalg::Vector& residual) {
  double magnitude = 0.0;
  if (!residual.empty() &&
      Injector::instance().fire(Kind::kCorruptObservation, state.atom_begin,
                                state.atom_end, batch, &magnitude)) {
    residual[0] = magnitude;
  }
}

inline void maybe_force_non_spd(const est::NodeState& state, Index batch,
                                linalg::Matrix& s) {
  if (s.rows() > 0 &&
      Injector::instance().fire(Kind::kNonSpd, state.atom_begin,
                                state.atom_end, batch)) {
    double min_diag = s(0, 0);
    for (Index i = 1; i < s.rows(); ++i) {
      min_diag = std::min(min_diag, s(i, i));
    }
    const double delta = 2.0 * std::max(min_diag, 1e-300);
    for (Index i = 0; i < s.rows(); ++i) s(i, i) -= delta;
  }
}

#else  // !PHMSE_FAULT_INJECTION — the hooks compile to nothing.

inline void maybe_poison_state(est::NodeState&, Index) {}
inline void maybe_stall(const est::NodeState&, Index) {}
inline void maybe_corrupt_observation(const est::NodeState&, Index,
                                      linalg::Vector&) {}
inline void maybe_force_non_spd(const est::NodeState&, Index,
                                linalg::Matrix&) {}

#endif  // PHMSE_FAULT_INJECTION

}  // namespace phmse::fault
