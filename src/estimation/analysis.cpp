#include "estimation/analysis.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "support/check.hpp"

namespace phmse::est {
namespace {

using Mat3 = std::array<std::array<double, 3>, 3>;

mol::Vec3 col(const Mat3& m, int j) {
  return {m[0][static_cast<std::size_t>(j)],
          m[1][static_cast<std::size_t>(j)],
          m[2][static_cast<std::size_t>(j)]};
}

// One Jacobi rotation sweep pass for a symmetric 3x3; robust and exact
// enough at this size (a handful of sweeps reaches machine precision).
void jacobi_3x3(Mat3 a, std::array<double, 3>& values, Mat3& vectors) {
  // vectors starts as identity.
  vectors = {{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}};
  for (int sweep = 0; sweep < 32; ++sweep) {
    // Largest off-diagonal element.
    double off = 0.0;
    int p = 0;
    int q = 1;
    for (int i = 0; i < 3; ++i) {
      for (int j = i + 1; j < 3; ++j) {
        const double v = std::abs(a[static_cast<std::size_t>(i)]
                                    [static_cast<std::size_t>(j)]);
        if (v > off) {
          off = v;
          p = i;
          q = j;
        }
      }
    }
    if (off < 1e-15) break;

    const double app = a[static_cast<std::size_t>(p)][static_cast<std::size_t>(p)];
    const double aqq = a[static_cast<std::size_t>(q)][static_cast<std::size_t>(q)];
    const double apq = a[static_cast<std::size_t>(p)][static_cast<std::size_t>(q)];
    const double theta = 0.5 * std::atan2(2.0 * apq, aqq - app);
    const double c = std::cos(theta);
    const double s = std::sin(theta);

    for (int k = 0; k < 3; ++k) {
      const double akp = a[static_cast<std::size_t>(k)][static_cast<std::size_t>(p)];
      const double akq = a[static_cast<std::size_t>(k)][static_cast<std::size_t>(q)];
      a[static_cast<std::size_t>(k)][static_cast<std::size_t>(p)] = c * akp - s * akq;
      a[static_cast<std::size_t>(k)][static_cast<std::size_t>(q)] = s * akp + c * akq;
    }
    for (int k = 0; k < 3; ++k) {
      const double apk = a[static_cast<std::size_t>(p)][static_cast<std::size_t>(k)];
      const double aqk = a[static_cast<std::size_t>(q)][static_cast<std::size_t>(k)];
      a[static_cast<std::size_t>(p)][static_cast<std::size_t>(k)] = c * apk - s * aqk;
      a[static_cast<std::size_t>(q)][static_cast<std::size_t>(k)] = s * apk + c * aqk;
    }
    for (int k = 0; k < 3; ++k) {
      const double vkp = vectors[static_cast<std::size_t>(k)][static_cast<std::size_t>(p)];
      const double vkq = vectors[static_cast<std::size_t>(k)][static_cast<std::size_t>(q)];
      vectors[static_cast<std::size_t>(k)][static_cast<std::size_t>(p)] = c * vkp - s * vkq;
      vectors[static_cast<std::size_t>(k)][static_cast<std::size_t>(q)] = s * vkp + c * vkq;
    }
  }
  values = {a[0][0], a[1][1], a[2][2]};
}

}  // namespace

void eigen_symmetric_3x3(const Mat3& m, std::array<double, 3>& values,
                         std::array<mol::Vec3, 3>& vectors) {
  Mat3 basis;
  jacobi_3x3(m, values, basis);

  // Sort descending by eigenvalue.
  std::array<int, 3> order{0, 1, 2};
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return values[static_cast<std::size_t>(a)] >
           values[static_cast<std::size_t>(b)];
  });
  const std::array<double, 3> v = values;
  for (int i = 0; i < 3; ++i) {
    values[static_cast<std::size_t>(i)] =
        v[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])];
    vectors[static_cast<std::size_t>(i)] =
        col(basis, order[static_cast<std::size_t>(i)]);
  }
}

Mat3 marginal_covariance(const NodeState& state, Index atom) {
  PHMSE_CHECK(atom >= state.atom_begin && atom < state.atom_end,
              "atom outside the state");
  const Index base = state.coord_index(atom, 0);
  Mat3 m;
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      m[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          state.c(base + i, base + j);
    }
  }
  return m;
}

AtomUncertainty atom_uncertainty(const NodeState& state, Index atom) {
  AtomUncertainty out;
  out.atom = atom;
  eigen_symmetric_3x3(marginal_covariance(state, atom), out.eigenvalues,
                      out.axes);
  return out;
}

std::vector<AtomUncertainty> all_atom_uncertainties(const NodeState& state) {
  std::vector<AtomUncertainty> out;
  out.reserve(static_cast<std::size_t>(state.num_atoms()));
  for (Index a = state.atom_begin; a < state.atom_end; ++a) {
    out.push_back(atom_uncertainty(state, a));
  }
  return out;
}

double coordinate_correlation(const NodeState& state, Index atom_a,
                              int axis_a, Index atom_b, int axis_b) {
  const Index ia = state.coord_index(atom_a, axis_a);
  const Index ib = state.coord_index(atom_b, axis_b);
  const double va = state.c(ia, ia);
  const double vb = state.c(ib, ib);
  if (va <= 0.0 || vb <= 0.0) return 0.0;
  return state.c(ia, ib) / std::sqrt(va * vb);
}

namespace {

std::vector<AtomUncertainty> ranked(const NodeState& state, Index count,
                                    bool worst) {
  std::vector<AtomUncertainty> all = all_atom_uncertainties(state);
  std::sort(all.begin(), all.end(),
            [worst](const AtomUncertainty& a, const AtomUncertainty& b) {
              return worst ? a.rms() > b.rms() : a.rms() < b.rms();
            });
  if (static_cast<Index>(all.size()) > count) {
    all.resize(static_cast<std::size_t>(count));
  }
  return all;
}

}  // namespace

std::vector<AtomUncertainty> worst_determined(const NodeState& state,
                                              Index count) {
  return ranked(state, count, /*worst=*/true);
}

std::vector<AtomUncertainty> best_determined(const NodeState& state,
                                             Index count) {
  return ranked(state, count, /*worst=*/false);
}

std::string uncertainty_report(const NodeState& state,
                               const mol::Topology& topology,
                               Index highlight_count) {
  std::ostringstream os;
  const auto all = all_atom_uncertainties(state);
  double mean = 0.0;
  for (const auto& u : all) mean += u.rms();
  mean /= static_cast<double>(all.size());
  os << "positional uncertainty: mean RMS " << mean << " A over "
     << all.size() << " atoms\n";

  os << "worst determined:\n";
  for (const auto& u : worst_determined(state, highlight_count)) {
    os << "  " << topology.atom(u.atom).label << "  rms=" << u.rms()
       << " A  anisotropy=" << u.anisotropy() << "\n";
  }
  os << "best determined:\n";
  for (const auto& u : best_determined(state, highlight_count)) {
    os << "  " << topology.atom(u.atom).label << "  rms=" << u.rms()
       << " A\n";
  }
  return os.str();
}

}  // namespace phmse::est
