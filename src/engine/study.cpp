#include "engine/study.hpp"

#include "support/check.hpp"
#include "support/table.hpp"

namespace phmse::engine {

SpeedupStudy run_speedup_study(Plan& plan, const linalg::Vector& initial,
                               const simarch::MachineConfig& machine,
                               const std::vector<int>& counts) {
  PHMSE_CHECK(!counts.empty(), "study needs at least one processor count");
  SpeedupStudy study;
  study.machine = machine.name;
  const int original_processors = plan.processors();
  double t_first = 0.0;
  for (int procs : counts) {
    if (procs < 1 || procs > machine.processors) continue;
    plan.reschedule(procs);
    simarch::SimMachine sim(machine);
    const Result res = plan.solve(sim, initial);
    StudyRow row;
    row.processors = procs;
    row.time = res.vtime;
    if (study.rows.empty()) t_first = res.vtime;
    row.speedup = t_first > 0.0 ? t_first / res.vtime : 1.0;
    row.breakdown = res.breakdown;
    study.rows.push_back(std::move(row));
  }
  plan.reschedule(original_processors);
  PHMSE_CHECK(!study.rows.empty(),
              "no processor count fits the machine configuration");
  return study;
}

std::string format_speedup_table(const SpeedupStudy& study) {
  using perf::Category;
  Table t({"NP", "time", "spdup", "d-s", "chol", "sys", "m-m", "m-v",
           "vec"});
  for (const StudyRow& row : study.rows) {
    t.add_row({std::to_string(row.processors), format_fixed(row.time, 2),
               format_fixed(row.speedup, 2),
               format_fixed(row.breakdown.time(Category::kDenseSparse), 2),
               format_fixed(row.breakdown.time(Category::kCholesky), 2),
               format_fixed(row.breakdown.time(Category::kSystemSolve), 2),
               format_fixed(row.breakdown.time(Category::kMatMat), 2),
               format_fixed(row.breakdown.time(Category::kMatVec), 2),
               format_fixed(row.breakdown.time(Category::kVector), 2)});
  }
  return t.str();
}

}  // namespace phmse::engine
