#include "engine/engine.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <sstream>
#include <utility>

#include "core/schedule.hpp"
#include "estimation/update.hpp"
#include "linalg/backend.hpp"
#include "support/check.hpp"
#include "support/stopwatch.hpp"

namespace phmse::engine {

namespace {

// Eq.-1 calibration: time the Fig.-1 batch update on short synthetic
// distance batches at a few representative node sizes, and fit the
// constrained least-squares model to the measured per-constraint costs.
// Degenerate fits (all-zero model) fall back to the caller's coefficients.
core::WorkModel calibrate_work_model(core::Hierarchy& hierarchy,
                                     const core::HierSolveOptions& solve,
                                     const core::WorkModel& fallback) {
  // Representative state dimensions: the smallest and largest node, capped
  // so calibration stays cheap even for ribosome-sized roots (Eq. 1 is a
  // polynomial; moderate sizes identify its coefficients).
  constexpr Index kDimCap = 240;
  Index dim_min = std::numeric_limits<Index>::max();
  Index dim_max = 0;
  hierarchy.for_each_post_order([&](core::HierNode& node) {
    dim_min = std::min(dim_min, node.dim());
    dim_max = std::max(dim_max, node.dim());
  });
  dim_min = std::clamp<Index>(dim_min, 6, kDimCap);
  dim_max = std::clamp<Index>(dim_max, dim_min, kDimCap);

  std::vector<Index> dims{dim_min};
  if (dim_max > dim_min) dims.push_back(dim_max);
  if (dim_max > 2 * dim_min) {
    dims.insert(dims.begin() + 1, 3 * ((dim_min + dim_max) / 6));
  }

  const Index m_full = std::max<Index>(solve.batch_size, 1);
  std::vector<Index> batch_dims{m_full};
  if (m_full >= 4) batch_dims.push_back(m_full / 2);

  constexpr double kMinSeconds = 0.004;  // per (n, m) measurement
  std::vector<core::WorkSample> samples;
  par::SerialContext ctx;
  for (Index n : dims) {
    const Index atoms = std::max<Index>(n / 3, 2);
    est::NodeState state;
    state.atom_begin = 0;
    state.atom_end = atoms;
    state.x.resize(static_cast<std::size_t>(state.dim()));
    for (Index a = 0; a < atoms; ++a) {  // atoms on a line, spaced 1.5 A
      state.x[static_cast<std::size_t>(3 * a)] = 1.5 * static_cast<double>(a);
    }
    state.reset_covariance(solve.prior_sigma);

    for (Index m : batch_dims) {
      std::vector<cons::Constraint> batch(static_cast<std::size_t>(m));
      for (Index j = 0; j < m; ++j) {
        cons::Constraint& c = batch[static_cast<std::size_t>(j)];
        c.kind = cons::Kind::kDistance;
        const Index a = j % (atoms - 1);
        c.atoms = {a, a + 1, 0, 0};
        c.observed = 1.5;
        c.variance = 0.01;
      }
      est::BatchUpdater updater;
      // Calibrate against the backend the compiled plan will dispatch
      // through, not whatever the process default happens to be.
      updater.set_backend(
          &linalg::resolve_backend(solve.backend, "HierSolveOptions.backend"));
      updater.apply(ctx, state, batch);  // warm the scratch buffers
      Stopwatch sw;
      int reps = 0;
      do {
        updater.apply(ctx, state, batch);
        ++reps;
      } while (sw.seconds() < kMinSeconds);
      const double per = sw.seconds() /
                         (static_cast<double>(reps) * static_cast<double>(m));
      samples.push_back({static_cast<double>(n), static_cast<double>(m), per});
      state.reset_covariance(solve.prior_sigma);
    }
  }

  try {
    return core::fit_work_model(samples);
  } catch (const Error&) {
    return fallback;  // degenerate measurement; keep the supplied model
  }
}

}  // namespace

Problem Problem::flat(Index num_atoms, cons::ConstraintSet constraints) {
  return custom(
      num_atoms, std::move(constraints),
      [num_atoms] { return core::build_flat_hierarchy(num_atoms); }, "flat");
}

Problem Problem::bisection(Index num_atoms, cons::ConstraintSet constraints,
                           Index max_leaf_atoms) {
  return custom(
      num_atoms, std::move(constraints),
      [num_atoms, max_leaf_atoms] {
        return core::build_bisection_hierarchy(num_atoms, max_leaf_atoms);
      },
      "bisection/" + std::to_string(max_leaf_atoms));
}

Problem Problem::custom(Index num_atoms, cons::ConstraintSet constraints,
                        std::function<core::Hierarchy()> decompose,
                        std::string recipe) {
  Problem p;
  p.num_atoms = num_atoms;
  p.constraints = std::move(constraints);
  p.decompose = std::move(decompose);
  p.recipe = std::move(recipe);
  return p;
}

Plan Engine::compile(const Problem& problem, const CompileOptions& options) {
  PHMSE_CHECK(problem.decompose != nullptr,
              "problem has no decomposition recipe");
  PHMSE_CHECK(options.processors >= 1, "processor count must be >= 1");

  Plan plan;
  Stopwatch total;
  Stopwatch phase;

  plan.hierarchy_ = std::make_unique<core::Hierarchy>(problem.decompose());
  plan.hierarchy_->validate();
  PHMSE_CHECK(plan.hierarchy_->root().atom_begin == 0 &&
                  plan.hierarchy_->root().atom_end == problem.num_atoms,
              "decomposition does not cover the problem's atom range");
  plan.timings_.decompose_seconds = phase.seconds();

  phase.reset();
  core::assign_constraints(*plan.hierarchy_, problem.constraints,
                           plan.slots_);
  plan.timings_.assign_seconds = phase.seconds();
  // The pending-change ledger and its rank-k work-list are capped at
  // kMaxPendingChanges entries; reserving them here keeps set_observations
  // and solve_lowrank off the heap in the steady state.
  plan.pending_.reserve(Plan::kMaxPendingChanges);
  plan.changes_scratch_.reserve(Plan::kMaxPendingChanges);

  plan.work_model_ = options.work_model;
  if (options.calibrate_work_model) {
    phase.reset();
    plan.work_model_ = calibrate_work_model(*plan.hierarchy_, options.solve,
                                            options.work_model);
    plan.timings_.calibrate_seconds = phase.seconds();
  }

  phase.reset();
  core::estimate_work(*plan.hierarchy_, plan.work_model_,
                      options.solve.batch_size);
  core::assign_processors(*plan.hierarchy_, options.processors);
  plan.processors_ = options.processors;
  plan.timings_.schedule_seconds = phase.seconds();

  phase.reset();
  plan.plan_ =
      std::make_unique<core::SolvePlan>(*plan.hierarchy_, options.solve);
  plan.timings_.workspace_seconds = phase.seconds();
  plan.timings_.total_seconds = total.seconds();
  return plan;
}

Result Plan::finish_result_(const core::PlanRunStats& stats, double seconds) {
  Result r;
  r.state = &plan_->root_state();
  r.cycles = stats.cycles;
  r.last_cycle_delta = stats.last_cycle_delta;
  r.converged = stats.converged;
  r.seconds = seconds;
  // Copying the report is cheap on a clean solve: the counters are plain
  // scalars and the incident vector is empty (a size-0 copy does not
  // allocate), so the steady-state path stays allocation-free.
  r.report = plan_->last_report();
  // Feed the degradation rung's exact-path cost estimate (DESIGN.md §13).
  // Low-rank runs are excluded — they are the degraded answer, not the
  // exact path the estimate must predict.
  if (!stats.low_rank) {
    exact_seconds_ewma_ = exact_seconds_ewma_ == 0.0
                              ? seconds
                              : 0.7 * exact_seconds_ewma_ + 0.3 * seconds;
  }
  return r;
}

Plan::SolveFlight::SolveFlight(std::atomic<bool>& busy) : busy_(busy) {
  PHMSE_CHECK(!busy_.exchange(true, std::memory_order_acq_rel),
              "concurrent solve() on one Plan: per-node state and "
              "workspaces are mutated during a solve, so solves on a "
              "single plan are single-flight (use one Plan instance per "
              "in-flight solve, e.g. via the phmse::Server plan cache)");
}

Plan::SolveFlight::~SolveFlight() {
  busy_.store(false, std::memory_order_release);
}

Result Plan::solve(const linalg::Vector& initial_x) {
  return solve(serial_, initial_x);
}

Result Plan::solve(par::ExecContext& ctx, const linalg::Vector& initial_x) {
  const SolveFlight flight(*in_solve_);
  const perf::Profile before = ctx.profile();
  Stopwatch sw;
  const core::PlanRunStats stats = plan_->run(ctx, initial_x);
  Result r = finish_result_(stats, sw.seconds());
  r.breakdown = ctx.profile().minus(before);
  clear_pending_();
  return r;
}

Result Plan::solve(par::ThreadPool& pool, const linalg::Vector& initial_x) {
  const SolveFlight flight(*in_solve_);
  Stopwatch sw;
  const core::PlanRunStats stats = plan_->run_threaded(pool, initial_x);
  Result r = finish_result_(stats, sw.seconds());
  r.breakdown = plan_->threaded_profile();
  clear_pending_();
  return r;
}

Result Plan::solve(simarch::SimMachine& machine,
                   const linalg::Vector& initial_x) {
  const SolveFlight flight(*in_solve_);
  Stopwatch sw;
  const core::PlanRunStats stats = plan_->run_sim(machine, initial_x);
  Result r = finish_result_(stats, sw.seconds());
  r.vtime = machine.elapsed();
  r.breakdown = machine.reported_profile();
  clear_pending_();
  return r;
}

Result Plan::solve_incremental(const linalg::Vector& initial_x) {
  return solve_incremental(serial_, initial_x);
}

Result Plan::solve_incremental(par::ExecContext& ctx,
                               const linalg::Vector& initial_x) {
  const SolveFlight flight(*in_solve_);
  const perf::Profile before = ctx.profile();
  Stopwatch sw;
  const core::PlanRunStats stats = plan_->run_incremental(ctx, initial_x);
  Result r = finish_result_(stats, sw.seconds());
  r.breakdown = ctx.profile().minus(before);
  clear_pending_();
  return r;
}

Result Plan::solve_incremental(par::ThreadPool& pool,
                               const linalg::Vector& initial_x) {
  const SolveFlight flight(*in_solve_);
  Stopwatch sw;
  const core::PlanRunStats stats =
      plan_->run_threaded_incremental(pool, initial_x);
  Result r = finish_result_(stats, sw.seconds());
  r.breakdown = plan_->threaded_profile();
  clear_pending_();
  return r;
}

Result Plan::solve_incremental(simarch::SimMachine& machine,
                               const linalg::Vector& initial_x) {
  const SolveFlight flight(*in_solve_);
  Stopwatch sw;
  const core::PlanRunStats stats =
      plan_->run_sim_incremental(machine, initial_x);
  Result r = finish_result_(stats, sw.seconds());
  r.vtime = machine.elapsed();
  r.breakdown = machine.reported_profile();
  clear_pending_();
  return r;
}

bool Plan::try_lowrank_result_(const linalg::Vector& initial_x, Result* out) {
  const SolveFlight flight(*in_solve_);
  if (pending_.empty() || pending_overflow_) return false;
  // Materialize the rank-k work-list: each changed slot's owning node
  // and in-node index (resolving its archived Jacobian row), the value
  // the last completed solve applied, and the currently bound one.
  changes_scratch_.clear();
  changes_scratch_.reserve(pending_.size());
  for (const PendingChange& p : pending_) {
    const core::AssignedSlot& slot = slots_[p.slot];
    changes_scratch_.push_back({slot.node, slot.index, p.old_observed,
                                slot.node->constraints[slot.index].observed});
  }
  const perf::Profile before = serial_.profile();
  Stopwatch sw;
  core::PlanRunStats stats;
  if (!plan_->try_run_lowrank(serial_, initial_x, changes_scratch_, &stats)) {
    return false;
  }
  *out = finish_result_(stats, sw.seconds());
  out->breakdown = serial_.profile().minus(before);
  pending_.clear();
  pending_overflow_ = false;
  return true;
}

Result Plan::solve_lowrank(const linalg::Vector& initial_x) {
  Result r;
  if (try_lowrank_result_(initial_x, &r)) return r;
  // Exact fallback: the changed slots already marked their nodes dirty, so
  // the incremental path (itself falling back to a full run when no
  // checkpoint is valid) gives the bitwise-reproducible answer.
  return solve_incremental(serial_, initial_x);
}

const par::CancelToken* Plan::arm_controls_(const SolveOptions& controls) {
  if (controls.deadline_seconds > 0.0) {
    // The plan's scratch token carries the deadline clock; linking keeps the
    // caller's token (if any) authoritative for explicit cancellation
    // without ever mutating it.
    run_token_->reset();
    run_token_->link(controls.cancel);
    run_token_->set_deadline_after(controls.deadline_seconds);
    return run_token_.get();
  }
  return controls.cancel;
}

template <typename SolveFn>
Result Plan::solve_controlled_(const SolveOptions& controls,
                               const linalg::Vector& initial_x,
                               SolveFn&& do_solve) {
  const par::CancelToken* token = arm_controls_(controls);
  if (token == nullptr) return do_solve();  // uncontrolled: zero overhead
  if (token->stop_requested()) {
    // Shed before touching the plan: a budget spent (or a cancel raised)
    // before the solve starts must not burn a single batch.
    if (token->expired()) {
      throw DeadlineError("solve: deadline expired before the solve started");
    }
    throw par::CancelledError("solve: cancelled before the solve started",
                              /*deadline=*/false);
  }
  if (controls.degrade_lowrank && exact_seconds_ewma_ > 0.0) {
    // Degradation is decided UP FRONT: once an exact attempt is cancelled
    // its checkpoint is gone and the low-rank preconditions can no longer
    // hold, so a reactive fallback would be too late.  1.5x is a safety
    // factor over the EWMA of past exact runs.
    constexpr double kDegradeSafety = 1.5;
    if (token->remaining_seconds() < kDegradeSafety * exact_seconds_ewma_) {
      Result degraded;
      if (try_lowrank_result_(initial_x, &degraded)) return degraded;
    }
  }
  plan_->bind_cancel(token);
  try {
    Result r = do_solve();
    plan_->bind_cancel(nullptr);
    return r;
  } catch (const par::CancelledError& e) {
    plan_->bind_cancel(nullptr);
    if (e.deadline_expired) {
      throw DeadlineError(std::string("solve: ") + e.what());
    }
    throw;
  } catch (...) {
    plan_->bind_cancel(nullptr);
    throw;
  }
}

Result Plan::solve(const linalg::Vector& initial_x,
                   const SolveOptions& controls) {
  return solve_controlled_(controls, initial_x,
                           [&] { return solve(initial_x); });
}

Result Plan::solve(par::ExecContext& ctx, const linalg::Vector& initial_x,
                   const SolveOptions& controls) {
  return solve_controlled_(controls, initial_x,
                           [&] { return solve(ctx, initial_x); });
}

Result Plan::solve(par::ThreadPool& pool, const linalg::Vector& initial_x,
                   const SolveOptions& controls) {
  return solve_controlled_(controls, initial_x,
                           [&] { return solve(pool, initial_x); });
}

Result Plan::solve(simarch::SimMachine& machine,
                   const linalg::Vector& initial_x,
                   const SolveOptions& controls) {
  return solve_controlled_(controls, initial_x,
                           [&] { return solve(machine, initial_x); });
}

Result Plan::solve_incremental(const linalg::Vector& initial_x,
                               const SolveOptions& controls) {
  return solve_controlled_(controls, initial_x,
                           [&] { return solve_incremental(initial_x); });
}

Result Plan::solve_incremental(par::ExecContext& ctx,
                               const linalg::Vector& initial_x,
                               const SolveOptions& controls) {
  return solve_controlled_(controls, initial_x,
                           [&] { return solve_incremental(ctx, initial_x); });
}

Result Plan::solve_incremental(par::ThreadPool& pool,
                               const linalg::Vector& initial_x,
                               const SolveOptions& controls) {
  return solve_controlled_(controls, initial_x,
                           [&] { return solve_incremental(pool, initial_x); });
}

Result Plan::solve_incremental(simarch::SimMachine& machine,
                               const linalg::Vector& initial_x,
                               const SolveOptions& controls) {
  return solve_controlled_(
      controls, initial_x,
      [&] { return solve_incremental(machine, initial_x); });
}

void Plan::clear_pending_() {
  pending_.clear();
  pending_overflow_ = false;
}

void Plan::reschedule(int processors) {
  PHMSE_CHECK(processors >= 1, "processor count must be >= 1");
  core::assign_processors(*hierarchy_, processors);
  plan_->refresh_schedule();
  processors_ = processors;
}

void Plan::set_observations(std::span<const double> values) {
  // Two failure modes must produce a loud error, never a silent misbind:
  //  * a wrong-length vector (e.g. built from a constraint file whose
  //    loader dropped malformed lines, so its count no longer matches the
  //    set the plan was compiled from);
  //  * a compiled slot that no longer resolves to a live constraint (a
  //    node's constraint list shrank behind the plan's back).  The slot
  //    lookup used to be an assert that compiles out in release builds,
  //    which made this an out-of-bounds write instead of an error.
  if (values.size() != slots_.size()) {
    throw Error("set_observations: got " + std::to_string(values.size()) +
                " values for a plan compiled from " +
                std::to_string(slots_.size()) +
                " constraints; rebinding requires exactly one value per "
                "compiled constraint, in the problem's constraint order");
  }
  for (std::size_t i = 0; i < values.size(); ++i) {
    const core::AssignedSlot& slot = slots_[i];
    if (slot.node == nullptr || slot.index < 0 ||
        slot.index >= slot.node->constraints.size()) {
      throw Error(
          "set_observations: compiled slot for constraint " +
          std::to_string(i) + " no longer resolves to a live constraint" +
          (slot.node == nullptr
               ? std::string(" (unassigned slot)")
               : " (node '" + slot.node->name + "' holds " +
                     std::to_string(slot.node->constraints.size()) +
                     " constraints, slot index " +
                     std::to_string(slot.index) + ")") +
          "; the hierarchy's constraint lists were mutated after compile");
    }
  }
  // Every slot validated; now diff-and-write.  Only slots whose bit pattern
  // actually changes are written and mark their node dirty (bitwise compare
  // so +/-0 and NaN rebinds are handled exactly): rebinding an identical
  // vector leaves the dirty set empty and the next solve_incremental
  // re-executes nothing.
  for (std::size_t i = 0; i < values.size(); ++i) {
    const core::AssignedSlot& slot = slots_[i];
    const double current = slot.node->constraints[slot.index].observed;
    if (std::bit_cast<std::uint64_t>(current) ==
        std::bit_cast<std::uint64_t>(values[i])) {
      continue;
    }
    // Record the outgoing value for solve_lowrank's retraction.  First
    // change per slot wins: across chained rebinds the retraction must
    // remove the value the last completed solve actually applied, not an
    // intermediate one that never reached the posterior.
    bool tracked = false;
    for (const PendingChange& p : pending_) {
      if (p.slot == i) {
        tracked = true;
        break;
      }
    }
    if (!tracked) {
      if (pending_.size() < kMaxPendingChanges) {
        pending_.push_back({i, current});
      } else {
        pending_overflow_ = true;  // too many for rank-k; exact path only
      }
    }
    slot.node->constraints.set_observed(slot.index, values[i]);
    plan_->mark_constraint_dirty(slot.node);
  }
}

void Plan::set_sigma_inflation(double temperature) {
  PHMSE_CHECK(std::isfinite(temperature) && temperature > 0.0,
              "sigma inflation temperature must be finite and > 0");
  // sigma' = T * sigma  <=>  variance' = T^2 * variance.
  plan_->set_variance_scale(temperature == 1.0 ? 1.0
                                               : temperature * temperature);
}

double Plan::sigma_inflation() const {
  const double scale = plan_->variance_scale();
  return scale == 1.0 ? 1.0 : std::sqrt(scale);
}

std::string Plan::describe() const {
  std::ostringstream os;
  os << "plan: " << hierarchy_->num_nodes() << " nodes, "
     << hierarchy_->total_constraints() << " constraints, P=" << processors_
     << "\n";
  os << core::describe_schedule(*hierarchy_);
  return os.str();
}

}  // namespace phmse::engine
