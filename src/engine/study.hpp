// Parallel speedup studies as a library facility.
//
// The paper's evaluation protocol — run one full constraint cycle at each
// processor count, report work time, speedup, and the per-category time
// distribution (Tables 3-6) — packaged over a compiled Plan: the plan is
// compiled once, rescheduled per processor count, and executed on a fresh
// simulated machine for every row.  Numerics are identical across rows
// (the schedule changes placement, not arithmetic), so only timing differs.
#pragma once

#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "simarch/machine.hpp"

namespace phmse::engine {

/// One row of a speedup table.
struct StudyRow {
  int processors = 1;
  double time = 0.0;      // simulated work time, seconds
  double speedup = 1.0;   // vs the 1-processor row (or the smallest run)
  perf::Profile breakdown;
};

/// A completed study.
struct SpeedupStudy {
  std::string machine;
  std::vector<StudyRow> rows;

  /// Parallel efficiency of row i: speedup / processors.
  double efficiency(std::size_t i) const {
    return rows[i].speedup / rows[i].processors;
  }
};

/// Runs the plan's configured cycles at every processor count in `counts`
/// (entries exceeding the machine size are skipped) and collects the
/// paper-style rows.  The plan's original schedule is restored afterwards.
SpeedupStudy run_speedup_study(Plan& plan, const linalg::Vector& initial,
                               const simarch::MachineConfig& machine,
                               const std::vector<int>& counts);

/// Renders the study in the layout of the paper's Tables 3-6
/// (NP / time / spdup / d-s / chol / sys / m-m / m-v / vec).
std::string format_speedup_table(const SpeedupStudy& study);

}  // namespace phmse::engine
