// phmse::Engine — the compile-once / solve-many facade.
//
// Everything the paper derives before numbers flow — the §3 hierarchical
// decomposition, constraint-to-node assignment, Eq.-1 work-model
// calibration, and the §4.3 static processor schedule — is observation-
// independent setup.  The facade splits it out:
//
//   Problem  — topology size + constraint set + a decomposition recipe;
//   Plan     — the compiled artifact (Engine::compile): hierarchy, slots,
//              work model, schedule, and a core::SolvePlan with pre-sized
//              per-node workspaces;
//   solve()  — executes the plan against fresh observation values on any
//              executor (owned serial context, caller's ExecContext, a
//              ThreadPool, or a simulated machine), returning the posterior
//              with per-phase timing and per-category perf counters.
//
// A plan is reused across solves, processor counts (reschedule) and
// observation vectors (set_observations); after the first solve the serial
// steady state performs zero heap allocations.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/assign.hpp"
#include "core/hierarchy.hpp"
#include "core/solve_plan.hpp"
#include "core/work_model.hpp"
#include "parallel/exec.hpp"
#include "parallel/thread_pool.hpp"
#include "simarch/sim_context.hpp"

namespace phmse::engine {

/// A solve exceeded its deadline (DESIGN.md §13): either the budget was
/// already spent when the solve was asked to start, or a cancellation poll
/// observed the expired deadline clock mid-flight and the run aborted
/// transactionally.  The plan stays reusable either way — the next exact
/// solve is bitwise identical to one that was never interrupted.
class DeadlineError : public Error {
 public:
  using Error::Error;
};

/// Per-solve time/cancellation controls (DESIGN.md §13), accepted by the
/// solve/solve_incremental overloads below.  Orthogonal to the compile-time
/// HierSolveOptions: these arm one run, not the plan.
struct SolveOptions {
  /// Wall-clock budget for this solve, measured from the call; <= 0 means
  /// unbounded.  On expiry the executors abort at the next batch/node
  /// boundary and the call throws DeadlineError.
  double deadline_seconds = 0.0;
  /// External cancellation (e.g. a service watchdog); may be null, must
  /// outlive the call.  An explicit cancel() surfaces as
  /// par::CancelledError unless the token's own deadline has also passed
  /// (then DeadlineError — the two mean the same thing to the caller).
  const par::CancelToken* cancel = nullptr;
  /// Opt-in graceful degradation: when the armed deadline is too tight for
  /// the exact path (judged against an EWMA of this plan's past exact solve
  /// times), answer with the low-rank perturbative root update instead —
  /// first-order, Result::report.low_rank marks it — provided its
  /// preconditions hold (valid checkpoint, <= 64 pending changes, same
  /// initial_x; see solve_lowrank).  When they do not, the exact path runs
  /// anyway and takes its chances with the deadline.
  bool degrade_lowrank = false;
};

/// The observation-independent problem statement: how many atoms, which
/// measurements, and how to decompose the molecule into a hierarchy.
struct Problem {
  Index num_atoms = 0;
  cons::ConstraintSet constraints;
  /// Builds the §3 hierarchy over atoms [0, num_atoms).  Invoked once per
  /// compile; the callback owns whatever model state it needs.
  std::function<core::Hierarchy()> decompose;
  /// Structural identity of the decomposition recipe.  `decompose` is an
  /// opaque callable, so callers that want plan caching (phmse::Server)
  /// name the recipe here: two Problems whose recipe strings differ never
  /// share a cached plan.  The factories below fill it in; for custom()
  /// the tag is the caller's responsibility and an empty tag marks the
  /// problem as uncacheable.
  std::string recipe;

  /// Single-node decomposition: the flat (non-hierarchical) solver.
  static Problem flat(Index num_atoms, cons::ConstraintSet constraints);

  /// Recursive bisection down to `max_leaf_atoms` atoms per leaf.
  static Problem bisection(Index num_atoms, cons::ConstraintSet constraints,
                           Index max_leaf_atoms);

  /// Any decomposition recipe (helix/ribosome builders, graph partition,
  /// bottom-up grouping, hand-built trees).  `recipe` names the recipe for
  /// the service-layer plan cache; leave it empty to opt out of caching.
  static Problem custom(Index num_atoms, cons::ConstraintSet constraints,
                        std::function<core::Hierarchy()> decompose,
                        std::string recipe = {});
};

/// Compilation parameters.
struct CompileOptions {
  /// Per-solve parameters baked into the plan (batch size, cycles,
  /// tolerance, prior).
  core::HierSolveOptions solve;
  /// Processor count for the §4.3 static schedule (reschedule() revises).
  int processors = 1;
  /// Eq.-1 work model driving the schedule, used as-is unless calibration
  /// is requested (and as the fallback if calibration degenerates).
  core::WorkModel work_model;
  /// Measure Eq. 1 on this host with short synthetic batch timings instead
  /// of trusting `work_model`'s coefficients.
  bool calibrate_work_model = false;
};

/// Wall-clock seconds spent in each compile phase.
struct CompileTimings {
  double decompose_seconds = 0.0;
  double assign_seconds = 0.0;
  double calibrate_seconds = 0.0;
  double schedule_seconds = 0.0;
  double workspace_seconds = 0.0;
  double total_seconds = 0.0;
};

/// Outcome of one plan execution.
struct Result {
  /// Root posterior (x, C) — borrowed from the plan, valid until the next
  /// solve on (or destruction of) the same plan.
  const est::NodeState* state = nullptr;
  int cycles = 0;
  double last_cycle_delta = 0.0;
  bool converged = false;
  /// Host wall-clock seconds of this solve.
  double seconds = 0.0;
  /// Simulated work time (virtual seconds); nonzero only for simulated
  /// solves.
  double vtime = 0.0;
  /// Per-category time of this solve: the executor's own accounting (real
  /// seconds serially/threaded, virtual seconds simulated).
  perf::Profile breakdown;
  /// Fault-tolerance diagnostics: every batch's outcome under the plan's
  /// SolvePolicy, aggregated over the tree (DESIGN.md §9).  clean() on any
  /// completed solve under the default abort policy.
  core::SolveReport report;

  const est::NodeState& posterior() const {
    PHMSE_CHECK(state != nullptr, "result holds no posterior");
    return *state;
  }
};

/// A compiled problem: reusable across repeated solves, executors,
/// processor counts, and observation vectors.  Movable, non-copyable.
///
/// Thread safety: a Plan owns persistent per-node state and workspaces
/// that every solve() mutates, so solves on ONE plan are single-flight —
/// overlapping calls from two threads throw phmse::Error instead of
/// silently corrupting each other's numerics.  Different Plan objects are
/// fully independent; the service layer (phmse::Server) hands each
/// in-flight solve its own cached plan instance.
class Plan {
 public:
  Plan(Plan&&) = default;
  Plan& operator=(Plan&&) = default;
  Plan(const Plan&) = delete;
  Plan& operator=(const Plan&) = delete;

  /// Serial solve on the plan's own context.  After the first call this is
  /// the zero-allocation steady-state path.
  ///
  /// `initial_x` is the solve's LINEARIZATION POINT, not just a warm start:
  /// every leaf fills its state from its slice of it and the constraint
  /// Jacobians are evaluated at the evolving estimate seeded from it.  The
  /// root posterior's coordinate ordering equals initial_x's (coordinate
  /// 3*atom+axis), so feeding one solve's posterior mean back as the next
  /// initial_x re-linearizes the whole problem at the current estimate —
  /// the re-linearization seam the refine::Refiner's iterated mode drives
  /// (DESIGN.md §14), symmetric with how set_observations rebinds values.
  Result solve(const linalg::Vector& initial_x);

  /// Solve on a caller-provided context (serial, team, or simulated).
  Result solve(par::ExecContext& ctx, const linalg::Vector& initial_x);

  /// Threaded solve following the §4.3 schedule on `pool` (see
  /// core::SolvePlan::run_threaded for the exception-safety contract).
  Result solve(par::ThreadPool& pool, const linalg::Vector& initial_x);

  /// Simulated solve on `machine` (reset first); Result::vtime and the
  /// breakdown carry the virtual timing.
  Result solve(simarch::SimMachine& machine, const linalg::Vector& initial_x);

  /// Incremental re-solve (DESIGN.md §11): re-executes only the nodes whose
  /// observations changed since the last completed run (tracked by
  /// set_observations), leaves whose `initial_x` slice changed bitwise, and
  /// their ancestor paths; every other subtree's checkpointed posterior is
  /// reused in place.  Falls back to a full solve — same answer,
  /// Result::report.incremental stays false — when no checkpoint is valid
  /// (first solve on a fresh plan, a previous run that aborted, or a
  /// previous run that took more than one cycle).  On every executor the
  /// posterior and report are bitwise identical to the matching solve().
  Result solve_incremental(const linalg::Vector& initial_x);
  Result solve_incremental(par::ExecContext& ctx,
                           const linalg::Vector& initial_x);
  Result solve_incremental(par::ThreadPool& pool,
                           const linalg::Vector& initial_x);
  Result solve_incremental(simarch::SimMachine& machine,
                           const linalg::Vector& initial_x);

  /// Deadline/cancellation-controlled variants (DESIGN.md §13).  The run
  /// observes `controls` at every batch and node boundary on whichever
  /// executor is used; on deadline expiry the solve throws DeadlineError
  /// (explicit external cancellation surfaces as par::CancelledError), the
  /// plan's checkpoint machinery guarantees the abort is transactional, and
  /// — with controls.degrade_lowrank — a deadline too tight for the exact
  /// path is answered by the low-rank root update when its preconditions
  /// hold.  With default-constructed controls these are exactly the
  /// uncontrolled overloads above.
  Result solve(const linalg::Vector& initial_x, const SolveOptions& controls);
  Result solve(par::ExecContext& ctx, const linalg::Vector& initial_x,
               const SolveOptions& controls);
  Result solve(par::ThreadPool& pool, const linalg::Vector& initial_x,
               const SolveOptions& controls);
  Result solve(simarch::SimMachine& machine, const linalg::Vector& initial_x,
               const SolveOptions& controls);
  Result solve_incremental(const linalg::Vector& initial_x,
                           const SolveOptions& controls);
  Result solve_incremental(par::ExecContext& ctx,
                           const linalg::Vector& initial_x,
                           const SolveOptions& controls);
  Result solve_incremental(par::ThreadPool& pool,
                           const linalg::Vector& initial_x,
                           const SolveOptions& controls);
  Result solve_incremental(simarch::SimMachine& machine,
                           const linalg::Vector& initial_x,
                           const SolveOptions& controls);

  /// Low-rank perturbative re-solve (DESIGN.md §11): when only k observation
  /// values changed since the last completed single-cycle run, fold them
  /// into the checkpointed root posterior as one rank-k Kalman shift —
  /// retract-plus-reapply with a shared Jacobian cancels in information
  /// space, so the mean moves by C·Hᵀ·R⁻¹·(z_new − z_old) and the
  /// covariance stays put, in O(k·n) instead of re-running every root-path
  /// constraint at O(n²) each.  H here is each constraint's ARCHIVED
  /// Jacobian row from its original linearization during the
  /// checkpoint-forming sweep — the sensitivity identity telescopes
  /// exactly through the hierarchy only for that row, not for a fresh
  /// relinearization.  The result is a first-order (extended-Kalman)
  /// approximation whose error is linear in the observation change, NOT
  /// bitwise identical to a from-scratch solve; Result::report.low_rank
  /// marks it.  Falls back to
  /// solve_incremental — exact, and itself falling back to a full solve
  /// when no checkpoint exists — whenever the fast path cannot give a
  /// principled answer: no pending changes, more than 64 changed slots,
  /// a changed initial_x, a multi-cycle plan, non-finite inputs, or a
  /// change so large an outlier-gating policy might drop it on the exact
  /// path.  Serial only (the root shift is one node's work; there is
  /// nothing to parallelize).  A later exact solve of any kind restores
  /// the bitwise-reproducible baseline: the changed nodes and the root
  /// stay dirty until one runs.
  Result solve_lowrank(const linalg::Vector& initial_x);

  /// True when the plan's per-node states form a reusable checkpoint (the
  /// last run completed in a single cycle).
  bool has_checkpoint() const { return plan_->has_checkpoint(); }

  /// The most recent run's report — including a run that threw: a
  /// cancelled/over-deadline solve produces no Result, but the report's
  /// `cancelled*` fields record where it stopped (DESIGN.md §13).
  const core::SolveReport& last_report() const { return plan_->last_report(); }

  /// Nodes marked observation-dirty by set_observations since the last
  /// completed run (ancestor propagation happens at solve time).
  std::size_t pending_dirty_nodes() const { return plan_->num_dirty_nodes(); }

  /// Observation slots whose value changed since the last completed solve
  /// (the retraction work-list of solve_lowrank).  Saturates: past 64
  /// distinct slots the count stops growing and solve_lowrank falls back
  /// to the exact path.
  std::size_t pending_observation_changes() const { return pending_.size(); }

  /// Recomputes the §4.3 schedule for a new processor count; the same plan
  /// then serves speedup sweeps without re-compiling.
  void reschedule(int processors);

  /// Rebinds fresh observed values onto the compiled constraint slots:
  /// values[i] replaces the observed value of the i-th constraint of the
  /// problem the plan was compiled from.  Throws phmse::Error if the count
  /// does not match num_observation_slots() or any compiled slot no longer
  /// resolves to a live constraint (e.g. a node's constraint list was
  /// mutated behind the plan's back) — a mismatch must never silently bind
  /// values to the wrong constraints; validation completes before any
  /// value is written, so a failed rebind leaves the plan untouched.
  ///
  /// Dirty tracking: only slots whose value actually changes (bitwise;
  /// a NaN is conservatively treated as a change) mark their node dirty
  /// for solve_incremental.  Rebinding an identical vector is a no-op and
  /// leaves the dirty set empty.
  void set_observations(std::span<const double> values);

  /// Number of values set_observations expects: one per constraint of the
  /// compiled problem, in the problem's constraint order.
  std::size_t num_observation_slots() const { return slots_.size(); }

  /// Inflates every observation's sigma by `temperature` for subsequent
  /// solves — the annealing seam of the refinement subsystem (DESIGN.md
  /// §14): variances scale by temperature^2, flattening the posterior so
  /// early annealed iterations move freely, and 1.0 restores the exact
  /// noise model bitwise.  A (bitwise) change invalidates the §11
  /// checkpoint and disables solve_lowrank until an exact solve at the new
  /// temperature completes; the constraints' stored variances are never
  /// modified.  Symmetric with set_observations: observations rebind the
  /// measured values, this rebinds how much they are trusted.  Must be
  /// finite and > 0 (normally >= 1).
  void set_sigma_inflation(double temperature);
  /// The currently applied sigma-inflation temperature (1 = exact model).
  double sigma_inflation() const;

  int processors() const { return processors_; }
  const core::WorkModel& work_model() const { return work_model_; }
  const CompileTimings& timings() const { return timings_; }
  const core::HierSolveOptions& options() const { return plan_->options(); }
  core::Hierarchy& hierarchy() { return *hierarchy_; }
  const core::Hierarchy& hierarchy() const { return *hierarchy_; }

  /// Human-readable plan dump: tree, schedule, work model.
  std::string describe() const;

 private:
  friend class Engine;
  Plan() = default;

  /// RAII single-flight marker: entering a solve sets the flag, leaving
  /// (normally or by exception) clears it.  Construction throws if a solve
  /// is already in flight on the same plan.
  class SolveFlight {
   public:
    explicit SolveFlight(std::atomic<bool>& busy);
    ~SolveFlight();
    SolveFlight(const SolveFlight&) = delete;
    SolveFlight& operator=(const SolveFlight&) = delete;

   private:
    std::atomic<bool>& busy_;
  };

  /// One observation slot whose value changed since the last completed
  /// solve, with the value the last solve actually applied (what
  /// solve_lowrank must retract).  First change per slot wins: chained
  /// rebinds between solves must retract the committed value, not an
  /// intermediate one that never reached the posterior.
  struct PendingChange {
    std::size_t slot = 0;
    double old_observed = 0.0;
  };
  /// Above this many distinct changed slots a rank-k update stops being
  /// cheaper than the exact dirty-path re-solve; solve_lowrank falls back.
  static constexpr std::size_t kMaxPendingChanges = 64;

  void clear_pending_();

  /// Builds a Result from a finished core run and feeds the exact-path
  /// duration EWMA the degradation rung consults (low-rank runs excluded).
  Result finish_result_(const core::PlanRunStats& stats, double seconds);
  /// Arms run_token_ from `controls` and returns the token the run should
  /// observe (null = uncontrolled).  The caller's token is never mutated.
  const par::CancelToken* arm_controls_(const SolveOptions& controls);
  /// The low-rank fast path under its own single-flight guard:
  /// materializes the pending work-list and attempts try_run_lowrank;
  /// false = preconditions refused, the caller falls back.
  bool try_lowrank_result_(const linalg::Vector& initial_x, Result* out);
  /// Shared spine of every controlled overload: arm the token, shed an
  /// already-spent budget, maybe degrade, run `do_solve` with the token
  /// bound to the core plan, translate deadline-caused CancelledError into
  /// DeadlineError.
  template <typename SolveFn>
  Result solve_controlled_(const SolveOptions& controls,
                           const linalg::Vector& initial_x,
                           SolveFn&& do_solve);

  std::unique_ptr<core::Hierarchy> hierarchy_;
  std::vector<core::AssignedSlot> slots_;
  std::unique_ptr<core::SolvePlan> plan_;
  par::SerialContext serial_;
  core::WorkModel work_model_;
  int processors_ = 1;
  CompileTimings timings_;
  /// Retraction work-list fed by set_observations, consumed (or abandoned
  /// to the exact path) by the next completed solve.
  std::vector<PendingChange> pending_;
  bool pending_overflow_ = false;
  /// Scratch work-list for try_run_lowrank (kept to amortize its
  /// allocation across repeated low-rank solves).
  std::vector<core::LowRankChange> changes_scratch_;
  /// Single-flight guard; boxed so the Plan stays movable (moving a plan
  /// with a solve in flight is a caller bug the guard also catches).
  std::unique_ptr<std::atomic<bool>> in_solve_ =
      std::make_unique<std::atomic<bool>>(false);
  /// Scratch token for deadline-armed solves (boxed: tokens hold atomics
  /// and must not move while bound).  Reset per controlled solve; links to
  /// the caller's SolveOptions::cancel so either source stops the run.
  std::unique_ptr<par::CancelToken> run_token_ =
      std::make_unique<par::CancelToken>();
  /// EWMA of this plan's completed exact (non-low-rank) solve durations —
  /// the degradation rung's estimate of what the exact path would cost.
  /// 0 until the first exact solve completes.
  double exact_seconds_ewma_ = 0.0;
};

/// The facade entry point.
class Engine {
 public:
  /// Compiles `problem` into an executable Plan: decompose, assign
  /// constraints (recording rebind slots), optionally calibrate Eq. 1,
  /// estimate work, schedule §4.3 processors, and pre-size all workspaces.
  static Plan compile(const Problem& problem,
                      const CompileOptions& options = {});
};

}  // namespace phmse::engine

namespace phmse {
using engine::Engine;
}  // namespace phmse
