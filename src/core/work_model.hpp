// Work estimation (paper Section 4.3, Equation 1).
//
// The processor-assignment heuristic needs the expected execution time of
// an "equivalent scalar constraint" as a function of node size n (state
// dimension) and constraint batch dimension m.  The paper fits a
// constrained least-squares polynomial to measured per-constraint times
// (their Table 2), imposing:
//   1. a positive leading coefficient (the model must be a growth
//      function), and
//   2. non-negative coefficient sum and constant term (no negative
//      predicted times near the origin).
// We satisfy both with a non-negative least-squares (NNLS) fit over the
// basis {n^2, n*m, n, m, 1}: every coefficient is constrained >= 0, which
// implies the paper's two checks, and the active-set iteration drops basis
// terms whose unconstrained weight would be negative.
#pragma once

#include <vector>

#include "core/hierarchy.hpp"
#include "support/types.hpp"

namespace phmse::core {

/// t(n, m) = a_n2 * n^2 + a_nm * n * m + a_n * n + a_m * m + a_1 —
/// estimated seconds per scalar constraint for a node of state dimension n
/// processing batches of dimension m.
struct WorkModel {
  double a_n2 = 1.0e-9;
  double a_nm = 0.0;
  double a_n = 1.0e-7;
  double a_m = 0.0;
  double a_1 = 1.0e-6;

  double per_constraint(double n, double m) const {
    return a_n2 * n * n + a_nm * n * m + a_n * n + a_m * m + a_1;
  }
};

/// One measured sample: a node of state dimension n processed batches of
/// dimension m at `seconds_per_constraint` per scalar constraint.
struct WorkSample {
  double n = 0.0;
  double m = 0.0;
  double seconds_per_constraint = 0.0;
};

/// Fits the constrained (non-negative) least-squares model; requires at
/// least one sample and throws phmse::Error if the fit degenerates to an
/// all-zero model.  Samples with very small batch dimension should be
/// excluded by the caller, as the paper does, because the m -> 0 cache
/// behaviour is not polynomial.
WorkModel fit_work_model(const std::vector<WorkSample>& samples);

/// Fills own_work / subtree_work on every node: own work is the node's
/// scalar constraint count times per_constraint(dim, batch) plus a state
/// assembly term proportional to dim^2; subtree work accumulates upward.
void estimate_work(Hierarchy& hierarchy, const WorkModel& model,
                   Index batch_size);

/// The batch dimension in [1, max_batch] minimizing the fitted
/// per-constraint time for nodes of state dimension n.  The paper reads
/// its optimum (16 on its machines) off the Table-2 measurements; this is
/// the model-driven equivalent.  Candidates are powers of two.
Index optimal_batch_size(const WorkModel& model, double n,
                         Index max_batch = 512);

}  // namespace phmse::core
