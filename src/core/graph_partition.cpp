#include "core/graph_partition.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <memory>
#include <numeric>

#include "support/check.hpp"

namespace phmse::core {
namespace {

// Adjacency of the constraint graph restricted to a vertex subset, in
// original atom ids.
struct Graph {
  // adj[v] = (neighbour, weight) pairs.
  std::vector<std::vector<std::pair<Index, double>>> adj;

  explicit Graph(Index n) : adj(static_cast<std::size_t>(n)) {}

  void add_edge(Index a, Index b, double w) {
    adj[static_cast<std::size_t>(a)].emplace_back(b, w);
    adj[static_cast<std::size_t>(b)].emplace_back(a, w);
  }
};

Graph build_graph(Index num_atoms, const cons::ConstraintSet& constraints) {
  // Coalesce parallel edges first.
  std::map<std::pair<Index, Index>, double> edges;
  for (const cons::Constraint& c : constraints.all()) {
    const Index na = cons::arity(c.kind);
    for (Index i = 0; i < na; ++i) {
      for (Index j = i + 1; j < na; ++j) {
        Index a = c.atoms[static_cast<std::size_t>(i)];
        Index b = c.atoms[static_cast<std::size_t>(j)];
        if (a == b) continue;
        if (a > b) std::swap(a, b);
        edges[{a, b}] += 1.0;
      }
    }
  }
  Graph g(num_atoms);
  for (const auto& [key, w] : edges) {
    g.add_edge(key.first, key.second, w);
  }
  return g;
}

// Bisects `vertices` (original ids) into two balanced halves with a small
// cut: BFS growth from a peripheral seed, then FM-style refinement.
// Returns the vertex list reordered so the first `split` entries are side
// 0; outputs `split`.
std::size_t bisect(const Graph& g, std::vector<Index>& vertices,
                   const GraphPartitionOptions& options) {
  const std::size_t n = vertices.size();
  const std::size_t half = n / 2;

  std::vector<char> in_set(g.adj.size(), 0);
  for (Index v : vertices) in_set[static_cast<std::size_t>(v)] = 1;

  // Peripheral seed: two BFS sweeps from the first vertex.
  auto bfs_far = [&](Index seed) {
    std::vector<char> seen(g.adj.size(), 0);
    std::deque<Index> queue{seed};
    seen[static_cast<std::size_t>(seed)] = 1;
    Index last = seed;
    while (!queue.empty()) {
      const Index v = queue.front();
      queue.pop_front();
      last = v;
      for (const auto& [u, w] : g.adj[static_cast<std::size_t>(v)]) {
        (void)w;
        if (in_set[static_cast<std::size_t>(u)] &&
            !seen[static_cast<std::size_t>(u)]) {
          seen[static_cast<std::size_t>(u)] = 1;
          queue.push_back(u);
        }
      }
    }
    return last;
  };
  const Index seed = bfs_far(bfs_far(vertices.front()));

  // Grow side 0 by BFS from the seed to half the vertices (disconnected
  // leftovers are appended in input order).
  std::vector<char> side(g.adj.size(), 1);  // 1 = side B
  {
    std::vector<char> seen(g.adj.size(), 0);
    std::deque<Index> queue{seed};
    seen[static_cast<std::size_t>(seed)] = 1;
    std::size_t taken = 0;
    while (taken < half) {
      Index v;
      if (!queue.empty()) {
        v = queue.front();
        queue.pop_front();
      } else {
        // Disconnected: pick the next unvisited vertex.
        v = -1;
        for (Index u : vertices) {
          if (!seen[static_cast<std::size_t>(u)]) {
            v = u;
            seen[static_cast<std::size_t>(u)] = 1;
            break;
          }
        }
        if (v < 0) break;
      }
      side[static_cast<std::size_t>(v)] = 0;
      ++taken;
      for (const auto& [u, w] : g.adj[static_cast<std::size_t>(v)]) {
        (void)w;
        if (in_set[static_cast<std::size_t>(u)] &&
            !seen[static_cast<std::size_t>(u)]) {
          seen[static_cast<std::size_t>(u)] = 1;
          queue.push_back(u);
        }
      }
    }
  }

  // FM refinement: greedily move the best-gain vertex subject to balance,
  // one pass = every vertex moved at most once; keep the best prefix.
  const double slack = options.balance_slack;
  const std::size_t lo =
      static_cast<std::size_t>(static_cast<double>(half) * (1.0 - slack));
  const std::size_t hi = std::min(
      n - 1,
      static_cast<std::size_t>(static_cast<double>(half) * (1.0 + slack)) +
          1);

  auto gain_of = [&](Index v) {
    double gain = 0.0;
    const char s = side[static_cast<std::size_t>(v)];
    for (const auto& [u, w] : g.adj[static_cast<std::size_t>(v)]) {
      if (!in_set[static_cast<std::size_t>(u)]) continue;
      gain += side[static_cast<std::size_t>(u)] == s ? -w : w;
    }
    return gain;
  };

  for (int pass = 0; pass < options.refinement_passes; ++pass) {
    std::vector<char> moved(g.adj.size(), 0);
    std::size_t size0 = 0;
    for (Index v : vertices) {
      if (side[static_cast<std::size_t>(v)] == 0) ++size0;
    }

    double cumulative = 0.0;
    double best_cumulative = 0.0;
    std::vector<Index> move_order;
    std::size_t best_prefix = 0;

    for (std::size_t step = 0; step < n; ++step) {
      // Best unmoved vertex whose move keeps balance.
      Index best_v = -1;
      double best_gain = -1e300;
      for (Index v : vertices) {
        if (moved[static_cast<std::size_t>(v)]) continue;
        const bool from0 = side[static_cast<std::size_t>(v)] == 0;
        const std::size_t new_size0 = from0 ? size0 - 1 : size0 + 1;
        if (new_size0 < lo || new_size0 > hi) continue;
        const double gn = gain_of(v);
        if (gn > best_gain) {
          best_gain = gn;
          best_v = v;
        }
      }
      if (best_v < 0) break;
      moved[static_cast<std::size_t>(best_v)] = 1;
      side[static_cast<std::size_t>(best_v)] ^= 1;
      size0 += side[static_cast<std::size_t>(best_v)] == 0 ? 1 : -1;
      cumulative += best_gain;
      move_order.push_back(best_v);
      if (cumulative > best_cumulative) {
        best_cumulative = cumulative;
        best_prefix = move_order.size();
      }
    }
    // Roll back past the best prefix.
    for (std::size_t i = move_order.size(); i > best_prefix; --i) {
      side[static_cast<std::size_t>(move_order[i - 1])] ^= 1;
    }
    if (best_prefix == 0) break;  // converged
  }

  // Stable partition of the vertex list: side 0 first.
  std::stable_partition(vertices.begin(), vertices.end(), [&](Index v) {
    return side[static_cast<std::size_t>(v)] == 0;
  });
  std::size_t split = 0;
  while (split < n && side[static_cast<std::size_t>(vertices[split])] == 0) {
    ++split;
  }
  // Degenerate split (all on one side): fall back to the middle.
  if (split == 0 || split == n) split = half;
  return split;
}

// Recursively partitions vertices[lo, hi), appends the final order to
// `order`, and builds the tree node over NEW ids [new_begin, ...).
std::unique_ptr<HierNode> partition_recursive(
    const Graph& g, std::vector<Index>& vertices, std::size_t lo,
    std::size_t hi, Index new_begin, const GraphPartitionOptions& options,
    const std::string& name) {
  auto node = std::make_unique<HierNode>();
  node->name = name;
  node->atom_begin = new_begin;
  node->atom_end = new_begin + static_cast<Index>(hi - lo);
  if (static_cast<Index>(hi - lo) <= options.max_leaf_atoms) return node;

  std::vector<Index> sub(vertices.begin() + static_cast<std::ptrdiff_t>(lo),
                         vertices.begin() + static_cast<std::ptrdiff_t>(hi));
  const std::size_t split = bisect(g, sub, options);
  std::copy(sub.begin(), sub.end(),
            vertices.begin() + static_cast<std::ptrdiff_t>(lo));

  node->children.push_back(partition_recursive(
      g, vertices, lo, lo + split, new_begin, options, name + "/L"));
  node->children.push_back(partition_recursive(
      g, vertices, lo + split, hi, new_begin + static_cast<Index>(split),
      options, name + "/R"));
  return node;
}

}  // namespace

Decomposition decompose_by_graph_partition(
    Index num_atoms, const cons::ConstraintSet& constraints,
    const GraphPartitionOptions& options) {
  PHMSE_CHECK(num_atoms >= 1, "need at least one atom");
  PHMSE_CHECK(options.max_leaf_atoms >= 1, "leaf size must be >= 1");

  const Graph g = build_graph(num_atoms, constraints);
  std::vector<Index> vertices(static_cast<std::size_t>(num_atoms));
  std::iota(vertices.begin(), vertices.end(), Index{0});

  auto root = partition_recursive(g, vertices, 0, vertices.size(), 0,
                                  options, "gp");

  Decomposition out{std::move(vertices), {}, Hierarchy(std::move(root))};
  out.rank.assign(static_cast<std::size_t>(num_atoms), 0);
  for (Index new_id = 0; new_id < num_atoms; ++new_id) {
    out.rank[static_cast<std::size_t>(
        out.order[static_cast<std::size_t>(new_id)])] = new_id;
  }
  out.hierarchy.validate();
  return out;
}

cons::ConstraintSet remap_constraints(const cons::ConstraintSet& set,
                                      const std::vector<Index>& rank) {
  cons::ConstraintSet out;
  for (cons::Constraint c : set.all()) {
    for (Index k = 0; k < cons::arity(c.kind); ++k) {
      auto& atom = c.atoms[static_cast<std::size_t>(k)];
      PHMSE_CHECK(atom >= 0 && atom < static_cast<Index>(rank.size()),
                  "constraint atom outside the permutation");
      atom = rank[static_cast<std::size_t>(atom)];
    }
    out.add(c);
  }
  return out;
}

mol::Topology remap_topology(const mol::Topology& topology,
                             const std::vector<Index>& order) {
  PHMSE_CHECK(static_cast<Index>(order.size()) == topology.size(),
              "permutation size mismatch");
  mol::Topology out;
  for (Index new_id = 0; new_id < topology.size(); ++new_id) {
    const mol::Atom& a =
        topology.atom(order[static_cast<std::size_t>(new_id)]);
    out.add_atom(a.label, a.position);
  }
  return out;
}

linalg::Vector remap_state(const linalg::Vector& state,
                           const std::vector<Index>& order) {
  PHMSE_CHECK(state.size() == order.size() * 3, "state size mismatch");
  linalg::Vector out(state.size());
  for (std::size_t new_id = 0; new_id < order.size(); ++new_id) {
    const std::size_t old_id = static_cast<std::size_t>(order[new_id]);
    for (int k = 0; k < 3; ++k) {
      out[3 * new_id + static_cast<std::size_t>(k)] =
          state[3 * old_id + static_cast<std::size_t>(k)];
    }
  }
  return out;
}

linalg::Vector unmap_state(const linalg::Vector& state,
                           const std::vector<Index>& order) {
  PHMSE_CHECK(state.size() == order.size() * 3, "state size mismatch");
  linalg::Vector out(state.size());
  for (std::size_t new_id = 0; new_id < order.size(); ++new_id) {
    const std::size_t old_id = static_cast<std::size_t>(order[new_id]);
    for (int k = 0; k < 3; ++k) {
      out[3 * old_id + static_cast<std::size_t>(k)] =
          state[3 * new_id + static_cast<std::size_t>(k)];
    }
  }
  return out;
}

Index count_cut_constraints(const Hierarchy& hierarchy,
                            const cons::ConstraintSet& remapped) {
  const HierNode& root = hierarchy.root();
  Index cut = 0;
  for (const cons::Constraint& c : remapped.all()) {
    Index lo = c.atoms[0];
    Index hi = lo;
    for (Index k = 0; k < cons::arity(c.kind); ++k) {
      lo = std::min(lo, c.atoms[static_cast<std::size_t>(k)]);
      hi = std::max(hi, c.atoms[static_cast<std::size_t>(k)]);
    }
    bool inside_child = false;
    for (const auto& child : root.children) {
      if (lo >= child->atom_begin && hi < child->atom_end) {
        inside_child = true;
        break;
      }
    }
    if (!inside_child) ++cut;
  }
  return cut;
}

}  // namespace phmse::core
