#include "core/assign.hpp"

#include "support/check.hpp"

namespace phmse::core {

namespace {

AssignStats assign_constraints_impl(Hierarchy& hierarchy,
                                    const cons::ConstraintSet& set,
                                    std::vector<AssignedSlot>* slots) {
  AssignStats stats;
  stats.total = set.size();
  stats.per_level.assign(static_cast<std::size_t>(hierarchy.depth()), 0);

  for (const cons::Constraint& c : set.all()) {
    Index lo = c.atoms[0];
    Index hi = lo;
    for (Index k = 0; k < cons::arity(c.kind); ++k) {
      lo = std::min(lo, c.atoms[static_cast<std::size_t>(k)]);
      hi = std::max(hi, c.atoms[static_cast<std::size_t>(k)]);
    }

    HierNode* node = &hierarchy.root();
    PHMSE_CHECK(lo >= node->atom_begin && hi < node->atom_end,
                "constraint references atoms outside the hierarchy");
    Index level = 0;
    for (;;) {
      HierNode* next = nullptr;
      for (const auto& child : node->children) {
        if (lo >= child->atom_begin && hi < child->atom_end) {
          next = child.get();
          break;
        }
      }
      if (next == nullptr) break;
      node = next;
      ++level;
    }
    if (slots != nullptr) slots->push_back({node, node->constraints.size()});
    node->constraints.add(c);
    stats.per_level[static_cast<std::size_t>(level)] += 1;
    if (node->is_leaf()) ++stats.on_leaves;
  }
  return stats;
}

}  // namespace

AssignStats assign_constraints(Hierarchy& hierarchy,
                               const cons::ConstraintSet& set) {
  return assign_constraints_impl(hierarchy, set, nullptr);
}

AssignStats assign_constraints(Hierarchy& hierarchy,
                               const cons::ConstraintSet& set,
                               std::vector<AssignedSlot>& slots) {
  slots.clear();
  slots.reserve(static_cast<std::size_t>(set.size()));
  return assign_constraints_impl(hierarchy, set, &slots);
}

void clear_constraints(Hierarchy& hierarchy) {
  hierarchy.for_each_post_order(
      [](HierNode& node) { node.constraints = cons::ConstraintSet{}; });
}

}  // namespace phmse::core
