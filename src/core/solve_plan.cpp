#include "core/solve_plan.hpp"

#include <algorithm>
#include <cmath>
#include <exception>

#include "parallel/task_group.hpp"
#include "parallel/team.hpp"
#include "support/check.hpp"

namespace phmse::core {
namespace {

using est::NodeState;
using linalg::Vector;

double rms_delta(const Vector& a, const Vector& b) {
  PHMSE_CHECK(a.size() == b.size(), "state dimension changed between cycles");
  if (a.empty()) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return std::sqrt(sum / static_cast<double>(a.size()));
}

}  // namespace

SolvePlan::SolvePlan(Hierarchy& hierarchy, const HierSolveOptions& options)
    : hierarchy_(&hierarchy), options_(options) {
  nodes_.reserve(static_cast<std::size_t>(hierarchy.num_nodes()));
  build_(hierarchy.root());

  // Pre-size every workspace so steady-state runs stay inside existing
  // capacity: the node estimate at its full dimension, and the updater's
  // scratch at the node's largest batch shape.
  for (NodeWork& w : nodes_) {
    const Index n = w.node->dim();
    w.state.atom_begin = w.node->atom_begin;
    w.state.atom_end = w.node->atom_end;
    w.state.x.resize(static_cast<std::size_t>(n));
    w.state.c.resize_zero(n, n);
    const Index max_m =
        std::min(std::max<Index>(options_.batch_size, 1),
                 w.node->constraints.size());
    w.updater.reserve(max_m, n);
  }
  prev_x_.reserve(static_cast<std::size_t>(hierarchy.root().dim()));
  refresh_schedule();
}

std::size_t SolvePlan::build_(HierNode& node) {
  std::vector<std::size_t> kids;
  kids.reserve(node.children.size());
  for (auto& child : node.children) kids.push_back(build_(*child));
  NodeWork w;
  w.node = &node;
  w.children = std::move(kids);
  nodes_.push_back(std::move(w));
  return nodes_.size() - 1;
}

void SolvePlan::refresh_schedule() {
  for (NodeWork& w : nodes_) {
    w.inline_children.clear();
    w.remote_children.clear();
    for (std::size_t ci : w.children) {
      if (nodes_[ci].node->proc_first == w.node->proc_first) {
        w.inline_children.push_back(ci);
      } else {
        w.remote_children.push_back(ci);
      }
    }
  }
}

// Assembles a node's state from its children: x is the concatenation, C the
// block-diagonal of the children's covariances (children are uncorrelated
// until this node's constraints couple them).  Charged as vector/copy
// traffic.
void SolvePlan::assemble_from_children_(par::ExecContext& ctx, NodeWork& w) {
  NodeState& state = w.state;
  const Index n = state.dim();
  state.x.resize(static_cast<std::size_t>(n));
  state.c.resize_zero(n, n);

  auto cost = [&](Index begin, Index end) {
    par::KernelStats st;
    // Each parent row copies one child-row segment; plus the state vector.
    st.bytes_stream = 16.0 * static_cast<double>(end - begin) *
                      static_cast<double>(n) /
                      static_cast<double>(w.children.size());
    return st;
  };
  auto body = [&](Index begin, Index end, int /*lane*/) {
    for (Index row = begin; row < end; ++row) {
      // Find the child owning this row (few children; linear scan is fine).
      Index offset = 0;
      for (std::size_t ci : w.children) {
        const NodeState& cs = nodes_[ci].state;
        const Index cdim = cs.dim();
        if (row < offset + cdim) {
          const Index local = row - offset;
          const auto src = cs.c.row(local);
          std::copy(src.begin(), src.end(),
                    state.c.row(row).begin() + offset);
          state.x[static_cast<std::size_t>(row)] =
              cs.x[static_cast<std::size_t>(local)];
          break;
        }
        offset += cdim;
      }
    }
  };
  ctx.parallel(perf::Category::kVector, n, cost, body);
}

// Updates one node in place: refill the estimate (leaf: initial-state slice
// + spherical prior; interior: children assembly), then apply the node's
// constraint batches (paper Fig. 1).
void SolvePlan::update_node_(par::ExecContext& ctx, NodeWork& w,
                             const Vector& x0) {
  HierNode& node = *w.node;
  if (node.is_leaf()) {
    est::fill_state_from_full(w.state, x0, node.atom_begin, node.atom_end,
                              options_.prior_sigma);
  } else {
    assemble_from_children_(ctx, w);
  }
  w.updater.apply_all(ctx, w.state, node.constraints, options_.batch_size,
                      options_.symmetrize_every, options_.policy, &w.report);
}

template <typename PassFn>
PlanRunStats SolvePlan::run_cycles_(const Vector& initial_x, PassFn&& pass) {
  PHMSE_CHECK(static_cast<Index>(initial_x.size()) == hierarchy_->root().dim(),
              "initial state dimension mismatch");
  PHMSE_CHECK(options_.max_cycles >= 1, "need at least one cycle");
  PlanRunStats stats;
  prev_x_ = initial_x;
  // Per-node tallies and the aggregate report are rebuilt every run; the
  // clears keep vector capacity, so a clean steady-state run stays
  // allocation-free.
  for (NodeWork& w : nodes_) w.report.clear();
  report_.clear();
  for (int c = 0; c < options_.max_cycles; ++c) {
    pass(static_cast<const Vector&>(prev_x_));
    ++stats.cycles;
    const NodeState& root = nodes_.back().state;
    stats.last_cycle_delta = rms_delta(root.x, prev_x_);
    prev_x_ = root.x;
    if (options_.tolerance > 0.0 &&
        stats.last_cycle_delta < options_.tolerance) {
      stats.converged = true;
      break;
    }
  }
  // Aggregate after the executor has joined (every pass() above completes
  // its whole tree before returning), so reading the per-node tallies races
  // with nothing.
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const NodeWork& w = nodes_[i];
    report_.merge(i, w.node->atom_begin, w.node->atom_end, w.report);
  }
  return stats;
}

PlanRunStats SolvePlan::run(par::ExecContext& ctx, const Vector& initial_x) {
  return run_cycles_(initial_x, [&](const Vector& x0) {
    // nodes_ is post-order, so children are always updated before their
    // parent reads them: the recursion flattens to one loop.
    for (NodeWork& w : nodes_) update_node_(ctx, w, x0);
  });
}

PlanRunStats SolvePlan::run_sim(simarch::SimMachine& machine,
                                const Vector& initial_x) {
  machine.reset();
  return run_cycles_(initial_x, [&](const Vector& x0) {
    for (NodeWork& w : nodes_) {
      // The node's team forms once all children are done: the virtual
      // clocks of its processors join at the max (children ran on disjoint
      // sub-ranges).
      machine.sync_range(w.node->proc_first, w.node->proc_count);
      simarch::SimContext ctx(machine, w.node->proc_first,
                              w.node->proc_count);
      update_node_(ctx, w, x0);
    }
  });
}

// Threaded recursion: subtrees with disjoint processor groups run as tasks
// on their group's first worker; the node's own update runs on a team over
// its whole range.
//
// Exception safety: a failure anywhere in a subtree (e.g. a bad constraint
// batch throwing phmse::Error inside a worker lane) must not deadlock the
// join or escape into the pool's worker loop.  Remote children run inside a
// TaskGroup, which always counts their arrival and carries the first
// exception back; an inline-child failure is held until the remote children
// have joined (they capture this frame by reference) and only then rethrown.
void SolvePlan::run_threaded_node_(par::ThreadPool& pool, std::size_t index,
                                   const Vector& x0) {
  NodeWork& w = nodes_[index];
  par::TaskGroup group(static_cast<int>(w.remote_children.size()));
  for (std::size_t ci : w.remote_children) {
    HierNode* child = nodes_[ci].node;
    try {
      pool.submit(child->proc_first, [&, ci] {
        group.run([&] { run_threaded_node_(pool, ci, x0); });
      });
    } catch (...) {
      group.fail(std::current_exception());
    }
  }
  std::exception_ptr inline_error;
  try {
    for (std::size_t ci : w.inline_children) run_threaded_node_(pool, ci, x0);
  } catch (...) {
    inline_error = std::current_exception();
  }
  group.wait();  // join remote children before any unwind
  if (inline_error) std::rethrow_exception(inline_error);
  group.rethrow_any();

  par::TeamContext ctx(pool, w.node->proc_first, w.node->proc_count);
  update_node_(ctx, w, x0);
  w.profile += ctx.profile();
}

PlanRunStats SolvePlan::run_threaded(par::ThreadPool& pool,
                                     const Vector& initial_x) {
  for (NodeWork& w : nodes_) w.profile.clear();
  PlanRunStats stats = run_cycles_(initial_x, [&](const Vector& x0) {
    par::TaskGroup group(1);
    try {
      pool.submit(hierarchy_->root().proc_first, [&] {
        group.run([&] { run_threaded_node_(pool, nodes_.size() - 1, x0); });
      });
    } catch (...) {
      group.fail(std::current_exception());
    }
    group.join();  // waits, then rethrows a subtree failure on this thread
  });
  threaded_profile_.clear();
  for (const NodeWork& w : nodes_) threaded_profile_ += w.profile;
  return stats;
}

}  // namespace phmse::core
