#include "core/solve_plan.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <exception>

#include "linalg/backend.hpp"
#include "parallel/task_group.hpp"
#include "parallel/team.hpp"
#include "support/check.hpp"

namespace phmse::core {
namespace {

using est::NodeState;
using linalg::Vector;

// Binds a cancel token onto a context for the duration of a run, restoring
// whatever the caller had bound.  A null token leaves the context alone, so
// callers that bound their own token directly keep it.
class ScopedCancelBind {
 public:
  ScopedCancelBind(par::ExecContext& ctx, const par::CancelToken* token)
      : ctx_(token != nullptr ? &ctx : nullptr),
        prev_(token != nullptr ? ctx.cancel_token() : nullptr) {
    if (ctx_ != nullptr) ctx_->bind_cancel_token(token);
  }
  ~ScopedCancelBind() {
    if (ctx_ != nullptr) ctx_->bind_cancel_token(prev_);
  }
  ScopedCancelBind(const ScopedCancelBind&) = delete;
  ScopedCancelBind& operator=(const ScopedCancelBind&) = delete;

 private:
  par::ExecContext* ctx_;
  const par::CancelToken* prev_;
};

double rms_delta(const Vector& a, const Vector& b) {
  PHMSE_CHECK(a.size() == b.size(), "state dimension changed between cycles");
  if (a.empty()) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return std::sqrt(sum / static_cast<double>(a.size()));
}

}  // namespace

SolvePlan::SolvePlan(Hierarchy& hierarchy, const HierSolveOptions& options)
    : hierarchy_(&hierarchy),
      options_(options),
      backend_(&linalg::resolve_backend(options.backend,
                                        "HierSolveOptions.backend")) {
  nodes_.reserve(static_cast<std::size_t>(hierarchy.num_nodes()));
  build_(hierarchy.root());

  // Pre-size every workspace so steady-state runs stay inside existing
  // capacity: the node estimate at its full dimension, and the updater's
  // scratch at the node's largest batch shape.
  for (NodeWork& w : nodes_) {
    const Index n = w.node->dim();
    w.state.atom_begin = w.node->atom_begin;
    w.state.atom_end = w.node->atom_end;
    w.state.x.resize(static_cast<std::size_t>(n));
    w.state.c.resize_zero(n, n);
    const Index max_m =
        std::min(std::max<Index>(options_.batch_size, 1),
                 w.node->constraints.size());
    w.updater.set_backend(backend_);
    w.updater.reserve(max_m, n);
  }
  // Incremental bookkeeping (DESIGN.md §11), all preallocated so marking,
  // scheduling and checkpointing never allocate on the steady-state path.
  node_index_.reserve(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    node_index_.emplace(nodes_[i].node, i);
    for (std::size_t ci : nodes_[i].children) nodes_[ci].parent = i;
  }
  dirty_.assign(nodes_.size(), 0);
  exec_.assign(nodes_.size(), 1);
  last_initial_.reserve(static_cast<std::size_t>(hierarchy.root().dim()));
  prev_x_.reserve(static_cast<std::size_t>(hierarchy.root().dim()));
  refresh_schedule();
}

void SolvePlan::mark_constraint_dirty(const HierNode* node) {
  const auto it = node_index_.find(node);
  PHMSE_CHECK(it != node_index_.end(),
              "mark_constraint_dirty: node is not part of this plan");
  dirty_[it->second] = 1;
}

void SolvePlan::set_variance_scale(double scale) {
  PHMSE_CHECK(std::isfinite(scale) && scale > 0.0,
              "variance scale must be finite and > 0");
  if (std::bit_cast<std::uint64_t>(scale) ==
      std::bit_cast<std::uint64_t>(variance_scale_)) {
    return;  // no model change: checkpoints stay valid
  }
  variance_scale_ = scale;
  for (NodeWork& w : nodes_) w.updater.set_variance_scale(scale);
  // The persisted states (and their saved sweep tallies / archived Jacobian
  // rows) were produced under the previous noise model: an incremental
  // replay or low-rank shift over them would silently mix models, so the
  // next run must be a full one.
  has_checkpoint_ = false;
}

std::size_t SolvePlan::num_dirty_nodes() const {
  std::size_t count = 0;
  for (const unsigned char d : dirty_) count += d;
  return count;
}

// Decides the cycle-1 execution schedule.  A node re-executes when its own
// observations changed (dirty_), it is a leaf whose initial-state slice
// changed bitwise (leaves read initial_x directly; memcmp so NaNs and
// signed zeros compare conservatively), or any child re-executes.  nodes_
// is post-order — every parent index exceeds its children's — so one
// ascending pass propagates dirtiness transitively to the root.
void SolvePlan::prepare_schedule_(const Vector& initial_x, bool incremental) {
  if (!incremental) {
    std::fill(exec_.begin(), exec_.end(), 1);
    return;
  }
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const NodeWork& w = nodes_[i];
    unsigned char e = dirty_[i];
    if (!e && w.node->is_leaf()) {
      const std::size_t begin =
          static_cast<std::size_t>(3 * w.node->atom_begin);
      const std::size_t len = static_cast<std::size_t>(w.node->dim());
      e = std::memcmp(initial_x.data() + begin, last_initial_.data() + begin,
                      len * sizeof(double)) != 0
              ? 1
              : 0;
    }
    exec_[i] = e;
  }
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (exec_[i] && nodes_[i].parent != kNoParent) exec_[nodes_[i].parent] = 1;
  }
}

std::size_t SolvePlan::build_(HierNode& node) {
  std::vector<std::size_t> kids;
  kids.reserve(node.children.size());
  for (auto& child : node.children) kids.push_back(build_(*child));
  NodeWork w;
  w.node = &node;
  w.children = std::move(kids);
  nodes_.push_back(std::move(w));
  return nodes_.size() - 1;
}

void SolvePlan::refresh_schedule() {
  for (NodeWork& w : nodes_) {
    w.inline_children.clear();
    w.remote_children.clear();
    for (std::size_t ci : w.children) {
      if (nodes_[ci].node->proc_first == w.node->proc_first) {
        w.inline_children.push_back(ci);
      } else {
        w.remote_children.push_back(ci);
      }
    }
  }
}

// Assembles a node's state from its children: x is the concatenation, C the
// block-diagonal of the children's covariances (children are uncorrelated
// until this node's constraints couple them).  Charged as vector/copy
// traffic.
void SolvePlan::assemble_from_children_(par::ExecContext& ctx, NodeWork& w) {
  NodeState& state = w.state;
  const Index n = state.dim();
  state.x.resize(static_cast<std::size_t>(n));
  state.c.resize_zero(n, n);

  auto cost = [&](Index begin, Index end) {
    par::KernelStats st;
    // Each parent row copies one child-row segment; plus the state vector.
    st.bytes_stream = 16.0 * static_cast<double>(end - begin) *
                      static_cast<double>(n) /
                      static_cast<double>(w.children.size());
    return st;
  };
  auto body = [&](Index begin, Index end, int /*lane*/) {
    for (Index row = begin; row < end; ++row) {
      // Find the child owning this row (few children; linear scan is fine).
      Index offset = 0;
      for (std::size_t ci : w.children) {
        const NodeState& cs = nodes_[ci].state;
        const Index cdim = cs.dim();
        if (row < offset + cdim) {
          const Index local = row - offset;
          const auto src = cs.c.row(local);
          std::copy(src.begin(), src.end(),
                    state.c.row(row).begin() + offset);
          state.x[static_cast<std::size_t>(row)] =
              cs.x[static_cast<std::size_t>(local)];
          break;
        }
        offset += cdim;
      }
    }
  };
  ctx.parallel(perf::Category::kVector, n, cost, body);
}

// Incremental assembly for a constraint-free interior node during cycle 1
// of an incremental run: the node's persisted state IS its previous
// assembly (no batches ever touch it, so the post-sweep state equals the
// block concatenation), and only the blocks owned by re-executed children
// changed.  Copy those blocks and keep the clean siblings' blocks — and the
// zero cross-blocks — byte-for-byte from the checkpoint.  This is the
// low-rank block refresh of DESIGN.md §11: cost scales with the dirty
// children's dimensions, not with the node dimension, and the result is
// bitwise identical to a full assembly.
void SolvePlan::assemble_dirty_children_(par::ExecContext& ctx, NodeWork& w) {
  NodeState& state = w.state;
  const Index n = state.dim();
  PHMSE_CHECK(static_cast<Index>(state.x.size()) == n && state.c.rows() == n &&
                  state.c.cols() == n,
              "incremental assembly requires a checkpointed state");
  Index offset = 0;
  for (std::size_t ci : w.children) {
    const NodeState& cs = nodes_[ci].state;
    const Index cdim = cs.dim();
    if (exec_[ci]) {
      const Index block = offset;
      auto cost = [&](Index begin, Index end) {
        par::KernelStats st;
        // Each refreshed row copies one child-row segment plus its state
        // vector entry (same accounting as assemble_from_children_).
        st.bytes_stream = 16.0 * static_cast<double>(end - begin) *
                          static_cast<double>(cdim);
        return st;
      };
      auto body = [&, block, ci](Index begin, Index end, int /*lane*/) {
        const NodeState& child = nodes_[ci].state;
        for (Index local = begin; local < end; ++local) {
          const auto src = child.c.row(local);
          std::copy(src.begin(), src.end(),
                    state.c.row(block + local).begin() + block);
          state.x[static_cast<std::size_t>(block + local)] =
              child.x[static_cast<std::size_t>(local)];
        }
      };
      ctx.parallel(perf::Category::kVector, cdim, cost, body);
    }
    offset += cdim;
  }
  PHMSE_CHECK(offset == n, "children no longer tile the node's state");
}

// Updates one node in place: refill the estimate (leaf: initial-state slice
// + spherical prior; interior: children assembly — partial when the node is
// constraint-free and this is an incremental cycle), then apply the node's
// constraint batches (paper Fig. 1).  The sweep tally lands in
// w.sweep_report so an incremental run can later replay it for a skipped
// node; it is folded into the run tally w.report immediately.
void SolvePlan::update_node_(par::ExecContext& ctx, NodeWork& w,
                             const Vector& x0) {
  HierNode& node = *w.node;
  // Node-boundary cancellation poll (DESIGN.md §13): abort before this
  // node's state is touched.  The batch sweep below polls again between
  // batches through the same context binding.
  if (ctx.cancel_pending()) {
    par::throw_cancelled(*ctx.cancel_token(), node.atom_begin, node.atom_end,
                         -1);
  }
  if (node.is_leaf()) {
    est::fill_state_from_full(w.state, x0, node.atom_begin, node.atom_end,
                              options_.prior_sigma);
  } else if (cycle_incremental_ && node.constraints.size() == 0) {
    assemble_dirty_children_(ctx, w);
  } else {
    assemble_from_children_(ctx, w);
  }
  w.sweep_report.clear();
  w.updater.apply_all(ctx, w.state, node.constraints, options_.batch_size,
                      options_.symmetrize_every, options_.policy,
                      &w.sweep_report);
  w.report.merge_from(w.sweep_report);
}

template <typename PassFn>
PlanRunStats SolvePlan::run_cycles_(const Vector& initial_x,
                                    bool want_incremental, PassFn&& pass) {
  PHMSE_CHECK(static_cast<Index>(initial_x.size()) == hierarchy_->root().dim(),
              "initial state dimension mismatch");
  PHMSE_CHECK(options_.max_cycles >= 1, "need at least one cycle");
  PlanRunStats stats;
  // A checkpoint is usable only when the last completed run took a single
  // cycle: with more cycles the persisted states were produced from the
  // previous cycle's root posterior, not from a caller-visible initial
  // state, so skipping a node could not reproduce a from-scratch solve.
  const bool incremental = want_incremental && has_checkpoint_;
  prepare_schedule_(initial_x, incremental);
  std::size_t exec_count = 0;
  for (const unsigned char e : exec_) exec_count += e;
  // Every run mutates per-node states in place, so the checkpoint is
  // invalid until this run completes (an exception mid-run leaves mixed
  // states; the next incremental request then falls back to a full run).
  has_checkpoint_ = false;
  prev_x_ = initial_x;
  // Per-node tallies and the aggregate report are rebuilt every run; the
  // clears keep vector capacity, so a clean steady-state run stays
  // allocation-free.
  for (NodeWork& w : nodes_) w.report.clear();
  report_.clear();
  report_.backend = backend_->name;
  if (incremental) {
    // Replay the saved sweep tallies of the nodes cycle 1 will skip:
    // determinism guarantees a re-execution would tally identically, so
    // the aggregated report stays bitwise equal to a from-scratch solve.
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      if (!exec_[i]) nodes_[i].report.merge_from(nodes_[i].sweep_report);
    }
  }
  try {
    for (int c = 0; c < options_.max_cycles; ++c) {
      // Later cycles start from the previous cycle's root posterior — a
      // globally changed input — so the dirty schedule applies to cycle 1
      // only and cycles >= 2 execute every node.
      cycle_incremental_ = incremental && c == 0;
      pass(static_cast<const Vector&>(prev_x_));
      ++stats.cycles;
      const NodeState& root = nodes_.back().state;
      stats.last_cycle_delta = rms_delta(root.x, prev_x_);
      prev_x_ = root.x;
      if (options_.tolerance > 0.0 &&
          stats.last_cycle_delta < options_.tolerance) {
        stats.converged = true;
        break;
      }
    }
  } catch (const par::CancelledError& e) {
    // Transactional abort (DESIGN.md §13): has_checkpoint_ is already false
    // and the dirty set stays undrained, so the next exact run re-executes
    // every node from the caller's inputs — bitwise identical to never
    // having been cancelled.  Record what committed before the stop: the
    // error surfaces only after every executor lane has joined, so reading
    // the per-node tallies races with nothing.
    cycle_incremental_ = false;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      const NodeWork& w = nodes_[i];
      report_.merge(i, w.node->atom_begin, w.node->atom_end, w.report);
    }
    report_.cancelled = true;
    report_.cancelled_by_deadline = e.deadline_expired;
    report_.cancelled_atom_begin = e.atom_begin;
    report_.cancelled_atom_end = e.atom_end;
    report_.cancelled_batch = e.batch;
    throw;
  }
  cycle_incremental_ = false;
  stats.incremental = incremental;
  stats.nodes_recomputed =
      static_cast<long>(exec_count) +
      static_cast<long>(nodes_.size()) * static_cast<long>(stats.cycles - 1);
  stats.nodes_reused =
      incremental ? static_cast<long>(nodes_.size() - exec_count) : 0;
  // Aggregate after the executor has joined (every pass() above completes
  // its whole tree before returning), so reading the per-node tallies races
  // with nothing.
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const NodeWork& w = nodes_[i];
    report_.merge(i, w.node->atom_begin, w.node->atom_end, w.report);
  }
  report_.incremental = stats.incremental;
  report_.nodes_recomputed = stats.nodes_recomputed;
  report_.nodes_reused = stats.nodes_reused;
  // The run completed: every node state is now consistent with the current
  // observations and this initial_x, so the dirty set drains and — after a
  // single-cycle run — the states form a valid checkpoint for the next
  // incremental request.
  std::fill(dirty_.begin(), dirty_.end(), 0);
  has_checkpoint_ = stats.cycles == 1;
  if (has_checkpoint_) last_initial_ = initial_x;
  // Any completed run rebuilds every state a low-rank attempt could have
  // left half-updated (an abandoned attempt marks the root dirty).
  lowrank_in_progress_ = false;
  return stats;
}

bool SolvePlan::try_run_lowrank(par::ExecContext& ctx, const Vector& initial_x,
                                std::span<const LowRankChange> changes,
                                PlanRunStats* stats) {
  PHMSE_CHECK(stats != nullptr, "try_run_lowrank needs a stats output");
  PHMSE_CHECK(static_cast<Index>(initial_x.size()) == hierarchy_->root().dim(),
              "initial state dimension mismatch");
  if (!has_checkpoint_ || lowrank_in_progress_ || options_.max_cycles != 1) {
    return false;
  }
  // Under an inflated noise model (annealing, DESIGN.md §14) the shift's
  // R^{-1} weights would disagree with the sweep that formed the
  // checkpoint; the exact path decides instead.
  if (variance_scale_ != 1.0) return false;
  if (initial_x.size() != last_initial_.size() ||
      std::memcmp(initial_x.data(), last_initial_.data(),
                  initial_x.size() * sizeof(double)) != 0) {
    return false;
  }
  if (changes.empty()) return false;  // nothing changed: use run_incremental

  // Vet every change before the state is touched: it must resolve to a
  // compiled node, carry finite values and a positive variance, and its
  // Jacobian row must have been archived by the checkpoint-forming sweep
  // (a policy-dropped batch contributed no information to retract).  Under
  // an outlier-gating policy the exact path may DROP a wildly inconsistent
  // re-observation; the perturbative shift has no gate, so a change that
  // big (per-scalar chi^2 against its own noise, a conservative bound on
  // its innovation contribution) is refused and decided by the exact
  // fallback instead.
  const bool gated = options_.policy.on_failure == est::FailAction::kGateOutliers;
  double row_touches = 0.0;  // total archived-row nonzeros (cost model)
  for (const LowRankChange& ch : changes) {
    const auto it = node_index_.find(ch.node);
    if (it == node_index_.end()) return false;
    const NodeWork& w = nodes_[it->second];
    if (ch.index < 0 || ch.index >= w.node->constraints.size()) return false;
    const cons::Constraint& c = w.node->constraints[ch.index];
    const double dz = ch.new_observed - ch.old_observed;
    if (!std::isfinite(dz) || !(c.variance > 0.0)) return false;
    if (gated &&
        dz * dz > options_.policy.gate_chi2_per_dof * c.variance) {
      return false;
    }
    std::span<const Index> cols;
    std::span<const double> vals;
    if (!w.updater.applied_row(ch.index, cols, vals)) return false;
    row_touches += static_cast<double>(cols.size());
  }

  NodeWork& root = nodes_.back();
  // The root posterior diverges from the checkpointed tree the moment the
  // shift commits, so the next EXACT incremental run must rebuild the
  // root even if no other node is dirty.  Marking it up front also covers
  // a mid-flight failure: the fallback re-executes everything this attempt
  // may have touched.
  dirty_[nodes_.size() - 1] = 1;
  lowrank_in_progress_ = true;

  // dx = sum_j (dz_j / r_j) * C * g_j^T with g_j the archived row mapped
  // into root coordinates (a node's local state index i is root index
  // 3 * atom_begin + i; the root spans the whole molecule).  C is
  // symmetric, so column `col` is read as row `col` — each term is a
  // scaled sweep over a handful of covariance rows: O(nnz * n) per change.
  const Index n = root.state.dim();
  lowrank_dx_.assign(static_cast<std::size_t>(n), 0.0);
  ctx.sequential(
      perf::Category::kMatVec,
      [&](Index, Index) {
        par::KernelStats st;
        st.flops = 2.0 * row_touches * static_cast<double>(n) +
                   static_cast<double>(n);
        st.bytes_stream = 8.0 * (row_touches + 2.0) * static_cast<double>(n);
        return st;
      },
      [&] {
        for (const LowRankChange& ch : changes) {
          const NodeWork& w = nodes_[node_index_.find(ch.node)->second];
          const cons::Constraint& c = w.node->constraints[ch.index];
          const Index offset = 3 * w.node->atom_begin;
          const double scale = (ch.new_observed - ch.old_observed) /
                               c.variance;
          std::span<const Index> cols;
          std::span<const double> vals;
          w.updater.applied_row(ch.index, cols, vals);
          for (std::size_t k = 0; k < cols.size(); ++k) {
            const Index col = offset + cols[k];
            const double coeff = scale * vals[k];
            const std::span<const double> crow = root.state.c.row(col);
            for (Index i = 0; i < n; ++i) {
              lowrank_dx_[static_cast<std::size_t>(i)] +=
                  coeff * crow[static_cast<std::size_t>(i)];
            }
          }
        }
        for (Index i = 0; i < n; ++i) {
          root.state.x[static_cast<std::size_t>(i)] +=
              lowrank_dx_[static_cast<std::size_t>(i)];
        }
      });
  lowrank_in_progress_ = false;

  // One synthetic ok "batch" stands for the whole rank-k shift in the
  // tallies (attempts 0: no factorization ever runs on this path).
  est::NodeReport lowrank_report;
  est::BatchOutcome shift;
  shift.attempts = 0;
  lowrank_report.record(0, shift);

  // Bookkeeping mirrors a one-cycle run that reused every node: replay the
  // saved sweep tallies, then add this update's own batch outcomes under
  // the root.  dirty_ and the checkpoint are deliberately NOT touched —
  // the checkpointed children still describe the tree, and the dirty marks
  // keep accumulating until an exact run drains them.
  for (NodeWork& w : nodes_) w.report.clear();
  report_.clear();
  report_.backend = backend_->name;
  for (NodeWork& w : nodes_) w.report.merge_from(w.sweep_report);
  root.report.merge_from(lowrank_report);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const NodeWork& w = nodes_[i];
    report_.merge(i, w.node->atom_begin, w.node->atom_end, w.report);
  }
  stats->cycles = 1;
  stats->last_cycle_delta = rms_delta(root.state.x, prev_x_);
  prev_x_ = root.state.x;
  stats->converged = false;
  stats->incremental = true;
  stats->low_rank = true;
  stats->nodes_recomputed = 0;
  stats->nodes_reused = static_cast<long>(nodes_.size());
  report_.incremental = true;
  report_.low_rank = true;
  report_.nodes_recomputed = 0;
  report_.nodes_reused = stats->nodes_reused;
  return true;
}

PlanRunStats SolvePlan::run_impl_(par::ExecContext& ctx,
                                  const Vector& initial_x,
                                  bool want_incremental) {
  const ScopedCancelBind bind(ctx, cancel_);
  return run_cycles_(initial_x, want_incremental, [&](const Vector& x0) {
    // nodes_ is post-order, so children are always updated before their
    // parent reads them: the recursion flattens to one loop.
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      if (cycle_incremental_ && !exec_[i]) continue;
      update_node_(ctx, nodes_[i], x0);
    }
  });
}

PlanRunStats SolvePlan::run(par::ExecContext& ctx, const Vector& initial_x) {
  return run_impl_(ctx, initial_x, /*want_incremental=*/false);
}

PlanRunStats SolvePlan::run_incremental(par::ExecContext& ctx,
                                        const Vector& initial_x) {
  return run_impl_(ctx, initial_x, /*want_incremental=*/true);
}

PlanRunStats SolvePlan::run_sim_impl_(simarch::SimMachine& machine,
                                      const Vector& initial_x,
                                      bool want_incremental) {
  machine.reset();
  return run_cycles_(initial_x, want_incremental, [&](const Vector& x0) {
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      NodeWork& w = nodes_[i];
      // Skipped nodes cost no virtual time and force no clock sync: the
      // simulated timeline reflects only the dirty path's work.
      if (cycle_incremental_ && !exec_[i]) continue;
      // The node's team forms once all children are done: the virtual
      // clocks of its processors join at the max (children ran on disjoint
      // sub-ranges).
      machine.sync_range(w.node->proc_first, w.node->proc_count);
      simarch::SimContext ctx(machine, w.node->proc_first,
                              w.node->proc_count);
      // The simulated clock is virtual but the deadline clock is real:
      // polls read the host's steady clock, so a wall-clock budget bounds
      // a simulated solve exactly like a real one.
      ctx.bind_cancel_token(cancel_);
      update_node_(ctx, w, x0);
    }
  });
}

PlanRunStats SolvePlan::run_sim(simarch::SimMachine& machine,
                                const Vector& initial_x) {
  return run_sim_impl_(machine, initial_x, /*want_incremental=*/false);
}

PlanRunStats SolvePlan::run_sim_incremental(simarch::SimMachine& machine,
                                            const Vector& initial_x) {
  return run_sim_impl_(machine, initial_x, /*want_incremental=*/true);
}

// Threaded recursion: subtrees with disjoint processor groups run as tasks
// on their group's first worker; the node's own update runs on a team over
// its whole range.
//
// Exception safety: a failure anywhere in a subtree (e.g. a bad constraint
// batch throwing phmse::Error inside a worker lane) must not deadlock the
// join or escape into the pool's worker loop.  Remote children run inside a
// TaskGroup, which always counts their arrival and carries the first
// exception back; an inline-child failure is held until the remote children
// have joined (they capture this frame by reference) and only then rethrown.
void SolvePlan::run_threaded_node_(par::ThreadPool& pool, std::size_t index,
                                   const Vector& x0) {
  NodeWork& w = nodes_[index];
  // Incremental cycle: an unmasked subtree is served from its checkpoint —
  // no task is spawned for it and the recursion never descends into it.
  if (cycle_incremental_ && !exec_[index]) return;
  int remote_count = 0;
  for (std::size_t ci : w.remote_children) {
    if (!cycle_incremental_ || exec_[ci]) ++remote_count;
  }
  par::TaskGroup group(remote_count);
  // A queued subtree task that has not started when the token fires is
  // never entered (TaskGroup records CancelledError in its place), so a
  // cancelled threaded run stops at task granularity, not tree granularity.
  group.bind_cancel_token(cancel_);
  for (std::size_t ci : w.remote_children) {
    if (cycle_incremental_ && !exec_[ci]) continue;
    HierNode* child = nodes_[ci].node;
    try {
      pool.submit(child->proc_first, [&, ci] {
        group.run([&] { run_threaded_node_(pool, ci, x0); });
      });
    } catch (...) {
      group.fail(std::current_exception());
    }
  }
  std::exception_ptr inline_error;
  try {
    for (std::size_t ci : w.inline_children) {
      if (cycle_incremental_ && !exec_[ci]) continue;
      run_threaded_node_(pool, ci, x0);
    }
  } catch (...) {
    inline_error = std::current_exception();
  }
  group.wait();  // join remote children before any unwind
  if (inline_error) std::rethrow_exception(inline_error);
  group.rethrow_any();

  par::TeamContext ctx(pool, w.node->proc_first, w.node->proc_count);
  ctx.bind_cancel_token(cancel_);
  update_node_(ctx, w, x0);
  w.profile += ctx.profile();
}

PlanRunStats SolvePlan::run_threaded_impl_(par::ThreadPool& pool,
                                           const Vector& initial_x,
                                           bool want_incremental) {
  for (NodeWork& w : nodes_) w.profile.clear();
  PlanRunStats stats = run_cycles_(initial_x, want_incremental,
                                   [&](const Vector& x0) {
    par::TaskGroup group(1);
    group.bind_cancel_token(cancel_);
    try {
      pool.submit(hierarchy_->root().proc_first, [&] {
        group.run([&] { run_threaded_node_(pool, nodes_.size() - 1, x0); });
      });
    } catch (...) {
      group.fail(std::current_exception());
    }
    group.join();  // waits, then rethrows a subtree failure on this thread
  });
  threaded_profile_.clear();
  for (const NodeWork& w : nodes_) threaded_profile_ += w.profile;
  return stats;
}

PlanRunStats SolvePlan::run_threaded(par::ThreadPool& pool,
                                     const Vector& initial_x) {
  return run_threaded_impl_(pool, initial_x, /*want_incremental=*/false);
}

PlanRunStats SolvePlan::run_threaded_incremental(par::ThreadPool& pool,
                                                 const Vector& initial_x) {
  return run_threaded_impl_(pool, initial_x, /*want_incremental=*/true);
}

}  // namespace phmse::core
