#include "core/hierarchy.hpp"

#include <algorithm>
#include <sstream>

#include "support/check.hpp"

namespace phmse::core {
namespace {

std::unique_ptr<HierNode> make_node(std::string name, Index begin,
                                    Index end) {
  auto node = std::make_unique<HierNode>();
  node->name = std::move(name);
  node->atom_begin = begin;
  node->atom_end = end;
  return node;
}

// Base node of Fig. 2: a base splits into backbone and sidechain leaves.
std::unique_ptr<HierNode> make_base_node(const mol::BaseGroup& base,
                                         const std::string& name) {
  auto node = make_node(name, base.begin(), base.end());
  node->children.push_back(make_node(name + "/backbone", base.backbone_begin,
                                     base.backbone_end));
  node->children.push_back(make_node(name + "/sidechain",
                                     base.sidechain_begin,
                                     base.sidechain_end));
  return node;
}

// Recursive bisection of a base-pair range into sub-helices (Fig. 2).
std::unique_ptr<HierNode> make_helix_node(const mol::HelixModel& model,
                                          Index pair_begin, Index pair_end,
                                          const std::string& name) {
  const auto& pairs = model.pairs;
  const Index atom_begin =
      pairs[static_cast<std::size_t>(pair_begin)].begin();
  const Index atom_end = pairs[static_cast<std::size_t>(pair_end - 1)].end();

  if (pair_end - pair_begin == 1) {
    // A base pair: two bases.
    const mol::BasePair& bp = pairs[static_cast<std::size_t>(pair_begin)];
    auto node = make_node(name, atom_begin, atom_end);
    node->children.push_back(
        make_base_node(bp.strand1, name + "/base1"));
    node->children.push_back(
        make_base_node(bp.strand2, name + "/base2"));
    return node;
  }

  const Index mid = pair_begin + (pair_end - pair_begin) / 2;
  auto node = make_node(name, atom_begin, atom_end);
  node->children.push_back(
      make_helix_node(model, pair_begin, mid, name + "/L"));
  node->children.push_back(make_helix_node(model, mid, pair_end, name + "/R"));
  return node;
}

void validate_node(const HierNode& node) {
  PHMSE_CHECK(node.atom_begin <= node.atom_end,
              "hierarchy node has an inverted atom range");
  if (node.is_leaf()) return;
  Index cursor = node.atom_begin;
  for (const auto& child : node.children) {
    PHMSE_CHECK(child->atom_begin == cursor,
                "hierarchy children must tile the parent range in order");
    cursor = child->atom_end;
    validate_node(*child);
  }
  PHMSE_CHECK(cursor == node.atom_end,
              "hierarchy children must cover the whole parent range");
}

void describe_node(const HierNode& node, int indent, bool show_constraints,
                   std::ostringstream& os) {
  os << std::string(static_cast<std::size_t>(indent) * 2, ' ') << node.name
     << " [" << node.atom_begin << "," << node.atom_end << ") atoms="
     << node.num_atoms();
  if (show_constraints) os << " constraints=" << node.constraints.size();
  os << '\n';
  for (const auto& child : node.children) {
    describe_node(*child, indent + 1, show_constraints, os);
  }
}

}  // namespace

Hierarchy::Hierarchy(std::unique_ptr<HierNode> root)
    : root_(std::move(root)) {
  PHMSE_CHECK(root_ != nullptr, "hierarchy needs a root");
}

Index Hierarchy::num_nodes() const {
  Index n = 0;
  for_each_post_order([&](const HierNode&) { ++n; });
  return n;
}

Index Hierarchy::num_leaves() const {
  Index n = 0;
  for_each_post_order([&](const HierNode& node) {
    if (node.is_leaf()) ++n;
  });
  return n;
}

Index Hierarchy::depth() const {
  struct Walker {
    static Index depth_of(const HierNode& node) {
      Index d = 0;
      for (const auto& child : node.children) {
        d = std::max(d, depth_of(*child));
      }
      return d + 1;
    }
  };
  return Walker::depth_of(*root_);
}

Index Hierarchy::total_constraints() const {
  Index n = 0;
  for_each_post_order(
      [&](const HierNode& node) { n += node.constraints.size(); });
  return n;
}

void Hierarchy::validate() const { validate_node(*root_); }

std::string Hierarchy::describe(bool show_constraints) const {
  std::ostringstream os;
  describe_node(*root_, 0, show_constraints, os);
  return os.str();
}

Hierarchy build_helix_hierarchy(const mol::HelixModel& model) {
  PHMSE_CHECK(model.num_pairs() >= 1, "helix model is empty");
  return Hierarchy(make_helix_node(model, 0, model.num_pairs(), "helix"));
}

Hierarchy build_ribo_hierarchy(const mol::Ribo30sModel& model) {
  auto root = make_node("ribo30S", 0, model.num_atoms());
  for (int d = 0; d < model.num_domains; ++d) {
    const auto [seg_lo, seg_hi] = model.domain_segments(d);
    if (seg_lo == seg_hi) continue;
    const Index atom_lo =
        model.segments[static_cast<std::size_t>(seg_lo)].begin;
    const Index atom_hi =
        model.segments[static_cast<std::size_t>(seg_hi - 1)].end;
    auto domain =
        make_node("domain" + std::to_string(d), atom_lo, atom_hi);
    for (Index s = seg_lo; s < seg_hi; ++s) {
      const mol::Segment& seg = model.segments[static_cast<std::size_t>(s)];
      const char* kind = seg.kind == mol::Segment::Kind::kHelix   ? "helix"
                         : seg.kind == mol::Segment::Kind::kCoil ? "coil"
                                                                 : "protein";
      domain->children.push_back(
          make_node(std::string(kind) + std::to_string(s), seg.begin,
                    seg.end));
    }
    root->children.push_back(std::move(domain));
  }
  Hierarchy h(std::move(root));
  h.validate();
  return h;
}

Hierarchy build_flat_hierarchy(Index num_atoms) {
  return Hierarchy(make_node("flat", 0, num_atoms));
}

namespace {

std::unique_ptr<HierNode> bisect(Index begin, Index end, Index max_leaf,
                                 const std::string& name) {
  auto node = make_node(name, begin, end);
  if (end - begin > max_leaf) {
    const Index mid = begin + (end - begin) / 2;
    node->children.push_back(bisect(begin, mid, max_leaf, name + "/L"));
    node->children.push_back(bisect(mid, end, max_leaf, name + "/R"));
  }
  return node;
}

}  // namespace

Hierarchy build_bisection_hierarchy(Index num_atoms, Index max_leaf_atoms) {
  PHMSE_CHECK(num_atoms >= 1, "need at least one atom");
  PHMSE_CHECK(max_leaf_atoms >= 1, "leaf size must be >= 1");
  return Hierarchy(bisect(0, num_atoms, max_leaf_atoms, "auto"));
}

Hierarchy build_bottom_up_hierarchy(
    const std::vector<std::pair<Index, Index>>& leaf_ranges,
    const cons::ConstraintSet& constraints) {
  PHMSE_CHECK(!leaf_ranges.empty(), "need at least one leaf");

  // Current forest roots, in atom order.
  std::vector<std::unique_ptr<HierNode>> roots;
  Index cursor = leaf_ranges.front().first;
  for (std::size_t i = 0; i < leaf_ranges.size(); ++i) {
    PHMSE_CHECK(leaf_ranges[i].first == cursor,
                "leaf ranges must be contiguous and ordered");
    cursor = leaf_ranges[i].second;
    roots.push_back(make_node("leaf" + std::to_string(i),
                              leaf_ranges[i].first, leaf_ranges[i].second));
  }

  // Precompute constraint spans.
  std::vector<std::pair<Index, Index>> spans;
  spans.reserve(static_cast<std::size_t>(constraints.size()));
  for (const auto& c : constraints.all()) {
    Index lo = c.atoms[0];
    Index hi = lo;
    for (Index k = 0; k < cons::arity(c.kind); ++k) {
      lo = std::min(lo, c.atoms[static_cast<std::size_t>(k)]);
      hi = std::max(hi, c.atoms[static_cast<std::size_t>(k)]);
    }
    spans.emplace_back(lo, hi);
  }

  // Constraints "captured" by merging adjacent roots [i], [i+1]: spans that
  // cross the boundary between them but stay inside the union.  Greedily
  // merging the pair that captures the most constraints pushes as many
  // constraints as possible toward the bottom of the tree.
  auto capture_count = [&](const HierNode& a, const HierNode& b) {
    Index count = 0;
    for (const auto& [lo, hi] : spans) {
      if (lo >= a.atom_begin && lo < a.atom_end && hi >= b.atom_begin &&
          hi < b.atom_end) {
        ++count;
      }
    }
    return count;
  };

  int merge_id = 0;
  while (roots.size() > 1) {
    // Primary objective: capture the most constraints.  Tie-break on the
    // smallest merged node (Huffman-style), which keeps the tree balanced —
    // a caterpillar tree would re-assemble near-full-size covariances at
    // every level and forfeit the hierarchical win.
    std::size_t best = 0;
    Index best_count = -1;
    Index best_size = std::numeric_limits<Index>::max();
    for (std::size_t i = 0; i + 1 < roots.size(); ++i) {
      const Index c = capture_count(*roots[i], *roots[i + 1]);
      const Index size = roots[i + 1]->atom_end - roots[i]->atom_begin;
      if (c > best_count || (c == best_count && size < best_size)) {
        best_count = c;
        best_size = size;
        best = i;
      }
    }
    auto merged = make_node("merge" + std::to_string(merge_id++),
                            roots[best]->atom_begin,
                            roots[best + 1]->atom_end);
    merged->children.push_back(std::move(roots[best]));
    merged->children.push_back(std::move(roots[best + 1]));
    roots[best] = std::move(merged);
    roots.erase(roots.begin() + static_cast<std::ptrdiff_t>(best) + 1);
  }

  Hierarchy h(std::move(roots.front()));
  h.validate();
  return h;
}

}  // namespace phmse::core
