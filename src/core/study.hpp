// Parallel speedup studies as a library facility.
//
// The paper's evaluation protocol — run one full constraint cycle at each
// processor count, report work time, speedup, and the per-category time
// distribution (Tables 3-6) — packaged so benches, tests and downstream
// users replay it on any problem and machine configuration.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/hier_solver.hpp"

namespace phmse::core {

/// One row of a speedup table.
struct StudyRow {
  int processors = 1;
  double time = 0.0;      // simulated work time, seconds
  double speedup = 1.0;   // vs the 1-processor row (or the smallest run)
  perf::Profile breakdown;
};

/// A completed study.
struct SpeedupStudy {
  std::string machine;
  std::vector<StudyRow> rows;

  /// Parallel efficiency of row i: speedup / processors.
  double efficiency(std::size_t i) const {
    return rows[i].speedup / rows[i].processors;
  }
};

/// Builds a fresh scheduled hierarchy for the given processor count.  The
/// callback owns problem construction so every run starts from identical
/// state (the solver mutates nothing outside the hierarchy it is given).
using ProblemFactory = std::function<Hierarchy(int processors)>;

/// Runs `options.max_cycles` cycles at every processor count in `counts`
/// (entries exceeding the machine size are skipped) and collects the
/// paper-style rows.  Numerics are identical across rows (the schedule
/// changes placement, not arithmetic), so only timing differs.
SpeedupStudy run_speedup_study(const ProblemFactory& factory,
                               const linalg::Vector& initial,
                               const HierSolveOptions& options,
                               const simarch::MachineConfig& machine,
                               const std::vector<int>& counts);

/// Renders the study in the layout of the paper's Tables 3-6
/// (NP / time / spdup / d-s / chol / sys / m-m / m-v / vec).
std::string format_speedup_table(const SpeedupStudy& study);

}  // namespace phmse::core
