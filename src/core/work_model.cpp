#include "core/work_model.hpp"

#include <array>
#include <cmath>

#include "linalg/blas.hpp"
#include "support/check.hpp"

namespace phmse::core {
namespace {

constexpr int kFeatures = 5;  // n^2, n*m, n, m, 1

std::array<double, kFeatures> features(double n, double m) {
  return {n * n, n * m, n, m, 1.0};
}

// A node's internal update is a sequence of flat problems; besides the
// per-constraint cost, assembling the block-diagonal state from the
// children touches dim^2 covariance entries.  Expressed in units of the
// model's quadratic term so the estimate stays scale-free.
constexpr double kAssemblyEquivalentConstraints = 3.0;

}  // namespace

WorkModel fit_work_model(const std::vector<WorkSample>& samples) {
  PHMSE_CHECK(!samples.empty(), "work-model fit needs samples");

  std::array<bool, kFeatures> active;
  active.fill(true);

  std::array<double, kFeatures> coeff{};
  for (int round = 0; round < kFeatures; ++round) {
    // Indices of active features.
    std::vector<int> idx;
    for (int k = 0; k < kFeatures; ++k) {
      if (active[static_cast<std::size_t>(k)]) idx.push_back(k);
    }
    PHMSE_CHECK(!idx.empty(), "work-model fit degenerated to zero");
    const Index p = static_cast<Index>(idx.size());

    // Normal equations X^T X beta = X^T y with a tiny ridge for stability.
    linalg::Matrix xtx(p, p);
    linalg::Matrix xty(p, 1);
    for (const WorkSample& s : samples) {
      const auto f = features(s.n, s.m);
      for (Index a = 0; a < p; ++a) {
        const double fa = f[static_cast<std::size_t>(idx[static_cast<std::size_t>(a)])];
        xty(a, 0) += fa * s.seconds_per_constraint;
        for (Index b = 0; b < p; ++b) {
          xtx(a, b) +=
              fa * f[static_cast<std::size_t>(idx[static_cast<std::size_t>(b)])];
        }
      }
    }
    for (Index a = 0; a < p; ++a) xtx(a, a) *= 1.0 + 1e-12;

    const linalg::Matrix beta = linalg::spd_solve(xtx, xty);

    // Clamp: drop the most negative coefficient and refit.
    int worst = -1;
    double worst_val = 0.0;
    coeff.fill(0.0);
    for (Index a = 0; a < p; ++a) {
      const double v = beta(a, 0);
      coeff[static_cast<std::size_t>(idx[static_cast<std::size_t>(a)])] = v;
      if (v < worst_val) {
        worst_val = v;
        worst = idx[static_cast<std::size_t>(a)];
      }
    }
    if (worst < 0) break;  // all non-negative: done
    active[static_cast<std::size_t>(worst)] = false;
    coeff[static_cast<std::size_t>(worst)] = 0.0;
  }

  WorkModel model;
  model.a_n2 = coeff[0];
  model.a_nm = coeff[1];
  model.a_n = coeff[2];
  model.a_m = coeff[3];
  model.a_1 = coeff[4];
  PHMSE_CHECK(model.a_n2 > 0.0 || model.a_n > 0.0 || model.a_1 > 0.0,
              "work-model fit produced a non-growth model");
  return model;
}

Index optimal_batch_size(const WorkModel& model, double n, Index max_batch) {
  PHMSE_CHECK(max_batch >= 1, "batch bound must be >= 1");
  // The fitted polynomial is linear in m, so on its own it is minimized at
  // m = 1; the small-m penalty the paper measures (cache-hostile vector
  // operations, per-batch overhead) lives outside the regression range.
  // Model it as the amortized per-batch fixed cost a_1 * (1 + n0/m): each
  // batch pays roughly one constant term per matrix pass.
  Index best = 1;
  double best_t = std::numeric_limits<double>::infinity();
  for (Index m = 1; m <= max_batch; m *= 2) {
    const double md = static_cast<double>(m);
    const double t = model.per_constraint(n, md) +
                     (model.a_1 + model.a_n * n) * 16.0 / md;
    if (t < best_t) {
      best_t = t;
      best = m;
    }
  }
  return best;
}

void estimate_work(Hierarchy& hierarchy, const WorkModel& model,
                   Index batch_size) {
  PHMSE_CHECK(batch_size >= 1, "batch size must be >= 1");
  hierarchy.for_each_post_order([&](HierNode& node) {
    const double n = static_cast<double>(node.dim());
    const double constraints = static_cast<double>(node.constraints.size());
    const double m =
        std::min(static_cast<double>(batch_size), std::max(1.0, constraints));
    node.own_work = constraints * model.per_constraint(n, m);
    if (!node.is_leaf()) {
      node.own_work += kAssemblyEquivalentConstraints * model.a_n2 * n * n;
    }
    node.subtree_work = node.own_work;
    for (const auto& child : node.children) {
      node.subtree_work += child->subtree_work;
    }
  });
}

}  // namespace phmse::core
