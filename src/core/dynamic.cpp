#include "core/dynamic.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <vector>

#include "estimation/update.hpp"
#include "linalg/backend.hpp"
#include "support/check.hpp"

namespace phmse::core {
namespace {

using est::NodeState;
using linalg::Vector;

// Collects the nodes at every depth (root = depth 0).
void collect_levels(HierNode& node, int depth,
                    std::vector<std::vector<HierNode*>>& levels) {
  if (static_cast<int>(levels.size()) <= depth) {
    levels.resize(static_cast<std::size_t>(depth) + 1);
  }
  levels[static_cast<std::size_t>(depth)].push_back(&node);
  for (auto& child : node.children) collect_levels(*child, depth + 1, levels);
}

// Splits `processors` among the wave's nodes proportionally to own_work
// (including assembly), each node getting at least one; returns per-node
// (first, count).  Nodes keep wave order, so groups are contiguous.
std::vector<std::pair<int, int>> wave_groups(
    const std::vector<HierNode*>& wave, int processors) {
  const int n = static_cast<int>(wave.size());
  std::vector<std::pair<int, int>> out(static_cast<std::size_t>(n));
  if (n >= processors) {
    // More nodes than processors: round-robin sharing, one each.
    for (int i = 0; i < n; ++i) {
      out[static_cast<std::size_t>(i)] = {i % processors, 1};
    }
    return out;
  }
  double total = 0.0;
  for (const HierNode* node : wave) total += std::max(node->own_work, 1e-30);

  // Proportional apportionment with a floor of 1: every extra processor
  // goes to the group whose deficit (claimed share minus current size) is
  // largest.
  std::vector<int> count(static_cast<std::size_t>(n), 1);
  std::vector<double> share(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    share[static_cast<std::size_t>(i)] =
        std::max(wave[static_cast<std::size_t>(i)]->own_work, 1e-30) / total *
        processors;
  }
  for (int extra = 0; extra < processors - n; ++extra) {
    int best = 0;
    double best_deficit = -std::numeric_limits<double>::infinity();
    for (int i = 0; i < n; ++i) {
      const double deficit = share[static_cast<std::size_t>(i)] -
                             count[static_cast<std::size_t>(i)];
      if (deficit > best_deficit) {
        best_deficit = deficit;
        best = i;
      }
    }
    count[static_cast<std::size_t>(best)] += 1;
  }
  int cursor = 0;
  for (int i = 0; i < n; ++i) {
    out[static_cast<std::size_t>(i)] = {cursor,
                                        count[static_cast<std::size_t>(i)]};
    cursor += count[static_cast<std::size_t>(i)];
  }
  return out;
}

}  // namespace

SimSolveResult solve_hierarchical_dynamic_sim(Hierarchy& hierarchy,
                                              const Vector& initial_x,
                                              const HierSolveOptions& options,
                                              simarch::SimMachine& machine) {
  PHMSE_CHECK(static_cast<Index>(initial_x.size()) == hierarchy.root().dim(),
              "initial state dimension mismatch");
  PHMSE_CHECK(options.max_cycles >= 1, "need at least one cycle");
  machine.reset();

  std::vector<std::vector<HierNode*>> levels;
  collect_levels(hierarchy.root(), 0, levels);

  SimSolveResult out;
  Vector current = initial_x;
  est::BatchUpdater updater;
  updater.set_backend(
      &linalg::resolve_backend(options.backend, "HierSolveOptions.backend"));
  const int procs = machine.processors();

  for (int cycle = 0; cycle < options.max_cycles; ++cycle) {
    std::unordered_map<const HierNode*, NodeState> states;

    // Waves from the deepest level up to the root.
    for (auto it = levels.rbegin(); it != levels.rend(); ++it) {
      const auto groups = wave_groups(*it, procs);
      for (std::size_t i = 0; i < it->size(); ++i) {
        HierNode* node = (*it)[i];
        const auto [first, count] = groups[i];
        simarch::SimContext ctx(machine, first, count);

        NodeState state;
        if (node->is_leaf()) {
          state = est::make_state_from_full(current, node->atom_begin,
                                            node->atom_end,
                                            options.prior_sigma);
        } else {
          // Re-assemble from this cycle's child posteriors.
          NodeState assembled;
          assembled.atom_begin = node->atom_begin;
          assembled.atom_end = node->atom_end;
          const Index n = assembled.dim();
          assembled.x.resize(static_cast<std::size_t>(n));
          assembled.c.resize_zero(n, n);
          Index offset = 0;
          // Copy child blocks; charge as a single vec region.
          ctx.parallel(
              perf::Category::kVector, n,
              [&](Index begin, Index end) {
                par::KernelStats st;
                st.bytes_stream = 16.0 * static_cast<double>(end - begin) *
                                  static_cast<double>(n) /
                                  static_cast<double>(node->children.size());
                return st;
              },
              [&](Index, Index, int) {});
          for (auto& child : node->children) {
            NodeState& cs = states.at(child.get());
            const Index cdim = cs.dim();
            for (Index r = 0; r < cdim; ++r) {
              const auto src = cs.c.row(r);
              std::copy(src.begin(), src.end(),
                        assembled.c.row(offset + r).begin() + offset);
              assembled.x[static_cast<std::size_t>(offset + r)] =
                  cs.x[static_cast<std::size_t>(r)];
            }
            offset += cdim;
            states.erase(child.get());
          }
          state = std::move(assembled);
        }
        updater.apply_all(ctx, state, node->constraints, options.batch_size,
                          options.symmetrize_every);
        states.emplace(node, std::move(state));
      }
      // Periodic global synchronization between waves.
      machine.sync_range(0, procs);
    }

    out.result.state = std::move(states.at(&hierarchy.root()));
    ++out.result.cycles;
    double sum = 0.0;
    for (std::size_t i = 0; i < current.size(); ++i) {
      const double d = out.result.state.x[i] - current[i];
      sum += d * d;
    }
    out.result.last_cycle_delta =
        current.empty()
            ? 0.0
            : std::sqrt(sum / static_cast<double>(current.size()));
    current = out.result.state.x;
    if (options.tolerance > 0.0 &&
        out.result.last_cycle_delta < options.tolerance) {
      out.result.converged = true;
      break;
    }
  }

  out.vtime = machine.elapsed();
  out.breakdown = machine.reported_profile();
  return out;
}

}  // namespace phmse::core
