// Static processor assignment (paper Section 4.3).
//
// Given per-subtree work estimates, processors are distributed over the
// hierarchy: the root gets all P processors; at every node the child
// subtrees (ordered by increasing work) and the node's processors are
// recursively bipartitioned, choosing at each step the processor split and
// child partition point whose work ratio matches best.  Every node ends up
// with a contiguous processor range [proc_first, proc_first + proc_count),
// with children's ranges partitioning the parent's (or sharing a single
// processor when P is exhausted).
#pragma once

#include "core/hierarchy.hpp"

namespace phmse::core {

/// Assigns processors 0..processors-1 over the hierarchy.  estimate_work()
/// must have been called first (zero estimates degrade to even splits).
void assign_processors(Hierarchy& hierarchy, int processors);

/// Validation: every node's processor range lies inside its parent's, and
/// the ranges of children that got disjoint groups do not overlap unless
/// they share a single processor.  Throws phmse::Error on violation.
void validate_schedule(const Hierarchy& hierarchy);

/// Human-readable schedule dump for debugging and the bench `--show-tree`
/// flags.
std::string describe_schedule(const Hierarchy& hierarchy);

}  // namespace phmse::core
