#include "core/schedule.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "support/check.hpp"

namespace phmse::core {
namespace {

void assign_node(HierNode& node, int first, int count);

// Recursive bipartition of `kids` (sorted by increasing subtree work) and
// the processor range [first, first+count): paper Section 4.3, steps 4-5.
void partition(std::vector<HierNode*>& kids, std::size_t lo, std::size_t hi,
               int first, int count) {
  const std::size_t n = hi - lo;
  if (n == 0) return;
  if (n == 1) {
    assign_node(*kids[lo], first, count);
    return;
  }
  if (count == 1) {
    // Out of processors: the remaining subtrees share this one and run
    // sequentially.
    for (std::size_t i = lo; i < hi; ++i) assign_node(*kids[i], first, 1);
    return;
  }

  double total = 0.0;
  for (std::size_t i = lo; i < hi; ++i) total += kids[i]->subtree_work;

  // Try every processor bipartition p | count-p; for each, find the child
  // partition point whose work ratio matches it best; keep the overall best.
  double best_score = std::numeric_limits<double>::infinity();
  int best_p = 1;
  std::size_t best_k = lo + 1;
  for (int p = 1; p < count; ++p) {
    const double target = total * static_cast<double>(p) / count;
    double acc = 0.0;
    for (std::size_t k = lo + 1; k < hi; ++k) {
      acc += kids[k - 1]->subtree_work;
      const double score =
          std::abs(acc - target) +
          // tie-break toward balanced processor counts
          1e-12 * std::abs(p - count / 2.0);
      if (score < best_score) {
        best_score = score;
        best_p = p;
        best_k = k;
      }
    }
  }

  partition(kids, lo, best_k, first, best_p);
  partition(kids, best_k, hi, first + best_p, count - best_p);
}

void assign_node(HierNode& node, int first, int count) {
  node.proc_first = first;
  node.proc_count = count;
  if (node.is_leaf()) return;

  std::vector<HierNode*> kids;
  kids.reserve(node.children.size());
  for (auto& child : node.children) kids.push_back(child.get());
  std::sort(kids.begin(), kids.end(), [](const HierNode* a, const HierNode* b) {
    return a->subtree_work < b->subtree_work;
  });
  partition(kids, 0, kids.size(), first, count);
}

void validate_node(const HierNode& node) {
  for (std::size_t i = 0; i < node.children.size(); ++i) {
    const HierNode& a = *node.children[i];
    PHMSE_CHECK(a.proc_first >= node.proc_first &&
                    a.proc_first + a.proc_count <=
                        node.proc_first + node.proc_count,
                "child processor range escapes its parent's");
    for (std::size_t j = i + 1; j < node.children.size(); ++j) {
      const HierNode& b = *node.children[j];
      const bool disjoint = a.proc_first + a.proc_count <= b.proc_first ||
                            b.proc_first + b.proc_count <= a.proc_first;
      const bool shared_single = a.proc_first == b.proc_first &&
                                 a.proc_count == 1 && b.proc_count == 1;
      PHMSE_CHECK(disjoint || shared_single,
                  "sibling processor ranges overlap");
    }
    validate_node(a);
  }
}

void describe_node(const HierNode& node, int indent, std::ostringstream& os) {
  os << std::string(static_cast<std::size_t>(indent) * 2, ' ') << node.name
     << " procs=[" << node.proc_first << ","
     << node.proc_first + node.proc_count << ") work=" << node.subtree_work
     << '\n';
  for (const auto& child : node.children) {
    describe_node(*child, indent + 1, os);
  }
}

}  // namespace

void assign_processors(Hierarchy& hierarchy, int processors) {
  PHMSE_CHECK(processors >= 1, "need at least one processor");
  assign_node(hierarchy.root(), 0, processors);
}

void validate_schedule(const Hierarchy& hierarchy) {
  validate_node(hierarchy.root());
}

std::string describe_schedule(const Hierarchy& hierarchy) {
  std::ostringstream os;
  describe_node(hierarchy.root(), 0, os);
  return os.str();
}

}  // namespace phmse::core
