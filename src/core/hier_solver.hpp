// Hierarchical solvers (paper Sections 3 and 4).
//
// The estimate is propagated leaf-to-root in post-order.  A leaf starts
// from the initial state vector slice and the spherical prior; an interior
// node concatenates its children's posterior states and assembles their
// covariances as diagonal blocks (the children are mutually uncorrelated
// until the node's own boundary-spanning constraints are applied); every
// node then runs the Fig.-1 update over its assigned constraints.
//
// Three execution modes share this logic:
//   * solve_hierarchical          — any ExecContext (serial baseline);
//   * solve_hierarchical_sim      — virtual processors of a SimMachine,
//                                   following the static schedule
//                                   (reproduces the paper's DASH/Challenge
//                                   speedup studies);
//   * solve_hierarchical_threaded — real threads on a ThreadPool, following
//                                   the same schedule (genuine parallelism
//                                   on multicore hosts).
// All three apply constraints in the same order and therefore produce
// identical numerics.
#pragma once

#include "core/hierarchy.hpp"
#include "estimation/solver.hpp"
#include "parallel/thread_pool.hpp"
#include "simarch/sim_context.hpp"

namespace phmse::core {

/// Options for the hierarchical solve; see est::SolveOptions for the
/// per-node update parameters.
struct HierSolveOptions {
  Index batch_size = 16;
  int max_cycles = 1;
  double tolerance = 0.0;
  /// See est::SolveOptions::prior_sigma.
  double prior_sigma = 1.0;
  Index symmetrize_every = 64;
};

/// Result: the root posterior plus cycle statistics.
struct HierSolveResult {
  est::NodeState state;
  int cycles = 0;
  double last_cycle_delta = 0.0;
  bool converged = false;
};

/// Post-order hierarchical solve on an arbitrary context.  `initial_x` is
/// the full-molecule initial state (dimension 3 * root atoms).
HierSolveResult solve_hierarchical(par::ExecContext& ctx,
                                   Hierarchy& hierarchy,
                                   const linalg::Vector& initial_x,
                                   const HierSolveOptions& options);

/// Result of a simulated run.
struct SimSolveResult {
  HierSolveResult result;
  /// Simulated work time (max virtual clock), seconds.
  double vtime = 0.0;
  /// Per-category time: max over processors (paper Tables 3-6 convention).
  perf::Profile breakdown;
};

/// Simulated parallel solve following the static schedule on `machine`.
/// assign_processors() must have been run with the machine's processor
/// count.  The machine is reset first.
SimSolveResult solve_hierarchical_sim(Hierarchy& hierarchy,
                                      const linalg::Vector& initial_x,
                                      const HierSolveOptions& options,
                                      simarch::SimMachine& machine);

/// Real-thread parallel solve following the static schedule on `pool`.
/// assign_processors() must have been run with pool.size() processors.
///
/// Exception safety: a failure anywhere in the tree (e.g. a bad constraint
/// batch throwing phmse::Error on a worker lane) propagates to the caller
/// as that same exception — no deadlocked join, no std::terminate — and
/// `pool` remains usable for subsequent solves.
HierSolveResult solve_hierarchical_threaded(Hierarchy& hierarchy,
                                            const linalg::Vector& initial_x,
                                            const HierSolveOptions& options,
                                            par::ThreadPool& pool);

}  // namespace phmse::core
