// One-shot hierarchical solve entry points (paper Sections 3 and 4).
//
// These are thin shims over core::SolvePlan (see solve_plan.hpp), kept for
// callers that solve a hierarchy exactly once: each call compiles a
// transient plan, executes it, and returns the root posterior.  Code that
// solves repeatedly — parameter sweeps, speedup studies, serving — should
// compile a plan once (or use the phmse::Engine facade) and re-run it, which
// skips all per-call setup and allocation.  Checkpoints never form here:
// the transient plan is destroyed after its single run, so the incremental
// dirty-subtree path (SolvePlan::run_incremental, DESIGN.md §11) only pays
// off on a retained plan — exactly why online callers should hold one.
//
// Three execution modes share the plan's single update path:
//   * solve_hierarchical          — any ExecContext (serial baseline);
//   * solve_hierarchical_sim      — virtual processors of a SimMachine,
//                                   following the static schedule
//                                   (reproduces the paper's DASH/Challenge
//                                   speedup studies);
//   * solve_hierarchical_threaded — real threads on a ThreadPool, following
//                                   the same schedule (genuine parallelism
//                                   on multicore hosts).
// All three apply constraints in the same order and therefore produce
// identical numerics.
#pragma once

#include "core/hierarchy.hpp"
#include "core/solve_plan.hpp"
#include "estimation/solver.hpp"
#include "parallel/thread_pool.hpp"
#include "simarch/sim_context.hpp"

namespace phmse::core {

/// Post-order hierarchical solve on an arbitrary context.  `initial_x` is
/// the full-molecule initial state (dimension 3 * root atoms).
HierSolveResult solve_hierarchical(par::ExecContext& ctx,
                                   Hierarchy& hierarchy,
                                   const linalg::Vector& initial_x,
                                   const HierSolveOptions& options);

/// Simulated parallel solve following the static schedule on `machine`.
/// assign_processors() must have been run with the machine's processor
/// count.  The machine is reset first.
SimSolveResult solve_hierarchical_sim(Hierarchy& hierarchy,
                                      const linalg::Vector& initial_x,
                                      const HierSolveOptions& options,
                                      simarch::SimMachine& machine);

/// Real-thread parallel solve following the static schedule on `pool`.
/// assign_processors() must have been run with pool.size() processors.
///
/// Exception safety: a failure anywhere in the tree (e.g. a bad constraint
/// batch throwing phmse::Error on a worker lane) propagates to the caller
/// as that same exception — no deadlocked join, no std::terminate — and
/// `pool` remains usable for subsequent solves.
HierSolveResult solve_hierarchical_threaded(Hierarchy& hierarchy,
                                            const linalg::Vector& initial_x,
                                            const HierSolveOptions& options,
                                            par::ThreadPool& pool);

}  // namespace phmse::core
