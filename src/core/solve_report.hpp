// Solve-wide fault-tolerance diagnostics (DESIGN.md §9).
//
// A SolveReport aggregates the per-node est::NodeReport tallies of one plan
// execution into a single structure the caller can inspect: how many
// constraint batches ran, how many needed the regularized retry ladder, how
// many were dropped (gated / skipped / failed), and — for every non-ok batch
// — which node and batch it was and exactly what happened (attempts made,
// Tikhonov term used, chi-squared, failing pivot).
//
// The report is rebuilt on every run and its vectors keep their capacity
// across runs, so a clean steady-state solve aggregates into it without
// heap allocation (tests/alloc_test.cpp covers the whole solve path).
#pragma once

#include <string>
#include <vector>

#include "estimation/policy.hpp"
#include "support/types.hpp"

namespace phmse::core {

/// One non-ok batch somewhere in the tree: which node (post-order index and
/// its atom range — stable across executors), which batch, and its outcome.
struct SolveIncident {
  /// Post-order index of the node in the compiled plan.
  std::size_t node = 0;
  /// The node's atom range (identifies the subtree independent of plan
  /// internals).
  Index atom_begin = 0;
  Index atom_end = 0;
  /// Batch ordinal within the node's constraint sweep (cycle-local).
  Index batch = -1;
  est::BatchOutcome outcome;
};

/// One outer iteration of a refinement loop (DESIGN.md §14): the
/// convergence-monitoring sample the refine::Refiner records after each
/// re-linearized solve.  All values are controller-side arithmetic over the
/// solve's posterior, so they are bitwise identical across executors.
struct RefineIteration {
  /// Total constraint chi-squared of the iterate, sum (z - h(x))^2 / var
  /// over every constraint in the hierarchy, against the UN-inflated noise
  /// model (annealing scales the solve, never the monitor).
  double chi2 = 0.0;
  /// RMS constraint residual of the iterate (same units as the
  /// observations; the convergence studies report this).
  double rms_residual = 0.0;
  /// RMS change of the linearization point that produced this iterate.
  double step_norm = 0.0;
  /// Sigma-inflation temperature this iteration solved under (1 except for
  /// the annealed mode's early iterations).
  double temperature = 1.0;
  /// True when this iteration started from a seeded perturbation restart.
  bool restart = false;
};

/// Outer-loop refinement diagnostics (DESIGN.md §14), filled by
/// refine::Refiner on the Result it returns.  Plain plan solves leave it
/// empty (`active()` false) — the embedded vectors are only ever touched by
/// the refine controller, so the steady-state solve path stays
/// allocation-free.
struct RefineReport {
  /// "single_pass", "iterated" or "annealed" (refine::mode_name); short
  /// enough for SSO.
  std::string mode;
  /// Outer iterations executed (solves performed); 0 = no refinement ran.
  int iterations = 0;
  /// The loop met its step/residual tolerance before the iteration cap.
  bool converged = false;
  /// The loop stopped because the estimate was getting worse (divergence
  /// detection); the returned iterate is still the best one seen.
  bool diverged = false;
  /// Seeded perturbation restarts taken (annealed mode).
  int restarts = 0;
  /// The deadline/cancel fired mid-loop after >= 1 completed iteration and
  /// the result degraded to the best iterate instead of erroring.
  bool deadline_degraded = false;
  /// 1-based index of the iteration whose posterior the Result carries.
  int best_iteration = 0;
  /// Chi-squared at the caller's initial estimate, before any solve.
  double initial_chi2 = 0.0;
  /// Chi-squared of the returned (best) iterate / the last iterate.
  double best_chi2 = 0.0;
  double final_chi2 = 0.0;
  /// Per-iteration trajectory, in execution order.
  std::vector<RefineIteration> trajectory;

  /// True when a refinement loop produced this report.
  bool active() const { return iterations > 0; }

  void clear() {
    mode.clear();  // SSO — no alloc
    iterations = 0;
    converged = diverged = deadline_degraded = false;
    restarts = 0;
    best_iteration = 0;
    initial_chi2 = best_chi2 = final_chi2 = 0.0;
    trajectory.clear();  // keeps capacity
  }
};

/// Aggregated diagnostics of one SolvePlan execution (all nodes, all
/// cycles).  Counters count batches; `incidents` lists every non-ok batch.
struct SolveReport {
  long batches = 0;
  long ok = 0;
  long retried = 0;
  long gated = 0;
  long skipped = 0;
  long failed = 0;
  /// Worst-case factorization attempts over all batches.
  int max_attempts = 0;
  /// Largest Tikhonov term any applied batch needed.
  double max_regularization = 0.0;
  /// Incremental-execution accounting (DESIGN.md §11).  `nodes_recomputed`
  /// counts node executions this run (the cycle-1 dirty path plus every
  /// node on later cycles); `nodes_reused` counts cycle-1 nodes served from
  /// their checkpoint.  A full run counts every node as recomputed;
  /// `incremental` marks runs that executed the dirty schedule.
  long nodes_recomputed = 0;
  long nodes_reused = 0;
  bool incremental = false;
  /// True when the run was the low-rank perturbative root update (first-
  /// order, NOT bitwise-equal to a from-scratch solve; DESIGN.md §11).
  bool low_rank = false;
  /// Cooperative-cancellation record (DESIGN.md §13).  When a run aborts on
  /// a CancelToken, the plan fills these before rethrowing: `cancelled`
  /// marks the run, `cancelled_by_deadline` distinguishes deadline expiry
  /// from an explicit cancel(), and the location fields name the first poll
  /// site that observed the stop (the node's atom range and the batch
  /// ordinal; -1 = unknown, e.g. a task skipped before it started).  The
  /// tallies above then cover only the batches that committed before the
  /// abort.  A completed run always reads cancelled == false.
  bool cancelled = false;
  bool cancelled_by_deadline = false;
  Index cancelled_atom_begin = -1;
  Index cancelled_atom_end = -1;
  Index cancelled_batch = -1;
  /// Name of the kernel backend the run dispatched through ("ref",
  /// "blocked", "simd"; see linalg/backend.hpp), resolved once at plan
  /// build.  Registry names are short, so the assignment stays inside the
  /// small-string buffer — no allocation on the steady-state solve path.
  std::string backend;
  std::vector<SolveIncident> incidents;
  /// Outer-loop refinement diagnostics (DESIGN.md §14); empty unless this
  /// result came from refine::Refiner.
  RefineReport refine;

  /// True when every batch applied on its first factorization attempt.
  bool clean() const { return retried + gated + skipped + failed == 0; }

  /// Batches that updated the state (ok + retried).
  long applied() const { return ok + retried; }

  /// Batches dropped without touching the state.
  long dropped() const { return gated + skipped + failed; }

  void clear() {
    batches = ok = retried = gated = skipped = failed = 0;
    max_attempts = 0;
    max_regularization = 0.0;
    nodes_recomputed = nodes_reused = 0;
    incremental = false;
    low_rank = false;
    cancelled = false;
    cancelled_by_deadline = false;
    cancelled_atom_begin = cancelled_atom_end = cancelled_batch = -1;
    backend.clear();    // SSO — no alloc, no capacity to lose
    incidents.clear();  // keeps capacity — no alloc on the next clean run
    refine.clear();
  }

  /// Folds one node's tally into the solve-wide totals.
  void merge(std::size_t node, Index atom_begin, Index atom_end,
             const est::NodeReport& report);

  /// One-line human-readable summary, e.g.
  /// "512 batches: 509 ok, 2 retried (max 3 attempts), 1 gated".
  std::string summary() const;
};

}  // namespace phmse::core
