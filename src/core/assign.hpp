// Constraint-to-node assignment.
//
// "We try to apply constraints at the lowest level of the tree possible"
// (paper Section 3): each constraint is attached to the deepest node whose
// atom range contains every atom the constraint references.
#pragma once

#include "constraints/set.hpp"
#include "core/hierarchy.hpp"

namespace phmse::core {

/// Statistics of an assignment, used by tests and the locality ablation.
struct AssignStats {
  Index total = 0;
  /// Constraints per depth level (0 = root).
  std::vector<Index> per_level;
  /// Constraints landing on leaves.
  Index on_leaves = 0;
};

/// Where constraint i of the assigned set landed: node and index within
/// that node's list.  A compiled plan records one slot per input constraint
/// so fresh observation values can be scattered without re-assignment.
struct AssignedSlot {
  HierNode* node = nullptr;
  Index index = 0;
};

/// Distributes `set` over the hierarchy (appending to each node's
/// constraint list) and returns assignment statistics.  Every constraint
/// must fit inside the root's atom range.
AssignStats assign_constraints(Hierarchy& hierarchy,
                               const cons::ConstraintSet& set);

/// As above, additionally recording where each input constraint landed
/// (slots[i] corresponds to set[i]).  `slots` is cleared first.
AssignStats assign_constraints(Hierarchy& hierarchy,
                               const cons::ConstraintSet& set,
                               std::vector<AssignedSlot>& slots);

/// Removes all constraints from every node.
void clear_constraints(Hierarchy& hierarchy);

}  // namespace phmse::core
