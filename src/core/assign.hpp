// Constraint-to-node assignment.
//
// "We try to apply constraints at the lowest level of the tree possible"
// (paper Section 3): each constraint is attached to the deepest node whose
// atom range contains every atom the constraint references.
#pragma once

#include "constraints/set.hpp"
#include "core/hierarchy.hpp"

namespace phmse::core {

/// Statistics of an assignment, used by tests and the locality ablation.
struct AssignStats {
  Index total = 0;
  /// Constraints per depth level (0 = root).
  std::vector<Index> per_level;
  /// Constraints landing on leaves.
  Index on_leaves = 0;
};

/// Distributes `set` over the hierarchy (appending to each node's
/// constraint list) and returns assignment statistics.  Every constraint
/// must fit inside the root's atom range.
AssignStats assign_constraints(Hierarchy& hierarchy,
                               const cons::ConstraintSet& set);

/// Removes all constraints from every node.
void clear_constraints(Hierarchy& hierarchy);

}  // namespace phmse::core
