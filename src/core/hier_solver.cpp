#include "core/hier_solver.hpp"

#include <cmath>
#include <exception>

#include "estimation/update.hpp"
#include "parallel/task_group.hpp"
#include "parallel/team.hpp"
#include "support/check.hpp"

namespace phmse::core {
namespace {

using est::BatchUpdater;
using est::NodeState;
using linalg::Vector;

// Assembles a node's state from its children: x is the concatenation, C the
// block-diagonal of the children's covariances (children are uncorrelated
// until this node's constraints couple them).  Charged as vector/copy
// traffic.
NodeState assemble_from_children(par::ExecContext& ctx, const HierNode& node,
                                 std::vector<NodeState>& child_states) {
  NodeState state;
  state.atom_begin = node.atom_begin;
  state.atom_end = node.atom_end;
  const Index n = state.dim();
  state.x.resize(static_cast<std::size_t>(n));
  state.c.resize_zero(n, n);

  auto cost = [&](Index begin, Index end) {
    par::KernelStats st;
    // Each parent row copies one child-row segment; plus the state vector.
    st.bytes_stream = 16.0 * static_cast<double>(end - begin) *
                      static_cast<double>(n) /
                      static_cast<double>(child_states.size());
    return st;
  };
  auto body = [&](Index begin, Index end, int /*lane*/) {
    for (Index row = begin; row < end; ++row) {
      // Find the child owning this row (few children; linear scan is fine).
      Index offset = 0;
      for (const NodeState& cs : child_states) {
        const Index cdim = cs.dim();
        if (row < offset + cdim) {
          const Index local = row - offset;
          const auto src = cs.c.row(local);
          std::copy(src.begin(), src.end(),
                    state.c.row(row).begin() + offset);
          state.x[static_cast<std::size_t>(row)] =
              cs.x[static_cast<std::size_t>(local)];
          break;
        }
        offset += cdim;
      }
    }
  };
  ctx.parallel(perf::Category::kVector, n, cost, body);
  return state;
}

// Updates one node given its children's posteriors (empty for a leaf).
NodeState update_node(par::ExecContext& ctx, HierNode& node,
                      const Vector& initial_x,
                      std::vector<NodeState> child_states,
                      const HierSolveOptions& options,
                      BatchUpdater& updater) {
  NodeState state;
  if (node.is_leaf()) {
    state = est::make_state_from_full(initial_x, node.atom_begin,
                                      node.atom_end, options.prior_sigma);
  } else {
    state = assemble_from_children(ctx, node, child_states);
  }
  child_states.clear();
  updater.apply_all(ctx, state, node.constraints, options.batch_size,
                    options.symmetrize_every);
  return state;
}

double rms_delta(const Vector& a, const Vector& b) {
  PHMSE_CHECK(a.size() == b.size(), "state dimension changed between cycles");
  if (a.empty()) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return std::sqrt(sum / static_cast<double>(a.size()));
}

// ---------------------------------------------------------------------------
// Generic (single-context) recursion.

NodeState solve_subtree(par::ExecContext& ctx, HierNode& node,
                        const Vector& initial_x,
                        const HierSolveOptions& options,
                        BatchUpdater& updater) {
  std::vector<NodeState> child_states;
  child_states.reserve(node.children.size());
  for (auto& child : node.children) {
    child_states.push_back(
        solve_subtree(ctx, *child, initial_x, options, updater));
  }
  return update_node(ctx, node, initial_x, std::move(child_states), options,
                     updater);
}

// ---------------------------------------------------------------------------
// Simulated recursion: one SimContext per node over its scheduled range.

NodeState solve_subtree_sim(simarch::SimMachine& machine, HierNode& node,
                            const Vector& initial_x,
                            const HierSolveOptions& options,
                            BatchUpdater& updater) {
  std::vector<NodeState> child_states;
  child_states.reserve(node.children.size());
  for (auto& child : node.children) {
    child_states.push_back(
        solve_subtree_sim(machine, *child, initial_x, options, updater));
  }
  // The node's team forms once all children are done: the virtual clocks of
  // its processors join at the max (children ran on disjoint sub-ranges).
  machine.sync_range(node.proc_first, node.proc_count);
  simarch::SimContext ctx(machine, node.proc_first, node.proc_count);
  return update_node(ctx, node, initial_x, std::move(child_states), options,
                     updater);
}

// ---------------------------------------------------------------------------
// Threaded recursion: subtrees with disjoint processor groups run as tasks
// on their group's first worker; the node's own update runs on a team over
// its whole range.
//
// Exception safety: a failure anywhere in a subtree (e.g. a bad constraint
// batch throwing phmse::Error inside a worker lane) must not deadlock the
// join or escape into the pool's worker loop.  Remote children run inside a
// TaskGroup, which always counts their arrival and carries the first
// exception back; an inline-child failure is held until the remote children
// have joined (they capture this frame by reference) and only then rethrown.

NodeState solve_subtree_threaded(par::ThreadPool& pool, HierNode& node,
                                 const Vector& initial_x,
                                 const HierSolveOptions& options) {
  std::vector<NodeState> child_states(node.children.size());

  // Children whose group starts at this node's first worker run inline (we
  // are already executing on that worker); the rest are dispatched to their
  // own group's first worker.
  std::vector<std::size_t> inline_children;
  std::vector<std::size_t> remote_children;
  for (std::size_t i = 0; i < node.children.size(); ++i) {
    if (node.children[i]->proc_first == node.proc_first) {
      inline_children.push_back(i);
    } else {
      remote_children.push_back(i);
    }
  }

  par::TaskGroup group(static_cast<int>(remote_children.size()));
  for (std::size_t i : remote_children) {
    HierNode* child = node.children[i].get();
    try {
      pool.submit(child->proc_first, [&, child, i] {
        group.run([&] {
          child_states[i] =
              solve_subtree_threaded(pool, *child, initial_x, options);
        });
      });
    } catch (...) {
      group.fail(std::current_exception());
    }
  }
  std::exception_ptr inline_error;
  try {
    for (std::size_t i : inline_children) {
      child_states[i] =
          solve_subtree_threaded(pool, *node.children[i], initial_x, options);
    }
  } catch (...) {
    inline_error = std::current_exception();
  }
  group.wait();  // join remote children before any unwind
  if (inline_error) std::rethrow_exception(inline_error);
  group.rethrow_any();

  par::TeamContext ctx(pool, node.proc_first, node.proc_count);
  BatchUpdater updater;
  return update_node(ctx, node, initial_x, std::move(child_states), options,
                     updater);
}

template <typename CycleFn>
HierSolveResult run_cycles(const Vector& initial_x,
                           const HierSolveOptions& options, CycleFn&& cycle) {
  PHMSE_CHECK(options.max_cycles >= 1, "need at least one cycle");
  HierSolveResult result;
  Vector current = initial_x;
  for (int c = 0; c < options.max_cycles; ++c) {
    result.state = cycle(current);
    ++result.cycles;
    result.last_cycle_delta = rms_delta(result.state.x, current);
    current = result.state.x;
    if (options.tolerance > 0.0 &&
        result.last_cycle_delta < options.tolerance) {
      result.converged = true;
      break;
    }
  }
  return result;
}

}  // namespace

HierSolveResult solve_hierarchical(par::ExecContext& ctx,
                                   Hierarchy& hierarchy,
                                   const Vector& initial_x,
                                   const HierSolveOptions& options) {
  PHMSE_CHECK(static_cast<Index>(initial_x.size()) == hierarchy.root().dim(),
              "initial state dimension mismatch");
  BatchUpdater updater;
  return run_cycles(initial_x, options, [&](const Vector& x0) {
    return solve_subtree(ctx, hierarchy.root(), x0, options, updater);
  });
}

SimSolveResult solve_hierarchical_sim(Hierarchy& hierarchy,
                                      const Vector& initial_x,
                                      const HierSolveOptions& options,
                                      simarch::SimMachine& machine) {
  PHMSE_CHECK(static_cast<Index>(initial_x.size()) == hierarchy.root().dim(),
              "initial state dimension mismatch");
  machine.reset();
  BatchUpdater updater;
  SimSolveResult out;
  out.result = run_cycles(initial_x, options, [&](const Vector& x0) {
    return solve_subtree_sim(machine, hierarchy.root(), x0, options, updater);
  });
  out.vtime = machine.elapsed();
  out.breakdown = machine.reported_profile();
  return out;
}

HierSolveResult solve_hierarchical_threaded(Hierarchy& hierarchy,
                                            const Vector& initial_x,
                                            const HierSolveOptions& options,
                                            par::ThreadPool& pool) {
  PHMSE_CHECK(static_cast<Index>(initial_x.size()) == hierarchy.root().dim(),
              "initial state dimension mismatch");
  return run_cycles(initial_x, options, [&](const Vector& x0) {
    NodeState state;
    par::TaskGroup group(1);
    try {
      pool.submit(hierarchy.root().proc_first, [&] {
        group.run([&] {
          state = solve_subtree_threaded(pool, hierarchy.root(), x0, options);
        });
      });
    } catch (...) {
      group.fail(std::current_exception());
    }
    group.join();  // waits, then rethrows a subtree failure on this thread
    return state;
  });
}

}  // namespace phmse::core
