#include "core/hier_solver.hpp"

namespace phmse::core {

using linalg::Vector;

namespace {

HierSolveResult to_result(SolvePlan&& plan, const PlanRunStats& stats) {
  HierSolveResult result;
  // The report's incremental counters always read "full run" here: a
  // transient plan has no checkpoint to reuse (see the header comment).
  result.report = plan.last_report();  // before the state is moved out
  result.state = plan.take_root_state();
  result.cycles = stats.cycles;
  result.last_cycle_delta = stats.last_cycle_delta;
  result.converged = stats.converged;
  return result;
}

}  // namespace

HierSolveResult solve_hierarchical(par::ExecContext& ctx,
                                   Hierarchy& hierarchy,
                                   const Vector& initial_x,
                                   const HierSolveOptions& options) {
  SolvePlan plan(hierarchy, options);
  const PlanRunStats stats = plan.run(ctx, initial_x);
  return to_result(std::move(plan), stats);
}

SimSolveResult solve_hierarchical_sim(Hierarchy& hierarchy,
                                      const Vector& initial_x,
                                      const HierSolveOptions& options,
                                      simarch::SimMachine& machine) {
  SolvePlan plan(hierarchy, options);
  const PlanRunStats stats = plan.run_sim(machine, initial_x);
  SimSolveResult out;
  out.result = to_result(std::move(plan), stats);
  out.vtime = machine.elapsed();
  out.breakdown = machine.reported_profile();
  return out;
}

HierSolveResult solve_hierarchical_threaded(Hierarchy& hierarchy,
                                            const Vector& initial_x,
                                            const HierSolveOptions& options,
                                            par::ThreadPool& pool) {
  SolvePlan plan(hierarchy, options);
  const PlanRunStats stats = plan.run_threaded(pool, initial_x);
  return to_result(std::move(plan), stats);
}

}  // namespace phmse::core
