// Compiled solve plan: the execute half of the plan/execute split.
//
// Everything about a hierarchical solve that does not depend on the
// observation *values* — the tree shape, which constraints land on which
// node, batch boundaries, the §4.3 processor schedule, and the scratch
// buffers every node needs — is captured once in a SolvePlan.  Executing
// the plan (serial, threaded, or simulated) then walks a flattened
// post-order node list through one shared update path, so repeated solves
// against fresh observations or noise realizations touch no setup code and,
// in the serial steady state, perform no heap allocation at all.
//
// The estimate is propagated leaf-to-root in post-order.  A leaf starts
// from the initial state vector slice and the spherical prior; an interior
// node concatenates its children's posterior states and assembles their
// covariances as diagonal blocks (the children are mutually uncorrelated
// until the node's own boundary-spanning constraints are applied); every
// node then runs the Fig.-1 update over its assigned constraints.  All
// three execution modes apply constraints in the same order and therefore
// produce bitwise-identical numerics.
#pragma once

#include <vector>

#include "core/hierarchy.hpp"
#include "core/solve_report.hpp"
#include "estimation/policy.hpp"
#include "estimation/state.hpp"
#include "estimation/update.hpp"
#include "parallel/exec.hpp"
#include "parallel/thread_pool.hpp"
#include "simarch/sim_context.hpp"

namespace phmse::core {

/// Options for the hierarchical solve; see est::SolveOptions for the
/// per-node update parameters.
struct HierSolveOptions {
  Index batch_size = 16;
  int max_cycles = 1;
  double tolerance = 0.0;
  /// See est::SolveOptions::prior_sigma.
  double prior_sigma = 1.0;
  Index symmetrize_every = 64;
  /// Degradation policy for numerically failing batches (DESIGN.md §9).
  /// The default (abort) throws on the first failure, exactly as solves
  /// always have.
  est::SolvePolicy policy;
};

/// Result: the root posterior plus cycle statistics.
struct HierSolveResult {
  est::NodeState state;
  int cycles = 0;
  double last_cycle_delta = 0.0;
  bool converged = false;
  /// Per-batch fault-tolerance diagnostics of the solve (all nodes).
  SolveReport report;
};

/// Result of a simulated run.
struct SimSolveResult {
  HierSolveResult result;
  /// Simulated work time (max virtual clock), seconds.
  double vtime = 0.0;
  /// Per-category time: max over processors (paper Tables 3-6 convention).
  perf::Profile breakdown;
};

/// Cycle statistics of one plan execution (the root posterior stays inside
/// the plan; read it with root_state()).
struct PlanRunStats {
  int cycles = 0;
  double last_cycle_delta = 0.0;
  bool converged = false;
};

/// A compiled, repeatedly-executable hierarchical solve.
///
/// The plan borrows `hierarchy` (tree shape, per-node constraint lists and
/// processor schedule) and owns every per-node workspace: the node's
/// persistent (x, C) estimate and a BatchUpdater whose scratch buffers are
/// pre-sized for the node's batch shape.  run()/run_sim()/run_threaded()
/// share one node-update code path and may be called any number of times;
/// after the first call every buffer is warm and a serial run() performs
/// zero heap allocations (tests/alloc_test.cpp pins this).
///
/// If the processor schedule on the hierarchy changes (assign_processors
/// with a new count), call refresh_schedule() before the next threaded or
/// simulated run.
class SolvePlan {
 public:
  SolvePlan(Hierarchy& hierarchy, const HierSolveOptions& options);

  SolvePlan(const SolvePlan&) = delete;
  SolvePlan& operator=(const SolvePlan&) = delete;
  SolvePlan(SolvePlan&&) = default;
  SolvePlan& operator=(SolvePlan&&) = default;

  /// Post-order solve on an arbitrary context.  `initial_x` is the
  /// full-molecule initial state (dimension 3 * root atoms).
  PlanRunStats run(par::ExecContext& ctx, const linalg::Vector& initial_x);

  /// Simulated parallel solve following the static schedule on `machine`
  /// (which is reset first); read machine.elapsed() and
  /// machine.reported_profile() afterwards for the virtual timing.
  PlanRunStats run_sim(simarch::SimMachine& machine,
                       const linalg::Vector& initial_x);

  /// Real-thread parallel solve following the static schedule on `pool`.
  ///
  /// Exception safety: a failure anywhere in the tree (e.g. a bad
  /// constraint batch throwing phmse::Error on a worker lane) propagates to
  /// the caller as that same exception — no deadlocked join, no
  /// std::terminate — and `pool` remains usable for subsequent solves.
  PlanRunStats run_threaded(par::ThreadPool& pool,
                            const linalg::Vector& initial_x);

  /// Re-derives the inline/remote child partition from the hierarchy's
  /// current proc_first/proc_count values.
  void refresh_schedule();

  /// The root posterior of the most recent run.
  const est::NodeState& root_state() const { return nodes_.back().state; }

  /// Moves the root posterior out (for callers that outlive the plan).
  est::NodeState take_root_state() { return std::move(nodes_.back().state); }

  /// Per-category time of the most recent run_threaded(), summed over all
  /// node teams.
  const perf::Profile& threaded_profile() const { return threaded_profile_; }

  /// Fault-tolerance diagnostics of the most recent run (any executor):
  /// every node's batch tally aggregated after the executor has joined.
  /// With the default abort policy a completed run is always clean() — a
  /// failing batch would have thrown instead.
  const SolveReport& last_report() const { return report_; }

  const HierSolveOptions& options() const { return options_; }
  Hierarchy& hierarchy() { return *hierarchy_; }
  const Hierarchy& hierarchy() const { return *hierarchy_; }

 private:
  /// One hierarchy node's compiled workspace.  `children` and the
  /// inline/remote partition index into nodes_ (which is stored post-order,
  /// so children always precede their parent).
  struct NodeWork {
    HierNode* node = nullptr;
    est::NodeState state;
    est::BatchUpdater updater;
    std::vector<std::size_t> children;
    std::vector<std::size_t> inline_children;
    std::vector<std::size_t> remote_children;
    perf::Profile profile;
    /// Batch tally of the current run; only this node's executor lane
    /// writes it, so no synchronization is needed until the post-join
    /// aggregation into the plan's SolveReport.
    est::NodeReport report;
  };

  std::size_t build_(HierNode& node);
  void assemble_from_children_(par::ExecContext& ctx, NodeWork& w);
  void update_node_(par::ExecContext& ctx, NodeWork& w,
                    const linalg::Vector& x0);
  void run_threaded_node_(par::ThreadPool& pool, std::size_t index,
                          const linalg::Vector& x0);
  template <typename PassFn>
  PlanRunStats run_cycles_(const linalg::Vector& initial_x, PassFn&& pass);

  Hierarchy* hierarchy_ = nullptr;
  HierSolveOptions options_;
  std::vector<NodeWork> nodes_;  // post-order; root last
  linalg::Vector prev_x_;        // previous cycle's root state
  perf::Profile threaded_profile_;
  SolveReport report_;           // aggregated after every run
};

}  // namespace phmse::core
