// Compiled solve plan: the execute half of the plan/execute split.
//
// Everything about a hierarchical solve that does not depend on the
// observation *values* — the tree shape, which constraints land on which
// node, batch boundaries, the §4.3 processor schedule, and the scratch
// buffers every node needs — is captured once in a SolvePlan.  Executing
// the plan (serial, threaded, or simulated) then walks a flattened
// post-order node list through one shared update path, so repeated solves
// against fresh observations or noise realizations touch no setup code and,
// in the serial steady state, perform no heap allocation at all.
//
// The estimate is propagated leaf-to-root in post-order.  A leaf starts
// from the initial state vector slice and the spherical prior; an interior
// node concatenates its children's posterior states and assembles their
// covariances as diagonal blocks (the children are mutually uncorrelated
// until the node's own boundary-spanning constraints are applied); every
// node then runs the Fig.-1 update over its assigned constraints.  All
// three execution modes apply constraints in the same order and therefore
// produce bitwise-identical numerics.
// Incremental re-solve (DESIGN.md §11): the persistent per-node states
// double as checkpoints.  Engine::set_observations marks the nodes whose
// observed values actually changed; run_incremental() then re-executes only
// those nodes, any leaf whose initial-state slice changed bitwise, and
// their ancestor paths, while every clean subtree's posterior is reused
// in place.  The result is bitwise identical to a from-scratch run on all
// three executors (tests/incremental_property_test.cpp pins this).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/hierarchy.hpp"
#include "core/solve_report.hpp"
#include "estimation/policy.hpp"
#include "estimation/state.hpp"
#include "estimation/update.hpp"
#include "parallel/exec.hpp"
#include "parallel/thread_pool.hpp"
#include "simarch/sim_context.hpp"

namespace phmse::core {

/// Options for the hierarchical solve; see est::SolveOptions for the
/// per-node update parameters.
struct HierSolveOptions {
  Index batch_size = 16;
  int max_cycles = 1;
  double tolerance = 0.0;
  /// See est::SolveOptions::prior_sigma.
  double prior_sigma = 1.0;
  Index symmetrize_every = 64;
  /// Degradation policy for numerically failing batches (DESIGN.md §9).
  /// The default (abort) throws on the first failure, exactly as solves
  /// always have.
  est::SolvePolicy policy;
  /// Kernel backend for every node of the solve: "ref", "blocked", "simd",
  /// or empty for the process default (PHMSE_BACKEND, else best available).
  /// Resolved once at plan build — a compiled plan never mixes backends —
  /// and recorded in SolveReport::backend.  Unknown names fail fast at
  /// compile with the valid names and this CPU's support (backend.hpp).
  std::string backend;
};

/// Result: the root posterior plus cycle statistics.
struct HierSolveResult {
  est::NodeState state;
  int cycles = 0;
  double last_cycle_delta = 0.0;
  bool converged = false;
  /// Per-batch fault-tolerance diagnostics of the solve (all nodes).
  SolveReport report;
};

/// Result of a simulated run.
struct SimSolveResult {
  HierSolveResult result;
  /// Simulated work time (max virtual clock), seconds.
  double vtime = 0.0;
  /// Per-category time: max over processors (paper Tables 3-6 convention).
  perf::Profile breakdown;
};

/// One changed observation for try_run_lowrank: the constraint's owning
/// node in the compiled hierarchy, its index within that node's constraint
/// list (sweep order), and the observed value the last completed run
/// applied (old) next to the currently bound one (new).
struct LowRankChange {
  const HierNode* node = nullptr;
  Index index = 0;
  double old_observed = 0.0;
  double new_observed = 0.0;
};

/// Cycle statistics of one plan execution (the root posterior stays inside
/// the plan; read it with root_state()).
struct PlanRunStats {
  int cycles = 0;
  double last_cycle_delta = 0.0;
  bool converged = false;
  /// True when the run executed the incremental dirty schedule (a valid
  /// checkpoint existed and the run was requested via run*_incremental).
  bool incremental = false;
  /// True when the run was a low-rank perturbative update of the root
  /// posterior (try_run_lowrank) instead of any tree traversal.
  bool low_rank = false;
  /// Node executions this run: the cycle-1 dirty path plus every node on
  /// later cycles.  A full run counts every node once per cycle.
  long nodes_recomputed = 0;
  /// Cycle-1 nodes served from their checkpoint instead of re-executing.
  long nodes_reused = 0;
};

/// A compiled, repeatedly-executable hierarchical solve.
///
/// The plan borrows `hierarchy` (tree shape, per-node constraint lists and
/// processor schedule) and owns every per-node workspace: the node's
/// persistent (x, C) estimate and a BatchUpdater whose scratch buffers are
/// pre-sized for the node's batch shape.  run()/run_sim()/run_threaded()
/// share one node-update code path and may be called any number of times;
/// after the first call every buffer is warm and a serial run() performs
/// zero heap allocations (tests/alloc_test.cpp pins this).
///
/// If the processor schedule on the hierarchy changes (assign_processors
/// with a new count), call refresh_schedule() before the next threaded or
/// simulated run.
class SolvePlan {
 public:
  SolvePlan(Hierarchy& hierarchy, const HierSolveOptions& options);

  SolvePlan(const SolvePlan&) = delete;
  SolvePlan& operator=(const SolvePlan&) = delete;
  SolvePlan(SolvePlan&&) = default;
  SolvePlan& operator=(SolvePlan&&) = default;

  /// Post-order solve on an arbitrary context.  `initial_x` is the
  /// full-molecule initial state (dimension 3 * root atoms).
  PlanRunStats run(par::ExecContext& ctx, const linalg::Vector& initial_x);

  /// Simulated parallel solve following the static schedule on `machine`
  /// (which is reset first); read machine.elapsed() and
  /// machine.reported_profile() afterwards for the virtual timing.
  PlanRunStats run_sim(simarch::SimMachine& machine,
                       const linalg::Vector& initial_x);

  /// Real-thread parallel solve following the static schedule on `pool`.
  ///
  /// Exception safety: a failure anywhere in the tree (e.g. a bad
  /// constraint batch throwing phmse::Error on a worker lane) propagates to
  /// the caller as that same exception — no deadlocked join, no
  /// std::terminate — and `pool` remains usable for subsequent solves.
  PlanRunStats run_threaded(par::ThreadPool& pool,
                            const linalg::Vector& initial_x);

  /// Incremental variants of run / run_sim / run_threaded (DESIGN.md §11).
  ///
  /// When the plan holds a valid checkpoint — the previous run completed in
  /// a single cycle — only the dirty nodes (observations changed via
  /// mark_constraint_dirty, or a leaf's `initial_x` slice changed bitwise)
  /// and their ancestor paths are re-executed; every other node's persisted
  /// posterior is reused in place and its saved sweep tally is replayed
  /// into the report.  Without a valid checkpoint the call silently
  /// degrades to a full run (PlanRunStats::incremental stays false).
  /// Either way the posterior and the report are bitwise identical to the
  /// corresponding full run.
  PlanRunStats run_incremental(par::ExecContext& ctx,
                               const linalg::Vector& initial_x);
  PlanRunStats run_sim_incremental(simarch::SimMachine& machine,
                                   const linalg::Vector& initial_x);
  PlanRunStats run_threaded_incremental(par::ThreadPool& pool,
                                        const linalg::Vector& initial_x);

  /// Marks `node`'s compiled workspace observation-dirty: the next
  /// incremental run re-executes it and its ancestor path.  `node` must
  /// belong to the hierarchy this plan was compiled from.
  void mark_constraint_dirty(const HierNode* node);

  /// Scales every constraint's noise variance for subsequent runs — the
  /// annealing seam (DESIGN.md §14): refine::Refiner sets T^2 here to
  /// inflate observation sigmas by a temperature T, then restores 1.0.
  /// Changing the scale (bitwise) invalidates the §11 checkpoint: the
  /// persisted states were produced under a different noise model, so an
  /// incremental or low-rank shortcut over them would mix models.  Setting
  /// the current value again is a no-op.  Must be finite and > 0.
  void set_variance_scale(double scale);
  double variance_scale() const { return variance_scale_; }

  /// Low-rank perturbative re-solve (DESIGN.md §11; the "fast Kalman filter
  /// with low-rank perturbative approach" trick from PAPERS.md).  Instead of
  /// re-executing the dirty path — whose root-ward nodes re-apply EVERY one
  /// of their constraint batches at O(n^2) per constraint — the k changed
  /// observations are folded directly into the checkpointed root posterior
  /// as one rank-k mean shift.  Retracting a measurement and re-adding it
  /// with the same Jacobian and noise cancels exactly in information space,
  /// and the (I - K H) damping chain of every batch applied after it
  /// telescopes to C_post, so the sweep's sensitivity to one observed value
  /// is exactly
  ///
  ///   dx = C_root H_j^T R_j^{-1} (z_new - z_old),   C unchanged,
  ///
  /// with H_j the constraint's ARCHIVED row (BatchUpdater::applied_row) —
  /// the original linearization, embedded lower in the tree.  Cost is
  /// O(k n) total, no factorization.  For nonlinear constraints the frozen
  /// linearization makes the result a first-order (EKF) approximation, NOT
  /// bitwise-exact — callers who need the bitwise guarantee use
  /// run_incremental instead.
  ///
  /// Preconditions: a single-cycle checkpoint exists, `initial_x` is
  /// bitwise the checkpoint's initial state, every change resolves to a
  /// plan node with an archived applied row, the inputs are finite, and —
  /// under an outlier-gating policy — no change is large enough that the
  /// exact path might gate it.  On any precondition failure the function
  /// returns false and the caller must fall back to run_incremental — the
  /// changed nodes (and the root) remain marked dirty, so the fallback
  /// rebuilds every state the attempt may have touched.
  bool try_run_lowrank(par::ExecContext& ctx, const linalg::Vector& initial_x,
                       std::span<const LowRankChange> changes,
                       PlanRunStats* stats);

  /// True when the persisted per-node states form a reusable checkpoint
  /// (the last run completed successfully in a single cycle).  Cleared at
  /// the start of every run — an exception mid-run leaves mixed states —
  /// and re-established when the run completes.
  bool has_checkpoint() const { return has_checkpoint_; }

  /// Binds a cooperative cancellation token observed by every executor
  /// (DESIGN.md §13): the passes poll it at node boundaries, the batch
  /// sweep polls it between batches, and the threaded recursion's task
  /// groups check it before entering queued subtree tasks.  A poll that
  /// observes the stop throws par::CancelledError out of the run — after
  /// every lane has joined — and the abort is transactional by
  /// construction: the checkpoint was already invalidated at run start and
  /// the dirty marks drain only on completion, so the plan stays reusable
  /// and the NEXT exact solve re-executes every node, bitwise identical to
  /// a run that was never cancelled (the per-batch update itself commits
  /// all-or-nothing, so no node state is ever torn).  The aborted run's
  /// report_ records cancelled + where (last_report()).  Null detaches; the
  /// token must outlive every run started while it is bound.
  void bind_cancel(const par::CancelToken* token) { cancel_ = token; }
  const par::CancelToken* cancel_token() const { return cancel_; }

  /// Nodes currently marked observation-dirty (before ancestor
  /// propagation, which happens when the next incremental run starts).
  std::size_t num_dirty_nodes() const;

  std::size_t num_nodes() const { return nodes_.size(); }

  /// Re-derives the inline/remote child partition from the hierarchy's
  /// current proc_first/proc_count values.  Checkpoints stay valid: the
  /// schedule changes which lane executes a node, never its numerics.
  void refresh_schedule();

  /// The root posterior of the most recent run.
  const est::NodeState& root_state() const { return nodes_.back().state; }

  /// Moves the root posterior out (for callers that outlive the plan).
  est::NodeState take_root_state() { return std::move(nodes_.back().state); }

  /// Per-category time of the most recent run_threaded(), summed over all
  /// node teams.
  const perf::Profile& threaded_profile() const { return threaded_profile_; }

  /// Fault-tolerance diagnostics of the most recent run (any executor):
  /// every node's batch tally aggregated after the executor has joined.
  /// With the default abort policy a completed run is always clean() — a
  /// failing batch would have thrown instead.
  const SolveReport& last_report() const { return report_; }

  const HierSolveOptions& options() const { return options_; }
  Hierarchy& hierarchy() { return *hierarchy_; }
  const Hierarchy& hierarchy() const { return *hierarchy_; }

 private:
  static constexpr std::size_t kNoParent = static_cast<std::size_t>(-1);

  /// One hierarchy node's compiled workspace.  `children` and the
  /// inline/remote partition index into nodes_ (which is stored post-order,
  /// so children always precede their parent).
  struct NodeWork {
    HierNode* node = nullptr;
    est::NodeState state;
    est::BatchUpdater updater;
    std::vector<std::size_t> children;
    std::vector<std::size_t> inline_children;
    std::vector<std::size_t> remote_children;
    /// Post-order index of the parent node; kNoParent for the root.  Used
    /// to propagate dirtiness up the ancestor path in one ascending pass.
    std::size_t parent = kNoParent;
    perf::Profile profile;
    /// Batch tally of the current run; only this node's executor lane
    /// writes it, so no synchronization is needed until the post-join
    /// aggregation into the plan's SolveReport.
    est::NodeReport report;
    /// Tally of this node's most recent executed sweep (one cycle).  When
    /// an incremental run skips the node, this saved tally is replayed into
    /// `report` — determinism guarantees a re-execution would tally
    /// identically, so the aggregated SolveReport stays bitwise equal to a
    /// from-scratch solve.
    est::NodeReport sweep_report;
  };

  std::size_t build_(HierNode& node);
  void assemble_from_children_(par::ExecContext& ctx, NodeWork& w);
  void assemble_dirty_children_(par::ExecContext& ctx, NodeWork& w);
  void update_node_(par::ExecContext& ctx, NodeWork& w,
                    const linalg::Vector& x0);
  void run_threaded_node_(par::ThreadPool& pool, std::size_t index,
                          const linalg::Vector& x0);
  void prepare_schedule_(const linalg::Vector& initial_x, bool incremental);
  PlanRunStats run_impl_(par::ExecContext& ctx, const linalg::Vector& initial_x,
                         bool want_incremental);
  PlanRunStats run_sim_impl_(simarch::SimMachine& machine,
                             const linalg::Vector& initial_x,
                             bool want_incremental);
  PlanRunStats run_threaded_impl_(par::ThreadPool& pool,
                                  const linalg::Vector& initial_x,
                                  bool want_incremental);
  template <typename PassFn>
  PlanRunStats run_cycles_(const linalg::Vector& initial_x,
                           bool want_incremental, PassFn&& pass);

  Hierarchy* hierarchy_ = nullptr;
  HierSolveOptions options_;
  /// Kernel dispatch table every node's updater calls through; resolved
  /// from options_.backend at plan build (registry-static, never null).
  const linalg::Backend* backend_ = nullptr;
  std::vector<NodeWork> nodes_;  // post-order; root last
  /// Post-order index of each hierarchy node, for mark_constraint_dirty.
  std::unordered_map<const HierNode*, std::size_t> node_index_;
  /// Observation-dirty flags fed by mark_constraint_dirty; drained when a
  /// run completes.  Preallocated — marking and clearing never allocate.
  std::vector<unsigned char> dirty_;
  /// Cycle-1 execution mask of the current run: dirty nodes, changed
  /// leaves, and their ancestor paths (everything on a full run).  Written
  /// by prepare_schedule_ before the executor starts, read-only during the
  /// pass, so worker lanes race with nothing.
  std::vector<unsigned char> exec_;
  /// True while the executor runs cycle 1 of an incremental schedule; the
  /// passes skip unmasked nodes only in that window.  Written between
  /// pass() calls on the coordinating thread (the pool submit/join pair
  /// orders it for worker lanes).
  bool cycle_incremental_ = false;
  bool has_checkpoint_ = false;
  /// Observation-variance multiplier every node's updater applies (see
  /// set_variance_scale); 1.0 = the exact noise model.
  double variance_scale_ = 1.0;
  /// True while a low-rank attempt has partially mutated the root state
  /// (set on entry, cleared on success).  A subsequent low-rank call
  /// refuses until an exact run has rebuilt the root.
  bool lowrank_in_progress_ = false;
  /// Cooperative cancellation token (see bind_cancel); null = none.
  const par::CancelToken* cancel_ = nullptr;
  /// The initial state of the last completed single-cycle run; leaves whose
  /// slice differs bitwise from the incoming initial_x are re-executed.
  linalg::Vector last_initial_;
  linalg::Vector prev_x_;        // previous cycle's root state
  linalg::Vector lowrank_dx_;    // try_run_lowrank mean-shift scratch
  perf::Profile threaded_profile_;
  SolveReport report_;           // aggregated after every run
};

}  // namespace phmse::core
