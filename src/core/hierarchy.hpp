// The structure hierarchy (paper Section 3).
//
// A hierarchy node owns a contiguous range of global atom ids; its children
// partition that range.  Constraints are attached to the lowest node whose
// range contains all their atoms (src/core/assign.hpp), and the estimate is
// propagated leaf-to-root in post-order: a node's children are updated
// first, their posteriors become the node's block-diagonal prior, then the
// node applies its own (boundary-spanning) constraints.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "constraints/set.hpp"
#include "molecule/ribo30s.hpp"
#include "molecule/rna_helix.hpp"
#include "support/types.hpp"

namespace phmse::core {

/// One node of the structure hierarchy.
struct HierNode {
  std::string name;
  Index atom_begin = 0;
  Index atom_end = 0;
  std::vector<std::unique_ptr<HierNode>> children;

  /// Constraints applied at this node (assigned, not inherited).
  cons::ConstraintSet constraints;

  /// Work estimates (filled by estimate_work).
  double own_work = 0.0;
  double subtree_work = 0.0;

  /// Processor assignment (filled by assign_processors).
  int proc_first = 0;
  int proc_count = 1;

  bool is_leaf() const { return children.empty(); }
  Index num_atoms() const { return atom_end - atom_begin; }
  Index dim() const { return 3 * num_atoms(); }
};

/// An owning tree of HierNodes with whole-tree queries.
class Hierarchy {
 public:
  explicit Hierarchy(std::unique_ptr<HierNode> root);

  HierNode& root() { return *root_; }
  const HierNode& root() const { return *root_; }

  Index num_nodes() const;
  Index num_leaves() const;
  Index depth() const;
  Index total_constraints() const;

  /// Checks structural invariants: every node's children are ordered and
  /// exactly partition its atom range; throws phmse::Error on violation.
  void validate() const;

  /// Indented tree printout (the shape of the paper's Figs. 2 and 4).
  std::string describe(bool show_constraints = true) const;

  /// Visits nodes in post-order (children before parents).
  template <typename F>
  void for_each_post_order(F&& f) {
    post_order(*root_, f);
  }
  template <typename F>
  void for_each_post_order(F&& f) const {
    post_order_const(*root_, f);
  }

 private:
  template <typename F>
  static void post_order(HierNode& node, F& f) {
    for (auto& child : node.children) post_order(*child, f);
    f(node);
  }
  template <typename F>
  static void post_order_const(const HierNode& node, F& f) {
    for (const auto& child : node.children) post_order_const(*child, f);
    f(node);
  }

  std::unique_ptr<HierNode> root_;
};

/// Builds the paper's Fig.-2 decomposition of an RNA double helix:
/// recursive bisection into sub-helices down to base pairs, then base pair
/// -> two bases -> {backbone, sidechain} leaves.
Hierarchy build_helix_hierarchy(const mol::HelixModel& model);

/// Builds the paper's Fig.-4-style decomposition of the 30S model: root ->
/// spatial domains -> segments (high branching factor).
Hierarchy build_ribo_hierarchy(const mol::Ribo30sModel& model);

/// A single-node ("flat") hierarchy over `num_atoms` atoms.
Hierarchy build_flat_hierarchy(Index num_atoms);

/// The paper's "simple and non-optimal recursive bisection" automatic
/// decomposition of a flat problem: halve the atom range down to leaves of
/// at most `max_leaf_atoms`.
Hierarchy build_bisection_hierarchy(Index num_atoms, Index max_leaf_atoms);

/// Bottom-up automatic decomposition (paper Section 5): the caller gives
/// the leaf atom ranges (e.g. residues); consecutive leaves are greedily
/// grouped into a binary tree that minimizes the number of constraints
/// forced above each merge (constraints crossing a merge boundary).
Hierarchy build_bottom_up_hierarchy(
    const std::vector<std::pair<Index, Index>>& leaf_ranges,
    const cons::ConstraintSet& constraints);

}  // namespace phmse::core
