// Automatic structure decomposition by graph partitioning (paper
// Section 5): "We can think of the atoms of the molecule as nodes in a
// graph and constraints between atoms as edges between the nodes.  A
// heuristic to partition the graph into a small number of loosely coupled
// subgraphs will lead to an efficient decomposition of the molecular
// structure."
//
// This module implements that proposal: recursive bisection of the
// constraint graph with BFS-grown initial halves refined by
// Fiduccia–Mattheyses-style moves, minimizing the weight of constraints
// cut at each level (cut constraints are exactly the ones forced above the
// split in the hierarchy).
//
// Because hierarchy nodes own contiguous atom ranges, the partitioner also
// produces an atom *reordering*: atoms are renumbered so every recursive
// part is contiguous.  Remapping helpers translate topologies, constraint
// sets and state vectors between the original and partitioned orders.
#pragma once

#include <vector>

#include "constraints/set.hpp"
#include "core/hierarchy.hpp"
#include "molecule/topology.hpp"

namespace phmse::core {

/// Options for the recursive graph bisection.
struct GraphPartitionOptions {
  /// Stop splitting below this many atoms.
  Index max_leaf_atoms = 16;
  /// Fiduccia–Mattheyses refinement passes per bisection.
  int refinement_passes = 6;
  /// Allowed imbalance: each side holds within this factor of half.
  double balance_slack = 0.15;
};

/// A decomposition in a permuted atom numbering.
struct Decomposition {
  /// order[new_id] = old_id (the permutation applied to atoms).
  std::vector<Index> order;
  /// rank[old_id] = new_id (the inverse permutation).
  std::vector<Index> rank;
  /// The hierarchy, expressed over the NEW atom ids.
  Hierarchy hierarchy;
};

/// Decomposes `num_atoms` atoms by recursively bisecting the constraint
/// graph of `constraints` (which use ORIGINAL atom ids).
Decomposition decompose_by_graph_partition(
    Index num_atoms, const cons::ConstraintSet& constraints,
    const GraphPartitionOptions& options = {});

/// Rewrites constraint atom ids through rank (old -> new).
cons::ConstraintSet remap_constraints(const cons::ConstraintSet& set,
                                      const std::vector<Index>& rank);

/// Reorders a topology so new atom i is the old atom order[i].
mol::Topology remap_topology(const mol::Topology& topology,
                             const std::vector<Index>& order);

/// Permutes a state vector from the original layout into the new one.
linalg::Vector remap_state(const linalg::Vector& state,
                           const std::vector<Index>& order);

/// Permutes a state vector from the new layout back to the original.
linalg::Vector unmap_state(const linalg::Vector& state,
                           const std::vector<Index>& order);

/// Total weight of constraints whose atoms straddle the top-level split of
/// `hierarchy` — the quantity the partitioner minimizes; exposed for tests
/// and the decomposition-quality benchmark.
Index count_cut_constraints(const Hierarchy& hierarchy,
                            const cons::ConstraintSet& remapped);

}  // namespace phmse::core
