// Dynamic processor re-assignment (paper Section 5, "Further Work").
//
// The static schedule loses efficiency when a node's processors cannot be
// divided evenly among equal-work subtrees (the paper's Helix dips at
// non-power-of-2 processor counts).  The paper proposes "dynamic
// reassignment of processors to nodes by periodic global synchronization".
// This module implements that proposal in its simplest form, on the
// simulated machine: the tree is processed in depth waves (deepest level
// first); inside a wave every node receives a contiguous processor group
// sized proportionally to its estimated work — unconstrained by subtree
// nesting — and all processors resynchronize globally between waves.
//
// This trades extra global barriers (and, on a real DASH, data migration)
// for freedom in processor placement; bench/ablation_dynamic compares it
// with the static schedule.
#pragma once

#include "core/hier_solver.hpp"

namespace phmse::core {

/// Simulated hierarchical solve with per-wave dynamic processor groups.
/// estimate_work() must have been called (group sizes follow own_work);
/// the static schedule, if any, is ignored.
SimSolveResult solve_hierarchical_dynamic_sim(Hierarchy& hierarchy,
                                              const linalg::Vector& initial_x,
                                              const HierSolveOptions& options,
                                              simarch::SimMachine& machine);

}  // namespace phmse::core
