#include "core/solve_report.hpp"

#include <sstream>

namespace phmse::core {

void SolveReport::merge(std::size_t node, Index atom_begin, Index atom_end,
                        const est::NodeReport& report) {
  batches += report.batches;
  ok += report.ok;
  retried += report.retried;
  gated += report.gated;
  skipped += report.skipped;
  failed += report.failed;
  if (report.max_attempts > max_attempts) max_attempts = report.max_attempts;
  if (report.max_regularization > max_regularization) {
    max_regularization = report.max_regularization;
  }
  for (const est::BatchIncident& inc : report.incidents) {
    incidents.push_back({node, atom_begin, atom_end, inc.batch, inc.outcome});
  }
}

std::string SolveReport::summary() const {
  std::ostringstream os;
  os << batches << " batches: " << ok << " ok";
  if (retried > 0) {
    os << ", " << retried << " retried (max " << max_attempts << " attempts)";
  }
  if (gated > 0) os << ", " << gated << " gated";
  if (skipped > 0) os << ", " << skipped << " skipped";
  if (failed > 0) os << ", " << failed << " failed";
  if (incremental) {
    os << "; incremental: " << nodes_reused << " nodes reused, "
       << nodes_recomputed << " recomputed";
    if (low_rank) os << " (low-rank root update)";
  }
  if (cancelled) {
    os << "; " << (cancelled_by_deadline ? "deadline expired" : "cancelled");
    if (cancelled_atom_begin >= 0 && cancelled_atom_end >= 0) {
      os << " at atoms [" << cancelled_atom_begin << ", "
         << cancelled_atom_end << ")";
    }
    if (cancelled_batch >= 0) os << " batch " << cancelled_batch;
  }
  return os.str();
}

}  // namespace phmse::core
