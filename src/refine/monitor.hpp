// Controller-side convergence monitoring for the refinement loop
// (DESIGN.md §14).
//
// The Refiner decides convergence, divergence and restarts from summary
// statistics of each iterate: the total constraint chi-squared and RMS
// residual of the candidate structure, and the RMS step the linearization
// point took.  Everything here runs on the controlling thread in one fixed
// traversal order (the hierarchy's post-order, each node's constraint list
// in sweep order), so the numbers — and therefore every control decision
// derived from them — are bitwise identical no matter which executor ran
// the solves.
//
// The monitor always evaluates against the UN-inflated noise model (each
// constraint's own variance): annealing rescales what the solver trusts,
// never what progress is measured against.
#pragma once

#include "core/hierarchy.hpp"
#include "linalg/matrix.hpp"
#include "support/types.hpp"

namespace phmse::refine {

/// Residual summary of one candidate structure against every constraint in
/// the hierarchy.
struct Residuals {
  /// Sum over constraints of (z - h(x))^2 / variance.
  double chi2 = 0.0;
  /// Root-mean-square of (z - h(x)) (observation units).
  double rms = 0.0;
  /// Constraints evaluated.
  long count = 0;
};

/// Evaluates every constraint of `hierarchy` at the full-molecule state `x`
/// (coordinate 3 * atom + axis, the root/initial_x ordering).  Reads the
/// currently bound observed values — the same ones a solve would apply.
Residuals measure(const core::Hierarchy& hierarchy, const linalg::Vector& x);

/// RMS elementwise difference of two equal-length state vectors (the
/// step-norm entry of the refine trajectory).
double rms_step(const linalg::Vector& a, const linalg::Vector& b);

}  // namespace phmse::refine
