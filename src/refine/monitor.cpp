#include "refine/monitor.hpp"

#include <array>
#include <cmath>

#include "constraints/constraint.hpp"
#include "support/check.hpp"

namespace phmse::refine {

Residuals measure(const core::Hierarchy& hierarchy, const linalg::Vector& x) {
  PHMSE_CHECK(static_cast<Index>(x.size()) == hierarchy.root().dim(),
              "measure: state dimension does not match the hierarchy");
  Residuals out;
  double sumsq = 0.0;
  hierarchy.for_each_post_order([&](const core::HierNode& node) {
    for (const cons::Constraint& c : node.constraints.all()) {
      const Index na = cons::arity(c.kind);
      std::array<mol::Vec3, 4> pos{};
      for (Index k = 0; k < na; ++k) {
        const auto i =
            static_cast<std::size_t>(3 * c.atoms[static_cast<std::size_t>(k)]);
        pos[static_cast<std::size_t>(k)] = {x[i], x[i + 1], x[i + 2]};
      }
      const double r = c.observed - cons::evaluate(c, pos);
      sumsq += r * r;
      out.chi2 += (r * r) / c.variance;
      ++out.count;
    }
  });
  out.rms =
      out.count > 0 ? std::sqrt(sumsq / static_cast<double>(out.count)) : 0.0;
  return out;
}

double rms_step(const linalg::Vector& a, const linalg::Vector& b) {
  PHMSE_CHECK(a.size() == b.size(),
              "rms_step: state dimension changed between iterations");
  if (a.empty()) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return std::sqrt(sum / static_cast<double>(a.size()));
}

}  // namespace phmse::refine
