// refine::Refiner — the outer-loop refinement subsystem (DESIGN.md §14).
//
// The paper's single sequential EKF-style sweep linearizes every constraint
// at the initial geometry; from a poor start the Jacobians point the wrong
// way and one pass diverges.  The Refiner drives ONE compiled engine::Plan
// through outer iterations, exploiting the plan/execute split: each
// iteration is just another plan execution, re-linearized by feeding the
// previous root posterior back as the next initial_x (the re-linearization
// seam documented on Plan::solve), so the controller adds no per-iteration
// compile or allocation beyond its own monitoring.
//
// Modes:
//   single_pass — exactly one plan execution, bitwise identical to calling
//                 Plan::solve directly; the Refiner only adds monitoring.
//   iterated    — Gauss-Newton-style re-linearize/re-solve with optional
//                 step damping, convergence and divergence detection
//                 (following the iterated smoothers of Yaghoobi et al.,
//                 PAPERS.md).
//   annealed    — a temperature schedule inflates observation sigmas by
//                 T_k (variance x T_k^2) and decays T toward 1, flattening
//                 the early posterior so a bad basin can be escaped; when
//                 progress plateaus or diverges, the loop restarts from a
//                 seeded deterministic perturbation of the best iterate
//                 (after Altman's simulated-annealing structure
//                 calculation, PAPERS.md).
//
// Determinism: every solve is bitwise identical across serial/threaded/sim
// executors (the project invariant), and every control decision — chi^2
// monitoring, damping, temperature schedule, restart perturbations from one
// seeded Rng consumed in controller order — is executor-independent
// arithmetic on the controlling thread.  Identical RefineOptions (including
// seed) therefore produce bitwise-identical trajectories and posteriors on
// all three executors (tests/refine_determinism_test.cpp pins this).
//
// Deadlines (DESIGN.md §13): RefineOptions carries the same wall-clock
// budget / external token controls as engine::SolveOptions.  The token is
// polled between iterations and bound through every inner solve; once at
// least one iteration has completed, expiry DEGRADES the call to the best
// iterate so far (RefineReport::deadline_degraded) instead of erroring —
// an any-time answer — while expiry before the first iterate completes
// throws exactly like a plain solve.
#pragma once

#include <cstdint>

#include "engine/engine.hpp"
#include "parallel/cancel.hpp"

namespace phmse::refine {

/// Outer-loop strategy; see the file comment.
enum class Mode : int { kSinglePass = 0, kIterated, kAnnealed };

/// "single_pass", "iterated" or "annealed".
const char* mode_name(Mode mode);

/// Parses a mode name (exact match); throws phmse::Error on anything else.
Mode mode_from_name(const std::string& name);

/// Controller parameters.  Validated by the Refiner constructor.
struct RefineOptions {
  Mode mode = Mode::kSinglePass;

  /// Outer-iteration cap (>= 1); single_pass always runs exactly one.
  int max_iterations = 16;
  /// Converged when an iteration's RMS step falls below this (0 disables;
  /// annealed mode additionally requires the temperature to have reached 1).
  double step_tolerance = 1e-6;
  /// Converged when an iterate's total chi-squared falls to or below this
  /// (0 disables); measured against the un-inflated noise model.
  double chi2_tolerance = 0.0;
  /// Fraction of the Gauss-Newton step the linearization point takes each
  /// iteration, in (0, 1].  1 re-linearizes at the full posterior (and is
  /// applied without arithmetic, keeping the iterate bitwise the solve's).
  double damping = 1.0;
  /// Divergence detection: an iterate whose chi-squared exceeds this
  /// multiple of the best seen (or is non-finite) stops an iterated loop
  /// (RefineReport::diverged; the best iterate is still returned) and
  /// triggers a restart in an annealed one.  Must be > 1.
  double divergence_ratio = 25.0;
  /// Consecutive non-improving iterations tolerated before the loop stops
  /// (iterated) or restarts (annealed).  >= 1.
  int patience = 4;

  /// Annealed mode: starting sigma-inflation temperature (>= 1).
  double initial_temperature = 8.0;
  /// Annealed mode: T <- max(1, T * cooling) after each iteration; in
  /// (0, 1).
  double cooling = 0.5;
  /// Annealed mode: at base temperature, a relative chi-squared change
  /// below this counts as a plateau; two consecutive plateau iterations
  /// trigger a restart while any remain.  >= 0.
  double plateau_ratio = 1e-3;
  /// Annealed mode: seeded perturbation restarts allowed (>= 0).
  int max_restarts = 2;
  /// Annealed mode: per-coordinate Gaussian sigma (Angstroms) of a restart
  /// perturbation around the best iterate.  >= 0.
  double restart_sigma = 0.3;
  /// Seed of the restart perturbation stream.  The stream is consumed only
  /// at restarts, on the controlling thread, so identical seeds give
  /// bitwise-identical trajectories on every executor.
  std::uint64_t seed = 0;

  /// Wall-clock budget for the WHOLE loop, measured from refine();
  /// <= 0 = unbounded.  See the file comment for degradation semantics.
  double deadline_seconds = 0.0;
  /// External cancellation; may be null, must outlive the call.  Same
  /// degradation semantics as the deadline.
  const par::CancelToken* cancel = nullptr;
};

/// Throws phmse::Error on any out-of-range RefineOptions field (annealing
/// parameters are checked only in annealed mode).  The Refiner constructor
/// calls this; the service layer calls it from submit() so a malformed
/// request fails at the call site, not inside a worker.
void validate(const RefineOptions& options);

/// Drives one compiled plan through outer refinement iterations.  The
/// Refiner borrows the plan (which must outlive it) and owns the best
/// iterate it returns: for iterated/annealed modes Result::state points at
/// Refiner-owned storage valid until the next refine() call or the
/// Refiner's destruction (single_pass results borrow from the plan exactly
/// like Plan::solve).  Not movable (it embeds a CancelToken); create one
/// where you use it.
class Refiner {
 public:
  explicit Refiner(engine::Plan& plan, const RefineOptions& options = {});
  Refiner(const Refiner&) = delete;
  Refiner& operator=(const Refiner&) = delete;

  /// Refines from `initial_x` on the plan's own serial context / a caller
  /// context / a thread pool / a simulated machine.  Every overload runs
  /// the same controller; only the inner solves differ — and those are
  /// bitwise identical across executors by the project invariant.
  ///
  /// The returned Result aggregates the loop: `state` is the BEST iterate
  /// (by chi-squared), `seconds`/`vtime`/`breakdown`/`cycles` sum over all
  /// iterations, `converged` is the refine-level flag, and
  /// `report` is the best iterate's solve report with `report.refine`
  /// carrying the trajectory (DESIGN.md §14).
  engine::Result refine(const linalg::Vector& initial_x);
  engine::Result refine(par::ExecContext& ctx, const linalg::Vector& initial_x);
  engine::Result refine(par::ThreadPool& pool,
                        const linalg::Vector& initial_x);
  engine::Result refine(simarch::SimMachine& machine,
                        const linalg::Vector& initial_x);

  const RefineOptions& options() const { return options_; }

 private:
  template <typename SolveFn>
  engine::Result refine_impl_(const linalg::Vector& initial_x,
                              SolveFn&& solve_at);
  template <typename SolveFn>
  engine::Result run_loop_(const linalg::Vector& initial_x,
                           const engine::SolveOptions& controls,
                           SolveFn&& solve_at);
  /// Arms the loop-scope token from options_ (deadline and/or external
  /// cancel); null when uncontrolled.
  const par::CancelToken* arm_token_();

  engine::Plan* plan_;
  RefineOptions options_;
  /// The best iterate of the last iterated/annealed refine (deep copy; the
  /// plan's own root state is overwritten by every inner solve).
  est::NodeState best_state_;
  /// Next linearization point (reused across iterations and calls).
  linalg::Vector x_lin_;
  /// Loop-scope deadline token; links options_.cancel.
  par::CancelToken loop_token_;
};

}  // namespace phmse::refine

namespace phmse {
using refine::Refiner;
}  // namespace phmse
