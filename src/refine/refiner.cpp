#include "refine/refiner.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "refine/monitor.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace phmse::refine {

namespace {

/// Restores the plan to the exact noise model on every exit path (normal,
/// converged, diverged, degraded, or thrown), so a refine never leaves an
/// inflated sigma behind: the next plain solve on the plan sees exactly the
/// model it would have seen had the Refiner never run.
class InflationGuard {
 public:
  explicit InflationGuard(engine::Plan& plan) : plan_(&plan) {}
  ~InflationGuard() {
    if (armed_) plan_->set_sigma_inflation(1.0);
  }
  InflationGuard(const InflationGuard&) = delete;
  InflationGuard& operator=(const InflationGuard&) = delete;

  void arm() { armed_ = true; }

 private:
  engine::Plan* plan_;
  bool armed_ = false;
};

}  // namespace

const char* mode_name(Mode mode) {
  switch (mode) {
    case Mode::kSinglePass:
      return "single_pass";
    case Mode::kIterated:
      return "iterated";
    case Mode::kAnnealed:
      return "annealed";
  }
  return "single_pass";
}

Mode mode_from_name(const std::string& name) {
  if (name == "single_pass") return Mode::kSinglePass;
  if (name == "iterated") return Mode::kIterated;
  if (name == "annealed") return Mode::kAnnealed;
  throw Error("unknown refine mode: \"" + name +
              "\" (expected single_pass, iterated or annealed)");
}

void validate(const RefineOptions& options) {
  PHMSE_CHECK(options.max_iterations >= 1,
              "refine: max_iterations must be >= 1");
  PHMSE_CHECK(
      std::isfinite(options.step_tolerance) && options.step_tolerance >= 0.0,
      "refine: step_tolerance must be finite and >= 0");
  PHMSE_CHECK(
      std::isfinite(options.chi2_tolerance) && options.chi2_tolerance >= 0.0,
      "refine: chi2_tolerance must be finite and >= 0");
  PHMSE_CHECK(std::isfinite(options.damping) && options.damping > 0.0 &&
                  options.damping <= 1.0,
              "refine: damping must be in (0, 1]");
  PHMSE_CHECK(std::isfinite(options.divergence_ratio) &&
                  options.divergence_ratio > 1.0,
              "refine: divergence_ratio must be > 1");
  PHMSE_CHECK(options.patience >= 1, "refine: patience must be >= 1");
  PHMSE_CHECK(std::isfinite(options.deadline_seconds),
              "refine: deadline_seconds must be finite");
  if (options.mode == Mode::kAnnealed) {
    PHMSE_CHECK(std::isfinite(options.initial_temperature) &&
                    options.initial_temperature >= 1.0,
                "refine: initial_temperature must be >= 1");
    PHMSE_CHECK(std::isfinite(options.cooling) && options.cooling > 0.0 &&
                    options.cooling < 1.0,
                "refine: cooling must be in (0, 1)");
    PHMSE_CHECK(
        std::isfinite(options.plateau_ratio) && options.plateau_ratio >= 0.0,
        "refine: plateau_ratio must be finite and >= 0");
    PHMSE_CHECK(options.max_restarts >= 0, "refine: max_restarts must be >= 0");
    PHMSE_CHECK(
        std::isfinite(options.restart_sigma) && options.restart_sigma >= 0.0,
        "refine: restart_sigma must be finite and >= 0");
  }
}

Refiner::Refiner(engine::Plan& plan, const RefineOptions& options)
    : plan_(&plan), options_(options) {
  validate(options_);
}

const par::CancelToken* Refiner::arm_token_() {
  if (options_.deadline_seconds <= 0.0) return options_.cancel;
  loop_token_.reset();
  loop_token_.link(options_.cancel);
  loop_token_.set_deadline_after(options_.deadline_seconds);
  return &loop_token_;
}

engine::Result Refiner::refine(const linalg::Vector& initial_x) {
  return refine_impl_(
      initial_x,
      [this](const linalg::Vector& x, const engine::SolveOptions& controls) {
        return plan_->solve(x, controls);
      });
}

engine::Result Refiner::refine(par::ExecContext& ctx,
                               const linalg::Vector& initial_x) {
  return refine_impl_(
      initial_x,
      [this, &ctx](const linalg::Vector& x,
                   const engine::SolveOptions& controls) {
        return plan_->solve(ctx, x, controls);
      });
}

engine::Result Refiner::refine(par::ThreadPool& pool,
                               const linalg::Vector& initial_x) {
  return refine_impl_(
      initial_x,
      [this, &pool](const linalg::Vector& x,
                    const engine::SolveOptions& controls) {
        return plan_->solve(pool, x, controls);
      });
}

engine::Result Refiner::refine(simarch::SimMachine& machine,
                               const linalg::Vector& initial_x) {
  return refine_impl_(
      initial_x,
      [this, &machine](const linalg::Vector& x,
                       const engine::SolveOptions& controls) {
        return plan_->solve(machine, x, controls);
      });
}

template <typename SolveFn>
engine::Result Refiner::refine_impl_(const linalg::Vector& initial_x,
                                     SolveFn&& solve_at) {
  engine::SolveOptions controls;
  controls.cancel = arm_token_();

  if (options_.mode == Mode::kSinglePass) {
    // One plan execution, bitwise identical to Plan::solve (with null
    // controls it IS the uncontrolled overload); the Refiner only wraps it
    // in monitoring, reading — never steering — the solve.
    const Residuals before = measure(plan_->hierarchy(), initial_x);
    engine::Result out = solve_at(initial_x, controls);
    const Residuals after = measure(plan_->hierarchy(), out.posterior().x);
    core::RefineReport& rr = out.report.refine;
    rr.mode = mode_name(Mode::kSinglePass);
    rr.iterations = 1;
    rr.best_iteration = 1;
    rr.converged = out.converged;
    rr.initial_chi2 = before.chi2;
    rr.best_chi2 = after.chi2;
    rr.final_chi2 = after.chi2;
    rr.trajectory.push_back({after.chi2, after.rms,
                             rms_step(initial_x, out.posterior().x), 1.0,
                             false});
    return out;
  }
  return run_loop_(initial_x, controls, std::forward<SolveFn>(solve_at));
}

template <typename SolveFn>
engine::Result Refiner::run_loop_(const linalg::Vector& initial_x,
                                  const engine::SolveOptions& controls,
                                  SolveFn&& solve_at) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const bool annealed = options_.mode == Mode::kAnnealed;
  const par::CancelToken* token = controls.cancel;

  core::RefineReport rr;
  rr.mode = mode_name(options_.mode);
  rr.initial_chi2 = measure(plan_->hierarchy(), initial_x).chi2;

  InflationGuard guard(*plan_);
  if (annealed) guard.arm();
  Rng rng(options_.seed);

  x_lin_ = initial_x;
  double temperature = annealed ? options_.initial_temperature : 1.0;

  engine::Result best;
  bool have_best = false;
  double best_chi2 = kInf;
  double last_chi2 = kInf;
  int since_best = 0;
  int plateau_run = 0;
  bool next_is_restart = false;

  double total_seconds = 0.0;
  double total_vtime = 0.0;
  int total_cycles = 0;
  perf::Profile total_breakdown;

  while (rr.iterations < options_.max_iterations) {
    // Between-iteration poll: once an iterate exists, a stop degrades to it
    // instead of erroring (an any-time answer).  Before one exists, fall
    // through and let the solve classify the stop (DeadlineError vs
    // CancelledError) exactly as a plain controlled solve would.
    if (token != nullptr && token->stop_requested() && have_best) {
      rr.deadline_degraded = true;
      break;
    }

    // Bitwise-identical values are a no-op inside the plan, so re-applying
    // an unchanged temperature never invalidates the §11 checkpoint.
    if (annealed) plan_->set_sigma_inflation(temperature);

    engine::Result r;
    try {
      r = solve_at(x_lin_, controls);
    } catch (const engine::DeadlineError&) {
      if (!have_best) throw;
      rr.deadline_degraded = true;
      break;
    } catch (const par::CancelledError&) {
      if (!have_best) throw;
      rr.deadline_degraded = true;
      break;
    }
    ++rr.iterations;

    total_seconds += r.seconds;
    total_vtime += r.vtime;
    total_cycles += r.cycles;
    total_breakdown += r.breakdown;

    // Monitor the iterate on the controlling thread, always against the
    // un-inflated noise model: every decision below is executor-independent.
    const linalg::Vector& x_sol = r.posterior().x;
    const Residuals res = measure(plan_->hierarchy(), x_sol);
    const double step = rms_step(x_lin_, x_sol);
    rr.trajectory.push_back(
        {res.chi2, res.rms, step, temperature, next_is_restart});
    next_is_restart = false;

    const bool finite = std::isfinite(res.chi2);
    if (!have_best || (finite && res.chi2 < best_chi2)) {
      // The first completed iterate is kept unconditionally so a degraded
      // or diverged loop always has something principled to return.
      if (finite) best_chi2 = res.chi2;
      best = r;
      best_state_ = r.posterior();
      best.state = &best_state_;
      rr.best_iteration = rr.iterations;
      have_best = true;
      since_best = 0;
    } else {
      ++since_best;
    }

    const bool diverging =
        !finite ||
        (std::isfinite(best_chi2) &&
         res.chi2 > options_.divergence_ratio * std::max(best_chi2, 1e-12));
    const bool at_base = !annealed || temperature <= 1.0;

    if (annealed && at_base && std::isfinite(last_chi2) && last_chi2 > 0.0) {
      const double rel = std::abs(last_chi2 - res.chi2) / last_chi2;
      plateau_run = rel <= options_.plateau_ratio ? plateau_run + 1 : 0;
    } else {
      plateau_run = 0;
    }
    last_chi2 = res.chi2;

    if (at_base && !diverging) {
      if ((options_.step_tolerance > 0.0 && step <= options_.step_tolerance) ||
          (options_.chi2_tolerance > 0.0 &&
           res.chi2 <= options_.chi2_tolerance)) {
        rr.converged = true;
        break;
      }
    }

    bool want_restart = false;
    if (diverging) {
      if (!annealed) {
        rr.diverged = true;
        break;
      }
      want_restart = true;
    }
    if (annealed && plateau_run >= 2) want_restart = true;
    if (since_best >= options_.patience) {
      if (!annealed) break;  // stalled: return the best iterate
      want_restart = true;
    }

    if (want_restart) {
      if (rr.restarts >= options_.max_restarts) {
        rr.diverged = diverging;
        break;
      }
      // Seeded deterministic perturbation of the best iterate; the Rng is
      // consumed only here, in controller order, so the whole trajectory is
      // a function of RefineOptions alone.
      x_lin_ = best_state_.x;
      for (double& v : x_lin_) v += rng.gaussian(0.0, options_.restart_sigma);
      temperature = options_.initial_temperature;
      ++rr.restarts;
      since_best = 0;
      plateau_run = 0;
      last_chi2 = kInf;
      next_is_restart = true;
      continue;
    }

    // Re-linearize: full step takes the posterior bitwise; a damped step
    // moves the linearization point a fraction of the way toward it.
    if (options_.damping == 1.0) {
      x_lin_ = x_sol;
    } else {
      for (std::size_t i = 0; i < x_lin_.size(); ++i) {
        x_lin_[i] += options_.damping * (x_sol[i] - x_lin_[i]);
      }
    }
    if (annealed) temperature = std::max(1.0, temperature * options_.cooling);
  }

  PHMSE_CHECK(have_best, "refine: loop ended with no completed iteration");
  engine::Result out = best;
  out.state = &best_state_;
  out.seconds = total_seconds;
  out.vtime = total_vtime;
  out.cycles = total_cycles;
  out.breakdown = total_breakdown;
  out.converged = rr.converged;
  rr.best_chi2 =
      rr.trajectory[static_cast<std::size_t>(rr.best_iteration - 1)].chi2;
  rr.final_chi2 = rr.trajectory.back().chi2;
  out.report.refine = std::move(rr);
  return out;
}

}  // namespace phmse::refine
