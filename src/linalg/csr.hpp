// Compressed sparse row (CSR) matrix.
//
// The measurement Jacobian H (m x n) is extremely sparse: a distance
// constraint touches 6 state variables, an angle 9, a torsion 12.  CSR keeps
// the dense-sparse products in the update procedure at O(nnz * n) instead of
// O(m * n^2).
#pragma once

#include <span>
#include <vector>

#include "support/check.hpp"
#include "support/types.hpp"

namespace phmse::linalg {

/// Immutable CSR matrix assembled through CsrBuilder.
class Csr {
 public:
  Csr() = default;

  Index rows() const { return static_cast<Index>(row_ptr_.size()) - 1; }
  Index cols() const { return cols_; }
  Index nnz() const { return static_cast<Index>(values_.size()); }

  /// Column indices of row i's nonzeros (ascending).
  std::span<const Index> row_indices(Index i) const {
    PHMSE_ASSERT(i >= 0 && i < rows());
    return {col_idx_.data() + row_ptr_[static_cast<std::size_t>(i)],
            static_cast<std::size_t>(row_nnz(i))};
  }

  /// Values of row i's nonzeros, parallel to row_indices(i).
  std::span<const double> row_values(Index i) const {
    PHMSE_ASSERT(i >= 0 && i < rows());
    return {values_.data() + row_ptr_[static_cast<std::size_t>(i)],
            static_cast<std::size_t>(row_nnz(i))};
  }

  Index row_nnz(Index i) const {
    return static_cast<Index>(row_ptr_[static_cast<std::size_t>(i) + 1] -
                              row_ptr_[static_cast<std::size_t>(i)]);
  }

  /// Dense entry lookup (O(row nnz)); for tests and small cases.
  double at(Index i, Index j) const;

 private:
  friend class CsrBuilder;

  Index cols_ = 0;
  std::vector<std::size_t> row_ptr_{0};
  std::vector<Index> col_idx_;
  std::vector<double> values_;
};

/// Row-by-row CSR assembly.  Rows are appended in order; within a row,
/// entries may arrive unordered and duplicates are summed.
class CsrBuilder {
 public:
  /// An empty builder with no columns; call reset() before building.
  CsrBuilder() = default;

  explicit CsrBuilder(Index cols) : cols_(cols) {
    PHMSE_CHECK(cols >= 0, "column count must be >= 0");
  }

  /// Re-arms the builder for a fresh matrix with `cols` columns.  Keeps the
  /// capacity of all internal buffers, so a builder that lives across
  /// repeated assemblies stops allocating once it has seen the largest row
  /// set (the steady-state solve path relies on this).
  void reset(Index cols);

  /// Starts a new row; returns its index.
  Index begin_row();

  /// Adds `value` at column `col` of the current row.
  void add(Index col, double value);

  /// Finalizes and returns the CSR matrix; the builder is left empty.
  Csr finish();

  /// Finalizes into `dst` by swapping buffers, so `dst`'s previous capacity
  /// round-trips back into the builder for the next reset()/build cycle.
  void finish_into(Csr& dst);

 private:
  Index cols_ = 0;
  bool in_row_ = false;
  std::vector<std::pair<Index, double>> current_;
  Csr out_;

  void flush_row();
};

}  // namespace phmse::linalg
