#include "linalg/csr.hpp"

#include <algorithm>

namespace phmse::linalg {

double Csr::at(Index i, Index j) const {
  const auto idx = row_indices(i);
  const auto val = row_values(i);
  for (std::size_t k = 0; k < idx.size(); ++k) {
    if (idx[k] == j) return val[k];
  }
  return 0.0;
}

Index CsrBuilder::begin_row() {
  flush_row();
  in_row_ = true;
  return out_.rows();
}

void CsrBuilder::add(Index col, double value) {
  PHMSE_CHECK(in_row_, "add() requires an open row (call begin_row first)");
  PHMSE_CHECK(col >= 0 && col < cols_, "column index out of range");
  current_.emplace_back(col, value);
}

void CsrBuilder::flush_row() {
  if (!in_row_) return;
  std::sort(current_.begin(), current_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (std::size_t k = 0; k < current_.size(); ++k) {
    if (k > 0 && current_[k].first == out_.col_idx_.back()) {
      out_.values_.back() += current_[k].second;  // merge duplicate column
    } else {
      out_.col_idx_.push_back(current_[k].first);
      out_.values_.push_back(current_[k].second);
    }
  }
  out_.row_ptr_.push_back(out_.values_.size());
  current_.clear();
  in_row_ = false;
}

Csr CsrBuilder::finish() {
  flush_row();
  out_.cols_ = cols_;
  Csr result = std::move(out_);
  out_ = Csr{};
  return result;
}

void CsrBuilder::finish_into(Csr& dst) {
  flush_row();
  out_.cols_ = cols_;
  dst.cols_ = out_.cols_;
  dst.row_ptr_.swap(out_.row_ptr_);
  dst.col_idx_.swap(out_.col_idx_);
  dst.values_.swap(out_.values_);
}

void CsrBuilder::reset(Index cols) {
  PHMSE_CHECK(cols >= 0, "column count must be >= 0");
  cols_ = cols;
  in_row_ = false;
  current_.clear();
  out_.cols_ = 0;
  out_.row_ptr_.clear();
  out_.row_ptr_.push_back(0);
  out_.col_idx_.clear();
  out_.values_.clear();
}

}  // namespace phmse::linalg
