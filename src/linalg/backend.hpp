// The linalg backend registry: runtime dispatch for the dense kernel layer.
//
// A Backend is a function-pointer table over the hot kernels of the Fig.-1
// update procedure (see kernels.hpp for the category mapping).  Three
// implementations are registered:
//
//   ref     — the frozen scalar oracle (linalg/ref); slow, trustworthy,
//             never optimized.  The differential gate for everything else.
//   blocked — the portable cache-blocked, register-tiled kernels
//             (linalg/blocked); the former hard-wired implementation.
//   simd    — explicit AVX-512/AVX2/NEON microkernels (linalg/simd); any
//             primitive whose microkernel set is missing on this CPU falls
//             back to the blocked implementation, so `simd` is always
//             selectable.
//
// Selection: default_backend() picks the best available implementation,
// overridable per process with PHMSE_BACKEND=ref|blocked|simd and per solve
// via the options structs (est::SolveOptions / core::HierSolveOptions).
// Unknown names fail fast with the valid names and this CPU's features.
//
// Determinism contract (DESIGN.md §12): every backend is run-to-run
// deterministic and bitwise serial-vs-threaded identical *within itself*;
// agreement *across* backends is differential against `ref` (FMA and
// vector-width effects mean bitwise cross-backend equality is not
// guaranteed).  A solve's backend is resolved once at plan build, so a
// compiled plan never mixes backends mid-run.
//
// A future external-BLAS or GPU backend plugs in by filling another Backend
// table (device staging hidden behind the pointers) and adding it to the
// registry list in backend.cpp.
#pragma once

#include <span>
#include <string>
#include <string_view>

#include "linalg/csr.hpp"
#include "linalg/matrix.hpp"
#include "linalg/status.hpp"
#include "parallel/exec.hpp"

namespace phmse::linalg {

/// Function-pointer table for one kernel implementation.  All pointers are
/// always non-null; fallback resolution happens at registration.
struct Backend {
  /// Registry name ("ref", "blocked", "simd").
  const char* name;

  /// For the simd backend, the microkernel set it resolved to ("avx512",
  /// "avx2", "neon", or "scalar" when everything fell back to blocked);
  /// "portable" for the scalar/blocked backends.
  const char* simd_isa;

  void (*sparse_dense)(par::ExecContext&, const Csr&, const Matrix&,
                       Matrix&);
  void (*innovation_covariance)(par::ExecContext&, const Matrix&, const Csr&,
                                const Vector&, Matrix&);
  void (*trsm_lower)(par::ExecContext&, const Matrix&, Matrix&);
  void (*trsm_lower_transposed)(par::ExecContext&, const Matrix&, Matrix&);
  void (*gain_times_residual)(par::ExecContext&, const Matrix&, const Vector&,
                              Vector&);
  void (*covariance_downdate)(par::ExecContext&, const Matrix&, const Matrix&,
                              Matrix&);
  void (*gram)(par::ExecContext&, const Matrix&, Matrix&);
  CholeskyResult (*cholesky_factor)(par::ExecContext&, Matrix&,
                                    Index block_size);
};

/// All registered backends, in registry order (ref, blocked, simd).
std::span<const Backend* const> all_backends();

/// Looks up a backend by name; nullptr when unknown.
const Backend* find_backend(std::string_view name);

/// Looks up a backend by name, failing fast on an unknown name with a
/// message listing the valid backends and which ones this CPU supports
/// natively.  `who` names the configuration source for the error text
/// (e.g. "PHMSE_BACKEND" or "SolveOptions.backend").
const Backend& backend_or_throw(std::string_view name, std::string_view who);

/// The process-default backend: PHMSE_BACKEND when set (fails fast on an
/// unknown value), otherwise the best available implementation (simd when
/// any microkernel set is usable on this CPU, else blocked).  Resolved once
/// and cached.
const Backend& default_backend();

/// Resolves an options-level backend name: empty means default_backend(),
/// anything else goes through backend_or_throw(name, who).
const Backend& resolve_backend(std::string_view name, std::string_view who);

/// One-line human-readable support summary, e.g.
/// "valid backends: ref, blocked, simd (simd microkernels: avx512; cpu:
/// avx2 fma avx512f)".  Used in selection errors and diagnostics.
std::string backend_support_summary();

}  // namespace phmse::linalg
