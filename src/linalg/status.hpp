// Status types for the non-throwing numerical-kernel entry points.
//
// The fault-tolerance layer (DESIGN.md §9) needs to observe a failed
// factorization without unwinding through the executor, so the Cholesky
// kernels come in two flavours: a `*_factor` function returning a
// CholeskyResult, and the historical throwing wrapper built on top of it.
#pragma once

#include "support/types.hpp"

namespace phmse::linalg {

/// Outcome of a Cholesky factorization attempt.  On failure the matrix is
/// left partially factored (columns before the failing pivot are final);
/// callers that intend to retry must re-form the input.
struct [[nodiscard]] CholeskyResult {
  /// Index of the first pivot whose diagonal was not strictly positive
  /// (the matrix is not numerically SPD there), or -1 on success.  A NaN
  /// diagonal — e.g. from non-finite input — also reports as this pivot.
  Index failed_pivot = -1;

  bool ok() const { return failed_pivot < 0; }
  explicit operator bool() const { return ok(); }
};

}  // namespace phmse::linalg
