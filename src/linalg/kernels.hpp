// ExecContext-parallel kernels for the Fig.-1 update procedure.
//
// Category mapping (chosen to mirror the accounting in the paper's Tables
// 3-6; see DESIGN.md):
//   d-s  : G = H * C            (sparse Jacobian times dense covariance)
//   m-m  : S = G * H^T + R      (innovation covariance assembly)
//   chol : factor S = L L^T     (see cholesky.hpp)
//   sys  : solve L W = G, L^T V = W  => V = K^T  (filter gain)
//   m-v  : dx = V^T r, and the covariance update C -= V^T G, which is
//          mathematically n dense matrix-vector products C(:,l) -= K a_l —
//          the dominant operation, reported by the paper under m-v
//   vec  : residuals, scalings, copies
//
// Every kernel takes an ExecContext so the same code runs serially, on a
// real thread team, or on the simulated multiprocessor (src/simarch).
//
// These free functions dispatch through the process-default Backend
// (backend.hpp): the same signatures are implemented by the ref / blocked /
// simd backends, and a caller that pinned a backend (per-solve override)
// calls through its Backend table instead.
//
// Exception transparency: these kernels hold no hidden state across
// parallel() calls and add no try/catch of their own, so the ExecContext
// contract applies verbatim — a body failure (e.g. a PHMSE_CHECK firing on
// a worker lane) joins the team cleanly and rethrows on the calling lane,
// leaving only the output arguments in a partially-written state.
#pragma once

#include "linalg/csr.hpp"
#include "linalg/matrix.hpp"
#include "parallel/exec.hpp"

namespace phmse::linalg {

/// G = H * C.  H: m x n sparse, C: n x n dense, G resized to m x n.
/// Parallel over the m rows of G.  Category: d-s.
void sparse_dense(par::ExecContext& ctx, const Csr& h, const Matrix& c,
                  Matrix& g);

/// S = G * H^T + diag(r_diag).  G: m x n, H: m x n sparse, S resized to
/// m x m.  `r_diag` holds the measurement noise variances (R is diagonal
/// for independent scalar measurements).  Parallel over rows of S.
/// Category: m-m.
void innovation_covariance(par::ExecContext& ctx, const Matrix& g,
                           const Csr& h, const Vector& r_diag, Matrix& s);

/// In-place forward solve B <- L^{-1} B for lower-triangular L (m x m) and
/// B (m x k).  Parallel over B's columns.  Category: sys.
void trsm_lower(par::ExecContext& ctx, const Matrix& l, Matrix& b);

/// In-place backward solve B <- L^{-T} B.  Parallel over B's columns.
/// Category: sys.
void trsm_lower_transposed(par::ExecContext& ctx, const Matrix& l, Matrix& b);

/// dx += V^T r.  V: m x n (the gain transpose), r: m, dx: n.
/// Category: m-v.
void gain_times_residual(par::ExecContext& ctx, const Matrix& v,
                         const Vector& r, Vector& dx);

/// C -= V^T * G with V, G: m x n and C: n x n.  This is the covariance
/// measurement update C -= K (C H^T)^T.  Parallel over rows of C; each row
/// update streams the m rows of G (which fit in cache for the batch sizes
/// the paper recommends).  Category: m-v (see file comment).
void covariance_downdate(par::ExecContext& ctx, const Matrix& v,
                         const Matrix& g, Matrix& c);

/// out = W^T * W for W: m x n (out resized to n x n).  Used by the Fig.-3
/// combination procedure to form information matrices.  Category: m-m.
void gram(par::ExecContext& ctx, const Matrix& w, Matrix& out);

/// C += coeff * v v^T (rank-1 symmetric update).  Used by the non-Gaussian
/// (mixture) measurement update, whose collapsed posterior differs from the
/// prior by a rank-1 term along the gain direction.  Category: m-v.
void rank1_update(par::ExecContext& ctx, const Vector& v, double coeff,
                  Matrix& c);

/// out = a - b element-wise.  Category: vec.
void vec_sub(par::ExecContext& ctx, const Vector& a, const Vector& b,
             Vector& out);

/// y += x element-wise.  Category: vec.
void vec_add_inplace(par::ExecContext& ctx, const Vector& x, Vector& y);

/// Enforces symmetry of square C by averaging mirror entries.  Parallel over
/// rows.  Category: vec.
void symmetrize(par::ExecContext& ctx, Matrix& c);

}  // namespace phmse::linalg
