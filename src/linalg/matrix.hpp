// Dense row-major matrix and vector containers.
//
// The state covariance C (n x n), the sparse-dense product G = H*C (m x n)
// and the gain-transpose K^T (m x n) are all stored row-major; every hot
// kernel in src/linalg/kernels.cpp is written to stream along rows.
#pragma once

#include <cstddef>
#include <new>
#include <span>
#include <vector>

#include "support/check.hpp"
#include "support/types.hpp"

namespace phmse::linalg {

/// Alignment (bytes) of Matrix/Vector storage: one cache line, and at least
/// the widest vector register any backend uses (64 B covers AVX-512 zmm).
/// Aligned buffers keep SIMD loads from splitting cache lines and let a
/// whole matrix row start on a line boundary.
inline constexpr std::size_t kStorageAlignment = 64;

static_assert((kStorageAlignment & (kStorageAlignment - 1)) == 0,
              "storage alignment must be a power of two");
static_assert(kStorageAlignment >= 64,
              "storage must be at least cache-line (and zmm) aligned");
static_assert(kStorageAlignment % alignof(double) == 0,
              "storage alignment must preserve double alignment");

/// Minimal allocator giving std::vector kStorageAlignment-ed buffers.  Goes
/// through the aligned global operator new/delete so allocation-counting
/// harnesses (tests/alloc_test.cpp) still observe every allocation.
template <class T>
struct AlignedAllocator {
  using value_type = T;

  AlignedAllocator() = default;
  template <class U>
  AlignedAllocator(const AlignedAllocator<U>&) noexcept {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{kStorageAlignment}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{kStorageAlignment});
  }

  template <class U>
  bool operator==(const AlignedAllocator<U>&) const noexcept {
    return true;
  }
};

/// Dense vector; a contiguous, 64-byte-aligned buffer of doubles.
using Vector = std::vector<double, AlignedAllocator<double>>;

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;

  /// rows x cols matrix, zero-initialized.
  Matrix(Index rows, Index cols)
      : rows_(rows), cols_(cols),
        data_(static_cast<std::size_t>(rows * cols), 0.0) {
    PHMSE_CHECK(rows >= 0 && cols >= 0, "matrix dimensions must be >= 0");
  }

  Index rows() const { return rows_; }
  Index cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  double& operator()(Index i, Index j) {
    PHMSE_ASSERT(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[static_cast<std::size_t>(i * cols_ + j)];
  }
  double operator()(Index i, Index j) const {
    PHMSE_ASSERT(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[static_cast<std::size_t>(i * cols_ + j)];
  }

  /// Mutable view of row i.
  std::span<double> row(Index i) {
    PHMSE_ASSERT(i >= 0 && i < rows_);
    return {data_.data() + i * cols_, static_cast<std::size_t>(cols_)};
  }
  std::span<const double> row(Index i) const {
    PHMSE_ASSERT(i >= 0 && i < rows_);
    return {data_.data() + i * cols_, static_cast<std::size_t>(cols_)};
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  void fill(double v) { std::fill(data_.begin(), data_.end(), v); }

  /// Sets this to the identity (must be square).
  void set_identity();

  /// Sets this to `v` times the identity (must be square).
  void set_scaled_identity(double v);

  /// Resizes to rows x cols, zero-filling all entries.
  void resize_zero(Index rows, Index cols);

  /// Resizes to rows x cols without clearing retained entries (grown
  /// storage is zero).  For kernels that overwrite every entry anyway —
  /// skips resize_zero's full clearing pass when the shape is unchanged.
  void resize(Index rows, Index cols);

  /// Writes `block` into this matrix with its (0,0) at (r0, c0).
  void place_block(Index r0, Index c0, const Matrix& block);

  /// Extracts the rows x cols block whose (0,0) is at (r0, c0).
  Matrix extract_block(Index r0, Index c0, Index rows, Index cols) const;

  /// Maximum absolute entry; 0 for an empty matrix.
  double max_abs() const;

  /// Frobenius norm of (this - other); matrices must agree in shape.
  double frobenius_distance(const Matrix& other) const;

  /// Enforces exact symmetry by averaging with the transpose (square only).
  void symmetrize();

  bool operator==(const Matrix&) const = default;

 private:
  Index rows_ = 0;
  Index cols_ = 0;
  Vector data_;
};

}  // namespace phmse::linalg
