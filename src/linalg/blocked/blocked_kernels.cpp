#include "linalg/blocked/blocked_kernels.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/blas.hpp"
#include "linalg/detail/panel_algos.hpp"
#include "support/check.hpp"

namespace phmse::linalg::blocked {
namespace {

using par::KernelStats;
using perf::Category;

constexpr double kBytes = 8.0;  // sizeof(double)

// The GEMM panel primitives from blas.cpp, as a detail/panel_algos.hpp
// Panels policy.
struct BlasPanels {
  static void nn_acc(double alpha, const double* a, Index lda,
                     const double* b, Index ldb, double* c, Index ldc,
                     Index mm, Index kk, Index nn) {
    gemm_nn_acc(alpha, a, lda, b, ldb, c, ldc, mm, kk, nn);
  }
  static void tn_acc(double alpha, const double* a, Index lda,
                     const double* b, Index ldb, double* c, Index ldc,
                     Index mm, Index kk, Index nn) {
    gemm_tn_acc(alpha, a, lda, b, ldb, c, ldc, mm, kk, nn);
  }
  static void tn_zero_acc(double alpha, const double* a, Index lda,
                          const double* b, Index ldb, double* c, Index ldc,
                          Index mm, Index kk, Index nn) {
    gemm_tn_zero_acc(alpha, a, lda, b, ldb, c, ldc, mm, kk, nn);
  }
};

}  // namespace

void sparse_dense(par::ExecContext& ctx, const Csr& h, const Matrix& c,
                  Matrix& g) {
  PHMSE_CHECK(h.cols() == c.rows() && c.rows() == c.cols(),
              "sparse_dense: dimension mismatch");
  const Index m = h.rows();
  const Index n = c.cols();
  g.resize_zero(m, n);

  auto cost = [&](Index begin, Index end) {
    KernelStats st;
    double nnz = 0.0;
    for (Index j = begin; j < end; ++j) nnz += static_cast<double>(h.row_nnz(j));
    st.flops = 2.0 * nnz * static_cast<double>(n);
    st.bytes_stream = kBytes * static_cast<double>((end - begin) * n);
    // The gathered C rows: which rows depends on the sparsity pattern, so
    // there is no tiling reuse — the paper's "randomly accesses its dense
    // counterpart".
    st.bytes_irregular = kBytes * nnz * static_cast<double>(n);
    return st;
  };
  auto body = [&](Index begin, Index end, int /*lane*/) {
    for (Index j = begin; j < end; ++j) {
      double* grow = g.row(j).data();
      const auto idx = h.row_indices(j);
      const auto val = h.row_values(j);
      for (std::size_t k = 0; k < idx.size(); ++k) {
        axpy(val[k], c.row(idx[k]).data(), grow, n);
      }
    }
  };
  ctx.parallel(Category::kDenseSparse, m, cost, body);
}

void innovation_covariance(par::ExecContext& ctx, const Matrix& g,
                           const Csr& h, const Vector& r_diag, Matrix& s) {
  PHMSE_CHECK(g.rows() == h.rows() && g.cols() == h.cols(),
              "innovation_covariance: G/H shape mismatch");
  PHMSE_CHECK(static_cast<Index>(r_diag.size()) == h.rows(),
              "innovation_covariance: noise diagonal size mismatch");
  const Index m = h.rows();
  s.resize_zero(m, m);

  auto cost = [&](Index begin, Index end) {
    KernelStats st;
    st.flops = 2.0 * static_cast<double>(end - begin) *
               static_cast<double>(h.nnz());
    st.bytes_stream = kBytes * static_cast<double>((end - begin) * g.cols());
    st.bytes_irregular =
        kBytes * static_cast<double>((end - begin) * h.nnz());
    return st;
  };
  auto body = [&](Index begin, Index end, int /*lane*/) {
    for (Index j = begin; j < end; ++j) {
      const double* grow = g.row(j).data();
      double* srow = s.row(j).data();
      for (Index l = 0; l < m; ++l) {
        const auto idx = h.row_indices(l);
        const auto val = h.row_values(l);
        double acc = 0.0;
        for (std::size_t k = 0; k < idx.size(); ++k) {
          acc += val[k] * grow[idx[k]];
        }
        srow[l] = acc;
      }
      srow[j] += r_diag[static_cast<std::size_t>(j)];
    }
  };
  ctx.parallel(Category::kMatMat, m, cost, body);
}

void trsm_lower(par::ExecContext& ctx, const Matrix& l, Matrix& b) {
  detail::trsm_impl<BlasPanels, false>(ctx, l, b);
}

void trsm_lower_transposed(par::ExecContext& ctx, const Matrix& l,
                           Matrix& b) {
  detail::trsm_impl<BlasPanels, true>(ctx, l, b);
}

void gain_times_residual(par::ExecContext& ctx, const Matrix& v,
                         const Vector& r, Vector& dx) {
  PHMSE_CHECK(static_cast<Index>(r.size()) == v.rows(),
              "gain_times_residual: residual size mismatch");
  PHMSE_CHECK(static_cast<Index>(dx.size()) == v.cols(),
              "gain_times_residual: output size mismatch");
  const Index m = v.rows();

  auto cost = [&](Index begin, Index end) {
    KernelStats st;
    const double cols = static_cast<double>(end - begin);
    st.flops = 2.0 * cols * static_cast<double>(m);
    st.bytes_stream = kBytes * cols * static_cast<double>(m);
    return st;
  };
  auto body = [&](Index begin, Index end, int /*lane*/) {
    for (Index j = 0; j < m; ++j) {
      const double rj = r[static_cast<std::size_t>(j)];
      const double* vrow = v.row(j).data();
      for (Index i = begin; i < end; ++i) {
        dx[static_cast<std::size_t>(i)] += rj * vrow[i];
      }
    }
  };
  ctx.parallel(Category::kMatVec, v.cols(), cost, body);
}

void covariance_downdate(par::ExecContext& ctx, const Matrix& v,
                         const Matrix& g, Matrix& c) {
  detail::covariance_downdate_impl<BlasPanels>(ctx, v, g, c);
}

void gram(par::ExecContext& ctx, const Matrix& w, Matrix& out) {
  detail::gram_impl<BlasPanels>(ctx, w, out);
}

CholeskyResult cholesky_factor(par::ExecContext& ctx, Matrix& a,
                               Index block_size) {
  return detail::cholesky_factor_impl<BlasPanels>(ctx, a, block_size);
}

}  // namespace phmse::linalg::blocked
