// The `blocked` backend: portable cache-blocked, register-tiled kernels.
//
// These are the PR 2 production implementations, moved verbatim behind the
// backend dispatch seam (linalg/backend.hpp).  The GEMM panel primitives
// they tile over live in blas.hpp; the shared blocking structure lives in
// detail/panel_algos.hpp and is instantiated here with those panels.
//
// The sparse kernels (sparse_dense, innovation_covariance,
// gain_times_residual) are scalar row loops — gather-dominated with a
// handful of nonzeros per constraint row, so there is no register tiling to
// do.  The `ref` backend shares these exact functions (they double as their
// own reference), and the `simd` backend replaces the streaming ones with
// vectorized axpy variants.
#pragma once

#include "linalg/csr.hpp"
#include "linalg/matrix.hpp"
#include "linalg/status.hpp"
#include "parallel/exec.hpp"

namespace phmse::linalg::blocked {

/// G = H * C; scalar per-nonzero row axpy.  Category: d-s.
void sparse_dense(par::ExecContext& ctx, const Csr& h, const Matrix& c,
                  Matrix& g);

/// S = G * H^T + diag(r_diag); scalar gather dot per entry.  Category: m-m.
void innovation_covariance(par::ExecContext& ctx, const Matrix& g,
                           const Csr& h, const Vector& r_diag, Matrix& s);

/// In-place forward solve B <- L^{-1} B, blocked over rows of L.
/// Category: sys.
void trsm_lower(par::ExecContext& ctx, const Matrix& l, Matrix& b);

/// In-place backward solve B <- L^{-T} B, blocked over rows of L.
/// Category: sys.
void trsm_lower_transposed(par::ExecContext& ctx, const Matrix& l, Matrix& b);

/// dx += V^T r; scalar row loop over the batch dimension.  Category: m-v.
void gain_times_residual(par::ExecContext& ctx, const Matrix& v,
                         const Vector& r, Vector& dx);

/// C -= V^T * G as register-tiled rank-m panel updates.  Category: m-v.
void covariance_downdate(par::ExecContext& ctx, const Matrix& v,
                         const Matrix& g, Matrix& c);

/// out = W^T * W, register-tiled with strip-wise zero-init.  Category: m-m.
void gram(par::ExecContext& ctx, const Matrix& w, Matrix& out);

/// In-place blocked Cholesky A = L L^T; lower triangle receives L, strict
/// upper triangle is zeroed.  Returns the failing pivot instead of throwing
/// — see status.hpp.  Category: chol.
[[nodiscard]] CholeskyResult cholesky_factor(par::ExecContext& ctx, Matrix& a,
                                             Index block_size = 48);

}  // namespace phmse::linalg::blocked
