// Blocked Cholesky factorization against an ExecContext.
//
// The innovation covariance S is small (the constraint batch dimension,
// typically 16), so most of the factorization is an inherently sequential
// panel — this is exactly why the paper reports poor parallel scaling for
// the `chol` category.  For large matrices (the Fig.-3 combination
// procedure factors n x n covariances) the trailing updates parallelize.
#pragma once

#include "linalg/matrix.hpp"
#include "parallel/exec.hpp"

namespace phmse::linalg {

/// In-place blocked Cholesky A = L L^T; lower triangle receives L, strict
/// upper triangle is zeroed.  Throws phmse::Error if A is not (numerically)
/// positive definite.  Category: chol.
void cholesky(par::ExecContext& ctx, Matrix& a, Index block_size = 48);

}  // namespace phmse::linalg
