// Blocked Cholesky factorization against an ExecContext.
//
// The innovation covariance S is small (the constraint batch dimension,
// typically 16), so most of the factorization is an inherently sequential
// panel — this is exactly why the paper reports poor parallel scaling for
// the `chol` category.  For large matrices (the Fig.-3 combination
// procedure factors n x n covariances) the trailing updates parallelize.
//
// These entry points dispatch through the process-default backend (see
// backend.hpp); per-solve backend overrides call the Backend table
// directly.
#pragma once

#include "linalg/matrix.hpp"
#include "linalg/status.hpp"
#include "parallel/exec.hpp"

namespace phmse::linalg {

/// In-place blocked Cholesky A = L L^T; lower triangle receives L, strict
/// upper triangle is zeroed.  Returns the failing pivot instead of throwing
/// when A is not (numerically) positive definite — see status.hpp; on
/// failure A is left partially factored and the strict upper triangle is
/// not zeroed.  Category: chol.
[[nodiscard]] CholeskyResult cholesky_factor(par::ExecContext& ctx, Matrix& a,
                                             Index block_size = 48);

/// Throwing wrapper over cholesky_factor: throws phmse::Error if A is not
/// (numerically) positive definite.  Category: chol.
void cholesky(par::ExecContext& ctx, Matrix& a, Index block_size = 48);

}  // namespace phmse::linalg
