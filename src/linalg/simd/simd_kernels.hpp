// The `simd` backend: explicit vector microkernels for the gemm panel
// primitives and the streaming sparse kernels.
//
// Three microkernel sets are compiled (subject to target architecture):
//
//   * AVX-512F — 4 row x 4 zmm (32-column) register tiles, masked tails;
//   * AVX2+FMA — 4 row x 2 ymm (8-column) register tiles, scalar tails;
//   * NEON     — 4 row x 2 q-reg (4-column) tiles (AArch64 only).
//
// On x86 every set is built with per-function target attributes, so the
// binary contains all of them regardless of the global -march flags; which
// one runs is picked once at startup from support::cpu_features() (the
// AVX-512 set needs avx512f, the AVX2 set needs avx2+fma).  When no set is
// usable the backend registry falls back to the blocked kernels
// per-primitive, so selecting `simd` is always safe.
//
// Determinism contract (see DESIGN.md §12): every microkernel accumulates
// each output element as one FMA chain over strictly ascending k — the same
// per-element expression as the blocked kernels — so each variant is
// bitwise serial-vs-threaded deterministic, and the panel results are even
// bitwise equal to the blocked backend's.  The streaming kernels
// (sparse_dense, gain_times_residual) use explicit-FMA axpy loops, which
// may differ from the blocked scalar kernels by FMA-contraction round-off;
// cross-backend agreement is therefore differential, not bitwise.
//
// The environment variable PHMSE_SIMD_ISA=avx512|avx2|neon|scalar forces a
// specific microkernel set (it must be compiled in and supported by the
// CPU); this is how CI runs the AVX2 tiles under sanitizers on AVX-512
// hosts.  An unknown or unsupported value fails fast.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "linalg/csr.hpp"
#include "linalg/matrix.hpp"
#include "linalg/status.hpp"
#include "parallel/exec.hpp"

namespace phmse::linalg::simd {

/// The microkernel set this process resolved to: "avx512", "avx2", "neon",
/// or "scalar" (no usable set; the registry bypasses these kernels then).
/// Resolved once at first use and cached.
const char* active_isa();

/// True when a vector microkernel set is usable (active_isa() != "scalar").
bool available();

/// G = H * C with vectorized per-nonzero row axpy.  Category: d-s.
void sparse_dense(par::ExecContext& ctx, const Csr& h, const Matrix& c,
                  Matrix& g);

/// In-place forward solve B <- L^{-1} B; blocked structure with simd GEMM
/// panels.  Category: sys.
void trsm_lower(par::ExecContext& ctx, const Matrix& l, Matrix& b);

/// In-place backward solve B <- L^{-T} B.  Category: sys.
void trsm_lower_transposed(par::ExecContext& ctx, const Matrix& l, Matrix& b);

/// dx += V^T r with vectorized row axpy.  Category: m-v.
void gain_times_residual(par::ExecContext& ctx, const Matrix& v,
                         const Vector& r, Vector& dx);

/// C -= V^T * G as simd rank-m panel updates.  Category: m-v.
void covariance_downdate(par::ExecContext& ctx, const Matrix& v,
                         const Matrix& g, Matrix& c);

/// out = W^T * W with simd panels and strip-wise zero-init.  Category: m-m.
void gram(par::ExecContext& ctx, const Matrix& w, Matrix& out);

/// In-place blocked Cholesky with simd trailing-update panels.  Returns the
/// failing pivot instead of throwing — see status.hpp.  Category: chol.
[[nodiscard]] CholeskyResult cholesky_factor(par::ExecContext& ctx, Matrix& a,
                                             Index block_size = 48);

// -- test hooks -------------------------------------------------------------

/// Microkernel sets compiled into this binary AND usable on this CPU
/// (subset of {"avx512", "avx2", "neon"}); the differential suite iterates
/// these so every shipped variant is tested where hardware allows, not just
/// the one active_isa() picked.
std::vector<std::string> testable_isas();

/// Runs one GEMM panel (C += alpha * op(A) * B, or overwriting with
/// `zero`) with a specific microkernel set from testable_isas().
/// op(A) = A (mm x kk, lda) when !trans; A^T with A stored kk x mm (lda)
/// when trans.  Fails fast on an unusable ISA name.
void gemm_panel_for_isa(std::string_view isa, bool trans, bool zero,
                        double alpha, const double* a, Index lda,
                        const double* b, Index ldb, double* c, Index ldc,
                        Index mm, Index kk, Index nn);

}  // namespace phmse::linalg::simd
