#include "linalg/simd/simd_kernels.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/blas.hpp"
#include "linalg/detail/panel_algos.hpp"
#include "support/check.hpp"
#include "support/cpu.hpp"
#include "support/env.hpp"

#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__)
#define PHMSE_SIMD_X86 1
#include <immintrin.h>
#endif
#if defined(__ARM_NEON) || defined(__aarch64__)
#define PHMSE_SIMD_NEON 1
#include <arm_neon.h>
#endif

// Per-function target attributes: each microkernel set is compiled for its
// own ISA regardless of the translation unit's global -march flags, and the
// resolver below guarantees a set only runs on a CPU that has it.
#if PHMSE_SIMD_X86 && (defined(__GNUC__) || defined(__clang__))
#define PHMSE_TGT_AVX512 __attribute__((target("avx512f")))
#define PHMSE_TGT_AVX2 __attribute__((target("avx2,fma")))
#endif

namespace phmse::linalg::simd {
namespace {

using par::KernelStats;
using perf::Category;

constexpr double kBytes = 8.0;  // sizeof(double)

enum class Isa { kScalar, kAvx2, kAvx512, kNeon };

const char* isa_name(Isa isa) {
  switch (isa) {
    case Isa::kAvx512:
      return "avx512";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kNeon:
      return "neon";
    case Isa::kScalar:
      return "scalar";
  }
  return "scalar";
}

// A microkernel set is usable iff it is compiled into this binary and the
// running CPU supports it.
bool isa_usable(Isa isa) {
  const auto& f = support::cpu_features();
  switch (isa) {
#if PHMSE_SIMD_X86
    case Isa::kAvx512:
      return f.avx512f;  // the zmm tiles use only AVX-512F ops
    case Isa::kAvx2:
      return f.avx2 && f.fma;
#endif
#if PHMSE_SIMD_NEON
    case Isa::kNeon:
      return f.neon;
#endif
    case Isa::kScalar:
      return true;
    default:
      return false;
  }
}

Isa resolve_isa() {
  const std::string env = env_string("PHMSE_SIMD_ISA", "");
  if (!env.empty()) {
    Isa forced = Isa::kScalar;
    if (env == "avx512") {
      forced = Isa::kAvx512;
    } else if (env == "avx2") {
      forced = Isa::kAvx2;
    } else if (env == "neon") {
      forced = Isa::kNeon;
    } else {
      PHMSE_CHECK(env == "scalar",
                  "PHMSE_SIMD_ISA: unknown value '" + env +
                      "' (valid: avx512, avx2, neon, scalar)");
    }
    PHMSE_CHECK(isa_usable(forced),
                "PHMSE_SIMD_ISA=" + env +
                    ": microkernel set not available on this build/CPU "
                    "(detected: " +
                    support::cpu_features().summary() + ")");
    return forced;
  }
  if (isa_usable(Isa::kAvx512)) return Isa::kAvx512;
  if (isa_usable(Isa::kAvx2)) return Isa::kAvx2;
  if (isa_usable(Isa::kNeon)) return Isa::kNeon;
  return Isa::kScalar;
}

Isa active() {
  static const Isa isa = resolve_isa();
  return isa;
}

// ---------------------------------------------------------------------------
// GEMM panel microkernels.
//
// All variants compute, for each output element c(i, q),
//
//   c(i, q) = fma(alpha*a(i, kk-1), b(kk-1, q), ... fma(alpha*a(i, 0),
//             b(0, q), init) ...)        init = c(i, q), or 0.0 with `zero`
//
// — one FMA chain over strictly ascending k, the exact per-element
// expression of the blocked kernels (blas.cpp), so results are independent
// of the register tile an element lands in and bitwise stable across lane
// boundaries.  Coefficient addressing is generalized: a row's coefficients
// live at `a0 + r*ars`, stepping `aks` per k (ars=lda/aks=1 for A,
// ars=1/aks=lda for A^T), which lets one kernel serve the nn and tn panels.

#if PHMSE_SIMD_X86

// 4 C rows x 32 columns (4 zmm per row): 16 accumulators live across the
// whole reduction, 8 load micro-ops feed 16 FMAs per k step.
PHMSE_TGT_AVX512 void tile4_avx512(double alpha, const double* a0, Index ars,
                                   Index aks, const double* b, Index ldb,
                                   double* c0, Index ldc, Index kk, Index qn,
                                   bool zero) {
  const double* const a1 = a0 + ars;
  const double* const a2 = a1 + ars;
  const double* const a3 = a2 + ars;
  double* const c1 = c0 + ldc;
  double* const c2 = c1 + ldc;
  double* const c3 = c2 + ldc;
  Index q = 0;
  for (; q + 32 <= qn; q += 32) {
    __m512d r00, r01, r02, r03, r10, r11, r12, r13;
    __m512d r20, r21, r22, r23, r30, r31, r32, r33;
    if (zero) {
      r00 = r01 = r02 = r03 = _mm512_setzero_pd();
      r10 = r11 = r12 = r13 = _mm512_setzero_pd();
      r20 = r21 = r22 = r23 = _mm512_setzero_pd();
      r30 = r31 = r32 = r33 = _mm512_setzero_pd();
    } else {
      r00 = _mm512_loadu_pd(c0 + q);
      r01 = _mm512_loadu_pd(c0 + q + 8);
      r02 = _mm512_loadu_pd(c0 + q + 16);
      r03 = _mm512_loadu_pd(c0 + q + 24);
      r10 = _mm512_loadu_pd(c1 + q);
      r11 = _mm512_loadu_pd(c1 + q + 8);
      r12 = _mm512_loadu_pd(c1 + q + 16);
      r13 = _mm512_loadu_pd(c1 + q + 24);
      r20 = _mm512_loadu_pd(c2 + q);
      r21 = _mm512_loadu_pd(c2 + q + 8);
      r22 = _mm512_loadu_pd(c2 + q + 16);
      r23 = _mm512_loadu_pd(c2 + q + 24);
      r30 = _mm512_loadu_pd(c3 + q);
      r31 = _mm512_loadu_pd(c3 + q + 8);
      r32 = _mm512_loadu_pd(c3 + q + 16);
      r33 = _mm512_loadu_pd(c3 + q + 24);
    }
    for (Index k = 0; k < kk; ++k) {
      const double* const bk = b + k * ldb + q;
      const __m512d b0 = _mm512_loadu_pd(bk);
      const __m512d b1 = _mm512_loadu_pd(bk + 8);
      const __m512d b2 = _mm512_loadu_pd(bk + 16);
      const __m512d b3 = _mm512_loadu_pd(bk + 24);
      __m512d av = _mm512_set1_pd(alpha * a0[k * aks]);
      r00 = _mm512_fmadd_pd(av, b0, r00);
      r01 = _mm512_fmadd_pd(av, b1, r01);
      r02 = _mm512_fmadd_pd(av, b2, r02);
      r03 = _mm512_fmadd_pd(av, b3, r03);
      av = _mm512_set1_pd(alpha * a1[k * aks]);
      r10 = _mm512_fmadd_pd(av, b0, r10);
      r11 = _mm512_fmadd_pd(av, b1, r11);
      r12 = _mm512_fmadd_pd(av, b2, r12);
      r13 = _mm512_fmadd_pd(av, b3, r13);
      av = _mm512_set1_pd(alpha * a2[k * aks]);
      r20 = _mm512_fmadd_pd(av, b0, r20);
      r21 = _mm512_fmadd_pd(av, b1, r21);
      r22 = _mm512_fmadd_pd(av, b2, r22);
      r23 = _mm512_fmadd_pd(av, b3, r23);
      av = _mm512_set1_pd(alpha * a3[k * aks]);
      r30 = _mm512_fmadd_pd(av, b0, r30);
      r31 = _mm512_fmadd_pd(av, b1, r31);
      r32 = _mm512_fmadd_pd(av, b2, r32);
      r33 = _mm512_fmadd_pd(av, b3, r33);
    }
    _mm512_storeu_pd(c0 + q, r00);
    _mm512_storeu_pd(c0 + q + 8, r01);
    _mm512_storeu_pd(c0 + q + 16, r02);
    _mm512_storeu_pd(c0 + q + 24, r03);
    _mm512_storeu_pd(c1 + q, r10);
    _mm512_storeu_pd(c1 + q + 8, r11);
    _mm512_storeu_pd(c1 + q + 16, r12);
    _mm512_storeu_pd(c1 + q + 24, r13);
    _mm512_storeu_pd(c2 + q, r20);
    _mm512_storeu_pd(c2 + q + 8, r21);
    _mm512_storeu_pd(c2 + q + 16, r22);
    _mm512_storeu_pd(c2 + q + 24, r23);
    _mm512_storeu_pd(c3 + q, r30);
    _mm512_storeu_pd(c3 + q + 8, r31);
    _mm512_storeu_pd(c3 + q + 16, r32);
    _mm512_storeu_pd(c3 + q + 24, r33);
  }
  for (; q + 8 <= qn; q += 8) {
    __m512d r0, r1, r2, r3;
    if (zero) {
      r0 = r1 = r2 = r3 = _mm512_setzero_pd();
    } else {
      r0 = _mm512_loadu_pd(c0 + q);
      r1 = _mm512_loadu_pd(c1 + q);
      r2 = _mm512_loadu_pd(c2 + q);
      r3 = _mm512_loadu_pd(c3 + q);
    }
    for (Index k = 0; k < kk; ++k) {
      const __m512d bv = _mm512_loadu_pd(b + k * ldb + q);
      r0 = _mm512_fmadd_pd(_mm512_set1_pd(alpha * a0[k * aks]), bv, r0);
      r1 = _mm512_fmadd_pd(_mm512_set1_pd(alpha * a1[k * aks]), bv, r1);
      r2 = _mm512_fmadd_pd(_mm512_set1_pd(alpha * a2[k * aks]), bv, r2);
      r3 = _mm512_fmadd_pd(_mm512_set1_pd(alpha * a3[k * aks]), bv, r3);
    }
    _mm512_storeu_pd(c0 + q, r0);
    _mm512_storeu_pd(c1 + q, r1);
    _mm512_storeu_pd(c2 + q, r2);
    _mm512_storeu_pd(c3 + q, r3);
  }
  if (q < qn) {
    // Masked column tail: lanes past qn never load or store, and the fma on
    // a zeroed lane is dead, so the per-element chain is untouched.
    const __mmask8 mk =
        static_cast<__mmask8>((1u << static_cast<unsigned>(qn - q)) - 1u);
    __m512d r0, r1, r2, r3;
    if (zero) {
      r0 = r1 = r2 = r3 = _mm512_setzero_pd();
    } else {
      r0 = _mm512_maskz_loadu_pd(mk, c0 + q);
      r1 = _mm512_maskz_loadu_pd(mk, c1 + q);
      r2 = _mm512_maskz_loadu_pd(mk, c2 + q);
      r3 = _mm512_maskz_loadu_pd(mk, c3 + q);
    }
    for (Index k = 0; k < kk; ++k) {
      const __m512d bv = _mm512_maskz_loadu_pd(mk, b + k * ldb + q);
      r0 = _mm512_fmadd_pd(_mm512_set1_pd(alpha * a0[k * aks]), bv, r0);
      r1 = _mm512_fmadd_pd(_mm512_set1_pd(alpha * a1[k * aks]), bv, r1);
      r2 = _mm512_fmadd_pd(_mm512_set1_pd(alpha * a2[k * aks]), bv, r2);
      r3 = _mm512_fmadd_pd(_mm512_set1_pd(alpha * a3[k * aks]), bv, r3);
    }
    _mm512_mask_storeu_pd(c0 + q, mk, r0);
    _mm512_mask_storeu_pd(c1 + q, mk, r1);
    _mm512_mask_storeu_pd(c2 + q, mk, r2);
    _mm512_mask_storeu_pd(c3 + q, mk, r3);
  }
}

// Single-row remainder: 1 x 32 then 1 x 8 then a masked tail.
PHMSE_TGT_AVX512 void tile1_avx512(double alpha, const double* a0, Index aks,
                                   const double* b, Index ldb, double* c0,
                                   Index kk, Index qn, bool zero) {
  Index q = 0;
  for (; q + 32 <= qn; q += 32) {
    __m512d r0, r1, r2, r3;
    if (zero) {
      r0 = r1 = r2 = r3 = _mm512_setzero_pd();
    } else {
      r0 = _mm512_loadu_pd(c0 + q);
      r1 = _mm512_loadu_pd(c0 + q + 8);
      r2 = _mm512_loadu_pd(c0 + q + 16);
      r3 = _mm512_loadu_pd(c0 + q + 24);
    }
    for (Index k = 0; k < kk; ++k) {
      const double* const bk = b + k * ldb + q;
      const __m512d av = _mm512_set1_pd(alpha * a0[k * aks]);
      r0 = _mm512_fmadd_pd(av, _mm512_loadu_pd(bk), r0);
      r1 = _mm512_fmadd_pd(av, _mm512_loadu_pd(bk + 8), r1);
      r2 = _mm512_fmadd_pd(av, _mm512_loadu_pd(bk + 16), r2);
      r3 = _mm512_fmadd_pd(av, _mm512_loadu_pd(bk + 24), r3);
    }
    _mm512_storeu_pd(c0 + q, r0);
    _mm512_storeu_pd(c0 + q + 8, r1);
    _mm512_storeu_pd(c0 + q + 16, r2);
    _mm512_storeu_pd(c0 + q + 24, r3);
  }
  for (; q + 8 <= qn; q += 8) {
    __m512d r0 = zero ? _mm512_setzero_pd() : _mm512_loadu_pd(c0 + q);
    for (Index k = 0; k < kk; ++k) {
      r0 = _mm512_fmadd_pd(_mm512_set1_pd(alpha * a0[k * aks]),
                           _mm512_loadu_pd(b + k * ldb + q), r0);
    }
    _mm512_storeu_pd(c0 + q, r0);
  }
  if (q < qn) {
    const __mmask8 mk =
        static_cast<__mmask8>((1u << static_cast<unsigned>(qn - q)) - 1u);
    __m512d r0 = zero ? _mm512_setzero_pd() : _mm512_maskz_loadu_pd(mk, c0 + q);
    for (Index k = 0; k < kk; ++k) {
      r0 = _mm512_fmadd_pd(_mm512_set1_pd(alpha * a0[k * aks]),
                           _mm512_maskz_loadu_pd(mk, b + k * ldb + q), r0);
    }
    _mm512_mask_storeu_pd(c0 + q, mk, r0);
  }
}

// 4 C rows x 8 columns (2 ymm per row); AVX2 has 16 vector registers, so
// the tile is sized to keep the 8 accumulators plus B/broadcast temps
// resident.  Column remainders go through exact scalar std::fma chains.
PHMSE_TGT_AVX2 void tile4_avx2(double alpha, const double* a0, Index ars,
                               Index aks, const double* b, Index ldb,
                               double* c0, Index ldc, Index kk, Index qn,
                               bool zero) {
  const double* const a1 = a0 + ars;
  const double* const a2 = a1 + ars;
  const double* const a3 = a2 + ars;
  double* const c1 = c0 + ldc;
  double* const c2 = c1 + ldc;
  double* const c3 = c2 + ldc;
  Index q = 0;
  for (; q + 8 <= qn; q += 8) {
    __m256d r00, r01, r10, r11, r20, r21, r30, r31;
    if (zero) {
      r00 = r01 = _mm256_setzero_pd();
      r10 = r11 = _mm256_setzero_pd();
      r20 = r21 = _mm256_setzero_pd();
      r30 = r31 = _mm256_setzero_pd();
    } else {
      r00 = _mm256_loadu_pd(c0 + q);
      r01 = _mm256_loadu_pd(c0 + q + 4);
      r10 = _mm256_loadu_pd(c1 + q);
      r11 = _mm256_loadu_pd(c1 + q + 4);
      r20 = _mm256_loadu_pd(c2 + q);
      r21 = _mm256_loadu_pd(c2 + q + 4);
      r30 = _mm256_loadu_pd(c3 + q);
      r31 = _mm256_loadu_pd(c3 + q + 4);
    }
    for (Index k = 0; k < kk; ++k) {
      const double* const bk = b + k * ldb + q;
      const __m256d b0 = _mm256_loadu_pd(bk);
      const __m256d b1 = _mm256_loadu_pd(bk + 4);
      __m256d av = _mm256_set1_pd(alpha * a0[k * aks]);
      r00 = _mm256_fmadd_pd(av, b0, r00);
      r01 = _mm256_fmadd_pd(av, b1, r01);
      av = _mm256_set1_pd(alpha * a1[k * aks]);
      r10 = _mm256_fmadd_pd(av, b0, r10);
      r11 = _mm256_fmadd_pd(av, b1, r11);
      av = _mm256_set1_pd(alpha * a2[k * aks]);
      r20 = _mm256_fmadd_pd(av, b0, r20);
      r21 = _mm256_fmadd_pd(av, b1, r21);
      av = _mm256_set1_pd(alpha * a3[k * aks]);
      r30 = _mm256_fmadd_pd(av, b0, r30);
      r31 = _mm256_fmadd_pd(av, b1, r31);
    }
    _mm256_storeu_pd(c0 + q, r00);
    _mm256_storeu_pd(c0 + q + 4, r01);
    _mm256_storeu_pd(c1 + q, r10);
    _mm256_storeu_pd(c1 + q + 4, r11);
    _mm256_storeu_pd(c2 + q, r20);
    _mm256_storeu_pd(c2 + q + 4, r21);
    _mm256_storeu_pd(c3 + q, r30);
    _mm256_storeu_pd(c3 + q + 4, r31);
  }
  for (; q + 4 <= qn; q += 4) {
    __m256d r0, r1, r2, r3;
    if (zero) {
      r0 = r1 = r2 = r3 = _mm256_setzero_pd();
    } else {
      r0 = _mm256_loadu_pd(c0 + q);
      r1 = _mm256_loadu_pd(c1 + q);
      r2 = _mm256_loadu_pd(c2 + q);
      r3 = _mm256_loadu_pd(c3 + q);
    }
    for (Index k = 0; k < kk; ++k) {
      const __m256d bv = _mm256_loadu_pd(b + k * ldb + q);
      r0 = _mm256_fmadd_pd(_mm256_set1_pd(alpha * a0[k * aks]), bv, r0);
      r1 = _mm256_fmadd_pd(_mm256_set1_pd(alpha * a1[k * aks]), bv, r1);
      r2 = _mm256_fmadd_pd(_mm256_set1_pd(alpha * a2[k * aks]), bv, r2);
      r3 = _mm256_fmadd_pd(_mm256_set1_pd(alpha * a3[k * aks]), bv, r3);
    }
    _mm256_storeu_pd(c0 + q, r0);
    _mm256_storeu_pd(c1 + q, r1);
    _mm256_storeu_pd(c2 + q, r2);
    _mm256_storeu_pd(c3 + q, r3);
  }
  for (; q < qn; ++q) {
    double s0 = zero ? 0.0 : c0[q];
    double s1 = zero ? 0.0 : c1[q];
    double s2 = zero ? 0.0 : c2[q];
    double s3 = zero ? 0.0 : c3[q];
    for (Index k = 0; k < kk; ++k) {
      const double bv = b[k * ldb + q];
      s0 = std::fma(alpha * a0[k * aks], bv, s0);
      s1 = std::fma(alpha * a1[k * aks], bv, s1);
      s2 = std::fma(alpha * a2[k * aks], bv, s2);
      s3 = std::fma(alpha * a3[k * aks], bv, s3);
    }
    c0[q] = s0;
    c1[q] = s1;
    c2[q] = s2;
    c3[q] = s3;
  }
}

PHMSE_TGT_AVX2 void tile1_avx2(double alpha, const double* a0, Index aks,
                               const double* b, Index ldb, double* c0,
                               Index kk, Index qn, bool zero) {
  Index q = 0;
  for (; q + 8 <= qn; q += 8) {
    __m256d r0, r1;
    if (zero) {
      r0 = r1 = _mm256_setzero_pd();
    } else {
      r0 = _mm256_loadu_pd(c0 + q);
      r1 = _mm256_loadu_pd(c0 + q + 4);
    }
    for (Index k = 0; k < kk; ++k) {
      const double* const bk = b + k * ldb + q;
      const __m256d av = _mm256_set1_pd(alpha * a0[k * aks]);
      r0 = _mm256_fmadd_pd(av, _mm256_loadu_pd(bk), r0);
      r1 = _mm256_fmadd_pd(av, _mm256_loadu_pd(bk + 4), r1);
    }
    _mm256_storeu_pd(c0 + q, r0);
    _mm256_storeu_pd(c0 + q + 4, r1);
  }
  for (; q + 4 <= qn; q += 4) {
    __m256d r0 = zero ? _mm256_setzero_pd() : _mm256_loadu_pd(c0 + q);
    for (Index k = 0; k < kk; ++k) {
      r0 = _mm256_fmadd_pd(_mm256_set1_pd(alpha * a0[k * aks]),
                           _mm256_loadu_pd(b + k * ldb + q), r0);
    }
    _mm256_storeu_pd(c0 + q, r0);
  }
  for (; q < qn; ++q) {
    double s0 = zero ? 0.0 : c0[q];
    for (Index k = 0; k < kk; ++k) {
      s0 = std::fma(alpha * a0[k * aks], b[k * ldb + q], s0);
    }
    c0[q] = s0;
  }
}

#endif  // PHMSE_SIMD_X86

#if PHMSE_SIMD_NEON

// 4 C rows x 4 columns (2 q-regs per row); AArch64 has 32 vector registers,
// so the 8 accumulators plus temps stay resident.
void tile4_neon(double alpha, const double* a0, Index ars, Index aks,
                const double* b, Index ldb, double* c0, Index ldc, Index kk,
                Index qn, bool zero) {
  const double* const a1 = a0 + ars;
  const double* const a2 = a1 + ars;
  const double* const a3 = a2 + ars;
  double* const c1 = c0 + ldc;
  double* const c2 = c1 + ldc;
  double* const c3 = c2 + ldc;
  Index q = 0;
  for (; q + 4 <= qn; q += 4) {
    float64x2_t r00, r01, r10, r11, r20, r21, r30, r31;
    if (zero) {
      r00 = r01 = vdupq_n_f64(0.0);
      r10 = r11 = vdupq_n_f64(0.0);
      r20 = r21 = vdupq_n_f64(0.0);
      r30 = r31 = vdupq_n_f64(0.0);
    } else {
      r00 = vld1q_f64(c0 + q);
      r01 = vld1q_f64(c0 + q + 2);
      r10 = vld1q_f64(c1 + q);
      r11 = vld1q_f64(c1 + q + 2);
      r20 = vld1q_f64(c2 + q);
      r21 = vld1q_f64(c2 + q + 2);
      r30 = vld1q_f64(c3 + q);
      r31 = vld1q_f64(c3 + q + 2);
    }
    for (Index k = 0; k < kk; ++k) {
      const double* const bk = b + k * ldb + q;
      const float64x2_t b0 = vld1q_f64(bk);
      const float64x2_t b1 = vld1q_f64(bk + 2);
      float64x2_t av = vdupq_n_f64(alpha * a0[k * aks]);
      r00 = vfmaq_f64(r00, av, b0);
      r01 = vfmaq_f64(r01, av, b1);
      av = vdupq_n_f64(alpha * a1[k * aks]);
      r10 = vfmaq_f64(r10, av, b0);
      r11 = vfmaq_f64(r11, av, b1);
      av = vdupq_n_f64(alpha * a2[k * aks]);
      r20 = vfmaq_f64(r20, av, b0);
      r21 = vfmaq_f64(r21, av, b1);
      av = vdupq_n_f64(alpha * a3[k * aks]);
      r30 = vfmaq_f64(r30, av, b0);
      r31 = vfmaq_f64(r31, av, b1);
    }
    vst1q_f64(c0 + q, r00);
    vst1q_f64(c0 + q + 2, r01);
    vst1q_f64(c1 + q, r10);
    vst1q_f64(c1 + q + 2, r11);
    vst1q_f64(c2 + q, r20);
    vst1q_f64(c2 + q + 2, r21);
    vst1q_f64(c3 + q, r30);
    vst1q_f64(c3 + q + 2, r31);
  }
  for (; q < qn; ++q) {
    double s0 = zero ? 0.0 : c0[q];
    double s1 = zero ? 0.0 : c1[q];
    double s2 = zero ? 0.0 : c2[q];
    double s3 = zero ? 0.0 : c3[q];
    for (Index k = 0; k < kk; ++k) {
      const double bv = b[k * ldb + q];
      s0 = std::fma(alpha * a0[k * aks], bv, s0);
      s1 = std::fma(alpha * a1[k * aks], bv, s1);
      s2 = std::fma(alpha * a2[k * aks], bv, s2);
      s3 = std::fma(alpha * a3[k * aks], bv, s3);
    }
    c0[q] = s0;
    c1[q] = s1;
    c2[q] = s2;
    c3[q] = s3;
  }
}

void tile1_neon(double alpha, const double* a0, Index aks, const double* b,
                Index ldb, double* c0, Index kk, Index qn, bool zero) {
  Index q = 0;
  for (; q + 4 <= qn; q += 4) {
    float64x2_t r0, r1;
    if (zero) {
      r0 = r1 = vdupq_n_f64(0.0);
    } else {
      r0 = vld1q_f64(c0 + q);
      r1 = vld1q_f64(c0 + q + 2);
    }
    for (Index k = 0; k < kk; ++k) {
      const double* const bk = b + k * ldb + q;
      const float64x2_t av = vdupq_n_f64(alpha * a0[k * aks]);
      r0 = vfmaq_f64(r0, av, vld1q_f64(bk));
      r1 = vfmaq_f64(r1, av, vld1q_f64(bk + 2));
    }
    vst1q_f64(c0 + q, r0);
    vst1q_f64(c0 + q + 2, r1);
  }
  for (; q < qn; ++q) {
    double s0 = zero ? 0.0 : c0[q];
    for (Index k = 0; k < kk; ++k) {
      s0 = std::fma(alpha * a0[k * aks], b[k * ldb + q], s0);
    }
    c0[q] = s0;
  }
}

#endif  // PHMSE_SIMD_NEON

using Tile4Fn = void (*)(double, const double*, Index, Index, const double*,
                         Index, double*, Index, Index, Index, bool);
using Tile1Fn = void (*)(double, const double*, Index, const double*, Index,
                         double*, Index, Index, bool);

// Strip-mined driver shared by every microkernel set: columns in
// kGemmColStrip L1 strips (the kk x strip B panel stays resident across row
// tiles), rows in tiles of 4 with a single-row remainder.
void panel_driver(Tile4Fn t4, Tile1Fn t1, double alpha, const double* a,
                  Index ars, Index aks, const double* b, Index ldb, double* c,
                  Index ldc, Index mm, Index kk, Index nn, bool zero) {
  if (mm <= 0 || nn <= 0) return;
  if (kk <= 0) {
    if (zero) {
      for (Index i = 0; i < mm; ++i) {
        std::fill(c + i * ldc, c + i * ldc + nn, 0.0);
      }
    }
    return;
  }
  for (Index q0 = 0; q0 < nn; q0 += kGemmColStrip) {
    const Index qn = std::min(nn - q0, kGemmColStrip);
    const double* const bq = b + q0;
    double* const cq = c + q0;
    Index i0 = 0;
    for (; i0 + 4 <= mm; i0 += 4) {
      t4(alpha, a + i0 * ars, ars, aks, bq, ldb, cq + i0 * ldc, ldc, kk, qn,
         zero);
    }
    for (; i0 < mm; ++i0) {
      t1(alpha, a + i0 * ars, aks, bq, ldb, cq + i0 * ldc, kk, qn, zero);
    }
  }
}

// One GEMM panel with the given microkernel set; kScalar falls back to the
// blocked panels from blas.cpp (same per-element chains).
void gemm_panel(Isa isa, bool trans, bool zero, double alpha, const double* a,
                Index lda, const double* b, Index ldb, double* c, Index ldc,
                Index mm, Index kk, Index nn) {
  const Index ars = trans ? 1 : lda;
  const Index aks = trans ? lda : 1;
  switch (isa) {
#if PHMSE_SIMD_X86
    case Isa::kAvx512:
      panel_driver(tile4_avx512, tile1_avx512, alpha, a, ars, aks, b, ldb, c,
                   ldc, mm, kk, nn, zero);
      return;
    case Isa::kAvx2:
      panel_driver(tile4_avx2, tile1_avx2, alpha, a, ars, aks, b, ldb, c,
                   ldc, mm, kk, nn, zero);
      return;
#endif
#if PHMSE_SIMD_NEON
    case Isa::kNeon:
      panel_driver(tile4_neon, tile1_neon, alpha, a, ars, aks, b, ldb, c,
                   ldc, mm, kk, nn, zero);
      return;
#endif
    default:
      break;
  }
  if (!zero) {
    if (trans) {
      gemm_tn_acc(alpha, a, lda, b, ldb, c, ldc, mm, kk, nn);
    } else {
      gemm_nn_acc(alpha, a, lda, b, ldb, c, ldc, mm, kk, nn);
    }
  } else {
    PHMSE_CHECK(trans, "simd: overwriting nn panel is not used");
    gemm_tn_zero_acc(alpha, a, lda, b, ldb, c, ldc, mm, kk, nn);
  }
}

// The detail/panel_algos.hpp Panels policy over the active microkernel set.
struct SimdPanels {
  static void nn_acc(double alpha, const double* a, Index lda,
                     const double* b, Index ldb, double* c, Index ldc,
                     Index mm, Index kk, Index nn) {
    gemm_panel(active(), /*trans=*/false, /*zero=*/false, alpha, a, lda, b,
               ldb, c, ldc, mm, kk, nn);
  }
  static void tn_acc(double alpha, const double* a, Index lda,
                     const double* b, Index ldb, double* c, Index ldc,
                     Index mm, Index kk, Index nn) {
    gemm_panel(active(), /*trans=*/true, /*zero=*/false, alpha, a, lda, b,
               ldb, c, ldc, mm, kk, nn);
  }
  static void tn_zero_acc(double alpha, const double* a, Index lda,
                          const double* b, Index ldb, double* c, Index ldc,
                          Index mm, Index kk, Index nn) {
    gemm_panel(active(), /*trans=*/true, /*zero=*/true, alpha, a, lda, b,
               ldb, c, ldc, mm, kk, nn);
  }
};

// ---------------------------------------------------------------------------
// Vectorized axpy (y[i] = fma(a, x[i], y[i])) for the streaming kernels.

#if PHMSE_SIMD_X86

PHMSE_TGT_AVX512 void axpy_avx512(double a, const double* x, double* y,
                                  Index n) {
  const __m512d av = _mm512_set1_pd(a);
  Index i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm512_storeu_pd(
        y + i, _mm512_fmadd_pd(av, _mm512_loadu_pd(x + i),
                               _mm512_loadu_pd(y + i)));
    _mm512_storeu_pd(
        y + i + 8, _mm512_fmadd_pd(av, _mm512_loadu_pd(x + i + 8),
                                   _mm512_loadu_pd(y + i + 8)));
  }
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_pd(
        y + i, _mm512_fmadd_pd(av, _mm512_loadu_pd(x + i),
                               _mm512_loadu_pd(y + i)));
  }
  if (i < n) {
    const __mmask8 mk =
        static_cast<__mmask8>((1u << static_cast<unsigned>(n - i)) - 1u);
    _mm512_mask_storeu_pd(
        y + i, mk,
        _mm512_fmadd_pd(av, _mm512_maskz_loadu_pd(mk, x + i),
                        _mm512_maskz_loadu_pd(mk, y + i)));
  }
}

PHMSE_TGT_AVX2 void axpy_avx2(double a, const double* x, double* y, Index n) {
  const __m256d av = _mm256_set1_pd(a);
  Index i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_pd(
        y + i, _mm256_fmadd_pd(av, _mm256_loadu_pd(x + i),
                               _mm256_loadu_pd(y + i)));
    _mm256_storeu_pd(
        y + i + 4, _mm256_fmadd_pd(av, _mm256_loadu_pd(x + i + 4),
                                   _mm256_loadu_pd(y + i + 4)));
  }
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        y + i, _mm256_fmadd_pd(av, _mm256_loadu_pd(x + i),
                               _mm256_loadu_pd(y + i)));
  }
  for (; i < n; ++i) y[i] = std::fma(a, x[i], y[i]);
}

#endif  // PHMSE_SIMD_X86

#if PHMSE_SIMD_NEON

void axpy_neon(double a, const double* x, double* y, Index n) {
  const float64x2_t av = vdupq_n_f64(a);
  Index i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f64(y + i, vfmaq_f64(vld1q_f64(y + i), av, vld1q_f64(x + i)));
    vst1q_f64(y + i + 2,
              vfmaq_f64(vld1q_f64(y + i + 2), av, vld1q_f64(x + i + 2)));
  }
  for (; i < n; ++i) y[i] = std::fma(a, x[i], y[i]);
}

#endif  // PHMSE_SIMD_NEON

void axpy_scalar_fma(double a, const double* x, double* y, Index n) {
  for (Index i = 0; i < n; ++i) y[i] = std::fma(a, x[i], y[i]);
}

using AxpyFn = void (*)(double, const double*, double*, Index);

AxpyFn resolve_axpy() {
  switch (active()) {
#if PHMSE_SIMD_X86
    case Isa::kAvx512:
      return axpy_avx512;
    case Isa::kAvx2:
      return axpy_avx2;
#endif
#if PHMSE_SIMD_NEON
    case Isa::kNeon:
      return axpy_neon;
#endif
    default:
      return axpy_scalar_fma;
  }
}

AxpyFn axpy_fma() {
  static const AxpyFn fn = resolve_axpy();
  return fn;
}

}  // namespace

const char* active_isa() { return isa_name(active()); }

bool available() { return active() != Isa::kScalar; }

void sparse_dense(par::ExecContext& ctx, const Csr& h, const Matrix& c,
                  Matrix& g) {
  PHMSE_CHECK(h.cols() == c.rows() && c.rows() == c.cols(),
              "sparse_dense: dimension mismatch");
  const Index m = h.rows();
  const Index n = c.cols();
  g.resize_zero(m, n);
  const AxpyFn axpy = axpy_fma();

  auto cost = [&](Index begin, Index end) {
    KernelStats st;
    double nnz = 0.0;
    for (Index j = begin; j < end; ++j) nnz += static_cast<double>(h.row_nnz(j));
    st.flops = 2.0 * nnz * static_cast<double>(n);
    st.bytes_stream = kBytes * static_cast<double>((end - begin) * n);
    st.bytes_irregular = kBytes * nnz * static_cast<double>(n);
    return st;
  };
  auto body = [&](Index begin, Index end, int /*lane*/) {
    for (Index j = begin; j < end; ++j) {
      double* grow = g.row(j).data();
      const auto idx = h.row_indices(j);
      const auto val = h.row_values(j);
      for (std::size_t k = 0; k < idx.size(); ++k) {
        axpy(val[k], c.row(idx[k]).data(), grow, n);
      }
    }
  };
  ctx.parallel(Category::kDenseSparse, m, cost, body);
}

void trsm_lower(par::ExecContext& ctx, const Matrix& l, Matrix& b) {
  detail::trsm_impl<SimdPanels, false>(ctx, l, b);
}

void trsm_lower_transposed(par::ExecContext& ctx, const Matrix& l,
                           Matrix& b) {
  detail::trsm_impl<SimdPanels, true>(ctx, l, b);
}

void gain_times_residual(par::ExecContext& ctx, const Matrix& v,
                         const Vector& r, Vector& dx) {
  PHMSE_CHECK(static_cast<Index>(r.size()) == v.rows(),
              "gain_times_residual: residual size mismatch");
  PHMSE_CHECK(static_cast<Index>(dx.size()) == v.cols(),
              "gain_times_residual: output size mismatch");
  const Index m = v.rows();
  const AxpyFn axpy = axpy_fma();

  auto cost = [&](Index begin, Index end) {
    KernelStats st;
    const double cols = static_cast<double>(end - begin);
    st.flops = 2.0 * cols * static_cast<double>(m);
    st.bytes_stream = kBytes * cols * static_cast<double>(m);
    return st;
  };
  auto body = [&](Index begin, Index end, int /*lane*/) {
    const Index width = end - begin;
    if (width <= 0) return;
    double* const out = dx.data() + begin;
    for (Index j = 0; j < m; ++j) {
      axpy(r[static_cast<std::size_t>(j)], v.row(j).data() + begin, out,
           width);
    }
  };
  ctx.parallel(Category::kMatVec, v.cols(), cost, body);
}

void covariance_downdate(par::ExecContext& ctx, const Matrix& v,
                         const Matrix& g, Matrix& c) {
  detail::covariance_downdate_impl<SimdPanels>(ctx, v, g, c);
}

void gram(par::ExecContext& ctx, const Matrix& w, Matrix& out) {
  detail::gram_impl<SimdPanels>(ctx, w, out);
}

CholeskyResult cholesky_factor(par::ExecContext& ctx, Matrix& a,
                               Index block_size) {
  return detail::cholesky_factor_impl<SimdPanels>(ctx, a, block_size);
}

std::vector<std::string> testable_isas() {
  std::vector<std::string> out;
  for (const Isa isa : {Isa::kAvx512, Isa::kAvx2, Isa::kNeon}) {
    if (isa_usable(isa)) out.emplace_back(isa_name(isa));
  }
  return out;
}

void gemm_panel_for_isa(std::string_view isa, bool trans, bool zero,
                        double alpha, const double* a, Index lda,
                        const double* b, Index ldb, double* c, Index ldc,
                        Index mm, Index kk, Index nn) {
  Isa resolved = Isa::kScalar;
  if (isa == "avx512") {
    resolved = Isa::kAvx512;
  } else if (isa == "avx2") {
    resolved = Isa::kAvx2;
  } else if (isa == "neon") {
    resolved = Isa::kNeon;
  } else {
    PHMSE_CHECK(isa == "scalar", "gemm_panel_for_isa: unknown ISA name");
  }
  PHMSE_CHECK(isa_usable(resolved),
              "gemm_panel_for_isa: ISA not usable on this build/CPU");
  gemm_panel(resolved, trans, zero, alpha, a, lda, b, ldb, c, ldc, mm, kk,
             nn);
}

}  // namespace phmse::linalg::simd
