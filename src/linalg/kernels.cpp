// Dispatch layer: the public kernel entry points forward to the
// process-default Backend (see backend.hpp).  Callers that need a specific
// backend (e.g. a solve compiled with SolveOptions.backend) hold a
// `const Backend*` and call through its table directly.
//
// The element-wise vector utilities at the bottom are backend-independent:
// they are bandwidth-bound single-pass loops with nothing to specialize, so
// they live here rather than in the per-backend tables.
#include "linalg/kernels.hpp"

#include "linalg/backend.hpp"
#include "linalg/blas.hpp"
#include "linalg/cholesky.hpp"
#include "support/check.hpp"

namespace phmse::linalg {
namespace {

using par::KernelStats;
using perf::Category;

constexpr double kBytes = 8.0;  // sizeof(double)

}  // namespace

void sparse_dense(par::ExecContext& ctx, const Csr& h, const Matrix& c,
                  Matrix& g) {
  default_backend().sparse_dense(ctx, h, c, g);
}

void innovation_covariance(par::ExecContext& ctx, const Matrix& g,
                           const Csr& h, const Vector& r_diag, Matrix& s) {
  default_backend().innovation_covariance(ctx, g, h, r_diag, s);
}

void trsm_lower(par::ExecContext& ctx, const Matrix& l, Matrix& b) {
  default_backend().trsm_lower(ctx, l, b);
}

void trsm_lower_transposed(par::ExecContext& ctx, const Matrix& l,
                           Matrix& b) {
  default_backend().trsm_lower_transposed(ctx, l, b);
}

void gain_times_residual(par::ExecContext& ctx, const Matrix& v,
                         const Vector& r, Vector& dx) {
  default_backend().gain_times_residual(ctx, v, r, dx);
}

void covariance_downdate(par::ExecContext& ctx, const Matrix& v,
                         const Matrix& g, Matrix& c) {
  default_backend().covariance_downdate(ctx, v, g, c);
}

void gram(par::ExecContext& ctx, const Matrix& w, Matrix& out) {
  default_backend().gram(ctx, w, out);
}

CholeskyResult cholesky_factor(par::ExecContext& ctx, Matrix& a,
                               Index block_size) {
  return default_backend().cholesky_factor(ctx, a, block_size);
}

void cholesky(par::ExecContext& ctx, Matrix& a, Index block_size) {
  const CholeskyResult r = cholesky_factor(ctx, a, block_size);
  PHMSE_CHECK(r.ok(), "cholesky: matrix is not positive definite");
}

void rank1_update(par::ExecContext& ctx, const Vector& v, double coeff,
                  Matrix& c) {
  PHMSE_CHECK(c.rows() == c.cols() &&
                  c.rows() == static_cast<Index>(v.size()),
              "rank1_update: dimension mismatch");
  const Index n = c.rows();
  auto cost = [&](Index begin, Index end) {
    KernelStats st;
    const double rows = static_cast<double>(end - begin);
    st.flops = 2.0 * rows * static_cast<double>(n);
    st.bytes_stream = kBytes * (2.0 * rows * static_cast<double>(n));
    return st;
  };
  auto body = [&](Index begin, Index end, int /*lane*/) {
    for (Index i = begin; i < end; ++i) {
      axpy(coeff * v[static_cast<std::size_t>(i)], v.data(),
           c.row(i).data(), n);
    }
  };
  ctx.parallel(Category::kMatVec, n, cost, body);
}

void vec_sub(par::ExecContext& ctx, const Vector& a, const Vector& b,
             Vector& out) {
  PHMSE_CHECK(a.size() == b.size(), "vec_sub: size mismatch");
  out.resize(a.size());
  const Index n = static_cast<Index>(a.size());
  auto cost = [&](Index begin, Index end) {
    KernelStats st;
    st.flops = static_cast<double>(end - begin);
    st.bytes_stream = 3.0 * kBytes * static_cast<double>(end - begin);
    return st;
  };
  auto body = [&](Index begin, Index end, int /*lane*/) {
    for (Index i = begin; i < end; ++i) {
      out[static_cast<std::size_t>(i)] =
          a[static_cast<std::size_t>(i)] - b[static_cast<std::size_t>(i)];
    }
  };
  ctx.parallel(Category::kVector, n, cost, body);
}

void vec_add_inplace(par::ExecContext& ctx, const Vector& x, Vector& y) {
  PHMSE_CHECK(x.size() == y.size(), "vec_add_inplace: size mismatch");
  const Index n = static_cast<Index>(x.size());
  auto cost = [&](Index begin, Index end) {
    KernelStats st;
    st.flops = static_cast<double>(end - begin);
    st.bytes_stream = 3.0 * kBytes * static_cast<double>(end - begin);
    return st;
  };
  auto body = [&](Index begin, Index end, int /*lane*/) {
    for (Index i = begin; i < end; ++i) {
      y[static_cast<std::size_t>(i)] += x[static_cast<std::size_t>(i)];
    }
  };
  ctx.parallel(Category::kVector, n, cost, body);
}

void symmetrize(par::ExecContext& ctx, Matrix& c) {
  PHMSE_CHECK(c.rows() == c.cols(), "symmetrize: matrix must be square");
  const Index n = c.rows();
  auto cost = [&](Index begin, Index end) {
    KernelStats st;
    const double rows = static_cast<double>(end - begin);
    st.flops = rows * static_cast<double>(n);
    st.bytes_stream = kBytes * rows * static_cast<double>(n);
    st.bytes_irregular = kBytes * rows * static_cast<double>(n);
    return st;
  };
  auto body = [&](Index begin, Index end, int /*lane*/) {
    // Each lane owns rows [begin,end) and writes only the (i,j) entries with
    // i in its range; mirror entries (j,i) are owned by the lane covering j,
    // so a two-phase scheme is unnecessary: compute the average from a
    // consistent snapshot by only touching pairs where both i and j are in
    // range, and handle cross-lane pairs by having the lower-row lane write
    // both sides.  With contiguous chunks i < j implies lane(i) <= lane(j);
    // letting the lane that owns i (the smaller index) write both entries is
    // race-free because each (i,j) pair has exactly one writer.
    for (Index i = begin; i < end; ++i) {
      for (Index j = i + 1; j < n; ++j) {
        const double avg = 0.5 * (c(i, j) + c(j, i));
        c(i, j) = avg;
        c(j, i) = avg;
      }
    }
  };
  ctx.parallel(Category::kVector, n, cost, body);
}

}  // namespace phmse::linalg
