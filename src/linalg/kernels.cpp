#include "linalg/kernels.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/blas.hpp"
#include "support/check.hpp"

namespace phmse::linalg {
namespace {

using par::KernelStats;
using perf::Category;

constexpr double kBytes = 8.0;  // sizeof(double)

}  // namespace

void sparse_dense(par::ExecContext& ctx, const Csr& h, const Matrix& c,
                  Matrix& g) {
  PHMSE_CHECK(h.cols() == c.rows() && c.rows() == c.cols(),
              "sparse_dense: dimension mismatch");
  const Index m = h.rows();
  const Index n = c.cols();
  g.resize_zero(m, n);

  auto cost = [&](Index begin, Index end) {
    KernelStats st;
    double nnz = 0.0;
    for (Index j = begin; j < end; ++j) nnz += static_cast<double>(h.row_nnz(j));
    st.flops = 2.0 * nnz * static_cast<double>(n);
    st.bytes_stream = kBytes * static_cast<double>((end - begin) * n);
    // The gathered C rows: which rows depends on the sparsity pattern, so
    // there is no tiling reuse — the paper's "randomly accesses its dense
    // counterpart".
    st.bytes_irregular = kBytes * nnz * static_cast<double>(n);
    return st;
  };
  auto body = [&](Index begin, Index end, int /*lane*/) {
    for (Index j = begin; j < end; ++j) {
      double* grow = g.row(j).data();
      const auto idx = h.row_indices(j);
      const auto val = h.row_values(j);
      for (std::size_t k = 0; k < idx.size(); ++k) {
        axpy(val[k], c.row(idx[k]).data(), grow, n);
      }
    }
  };
  ctx.parallel(Category::kDenseSparse, m, cost, body);
}

void innovation_covariance(par::ExecContext& ctx, const Matrix& g,
                           const Csr& h, const Vector& r_diag, Matrix& s) {
  PHMSE_CHECK(g.rows() == h.rows() && g.cols() == h.cols(),
              "innovation_covariance: G/H shape mismatch");
  PHMSE_CHECK(static_cast<Index>(r_diag.size()) == h.rows(),
              "innovation_covariance: noise diagonal size mismatch");
  const Index m = h.rows();
  s.resize_zero(m, m);

  auto cost = [&](Index begin, Index end) {
    KernelStats st;
    st.flops = 2.0 * static_cast<double>(end - begin) *
               static_cast<double>(h.nnz());
    st.bytes_stream = kBytes * static_cast<double>((end - begin) * g.cols());
    st.bytes_irregular =
        kBytes * static_cast<double>((end - begin) * h.nnz());
    return st;
  };
  auto body = [&](Index begin, Index end, int /*lane*/) {
    for (Index j = begin; j < end; ++j) {
      const double* grow = g.row(j).data();
      double* srow = s.row(j).data();
      for (Index l = 0; l < m; ++l) {
        const auto idx = h.row_indices(l);
        const auto val = h.row_values(l);
        double acc = 0.0;
        for (std::size_t k = 0; k < idx.size(); ++k) {
          acc += val[k] * grow[idx[k]];
        }
        srow[l] = acc;
      }
      srow[j] += r_diag[static_cast<std::size_t>(j)];
    }
  };
  ctx.parallel(Category::kMatMat, m, cost, body);
}

namespace {

// Shared implementation of the two triangular solves, blocked over rows of
// L so the diagonal block stays L1-resident while it sweeps the lane's
// right-hand-side strip.  Columns of B are independent; each lane owns a
// column slice.  Per block [k0, k1): the contribution of the already-solved
// rows is applied as one register-tiled GEMM panel (B_blk -= L_blk,prev *
// B_prev), then the diagonal block is solved by direct substitution.  The
// substitution order seen by any single element matches the scalar
// reference (ascending p for the forward solve), so the two agree to
// FMA-contraction round-off; see linalg::ref::trsm_lower.
template <bool Transposed>
void trsm_impl(par::ExecContext& ctx, const Matrix& l, Matrix& b) {
  PHMSE_CHECK(l.rows() == l.cols(), "trsm: L must be square");
  PHMSE_CHECK(l.rows() == b.rows(), "trsm: dimension mismatch");
  const Index m = l.rows();
  const Index k = b.cols();

  auto cost = [&](Index begin, Index end) {
    KernelStats st;
    const double cols = static_cast<double>(end - begin);
    st.flops = cols * static_cast<double>(m) * static_cast<double>(m);
    st.bytes_stream = kBytes * (cols * static_cast<double>(m) +
                                0.5 * static_cast<double>(m) *
                                    static_cast<double>(m));
    // The lane's column slice of B is revisited once per row block (it was
    // once per substitution step before blocking).
    st.resident_bytes = kBytes * cols * static_cast<double>(m);
    st.resident_sweeps =
        static_cast<double>((m + kTrsmBlock - 1) / kTrsmBlock);
    return st;
  };
  auto body = [&](Index begin, Index end, int /*lane*/) {
    const Index width = end - begin;
    if (width <= 0 || m <= 0) return;
    const Index ldb = b.cols();
    double* const bbase = b.data() + begin;
    const double* const ldata = l.data();
    if constexpr (!Transposed) {
      for (Index k0 = 0; k0 < m; k0 += kTrsmBlock) {
        const Index bs = std::min(kTrsmBlock, m - k0);
        // B[k0..k0+bs) -= L[k0..k0+bs, 0..k0) * B[0..k0).
        gemm_nn_acc(-1.0, ldata + k0 * m, m, bbase, ldb, bbase + k0 * ldb,
                    ldb, bs, k0, width);
        for (Index i = k0; i < k0 + bs; ++i) {
          double* bi = bbase + i * ldb;
          const double* lrow = ldata + i * m;
          for (Index p = k0; p < i; ++p) {
            const double lip = lrow[p];
            const double* bp = bbase + p * ldb;
            for (Index q = 0; q < width; ++q) {
              bi[q] = std::fma(-lip, bp[q], bi[q]);
            }
          }
          const double inv = 1.0 / lrow[i];
          for (Index q = 0; q < width; ++q) bi[q] *= inv;
        }
      }
    } else {
      for (Index k0 = ((m - 1) / kTrsmBlock) * kTrsmBlock; k0 >= 0;
           k0 -= kTrsmBlock) {
        const Index k1 = std::min(k0 + kTrsmBlock, m);
        // B[k0..k1) -= L[k1..m, k0..k1)^T * B[k1..m).
        gemm_tn_acc(-1.0, ldata + k1 * m + k0, m, bbase + k1 * ldb, ldb,
                    bbase + k0 * ldb, ldb, k1 - k0, m - k1, width);
        for (Index i = k1 - 1; i >= k0; --i) {
          double* bi = bbase + i * ldb;
          for (Index p = i + 1; p < k1; ++p) {
            const double lpi = ldata[p * m + i];
            const double* bp = bbase + p * ldb;
            for (Index q = 0; q < width; ++q) {
              bi[q] = std::fma(-lpi, bp[q], bi[q]);
            }
          }
          const double inv = 1.0 / ldata[i * m + i];
          for (Index q = 0; q < width; ++q) bi[q] *= inv;
        }
      }
    }
  };
  ctx.parallel(Category::kSystemSolve, k, cost, body);
}

}  // namespace

void trsm_lower(par::ExecContext& ctx, const Matrix& l, Matrix& b) {
  trsm_impl<false>(ctx, l, b);
}

void trsm_lower_transposed(par::ExecContext& ctx, const Matrix& l,
                           Matrix& b) {
  trsm_impl<true>(ctx, l, b);
}

void gain_times_residual(par::ExecContext& ctx, const Matrix& v,
                         const Vector& r, Vector& dx) {
  PHMSE_CHECK(static_cast<Index>(r.size()) == v.rows(),
              "gain_times_residual: residual size mismatch");
  PHMSE_CHECK(static_cast<Index>(dx.size()) == v.cols(),
              "gain_times_residual: output size mismatch");
  const Index m = v.rows();

  auto cost = [&](Index begin, Index end) {
    KernelStats st;
    const double cols = static_cast<double>(end - begin);
    st.flops = 2.0 * cols * static_cast<double>(m);
    st.bytes_stream = kBytes * cols * static_cast<double>(m);
    return st;
  };
  auto body = [&](Index begin, Index end, int /*lane*/) {
    for (Index j = 0; j < m; ++j) {
      const double rj = r[static_cast<std::size_t>(j)];
      const double* vrow = v.row(j).data();
      for (Index i = begin; i < end; ++i) {
        dx[static_cast<std::size_t>(i)] += rj * vrow[i];
      }
    }
  };
  ctx.parallel(Category::kMatVec, v.cols(), cost, body);
}

void covariance_downdate(par::ExecContext& ctx, const Matrix& v,
                         const Matrix& g, Matrix& c) {
  PHMSE_CHECK(v.rows() == g.rows() && v.cols() == g.cols(),
              "covariance_downdate: V/G shape mismatch");
  PHMSE_CHECK(c.rows() == c.cols() && c.rows() == v.cols(),
              "covariance_downdate: C shape mismatch");
  const Index m = v.rows();
  const Index n = c.rows();

  auto cost = [&](Index begin, Index end) {
    KernelStats st;
    const double rows = static_cast<double>(end - begin);
    st.flops = 2.0 * rows * static_cast<double>(m) * static_cast<double>(n);
    // C rows read+written once; G's compulsory traffic charged once.
    st.bytes_stream =
        kBytes * (2.0 * rows * static_cast<double>(n) +
                  static_cast<double>(m) * static_cast<double>(n));
    // The blocked GEMM keeps an m x kGemmColStrip panel of G resident and
    // re-sweeps it once per register row tile (it was the full m x n block
    // once per covariance row before blocking); machines with a finite
    // modeled cache penalize overflow.
    st.resident_bytes =
        kBytes * static_cast<double>(m) *
        static_cast<double>(std::min(n, kGemmColStrip));
    st.resident_sweeps = rows / static_cast<double>(kGemmRowTile);
    return st;
  };
  auto body = [&](Index begin, Index end, int /*lane*/) {
    if (end <= begin || m <= 0) return;
    // C[begin..end) -= (V^T G)[begin..end): a register-tiled rank-m panel
    // update; coefficients are the columns of V.
    gemm_tn_acc(-1.0, v.data() + begin, n, g.data(), n, c.row(begin).data(),
                n, end - begin, m, n);
  };
  ctx.parallel(Category::kMatVec, n, cost, body);
}

void gram(par::ExecContext& ctx, const Matrix& w, Matrix& out) {
  const Index m = w.rows();
  const Index n = w.cols();
  // Every entry of `out` is overwritten by the zero-initializing GEMM
  // below, so skip resize_zero's full clearing pass.
  out.resize(n, n);

  auto cost = [&](Index begin, Index end) {
    KernelStats st;
    const double rows = static_cast<double>(end - begin);
    st.flops = 2.0 * rows * static_cast<double>(m) * static_cast<double>(n);
    st.bytes_stream =
        kBytes * (2.0 * rows * static_cast<double>(n) +
                  static_cast<double>(m) * static_cast<double>(n));
    // Same blocked-GEMM traffic pattern as covariance_downdate: an
    // m x kGemmColStrip panel of W resident, swept once per row tile.
    st.resident_bytes =
        kBytes * static_cast<double>(m) *
        static_cast<double>(std::min(n, kGemmColStrip));
    st.resident_sweeps = rows / static_cast<double>(kGemmRowTile);
    return st;
  };
  auto body = [&](Index begin, Index end, int /*lane*/) {
    if (end <= begin) return;
    if (m <= 0) {
      // Rank-0 Gram matrix: the overwrite below never runs, so clear the
      // lane's rows explicitly.
      for (Index i = begin; i < end; ++i) {
        double* const row = out.row(i).data();
        std::fill(row, row + n, 0.0);
      }
      return;
    }
    // out[begin..end) = (W^T W)[begin..end), register-tiled; the strip-wise
    // zero-init replaces the resize_zero clearing pass.
    gemm_tn_zero_acc(1.0, w.data() + begin, n, w.data(), n,
                     out.row(begin).data(), n, end - begin, m, n);
  };
  ctx.parallel(Category::kMatMat, n, cost, body);
}

void rank1_update(par::ExecContext& ctx, const Vector& v, double coeff,
                  Matrix& c) {
  PHMSE_CHECK(c.rows() == c.cols() &&
                  c.rows() == static_cast<Index>(v.size()),
              "rank1_update: dimension mismatch");
  const Index n = c.rows();
  auto cost = [&](Index begin, Index end) {
    KernelStats st;
    const double rows = static_cast<double>(end - begin);
    st.flops = 2.0 * rows * static_cast<double>(n);
    st.bytes_stream = kBytes * (2.0 * rows * static_cast<double>(n));
    return st;
  };
  auto body = [&](Index begin, Index end, int /*lane*/) {
    for (Index i = begin; i < end; ++i) {
      axpy(coeff * v[static_cast<std::size_t>(i)], v.data(),
           c.row(i).data(), n);
    }
  };
  ctx.parallel(Category::kMatVec, n, cost, body);
}

void vec_sub(par::ExecContext& ctx, const Vector& a, const Vector& b,
             Vector& out) {
  PHMSE_CHECK(a.size() == b.size(), "vec_sub: size mismatch");
  out.resize(a.size());
  const Index n = static_cast<Index>(a.size());
  auto cost = [&](Index begin, Index end) {
    KernelStats st;
    st.flops = static_cast<double>(end - begin);
    st.bytes_stream = 3.0 * kBytes * static_cast<double>(end - begin);
    return st;
  };
  auto body = [&](Index begin, Index end, int /*lane*/) {
    for (Index i = begin; i < end; ++i) {
      out[static_cast<std::size_t>(i)] =
          a[static_cast<std::size_t>(i)] - b[static_cast<std::size_t>(i)];
    }
  };
  ctx.parallel(Category::kVector, n, cost, body);
}

void vec_add_inplace(par::ExecContext& ctx, const Vector& x, Vector& y) {
  PHMSE_CHECK(x.size() == y.size(), "vec_add_inplace: size mismatch");
  const Index n = static_cast<Index>(x.size());
  auto cost = [&](Index begin, Index end) {
    KernelStats st;
    st.flops = static_cast<double>(end - begin);
    st.bytes_stream = 3.0 * kBytes * static_cast<double>(end - begin);
    return st;
  };
  auto body = [&](Index begin, Index end, int /*lane*/) {
    for (Index i = begin; i < end; ++i) {
      y[static_cast<std::size_t>(i)] += x[static_cast<std::size_t>(i)];
    }
  };
  ctx.parallel(Category::kVector, n, cost, body);
}

void symmetrize(par::ExecContext& ctx, Matrix& c) {
  PHMSE_CHECK(c.rows() == c.cols(), "symmetrize: matrix must be square");
  const Index n = c.rows();
  auto cost = [&](Index begin, Index end) {
    KernelStats st;
    const double rows = static_cast<double>(end - begin);
    st.flops = rows * static_cast<double>(n);
    st.bytes_stream = kBytes * rows * static_cast<double>(n);
    st.bytes_irregular = kBytes * rows * static_cast<double>(n);
    return st;
  };
  auto body = [&](Index begin, Index end, int /*lane*/) {
    // Each lane owns rows [begin,end) and writes only the (i,j) entries with
    // i in its range; mirror entries (j,i) are owned by the lane covering j,
    // so a two-phase scheme is unnecessary: compute the average from a
    // consistent snapshot by only touching pairs where both i and j are in
    // range, and handle cross-lane pairs by having the lower-row lane write
    // both sides.  With contiguous chunks i < j implies lane(i) <= lane(j);
    // letting the lane that owns i (the smaller index) write both entries is
    // race-free because each (i,j) pair has exactly one writer.
    for (Index i = begin; i < end; ++i) {
      for (Index j = i + 1; j < n; ++j) {
        const double avg = 0.5 * (c(i, j) + c(j, i));
        c(i, j) = avg;
        c(j, i) = avg;
      }
    }
  };
  ctx.parallel(Category::kVector, n, cost, body);
}

}  // namespace phmse::linalg
