#include "linalg/kernels.hpp"

#include "linalg/blas.hpp"
#include "support/check.hpp"

namespace phmse::linalg {
namespace {

using par::KernelStats;
using perf::Category;

constexpr double kBytes = 8.0;  // sizeof(double)

}  // namespace

void sparse_dense(par::ExecContext& ctx, const Csr& h, const Matrix& c,
                  Matrix& g) {
  PHMSE_CHECK(h.cols() == c.rows() && c.rows() == c.cols(),
              "sparse_dense: dimension mismatch");
  const Index m = h.rows();
  const Index n = c.cols();
  g.resize_zero(m, n);

  auto cost = [&](Index begin, Index end) {
    KernelStats st;
    double nnz = 0.0;
    for (Index j = begin; j < end; ++j) nnz += static_cast<double>(h.row_nnz(j));
    st.flops = 2.0 * nnz * static_cast<double>(n);
    st.bytes_stream = kBytes * static_cast<double>((end - begin) * n);
    // The gathered C rows: which rows depends on the sparsity pattern, so
    // there is no tiling reuse — the paper's "randomly accesses its dense
    // counterpart".
    st.bytes_irregular = kBytes * nnz * static_cast<double>(n);
    return st;
  };
  auto body = [&](Index begin, Index end, int /*lane*/) {
    for (Index j = begin; j < end; ++j) {
      double* grow = g.row(j).data();
      const auto idx = h.row_indices(j);
      const auto val = h.row_values(j);
      for (std::size_t k = 0; k < idx.size(); ++k) {
        axpy(val[k], c.row(idx[k]).data(), grow, n);
      }
    }
  };
  ctx.parallel(Category::kDenseSparse, m, cost, body);
}

void innovation_covariance(par::ExecContext& ctx, const Matrix& g,
                           const Csr& h, const Vector& r_diag, Matrix& s) {
  PHMSE_CHECK(g.rows() == h.rows() && g.cols() == h.cols(),
              "innovation_covariance: G/H shape mismatch");
  PHMSE_CHECK(static_cast<Index>(r_diag.size()) == h.rows(),
              "innovation_covariance: noise diagonal size mismatch");
  const Index m = h.rows();
  s.resize_zero(m, m);

  auto cost = [&](Index begin, Index end) {
    KernelStats st;
    st.flops = 2.0 * static_cast<double>(end - begin) *
               static_cast<double>(h.nnz());
    st.bytes_stream = kBytes * static_cast<double>((end - begin) * g.cols());
    st.bytes_irregular =
        kBytes * static_cast<double>((end - begin) * h.nnz());
    return st;
  };
  auto body = [&](Index begin, Index end, int /*lane*/) {
    for (Index j = begin; j < end; ++j) {
      const double* grow = g.row(j).data();
      double* srow = s.row(j).data();
      for (Index l = 0; l < m; ++l) {
        const auto idx = h.row_indices(l);
        const auto val = h.row_values(l);
        double acc = 0.0;
        for (std::size_t k = 0; k < idx.size(); ++k) {
          acc += val[k] * grow[idx[k]];
        }
        srow[l] = acc;
      }
      srow[j] += r_diag[static_cast<std::size_t>(j)];
    }
  };
  ctx.parallel(Category::kMatMat, m, cost, body);
}

namespace {

// Shared implementation of the two triangular solves.  Columns of B are
// independent; each lane sweeps its column slice through all m substitution
// steps, streaming along B's rows.
template <bool Transposed>
void trsm_impl(par::ExecContext& ctx, const Matrix& l, Matrix& b) {
  PHMSE_CHECK(l.rows() == l.cols(), "trsm: L must be square");
  PHMSE_CHECK(l.rows() == b.rows(), "trsm: dimension mismatch");
  const Index m = l.rows();
  const Index k = b.cols();

  auto cost = [&](Index begin, Index end) {
    KernelStats st;
    const double cols = static_cast<double>(end - begin);
    st.flops = cols * static_cast<double>(m) * static_cast<double>(m);
    st.bytes_stream = kBytes * (cols * static_cast<double>(m) +
                                0.5 * static_cast<double>(m) *
                                    static_cast<double>(m));
    // The lane's column slice of B is revisited by every substitution step.
    st.resident_bytes = kBytes * cols * static_cast<double>(m);
    st.resident_sweeps = 0.5 * static_cast<double>(m);
    return st;
  };
  auto body = [&](Index begin, Index end, int /*lane*/) {
    const Index width = end - begin;
    if (width <= 0) return;
    if constexpr (!Transposed) {
      for (Index i = 0; i < m; ++i) {
        double* bi = b.row(i).data() + begin;
        const double* lrow = l.row(i).data();
        for (Index p = 0; p < i; ++p) {
          const double lip = lrow[p];
          const double* bp = b.row(p).data() + begin;
          for (Index q = 0; q < width; ++q) bi[q] -= lip * bp[q];
        }
        const double inv = 1.0 / lrow[i];
        for (Index q = 0; q < width; ++q) bi[q] *= inv;
      }
    } else {
      for (Index i = m - 1; i >= 0; --i) {
        double* bi = b.row(i).data() + begin;
        for (Index p = i + 1; p < m; ++p) {
          const double lpi = l(p, i);
          const double* bp = b.row(p).data() + begin;
          for (Index q = 0; q < width; ++q) bi[q] -= lpi * bp[q];
        }
        const double inv = 1.0 / l(i, i);
        for (Index q = 0; q < width; ++q) bi[q] *= inv;
      }
    }
  };
  ctx.parallel(Category::kSystemSolve, k, cost, body);
}

}  // namespace

void trsm_lower(par::ExecContext& ctx, const Matrix& l, Matrix& b) {
  trsm_impl<false>(ctx, l, b);
}

void trsm_lower_transposed(par::ExecContext& ctx, const Matrix& l,
                           Matrix& b) {
  trsm_impl<true>(ctx, l, b);
}

void gain_times_residual(par::ExecContext& ctx, const Matrix& v,
                         const Vector& r, Vector& dx) {
  PHMSE_CHECK(static_cast<Index>(r.size()) == v.rows(),
              "gain_times_residual: residual size mismatch");
  PHMSE_CHECK(static_cast<Index>(dx.size()) == v.cols(),
              "gain_times_residual: output size mismatch");
  const Index m = v.rows();

  auto cost = [&](Index begin, Index end) {
    KernelStats st;
    const double cols = static_cast<double>(end - begin);
    st.flops = 2.0 * cols * static_cast<double>(m);
    st.bytes_stream = kBytes * cols * static_cast<double>(m);
    return st;
  };
  auto body = [&](Index begin, Index end, int /*lane*/) {
    for (Index j = 0; j < m; ++j) {
      const double rj = r[static_cast<std::size_t>(j)];
      const double* vrow = v.row(j).data();
      for (Index i = begin; i < end; ++i) {
        dx[static_cast<std::size_t>(i)] += rj * vrow[i];
      }
    }
  };
  ctx.parallel(Category::kMatVec, v.cols(), cost, body);
}

void covariance_downdate(par::ExecContext& ctx, const Matrix& v,
                         const Matrix& g, Matrix& c) {
  PHMSE_CHECK(v.rows() == g.rows() && v.cols() == g.cols(),
              "covariance_downdate: V/G shape mismatch");
  PHMSE_CHECK(c.rows() == c.cols() && c.rows() == v.cols(),
              "covariance_downdate: C shape mismatch");
  const Index m = v.rows();
  const Index n = c.rows();

  auto cost = [&](Index begin, Index end) {
    KernelStats st;
    const double rows = static_cast<double>(end - begin);
    st.flops = 2.0 * rows * static_cast<double>(m) * static_cast<double>(n);
    // C rows read+written once; the m rows of G are re-streamed per C row
    // but stay cache-resident for moderate batch sizes, so charge them once
    // per chunk.
    st.bytes_stream =
        kBytes * (2.0 * rows * static_cast<double>(n) +
                  static_cast<double>(m) * static_cast<double>(n));
    // The m x n block of G is re-swept once per covariance row and assumed
    // resident; machines with a finite modeled cache penalize overflow.
    st.resident_bytes = kBytes * static_cast<double>(m) *
                        static_cast<double>(n);
    st.resident_sweeps = rows;
    return st;
  };
  auto body = [&](Index begin, Index end, int /*lane*/) {
    for (Index i = begin; i < end; ++i) {
      double* crow = c.row(i).data();
      for (Index j = 0; j < m; ++j) {
        const double vji = v(j, i);
        axpy(-vji, g.row(j).data(), crow, n);
      }
    }
  };
  ctx.parallel(Category::kMatVec, n, cost, body);
}

void gram(par::ExecContext& ctx, const Matrix& w, Matrix& out) {
  const Index m = w.rows();
  const Index n = w.cols();
  out.resize_zero(n, n);

  auto cost = [&](Index begin, Index end) {
    KernelStats st;
    const double rows = static_cast<double>(end - begin);
    st.flops = 2.0 * rows * static_cast<double>(m) * static_cast<double>(n);
    st.bytes_stream =
        kBytes * (2.0 * rows * static_cast<double>(n) +
                  static_cast<double>(m) * static_cast<double>(n));
    st.resident_bytes = kBytes * static_cast<double>(m) *
                        static_cast<double>(n);
    st.resident_sweeps = rows;
    return st;
  };
  auto body = [&](Index begin, Index end, int /*lane*/) {
    for (Index i = begin; i < end; ++i) {
      double* orow = out.row(i).data();
      for (Index j = 0; j < m; ++j) {
        const double wji = w(j, i);
        axpy(wji, w.row(j).data(), orow, n);
      }
    }
  };
  ctx.parallel(Category::kMatMat, n, cost, body);
}

void rank1_update(par::ExecContext& ctx, const Vector& v, double coeff,
                  Matrix& c) {
  PHMSE_CHECK(c.rows() == c.cols() &&
                  c.rows() == static_cast<Index>(v.size()),
              "rank1_update: dimension mismatch");
  const Index n = c.rows();
  auto cost = [&](Index begin, Index end) {
    KernelStats st;
    const double rows = static_cast<double>(end - begin);
    st.flops = 2.0 * rows * static_cast<double>(n);
    st.bytes_stream = kBytes * (2.0 * rows * static_cast<double>(n));
    return st;
  };
  auto body = [&](Index begin, Index end, int /*lane*/) {
    for (Index i = begin; i < end; ++i) {
      axpy(coeff * v[static_cast<std::size_t>(i)], v.data(),
           c.row(i).data(), n);
    }
  };
  ctx.parallel(Category::kMatVec, n, cost, body);
}

void vec_sub(par::ExecContext& ctx, const Vector& a, const Vector& b,
             Vector& out) {
  PHMSE_CHECK(a.size() == b.size(), "vec_sub: size mismatch");
  out.resize(a.size());
  const Index n = static_cast<Index>(a.size());
  auto cost = [&](Index begin, Index end) {
    KernelStats st;
    st.flops = static_cast<double>(end - begin);
    st.bytes_stream = 3.0 * kBytes * static_cast<double>(end - begin);
    return st;
  };
  auto body = [&](Index begin, Index end, int /*lane*/) {
    for (Index i = begin; i < end; ++i) {
      out[static_cast<std::size_t>(i)] =
          a[static_cast<std::size_t>(i)] - b[static_cast<std::size_t>(i)];
    }
  };
  ctx.parallel(Category::kVector, n, cost, body);
}

void vec_add_inplace(par::ExecContext& ctx, const Vector& x, Vector& y) {
  PHMSE_CHECK(x.size() == y.size(), "vec_add_inplace: size mismatch");
  const Index n = static_cast<Index>(x.size());
  auto cost = [&](Index begin, Index end) {
    KernelStats st;
    st.flops = static_cast<double>(end - begin);
    st.bytes_stream = 3.0 * kBytes * static_cast<double>(end - begin);
    return st;
  };
  auto body = [&](Index begin, Index end, int /*lane*/) {
    for (Index i = begin; i < end; ++i) {
      y[static_cast<std::size_t>(i)] += x[static_cast<std::size_t>(i)];
    }
  };
  ctx.parallel(Category::kVector, n, cost, body);
}

void symmetrize(par::ExecContext& ctx, Matrix& c) {
  PHMSE_CHECK(c.rows() == c.cols(), "symmetrize: matrix must be square");
  const Index n = c.rows();
  auto cost = [&](Index begin, Index end) {
    KernelStats st;
    const double rows = static_cast<double>(end - begin);
    st.flops = rows * static_cast<double>(n);
    st.bytes_stream = kBytes * rows * static_cast<double>(n);
    st.bytes_irregular = kBytes * rows * static_cast<double>(n);
    return st;
  };
  auto body = [&](Index begin, Index end, int /*lane*/) {
    // Each lane owns rows [begin,end) and writes only the (i,j) entries with
    // i in its range; mirror entries (j,i) are owned by the lane covering j,
    // so a two-phase scheme is unnecessary: compute the average from a
    // consistent snapshot by only touching pairs where both i and j are in
    // range, and handle cross-lane pairs by having the lower-row lane write
    // both sides.  With contiguous chunks i < j implies lane(i) <= lane(j);
    // letting the lane that owns i (the smaller index) write both entries is
    // race-free because each (i,j) pair has exactly one writer.
    for (Index i = begin; i < end; ++i) {
      for (Index j = i + 1; j < n; ++j) {
        const double avg = 0.5 * (c(i, j) + c(j, i));
        c(i, j) = avg;
        c(j, i) = avg;
      }
    }
  };
  ctx.parallel(Category::kVector, n, cost, body);
}

}  // namespace phmse::linalg
