#include "linalg/cholesky.hpp"

#include <cmath>

#include "linalg/blas.hpp"
#include "support/check.hpp"

namespace phmse::linalg {
namespace {

using par::KernelStats;
using perf::Category;

constexpr double kBytes = 8.0;

// Factors the diagonal block [k, k+b) in place, using already-final columns
// [0, k) of the panel rows.  Sequential.
void factor_panel(Matrix& a, Index k, Index b) {
  for (Index j = k; j < k + b; ++j) {
    double d = a(j, j) - dot(a.row(j).data() + k, a.row(j).data() + k, j - k);
    PHMSE_CHECK(d > 0.0, "cholesky: matrix is not positive definite");
    d = std::sqrt(d);
    a(j, j) = d;
    const double inv = 1.0 / d;
    for (Index i = j + 1; i < k + b; ++i) {
      const double s =
          a(i, j) - dot(a.row(i).data() + k, a.row(j).data() + k, j - k);
      a(i, j) = s * inv;
    }
  }
}

}  // namespace

void cholesky(par::ExecContext& ctx, Matrix& a, Index block_size) {
  PHMSE_CHECK(a.rows() == a.cols(), "cholesky: matrix must be square");
  PHMSE_CHECK(block_size >= 1, "cholesky: block size must be >= 1");
  const Index n = a.rows();

  for (Index k = 0; k < n; k += block_size) {
    const Index b = std::min(block_size, n - k);

    // Panel factorization: sequential dependency chain.
    ctx.sequential(
        Category::kCholesky,
        [&](Index, Index) {
          KernelStats st;
          const double bd = static_cast<double>(b);
          st.flops = bd * bd * bd / 3.0 + 2.0 * bd * bd;
          st.bytes_stream = kBytes * bd * static_cast<double>(k + b);
          return st;
        },
        [&] { factor_panel(a, k, b); });

    const Index rest = n - (k + b);
    if (rest <= 0) continue;

    // Row solve: A[k+b.., k..k+b) <- A[k+b.., k..k+b) * L11^{-T}.
    ctx.parallel(
        Category::kCholesky, rest,
        [&](Index begin, Index end) {
          KernelStats st;
          const double rows = static_cast<double>(end - begin);
          const double bd = static_cast<double>(b);
          st.flops = rows * bd * bd;
          st.bytes_stream = kBytes * rows * bd * 2.0;
          return st;
        },
        [&](Index begin, Index end, int /*lane*/) {
          for (Index ii = begin; ii < end; ++ii) {
            const Index i = k + b + ii;
            double* arow = a.row(i).data();
            for (Index j = k; j < k + b; ++j) {
              double s = arow[j] - dot(arow + k, a.row(j).data() + k, j - k);
              arow[j] = s / a(j, j);
            }
          }
        });

    // Trailing update: A22 -= A21 * A21^T (lower triangle only).
    ctx.parallel(
        Category::kCholesky, rest,
        [&](Index begin, Index end) {
          KernelStats st;
          const double bd = static_cast<double>(b);
          // Row i of the trailing block updates i+1 partial dots of width b.
          double inner = 0.0;
          for (Index ii = begin; ii < end; ++ii) {
            inner += static_cast<double>(ii + 1);
          }
          st.flops = 2.0 * inner * bd;
          st.bytes_stream = kBytes * inner * 1.0 +
                            kBytes * static_cast<double>(end - begin) * bd;
          return st;
        },
        [&](Index begin, Index end, int /*lane*/) {
          for (Index ii = begin; ii < end; ++ii) {
            const Index i = k + b + ii;
            const double* ai = a.row(i).data() + k;
            double* arow = a.row(i).data();
            for (Index j = k + b; j <= i; ++j) {
              arow[j] -= dot(ai, a.row(j).data() + k, b);
            }
          }
        });
  }

  // Zero the strict upper triangle so L is directly usable.
  ctx.parallel(
      Category::kCholesky, n,
      [&](Index begin, Index end) {
        KernelStats st;
        st.bytes_stream =
            kBytes * static_cast<double>(end - begin) * static_cast<double>(n) / 2.0;
        return st;
      },
      [&](Index begin, Index end, int /*lane*/) {
        for (Index i = begin; i < end; ++i) {
          double* arow = a.row(i).data();
          for (Index j = i + 1; j < n; ++j) arow[j] = 0.0;
        }
      });
}

}  // namespace phmse::linalg
