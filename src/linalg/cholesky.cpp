#include "linalg/cholesky.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/blas.hpp"
#include "support/check.hpp"

namespace phmse::linalg {
namespace {

using par::KernelStats;
using perf::Category;

constexpr double kBytes = 8.0;

// Factors the diagonal block [k, k+b) in place, using already-final columns
// [0, k) of the panel rows.  Sequential.  Returns the failing pivot index
// (a non-positive — or NaN — diagonal), or -1 on success.
Index factor_panel(Matrix& a, Index k, Index b) {
  for (Index j = k; j < k + b; ++j) {
    double d = a(j, j) - dot(a.row(j).data() + k, a.row(j).data() + k, j - k);
    if (!(d > 0.0)) return j;
    d = std::sqrt(d);
    a(j, j) = d;
    const double inv = 1.0 / d;
    for (Index i = j + 1; i < k + b; ++i) {
      const double s =
          a(i, j) - dot(a.row(i).data() + k, a.row(j).data() + k, j - k);
      a(i, j) = s * inv;
    }
  }
  return -1;
}

}  // namespace

CholeskyResult cholesky_factor(par::ExecContext& ctx, Matrix& a,
                               Index block_size) {
  PHMSE_CHECK(a.rows() == a.cols(), "cholesky: matrix must be square");
  PHMSE_CHECK(block_size >= 1, "cholesky: block size must be >= 1");
  const Index n = a.rows();

  // Transposed copy of the solved panel (A21^T, b x rest), written as a
  // side product of the row solve and consumed by the blocked trailing
  // update: with it the trailing GEMM streams unit-stride rows of both
  // operands, which is what lets the register tiles vectorize.  Allocated
  // once at the maximum panel size and reused across panels.
  Matrix a21t;
  if (n > block_size) a21t.resize_zero(std::min(block_size, n), n);

  Index failed_pivot = -1;
  for (Index k = 0; k < n; k += block_size) {
    const Index b = std::min(block_size, n - k);

    // Panel factorization: sequential dependency chain.  A failed pivot is
    // reported through the captured index (not an exception), so the
    // executor never unwinds and the caller can retry on a re-formed input.
    ctx.sequential(
        Category::kCholesky,
        [&](Index, Index) {
          KernelStats st;
          const double bd = static_cast<double>(b);
          st.flops = bd * bd * bd / 3.0 + 2.0 * bd * bd;
          st.bytes_stream = kBytes * bd * static_cast<double>(k + b);
          return st;
        },
        [&] { failed_pivot = factor_panel(a, k, b); });
    if (failed_pivot >= 0) return {failed_pivot};

    const Index rest = n - (k + b);
    if (rest <= 0) continue;

    // Row solve: A[k+b.., k..k+b) <- A[k+b.., k..k+b) * L11^{-T}, scattering
    // the result into A21^T for the trailing update.
    ctx.parallel(
        Category::kCholesky, rest,
        [&](Index begin, Index end) {
          KernelStats st;
          const double rows = static_cast<double>(end - begin);
          const double bd = static_cast<double>(b);
          st.flops = rows * bd * bd;
          // Panel rows read+written plus the A21^T scatter.
          st.bytes_stream = kBytes * rows * bd * 3.0;
          return st;
        },
        [&](Index begin, Index end, int /*lane*/) {
          for (Index ii = begin; ii < end; ++ii) {
            const Index i = k + b + ii;
            double* arow = a.row(i).data();
            for (Index j = k; j < k + b; ++j) {
              double s = arow[j] - dot(arow + k, a.row(j).data() + k, j - k);
              s /= a(j, j);
              arow[j] = s;
              a21t(j - k, ii) = s;
            }
          }
        });

    // Trailing update: A22 -= A21 * A21^T as register-tiled GEMM panels.
    // Each kGemmRowTile-row tile updates the rectangle up to its last row's
    // diagonal; the few entries this touches above the diagonal are never
    // read by later panels and are zeroed with the rest of the strict upper
    // triangle at the end.
    ctx.parallel(
        Category::kCholesky, rest,
        [&](Index begin, Index end) {
          KernelStats st;
          const double bd = static_cast<double>(b);
          const double rows = static_cast<double>(end - begin);
          // Row ii of the trailing block updates ~ii+1 entries of width-b
          // reductions (read+write), streaming its A21 row once; the
          // b x kGemmColStrip panel of A21^T stays resident per row tile.
          double inner = 0.0;
          for (Index ii = begin; ii < end; ++ii) {
            inner += static_cast<double>(ii + 1);
          }
          st.flops = 2.0 * inner * bd;
          st.bytes_stream = kBytes * (2.0 * inner + rows * bd);
          st.resident_bytes =
              kBytes * bd *
              static_cast<double>(std::min(rest, kGemmColStrip));
          st.resident_sweeps = rows / static_cast<double>(kGemmRowTile);
          return st;
        },
        [&](Index begin, Index end, int /*lane*/) {
          double* const base = a.data();
          const double* const tdata = a21t.data();
          for (Index i0 = begin; i0 < end; i0 += kGemmRowTile) {
            const Index rows = std::min(kGemmRowTile, end - i0);
            const Index ncols = i0 + rows;  // through the tile's last row
            gemm_nn_acc(-1.0, base + (k + b + i0) * n + k, n, tdata, n,
                        base + (k + b + i0) * n + (k + b), n, rows, b,
                        ncols);
          }
        });
  }

  // Zero the strict upper triangle so L is directly usable.
  ctx.parallel(
      Category::kCholesky, n,
      [&](Index begin, Index end) {
        KernelStats st;
        st.bytes_stream =
            kBytes * static_cast<double>(end - begin) * static_cast<double>(n) / 2.0;
        return st;
      },
      [&](Index begin, Index end, int /*lane*/) {
        for (Index i = begin; i < end; ++i) {
          double* arow = a.row(i).data();
          for (Index j = i + 1; j < n; ++j) arow[j] = 0.0;
        }
      });
  return {};
}

void cholesky(par::ExecContext& ctx, Matrix& a, Index block_size) {
  const CholeskyResult r = cholesky_factor(ctx, a, block_size);
  PHMSE_CHECK(r.ok(), "cholesky: matrix is not positive definite");
}

}  // namespace phmse::linalg
