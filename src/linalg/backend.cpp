#include "linalg/backend.hpp"

#include <array>

#include "linalg/blocked/blocked_kernels.hpp"
#include "linalg/ref/ref_kernels.hpp"
#include "linalg/simd/simd_kernels.hpp"
#include "support/check.hpp"
#include "support/cpu.hpp"
#include "support/env.hpp"

namespace phmse::linalg {
namespace {

// The sparse kernels (sparse_dense, innovation_covariance,
// gain_times_residual) are scalar row loops that double as their own
// reference, so the ref backend shares the blocked backend's pointers for
// them; the tiled primitives use the frozen linalg::ref oracle.
Backend make_ref() {
  Backend b{};
  b.name = "ref";
  b.simd_isa = "portable";
  b.sparse_dense = blocked::sparse_dense;
  b.innovation_covariance = blocked::innovation_covariance;
  b.trsm_lower = ref::trsm_lower;
  b.trsm_lower_transposed = ref::trsm_lower_transposed;
  b.gain_times_residual = blocked::gain_times_residual;
  b.covariance_downdate = ref::covariance_downdate;
  b.gram = ref::gram;
  b.cholesky_factor = ref::cholesky_factor;
  return b;
}

Backend make_blocked() {
  Backend b{};
  b.name = "blocked";
  b.simd_isa = "portable";
  b.sparse_dense = blocked::sparse_dense;
  b.innovation_covariance = blocked::innovation_covariance;
  b.trsm_lower = blocked::trsm_lower;
  b.trsm_lower_transposed = blocked::trsm_lower_transposed;
  b.gain_times_residual = blocked::gain_times_residual;
  b.covariance_downdate = blocked::covariance_downdate;
  b.gram = blocked::gram;
  b.cholesky_factor = blocked::cholesky_factor;
  return b;
}

// Per-primitive fallback: when no microkernel set is usable the simd entry
// points would just detour through the scalar panels, so point straight at
// the blocked kernels instead.  innovation_covariance is gather-dominated
// (a handful of nonzeros per constraint row) with nothing to vectorize, so
// it always uses the blocked implementation.
Backend make_simd() {
  Backend b = make_blocked();
  b.name = "simd";
  b.simd_isa = simd::active_isa();
  if (simd::available()) {
    b.sparse_dense = simd::sparse_dense;
    b.trsm_lower = simd::trsm_lower;
    b.trsm_lower_transposed = simd::trsm_lower_transposed;
    b.gain_times_residual = simd::gain_times_residual;
    b.covariance_downdate = simd::covariance_downdate;
    b.gram = simd::gram;
    b.cholesky_factor = simd::cholesky_factor;
  }
  return b;
}

struct Registry {
  Backend ref_backend = make_ref();
  Backend blocked_backend = make_blocked();
  Backend simd_backend = make_simd();
  std::array<const Backend*, 3> list{&ref_backend, &blocked_backend,
                                     &simd_backend};
};

const Registry& registry() {
  static const Registry r;
  return r;
}

}  // namespace

std::span<const Backend* const> all_backends() {
  return {registry().list.data(), registry().list.size()};
}

const Backend* find_backend(std::string_view name) {
  for (const Backend* b : all_backends()) {
    if (name == b->name) return b;
  }
  return nullptr;
}

std::string backend_support_summary() {
  std::string s = "valid backends: ";
  bool first = true;
  for (const Backend* b : all_backends()) {
    if (!first) s += ", ";
    first = false;
    s += b->name;
  }
  s += " (simd microkernels: ";
  s += simd::active_isa();
  s += "; cpu: ";
  s += support::cpu_features().summary();
  s += ")";
  return s;
}

const Backend& backend_or_throw(std::string_view name, std::string_view who) {
  const Backend* b = find_backend(name);
  PHMSE_CHECK(b != nullptr, std::string(who) + ": unknown backend '" +
                                std::string(name) + "'; " +
                                backend_support_summary());
  return *b;
}

const Backend& default_backend() {
  static const Backend& b = []() -> const Backend& {
    const std::string env = env_string("PHMSE_BACKEND", "");
    if (!env.empty()) return backend_or_throw(env, "PHMSE_BACKEND");
    return simd::available() ? registry().simd_backend
                             : registry().blocked_backend;
  }();
  return b;
}

const Backend& resolve_backend(std::string_view name, std::string_view who) {
  if (name.empty()) return default_backend();
  return backend_or_throw(name, who);
}

}  // namespace phmse::linalg
