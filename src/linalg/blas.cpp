#include "linalg/blas.hpp"

#include <algorithm>
#include <cmath>

namespace phmse::linalg {
namespace {

// acc + a0*b0 + ... + a7*b7 as one fixed fma chain (ascending term
// order).  Every output element is accumulated through this exact
// expression regardless of where lane boundaries slice the rows — that is
// what keeps serial and threaded kernel output bitwise equal (the
// guarantee documented in kernels.hpp).
inline double fma8(double acc, double a0, double b0, double a1, double b1,
                   double a2, double b2, double a3, double b3, double a4,
                   double b4, double a5, double b5, double a6, double b6,
                   double a7, double b7) {
  acc = std::fma(a0, b0, acc);
  acc = std::fma(a1, b1, acc);
  acc = std::fma(a2, b2, acc);
  acc = std::fma(a3, b3, acc);
  acc = std::fma(a4, b4, acc);
  acc = std::fma(a5, b5, acc);
  acc = std::fma(a6, b6, acc);
  acc = std::fma(a7, b7, acc);
  return acc;
}

// One reduction tile (kGemmReduceTile steps starting at k) of the 8-row
// register tile.  With Init, the chain starts from an exact 0.0 instead of
// loading C — bitwise identical to zero-filling C first (fma(a, b, 0.0)
// rounds exactly like fma(a, b, c) with c cleared), but it saves both the
// clearing stores and the first C load of every element.
template <bool kInit, class CoeffFn>
inline void tile8_step(const CoeffFn& coeff, Index k, const double* b,
                       Index ldb, double* __restrict c0,
                       double* __restrict c1, double* __restrict c2,
                       double* __restrict c3, double* __restrict c4,
                       double* __restrict c5, double* __restrict c6,
                       double* __restrict c7, Index nn) {
  const double* b0 = b + k * ldb;
  const double* b1 = b0 + ldb;
  const double* b2 = b1 + ldb;
  const double* b3 = b2 + ldb;
  const double* b4 = b3 + ldb;
  const double* b5 = b4 + ldb;
  const double* b6 = b5 + ldb;
  const double* b7 = b6 + ldb;
  double a[8][8];
  for (int r = 0; r < 8; ++r) {
    for (int t = 0; t < 8; ++t) a[r][t] = coeff(r, k + t);
  }
  for (Index q = 0; q < nn; ++q) {
    c0[q] = fma8(kInit ? 0.0 : c0[q], a[0][0], b0[q], a[0][1], b1[q],
                 a[0][2], b2[q], a[0][3], b3[q], a[0][4], b4[q], a[0][5],
                 b5[q], a[0][6], b6[q], a[0][7], b7[q]);
    c1[q] = fma8(kInit ? 0.0 : c1[q], a[1][0], b0[q], a[1][1], b1[q],
                 a[1][2], b2[q], a[1][3], b3[q], a[1][4], b4[q], a[1][5],
                 b5[q], a[1][6], b6[q], a[1][7], b7[q]);
    c2[q] = fma8(kInit ? 0.0 : c2[q], a[2][0], b0[q], a[2][1], b1[q],
                 a[2][2], b2[q], a[2][3], b3[q], a[2][4], b4[q], a[2][5],
                 b5[q], a[2][6], b6[q], a[2][7], b7[q]);
    c3[q] = fma8(kInit ? 0.0 : c3[q], a[3][0], b0[q], a[3][1], b1[q],
                 a[3][2], b2[q], a[3][3], b3[q], a[3][4], b4[q], a[3][5],
                 b5[q], a[3][6], b6[q], a[3][7], b7[q]);
    c4[q] = fma8(kInit ? 0.0 : c4[q], a[4][0], b0[q], a[4][1], b1[q],
                 a[4][2], b2[q], a[4][3], b3[q], a[4][4], b4[q], a[4][5],
                 b5[q], a[4][6], b6[q], a[4][7], b7[q]);
    c5[q] = fma8(kInit ? 0.0 : c5[q], a[5][0], b0[q], a[5][1], b1[q],
                 a[5][2], b2[q], a[5][3], b3[q], a[5][4], b4[q], a[5][5],
                 b5[q], a[5][6], b6[q], a[5][7], b7[q]);
    c6[q] = fma8(kInit ? 0.0 : c6[q], a[6][0], b0[q], a[6][1], b1[q],
                 a[6][2], b2[q], a[6][3], b3[q], a[6][4], b4[q], a[6][5],
                 b5[q], a[6][6], b6[q], a[6][7], b7[q]);
    c7[q] = fma8(kInit ? 0.0 : c7[q], a[7][0], b0[q], a[7][1], b1[q],
                 a[7][2], b2[q], a[7][3], b3[q], a[7][4], b4[q], a[7][5],
                 b5[q], a[7][6], b6[q], a[7][7], b7[q]);
  }
}

// One reduction tile of the 4-row remainder tile (see tile8_step).
template <bool kInit, class CoeffFn>
inline void tile4_step(const CoeffFn& coeff, Index k, const double* b,
                       Index ldb, double* __restrict c0,
                       double* __restrict c1, double* __restrict c2,
                       double* __restrict c3, Index nn) {
  const double* b0 = b + k * ldb;
  const double* b1 = b0 + ldb;
  const double* b2 = b1 + ldb;
  const double* b3 = b2 + ldb;
  const double* b4 = b3 + ldb;
  const double* b5 = b4 + ldb;
  const double* b6 = b5 + ldb;
  const double* b7 = b6 + ldb;
  double a[4][8];
  for (int r = 0; r < 4; ++r) {
    for (int t = 0; t < 8; ++t) a[r][t] = coeff(r, k + t);
  }
  for (Index q = 0; q < nn; ++q) {
    c0[q] = fma8(kInit ? 0.0 : c0[q], a[0][0], b0[q], a[0][1], b1[q],
                 a[0][2], b2[q], a[0][3], b3[q], a[0][4], b4[q], a[0][5],
                 b5[q], a[0][6], b6[q], a[0][7], b7[q]);
    c1[q] = fma8(kInit ? 0.0 : c1[q], a[1][0], b0[q], a[1][1], b1[q],
                 a[1][2], b2[q], a[1][3], b3[q], a[1][4], b4[q], a[1][5],
                 b5[q], a[1][6], b6[q], a[1][7], b7[q]);
    c2[q] = fma8(kInit ? 0.0 : c2[q], a[2][0], b0[q], a[2][1], b1[q],
                 a[2][2], b2[q], a[2][3], b3[q], a[2][4], b4[q], a[2][5],
                 b5[q], a[2][6], b6[q], a[2][7], b7[q]);
    c3[q] = fma8(kInit ? 0.0 : c3[q], a[3][0], b0[q], a[3][1], b1[q],
                 a[3][2], b2[q], a[3][3], b3[q], a[3][4], b4[q], a[3][5],
                 b5[q], a[3][6], b6[q], a[3][7], b7[q]);
  }
}

// One reduction tile of the single-row remainder (see tile8_step).
template <bool kInit, class CoeffFn>
inline void row_step(const CoeffFn& coeff, Index k, const double* b,
                     Index ldb, double* __restrict c, Index nn) {
  const double* b0 = b + k * ldb;
  const double* b1 = b0 + ldb;
  const double* b2 = b1 + ldb;
  const double* b3 = b2 + ldb;
  const double* b4 = b3 + ldb;
  const double* b5 = b4 + ldb;
  const double* b6 = b5 + ldb;
  const double* b7 = b6 + ldb;
  double a[8];
  for (int t = 0; t < 8; ++t) a[t] = coeff(k + t);
  for (Index q = 0; q < nn; ++q) {
    c[q] = fma8(kInit ? 0.0 : c[q], a[0], b0[q], a[1], b1[q], a[2], b2[q],
                a[3], b3[q], a[4], b4[q], a[5], b5[q], a[6], b6[q], a[7],
                b7[q]);
  }
}

// Register tile: eight C rows over one column strip, reduced over the full
// kk in strictly ascending order with the k loop unrolled by
// kGemmReduceTile.  The eight rows share every B row load (divides the B
// panel traffic by the tile height) and each C row is loaded/stored once
// per kGemmReduceTile reduction steps (divides the C traffic by the
// reduction unroll).  The __restrict qualifiers on the step helpers are
// what let the q loops vectorize; they are honoured on parameters (not on
// locals), hence the explicit c0..c7 signatures.  Legal in every caller:
// the rows are distinct and the strip width never exceeds the row stride,
// so the stores are disjoint from all other accesses.  With kZero the
// panel is overwritten instead of accumulated (see tile8_step).
// `coeff(r, k)` yields alpha * op(A)(i0+r, k).
template <bool kZero, class CoeffFn>
void gemm_tile8(const CoeffFn& coeff, Index kk, const double* b, Index ldb,
                double* __restrict c0, double* __restrict c1,
                double* __restrict c2, double* __restrict c3,
                double* __restrict c4, double* __restrict c5,
                double* __restrict c6, double* __restrict c7, Index nn) {
  Index k = 0;
  if constexpr (kZero) {
    if (kk >= kGemmReduceTile) {
      tile8_step<true>(coeff, 0, b, ldb, c0, c1, c2, c3, c4, c5, c6, c7,
                       nn);
      k = kGemmReduceTile;
    } else {
      // Tail-only reduction: clear the rows, then accumulate below.
      for (double* cr : {c0, c1, c2, c3, c4, c5, c6, c7}) {
        std::fill(cr, cr + nn, 0.0);
      }
    }
  }
  for (; k + kGemmReduceTile <= kk; k += kGemmReduceTile) {
    tile8_step<false>(coeff, k, b, ldb, c0, c1, c2, c3, c4, c5, c6, c7, nn);
  }
  for (; k < kk; ++k) {
    const double* bk = b + k * ldb;
    double a[8];
    for (int r = 0; r < 8; ++r) a[r] = coeff(r, k);
    for (Index q = 0; q < nn; ++q) {
      c0[q] = std::fma(a[0], bk[q], c0[q]);
      c1[q] = std::fma(a[1], bk[q], c1[q]);
      c2[q] = std::fma(a[2], bk[q], c2[q]);
      c3[q] = std::fma(a[3], bk[q], c3[q]);
      c4[q] = std::fma(a[4], bk[q], c4[q]);
      c5[q] = std::fma(a[5], bk[q], c5[q]);
      c6[q] = std::fma(a[6], bk[q], c6[q]);
      c7[q] = std::fma(a[7], bk[q], c7[q]);
    }
  }
}

// Four-row tile for mid-sized remainders; per-element expression identical
// to gemm_tile8 (see fma8 above).
template <bool kZero, class CoeffFn>
void gemm_tile4(const CoeffFn& coeff, Index kk, const double* b, Index ldb,
                double* __restrict c0, double* __restrict c1,
                double* __restrict c2, double* __restrict c3, Index nn) {
  Index k = 0;
  if constexpr (kZero) {
    if (kk >= kGemmReduceTile) {
      tile4_step<true>(coeff, 0, b, ldb, c0, c1, c2, c3, nn);
      k = kGemmReduceTile;
    } else {
      for (double* cr : {c0, c1, c2, c3}) std::fill(cr, cr + nn, 0.0);
    }
  }
  for (; k + kGemmReduceTile <= kk; k += kGemmReduceTile) {
    tile4_step<false>(coeff, k, b, ldb, c0, c1, c2, c3, nn);
  }
  for (; k < kk; ++k) {
    const double* bk = b + k * ldb;
    const double ak0 = coeff(0, k), ak1 = coeff(1, k);
    const double ak2 = coeff(2, k), ak3 = coeff(3, k);
    for (Index q = 0; q < nn; ++q) {
      c0[q] = std::fma(ak0, bk[q], c0[q]);
      c1[q] = std::fma(ak1, bk[q], c1[q]);
      c2[q] = std::fma(ak2, bk[q], c2[q]);
      c3[q] = std::fma(ak3, bk[q], c3[q]);
    }
  }
}

// Single-row tile for the remainder rows.  Per-element expression identical
// to the wider tiles (see fma8 above), so a row rounds the same way no
// matter which tile it lands in.  `coeff(k)` yields alpha * op(A)(i, k).
template <bool kZero, class CoeffFn>
void gemm_row(const CoeffFn& coeff, Index kk, const double* b, Index ldb,
              double* __restrict c, Index nn) {
  Index k = 0;
  if constexpr (kZero) {
    if (kk >= kGemmReduceTile) {
      row_step<true>(coeff, 0, b, ldb, c, nn);
      k = kGemmReduceTile;
    } else {
      std::fill(c, c + nn, 0.0);
    }
  }
  for (; k + kGemmReduceTile <= kk; k += kGemmReduceTile) {
    row_step<false>(coeff, k, b, ldb, c, nn);
  }
  for (; k < kk; ++k) {
    const double* bk = b + k * ldb;
    const double ak = coeff(k);
    for (Index q = 0; q < nn; ++q) c[q] = std::fma(ak, bk[q], c[q]);
  }
}

// Strip-mined driver shared by the nn/tn variants; `coeff_at(i, k)` is the
// already-alpha-scaled coefficient of op(A).  Row tiles inside a strip
// reuse the same resident kk x kGemmColStrip panel of B.  With kZero the
// C panel is overwritten instead of accumulated, with the zero-init folded
// into the first reduction tile (see tile8_step) — bitwise identical to
// clearing C up front and accumulating.
template <bool kZero, class CoeffFn>
void gemm_acc_impl(const CoeffFn& coeff_at, const double* b, Index ldb,
                   double* c, Index ldc, Index mm, Index kk, Index nn) {
  if (mm <= 0 || nn <= 0) return;
  if (kk <= 0) {
    if constexpr (kZero) {
      for (Index i = 0; i < mm; ++i) {
        std::fill(c + i * ldc, c + i * ldc + nn, 0.0);
      }
    }
    return;
  }
  for (Index q0 = 0; q0 < nn; q0 += kGemmColStrip) {
    const Index qn = std::min(nn - q0, kGemmColStrip);
    const double* const bq = b + q0;
    Index i0 = 0;
    for (; i0 + kGemmRowTile <= mm; i0 += kGemmRowTile) {
      double* const crow = c + i0 * ldc + q0;
      const auto coeff = [&](int r, Index k) { return coeff_at(i0 + r, k); };
      gemm_tile8<kZero>(coeff, kk, bq, ldb, crow, crow + ldc,
                        crow + 2 * ldc, crow + 3 * ldc, crow + 4 * ldc,
                        crow + 5 * ldc, crow + 6 * ldc, crow + 7 * ldc, qn);
    }
    for (; i0 + 4 <= mm; i0 += 4) {
      double* const crow = c + i0 * ldc + q0;
      const auto coeff = [&](int r, Index k) { return coeff_at(i0 + r, k); };
      gemm_tile4<kZero>(coeff, kk, bq, ldb, crow, crow + ldc,
                        crow + 2 * ldc, crow + 3 * ldc, qn);
    }
    for (; i0 < mm; ++i0) {
      const auto coeff = [&](Index k) { return coeff_at(i0, k); };
      gemm_row<kZero>(coeff, kk, bq, ldb, c + i0 * ldc + q0, qn);
    }
  }
}

}  // namespace

void gemm_nn_acc(double alpha, const double* a, Index lda, const double* b,
                 Index ldb, double* c, Index ldc, Index mm, Index kk,
                 Index nn) {
  gemm_acc_impl<false>(
      [=](Index i, Index k) { return alpha * a[i * lda + k]; }, b, ldb, c,
      ldc, mm, kk, nn);
}

void gemm_tn_acc(double alpha, const double* a, Index lda, const double* b,
                 Index ldb, double* c, Index ldc, Index mm, Index kk,
                 Index nn) {
  gemm_acc_impl<false>(
      [=](Index i, Index k) { return alpha * a[k * lda + i]; }, b, ldb, c,
      ldc, mm, kk, nn);
}

void gemm_tn_zero_acc(double alpha, const double* a, Index lda,
                      const double* b, Index ldb, double* c, Index ldc,
                      Index mm, Index kk, Index nn) {
  gemm_acc_impl<true>(
      [=](Index i, Index k) { return alpha * a[k * lda + i]; }, b, ldb, c,
      ldc, mm, kk, nn);
}

double dot(const double* x, const double* y, Index n) {
  double s = 0.0;
  for (Index i = 0; i < n; ++i) s += x[i] * y[i];
  return s;
}

void axpy(double a, const double* x, double* y, Index n) {
  for (Index i = 0; i < n; ++i) y[i] += a * x[i];
}

void gemv(const Matrix& a, const Vector& x, Vector& y) {
  PHMSE_CHECK(static_cast<Index>(x.size()) == a.cols(),
              "gemv: x size mismatch");
  y.assign(static_cast<std::size_t>(a.rows()), 0.0);
  for (Index i = 0; i < a.rows(); ++i) {
    y[static_cast<std::size_t>(i)] = dot(a.row(i).data(), x.data(), a.cols());
  }
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  PHMSE_CHECK(a.cols() == b.rows(), "matmul: inner dimension mismatch");
  Matrix c(a.rows(), b.cols());
  for (Index i = 0; i < a.rows(); ++i) {
    for (Index k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      axpy(aik, b.row(k).data(), c.row(i).data(), b.cols());
    }
  }
  return c;
}

Matrix matmul_tn(const Matrix& a, const Matrix& b) {
  PHMSE_CHECK(a.rows() == b.rows(), "matmul_tn: inner dimension mismatch");
  Matrix c(a.cols(), b.cols());
  for (Index k = 0; k < a.rows(); ++k) {
    for (Index i = 0; i < a.cols(); ++i) {
      const double aki = a(k, i);
      if (aki == 0.0) continue;
      axpy(aki, b.row(k).data(), c.row(i).data(), b.cols());
    }
  }
  return c;
}

Matrix transpose(const Matrix& a) {
  Matrix t(a.cols(), a.rows());
  for (Index i = 0; i < a.rows(); ++i) {
    for (Index j = 0; j < a.cols(); ++j) t(j, i) = a(i, j);
  }
  return t;
}

CholeskyResult cholesky_factor_serial(Matrix& a) {
  PHMSE_CHECK(a.rows() == a.cols(), "cholesky: matrix must be square");
  const Index n = a.rows();
  for (Index j = 0; j < n; ++j) {
    double d = a(j, j) - dot(a.row(j).data(), a.row(j).data(), j);
    if (!(d > 0.0)) return {j};
    d = std::sqrt(d);
    a(j, j) = d;
    const double inv = 1.0 / d;
    for (Index i = j + 1; i < n; ++i) {
      const double s = a(i, j) - dot(a.row(i).data(), a.row(j).data(), j);
      a(i, j) = s * inv;
    }
    for (Index k = j + 1; k < n; ++k) a(j, k) = 0.0;
  }
  return {};
}

void cholesky_serial(Matrix& a) {
  const CholeskyResult r = cholesky_factor_serial(a);
  PHMSE_CHECK(r.ok(), "cholesky: matrix is not positive definite");
}

void trsv_lower(const Matrix& l, Vector& x) {
  PHMSE_CHECK(l.rows() == l.cols(), "trsv: matrix must be square");
  PHMSE_CHECK(static_cast<Index>(x.size()) == l.rows(),
              "trsv: rhs size mismatch");
  const Index n = l.rows();
  for (Index i = 0; i < n; ++i) {
    double s = x[static_cast<std::size_t>(i)] -
               dot(l.row(i).data(), x.data(), i);
    x[static_cast<std::size_t>(i)] = s / l(i, i);
  }
}

void trsv_lower_transposed(const Matrix& l, Vector& x) {
  PHMSE_CHECK(l.rows() == l.cols(), "trsv: matrix must be square");
  PHMSE_CHECK(static_cast<Index>(x.size()) == l.rows(),
              "trsv: rhs size mismatch");
  const Index n = l.rows();
  for (Index i = n - 1; i >= 0; --i) {
    double s = x[static_cast<std::size_t>(i)];
    for (Index k = i + 1; k < n; ++k) {
      s -= l(k, i) * x[static_cast<std::size_t>(k)];
    }
    x[static_cast<std::size_t>(i)] = s / l(i, i);
  }
}

Matrix spd_solve(const Matrix& a, const Matrix& b) {
  PHMSE_CHECK(a.rows() == a.cols(), "spd_solve: A must be square");
  PHMSE_CHECK(a.rows() == b.rows(), "spd_solve: dimension mismatch");
  Matrix l = a;
  cholesky_serial(l);
  // Solve column by column: L L^T x = b.
  Matrix x = b;
  const Index n = a.rows();
  Vector col(static_cast<std::size_t>(n));
  for (Index j = 0; j < b.cols(); ++j) {
    for (Index i = 0; i < n; ++i) col[static_cast<std::size_t>(i)] = x(i, j);
    trsv_lower(l, col);
    trsv_lower_transposed(l, col);
    for (Index i = 0; i < n; ++i) x(i, j) = col[static_cast<std::size_t>(i)];
  }
  return x;
}

}  // namespace phmse::linalg
