#include "linalg/blas.hpp"

#include <cmath>

namespace phmse::linalg {

double dot(const double* x, const double* y, Index n) {
  double s = 0.0;
  for (Index i = 0; i < n; ++i) s += x[i] * y[i];
  return s;
}

void axpy(double a, const double* x, double* y, Index n) {
  for (Index i = 0; i < n; ++i) y[i] += a * x[i];
}

void gemv(const Matrix& a, const Vector& x, Vector& y) {
  PHMSE_CHECK(static_cast<Index>(x.size()) == a.cols(),
              "gemv: x size mismatch");
  y.assign(static_cast<std::size_t>(a.rows()), 0.0);
  for (Index i = 0; i < a.rows(); ++i) {
    y[static_cast<std::size_t>(i)] = dot(a.row(i).data(), x.data(), a.cols());
  }
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  PHMSE_CHECK(a.cols() == b.rows(), "matmul: inner dimension mismatch");
  Matrix c(a.rows(), b.cols());
  for (Index i = 0; i < a.rows(); ++i) {
    for (Index k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      axpy(aik, b.row(k).data(), c.row(i).data(), b.cols());
    }
  }
  return c;
}

Matrix matmul_tn(const Matrix& a, const Matrix& b) {
  PHMSE_CHECK(a.rows() == b.rows(), "matmul_tn: inner dimension mismatch");
  Matrix c(a.cols(), b.cols());
  for (Index k = 0; k < a.rows(); ++k) {
    for (Index i = 0; i < a.cols(); ++i) {
      const double aki = a(k, i);
      if (aki == 0.0) continue;
      axpy(aki, b.row(k).data(), c.row(i).data(), b.cols());
    }
  }
  return c;
}

Matrix transpose(const Matrix& a) {
  Matrix t(a.cols(), a.rows());
  for (Index i = 0; i < a.rows(); ++i) {
    for (Index j = 0; j < a.cols(); ++j) t(j, i) = a(i, j);
  }
  return t;
}

void cholesky_serial(Matrix& a) {
  PHMSE_CHECK(a.rows() == a.cols(), "cholesky: matrix must be square");
  const Index n = a.rows();
  for (Index j = 0; j < n; ++j) {
    double d = a(j, j) - dot(a.row(j).data(), a.row(j).data(), j);
    PHMSE_CHECK(d > 0.0, "cholesky: matrix is not positive definite");
    d = std::sqrt(d);
    a(j, j) = d;
    const double inv = 1.0 / d;
    for (Index i = j + 1; i < n; ++i) {
      const double s = a(i, j) - dot(a.row(i).data(), a.row(j).data(), j);
      a(i, j) = s * inv;
    }
    for (Index k = j + 1; k < n; ++k) a(j, k) = 0.0;
  }
}

void trsv_lower(const Matrix& l, Vector& x) {
  PHMSE_CHECK(l.rows() == l.cols(), "trsv: matrix must be square");
  PHMSE_CHECK(static_cast<Index>(x.size()) == l.rows(),
              "trsv: rhs size mismatch");
  const Index n = l.rows();
  for (Index i = 0; i < n; ++i) {
    double s = x[static_cast<std::size_t>(i)] -
               dot(l.row(i).data(), x.data(), i);
    x[static_cast<std::size_t>(i)] = s / l(i, i);
  }
}

void trsv_lower_transposed(const Matrix& l, Vector& x) {
  PHMSE_CHECK(l.rows() == l.cols(), "trsv: matrix must be square");
  PHMSE_CHECK(static_cast<Index>(x.size()) == l.rows(),
              "trsv: rhs size mismatch");
  const Index n = l.rows();
  for (Index i = n - 1; i >= 0; --i) {
    double s = x[static_cast<std::size_t>(i)];
    for (Index k = i + 1; k < n; ++k) {
      s -= l(k, i) * x[static_cast<std::size_t>(k)];
    }
    x[static_cast<std::size_t>(i)] = s / l(i, i);
  }
}

Matrix spd_solve(const Matrix& a, const Matrix& b) {
  PHMSE_CHECK(a.rows() == a.cols(), "spd_solve: A must be square");
  PHMSE_CHECK(a.rows() == b.rows(), "spd_solve: dimension mismatch");
  Matrix l = a;
  cholesky_serial(l);
  // Solve column by column: L L^T x = b.
  Matrix x = b;
  const Index n = a.rows();
  Vector col(static_cast<std::size_t>(n));
  for (Index j = 0; j < b.cols(); ++j) {
    for (Index i = 0; i < n; ++i) col[static_cast<std::size_t>(i)] = x(i, j);
    trsv_lower(l, col);
    trsv_lower_transposed(l, col);
    for (Index i = 0; i < n; ++i) x(i, j) = col[static_cast<std::size_t>(i)];
  }
  return x;
}

}  // namespace phmse::linalg
