#include "linalg/matrix.hpp"

#include <algorithm>
#include <cmath>

namespace phmse::linalg {

void Matrix::set_identity() { set_scaled_identity(1.0); }

void Matrix::set_scaled_identity(double v) {
  PHMSE_CHECK(rows_ == cols_, "identity requires a square matrix");
  fill(0.0);
  for (Index i = 0; i < rows_; ++i) (*this)(i, i) = v;
}

void Matrix::resize_zero(Index rows, Index cols) {
  PHMSE_CHECK(rows >= 0 && cols >= 0, "matrix dimensions must be >= 0");
  rows_ = rows;
  cols_ = cols;
  data_.assign(static_cast<std::size_t>(rows * cols), 0.0);
}

void Matrix::resize(Index rows, Index cols) {
  PHMSE_CHECK(rows >= 0 && cols >= 0, "matrix dimensions must be >= 0");
  rows_ = rows;
  cols_ = cols;
  data_.resize(static_cast<std::size_t>(rows * cols), 0.0);
}

void Matrix::place_block(Index r0, Index c0, const Matrix& block) {
  PHMSE_CHECK(r0 >= 0 && c0 >= 0 && r0 + block.rows() <= rows_ &&
                  c0 + block.cols() <= cols_,
              "block placement out of bounds");
  for (Index i = 0; i < block.rows(); ++i) {
    const auto src = block.row(i);
    std::copy(src.begin(), src.end(), row(r0 + i).begin() + c0);
  }
}

Matrix Matrix::extract_block(Index r0, Index c0, Index rows,
                             Index cols) const {
  PHMSE_CHECK(r0 >= 0 && c0 >= 0 && r0 + rows <= rows_ && c0 + cols <= cols_,
              "block extraction out of bounds");
  Matrix out(rows, cols);
  for (Index i = 0; i < rows; ++i) {
    const auto src = row(r0 + i);
    std::copy(src.begin() + c0, src.begin() + c0 + cols, out.row(i).begin());
  }
  return out;
}

double Matrix::max_abs() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::abs(v));
  return m;
}

double Matrix::frobenius_distance(const Matrix& other) const {
  PHMSE_CHECK(rows_ == other.rows_ && cols_ == other.cols_,
              "shape mismatch in frobenius_distance");
  double sum = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    const double d = data_[i] - other.data_[i];
    sum += d * d;
  }
  return std::sqrt(sum);
}

void Matrix::symmetrize() {
  PHMSE_CHECK(rows_ == cols_, "symmetrize requires a square matrix");
  for (Index i = 0; i < rows_; ++i) {
    for (Index j = i + 1; j < cols_; ++j) {
      const double avg = 0.5 * ((*this)(i, j) + (*this)(j, i));
      (*this)(i, j) = avg;
      (*this)(j, i) = avg;
    }
  }
}

}  // namespace phmse::linalg
