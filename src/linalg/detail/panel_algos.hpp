// Shared drivers for the panel-blocked kernels (trsm, Cholesky,
// covariance downdate, Gram), parameterized over the GEMM panel primitives.
//
// The blocked and simd backends run the *same* blocking structure — row
// tiles, L1 column strips, kTrsmBlock diagonal blocks — and differ only in
// how a panel update `C += alpha * op(A) * B` is executed (portable
// register-tiled C++ vs explicit vector microkernels).  These templates
// hold the structure once; each backend instantiates them with a Panels
// policy:
//
//   struct Panels {
//     static void nn_acc(double alpha, const double* a, Index lda,
//                        const double* b, Index ldb, double* c, Index ldc,
//                        Index mm, Index kk, Index nn);   // C += a*A*B
//     static void tn_acc(...);       // C += a*A^T*B, A stored kk x mm
//     static void tn_zero_acc(...);  // C  = a*A^T*B (overwriting)
//   };
//
// Determinism: every Panels implementation must accumulate each output
// element as one std::fma chain over strictly ascending k (the contract
// documented in blas.hpp).  The substitution loops below are elementwise,
// so with a conforming Panels the whole driver stays bitwise identical
// between serial and threaded execution — lane boundaries only change which
// lane computes an element, never its rounding.
#pragma once

#include <algorithm>
#include <cmath>

#include "linalg/blas.hpp"
#include "linalg/matrix.hpp"
#include "linalg/status.hpp"
#include "parallel/exec.hpp"
#include "support/check.hpp"

namespace phmse::linalg::detail {

inline constexpr double kBytesPerDouble = 8.0;

// Blocked triangular solve over rows of L; see the original implementation
// notes in kernels.cpp (PR 2).  Columns of B are independent; each lane owns
// a column slice.  Per block [k0, k1): the contribution of the already-
// solved rows is applied as one GEMM panel, then the diagonal block is
// solved by direct substitution.  The substitution order seen by any single
// element matches the scalar reference (ascending p for the forward solve),
// so the backends agree to FMA-contraction round-off; see
// linalg::ref::trsm_lower.
template <class Panels, bool Transposed>
void trsm_impl(par::ExecContext& ctx, const Matrix& l, Matrix& b) {
  PHMSE_CHECK(l.rows() == l.cols(), "trsm: L must be square");
  PHMSE_CHECK(l.rows() == b.rows(), "trsm: dimension mismatch");
  const Index m = l.rows();
  const Index k = b.cols();

  auto cost = [&](Index begin, Index end) {
    par::KernelStats st;
    const double cols = static_cast<double>(end - begin);
    st.flops = cols * static_cast<double>(m) * static_cast<double>(m);
    st.bytes_stream = kBytesPerDouble * (cols * static_cast<double>(m) +
                                         0.5 * static_cast<double>(m) *
                                             static_cast<double>(m));
    // The lane's column slice of B is revisited once per row block (it was
    // once per substitution step before blocking).
    st.resident_bytes = kBytesPerDouble * cols * static_cast<double>(m);
    st.resident_sweeps =
        static_cast<double>((m + kTrsmBlock - 1) / kTrsmBlock);
    return st;
  };
  auto body = [&](Index begin, Index end, int /*lane*/) {
    const Index width = end - begin;
    if (width <= 0 || m <= 0) return;
    const Index ldb = b.cols();
    double* const bbase = b.data() + begin;
    const double* const ldata = l.data();
    if constexpr (!Transposed) {
      for (Index k0 = 0; k0 < m; k0 += kTrsmBlock) {
        const Index bs = std::min(kTrsmBlock, m - k0);
        // B[k0..k0+bs) -= L[k0..k0+bs, 0..k0) * B[0..k0).
        Panels::nn_acc(-1.0, ldata + k0 * m, m, bbase, ldb, bbase + k0 * ldb,
                       ldb, bs, k0, width);
        for (Index i = k0; i < k0 + bs; ++i) {
          double* bi = bbase + i * ldb;
          const double* lrow = ldata + i * m;
          for (Index p = k0; p < i; ++p) {
            const double lip = lrow[p];
            const double* bp = bbase + p * ldb;
            for (Index q = 0; q < width; ++q) {
              bi[q] = std::fma(-lip, bp[q], bi[q]);
            }
          }
          const double inv = 1.0 / lrow[i];
          for (Index q = 0; q < width; ++q) bi[q] *= inv;
        }
      }
    } else {
      for (Index k0 = ((m - 1) / kTrsmBlock) * kTrsmBlock; k0 >= 0;
           k0 -= kTrsmBlock) {
        const Index k1 = std::min(k0 + kTrsmBlock, m);
        // B[k0..k1) -= L[k1..m, k0..k1)^T * B[k1..m).
        Panels::tn_acc(-1.0, ldata + k1 * m + k0, m, bbase + k1 * ldb, ldb,
                       bbase + k0 * ldb, ldb, k1 - k0, m - k1, width);
        for (Index i = k1 - 1; i >= k0; --i) {
          double* bi = bbase + i * ldb;
          for (Index p = i + 1; p < k1; ++p) {
            const double lpi = ldata[p * m + i];
            const double* bp = bbase + p * ldb;
            for (Index q = 0; q < width; ++q) {
              bi[q] = std::fma(-lpi, bp[q], bi[q]);
            }
          }
          const double inv = 1.0 / ldata[i * m + i];
          for (Index q = 0; q < width; ++q) bi[q] *= inv;
        }
      }
    }
  };
  ctx.parallel(perf::Category::kSystemSolve, k, cost, body);
}

// C -= V^T G as a rank-m panel update over C's rows (category m-v).
template <class Panels>
void covariance_downdate_impl(par::ExecContext& ctx, const Matrix& v,
                              const Matrix& g, Matrix& c) {
  PHMSE_CHECK(v.rows() == g.rows() && v.cols() == g.cols(),
              "covariance_downdate: V/G shape mismatch");
  PHMSE_CHECK(c.rows() == c.cols() && c.rows() == v.cols(),
              "covariance_downdate: C shape mismatch");
  const Index m = v.rows();
  const Index n = c.rows();

  auto cost = [&](Index begin, Index end) {
    par::KernelStats st;
    const double rows = static_cast<double>(end - begin);
    st.flops = 2.0 * rows * static_cast<double>(m) * static_cast<double>(n);
    // C rows read+written once; G's compulsory traffic charged once.
    st.bytes_stream =
        kBytesPerDouble * (2.0 * rows * static_cast<double>(n) +
                           static_cast<double>(m) * static_cast<double>(n));
    // The blocked GEMM keeps an m x kGemmColStrip panel of G resident and
    // re-sweeps it once per register row tile (it was the full m x n block
    // once per covariance row before blocking); machines with a finite
    // modeled cache penalize overflow.
    st.resident_bytes =
        kBytesPerDouble * static_cast<double>(m) *
        static_cast<double>(std::min(n, kGemmColStrip));
    st.resident_sweeps = rows / static_cast<double>(kGemmRowTile);
    return st;
  };
  auto body = [&](Index begin, Index end, int /*lane*/) {
    if (end <= begin || m <= 0) return;
    // C[begin..end) -= (V^T G)[begin..end): a rank-m panel update;
    // coefficients are the columns of V.
    Panels::tn_acc(-1.0, v.data() + begin, n, g.data(), n,
                   c.row(begin).data(), n, end - begin, m, n);
  };
  ctx.parallel(perf::Category::kMatVec, n, cost, body);
}

// out = W^T W with the zero-init folded into the first reduction tile.
template <class Panels>
void gram_impl(par::ExecContext& ctx, const Matrix& w, Matrix& out) {
  const Index m = w.rows();
  const Index n = w.cols();
  // Every entry of `out` is overwritten by the zero-initializing GEMM
  // below, so skip resize_zero's full clearing pass.
  out.resize(n, n);

  auto cost = [&](Index begin, Index end) {
    par::KernelStats st;
    const double rows = static_cast<double>(end - begin);
    st.flops = 2.0 * rows * static_cast<double>(m) * static_cast<double>(n);
    st.bytes_stream =
        kBytesPerDouble * (2.0 * rows * static_cast<double>(n) +
                           static_cast<double>(m) * static_cast<double>(n));
    // Same blocked-GEMM traffic pattern as covariance_downdate: an
    // m x kGemmColStrip panel of W resident, swept once per row tile.
    st.resident_bytes =
        kBytesPerDouble * static_cast<double>(m) *
        static_cast<double>(std::min(n, kGemmColStrip));
    st.resident_sweeps = rows / static_cast<double>(kGemmRowTile);
    return st;
  };
  auto body = [&](Index begin, Index end, int /*lane*/) {
    if (end <= begin) return;
    if (m <= 0) {
      // Rank-0 Gram matrix: the overwrite below never runs, so clear the
      // lane's rows explicitly.
      for (Index i = begin; i < end; ++i) {
        double* const row = out.row(i).data();
        std::fill(row, row + n, 0.0);
      }
      return;
    }
    // out[begin..end) = (W^T W)[begin..end); the strip-wise zero-init
    // replaces the resize_zero clearing pass.
    Panels::tn_zero_acc(1.0, w.data() + begin, n, w.data(), n,
                        out.row(begin).data(), n, end - begin, m, n);
  };
  ctx.parallel(perf::Category::kMatMat, n, cost, body);
}

// Factors the diagonal block [k, k+b) in place, using already-final columns
// [0, k) of the panel rows.  Sequential.  Returns the failing pivot index
// (a non-positive — or NaN — diagonal), or -1 on success.
inline Index cholesky_factor_panel(Matrix& a, Index k, Index b) {
  for (Index j = k; j < k + b; ++j) {
    double d = a(j, j) - dot(a.row(j).data() + k, a.row(j).data() + k, j - k);
    if (!(d > 0.0)) return j;
    d = std::sqrt(d);
    a(j, j) = d;
    const double inv = 1.0 / d;
    for (Index i = j + 1; i < k + b; ++i) {
      const double s =
          a(i, j) - dot(a.row(i).data() + k, a.row(j).data() + k, j - k);
      a(i, j) = s * inv;
    }
  }
  return -1;
}

// Blocked right-looking Cholesky; panel factorization and row solve are the
// sequential scalar chain, the trailing update A22 -= A21 * A21^T runs as
// GEMM panels against the transposed-panel scratch.
template <class Panels>
CholeskyResult cholesky_factor_impl(par::ExecContext& ctx, Matrix& a,
                                    Index block_size) {
  PHMSE_CHECK(a.rows() == a.cols(), "cholesky: matrix must be square");
  PHMSE_CHECK(block_size >= 1, "cholesky: block size must be >= 1");
  const Index n = a.rows();

  // Transposed copy of the solved panel (A21^T, b x rest), written as a
  // side product of the row solve and consumed by the blocked trailing
  // update: with it the trailing GEMM streams unit-stride rows of both
  // operands, which is what lets the register tiles vectorize.  Allocated
  // once at the maximum panel size and reused across panels.
  Matrix a21t;
  if (n > block_size) a21t.resize_zero(std::min(block_size, n), n);

  Index failed_pivot = -1;
  for (Index k = 0; k < n; k += block_size) {
    const Index b = std::min(block_size, n - k);

    // Panel factorization: sequential dependency chain.  A failed pivot is
    // reported through the captured index (not an exception), so the
    // executor never unwinds and the caller can retry on a re-formed input.
    ctx.sequential(
        perf::Category::kCholesky,
        [&](Index, Index) {
          par::KernelStats st;
          const double bd = static_cast<double>(b);
          st.flops = bd * bd * bd / 3.0 + 2.0 * bd * bd;
          st.bytes_stream = kBytesPerDouble * bd * static_cast<double>(k + b);
          return st;
        },
        [&] { failed_pivot = cholesky_factor_panel(a, k, b); });
    if (failed_pivot >= 0) return {failed_pivot};

    const Index rest = n - (k + b);
    if (rest <= 0) continue;

    // Row solve: A[k+b.., k..k+b) <- A[k+b.., k..k+b) * L11^{-T}, scattering
    // the result into A21^T for the trailing update.
    ctx.parallel(
        perf::Category::kCholesky, rest,
        [&](Index begin, Index end) {
          par::KernelStats st;
          const double rows = static_cast<double>(end - begin);
          const double bd = static_cast<double>(b);
          st.flops = rows * bd * bd;
          // Panel rows read+written plus the A21^T scatter.
          st.bytes_stream = kBytesPerDouble * rows * bd * 3.0;
          return st;
        },
        [&](Index begin, Index end, int /*lane*/) {
          for (Index ii = begin; ii < end; ++ii) {
            const Index i = k + b + ii;
            double* arow = a.row(i).data();
            for (Index j = k; j < k + b; ++j) {
              double s = arow[j] - dot(arow + k, a.row(j).data() + k, j - k);
              s /= a(j, j);
              arow[j] = s;
              a21t(j - k, ii) = s;
            }
          }
        });

    // Trailing update: A22 -= A21 * A21^T as GEMM panels.  Each
    // kGemmRowTile-row tile updates the rectangle up to its last row's
    // diagonal; the few entries this touches above the diagonal are never
    // read by later panels and are zeroed with the rest of the strict upper
    // triangle at the end.
    ctx.parallel(
        perf::Category::kCholesky, rest,
        [&](Index begin, Index end) {
          par::KernelStats st;
          const double bd = static_cast<double>(b);
          const double rows = static_cast<double>(end - begin);
          // Row ii of the trailing block updates ~ii+1 entries of width-b
          // reductions (read+write), streaming its A21 row once; the
          // b x kGemmColStrip panel of A21^T stays resident per row tile.
          double inner = 0.0;
          for (Index ii = begin; ii < end; ++ii) {
            inner += static_cast<double>(ii + 1);
          }
          st.flops = 2.0 * inner * bd;
          st.bytes_stream = kBytesPerDouble * (2.0 * inner + rows * bd);
          st.resident_bytes =
              kBytesPerDouble * bd *
              static_cast<double>(std::min(rest, kGemmColStrip));
          st.resident_sweeps = rows / static_cast<double>(kGemmRowTile);
          return st;
        },
        [&](Index begin, Index end, int /*lane*/) {
          double* const base = a.data();
          const double* const tdata = a21t.data();
          for (Index i0 = begin; i0 < end; i0 += kGemmRowTile) {
            const Index rows = std::min(kGemmRowTile, end - i0);
            const Index ncols = i0 + rows;  // through the tile's last row
            Panels::nn_acc(-1.0, base + (k + b + i0) * n + k, n, tdata, n,
                           base + (k + b + i0) * n + (k + b), n, rows, b,
                           ncols);
          }
        });
  }

  // Zero the strict upper triangle so L is directly usable.
  ctx.parallel(
      perf::Category::kCholesky, n,
      [&](Index begin, Index end) {
        par::KernelStats st;
        st.bytes_stream = kBytesPerDouble * static_cast<double>(end - begin) *
                          static_cast<double>(n) / 2.0;
        return st;
      },
      [&](Index begin, Index end, int /*lane*/) {
        for (Index i = begin; i < end; ++i) {
          double* arow = a.row(i).data();
          for (Index j = i + 1; j < n; ++j) arow[j] = 0.0;
        }
      });
  return {};
}

}  // namespace phmse::linalg::detail
