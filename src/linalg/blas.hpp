// Serial dense building blocks.
//
// These are the reference implementations: straightforward, obviously
// correct loops used by unit tests and by the serial inner bodies of the
// parallel kernels in linalg/blocked and linalg/ref.
#pragma once

#include "linalg/matrix.hpp"
#include "linalg/status.hpp"

namespace phmse::linalg {

/// dot(x, y) over `n` elements.
double dot(const double* x, const double* y, Index n);

/// y += a * x over `n` elements.
void axpy(double a, const double* x, double* y, Index n);

/// y = A * x  (A: rows x cols, x: cols, y: rows).
void gemv(const Matrix& a, const Vector& x, Vector& y);

/// C = A * B  (naive triple loop; tests only).
Matrix matmul(const Matrix& a, const Matrix& b);

/// C = A^T * B (tests only).
Matrix matmul_tn(const Matrix& a, const Matrix& b);

/// B = A^T (tests only).
Matrix transpose(const Matrix& a);

/// In-place serial Cholesky factorization A = L L^T of an SPD matrix;
/// overwrites the lower triangle with L and zeroes the strict upper
/// triangle.  Returns the failing pivot instead of throwing when A is not
/// positive definite (A is left partially factored) — see status.hpp.
[[nodiscard]] CholeskyResult cholesky_factor_serial(Matrix& a);

/// Throwing wrapper over cholesky_factor_serial: throws phmse::Error if A
/// is not positive definite.
void cholesky_serial(Matrix& a);

/// Solves L * x = b in place (L lower triangular, unit or not per diag).
void trsv_lower(const Matrix& l, Vector& x);

/// Solves L^T * x = b in place.
void trsv_lower_transposed(const Matrix& l, Vector& x);

/// Solves A X = B for SPD A using a serial Cholesky factorization; returns
/// X.  B's rows are RHS-stacked: A (n x n), B (n x k).  Tests and the
/// Fig. 3 combination procedure use this.
Matrix spd_solve(const Matrix& a, const Matrix& b);

// ---------------------------------------------------------------------------
// Blocked GEMM panel updates (see DESIGN.md §7).
//
// These are the register-tiled building blocks behind the blocked backend's
// hot kernels (linalg/blocked).  Both compute a rank-kk update of a C panel:
//
//   gemm_nn_acc:  C (mm x nn) += alpha * A (mm x kk) * B (kk x nn)
//   gemm_tn_acc:  C (mm x nn) += alpha * A^T * B,  A stored kk x mm
//
// Implementation contract (the oracle tests rely on it):
//   * the reduction over kk runs in strictly ascending order for every
//     output element, as one std::fma chain, so a given element's rounding
//     is identical no matter which row tile or column strip it lands in —
//     this is what keeps serial and threaded kernel output bitwise equal
//     when lane boundaries cut through a tile;
//   * rows are processed in register tiles of kGemmRowTile and columns in
//     L1-sized strips of kGemmColStrip, which is where the speedup over the
//     scalar ref:: kernels comes from (each B row load is shared by
//     kGemmRowTile output rows, and each C row is loaded/stored once per
//     kGemmReduceTile reduction steps instead of once per step).

/// Rows of C per register tile (MR of the micro-kernel).
inline constexpr Index kGemmRowTile = 8;
/// Reduction-dimension unroll of the micro-kernel (KR).  Any value yields
/// bitwise-identical results (the chain order never changes); 8 matches
/// the paper's recommended constraint batch m = 16 with no remainder.
inline constexpr Index kGemmReduceTile = 8;
/// Columns (doubles) per L1-resident strip: kGemmRowTile C rows plus
/// kGemmReduceTile B rows at 256 doubles each is 32 KiB, inside a typical
/// 48 KiB L1D.
inline constexpr Index kGemmColStrip = 256;
/// Row-block size of the blocked triangular solves (the L diagonal block,
/// kTrsmBlock^2 doubles = 8 KiB, stays L1-resident while it sweeps the
/// right-hand-side strip).
inline constexpr Index kTrsmBlock = 32;

/// C += alpha * A * B.  A: mm x kk with leading dimension lda, B: kk x nn
/// (ldb), C: mm x nn (ldc).  Empty dimensions are no-ops.
void gemm_nn_acc(double alpha, const double* a, Index lda, const double* b,
                 Index ldb, double* c, Index ldc, Index mm, Index kk,
                 Index nn);

/// C += alpha * A^T * B with A stored kk x mm (lda); otherwise identical to
/// gemm_nn_acc.
void gemm_tn_acc(double alpha, const double* a, Index lda, const double* b,
                 Index ldb, double* c, Index ldc, Index mm, Index kk,
                 Index nn);

/// C = alpha * A^T * B (overwriting): bitwise identical to zero-filling the
/// C panel and then calling gemm_tn_acc, but the zeroing happens strip by
/// strip while the cleared bytes are still cache-hot, saving a full memory
/// pass over C.  With kk == 0 the panel is simply zeroed.
void gemm_tn_zero_acc(double alpha, const double* a, Index lda,
                      const double* b, Index ldb, double* c, Index ldc,
                      Index mm, Index kk, Index nn);

}  // namespace phmse::linalg
