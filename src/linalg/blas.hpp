// Serial dense building blocks.
//
// These are the reference implementations: straightforward, obviously
// correct loops used by unit tests and by the serial inner bodies of the
// parallel kernels in kernels.cpp.
#pragma once

#include "linalg/matrix.hpp"

namespace phmse::linalg {

/// dot(x, y) over `n` elements.
double dot(const double* x, const double* y, Index n);

/// y += a * x over `n` elements.
void axpy(double a, const double* x, double* y, Index n);

/// y = A * x  (A: rows x cols, x: cols, y: rows).
void gemv(const Matrix& a, const Vector& x, Vector& y);

/// C = A * B  (naive triple loop; tests only).
Matrix matmul(const Matrix& a, const Matrix& b);

/// C = A^T * B (tests only).
Matrix matmul_tn(const Matrix& a, const Matrix& b);

/// B = A^T (tests only).
Matrix transpose(const Matrix& a);

/// In-place serial Cholesky factorization A = L L^T of an SPD matrix;
/// overwrites the lower triangle with L and zeroes the strict upper
/// triangle.  Throws phmse::Error if A is not positive definite.
void cholesky_serial(Matrix& a);

/// Solves L * x = b in place (L lower triangular, unit or not per diag).
void trsv_lower(const Matrix& l, Vector& x);

/// Solves L^T * x = b in place.
void trsv_lower_transposed(const Matrix& l, Vector& x);

/// Solves A X = B for SPD A using a serial Cholesky factorization; returns
/// X.  B's rows are RHS-stacked: A (n x n), B (n x k).  Tests and the
/// Fig. 3 combination procedure use this.
Matrix spd_solve(const Matrix& a, const Matrix& b);

}  // namespace phmse::linalg
