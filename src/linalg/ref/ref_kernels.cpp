#include "linalg/ref/ref_kernels.hpp"

#include <cmath>

#include "linalg/blas.hpp"
#include "support/check.hpp"

namespace phmse::linalg::ref {
namespace {

using par::KernelStats;
using perf::Category;

constexpr double kBytes = 8.0;  // sizeof(double)

// Shared implementation of the two triangular solves.  Columns of B are
// independent; each lane sweeps its column slice through all m substitution
// steps, streaming along B's rows.
template <bool Transposed>
void trsm_impl(par::ExecContext& ctx, const Matrix& l, Matrix& b) {
  PHMSE_CHECK(l.rows() == l.cols(), "trsm: L must be square");
  PHMSE_CHECK(l.rows() == b.rows(), "trsm: dimension mismatch");
  const Index m = l.rows();
  const Index k = b.cols();

  auto cost = [&](Index begin, Index end) {
    KernelStats st;
    const double cols = static_cast<double>(end - begin);
    st.flops = cols * static_cast<double>(m) * static_cast<double>(m);
    st.bytes_stream = kBytes * (cols * static_cast<double>(m) +
                                0.5 * static_cast<double>(m) *
                                    static_cast<double>(m));
    // The lane's column slice of B is revisited by every substitution step.
    st.resident_bytes = kBytes * cols * static_cast<double>(m);
    st.resident_sweeps = 0.5 * static_cast<double>(m);
    return st;
  };
  auto body = [&](Index begin, Index end, int /*lane*/) {
    const Index width = end - begin;
    if (width <= 0) return;
    if constexpr (!Transposed) {
      for (Index i = 0; i < m; ++i) {
        double* bi = b.row(i).data() + begin;
        const double* lrow = l.row(i).data();
        for (Index p = 0; p < i; ++p) {
          const double lip = lrow[p];
          const double* bp = b.row(p).data() + begin;
          for (Index q = 0; q < width; ++q) bi[q] -= lip * bp[q];
        }
        const double inv = 1.0 / lrow[i];
        for (Index q = 0; q < width; ++q) bi[q] *= inv;
      }
    } else {
      for (Index i = m - 1; i >= 0; --i) {
        double* bi = b.row(i).data() + begin;
        for (Index p = i + 1; p < m; ++p) {
          const double lpi = l(p, i);
          const double* bp = b.row(p).data() + begin;
          for (Index q = 0; q < width; ++q) bi[q] -= lpi * bp[q];
        }
        const double inv = 1.0 / l(i, i);
        for (Index q = 0; q < width; ++q) bi[q] *= inv;
      }
    }
  };
  ctx.parallel(Category::kSystemSolve, k, cost, body);
}

// Factors the diagonal block [k, k+b) in place, using already-final columns
// [0, k) of the panel rows.  Sequential.  Returns the failing pivot index,
// or -1 on success (mirrors the production kernel's status contract).
Index factor_panel(Matrix& a, Index k, Index b) {
  for (Index j = k; j < k + b; ++j) {
    double d = a(j, j) - dot(a.row(j).data() + k, a.row(j).data() + k, j - k);
    if (!(d > 0.0)) return j;
    d = std::sqrt(d);
    a(j, j) = d;
    const double inv = 1.0 / d;
    for (Index i = j + 1; i < k + b; ++i) {
      const double s =
          a(i, j) - dot(a.row(i).data() + k, a.row(j).data() + k, j - k);
      a(i, j) = s * inv;
    }
  }
  return -1;
}

}  // namespace

void trsm_lower(par::ExecContext& ctx, const Matrix& l, Matrix& b) {
  trsm_impl<false>(ctx, l, b);
}

void trsm_lower_transposed(par::ExecContext& ctx, const Matrix& l,
                           Matrix& b) {
  trsm_impl<true>(ctx, l, b);
}

void covariance_downdate(par::ExecContext& ctx, const Matrix& v,
                         const Matrix& g, Matrix& c) {
  PHMSE_CHECK(v.rows() == g.rows() && v.cols() == g.cols(),
              "covariance_downdate: V/G shape mismatch");
  PHMSE_CHECK(c.rows() == c.cols() && c.rows() == v.cols(),
              "covariance_downdate: C shape mismatch");
  const Index m = v.rows();
  const Index n = c.rows();

  auto cost = [&](Index begin, Index end) {
    KernelStats st;
    const double rows = static_cast<double>(end - begin);
    st.flops = 2.0 * rows * static_cast<double>(m) * static_cast<double>(n);
    st.bytes_stream =
        kBytes * (2.0 * rows * static_cast<double>(n) +
                  static_cast<double>(m) * static_cast<double>(n));
    st.resident_bytes = kBytes * static_cast<double>(m) *
                        static_cast<double>(n);
    st.resident_sweeps = rows;
    return st;
  };
  auto body = [&](Index begin, Index end, int /*lane*/) {
    for (Index i = begin; i < end; ++i) {
      double* crow = c.row(i).data();
      for (Index j = 0; j < m; ++j) {
        const double vji = v(j, i);
        axpy(-vji, g.row(j).data(), crow, n);
      }
    }
  };
  ctx.parallel(Category::kMatVec, n, cost, body);
}

void gram(par::ExecContext& ctx, const Matrix& w, Matrix& out) {
  const Index m = w.rows();
  const Index n = w.cols();
  out.resize_zero(n, n);

  auto cost = [&](Index begin, Index end) {
    KernelStats st;
    const double rows = static_cast<double>(end - begin);
    st.flops = 2.0 * rows * static_cast<double>(m) * static_cast<double>(n);
    st.bytes_stream =
        kBytes * (2.0 * rows * static_cast<double>(n) +
                  static_cast<double>(m) * static_cast<double>(n));
    st.resident_bytes = kBytes * static_cast<double>(m) *
                        static_cast<double>(n);
    st.resident_sweeps = rows;
    return st;
  };
  auto body = [&](Index begin, Index end, int /*lane*/) {
    for (Index i = begin; i < end; ++i) {
      double* orow = out.row(i).data();
      for (Index j = 0; j < m; ++j) {
        const double wji = w(j, i);
        axpy(wji, w.row(j).data(), orow, n);
      }
    }
  };
  ctx.parallel(Category::kMatMat, n, cost, body);
}

CholeskyResult cholesky_factor(par::ExecContext& ctx, Matrix& a,
                               Index block_size) {
  PHMSE_CHECK(a.rows() == a.cols(), "cholesky: matrix must be square");
  PHMSE_CHECK(block_size >= 1, "cholesky: block size must be >= 1");
  const Index n = a.rows();

  Index failed_pivot = -1;
  for (Index k = 0; k < n; k += block_size) {
    const Index b = std::min(block_size, n - k);

    // Panel factorization: sequential dependency chain.
    ctx.sequential(
        Category::kCholesky,
        [&](Index, Index) {
          KernelStats st;
          const double bd = static_cast<double>(b);
          st.flops = bd * bd * bd / 3.0 + 2.0 * bd * bd;
          st.bytes_stream = kBytes * bd * static_cast<double>(k + b);
          return st;
        },
        [&] { failed_pivot = factor_panel(a, k, b); });
    if (failed_pivot >= 0) return {failed_pivot};

    const Index rest = n - (k + b);
    if (rest <= 0) continue;

    // Row solve: A[k+b.., k..k+b) <- A[k+b.., k..k+b) * L11^{-T}.
    ctx.parallel(
        Category::kCholesky, rest,
        [&](Index begin, Index end) {
          KernelStats st;
          const double rows = static_cast<double>(end - begin);
          const double bd = static_cast<double>(b);
          st.flops = rows * bd * bd;
          st.bytes_stream = kBytes * rows * bd * 2.0;
          return st;
        },
        [&](Index begin, Index end, int /*lane*/) {
          for (Index ii = begin; ii < end; ++ii) {
            const Index i = k + b + ii;
            double* arow = a.row(i).data();
            for (Index j = k; j < k + b; ++j) {
              double s = arow[j] - dot(arow + k, a.row(j).data() + k, j - k);
              arow[j] = s / a(j, j);
            }
          }
        });

    // Trailing update: A22 -= A21 * A21^T (lower triangle only), one dot
    // product per entry.
    ctx.parallel(
        Category::kCholesky, rest,
        [&](Index begin, Index end) {
          KernelStats st;
          const double bd = static_cast<double>(b);
          double inner = 0.0;
          for (Index ii = begin; ii < end; ++ii) {
            inner += static_cast<double>(ii + 1);
          }
          st.flops = 2.0 * inner * bd;
          st.bytes_stream = kBytes * inner * 1.0 +
                            kBytes * static_cast<double>(end - begin) * bd;
          return st;
        },
        [&](Index begin, Index end, int /*lane*/) {
          for (Index ii = begin; ii < end; ++ii) {
            const Index i = k + b + ii;
            const double* ai = a.row(i).data() + k;
            double* arow = a.row(i).data();
            for (Index j = k + b; j <= i; ++j) {
              arow[j] -= dot(ai, a.row(j).data() + k, b);
            }
          }
        });
  }

  // Zero the strict upper triangle so L is directly usable.
  ctx.parallel(
      Category::kCholesky, n,
      [&](Index begin, Index end) {
        KernelStats st;
        st.bytes_stream = kBytes * static_cast<double>(end - begin) *
                          static_cast<double>(n) / 2.0;
        return st;
      },
      [&](Index begin, Index end, int /*lane*/) {
        for (Index i = begin; i < end; ++i) {
          double* arow = a.row(i).data();
          for (Index j = i + 1; j < n; ++j) arow[j] = 0.0;
        }
      });
  return {};
}

void cholesky(par::ExecContext& ctx, Matrix& a, Index block_size) {
  const CholeskyResult r = cholesky_factor(ctx, a, block_size);
  PHMSE_CHECK(r.ok(), "cholesky: matrix is not positive definite");
}

}  // namespace phmse::linalg::ref
