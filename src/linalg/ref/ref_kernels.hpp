// Reference (scalar) implementations of the hot dense kernels.
//
// These are the pre-optimization row-loop kernels, frozen verbatim when the
// production kernels in kernels.cpp / cholesky.cpp were rewritten as
// cache-blocked, register-tiled implementations.  They serve two purposes:
//
//   * the differential-test oracle (tests/kernels_oracle_test.cpp)
//     property-tests every blocked kernel against its ref:: twin over
//     randomized shapes, so a tiling bug cannot ship silently;
//   * the perf-regression harness (bench/kernels_regress.cpp) reports the
//     blocked kernels' speedup over these scalar baselines in
//     BENCH_kernels.json.
//
// Keep these obviously correct and boring.  Do NOT optimize them — their
// entire value is being the slow, trustworthy twin.  They honour the same
// ExecContext contract as the production kernels (same iteration spaces,
// same categories), so the oracle can also compare serial vs threaded
// execution of the reference itself.
#pragma once

#include "linalg/matrix.hpp"
#include "linalg/status.hpp"
#include "parallel/exec.hpp"

namespace phmse::linalg::ref {

/// In-place forward solve B <- L^{-1} B; scalar column-sweep reference.
void trsm_lower(par::ExecContext& ctx, const Matrix& l, Matrix& b);

/// In-place backward solve B <- L^{-T} B; scalar column-sweep reference.
void trsm_lower_transposed(par::ExecContext& ctx, const Matrix& l, Matrix& b);

/// C -= V^T * G; scalar row-axpy reference.
void covariance_downdate(par::ExecContext& ctx, const Matrix& v,
                         const Matrix& g, Matrix& c);

/// out = W^T * W (out resized to n x n); scalar row-axpy reference.
void gram(par::ExecContext& ctx, const Matrix& w, Matrix& out);

/// In-place blocked Cholesky with the dot-product trailing update; lower
/// triangle receives L, strict upper triangle zeroed.  Returns the failing
/// pivot instead of throwing when A is not (numerically) positive definite
/// (same status contract as the production kernel).
[[nodiscard]] CholeskyResult cholesky_factor(par::ExecContext& ctx, Matrix& a,
                                             Index block_size = 48);

/// Throwing wrapper over cholesky_factor: throws phmse::Error if A is not
/// (numerically) positive definite.
void cholesky(par::ExecContext& ctx, Matrix& a, Index block_size = 48);

}  // namespace phmse::linalg::ref
