#include "molecule/geom.hpp"

namespace phmse::mol {

double distance(const Vec3& a, const Vec3& b) { return (a - b).norm(); }

double bond_angle(const Vec3& a, const Vec3& b, const Vec3& c) {
  const Vec3 u = a - b;
  const Vec3 v = c - b;
  const double denom = u.norm() * v.norm();
  if (denom == 0.0) return 0.0;
  double cosine = u.dot(v) / denom;
  cosine = cosine > 1.0 ? 1.0 : (cosine < -1.0 ? -1.0 : cosine);
  return std::acos(cosine);
}

double dihedral(const Vec3& a, const Vec3& b, const Vec3& c, const Vec3& d) {
  const Vec3 b1 = b - a;
  const Vec3 b2 = c - b;
  const Vec3 b3 = d - c;
  const Vec3 n1 = b1.cross(b2);
  const Vec3 n2 = b2.cross(b3);
  const double nb2 = b2.norm();
  // IUPAC sign convention: looking along b->c, clockwise rotation from the
  // a-side projection to the d-side projection is positive.
  const double x = n1.dot(n2);
  const double y = b2.dot(n1.cross(n2)) / (nb2 == 0.0 ? 1.0 : nb2);
  return std::atan2(y, x);
}

}  // namespace phmse::mol
