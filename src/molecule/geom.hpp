// 3-D geometric primitives shared by the molecule builders and the
// constraint measurement functions.
#pragma once

#include <cmath>

#include "support/types.hpp"

namespace phmse::mol {

/// A point or displacement in 3-space (Angstroms).
struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  Vec3 operator+(const Vec3& o) const { return {x + o.x, y + o.y, z + o.z}; }
  Vec3 operator-(const Vec3& o) const { return {x - o.x, y - o.y, z - o.z}; }
  Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
  Vec3& operator+=(const Vec3& o) {
    x += o.x;
    y += o.y;
    z += o.z;
    return *this;
  }

  double dot(const Vec3& o) const { return x * o.x + y * o.y + z * o.z; }
  Vec3 cross(const Vec3& o) const {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }
  double norm() const { return std::sqrt(dot(*this)); }
  double norm2() const { return dot(*this); }
};

/// Euclidean distance between two points.
double distance(const Vec3& a, const Vec3& b);

/// Bond angle at vertex b of the triple a-b-c, in radians (0..pi).
double bond_angle(const Vec3& a, const Vec3& b, const Vec3& c);

/// Dihedral (torsion) angle of the chain a-b-c-d, in radians (-pi..pi].
double dihedral(const Vec3& a, const Vec3& b, const Vec3& c, const Vec3& d);

}  // namespace phmse::mol
