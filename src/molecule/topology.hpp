// Molecular topology: the atoms of a model and their reference positions.
//
// PHMSE works with "pseudo-atoms": for the helix problems every heavy atom
// is modeled, while the 30S ribosome uses one pseudo-atom per residue or
// protein, as the paper does.
#pragma once

#include <string>
#include <vector>

#include "linalg/matrix.hpp"
#include "molecule/geom.hpp"
#include "support/types.hpp"

namespace phmse::mol {

/// One (pseudo-)atom with a human-readable label and its ground-truth
/// position.  The ground truth generates noisy synthetic measurements and
/// scores estimates; the estimator itself never sees it.
struct Atom {
  std::string label;
  Vec3 position;
};

/// An ordered collection of atoms.  Atom order is significant: hierarchy
/// nodes own contiguous atom ranges (see src/core/hierarchy.hpp).
class Topology {
 public:
  Index size() const { return static_cast<Index>(atoms_.size()); }

  Index add_atom(std::string label, const Vec3& position);

  const Atom& atom(Index i) const {
    PHMSE_ASSERT(i >= 0 && i < size());
    return atoms_[static_cast<std::size_t>(i)];
  }

  const std::vector<Atom>& atoms() const { return atoms_; }

  /// Ground-truth state vector (x1,y1,z1,...,xp,yp,zp), dimension 3*size().
  linalg::Vector true_state() const;

  /// Positions decoded from a state vector of dimension 3*size().
  std::vector<Vec3> positions_from_state(const linalg::Vector& state) const;

  /// Root-mean-square deviation between a state vector and the ground
  /// truth, without superposition (the estimation problem is anchored, so
  /// direct RMSD is meaningful).
  double rmsd_to_truth(const linalg::Vector& state) const;

 private:
  std::vector<Atom> atoms_;
};

}  // namespace phmse::mol
