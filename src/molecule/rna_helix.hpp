// Synthetic A-form RNA double-helix builder.
//
// Reconstructs the paper's Helix data sets (Section 3.1): a double helix of
// L base pairs whose bases consist of a common 12-atom backbone and a
// type-specific sidechain (A=10, C=8, G=11, U=8 heavy atoms).  With the
// repeating strand sequence "GCAU" the atom counts match the paper's
// Table 1 exactly: 43, 86, 170, 340 and 680 atoms for 1, 2, 4, 8 and 16
// base pairs.
//
// Atom order is hierarchical — for base pair i: strand-1 backbone,
// strand-1 sidechain, strand-2 backbone, strand-2 sidechain — so every node
// of the Fig.-2 decomposition owns a contiguous atom range.
#pragma once

#include <string>
#include <vector>

#include "molecule/topology.hpp"
#include "support/types.hpp"

namespace phmse::mol {

/// Atom-index ranges of one base (backbone + sidechain).
struct BaseGroup {
  char type = 'G';            // A, C, G or U
  Index backbone_begin = 0;   // [backbone_begin, backbone_end)
  Index backbone_end = 0;
  Index sidechain_begin = 0;  // [sidechain_begin, sidechain_end)
  Index sidechain_end = 0;

  Index begin() const { return backbone_begin; }
  Index end() const { return sidechain_end; }
  Index size() const { return end() - begin(); }
};

/// One Watson-Crick base pair: a base on each strand.
struct BasePair {
  BaseGroup strand1;
  BaseGroup strand2;

  Index begin() const { return strand1.begin(); }
  Index end() const { return strand2.end(); }
};

/// Number of heavy atoms in the sidechain of base `type`.
Index sidechain_atoms(char type);

/// Number of heavy atoms in the common backbone.
inline constexpr Index kBackboneAtoms = 12;

/// The Watson-Crick complement of `type`.
char complement(char type);

/// A generated RNA double helix: topology plus base-pair structure.
struct HelixModel {
  Topology topology;
  std::vector<BasePair> pairs;
  std::string sequence;  // strand-1 sequence, 5' to 3'

  Index num_atoms() const { return topology.size(); }
  Index num_pairs() const { return static_cast<Index>(pairs.size()); }
};

/// Builds an ideal A-form double helix with `length` base pairs using the
/// repeating strand-1 sequence "GCAU" (which reproduces the paper's atom
/// counts).  `jitter` adds a small deterministic per-atom displacement so
/// that no constraint geometry is degenerate.
HelixModel build_helix(Index length, double jitter = 0.15);

/// Same, with an explicit strand-1 sequence (characters from {A,C,G,U}).
HelixModel build_helix_with_sequence(const std::string& sequence,
                                     double jitter = 0.15);

}  // namespace phmse::mol
