#include "molecule/xyz_io.hpp"

#include <istream>
#include <ostream>
#include <sstream>

#include "support/check.hpp"

namespace phmse::mol {

void write_xyz(std::ostream& os, const Topology& topology,
               const linalg::Vector& state, const std::string& comment) {
  const auto pos = topology.positions_from_state(state);
  os << topology.size() << '\n' << comment << '\n';
  for (Index i = 0; i < topology.size(); ++i) {
    const Vec3& p = pos[static_cast<std::size_t>(i)];
    os << topology.atom(i).label << ' ' << p.x << ' ' << p.y << ' ' << p.z
       << '\n';
  }
}

void write_xyz(std::ostream& os, const Topology& topology,
               const std::string& comment) {
  write_xyz(os, topology, topology.true_state(), comment);
}

Topology read_xyz(std::istream& is) {
  Index count = 0;
  is >> count;
  PHMSE_CHECK(is.good() && count >= 0, "xyz: bad atom count");
  std::string line;
  std::getline(is, line);  // rest of count line
  std::getline(is, line);  // comment
  Topology topo;
  for (Index i = 0; i < count; ++i) {
    std::getline(is, line);
    PHMSE_CHECK(static_cast<bool>(is), "xyz: truncated file");
    std::istringstream ls(line);
    std::string label;
    Vec3 p;
    ls >> label >> p.x >> p.y >> p.z;
    PHMSE_CHECK(static_cast<bool>(ls), "xyz: malformed atom line");
    topo.add_atom(label, p);
  }
  return topo;
}

}  // namespace phmse::mol
