// Synthetic prokaryotic 30S ribosomal subunit model.
//
// The paper's second problem models the 30S subunit with ~900 pseudo-atoms
// and ~6500 constraints: 21 proteins whose positions are known from neutron
// diffraction (reference points), plus the 16S rRNA consisting of about 65
// double helices and about as many interconnecting coils.  The original
// data set is not published, so this builder reconstructs a problem with
// the same size, hierarchy shape (high branching factor, paper Fig. 4) and
// constraint-locality statistics; see DESIGN.md, substitutions.
//
// Layout: segment centers are placed deterministically inside a sphere of
// ~55 A radius; helices are short stacks of pseudo-bases, coils are short
// chains, proteins are single pseudo-atoms.  Segments are grouped into
// spatial domains which become the children of the hierarchy root.
#pragma once

#include <vector>

#include "molecule/topology.hpp"
#include "support/types.hpp"

namespace phmse::mol {

/// One structural segment of the 30S model.
struct Segment {
  enum class Kind { kHelix, kCoil, kProtein };

  Kind kind = Kind::kHelix;
  Index begin = 0;  // atom range [begin, end)
  Index end = 0;
  Vec3 center;      // layout center (ground truth)
  int domain = 0;   // spatial domain id (hierarchy child of the root)

  Index size() const { return end - begin; }
};

/// Options controlling the synthetic model size.  Defaults reproduce the
/// paper's ~900 pseudo-atoms.
struct Ribo30sOptions {
  Index num_proteins = 21;
  Index num_helices = 65;
  Index num_coils = 65;
  /// Helix pseudo-atom counts alternate large/small (9/8) so the defaults
  /// land at 898 total pseudo-atoms.
  Index helix_atoms_large = 9;
  Index helix_atoms_small = 8;
  Index coil_atoms = 5;
  int num_domains = 7;
  double jitter = 0.2;
  std::uint64_t seed = 0x30571ULL;
};

/// The generated model.
struct Ribo30sModel {
  Topology topology;
  std::vector<Segment> segments;  // ordered by domain, then by position
  int num_domains = 0;

  Index num_atoms() const { return topology.size(); }
  Index num_segments() const { return static_cast<Index>(segments.size()); }

  /// Segments belonging to `domain`, as a contiguous index range into
  /// `segments` (the builder sorts them).
  std::pair<Index, Index> domain_segments(int domain) const;
};

/// Builds the synthetic 30S model.
Ribo30sModel build_ribo30s(const Ribo30sOptions& options = {});

}  // namespace phmse::mol
