#include "molecule/rna_helix.hpp"

#include <cmath>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace phmse::mol {
namespace {

// A-form helical parameters.
constexpr double kRisePerPair = 2.81;     // Angstrom along the axis
constexpr double kTwistPerPair = 32.7 * M_PI / 180.0;
constexpr double kBackboneRadius = 9.4;   // phosphate backbone radius
constexpr double kSidechainRadius = 4.0;  // bases sit near the axis
constexpr double kStrandPhase = 150.0 * M_PI / 180.0;  // minor-groove offset

Vec3 cylindrical(double radius, double phi, double z) {
  return {radius * std::cos(phi), radius * std::sin(phi), z};
}

// Lays down the atoms of one base.  `phi0`/`z0` locate the base's backbone
// anchor on its strand; `inward` is +1/-1 selecting which way the sidechain
// points (towards the paired base).
void emit_base(Topology& topo, BaseGroup& group, char type,
               const std::string& label_prefix, double phi0, double z0,
               double inward, Rng& rng, double jitter) {
  group.type = type;

  // Backbone: kBackboneAtoms atoms winding along the strand between this
  // base and the next, at the outer radius.
  group.backbone_begin = topo.size();
  for (Index k = 0; k < kBackboneAtoms; ++k) {
    const double t = static_cast<double>(k) / kBackboneAtoms;
    const double phi = phi0 + t * kTwistPerPair * 0.8;
    const double z = z0 + t * kRisePerPair * 0.8;
    const double r = kBackboneRadius - 1.2 * std::sin(t * M_PI);
    Vec3 p = cylindrical(r, phi, z);
    p += Vec3{rng.gaussian(0.0, jitter), rng.gaussian(0.0, jitter),
              rng.gaussian(0.0, jitter)};
    topo.add_atom(label_prefix + "_bb" + std::to_string(k), p);
  }
  group.backbone_end = topo.size();

  // Sidechain: the base ring(s), stacked roughly perpendicular to the axis,
  // reaching inward toward the helix axis.
  group.sidechain_begin = topo.size();
  const Index n_side = sidechain_atoms(type);
  for (Index k = 0; k < n_side; ++k) {
    const double ring = static_cast<double>(k) / static_cast<double>(n_side);
    const double r = kBackboneRadius - 2.0 -
                     (kBackboneRadius - 2.0 - kSidechainRadius) * ring;
    const double phi = phi0 + inward * 0.25 * ring;
    const double z = z0 + 0.6 * std::sin(ring * 2.0 * M_PI);
    Vec3 p = cylindrical(r, phi, z);
    p += Vec3{rng.gaussian(0.0, jitter), rng.gaussian(0.0, jitter),
              rng.gaussian(0.0, jitter)};
    topo.add_atom(label_prefix + "_sc" + std::to_string(k), p);
  }
  group.sidechain_end = topo.size();
}

}  // namespace

Index sidechain_atoms(char type) {
  switch (type) {
    case 'A': return 10;
    case 'C': return 8;
    case 'G': return 11;
    case 'U': return 8;
    default:
      PHMSE_CHECK(false, "unknown base type (want A, C, G or U)");
  }
  return 0;
}

char complement(char type) {
  switch (type) {
    case 'A': return 'U';
    case 'U': return 'A';
    case 'G': return 'C';
    case 'C': return 'G';
    default:
      PHMSE_CHECK(false, "unknown base type (want A, C, G or U)");
  }
  return '?';
}

HelixModel build_helix(Index length, double jitter) {
  PHMSE_CHECK(length >= 1, "helix needs at least one base pair");
  static const char kPattern[] = {'G', 'C', 'A', 'U'};
  std::string seq;
  seq.reserve(static_cast<std::size_t>(length));
  for (Index i = 0; i < length; ++i) {
    seq.push_back(kPattern[static_cast<std::size_t>(i % 4)]);
  }
  return build_helix_with_sequence(seq, jitter);
}

HelixModel build_helix_with_sequence(const std::string& sequence,
                                     double jitter) {
  PHMSE_CHECK(!sequence.empty(), "helix needs at least one base pair");
  HelixModel model;
  model.sequence = sequence;
  Rng rng(0x5eedULL + sequence.size());

  const Index length = static_cast<Index>(sequence.size());
  for (Index i = 0; i < length; ++i) {
    const char t1 = sequence[static_cast<std::size_t>(i)];
    const char t2 = complement(t1);
    const double phi = static_cast<double>(i) * kTwistPerPair;
    const double z = static_cast<double>(i) * kRisePerPair;

    BasePair pair;
    const std::string tag = std::to_string(i);
    emit_base(model.topology, pair.strand1, t1,
              std::string(1, t1) + tag + "a", phi, z, +1.0, rng, jitter);
    emit_base(model.topology, pair.strand2, t2,
              std::string(1, t2) + tag + "b", phi + kStrandPhase, z, -1.0,
              rng, jitter);
    model.pairs.push_back(pair);
  }
  return model;
}

}  // namespace phmse::mol
