#include "molecule/ribo30s.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace phmse::mol {
namespace {

constexpr double kModelRadius = 55.0;  // overall extent of the 30S body

// Quasi-uniform deterministic points in a ball, via a Fibonacci spiral on
// shells.  Deterministic placement keeps the problem reproducible and the
// domain decomposition stable.
Vec3 layout_point(Index i, Index total) {
  const double golden = M_PI * (3.0 - std::sqrt(5.0));
  const double frac = (static_cast<double>(i) + 0.5) / static_cast<double>(total);
  const double radius = kModelRadius * std::cbrt(frac);
  const double cos_theta = 1.0 - 2.0 * frac;
  const double sin_theta = std::sqrt(std::max(0.0, 1.0 - cos_theta * cos_theta));
  const double phi = golden * static_cast<double>(i);
  return {radius * sin_theta * std::cos(phi),
          radius * sin_theta * std::sin(phi), radius * cos_theta};
}

// Spatial domain of a center: a wedge by azimuth plus a polar cap split,
// giving num_domains roughly equal regions.
int domain_of(const Vec3& c, int num_domains) {
  const double phi = std::atan2(c.y, c.x);            // -pi..pi
  const double frac = (phi + M_PI) / (2.0 * M_PI);    // 0..1
  int d = static_cast<int>(frac * num_domains);
  if (d >= num_domains) d = num_domains - 1;
  return d;
}

struct PendingSegment {
  Segment::Kind kind;
  Index atoms;
  Vec3 center;
  int domain;
};

}  // namespace

std::pair<Index, Index> Ribo30sModel::domain_segments(int domain) const {
  Index lo = 0;
  while (lo < num_segments() &&
         segments[static_cast<std::size_t>(lo)].domain < domain) {
    ++lo;
  }
  Index hi = lo;
  while (hi < num_segments() &&
         segments[static_cast<std::size_t>(hi)].domain == domain) {
    ++hi;
  }
  return {lo, hi};
}

Ribo30sModel build_ribo30s(const Ribo30sOptions& options) {
  PHMSE_CHECK(options.num_domains >= 1, "need at least one domain");
  Ribo30sModel model;
  model.num_domains = options.num_domains;
  Rng rng(options.seed);

  // Decide every segment's kind, size and center first, then sort by
  // (domain, layout order) so atom ranges are contiguous per domain.
  std::vector<PendingSegment> pending;
  const Index total_segments =
      options.num_helices + options.num_coils + options.num_proteins;
  Index layout_idx = 0;
  for (Index h = 0; h < options.num_helices; ++h) {
    const Index atoms =
        (h % 2 == 0) ? options.helix_atoms_large : options.helix_atoms_small;
    const Vec3 c = layout_point(layout_idx++, total_segments);
    pending.push_back({Segment::Kind::kHelix, atoms, c,
                       domain_of(c, options.num_domains)});
  }
  for (Index c = 0; c < options.num_coils; ++c) {
    const Vec3 ctr = layout_point(layout_idx++, total_segments);
    pending.push_back({Segment::Kind::kCoil, options.coil_atoms, ctr,
                       domain_of(ctr, options.num_domains)});
  }
  for (Index p = 0; p < options.num_proteins; ++p) {
    const Vec3 ctr = layout_point(layout_idx++, total_segments);
    pending.push_back({Segment::Kind::kProtein, 1, ctr,
                       domain_of(ctr, options.num_domains)});
  }

  std::stable_sort(pending.begin(), pending.end(),
                   [](const PendingSegment& a, const PendingSegment& b) {
                     return a.domain < b.domain;
                   });

  // Emit atoms.
  for (const PendingSegment& ps : pending) {
    Segment seg;
    seg.kind = ps.kind;
    seg.center = ps.center;
    seg.domain = ps.domain;
    seg.begin = model.topology.size();

    const char* prefix = ps.kind == Segment::Kind::kHelix   ? "H"
                         : ps.kind == Segment::Kind::kCoil ? "C"
                                                           : "P";
    for (Index k = 0; k < ps.atoms; ++k) {
      Vec3 p = ps.center;
      if (ps.kind == Segment::Kind::kHelix) {
        // Short helical stack of pseudo-bases around the center.
        const double t = static_cast<double>(k);
        p += Vec3{2.8 * std::cos(0.8 * t), 2.8 * std::sin(0.8 * t),
                  2.5 * (t - static_cast<double>(ps.atoms - 1) / 2.0)};
      } else if (ps.kind == Segment::Kind::kCoil) {
        // Loose chain.
        const double t = static_cast<double>(k);
        p += Vec3{3.2 * t - 1.6 * static_cast<double>(ps.atoms - 1),
                  1.5 * std::sin(1.3 * t), 1.5 * std::cos(1.7 * t)};
      }
      p += Vec3{rng.gaussian(0.0, options.jitter),
                rng.gaussian(0.0, options.jitter),
                rng.gaussian(0.0, options.jitter)};
      model.topology.add_atom(
          std::string(prefix) + std::to_string(model.segments.size()) + "_" +
              std::to_string(k),
          p);
    }
    seg.end = model.topology.size();
    model.segments.push_back(seg);
  }
  return model;
}

}  // namespace phmse::mol
