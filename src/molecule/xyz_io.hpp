// Minimal XYZ-format I/O for inspecting models and estimates.
#pragma once

#include <iosfwd>
#include <string>

#include "linalg/matrix.hpp"
#include "molecule/topology.hpp"

namespace phmse::mol {

/// Writes `topology` (at the positions encoded in `state`) as XYZ text:
/// first line atom count, second a comment, then "label x y z" lines.
void write_xyz(std::ostream& os, const Topology& topology,
               const linalg::Vector& state, const std::string& comment);

/// Convenience overload writing the topology's ground-truth positions.
void write_xyz(std::ostream& os, const Topology& topology,
               const std::string& comment);

/// Reads an XYZ stream back into a fresh topology (labels + positions).
Topology read_xyz(std::istream& is);

}  // namespace phmse::mol
