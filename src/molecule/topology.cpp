#include "molecule/topology.hpp"

#include <cmath>

namespace phmse::mol {

Index Topology::add_atom(std::string label, const Vec3& position) {
  atoms_.push_back(Atom{std::move(label), position});
  return size() - 1;
}

linalg::Vector Topology::true_state() const {
  linalg::Vector x(static_cast<std::size_t>(3 * size()));
  for (Index i = 0; i < size(); ++i) {
    const Vec3& p = atoms_[static_cast<std::size_t>(i)].position;
    x[static_cast<std::size_t>(3 * i + 0)] = p.x;
    x[static_cast<std::size_t>(3 * i + 1)] = p.y;
    x[static_cast<std::size_t>(3 * i + 2)] = p.z;
  }
  return x;
}

std::vector<Vec3> Topology::positions_from_state(
    const linalg::Vector& state) const {
  PHMSE_CHECK(static_cast<Index>(state.size()) == 3 * size(),
              "state dimension does not match topology");
  std::vector<Vec3> out(static_cast<std::size_t>(size()));
  for (Index i = 0; i < size(); ++i) {
    out[static_cast<std::size_t>(i)] =
        Vec3{state[static_cast<std::size_t>(3 * i + 0)],
             state[static_cast<std::size_t>(3 * i + 1)],
             state[static_cast<std::size_t>(3 * i + 2)]};
  }
  return out;
}

double Topology::rmsd_to_truth(const linalg::Vector& state) const {
  const auto pos = positions_from_state(state);
  double sum = 0.0;
  for (Index i = 0; i < size(); ++i) {
    sum += (pos[static_cast<std::size_t>(i)] -
            atoms_[static_cast<std::size_t>(i)].position)
               .norm2();
  }
  return std::sqrt(sum / static_cast<double>(size()));
}

}  // namespace phmse::mol
