// Execution-driven simulation of a team of virtual processors.
//
// A SimMachine holds the virtual clock and per-category profile of every
// virtual processor.  A SimContext is an ExecContext view over a contiguous
// range of those processors (the team assigned to one hierarchy node).  The
// kernels' numerics actually execute (sequentially, on the host); virtual
// time is charged from the cost model in machine.hpp.
//
// Accounting convention: a team executes SPMD code with a barrier after
// every kernel, so after each region every team member's clock has advanced
// by the same amount — the slowest lane's chunk time plus the barrier cost.
// That amount is charged to the kernel's category on every member.  A
// processor's clock therefore equals the critical path through the sequence
// of nodes it participates in, and the run time of a program is the maximum
// clock over all processors.
#pragma once

#include <vector>

#include "parallel/exec.hpp"
#include "simarch/machine.hpp"

namespace phmse::simarch {

/// Virtual clocks and profiles for every processor of a simulated machine.
class SimMachine {
 public:
  explicit SimMachine(MachineConfig config);

  const MachineConfig& config() const { return config_; }
  int processors() const { return config_.processors; }

  double clock(int proc) const;
  void set_clock(int proc, double t);

  perf::Profile& proc_profile(int proc);
  const perf::Profile& proc_profile(int proc) const;

  /// Maximum clock over [first, first+size).
  double max_clock(int first, int size) const;

  /// Sets every clock in [first, first+size) to the range's max; returns it.
  /// Used when a team forms at a node after its children complete.
  double sync_range(int first, int size);

  /// Run time so far: maximum clock over all processors.
  double elapsed() const { return max_clock(0, processors()); }

  /// Per-category times as reported in the paper's tables: for each
  /// category, the maximum accumulated time over all processors.
  perf::Profile reported_profile() const;

  void reset();

 private:
  MachineConfig config_;
  std::vector<double> clock_;
  std::vector<perf::Profile> profile_;
};

/// ExecContext charging virtual time to processors [first, first+size) of a
/// SimMachine.
class SimContext final : public par::ExecContext {
 public:
  SimContext(SimMachine& machine, int first_proc, int size);

  int width() const override { return size_; }

  void parallel(perf::Category cat, Index n, const par::CostFn& cost,
                const par::BodyFn& body) override;

  void sequential(perf::Category cat, const par::CostFn& cost,
                  const par::SectionFn& body) override;

  /// Critical-path profile of this context's team (every member advanced
  /// identically; this is lane 0's view).
  const perf::Profile& profile() const override;

  int first_proc() const { return first_; }

 private:
  /// Advances every team member by `dt` seconds in category `cat`.
  void charge_all(perf::Category cat, double dt);

  SimMachine& machine_;
  int first_;
  int size_;
  int team_clusters_;
};

}  // namespace phmse::simarch
