// Machine model for the simulated cache-coherent shared-memory
// multiprocessor.
//
// The paper evaluates on the Stanford DASH (32x 33 MHz MIPS R3000, 8
// clusters of 4 connected by a mesh, distributed directory-based cache
// coherence) and an SGI Challenge (16x 100 MHz MIPS R4400 on a central
// bus).  This host has a single core, so we reproduce the parallel study
// with an execution-driven simulation: the numerics actually run, and a
// cost model charges each virtual processor for the flops and memory
// traffic of its share of every kernel (see DESIGN.md, substitutions).
//
// The cost model is deliberately simple and captures the effects the paper
// analyses:
//   * flop cost         — sustained scalar FP rate of the era's CPUs;
//   * cache-miss cost   — all annotated traffic is charged at cache-line
//     granularity; on a distributed-memory machine (DASH) the per-line cost
//     interpolates between local and remote latency with the number of
//     clusters a team spans (node data is placed round-robin across the
//     team's clusters, as the paper describes); on a centralized machine
//     (Challenge) every miss pays the bus latency plus a contention term;
//   * barrier cost      — teams synchronize after every kernel; the cost
//     grows with team size, which is what floors the tiny vector kernels at
//     high processor counts.
#pragma once

#include <string>

#include "parallel/exec.hpp"

namespace phmse::simarch {

/// Whether main memory is physically distributed (DASH) or central (bus).
enum class MemoryLayout { kDistributed, kCentralized };

/// Parameters of a simulated machine.
struct MachineConfig {
  std::string name;
  /// Total processors.
  int processors = 1;
  /// Processors per cluster (1 cluster == bus-based SMP).
  int procs_per_cluster = 4;
  MemoryLayout layout = MemoryLayout::kDistributed;

  /// Sustained scalar floating-point rate (flop/s).
  double flops_per_sec = 8.0e6;
  /// Cache line size in bytes.
  double line_bytes = 32.0;
  /// Latency of a miss satisfied in local / cluster memory (seconds).
  double t_miss_local = 1.0e-6;
  /// Latency of a miss satisfied in a remote cluster (seconds);
  /// for centralized machines this equals the bus miss latency.
  double t_miss_remote = 3.2e-6;
  /// Fractional slowdown of every miss per additional active processor on a
  /// centralized bus (contention).  Zero for distributed machines.
  double bus_contention = 0.0;
  /// Cost of a barrier among g processors: base + per_proc * g (seconds).
  double barrier_base = 4.0e-6;
  double barrier_per_proc = 2.5e-6;

  /// Fraction of streamed traffic that actually misses (blocked kernels
  /// reuse lines; irregular traffic always misses).
  double stream_miss_fraction = 1.0;

  /// Modeled per-processor cache capacity in bytes; 0 disables capacity
  /// effects.  When a kernel's resident working set (KernelStats::
  /// resident_bytes) overflows this, the overflowing fraction is
  /// re-fetched on every extra sweep instead of hitting in cache.
  double cache_bytes_per_proc = 0.0;
};

/// Preset matching the Stanford DASH used in the paper (32x R3000/33MHz,
/// 8 clusters of 4, distributed directory-based coherence).
MachineConfig dash32();

/// Preset matching the SGI Challenge used in the paper (16x R4400/100MHz,
/// central memory on a 1.2 GB/s bus).
MachineConfig challenge16();

/// A generic modern-host-like preset, useful for tests.
MachineConfig generic(int processors);

/// Time for one lane to execute a chunk with the given stats when its team
/// spans `team_clusters` clusters and `active_processors` are busy
/// machine-wide.
double chunk_time(const MachineConfig& cfg, const par::KernelStats& stats,
                  int team_clusters, int active_processors);

/// Barrier cost among `team_size` processors (0 when team_size == 1).
double barrier_time(const MachineConfig& cfg, int team_size);

/// Number of clusters spanned by processors [first, first+size).
int clusters_spanned(const MachineConfig& cfg, int first, int size);

}  // namespace phmse::simarch
