#include "simarch/sim_context.hpp"

#include <algorithm>
#include <exception>

#include "parallel/partition.hpp"
#include "support/check.hpp"

namespace phmse::simarch {

SimMachine::SimMachine(MachineConfig config) : config_(std::move(config)) {
  PHMSE_CHECK(config_.processors >= 1, "machine needs at least one processor");
  clock_.assign(static_cast<std::size_t>(config_.processors), 0.0);
  profile_.assign(static_cast<std::size_t>(config_.processors),
                  perf::Profile{});
}

double SimMachine::clock(int proc) const {
  PHMSE_CHECK(proc >= 0 && proc < processors(), "processor id out of range");
  return clock_[static_cast<std::size_t>(proc)];
}

void SimMachine::set_clock(int proc, double t) {
  PHMSE_CHECK(proc >= 0 && proc < processors(), "processor id out of range");
  clock_[static_cast<std::size_t>(proc)] = t;
}

perf::Profile& SimMachine::proc_profile(int proc) {
  PHMSE_CHECK(proc >= 0 && proc < processors(), "processor id out of range");
  return profile_[static_cast<std::size_t>(proc)];
}

const perf::Profile& SimMachine::proc_profile(int proc) const {
  PHMSE_CHECK(proc >= 0 && proc < processors(), "processor id out of range");
  return profile_[static_cast<std::size_t>(proc)];
}

double SimMachine::max_clock(int first, int size) const {
  PHMSE_CHECK(first >= 0 && size >= 1 && first + size <= processors(),
              "processor range out of machine bounds");
  double m = 0.0;
  for (int p = first; p < first + size; ++p) {
    m = std::max(m, clock_[static_cast<std::size_t>(p)]);
  }
  return m;
}

double SimMachine::sync_range(int first, int size) {
  const double m = max_clock(first, size);
  for (int p = first; p < first + size; ++p) {
    clock_[static_cast<std::size_t>(p)] = m;
  }
  return m;
}

perf::Profile SimMachine::reported_profile() const {
  perf::Profile out;
  for (const auto& p : profile_) out.max_with(p);
  return out;
}

void SimMachine::reset() {
  std::fill(clock_.begin(), clock_.end(), 0.0);
  for (auto& p : profile_) p.clear();
}

SimContext::SimContext(SimMachine& machine, int first_proc, int size)
    : machine_(machine), first_(first_proc), size_(size) {
  PHMSE_CHECK(size >= 1, "team needs at least one processor");
  PHMSE_CHECK(first_proc >= 0 && first_proc + size <= machine.processors(),
              "team range out of machine bounds");
  team_clusters_ = clusters_spanned(machine.config(), first_, size_);
}

void SimContext::charge_all(perf::Category cat, double dt) {
  for (int p = first_; p < first_ + size_; ++p) {
    machine_.set_clock(p, machine_.clock(p) + dt);
    machine_.proc_profile(p).add(cat, dt);
  }
}

void SimContext::parallel(perf::Category cat, Index n, const par::CostFn& cost,
                          const par::BodyFn& body) {
  const auto& cfg = machine_.config();
  double max_dt = 0.0;
  std::exception_ptr error;
  for (int lane = 0; lane < size_ && !error; ++lane) {
    const par::Range r = par::even_chunk(n, size_, lane);
    if (r.empty()) continue;
    const par::KernelStats stats = cost(r.begin, r.end);
    max_dt = std::max(
        max_dt, chunk_time(cfg, stats, team_clusters_, cfg.processors));
    // Exception transparency (see ExecContext): a throwing lane body still
    // charges the virtual clocks of the whole team — the simulated machine
    // stays consistent — and the exception surfaces on the calling lane.
    try {
      body(r.begin, r.end, lane);
    } catch (...) {
      error = std::current_exception();
    }
  }
  charge_all(cat, max_dt + barrier_time(cfg, size_));
  if (error) std::rethrow_exception(error);
}

void SimContext::sequential(perf::Category cat, const par::CostFn& cost,
                            const par::SectionFn& body) {
  const auto& cfg = machine_.config();
  const par::KernelStats stats = cost(0, 1);
  const double dt = chunk_time(cfg, stats, team_clusters_, cfg.processors);
  std::exception_ptr error;
  try {
    body();
  } catch (...) {
    error = std::current_exception();
  }
  charge_all(cat, dt + barrier_time(cfg, size_));
  if (error) std::rethrow_exception(error);
}

const perf::Profile& SimContext::profile() const {
  return machine_.proc_profile(first_);
}

}  // namespace phmse::simarch
