#include "simarch/machine.hpp"

#include "support/check.hpp"

namespace phmse::simarch {

MachineConfig dash32() {
  MachineConfig cfg;
  cfg.name = "dash32";
  cfg.processors = 32;
  cfg.procs_per_cluster = 4;
  cfg.layout = MemoryLayout::kDistributed;
  cfg.flops_per_sec = 8.0e6;   // sustained R3000/33MHz with R3010 FPU
  cfg.line_bytes = 32.0;
  cfg.t_miss_local = 0.9e-6;   // ~30 cycles at 33 MHz
  cfg.t_miss_remote = 3.2e-6;  // ~100+ cycles through the directory
  cfg.bus_contention = 0.0;
  cfg.barrier_base = 5.0e-6;
  cfg.barrier_per_proc = 3.0e-6;
  cfg.stream_miss_fraction = 1.0;
  // Capacity effects are off in the preset: the kernel annotations already
  // charge ideally-blocked traffic, which is what the paper's tiled code
  // achieves.  bench/ablation_machine turns this on to study the effect.
  cfg.cache_bytes_per_proc = 0.0;
  return cfg;
}

MachineConfig challenge16() {
  MachineConfig cfg;
  cfg.name = "challenge16";
  cfg.processors = 16;
  cfg.procs_per_cluster = 16;  // one bus-based SMP
  cfg.layout = MemoryLayout::kCentralized;
  cfg.flops_per_sec = 2.5e7;   // sustained R4400/100MHz
  cfg.line_bytes = 128.0;      // R4400 secondary cache line
  cfg.t_miss_local = 1.0e-6;
  cfg.t_miss_remote = 1.0e-6;  // central memory: one latency class
  cfg.bus_contention = 0.012;  // mild; the paper's 1.2 GB/s bus is generous
  cfg.barrier_base = 2.0e-6;
  cfg.barrier_per_proc = 1.0e-6;
  cfg.stream_miss_fraction = 1.0;
  return cfg;
}

MachineConfig generic(int processors) {
  MachineConfig cfg;
  cfg.name = "generic";
  cfg.processors = processors;
  cfg.procs_per_cluster = 4;
  cfg.layout = MemoryLayout::kDistributed;
  return cfg;
}

double chunk_time(const MachineConfig& cfg, const par::KernelStats& stats,
                  int team_clusters, int active_processors) {
  PHMSE_CHECK(team_clusters >= 1, "team must span at least one cluster");
  const double compute = stats.flops / cfg.flops_per_sec;

  double miss_cost;
  if (cfg.layout == MemoryLayout::kDistributed) {
    // Node data is distributed round-robin across the team's clusters, so
    // the chance a line is local is 1/team_clusters.
    const double remote_fraction = 1.0 - 1.0 / team_clusters;
    miss_cost = cfg.t_miss_local +
                remote_fraction * (cfg.t_miss_remote - cfg.t_miss_local);
  } else {
    miss_cost = cfg.t_miss_remote *
                (1.0 + cfg.bus_contention * (active_processors - 1));
  }

  double bytes = stats.bytes_stream * cfg.stream_miss_fraction +
                 stats.bytes_irregular;
  if (cfg.cache_bytes_per_proc > 0.0 &&
      stats.resident_bytes > cfg.cache_bytes_per_proc &&
      stats.resident_sweeps > 1.0) {
    // The resident tile overflows the cache: each extra sweep re-fetches
    // the overflowing fraction from memory.
    const double overflow =
        1.0 - cfg.cache_bytes_per_proc / stats.resident_bytes;
    bytes += (stats.resident_sweeps - 1.0) * stats.resident_bytes * overflow;
  }
  const double lines = bytes / cfg.line_bytes;
  return compute + lines * miss_cost;
}

double barrier_time(const MachineConfig& cfg, int team_size) {
  if (team_size <= 1) return 0.0;
  return cfg.barrier_base + cfg.barrier_per_proc * team_size;
}

int clusters_spanned(const MachineConfig& cfg, int first, int size) {
  PHMSE_CHECK(first >= 0 && size >= 1 && first + size <= cfg.processors,
              "processor range out of machine bounds");
  const int first_cluster = first / cfg.procs_per_cluster;
  const int last_cluster = (first + size - 1) / cfg.procs_per_cluster;
  return last_cluster - first_cluster + 1;
}

}  // namespace phmse::simarch
