// Error-handling primitives used across the library.
//
// PHMSE follows the Core Guidelines convention of checking preconditions at
// API boundaries.  PHMSE_CHECK is always on (it guards user-visible
// contracts); PHMSE_ASSERT compiles out in release builds and guards
// internal invariants on hot paths.
#pragma once

#include <stdexcept>
#include <string>

namespace phmse {

/// Exception thrown on violated API preconditions or numerical failures
/// (e.g. a measurement covariance that is not positive definite).
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               const std::string& msg);
}  // namespace detail

}  // namespace phmse

#define PHMSE_CHECK(expr, msg)                                        \
  do {                                                                \
    if (!(expr)) {                                                    \
      ::phmse::detail::check_failed(#expr, __FILE__, __LINE__, msg);  \
    }                                                                 \
  } while (false)

#ifdef NDEBUG
#define PHMSE_ASSERT(expr) ((void)0)
#else
#define PHMSE_ASSERT(expr) PHMSE_CHECK(expr, "internal invariant violated")
#endif
