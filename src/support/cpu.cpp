#include "support/cpu.hpp"

namespace phmse::support {
namespace {

CpuFeatures detect() {
  CpuFeatures f;
#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__)
#if defined(__GNUC__) || defined(__clang__)
  __builtin_cpu_init();
  // __builtin_cpu_supports consults XGETBV, so these are false when the OS
  // does not save the extended register state even if the CPU has it.
  f.avx2 = __builtin_cpu_supports("avx2");
  f.fma = __builtin_cpu_supports("fma");
  f.avx512f = __builtin_cpu_supports("avx512f");
#endif
#elif defined(__ARM_NEON) || defined(__aarch64__)
  f.neon = true;
#endif
  return f;
}

}  // namespace

std::string CpuFeatures::summary() const {
  std::string s;
  const auto add = [&](bool have, const char* name) {
    if (!have) return;
    if (!s.empty()) s += ' ';
    s += name;
  };
  add(avx2, "avx2");
  add(fma, "fma");
  add(avx512f, "avx512f");
  add(neon, "neon");
  if (s.empty()) s = "(none)";
  return s;
}

const CpuFeatures& cpu_features() {
  static const CpuFeatures f = detect();
  return f;
}

}  // namespace phmse::support
