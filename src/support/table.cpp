#include "support/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "support/check.hpp"

namespace phmse {

std::string format_fixed(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  PHMSE_CHECK(!header_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  PHMSE_CHECK(cells.size() == header_.size(),
              "row arity must match header arity");
  rows_.push_back(std::move(cells));
}

void Table::add_numeric_row(const std::vector<double>& cells, int precision) {
  std::vector<std::string> formatted;
  formatted.reserve(cells.size());
  for (double v : cells) formatted.push_back(format_fixed(v, precision));
  add_row(std::move(formatted));
}

std::string Table::str() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ") << std::setw(static_cast<int>(width[c]))
         << row[c];
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c == 0 ? 0 : 2);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

}  // namespace phmse
