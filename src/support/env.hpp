// Environment-variable configuration helpers.
//
// Benchmarks accept scale knobs (e.g. PHMSE_BENCH_SCALE) so the full paper
// reproduction and a quick smoke run share one binary.
#pragma once

#include <string>

namespace phmse {

/// Returns the value of environment variable `name`, or `fallback` if unset.
std::string env_string(const std::string& name, const std::string& fallback);

/// Returns `name` parsed as a long, or `fallback` if unset/unparsable.
long env_long(const std::string& name, long fallback);

/// Returns `name` parsed as a double, or `fallback` if unset/unparsable.
double env_double(const std::string& name, double fallback);

/// Returns true when `name` is set to a truthy value (1/true/yes/on).
bool env_flag(const std::string& name, bool fallback = false);

}  // namespace phmse
