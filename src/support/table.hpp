// Plain-text table formatting for benchmark output.
//
// The benchmark harnesses print rows in the same layout as the paper's
// Tables 1-6 so the reproduction can be compared side by side with the
// published numbers.
#pragma once

#include <string>
#include <vector>

namespace phmse {

/// Column-aligned text table builder.
///
/// Usage:
///   Table t({"NP", "time", "spdup"});
///   t.add_row({"1", "483.22", "1.00"});
///   std::cout << t.str();
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends one row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats every cell with fixed precision.
  void add_numeric_row(const std::vector<double>& cells, int precision = 5);

  std::size_t rows() const { return rows_.size(); }

  /// Renders the table with a header rule, right-aligned numeric columns.
  std::string str() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats `v` with `precision` digits after the decimal point.
std::string format_fixed(double v, int precision);

}  // namespace phmse
