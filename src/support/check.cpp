#include "support/check.hpp"

#include <sstream>

namespace phmse::detail {

void check_failed(const char* expr, const char* file, int line,
                  const std::string& msg) {
  std::ostringstream os;
  os << "PHMSE_CHECK failed: (" << expr << ") at " << file << ":" << line
     << " — " << msg;
  throw Error(os.str());
}

}  // namespace phmse::detail
