#include "support/env.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>

namespace phmse {

std::string env_string(const std::string& name, const std::string& fallback) {
  const char* v = std::getenv(name.c_str());
  return v != nullptr ? std::string(v) : fallback;
}

long env_long(const std::string& name, long fallback) {
  const char* v = std::getenv(name.c_str());
  if (v == nullptr) return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(v, &end, 10);
  return (end != v && end != nullptr && *end == '\0') ? parsed : fallback;
}

double env_double(const std::string& name, double fallback) {
  const char* v = std::getenv(name.c_str());
  if (v == nullptr) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  return (end != v && end != nullptr && *end == '\0') ? parsed : fallback;
}

bool env_flag(const std::string& name, bool fallback) {
  const char* v = std::getenv(name.c_str());
  if (v == nullptr) return fallback;
  std::string s(v);
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s == "1" || s == "true" || s == "yes" || s == "on";
}

}  // namespace phmse
