// Wall-clock stopwatch for real (host) timing.
#pragma once

#include <chrono>

namespace phmse {

/// Monotonic wall-clock stopwatch; `seconds()` reads without stopping.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace phmse
