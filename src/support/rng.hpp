// Deterministic random number generation.
//
// All synthetic data (measurement noise, initial-estimate perturbations,
// ribosome layout) is produced through this wrapper so every experiment is
// reproducible from a single seed.
#pragma once

#include <cstdint>
#include <random>

namespace phmse {

/// A seeded, deterministic RNG with the distributions PHMSE needs.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : engine_(seed) {}

  /// Standard-normal draw scaled to N(mean, sigma^2).
  double gaussian(double mean = 0.0, double sigma = 1.0) {
    return mean + sigma * normal_(engine_);
  }

  /// Uniform draw in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0) {
    return lo + (hi - lo) * uniform_(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Derives an independent child stream; used to give each worker or each
  /// constraint category its own reproducible sequence.
  Rng fork() { return Rng(engine_() ^ 0xd1b54a32d192ed03ULL); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::normal_distribution<double> normal_{0.0, 1.0};
  std::uniform_real_distribution<double> uniform_{0.0, 1.0};
};

}  // namespace phmse
