// Common index type.
#pragma once

#include <cstddef>

namespace phmse {

/// Signed index type used for matrix dimensions and iteration spaces.
using Index = std::ptrdiff_t;

}  // namespace phmse
