#include "support/rng.hpp"

// Header-only today; the translation unit pins the library's symbols and
// keeps a stable home for future out-of-line distribution code.
