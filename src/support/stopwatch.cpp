#include "support/stopwatch.hpp"

// Header-only; see stopwatch.hpp.
