// Runtime CPU feature detection for the linalg backend dispatch seam.
//
// The simd backend (src/linalg/simd) compiles its AVX2/AVX-512 microkernels
// with per-function target attributes, so the binary always contains every
// variant the compiler supports; which one actually runs is decided once at
// startup from the flags reported here.  On non-x86 targets the x86 fields
// are simply false and NEON availability is a compile-time fact
// (__ARM_NEON), mirrored into `neon` so callers have one struct to query.
#pragma once

#include <string>

namespace phmse::support {

/// Feature flags of the CPU this process is running on.
struct CpuFeatures {
  // x86-64 vector extensions (false on other architectures).
  bool avx2 = false;
  bool fma = false;
  bool avx512f = false;

  // AArch64 Advanced SIMD (a compile-time property of the target).
  bool neon = false;

  /// Human-readable flag list, e.g. "avx2 fma avx512f"; "(none)" when no
  /// SIMD extension is available.  Used by backend-selection errors.
  std::string summary() const;
};

/// The running CPU's features, detected once and cached (thread-safe).
const CpuFeatures& cpu_features();

}  // namespace phmse::support
