// Reproduces Table 5 / Figure 9: Helix (16 bp) on the (simulated) SGI
// Challenge — centralized memory, 16 faster processors.
//
// Expected shape: ~14x speedup at 16 processors; same power-of-2 dips as
// on DASH; absolute times ~3x lower than DASH at NP=1 (100 MHz R4400 vs
// 33 MHz R3000).
#include "bench_util.hpp"

int main() {
  phmse::bench::SpeedupSpec spec;
  spec.table_id = "Table 5 / Figure 9";
  spec.title = "Helix work time and distribution on Challenge";
  spec.machine = phmse::simarch::challenge16();
  spec.proc_counts = {1, 2, 4, 6, 8, 10, 12, 14, 16};
  spec.helix_problem = true;
  spec.paper_note =
      "Paper reference (Table 5): time 159.99s -> 11.59s, speedup 13.80 at "
      "NP=16, dips at\nnon-power-of-2 NP (e.g. 4.95 at NP=6).";
  return phmse::bench::run_speedup_table(spec);
}
