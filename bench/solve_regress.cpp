// Solver-level perf-regression harness for the engine facade.
//
// Times the two halves of the plan/execute split on the paper's 8-bp helix
// workload: Engine::compile (decompose + assign + schedule + workspace
// sizing) and the steady-state plan.solve() (all buffers warm; the serial
// path allocates nothing).  The rows land in the same
// phmse-kernel-bench-v1 JSON schema as the dense-kernel harness so
// scripts/bench_check.py can track both against the committed
// BENCH_kernels.json baseline.
//
//   ./build/bench/solve_regress              # writes BENCH_solver.json
//   ./build/bench/solve_regress out.json    # explicit output path
//
// Honours PHMSE_BENCH_SCALE (< 0.5 switches to a 2-bp smoke helix),
// PHMSE_BENCH_SEED and PHMSE_BENCH_OUT (default output path).
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "refine/refiner.hpp"
#include "support/env.hpp"
#include "support/stopwatch.hpp"

namespace phmse::bench {
namespace {

int run_all(const std::string& out_path) {
  print_header("solve_regress",
               "plan compile vs steady-state solve (engine facade)");

  const bool smoke = bench_scale() < 0.5;
  const Index length = smoke ? 2 : 8;
  const HelixProblem p = make_helix_problem(length);
  const Index n = 3 * p.model.num_atoms();
  const Index m = p.constraints.size();
  std::printf("problem: Helix %lld bp (%lld state dims, %lld constraints)\n",
              static_cast<long long>(length), static_cast<long long>(n),
              static_cast<long long>(m));

  std::vector<KernelBenchRecord> records;

  {
    KernelBenchRecord rec;
    rec.kernel = "plan_compile";
    rec.impl = "engine";
    rec.m = m;
    rec.n = n;
    rec.threads = 1;
    rec.seconds =
        time_best([&] { engine::Plan plan = make_helix_plan(p, 1); }, 3,
                  &rec.reps);
    std::printf("  %-18s %9.3f ms\n", "plan_compile", rec.seconds * 1e3);
    records.push_back(rec);
  }

  {
    engine::Plan plan = make_helix_plan(p, 1);
    plan.solve(p.initial);  // warm-up solve: every buffer allocates here

    // The same steady-state solve under the heaviest degradation policy
    // (regularized retry + chi-squared gating).  On clean data the only
    // extra work is validation, the whitened-chi^2 dot product and the
    // report bookkeeping, so plan_solve_policy / plan_solve_steady is the
    // robustness overhead ratio scripts/bench_check.py gates (< 2%).  The
    // two are timed INTERLEAVED, taking each one's minimum across rounds:
    // a co-tenant stealing the machine perturbs both the same way, so the
    // ratio of minima is stable even when the absolute times are not.
    core::HierSolveOptions popts;
    popts.policy = est::SolvePolicy::gate_outliers();
    engine::Plan policy_plan = make_helix_plan(p, 1, popts);
    policy_plan.solve(p.initial);  // warm-up

    const int rounds = smoke ? 96 : 64;
    double best_steady = 1e300;
    double best_policy_raw = 1e300;
    std::vector<double> ratios;
    ratios.reserve(static_cast<std::size_t>(rounds));
    const auto timed_solve = [&](engine::Plan& pl) {
      Stopwatch s;
      pl.solve(p.initial);
      return s.seconds();
    };
    for (int r = 0; r < rounds; ++r) {
      // Each round runs both orders (steady-policy-policy-steady) so slot
      // effects — clock ramps, cache state left by the previous solve —
      // cancel inside the round, keeping the per-round ratio unimodal.
      const double s1 = timed_solve(plan);
      const double p1 = timed_solve(policy_plan);
      const double p2 = timed_solve(policy_plan);
      const double s2 = timed_solve(plan);
      best_steady = std::min({best_steady, s1, s2});
      best_policy_raw = std::min({best_policy_raw, p1, p2});
      ratios.push_back((p1 + p2) / (s1 + s2));
    }
    // Two estimators of the true policy/steady ratio:
    //  - blocked median: split the run into four time blocks, take each
    //    block's median ratio, keep the smallest.  A co-tenant burst
    //    skews the blocks it overlaps; any quiet window in the run
    //    leaves one block's median clean;
    //  - ratio of per-kernel minima: each minimum approximates the
    //    kernel's unloaded speed (same convention as time_best).
    // Both converge to the same value on a quiet machine; under load
    // either can be pushed high by noise, so the smaller of the two is
    // the better estimate of the unloaded ratio — which is the quantity
    // the < 2% gate is about.  The policy row is stored as
    // best_steady * ratio so the JSON keeps the schema (absolute
    // seconds) while the gated quantity stays a same-round comparison.
    const int blocks = 4;
    const int block_len = rounds / blocks;
    double median_ratio = 1e300;
    for (int b = 0; b < blocks; ++b) {
      const auto begin = ratios.begin() + b * block_len;
      std::nth_element(begin, begin + block_len / 2, begin + block_len);
      median_ratio = std::min(median_ratio, begin[block_len / 2]);
    }
    const double min_ratio = best_policy_raw / best_steady;
    std::printf("  [estimators] block-median %+5.2f%%  min-ratio %+5.2f%%\n",
                100.0 * (median_ratio - 1.0), 100.0 * (min_ratio - 1.0));
    const double best_policy =
        best_steady * std::min(median_ratio, min_ratio);

    KernelBenchRecord rec;
    rec.kernel = "plan_solve_steady";
    rec.impl = "engine";
    rec.m = m;
    rec.n = n;
    rec.threads = 1;
    rec.reps = rounds;
    rec.seconds = best_steady;
    std::printf("  %-18s %9.3f ms\n", "plan_solve_steady",
                rec.seconds * 1e3);
    records.push_back(rec);

    KernelBenchRecord prec;
    prec.kernel = "plan_solve_policy";
    prec.impl = "engine";
    prec.m = m;
    prec.n = n;
    prec.threads = 1;
    prec.reps = rounds;
    prec.seconds = best_policy;
    std::printf("  %-18s %9.3f ms  (overhead %+5.2f%%)\n",
                "plan_solve_policy", prec.seconds * 1e3,
                100.0 * (prec.seconds / rec.seconds - 1.0));
    records.push_back(prec);

    // The same steady solve routed through a single_pass refine::Refiner
    // (DESIGN.md §14).  The controller's only additions are token arming
    // and two controller-side residual sweeps over the constraints, so
    // plan_solve_refine / plan_solve_steady is the refinement monitoring
    // overhead — gated < 2% by scripts/bench_check.py
    // --max-refine-overhead via the same interleaved two-estimator
    // methodology as the policy row above.
    refine::Refiner refiner(plan, refine::RefineOptions{});
    refiner.refine(p.initial);  // warm-up: trajectory capacity allocates
    double best_steady_rf = 1e300;
    double best_refine_raw = 1e300;
    std::vector<double> rf_ratios;
    rf_ratios.reserve(static_cast<std::size_t>(rounds));
    for (int r = 0; r < rounds; ++r) {
      const double s1 = timed_solve(plan);
      Stopwatch f1w;
      refiner.refine(p.initial);
      const double f1 = f1w.seconds();
      Stopwatch f2w;
      refiner.refine(p.initial);
      const double f2 = f2w.seconds();
      const double s2 = timed_solve(plan);
      best_steady_rf = std::min({best_steady_rf, s1, s2});
      best_refine_raw = std::min({best_refine_raw, f1, f2});
      rf_ratios.push_back((f1 + f2) / (s1 + s2));
    }
    double rf_median_ratio = 1e300;
    for (int b = 0; b < blocks; ++b) {
      const auto begin = rf_ratios.begin() + b * block_len;
      std::nth_element(begin, begin + block_len / 2, begin + block_len);
      rf_median_ratio = std::min(rf_median_ratio, begin[block_len / 2]);
    }
    const double rf_min_ratio = best_refine_raw / best_steady_rf;
    std::printf("  [estimators] block-median %+5.2f%%  min-ratio %+5.2f%%\n",
                100.0 * (rf_median_ratio - 1.0),
                100.0 * (rf_min_ratio - 1.0));
    KernelBenchRecord rrec;
    rrec.kernel = "plan_solve_refine";
    rrec.impl = "engine";
    rrec.m = m;
    rrec.n = n;
    rrec.threads = 1;
    rrec.reps = rounds;
    rrec.seconds = best_steady * std::min(rf_median_ratio, rf_min_ratio);
    std::printf("  %-18s %9.3f ms  (overhead %+5.2f%%)\n",
                "plan_solve_refine", rrec.seconds * 1e3,
                100.0 * (rrec.seconds / rec.seconds - 1.0));
    records.push_back(rrec);
  }

  {
    // Incremental single-constraint rebind (DESIGN.md §11).  Three paths
    // over the same nudge, interleaved per round so machine noise hits all
    // of them the same way; every timed region includes set_observations —
    // the diff marking is part of each path's cost:
    //  - full: set_observations + solve() re-runs the whole tree;
    //  - exact replay: solve_incremental re-executes the dirty leaf's root
    //    path and replays every sibling (bitwise-identical; reported
    //    informationally — the root path's constraint re-application caps
    //    it near 1.6x on this tree shape);
    //  - fast path: solve_lowrank shifts the checkpointed root mean by
    //    C.H^T.R^-1.dz from the archived Jacobian row — O(k n) per rebind,
    //    first-order accurate, exact fallback whenever it cannot answer.
    // The fast path is what a caller uses for repeated single-slot
    // rebinds, so it is the committed plan_solve_incremental row;
    // scripts/bench_check.py gates plan_solve_steady /
    // plan_solve_incremental >= 3x.
    engine::Plan full_plan = make_helix_plan(p, 1);
    engine::Plan inc_plan = make_helix_plan(p, 1);
    engine::Plan lr_plan = make_helix_plan(p, 1);

    std::vector<double> base;
    base.reserve(static_cast<std::size_t>(m));
    for (const cons::Constraint& c : p.constraints.all()) {
      base.push_back(c.observed);
    }
    std::vector<double> nudged = base;
    nudged[0] += 1e-3;

    full_plan.solve(p.initial);  // warm-up
    inc_plan.solve(p.initial);   // warm-up; forms the checkpoint
    lr_plan.solve(p.initial);    // warm-up; checkpoint + Jacobian archive

    const int rounds = smoke ? 96 : 64;
    double best_full = 1e300;
    double best_inc = 1e300;
    double best_lr = 1e300;
    long reused = 0;
    long recomputed = 0;
    bool all_low_rank = true;
    for (int r = 0; r < rounds; ++r) {
      // Alternate the two vectors so every rebind changes exactly one
      // slot bitwise (a repeat of the same vector would be a no-op).
      const std::vector<double>& values = (r % 2 == 0) ? nudged : base;
      Stopwatch sf;
      full_plan.set_observations(values);
      full_plan.solve(p.initial);
      best_full = std::min(best_full, sf.seconds());
      Stopwatch si;
      inc_plan.set_observations(values);
      const engine::Result ir = inc_plan.solve_incremental(p.initial);
      best_inc = std::min(best_inc, si.seconds());
      reused = ir.report.nodes_reused;
      recomputed = ir.report.nodes_recomputed;
      Stopwatch sl;
      lr_plan.set_observations(values);
      const engine::Result lr = lr_plan.solve_lowrank(p.initial);
      best_lr = std::min(best_lr, sl.seconds());
      all_low_rank = all_low_rank && lr.report.low_rank;
    }
    if (!all_low_rank) {
      std::printf("  WARNING: a solve_lowrank round fell back to the exact "
                  "path; the incremental row is not timing the shortcut\n");
    }

    std::printf(
        "  %-18s %9.3f ms  (exact replay: %.1fx over full %.3f ms, "
        "%ld nodes reused / %ld recomputed)\n",
        "plan_solve_exact", best_inc * 1e3, best_full / best_inc,
        best_full * 1e3, reused, recomputed);

    KernelBenchRecord rec;
    rec.kernel = "plan_solve_incremental";
    rec.impl = "engine";
    rec.m = m;
    rec.n = n;
    rec.threads = 1;
    rec.reps = rounds;
    rec.seconds = best_lr;
    std::printf(
        "  %-18s %9.3f ms  (low-rank fast path, %.1fx over full re-solve)\n",
        "plan_solve_incremental", best_lr * 1e3, best_full / best_lr);
    records.push_back(rec);
  }

  write_kernel_bench_json(out_path, records);
  std::printf("\nwrote %zu records to %s\n", records.size(),
              out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace phmse::bench

int main(int argc, char** argv) {
  const std::string out =
      argc > 1 ? argv[1]
               : phmse::env_string("PHMSE_BENCH_OUT", "BENCH_solver.json");
  return phmse::bench::run_all(out);
}
