// Solver-level perf-regression harness for the engine facade.
//
// Times the two halves of the plan/execute split on the paper's 8-bp helix
// workload: Engine::compile (decompose + assign + schedule + workspace
// sizing) and the steady-state plan.solve() (all buffers warm; the serial
// path allocates nothing).  The rows land in the same
// phmse-kernel-bench-v1 JSON schema as the dense-kernel harness so
// scripts/bench_check.py can track both against the committed
// BENCH_kernels.json baseline.
//
//   ./build/bench/solve_regress              # writes BENCH_solver.json
//   ./build/bench/solve_regress out.json    # explicit output path
//
// Honours PHMSE_BENCH_SCALE (< 0.5 switches to a 2-bp smoke helix),
// PHMSE_BENCH_SEED and PHMSE_BENCH_OUT (default output path).
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "support/env.hpp"

namespace phmse::bench {
namespace {

int run_all(const std::string& out_path) {
  print_header("solve_regress",
               "plan compile vs steady-state solve (engine facade)");

  const bool smoke = bench_scale() < 0.5;
  const Index length = smoke ? 2 : 8;
  const HelixProblem p = make_helix_problem(length);
  const Index n = 3 * p.model.num_atoms();
  const Index m = p.constraints.size();
  std::printf("problem: Helix %lld bp (%lld state dims, %lld constraints)\n",
              static_cast<long long>(length), static_cast<long long>(n),
              static_cast<long long>(m));

  std::vector<KernelBenchRecord> records;

  {
    KernelBenchRecord rec;
    rec.kernel = "plan_compile";
    rec.impl = "engine";
    rec.m = m;
    rec.n = n;
    rec.threads = 1;
    rec.seconds =
        time_best([&] { engine::Plan plan = make_helix_plan(p, 1); }, 3,
                  &rec.reps);
    std::printf("  %-18s %9.3f ms\n", "plan_compile", rec.seconds * 1e3);
    records.push_back(rec);
  }

  {
    engine::Plan plan = make_helix_plan(p, 1);
    plan.solve(p.initial);  // warm-up solve: every buffer allocates here
    KernelBenchRecord rec;
    rec.kernel = "plan_solve_steady";
    rec.impl = "engine";
    rec.m = m;
    rec.n = n;
    rec.threads = 1;
    rec.seconds = time_best([&] { plan.solve(p.initial); }, 3, &rec.reps);
    std::printf("  %-18s %9.3f ms\n", "plan_solve_steady",
                rec.seconds * 1e3);
    records.push_back(rec);
  }

  write_kernel_bench_json(out_path, records);
  std::printf("\nwrote %zu records to %s\n", records.size(),
              out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace phmse::bench

int main(int argc, char** argv) {
  const std::string out =
      argc > 1 ? argv[1]
               : phmse::env_string("PHMSE_BENCH_OUT", "BENCH_solver.json");
  return phmse::bench::run_all(out);
}
