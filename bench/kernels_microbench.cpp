// Google-benchmark microbenchmarks for the array-operation kernels that the
// paper's Tables 3-6 categorize: dense-sparse products (d-s), Cholesky
// factorization (chol), triangular solves (sys), the covariance update
// (m-v; see kernels.hpp), and vector operations (vec).
#include <benchmark/benchmark.h>

#include "linalg/blas.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/csr.hpp"
#include "linalg/kernels.hpp"
#include "parallel/exec.hpp"
#include "support/rng.hpp"

namespace phmse::linalg {
namespace {

Matrix random_matrix(Index rows, Index cols, Rng& rng) {
  Matrix m(rows, cols);
  for (Index i = 0; i < rows; ++i) {
    for (Index j = 0; j < cols; ++j) m(i, j) = rng.gaussian();
  }
  return m;
}

Matrix random_spd(Index n, Rng& rng) {
  const Matrix a = random_matrix(n, n, rng);
  Matrix s = matmul(a, transpose(a));
  for (Index i = 0; i < n; ++i) s(i, i) += static_cast<double>(n);
  return s;
}

Csr random_jacobian(Index m, Index n, Rng& rng) {
  CsrBuilder b(n);
  for (Index i = 0; i < m; ++i) {
    b.begin_row();
    // A distance constraint touches 6 state variables.
    for (int k = 0; k < 6; ++k) {
      b.add(rng.uniform_int(0, n - 1), rng.gaussian());
    }
  }
  return b.finish();
}

void BM_SparseDense(benchmark::State& state) {
  const Index m = 16;
  const Index n = state.range(0);
  Rng rng(1);
  const Csr h = random_jacobian(m, n, rng);
  const Matrix c = random_spd(n, rng);
  Matrix g;
  par::SerialContext ctx;
  for (auto _ : state) {
    sparse_dense(ctx, h, c, g);
    benchmark::DoNotOptimize(g.data());
  }
  state.SetItemsProcessed(state.iterations() * m);
}
BENCHMARK(BM_SparseDense)->Arg(129)->Arg(516)->Arg(2040);

void BM_CovarianceDowndate(benchmark::State& state) {
  const Index m = 16;
  const Index n = state.range(0);
  Rng rng(2);
  const Matrix w = random_matrix(m, n, rng);
  Matrix c = random_spd(n, rng);
  par::SerialContext ctx;
  for (auto _ : state) {
    covariance_downdate(ctx, w, w, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * m * n * n * 2);
}
BENCHMARK(BM_CovarianceDowndate)->Arg(129)->Arg(516)->Arg(2040);

void BM_Cholesky(benchmark::State& state) {
  const Index n = state.range(0);
  Rng rng(3);
  const Matrix s = random_spd(n, rng);
  par::SerialContext ctx;
  for (auto _ : state) {
    Matrix l = s;
    cholesky(ctx, l);
    benchmark::DoNotOptimize(l.data());
  }
}
BENCHMARK(BM_Cholesky)->Arg(16)->Arg(64)->Arg(256);

void BM_TrsmLower(benchmark::State& state) {
  const Index m = 16;
  const Index n = state.range(0);
  Rng rng(4);
  Matrix l = random_spd(m, rng);
  cholesky_serial(l);
  const Matrix b = random_matrix(m, n, rng);
  par::SerialContext ctx;
  for (auto _ : state) {
    Matrix x = b;
    trsm_lower(ctx, l, x);
    benchmark::DoNotOptimize(x.data());
  }
}
BENCHMARK(BM_TrsmLower)->Arg(129)->Arg(516)->Arg(2040);

void BM_GainTimesResidual(benchmark::State& state) {
  const Index m = 16;
  const Index n = state.range(0);
  Rng rng(5);
  const Matrix v = random_matrix(m, n, rng);
  Vector r(static_cast<std::size_t>(m), 1.0);
  Vector dx(static_cast<std::size_t>(n), 0.0);
  par::SerialContext ctx;
  for (auto _ : state) {
    gain_times_residual(ctx, v, r, dx);
    benchmark::DoNotOptimize(dx.data());
  }
}
BENCHMARK(BM_GainTimesResidual)->Arg(516)->Arg(2040);

void BM_VecAdd(benchmark::State& state) {
  const Index n = state.range(0);
  Vector x(static_cast<std::size_t>(n), 1.0);
  Vector y(static_cast<std::size_t>(n), 0.0);
  par::SerialContext ctx;
  for (auto _ : state) {
    vec_add_inplace(ctx, x, y);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_VecAdd)->Arg(516)->Arg(2040);

}  // namespace
}  // namespace phmse::linalg

BENCHMARK_MAIN();
