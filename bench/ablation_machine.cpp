// Ablation A5: sensitivity of the parallel behaviour to the machine's
// memory system — the quantitative side of the paper's locality analysis.
//
// The paper attributes the dense-sparse kernels' 55-75% efficiency on DASH
// to remote cache misses ("the proportion of which increases with more
// processors"), and the overall speedup knee to memory overheads.  This
// harness sweeps the remote-miss latency of the simulated DASH and reports
// how the 32-processor speedup and the d-s category's scaling respond;
// it also contrasts the distributed machine with an idealized uniform-
// memory variant.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "support/table.hpp"

namespace phmse::bench {
namespace {

struct Point {
  double t1;
  double t32;
  double ds1;
  double ds32;
};

Point run_machine(const HelixProblem& p, const simarch::MachineConfig& cfg) {
  core::HierSolveOptions opts;
  Point out{};
  for (int procs : {1, 32}) {
    core::Hierarchy h = prepare_helix_hierarchy(p, procs);
    simarch::SimMachine machine(cfg);
    const core::SimSolveResult res =
        core::solve_hierarchical_sim(h, p.initial, opts, machine);
    if (procs == 1) {
      out.t1 = res.vtime;
      out.ds1 = res.breakdown.time(perf::Category::kDenseSparse);
    } else {
      out.t32 = res.vtime;
      out.ds32 = res.breakdown.time(perf::Category::kDenseSparse);
    }
  }
  return out;
}

int run() {
  print_header("Ablation A5",
               "Memory-system sensitivity of the parallel speedup");

  const HelixProblem p = make_helix_problem(bench_scale() < 0.5 ? 8 : 16);

  Table t({"remote/local miss ratio", "speedup@32", "d-s speedup@32"});
  const simarch::MachineConfig base = simarch::dash32();
  for (double ratio : {1.0, 2.0, 3.5, 6.0, 10.0}) {
    simarch::MachineConfig cfg = base;
    cfg.t_miss_remote = cfg.t_miss_local * ratio;
    const Point pt = run_machine(p, cfg);
    t.add_row({format_fixed(ratio, 1), format_fixed(pt.t1 / pt.t32, 2),
               format_fixed(pt.ds1 / pt.ds32, 2)});
  }
  std::printf("%s", t.str().c_str());
  std::printf("(simulated DASH with the remote-miss latency scaled; "
              "ratio 1.0 = uniform memory)\n\n");

  // Second sweep: cache capacity.  The kernel cost annotations assume
  // ideally blocked tiles stay resident; with a finite modeled cache the
  // big root-node updates overflow and the m-v category turns partly
  // memory-bound.
  Table t2({"cache per proc (KB)", "time@1", "time@32", "speedup@32"});
  for (double kb : {0.0, 64.0, 256.0, 1024.0}) {
    simarch::MachineConfig cfg = base;
    cfg.cache_bytes_per_proc = kb * 1024.0;
    const Point pt = run_machine(p, cfg);
    t2.add_row({kb == 0.0 ? std::string("unlimited")
                          : format_fixed(kb, 0),
                format_fixed(pt.t1, 2), format_fixed(pt.t32, 2),
                format_fixed(pt.t1 / pt.t32, 2)});
  }
  std::printf("%s", t2.str().c_str());
  std::printf("(smaller caches make the dominant covariance update "
              "partly memory-bound, slowing NP=1\nand shifting the "
              "speedup curve — the paper's \"bend in the speedup curve "
              "correlates\nstrongly with the increase in the overhead of "
              "memory operations\")\n");
  std::printf("Expected shape: overall speedup degrades mildly (the "
              "dominant m-v kernel is compute-bound\nafter tiling) while "
              "the memory-bound d-s category's scaling collapses as remote "
              "misses\nbecome expensive — the paper's explanation of its "
              "55-75%% d-s efficiency.\n");
  return 0;
}

}  // namespace
}  // namespace phmse::bench

int main() { return phmse::bench::run(); }
