// Reproduces Table 6 / Figure 10: ribo30S on the (simulated) SGI Challenge.
//
// Expected shape: ~14x speedup at 16 processors, smooth curve (high
// branching factor), absolute times ~3x lower than the DASH rows.
#include "bench_util.hpp"

int main() {
  phmse::bench::SpeedupSpec spec;
  spec.table_id = "Table 6 / Figure 10";
  spec.title = "ribo30S work time and distribution on Challenge";
  spec.machine = phmse::simarch::challenge16();
  spec.proc_counts = {1, 2, 4, 6, 8, 10, 12, 14, 16};
  spec.helix_problem = false;
  spec.paper_note =
      "Paper reference (Table 6): time 272.53s -> 18.86s, speedup 14.45 at "
      "NP=16, smooth curve.";
  return phmse::bench::run_speedup_table(spec);
}
