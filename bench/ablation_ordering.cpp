// Ablation A4 (paper Section 5, last paragraph): the impact of constraint
// ordering — and of hierarchy — on convergence.
//
// "The difference between the hierarchical organization and the flat
// computation is in the order of constraint application.  Hierarchical
// computation processes constraints in order of locality of interaction...
// We believe hierarchical organization of constraints should further speed
// convergence in addition to reducing the computational complexity within
// an iteration."
//
// This harness measures cycles-to-convergence of the flat solver under
// three orderings (generation order, random shuffle, locality order = the
// hierarchical application order) and of the hierarchical solver itself,
// plus the final data fit.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "estimation/solver.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace phmse::bench {
namespace {

struct Outcome {
  int cycles = 0;
  bool converged = false;
  double residual = 0.0;
  double delta = 0.0;
};

Outcome run_flat(const HelixProblem& p, const cons::ConstraintSet& ordered,
                 const linalg::Vector& x0) {
  est::NodeState st;
  st.atom_begin = 0;
  st.atom_end = p.model.num_atoms();
  st.x = x0;
  st.reset_covariance(0.5);
  par::SerialContext ctx;
  est::SolveOptions opts;
  opts.prior_sigma = 0.5;
  opts.max_cycles = 60;
  opts.tolerance = 0.03;
  const est::SolveResult r = est::solve_flat(ctx, st, ordered, opts);
  return {r.cycles, r.converged,
          cons::rms_residual(ordered, p.model.topology, st.x),
          r.last_cycle_delta};
}

// The hierarchical application order: leaf constraints first, in post-order.
cons::ConstraintSet locality_order(const HelixProblem& p) {
  core::Hierarchy h = prepare_helix_hierarchy(p, 1);
  cons::ConstraintSet ordered;
  h.for_each_post_order([&](core::HierNode& node) {
    ordered.append(node.constraints);
  });
  return ordered;
}

int run() {
  print_header("Ablation A4 (Section 5)",
               "Constraint ordering and convergence");

  const Index length = bench_scale() < 0.5 ? 2 : 4;
  // Anchored problem so convergence is well defined.
  HelixProblem p{mol::build_helix(length), {}, {}};
  cons::HelixNoise noise;
  noise.anchor_first_pair = true;
  p.constraints = cons::generate_helix_constraints(p.model, noise);
  Rng rng(17);
  p.initial = p.model.topology.true_state();
  for (auto& v : p.initial) v += rng.gaussian(0.0, 0.4);

  Table t({"ordering", "cycles", "converged", "final residual",
           "last delta"});

  // (a) Generation order (per-pair categories, then junctions).
  {
    const Outcome o = run_flat(p, p.constraints, p.initial);
    t.add_row({"flat: generation order", std::to_string(o.cycles),
               o.converged ? "yes" : "no", format_fixed(o.residual, 4),
               format_fixed(o.delta, 4)});
  }

  // (b) Random shuffle — no domain knowledge at all.
  {
    cons::ConstraintSet shuffled;
    std::vector<cons::Constraint> v = p.constraints.all();
    Rng srng(123);
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[static_cast<std::size_t>(srng.uniform_int(
                              0, static_cast<std::int64_t>(i) - 1))]);
    }
    for (const auto& c : v) shuffled.add(c);
    const Outcome o = run_flat(p, shuffled, p.initial);
    t.add_row({"flat: random order", std::to_string(o.cycles),
               o.converged ? "yes" : "no", format_fixed(o.residual, 4),
               format_fixed(o.delta, 4)});
  }

  // (c) Locality order: the exact order the hierarchy would apply, but on
  //     the flat (full-size) state.
  {
    const Outcome o = run_flat(p, locality_order(p), p.initial);
    t.add_row({"flat: locality order", std::to_string(o.cycles),
               o.converged ? "yes" : "no", format_fixed(o.residual, 4),
               format_fixed(o.delta, 4)});
  }

  // (d) Hierarchical computation proper.
  {
    core::Hierarchy h = prepare_helix_hierarchy(p, 1);
    par::SerialContext ctx;
    core::HierSolveOptions opts;
    opts.prior_sigma = 0.5;
    opts.max_cycles = 60;
    opts.tolerance = 0.03;
    const core::HierSolveResult r =
        core::solve_hierarchical(ctx, h, p.initial, opts);
    t.add_row({"hierarchical", std::to_string(r.cycles),
               r.converged ? "yes" : "no",
               format_fixed(cons::rms_residual(p.constraints,
                                               p.model.topology, r.state.x),
                            4),
               format_fixed(r.last_cycle_delta, 4)});
  }

  std::printf("%s", t.str().c_str());
  std::printf("(helix %lld bp with frame anchors; cycles capped at 60, "
              "tolerance 0.03 A RMS state change)\n",
              static_cast<long long>(length));
  std::printf("Paper reference: [1] found that ordering constraints by "
              "domain knowledge speeds convergence;\nthe paper conjectures "
              "hierarchical (locality) ordering helps further.\n");
  return 0;
}

}  // namespace
}  // namespace phmse::bench

int main() { return phmse::bench::run(); }
