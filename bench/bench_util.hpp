// Shared helpers for the benchmark harnesses.
//
// Every harness honours two environment knobs:
//   PHMSE_BENCH_SCALE  — 1.0 (default) runs the full paper configuration;
//                        smaller values trim the largest problem sizes for
//                        quick smoke runs.
//   PHMSE_BENCH_SEED   — RNG seed for initial-estimate perturbations.
#pragma once

#include <string>

#include "constraints/helix_gen.hpp"
#include "constraints/ribo_gen.hpp"
#include "core/assign.hpp"
#include "core/hier_solver.hpp"
#include "core/study.hpp"
#include "core/schedule.hpp"
#include "core/work_model.hpp"
#include "molecule/ribo30s.hpp"
#include "molecule/rna_helix.hpp"

namespace phmse::bench {

/// Benchmark scale in (0, 1]; from PHMSE_BENCH_SCALE.
double bench_scale();

/// A ready-to-solve problem: model + constraints + hierarchy + initial x.
struct HelixProblem {
  mol::HelixModel model;
  cons::ConstraintSet constraints;
  linalg::Vector initial;
};

struct RiboProblem {
  mol::Ribo30sModel model;
  cons::ConstraintSet constraints;
  linalg::Vector initial;
};

/// Builds the paper's Helix problem of `length` base pairs (constraints
/// exactly as in Table 1 — no anchors) with a perturbed initial estimate.
HelixProblem make_helix_problem(Index length);

/// Builds the paper's ribo30S problem (~900 pseudo-atoms, ~6500
/// constraints).
RiboProblem make_ribo_problem();

/// Builds, populates and schedules the Fig.-2 hierarchy for a helix
/// problem.
core::Hierarchy prepare_helix_hierarchy(const HelixProblem& p, int procs,
                                        Index batch_size = 16);

/// Builds, populates and schedules the Fig.-4 hierarchy for the ribosome.
core::Hierarchy prepare_ribo_hierarchy(const RiboProblem& p, int procs,
                                       Index batch_size = 16);

/// Prints a standard header line for a harness.
void print_header(const std::string& table_id, const std::string& title);

/// Configuration for one of the paper's parallel speedup studies
/// (Tables 3-6 / Figures 7-10): a problem on a simulated machine.
struct SpeedupSpec {
  std::string table_id;
  std::string title;
  simarch::MachineConfig machine;
  std::vector<int> proc_counts;
  /// true = Helix 16 bp, false = ribo30S.
  bool helix_problem = true;
  /// Reference rows from the paper for the side-by-side note.
  std::string paper_note;
};

/// Runs the study: for every processor count, executes one cycle of the
/// hierarchical solve on the simulated machine and prints work time,
/// speedup and the per-category breakdown in the paper's table layout.
int run_speedup_table(const SpeedupSpec& spec);

}  // namespace phmse::bench
