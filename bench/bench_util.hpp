// Shared helpers for the benchmark harnesses.
//
// Every harness honours two environment knobs:
//   PHMSE_BENCH_SCALE  — 1.0 (default) runs the full paper configuration;
//                        smaller values trim the largest problem sizes for
//                        quick smoke runs.
//   PHMSE_BENCH_SEED   — RNG seed for initial-estimate perturbations.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "constraints/helix_gen.hpp"
#include "constraints/ribo_gen.hpp"
#include "core/assign.hpp"
#include "core/hier_solver.hpp"
#include "core/schedule.hpp"
#include "core/work_model.hpp"
#include "engine/engine.hpp"
#include "engine/study.hpp"
#include "molecule/ribo30s.hpp"
#include "molecule/rna_helix.hpp"

namespace phmse::bench {

/// Benchmark scale in (0, 1]; from PHMSE_BENCH_SCALE.
double bench_scale();

/// A ready-to-solve problem: model + constraints + hierarchy + initial x.
struct HelixProblem {
  mol::HelixModel model;
  cons::ConstraintSet constraints;
  linalg::Vector initial;
};

struct RiboProblem {
  mol::Ribo30sModel model;
  cons::ConstraintSet constraints;
  linalg::Vector initial;
};

/// Builds the paper's Helix problem of `length` base pairs (constraints
/// exactly as in Table 1 — no anchors) with a perturbed initial estimate.
HelixProblem make_helix_problem(Index length);

/// Builds the paper's ribo30S problem (~900 pseudo-atoms, ~6500
/// constraints).
RiboProblem make_ribo_problem();

/// Builds, populates and schedules the Fig.-2 hierarchy for a helix
/// problem.
core::Hierarchy prepare_helix_hierarchy(const HelixProblem& p, int procs,
                                        Index batch_size = 16);

/// Builds, populates and schedules the Fig.-4 hierarchy for the ribosome.
core::Hierarchy prepare_ribo_hierarchy(const RiboProblem& p, int procs,
                                       Index batch_size = 16);

/// Compiles the helix problem into an engine plan (Fig.-2 decomposition).
engine::Plan make_helix_plan(const HelixProblem& p, int procs,
                             const core::HierSolveOptions& solve = {});

/// Compiles the ribosome problem into an engine plan (Fig.-4
/// decomposition).
engine::Plan make_ribo_plan(const RiboProblem& p, int procs,
                            const core::HierSolveOptions& solve = {});

/// Prints a standard header line for a harness.
void print_header(const std::string& table_id, const std::string& title);

/// Configuration for one of the paper's parallel speedup studies
/// (Tables 3-6 / Figures 7-10): a problem on a simulated machine.
struct SpeedupSpec {
  std::string table_id;
  std::string title;
  simarch::MachineConfig machine;
  std::vector<int> proc_counts;
  /// true = Helix 16 bp, false = ribo30S.
  bool helix_problem = true;
  /// Reference rows from the paper for the side-by-side note.
  std::string paper_note;
};

/// Runs the study: for every processor count, executes one cycle of the
/// hierarchical solve on the simulated machine and prints work time,
/// speedup and the per-category breakdown in the paper's table layout.
int run_speedup_table(const SpeedupSpec& spec);

// ---------------------------------------------------------------------------
// Machine-readable perf-regression records (bench/kernels_regress.cpp).
//
// The JSON document ("phmse-kernel-bench-v1") is consumed by
// scripts/bench_check.py, which compares a fresh run against the committed
// BENCH_kernels.json baseline with a tolerance band.

/// One timed kernel configuration.
struct KernelBenchRecord {
  std::string kernel;  // "covariance_downdate", "gram", "trsm_lower", ...
  std::string impl;    // "blocked" (production) or "ref" (scalar oracle)
  Index m = 0;         // batch rows (L size for trsm, 0 for cholesky)
  Index n = 0;         // state dimension / RHS width / factor size
  int threads = 1;     // ExecContext width the kernel ran on
  int reps = 0;        // timed repetitions (best rep reported)
  double seconds = 0.0;  // best (minimum) wall time of one repetition
  double flops = 0.0;    // useful floating-point work of one repetition
  double bytes = 0.0;    // compulsory memory traffic of one repetition

  double gflops() const {
    return seconds > 0.0 ? flops / seconds * 1e-9 : 0.0;
  }
  double gbytes_per_sec() const {
    return seconds > 0.0 ? bytes / seconds * 1e-9 : 0.0;
  }
};

/// Times `fn` adaptively (at least `min_reps` repetitions, more for fast
/// kernels until ~100 ms total) and returns the best (minimum) single-rep
/// seconds with the rep count in `*reps_out`.  The minimum — not the
/// median — is reported so that background load on a shared machine does
/// not masquerade as a kernel regression.
double time_best(const std::function<void()>& fn, int min_reps,
                 int* reps_out);

/// Writes `records` to `path` as a phmse-kernel-bench-v1 JSON document.
/// Throws phmse::Error if the file cannot be written.
void write_kernel_bench_json(const std::string& path,
                             const std::vector<KernelBenchRecord>& records);

}  // namespace phmse::bench
