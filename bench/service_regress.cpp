// Throughput regression for the multi-tenant solve service (DESIGN.md §10).
//
// The workload is the paper's helix problem served through phmse::Server:
// T tenants each submit N requests that share one structural fingerprint
// but carry fresh observation vectors, closed-loop (a tenant submits its
// next request only after consuming the previous future).  Two modes run
// back to back:
//
//   cold     — plan_cache_capacity = 0: every request recompiles its plan,
//              the per-request cost a service pays without the cache;
//   warm     — a sized cache: after the first misses every request leases a
//              pre-compiled instance and pays only the solve;
//   deadline — the warm workload with every request deadline-bound (a
//              generous 30s budget that never fires): the steady-state cost
//              of arming the cancel token and polling it at every batch and
//              node boundary (DESIGN.md §13).  warm/deadline throughput is
//              the polling overhead, gated by --max-deadline-overhead
//              (default 2%).
//
// The compile options mirror a production deployment (calibrate_work_model
// on: a service compiling per request would calibrate Eq. 1 per request),
// so warm/cold contrasts the full compile pipeline against a cache hit.
//
// Output: a human table plus a machine-readable phmse-service-bench-v1
// JSON document (solves/sec, p50/p95/p99 end-to-end latency, and
// p50/p95/p99 queue time per mode), compared against the committed
// BENCH_service.json by scripts/bench_check.py, which also gates the
// warm/cold speedup (--min-warm-speedup, default 5x).
#include <algorithm>
#include <cstdio>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "service/server.hpp"
#include "support/check.hpp"
#include "support/env.hpp"
#include "support/rng.hpp"
#include "support/stopwatch.hpp"

namespace phmse::bench {
namespace {

struct ServiceBenchRecord {
  std::string workload;  // "helix/4", ...
  std::string mode;      // "cold", "warm" or "deadline"
  int tenants = 0;
  int requests = 0;  // total across tenants
  int workers = 0;
  double solves_per_sec = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  // Queue-time percentiles (Response::queue_seconds: submit to solve
  // start) — the share of the end-to-end latency spent waiting for a
  // worker rather than solving.
  double queue_p50_ms = 0.0;
  double queue_p95_ms = 0.0;
  double queue_p99_ms = 0.0;
  unsigned long long cache_hits = 0;
  unsigned long long cache_misses = 0;
};

void write_service_bench_json(const std::string& path,
                              const std::vector<ServiceBenchRecord>& records) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  PHMSE_CHECK(f != nullptr, "write_service_bench_json: cannot open " + path);
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"schema\": \"phmse-service-bench-v1\",\n");
  std::fprintf(f, "  \"bench_scale\": %.4g,\n", bench_scale());
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < records.size(); ++i) {
    const ServiceBenchRecord& r = records[i];
    std::fprintf(
        f,
        "    {\"workload\": \"%s\", \"mode\": \"%s\", \"tenants\": %d, "
        "\"requests\": %d, \"workers\": %d, \"solves_per_sec\": %.4f, "
        "\"p50_ms\": %.4f, \"p95_ms\": %.4f, \"p99_ms\": %.4f, "
        "\"queue_p50_ms\": %.4f, \"queue_p95_ms\": %.4f, "
        "\"queue_p99_ms\": %.4f, "
        "\"cache_hits\": %llu, \"cache_misses\": %llu}%s\n",
        r.workload.c_str(), r.mode.c_str(), r.tenants, r.requests, r.workers,
        r.solves_per_sec, r.p50_ms, r.p95_ms, r.p99_ms, r.queue_p50_ms,
        r.queue_p95_ms, r.queue_p99_ms, r.cache_hits, r.cache_misses,
        i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n");
  std::fprintf(f, "}\n");
  const bool ok = std::fclose(f) == 0;
  PHMSE_CHECK(ok, "write_service_bench_json: write failed for " + path);
}

double percentile_ms(std::vector<double> sorted_seconds, double q) {
  PHMSE_CHECK(!sorted_seconds.empty(), "percentile of an empty sample");
  const double rank = q * static_cast<double>(sorted_seconds.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted_seconds.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return 1e3 * (sorted_seconds[lo] * (1.0 - frac) + sorted_seconds[hi] * frac);
}

engine::CompileOptions service_compile_options() {
  engine::CompileOptions o;
  o.solve.max_cycles = 1;
  o.solve.prior_sigma = 0.5;
  // A per-request deployment calibrates the Eq.-1 work model per compile;
  // a cached plan carries its calibration with it.
  o.calibrate_work_model = true;
  return o;
}

service::Request make_request(const HelixProblem& p, Index length,
                              std::uint64_t seed) {
  service::Request r;
  r.problem = engine::Problem::custom(
      p.model.topology.size(), p.constraints,
      [model = p.model] { return core::build_helix_hierarchy(model); },
      "helix/" + std::to_string(length));
  r.compile = service_compile_options();
  Rng rng(seed);
  r.observations.reserve(static_cast<std::size_t>(p.constraints.size()));
  for (const cons::Constraint& c : p.constraints.all()) {
    r.observations.push_back(c.observed + rng.gaussian(0.0, 0.01));
  }
  r.initial = p.initial;
  return r;
}

ServiceBenchRecord run_mode(const HelixProblem& p, Index length,
                            const std::string& mode, int tenants,
                            int per_tenant, int workers) {
  // "deadline" is the warm workload with a generous never-firing budget on
  // every request: it isolates the cost of the armed cancel token.
  const bool cached = mode == "warm" || mode == "deadline";
  const double deadline_seconds = mode == "deadline" ? 30.0 : 0.0;

  service::ServerOptions opts;
  opts.workers = workers;
  opts.plan_cache_capacity =
      cached ? static_cast<std::size_t>(workers + tenants) : 0;
  opts.max_pending = 4096;
  opts.max_pending_per_tenant = 4096;
  service::Server server(opts);

  if (cached) {
    // Populate the cache before timing: one request per worker so the
    // timed phase leases pre-compiled instances from the first submit.
    std::vector<std::future<service::Response>> warmup;
    for (int w = 0; w < workers; ++w) {
      warmup.push_back(server.submit("warmup-" + std::to_string(w),
                                     make_request(p, length, 1)));
    }
    for (auto& fut : warmup) fut.get();
  }

  std::vector<std::vector<double>> latencies(
      static_cast<std::size_t>(tenants));
  std::vector<std::vector<double>> queue_times(
      static_cast<std::size_t>(tenants));
  Stopwatch wall;
  {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(tenants));
    for (int t = 0; t < tenants; ++t) {
      threads.emplace_back([&, t] {
        const std::string tenant = "tenant-" + std::to_string(t);
        auto& lane = latencies[static_cast<std::size_t>(t)];
        auto& queue_lane = queue_times[static_cast<std::size_t>(t)];
        lane.reserve(static_cast<std::size_t>(per_tenant));
        queue_lane.reserve(static_cast<std::size_t>(per_tenant));
        for (int i = 0; i < per_tenant; ++i) {
          const std::uint64_t seed =
              static_cast<std::uint64_t>(t * per_tenant + i + 1);
          service::Request req = make_request(p, length, seed);
          req.deadline_seconds = deadline_seconds;
          Stopwatch sw;
          const service::Response resp =
              server.submit(tenant, std::move(req)).get();
          lane.push_back(sw.seconds());
          queue_lane.push_back(resp.queue_seconds);
        }
      });
    }
    for (auto& th : threads) th.join();
  }
  const double elapsed = wall.seconds();
  server.drain();
  const service::ServerStats stats = server.stats();
  PHMSE_CHECK(stats.failed == 0, "service bench: a solve failed");

  std::vector<double> all;
  std::vector<double> all_queue;
  for (const auto& lane : latencies) {
    all.insert(all.end(), lane.begin(), lane.end());
  }
  for (const auto& lane : queue_times) {
    all_queue.insert(all_queue.end(), lane.begin(), lane.end());
  }
  std::sort(all.begin(), all.end());
  std::sort(all_queue.begin(), all_queue.end());

  ServiceBenchRecord r;
  r.workload = "helix/" + std::to_string(length);
  r.mode = mode;
  r.tenants = tenants;
  r.requests = tenants * per_tenant;
  r.workers = workers;
  r.solves_per_sec =
      elapsed > 0.0 ? static_cast<double>(r.requests) / elapsed : 0.0;
  r.p50_ms = percentile_ms(all, 0.50);
  r.p95_ms = percentile_ms(all, 0.95);
  r.p99_ms = percentile_ms(all, 0.99);
  r.queue_p50_ms = percentile_ms(all_queue, 0.50);
  r.queue_p95_ms = percentile_ms(all_queue, 0.95);
  r.queue_p99_ms = percentile_ms(all_queue, 0.99);
  r.cache_hits = stats.cache.hits;
  r.cache_misses = stats.cache.misses;
  return r;
}

}  // namespace

int run(const std::string& out_path) {
  print_header("service", "multi-tenant solve service throughput");

  const Index length = 2;
  const int tenants = 4;
  const int workers = 4;
  const int per_tenant =
      std::max(4, static_cast<int>(32 * bench_scale() + 0.5));
  const HelixProblem p = make_helix_problem(length);

  std::printf("workload: Helix %lld bp (%lld constraints), %d tenants x %d "
              "requests, %d workers, closed loop\n",
              static_cast<long long>(length),
              static_cast<long long>(p.constraints.size()), tenants,
              per_tenant, workers);
  std::printf("compile: calibrated work model, 1 cycle, batch 16\n\n");

  std::vector<ServiceBenchRecord> records;
  for (const std::string mode : {"cold", "warm", "deadline"}) {
    records.push_back(run_mode(p, length, mode, tenants, per_tenant, workers));
  }

  std::printf("%-10s %-8s %12s %10s %10s %10s %10s %7s %7s\n", "workload",
              "mode", "solves/sec", "p50 ms", "p95 ms", "p99 ms", "q p95 ms",
              "hits", "misses");
  for (const ServiceBenchRecord& r : records) {
    std::printf("%-10s %-8s %12.2f %10.3f %10.3f %10.3f %10.3f %7llu %7llu\n",
                r.workload.c_str(), r.mode.c_str(), r.solves_per_sec,
                r.p50_ms, r.p95_ms, r.p99_ms, r.queue_p95_ms, r.cache_hits,
                r.cache_misses);
  }
  const double speedup = records[0].solves_per_sec > 0.0
                             ? records[1].solves_per_sec /
                                   records[0].solves_per_sec
                             : 0.0;
  std::printf("\nwarm/cold throughput: %.2fx (acceptance floor: 5x)\n",
              speedup);
  const double overhead = records[2].solves_per_sec > 0.0
                              ? records[1].solves_per_sec /
                                        records[2].solves_per_sec -
                                    1.0
                              : 0.0;
  std::printf("deadline-arming overhead vs warm: %.2f%% (gate: 2%%)\n",
              100.0 * overhead);

  write_service_bench_json(out_path, records);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace phmse::bench

int main(int argc, char** argv) {
  const std::string out =
      argc > 1 ? argv[1]
               : phmse::env_string("PHMSE_BENCH_OUT", "BENCH_service.json");
  return phmse::bench::run(out);
}
