// Reproduces Table 2 / Figure 6: average execution time per scalar
// constraint as a function of node size (43..680 atoms — prefix helices of
// the 16-bp problem) and constraint batch dimension (1..512).
//
// The paper's shape: per-constraint time is U-shaped in the batch dimension
// (tiny batches degenerate to cache-unfriendly vector operations; large
// batches pay the O(m^2) Cholesky growth) with the minimum at a moderate
// batch size (16 on the 1996 machines), and grows quadratically with node
// size.  The absolute optimum can shift on modern cache hierarchies; the
// measured minimum per node size is flagged with '*'.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "estimation/update.hpp"
#include "support/env.hpp"
#include "support/stopwatch.hpp"
#include "support/table.hpp"

namespace phmse::bench {
namespace {

// Measures seconds per scalar constraint for one node: applies a stride
// sample of `budget` constraints (spread over the whole molecule, like the
// paper's per-node measurements) in batches of `m`, sweeping repeatedly
// until at least `min_seconds` have been timed.
double measure(const HelixProblem& p, Index m, Index budget,
               double min_seconds = 0.04) {
  est::NodeState state;
  state.atom_begin = 0;
  state.atom_end = p.model.num_atoms();
  state.x = p.initial;

  const Index total = p.constraints.size();
  const Index count = std::min(budget, total);
  const Index stride = std::max<Index>(1, total / count);
  std::vector<cons::Constraint> sample;
  sample.reserve(static_cast<std::size_t>(count));
  for (Index i = 0; i < count; ++i) {
    sample.push_back(p.constraints[(i * stride) % total]);
  }

  par::SerialContext ctx;
  est::BatchUpdater updater;

  Stopwatch sw;
  Index processed = 0;
  do {
    state.reset_covariance(1.0);
    for (Index start = 0; start < count; start += m) {
      const Index len = std::min(m, count - start);
      updater.apply(ctx, state,
                    std::span<const cons::Constraint>(
                        sample.data() + start,
                        static_cast<std::size_t>(len)));
    }
    processed += count;
  } while (sw.seconds() < min_seconds);
  return sw.seconds() / static_cast<double>(processed);
}

int run() {
  print_header("Table 2 / Figure 6",
               "Per-scalar-constraint time vs node size and batch dimension");

  std::vector<Index> lengths{1, 2, 4, 8, 16};  // 43..680 atoms
  std::vector<Index> batches{1, 2, 4, 8, 16, 32, 64, 128, 256, 512};
  Index budget = env_long("PHMSE_BENCH_T2_BUDGET", 512);
  if (bench_scale() < 0.5) {
    lengths = {1, 2, 4};
    budget = 256;
  }

  std::vector<HelixProblem> problems;
  std::vector<std::string> header{"Batch Dim \\ Atoms"};
  for (Index len : lengths) {
    problems.push_back(make_helix_problem(len));
    header.push_back(std::to_string(problems.back().model.num_atoms()));
  }

  // Track the measured minimum per node size.
  std::vector<double> best(problems.size(), 1e300);
  std::vector<Index> best_m(problems.size(), 0);
  std::vector<std::vector<double>> grid;
  for (Index m : batches) {
    std::vector<double> row;
    for (std::size_t i = 0; i < problems.size(); ++i) {
      const double t = measure(problems[i], m, budget);
      row.push_back(t);
      if (t < best[i]) {
        best[i] = t;
        best_m[i] = m;
      }
    }
    grid.push_back(std::move(row));
  }

  Table t(header);
  for (std::size_t r = 0; r < batches.size(); ++r) {
    std::vector<std::string> cells{std::to_string(batches[r])};
    for (std::size_t i = 0; i < problems.size(); ++i) {
      std::string cell = format_fixed(grid[r][i] * 1e6, 2);  // microseconds
      if (batches[r] == best_m[i]) cell += "*";
      cells.push_back(std::move(cell));
    }
    t.add_row(std::move(cells));
  }
  std::printf("%s(entries in microseconds per scalar constraint; '*' marks "
              "the per-column minimum)\n\n",
              t.str().c_str());

  std::printf("Measured optimum batch dimension per node size:");
  for (std::size_t i = 0; i < problems.size(); ++i) {
    std::printf(" %lld", static_cast<long long>(best_m[i]));
  }
  std::printf("\nPaper reference (Table 2): minimum at batch 16 for all "
              "node sizes on 33 MHz R3000;\nper-constraint time grows "
              "quadratically with node size.\n");

  // Quadratic-growth check across node sizes at the optimum batch.
  if (problems.size() >= 3) {
    const double small = best[0];
    const double large = best[problems.size() - 1];
    const double n_ratio =
        static_cast<double>(problems.back().model.num_atoms()) /
        static_cast<double>(problems.front().model.num_atoms());
    std::printf("Growth check: per-constraint time ratio %.1fx over a "
                "%.0fx node-size range (quadratic would be %.0fx).\n",
                large / small, n_ratio, n_ratio * n_ratio);
  }
  return 0;
}

}  // namespace
}  // namespace phmse::bench

int main() { return phmse::bench::run(); }
