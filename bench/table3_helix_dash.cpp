// Reproduces Table 3 / Figure 7: Helix (16 bp) work time, speedup and
// per-category time distribution on the (simulated) Stanford DASH.
//
// Expected shape: good overall speedup (~24x at 32 processors in the
// paper), with dips at non-power-of-2 processor counts because the binary
// helix tree cannot split an odd team evenly; m-v/sys/m-m scale well, chol
// and vec poorly, d-s at 55-75% efficiency from remote misses.
#include "bench_util.hpp"

int main() {
  phmse::bench::SpeedupSpec spec;
  spec.table_id = "Table 3 / Figure 7";
  spec.title = "Helix work time and distribution on DASH";
  spec.machine = phmse::simarch::dash32();
  spec.proc_counts = {1, 2, 4, 6, 8, 10, 12, 14, 16, 20, 24, 28, 32};
  spec.helix_problem = true;
  spec.paper_note =
      "Paper reference (Table 3): time 483.22s -> 20.00s, speedup 24.16 at "
      "NP=32,\nwith dips at non-power-of-2 NP (e.g. 5.20 at NP=6); "
      "m-v dominates (384.97s at NP=1).";
  return phmse::bench::run_speedup_table(spec);
}
