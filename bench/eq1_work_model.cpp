// Reproduces Equation 1: the constrained least-squares work-estimation
// polynomial fitted to the Table-2 measurements.
//
// As in the paper, samples with very small batch dimensions are excluded
// (their cache behaviour is not polynomial), the fit is constrained so the
// model is a growth function with no negative predictions near the origin,
// and the result is the per-scalar-constraint time model used by the static
// processor-assignment heuristic.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/work_model.hpp"
#include "estimation/update.hpp"
#include "support/env.hpp"
#include "support/stopwatch.hpp"

namespace phmse::bench {
namespace {

// Stride-sampled, repeat-until-stable per-constraint timing (same scheme
// as bench/table2_batch_sweep.cpp).
double measure(const HelixProblem& p, Index m, Index budget,
               double min_seconds = 0.04) {
  est::NodeState state;
  state.atom_begin = 0;
  state.atom_end = p.model.num_atoms();
  state.x = p.initial;

  const Index total = p.constraints.size();
  const Index count = std::min(budget, total);
  const Index stride = std::max<Index>(1, total / count);
  std::vector<cons::Constraint> sample;
  sample.reserve(static_cast<std::size_t>(count));
  for (Index i = 0; i < count; ++i) {
    sample.push_back(p.constraints[(i * stride) % total]);
  }

  par::SerialContext ctx;
  est::BatchUpdater updater;
  Stopwatch sw;
  Index processed = 0;
  do {
    state.reset_covariance(1.0);
    for (Index start = 0; start < count; start += m) {
      const Index len = std::min(m, count - start);
      updater.apply(ctx, state,
                    std::span<const cons::Constraint>(
                        sample.data() + start,
                        static_cast<std::size_t>(len)));
    }
    processed += count;
  } while (sw.seconds() < min_seconds);
  return sw.seconds() / static_cast<double>(processed);
}

int run() {
  print_header("Equation 1", "Constrained least-squares work estimation");

  std::vector<Index> lengths{1, 2, 4, 8, 16};
  // As the paper does, exclude very small batch sizes from the regression.
  std::vector<Index> batches{8, 16, 32, 64, 128, 256};
  Index budget = env_long("PHMSE_BENCH_T2_BUDGET", 384);
  if (bench_scale() < 0.5) {
    lengths = {1, 2, 4};
    budget = 192;
  }

  std::vector<core::WorkSample> samples;
  for (Index len : lengths) {
    const HelixProblem p = make_helix_problem(len);
    const double n = static_cast<double>(3 * p.model.num_atoms());
    for (Index m : batches) {
      core::WorkSample s;
      s.n = n;
      s.m = static_cast<double>(m);
      s.seconds_per_constraint = measure(p, m, budget);
      samples.push_back(s);
      std::printf("sample: n=%6.0f m=%4.0f t=%.3e s/constraint\n", s.n, s.m,
                  s.seconds_per_constraint);
    }
  }

  const core::WorkModel model = core::fit_work_model(samples);
  std::printf("\nFitted Equation 1 (per scalar constraint, seconds):\n");
  std::printf("  t(n, m) = %.3e*n^2 + %.3e*n*m + %.3e*n + %.3e*m + %.3e\n",
              model.a_n2, model.a_nm, model.a_n, model.a_m, model.a_1);

  // Report fit quality and the paper's two constraint checks.
  double sse = 0.0;
  double sst = 0.0;
  double mean = 0.0;
  for (const auto& s : samples) mean += s.seconds_per_constraint;
  mean /= static_cast<double>(samples.size());
  for (const auto& s : samples) {
    const double pred = model.per_constraint(s.n, s.m);
    sse += (pred - s.seconds_per_constraint) *
           (pred - s.seconds_per_constraint);
    sst += (s.seconds_per_constraint - mean) *
           (s.seconds_per_constraint - mean);
  }
  std::printf("  R^2 = %.4f over %zu samples\n", 1.0 - sse / sst,
              samples.size());
  std::printf("  checks: leading coefficient positive: %s; all "
              "coefficients non-negative (=> non-negative predictions and "
              "coefficient sum): yes\n",
              model.a_n2 > 0.0 ? "yes" : "NO");
  std::printf("Paper reference: a quadratic-in-n, linear-in-m polynomial "
              "fitted under the same constraints (their Eq. 1).\n");
  return 0;
}

}  // namespace
}  // namespace phmse::bench

int main() { return phmse::bench::run(); }
