// Perf-regression harness for the dense kernel backends.
//
// Times every gemm-panel kernel under each registered backend — `simd`
// (explicit vector microkernels), `blocked` (portable register-tiled) and
// `ref` (frozen scalar oracle) — over the hot shapes of the Fig.-1 update
// and the Fig.-3 combination, then writes the machine-readable
// BENCH_kernels.json consumed by scripts/bench_check.py.  Each row calls
// through the named backend's dispatch table, so the measurements are
// pinned regardless of PHMSE_BACKEND or what default dispatch resolves to.
// Run from the repository root so the JSON lands next to the committed
// baseline:
//
//   ./build/bench/kernels_regress            # writes BENCH_kernels.json
//   ./build/bench/kernels_regress out.json   # explicit output path
//
// Honours PHMSE_BENCH_SCALE (< 0.5 switches to tiny smoke shapes for CI),
// PHMSE_BENCH_SEED and PHMSE_BENCH_OUT (default output path).
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "linalg/backend.hpp"
#include "linalg/blas.hpp"
#include "linalg/simd/simd_kernels.hpp"
#include "parallel/exec.hpp"
#include "parallel/team.hpp"
#include "support/check.hpp"
#include "support/env.hpp"
#include "support/rng.hpp"

namespace phmse::bench {
namespace {

using linalg::Backend;
using linalg::Matrix;

Matrix random_matrix(Index rows, Index cols, Rng& rng) {
  Matrix m(rows, cols);
  for (Index i = 0; i < rows; ++i) {
    for (Index j = 0; j < cols; ++j) m(i, j) = rng.gaussian();
  }
  return m;
}

Matrix random_spd(Index n, Rng& rng) {
  const Matrix a = random_matrix(n, n, rng);
  Matrix s = linalg::matmul(a, linalg::transpose(a));
  for (Index i = 0; i < n; ++i) s(i, i) += static_cast<double>(n);
  return s;
}

// Runs `fn(ctx)` under a SerialContext (threads == 1) or a TeamContext.
template <class Fn>
void with_context(int threads, const Fn& fn) {
  if (threads <= 1) {
    par::SerialContext ctx;
    fn(ctx);
  } else {
    par::ThreadPool pool(threads);
    par::TeamContext team(pool, 0, threads);
    fn(team);
  }
}

struct Harness {
  std::vector<KernelBenchRecord> records;

  // Times one (kernel, impl, shape, threads) configuration.
  void run(const std::string& kernel, const std::string& impl, Index m,
           Index n, int threads, double flops, double bytes,
           const std::function<void(par::ExecContext&)>& body) {
    KernelBenchRecord rec;
    rec.kernel = kernel;
    rec.impl = impl;
    rec.m = m;
    rec.n = n;
    rec.threads = threads;
    rec.flops = flops;
    rec.bytes = bytes;
    with_context(threads, [&](par::ExecContext& ctx) {
      rec.seconds = time_best([&] { body(ctx); }, 3, &rec.reps);
    });
    records.push_back(rec);
    std::printf("  %-24s %-8s m=%-5lld n=%-5lld t=%d  %9.3f us  %8.3f GF/s\n",
                kernel.c_str(), impl.c_str(), static_cast<long long>(m),
                static_cast<long long>(n), threads, rec.seconds * 1e6,
                rec.gflops());
  }
};

int run_all(const std::string& out_path) {
  print_header("kernels_regress",
               "dense kernel backends vs scalar reference (perf trajectory)");
  std::printf("simd microkernels: %s\n", linalg::simd::active_isa());

  // Pinned backend tables: every row dispatches through one of these, so
  // the measurement never depends on the process default.
  const std::vector<const Backend*> impls = {
      linalg::find_backend("simd"), linalg::find_backend("blocked"),
      linalg::find_backend("ref")};
  for (const Backend* b : impls) PHMSE_CHECK(b != nullptr, "missing backend");

  const bool smoke = bench_scale() < 0.5;
  const std::vector<Index> dims =
      smoke ? std::vector<Index>{33, 64} : std::vector<Index>{129, 512, 1024};
  const std::vector<Index> trsm_sizes =
      smoke ? std::vector<Index>{32} : std::vector<Index>{128, 512};
  const Index trsm_rhs = smoke ? 64 : 512;
  const std::vector<Index> chol_sizes =
      smoke ? std::vector<Index>{48} : std::vector<Index>{128, 512};
  const Index m = 16;  // the paper's recommended constraint batch size

  std::vector<int> thread_counts{1};
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  if (hw > 1) thread_counts.push_back(hw);

  Rng rng(static_cast<std::uint64_t>(env_long("PHMSE_BENCH_SEED", 1234)));
  Harness h;

  for (const Index n : dims) {
    const Matrix v = random_matrix(m, n, rng);
    const Matrix g = random_matrix(m, n, rng);
    Matrix c0 = random_spd(n, rng);
    const double flops = 2.0 * static_cast<double>(m) *
                         static_cast<double>(n) * static_cast<double>(n);
    const double bytes =
        8.0 * (2.0 * static_cast<double>(n) * static_cast<double>(n) +
               static_cast<double>(m) * static_cast<double>(n));
    // The downdate accumulates (C -= V^T G), so the timed body can run on
    // the same matrix repeatedly without a reset — the reset's memory
    // traffic would otherwise dominate the measurement at large n.
    Matrix c = c0;
    for (const int t : thread_counts) {
      for (const Backend* b : impls) {
        c = c0;
        h.run("covariance_downdate", b->name, m, n, t, flops, bytes,
              [&](par::ExecContext& ctx) {
                b->covariance_downdate(ctx, v, g, c);
              });
      }
      Matrix out;
      for (const Backend* b : impls) {
        h.run("gram", b->name, m, n, t, flops, bytes,
              [&](par::ExecContext& ctx) { b->gram(ctx, v, out); });
      }
    }
  }

  for (const Index sz : trsm_sizes) {
    Matrix l = random_spd(sz, rng);
    linalg::cholesky_serial(l);
    const Matrix b0 = random_matrix(sz, trsm_rhs, rng);
    const double flops = static_cast<double>(trsm_rhs) *
                         static_cast<double>(sz) * static_cast<double>(sz);
    const double bytes =
        8.0 * (static_cast<double>(trsm_rhs) * static_cast<double>(sz) +
               0.5 * static_cast<double>(sz) * static_cast<double>(sz));
    Matrix b = b0;
    for (const int t : thread_counts) {
      for (const Backend* impl : impls) {
        h.run("trsm_lower", impl->name, sz, trsm_rhs, t, flops, bytes,
              [&](par::ExecContext& ctx) {
                b = b0;
                impl->trsm_lower(ctx, l, b);
              });
        h.run("trsm_lower_transposed", impl->name, sz, trsm_rhs, t, flops,
              bytes, [&](par::ExecContext& ctx) {
                b = b0;
                impl->trsm_lower_transposed(ctx, l, b);
              });
      }
    }
  }

  for (const Index sz : chol_sizes) {
    const Matrix s = random_spd(sz, rng);
    const double flops = static_cast<double>(sz) * static_cast<double>(sz) *
                         static_cast<double>(sz) / 3.0;
    const double bytes = 8.0 * static_cast<double>(sz) *
                         static_cast<double>(sz);
    Matrix a = s;
    for (const int t : thread_counts) {
      for (const Backend* impl : impls) {
        h.run("cholesky", impl->name, 0, sz, t, flops, bytes,
              [&](par::ExecContext& ctx) {
                a = s;
                const linalg::CholeskyResult r =
                    impl->cholesky_factor(ctx, a, 48);
                PHMSE_CHECK(r.ok(), "bench cholesky: not positive definite");
              });
      }
    }
  }

  write_kernel_bench_json(out_path, h.records);
  std::printf("\nwrote %zu records to %s\n", h.records.size(),
              out_path.c_str());

  // Headline: single-thread speedups per kernel at the largest measured
  // shape — blocked vs ref (acceptance bar >= 2x for covariance_downdate
  // and gram at n >= 512) and simd vs blocked (bar >= 1.5x on the
  // gemm-panel kernels; scripts/bench_check.py gates the geometric mean).
  auto best_at_largest = [&](const std::string& kernel,
                             const char* impl) -> const KernelBenchRecord* {
    const KernelBenchRecord* best = nullptr;
    for (const KernelBenchRecord& r : h.records) {
      if (r.kernel != kernel || r.threads != 1 || r.impl != impl) continue;
      if (best == nullptr || r.n > best->n) best = &r;
    }
    return best;
  };
  std::printf("single-thread speedups at the largest shape:\n");
  for (const std::string kernel :
       {"covariance_downdate", "gram", "trsm_lower",
        "trsm_lower_transposed", "cholesky"}) {
    const KernelBenchRecord* simd = best_at_largest(kernel, "simd");
    const KernelBenchRecord* blocked = best_at_largest(kernel, "blocked");
    const KernelBenchRecord* ref = best_at_largest(kernel, "ref");
    if (simd == nullptr || blocked == nullptr || ref == nullptr ||
        blocked->seconds <= 0.0 || simd->seconds <= 0.0) {
      continue;
    }
    std::printf(
        "  %-24s n=%-5lld blocked/ref %.2fx, simd/blocked %.2fx "
        "(%.2f GF/s simd)\n",
        kernel.c_str(), static_cast<long long>(blocked->n),
        ref->seconds / blocked->seconds, blocked->seconds / simd->seconds,
        simd->gflops());
  }
  return 0;
}

}  // namespace
}  // namespace phmse::bench

int main(int argc, char** argv) {
  const std::string out =
      argc > 1 ? argv[1]
               : phmse::env_string("PHMSE_BENCH_OUT", "BENCH_kernels.json");
  return phmse::bench::run_all(out);
}
