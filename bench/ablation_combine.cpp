// Ablation A1 (paper Section 4.1): coarse-grained intra-node parallelism by
// independent constraint subsets + Fig.-3 combination, versus the paper's
// choice of parallelizing inside the update procedure.
//
// The paper rejects the coarse-grained scheme because (a) the combination
// is an O(n^3) overhead equivalent to applying an n-dimensional constraint
// vector, so the total constraint dimension M must far exceed the state
// dimension n to amortize it, and (b) it duplicates the (x, C) pair per
// branch.  This harness reproduces that comparison on the simulated DASH.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "estimation/combine.hpp"
#include "estimation/update.hpp"
#include "support/table.hpp"

namespace phmse::bench {
namespace {

int run() {
  print_header("Ablation A1 (Section 4.1)",
               "Constraint-partitioned updates + combination vs in-update "
               "parallelism");

  const Index helix_len = bench_scale() < 0.5 ? 1 : 2;
  const HelixProblem p = make_helix_problem(helix_len);
  const Index n = 3 * p.model.num_atoms();
  const double prior_sigma = 1.0;
  std::printf("node: helix %lld bp, state dimension n=%lld, constraint "
              "dimension M=%lld\n",
              static_cast<long long>(helix_len), static_cast<long long>(n),
              static_cast<long long>(p.constraints.size()));

  Table t({"K (ways)", "fine-grained(s)", "coarse updates(s)",
           "combine(s)", "coarse total(s)", "coarse/fine",
           "extra (x,C) MB"});

  for (int k : {2, 4, 8}) {
    // (a) Fine-grained: the whole set applied once with the update
    // procedure's internal kernels parallelized over k processors.
    double fine;
    {
      simarch::SimMachine machine(simarch::dash32());
      simarch::SimContext ctx(machine, 0, k);
      est::NodeState st;
      st.atom_begin = 0;
      st.atom_end = p.model.num_atoms();
      st.x = p.initial;
      st.reset_covariance(prior_sigma);
      est::BatchUpdater updater;
      updater.apply_all(ctx, st, p.constraints, 16);
      fine = machine.elapsed();
    }

    // (b) Coarse-grained: k disjoint subsets, each applied on its own
    // processor from the shared prior; then pairwise tournament
    // combination (concurrent combinations within a round).
    double coarse_updates;
    double coarse_total;
    {
      simarch::SimMachine machine(simarch::dash32());
      std::vector<est::NodeState> posts;
      const auto& all = p.constraints.all();
      const Index chunk = (p.constraints.size() + k - 1) / k;
      for (int i = 0; i < k; ++i) {
        const Index lo = std::min<Index>(i * chunk, p.constraints.size());
        const Index hi =
            std::min<Index>(lo + chunk, p.constraints.size());
        simarch::SimContext ctx(machine, i, 1);
        est::NodeState st;
        st.atom_begin = 0;
        st.atom_end = p.model.num_atoms();
        st.x = p.initial;
        st.reset_covariance(prior_sigma);
        est::BatchUpdater updater;
        updater.apply_all(
            ctx, st, [&] {
              cons::ConstraintSet subset;
              for (Index c = lo; c < hi; ++c) subset.add(all[static_cast<std::size_t>(c)]);
              return subset;
            }(),
            16);
        posts.push_back(std::move(st));
      }
      coarse_updates = machine.elapsed();

      // Tournament rounds; pair i of a round combines on processor i.
      std::vector<est::NodeState> cur = std::move(posts);
      while (cur.size() > 1) {
        machine.sync_range(0, k);  // round barrier: inputs must be ready
        std::vector<est::NodeState> next;
        for (std::size_t i = 0; i + 1 < cur.size(); i += 2) {
          const int proc = static_cast<int>(i / 2);
          simarch::SimContext ctx(machine, proc, 1);
          next.push_back(est::combine_independent(ctx, cur[i], cur[i + 1],
                                                  p.initial, prior_sigma));
        }
        if (cur.size() % 2 == 1) next.push_back(std::move(cur.back()));
        cur = std::move(next);
      }
      coarse_total = machine.elapsed();
    }

    const double mem_mb = static_cast<double>(k - 1) *
                          (static_cast<double>(n) * n + n) * 8.0 / 1e6;
    t.add_row({std::to_string(k), format_fixed(fine, 2),
               format_fixed(coarse_updates, 2),
               format_fixed(coarse_total - coarse_updates, 2),
               format_fixed(coarse_total, 2),
               format_fixed(coarse_total / fine, 2),
               format_fixed(mem_mb, 1)});
  }
  std::printf("%s", t.str().c_str());
  std::printf("(simulated dash32 seconds; 'combine' is the Fig.-3 "
              "information-fusion overhead)\n");
  std::printf("Paper reference: the combination costs as much as applying "
              "an n-dimensional constraint\nvector and duplicates the "
              "state, so intra-update parallelism is preferred.\n");
  return 0;
}

}  // namespace
}  // namespace phmse::bench

int main() { return phmse::bench::run(); }
