// Ablation A2 (paper Section 3.1): sensitivity of the hierarchical win to
// constraint locality.
//
// The paper bounds the hierarchical advantage by two scenarios: if most
// observations can be pushed to the leaves, per-constraint time is O(n)
// (vs O(n^2) flat); if every node carries as many constraints as its
// children combined, the advantage shrinks to O(n / log n)-ish.  This
// harness interpolates between the scenarios by forcing a fraction q of
// the constraints to the root before solving.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "support/stopwatch.hpp"
#include "support/table.hpp"

namespace phmse::bench {
namespace {

// Moves ~fraction q of every non-root node's constraints up to the root.
void delocalize(core::Hierarchy& h, double q) {
  cons::ConstraintSet promoted;
  core::HierNode* root = &h.root();
  h.for_each_post_order([&](core::HierNode& node) {
    if (&node == root) return;
    cons::ConstraintSet keep;
    Index i = 0;
    for (const cons::Constraint& c : node.constraints.all()) {
      // Deterministic interleaved selection.
      const double hash =
          static_cast<double>((i * 2654435761u) % 1000u) / 1000.0;
      if (hash < q) {
        promoted.add(c);
      } else {
        keep.add(c);
      }
      ++i;
    }
    node.constraints = std::move(keep);
  });
  root->constraints.append(promoted);
}

int run() {
  print_header("Ablation A2 (Section 3.1)",
               "Hierarchical advantage vs constraint locality");

  const Index helix_len = bench_scale() < 0.5 ? 4 : 8;
  const HelixProblem p = make_helix_problem(helix_len);

  Table t({"fraction at root", "total(s)", "per-constraint(us)",
           "vs fully-local"});
  double base = 0.0;
  for (double q : {0.0, 0.1, 0.25, 0.5, 1.0}) {
    core::Hierarchy h = prepare_helix_hierarchy(p, 1);
    delocalize(h, q);
    par::SerialContext ctx;
    core::HierSolveOptions opts;  // one cycle
    Stopwatch sw;
    core::solve_hierarchical(ctx, h, p.initial, opts);
    const double total = sw.seconds();
    if (q == 0.0) base = total;
    t.add_row({format_fixed(q, 2), format_fixed(total, 3),
               format_fixed(total / static_cast<double>(p.constraints.size()) *
                                1e6,
                            2),
               format_fixed(total / base, 2)});
  }
  std::printf("%s", t.str().c_str());
  std::printf("(helix %lld bp, one cycle, sequential host time)\n",
              static_cast<long long>(helix_len));
  std::printf("Paper reference: the advantage of hierarchy rests on most "
              "observations being localized;\nas constraints climb toward "
              "the root the cost approaches the flat organization's.\n");
  return 0;
}

}  // namespace
}  // namespace phmse::bench

int main() { return phmse::bench::run(); }
