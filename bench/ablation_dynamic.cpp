// Ablation A3 (paper Section 5): static processor assignment vs dynamic
// re-assignment by periodic global synchronization.
//
// The paper observes dips in the Helix speedup whenever the processor
// count is not a power of two — the binary tree forces an uneven static
// split and "the computation effectively proceeds at the speed of the
// smaller group".  It proposes dynamic regrouping as future work; PHMSE
// implements a wave-synchronized version (src/core/dynamic.hpp).  This
// harness compares the two on the simulated DASH.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/dynamic.hpp"
#include "support/table.hpp"

namespace phmse::bench {
namespace {

int run() {
  print_header("Ablation A3 (Section 5)",
               "Static schedule vs dynamic processor re-assignment");

  const HelixProblem p = make_helix_problem(bench_scale() < 0.5 ? 8 : 16);
  core::HierSolveOptions opts;

  Table t({"NP", "static(s)", "static spdup", "dynamic(s)", "dynamic spdup",
           "dynamic/static"});
  double static1 = 0.0;
  double dynamic1 = 0.0;
  for (int procs : {1, 2, 3, 4, 5, 6, 8, 12, 16, 24, 32}) {
    // A DASH-like machine with exactly `procs` processors, so the dynamic
    // scheduler (which always spreads over the whole machine) is compared
    // against the static schedule at equal resources.
    simarch::MachineConfig cfg = simarch::dash32();
    cfg.processors = procs;

    core::Hierarchy hs = prepare_helix_hierarchy(p, procs);
    simarch::SimMachine ms(cfg);
    const double ts =
        core::solve_hierarchical_sim(hs, p.initial, opts, ms).vtime;

    core::Hierarchy hd = prepare_helix_hierarchy(p, procs);
    simarch::SimMachine md(cfg);
    const double td =
        core::solve_hierarchical_dynamic_sim(hd, p.initial, opts, md).vtime;

    if (procs == 1) {
      static1 = ts;
      dynamic1 = td;
    }
    t.add_row({std::to_string(procs), format_fixed(ts, 2),
               format_fixed(static1 / ts, 2), format_fixed(td, 2),
               format_fixed(dynamic1 / td, 2), format_fixed(td / ts, 2)});
  }
  std::printf("%s", t.str().c_str());
  std::printf("(simulated dash32 seconds, Helix problem, one cycle)\n");
  std::printf("Expected shape: static dips at NP=3,5,6,12,24 (uneven binary "
              "splits); the dynamic wave\nschedule smooths them at the cost "
              "of global synchronization per tree level.\n");
  return 0;
}

}  // namespace
}  // namespace phmse::bench

int main() { return phmse::bench::run(); }
