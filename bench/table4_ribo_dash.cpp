// Reproduces Table 4 / Figure 8: ribo30S work time, speedup and
// per-category time distribution on the (simulated) Stanford DASH.
//
// Expected shape: ~24x speedup at 32 processors, and — unlike the Helix —
// no dips at non-power-of-2 counts, because the hierarchy's larger
// branching factor lets the scheduler divide work evenly.
#include "bench_util.hpp"

int main() {
  phmse::bench::SpeedupSpec spec;
  spec.table_id = "Table 4 / Figure 8";
  spec.title = "ribo30S work time and distribution on DASH";
  spec.machine = phmse::simarch::dash32();
  spec.proc_counts = {1, 2, 4, 6, 8, 10, 12, 14, 16, 20, 24, 32};
  spec.helix_problem = false;
  spec.paper_note =
      "Paper reference (Table 4): time 924.57s -> 38.14s, speedup 24.24 at "
      "NP=32,\nsmooth curve (no power-of-2 dips) thanks to the larger "
      "branching factor.";
  return phmse::bench::run_speedup_table(spec);
}
