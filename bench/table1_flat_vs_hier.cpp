// Reproduces Table 1 / Figure 5: run time of one full cycle of constraint
// application for RNA double helices of 1..16 base pairs, flat organization
// versus hierarchical decomposition, and the hierarchical speedup.
//
// The paper's shape: per-constraint time grows ~quadratically with molecule
// size for the flat organization and ~linearly for the hierarchical one, so
// the speedup rises from 1.78x (1 bp) to 30x (16 bp).  Absolute seconds
// here are modern-host wall-clock; the paper's were 1996 hardware.
//
// Flags: --show-tree prints the Fig.-2 decomposition of the 16-bp helix.
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench_util.hpp"
#include "estimation/solver.hpp"
#include "support/stopwatch.hpp"
#include "support/table.hpp"

namespace phmse::bench {
namespace {

struct Row {
  Index length;
  Index atoms;
  Index constraints;
  double flat_total;
  double flat_per;
  double hier_total;
  double hier_per;
};

Row run_length(Index length) {
  const HelixProblem p = make_helix_problem(length);
  Row row{};
  row.length = length;
  row.atoms = p.model.num_atoms();
  row.constraints = p.constraints.size();

  // Flat organization: one node holding the whole molecule, one cycle.
  {
    est::NodeState state;
    state.atom_begin = 0;
    state.atom_end = p.model.num_atoms();
    state.x = p.initial;
    state.reset_covariance(1.0);
    par::SerialContext ctx;
    est::SolveOptions opts;  // one cycle, batches of 16 (paper's optimum)
    Stopwatch sw;
    est::solve_flat(ctx, state, p.constraints, opts);
    row.flat_total = sw.seconds();
  }

  // Hierarchical decomposition (Fig. 2), one cycle, sequential execution.
  // The plan compiles outside the timed region — Table 1 times constraint
  // application, not setup — and the solve itself reports its wall clock.
  {
    engine::Plan plan = make_helix_plan(p, 1);
    row.hier_total = plan.solve(p.initial).seconds;
  }

  row.flat_per = row.flat_total / static_cast<double>(row.constraints);
  row.hier_per = row.hier_total / static_cast<double>(row.constraints);
  return row;
}

int run(bool show_tree) {
  print_header("Table 1 / Figure 5",
               "Helix run times, flat vs hierarchical organization");

  if (show_tree) {
    const HelixProblem p = make_helix_problem(16);
    engine::Plan plan = make_helix_plan(p, 1);
    std::printf("%s\n", plan.hierarchy().describe().c_str());
    return 0;
  }

  std::vector<Index> lengths{1, 2, 4, 8, 16};
  if (bench_scale() < 0.5) lengths = {1, 2, 4};

  Table t({"Helix Length", "Atoms", "Constraints", "Flat Total(s)",
           "Flat/Constr", "Hier Total(s)", "Hier/Constr", "Speedup"});
  for (Index len : lengths) {
    const Row r = run_length(len);
    t.add_row({std::to_string(r.length), std::to_string(r.atoms),
               std::to_string(r.constraints), format_fixed(r.flat_total, 3),
               format_fixed(r.flat_per, 6), format_fixed(r.hier_total, 3),
               format_fixed(r.hier_per, 6),
               format_fixed(r.flat_total / r.hier_total, 2)});
    std::printf("... helix %lld bp done\n", static_cast<long long>(len));
  }
  std::printf("%s\n", t.str().c_str());

  std::printf("Paper reference (Table 1): speedup 1.78, 3.21, 6.40, 13.79, "
              "30.09 for 1..16 bp;\nflat per-constraint time grows "
              "quadratically, hierarchical roughly linearly.\n");
  return 0;
}

}  // namespace
}  // namespace phmse::bench

int main(int argc, char** argv) {
  const bool show_tree =
      argc > 1 && std::strcmp(argv[1], "--show-tree") == 0;
  return phmse::bench::run(show_tree);
}
