#include "bench_util.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "linalg/backend.hpp"
#include "support/check.hpp"
#include "support/env.hpp"
#include "support/rng.hpp"
#include "support/stopwatch.hpp"
#include "support/table.hpp"

namespace phmse::bench {

double bench_scale() {
  const double s = env_double("PHMSE_BENCH_SCALE", 1.0);
  return std::clamp(s, 0.01, 1.0);
}

namespace {

linalg::Vector perturbed_state(const mol::Topology& topo, double sigma) {
  Rng rng(static_cast<std::uint64_t>(env_long("PHMSE_BENCH_SEED", 1234)));
  linalg::Vector x = topo.true_state();
  for (auto& v : x) v += rng.gaussian(0.0, sigma);
  return x;
}

}  // namespace

HelixProblem make_helix_problem(Index length) {
  HelixProblem p{mol::build_helix(length), {}, {}};
  p.constraints = cons::generate_helix_constraints(p.model);
  p.initial = perturbed_state(p.model.topology, 0.3);
  return p;
}

RiboProblem make_ribo_problem() {
  RiboProblem p{mol::build_ribo30s(), {}, {}};
  p.constraints = cons::generate_ribo_constraints(p.model);
  p.initial = perturbed_state(p.model.topology, 1.0);
  return p;
}

core::Hierarchy prepare_helix_hierarchy(const HelixProblem& p, int procs,
                                        Index batch_size) {
  core::Hierarchy h = core::build_helix_hierarchy(p.model);
  core::assign_constraints(h, p.constraints);
  core::estimate_work(h, core::WorkModel{}, batch_size);
  core::assign_processors(h, procs);
  return h;
}

core::Hierarchy prepare_ribo_hierarchy(const RiboProblem& p, int procs,
                                       Index batch_size) {
  core::Hierarchy h = core::build_ribo_hierarchy(p.model);
  core::assign_constraints(h, p.constraints);
  core::estimate_work(h, core::WorkModel{}, batch_size);
  core::assign_processors(h, procs);
  return h;
}

engine::Plan make_helix_plan(const HelixProblem& p, int procs,
                             const core::HierSolveOptions& solve) {
  engine::Problem problem = engine::Problem::custom(
      p.model.topology.size(), p.constraints,
      [model = p.model] { return core::build_helix_hierarchy(model); });
  engine::CompileOptions opts;
  opts.solve = solve;
  opts.processors = procs;
  return Engine::compile(problem, opts);
}

engine::Plan make_ribo_plan(const RiboProblem& p, int procs,
                            const core::HierSolveOptions& solve) {
  engine::Problem problem = engine::Problem::custom(
      p.model.topology.size(), p.constraints,
      [model = p.model] { return core::build_ribo_hierarchy(model); });
  engine::CompileOptions opts;
  opts.solve = solve;
  opts.processors = procs;
  return Engine::compile(problem, opts);
}

int run_speedup_table(const SpeedupSpec& spec) {
  print_header(spec.table_id, spec.title);

  HelixProblem helix;
  RiboProblem ribo;
  Index helix_len = 16;
  if (!spec.helix_problem) {
    ribo = make_ribo_problem();
  } else {
    if (bench_scale() < 0.5) helix_len = 8;
    helix = make_helix_problem(helix_len);
  }

  std::printf("problem: %s; machine: %s (%d processors, %s memory)\n",
              spec.helix_problem
                  ? ("Helix " + std::to_string(helix_len) + " bp").c_str()
                  : "ribo30S (~900 pseudo-atoms, ~6500 constraints)",
              spec.machine.name.c_str(), spec.machine.processors,
              spec.machine.layout == simarch::MemoryLayout::kDistributed
                  ? "distributed (CC-NUMA)"
                  : "centralized (bus)");

  // One plan, compiled once (one cycle, batch 16 — as the paper times);
  // run_speedup_study reschedules it per processor count.
  core::HierSolveOptions opts;
  engine::Plan plan = spec.helix_problem ? make_helix_plan(helix, 1, opts)
                                         : make_ribo_plan(ribo, 1, opts);
  const linalg::Vector& initial =
      spec.helix_problem ? helix.initial : ribo.initial;
  const engine::SpeedupStudy study = engine::run_speedup_study(
      plan, initial, spec.machine, spec.proc_counts);
  std::printf("%s", engine::format_speedup_table(study).c_str());
  std::printf("(simulated work time in seconds on the %s machine model; "
              "categories are max-over-processors)\n",
              spec.machine.name.c_str());
  std::printf("%s\n", spec.paper_note.c_str());
  return 0;
}

double time_best(const std::function<void()>& fn, int min_reps,
                 int* reps_out) {
  // One warm-up rep also sizes the adaptive rep count.
  Stopwatch warm;
  fn();
  const double first = warm.seconds();
  int reps = min_reps;
  if (first > 0.0) {
    const double target_total = 0.1;  // ~100 ms of timed work per config
    reps = std::clamp(static_cast<int>(target_total / first) + 1, min_reps,
                      128);
  }
  // Minimum over reps, not the median: the best rep approximates the
  // kernel's unloaded speed even when a co-tenant steals the machine for
  // stretches longer than a whole rep, which would drag the median.
  double best = first;
  for (int r = 0; r < reps; ++r) {
    Stopwatch sw;
    fn();
    best = std::min(best, sw.seconds());
  }
  if (reps_out != nullptr) *reps_out = reps;
  return best;
}

namespace {

// Minimal JSON string escaping (kernel/impl names are plain identifiers,
// but paths in error messages deserve correctness anyway).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += ch; break;
    }
  }
  return out;
}

}  // namespace

void write_kernel_bench_json(const std::string& path,
                             const std::vector<KernelBenchRecord>& records) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  PHMSE_CHECK(f != nullptr,
              "write_kernel_bench_json: cannot open " + path);
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"schema\": \"phmse-kernel-bench-v1\",\n");
  std::fprintf(f, "  \"bench_scale\": %.4g,\n", bench_scale());
  // Which backend free-function dispatch resolves to on this host, and the
  // microkernel set behind the simd rows (bench_check's speedup gate only
  // means something when a vector ISA was actually in play).
  std::fprintf(f, "  \"default_backend\": \"%s\",\n",
               json_escape(linalg::default_backend().name).c_str());
  std::fprintf(f, "  \"simd_isa\": \"%s\",\n",
               json_escape(linalg::find_backend("simd")->simd_isa).c_str());
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < records.size(); ++i) {
    const KernelBenchRecord& r = records[i];
    std::fprintf(
        f,
        "    {\"kernel\": \"%s\", \"impl\": \"%s\", \"m\": %lld, "
        "\"n\": %lld, \"threads\": %d, \"reps\": %d, "
        "\"seconds\": %.6e, \"flops\": %.6e, \"bytes\": %.6e, "
        "\"gflops\": %.4f, \"gbytes_per_sec\": %.4f}%s\n",
        json_escape(r.kernel).c_str(), json_escape(r.impl).c_str(),
        static_cast<long long>(r.m), static_cast<long long>(r.n), r.threads,
        r.reps, r.seconds, r.flops, r.bytes, r.gflops(), r.gbytes_per_sec(),
        i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n");
  std::fprintf(f, "}\n");
  const bool ok = std::fclose(f) == 0;
  PHMSE_CHECK(ok, "write_kernel_bench_json: write failed for " + path);
}

void print_header(const std::string& table_id, const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("PHMSE reproduction — %s: %s\n", table_id.c_str(),
              title.c_str());
  std::printf("(Chen, Singh, Altman, \"Parallel Hierarchical Molecular "
              "Structure Estimation\", SC'96)\n");
  if (bench_scale() < 1.0) {
    std::printf("NOTE: PHMSE_BENCH_SCALE=%.2f — reduced configuration\n",
                bench_scale());
  }
  std::printf("================================================================\n");
}

}  // namespace phmse::bench
