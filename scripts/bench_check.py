#!/usr/bin/env python3
"""Validate and compare phmse bench JSON documents.

Two document schemas are understood, distinguished by their "schema" key:

  phmse-kernel-bench-v1   — bench/kernels_regress and bench/solve_regress
                            (per-kernel best-rep timings, DESIGN.md §7);
  phmse-service-bench-v1  — bench/service_regress (multi-tenant solve
                            service throughput and latency, DESIGN.md §10).

Two modes:

  Validate only (schema + internal consistency):
      scripts/bench_check.py --validate BENCH_kernels.json
      scripts/bench_check.py --validate BENCH_service.json

  Compare a fresh run against the committed baseline:
      scripts/bench_check.py --baseline BENCH_kernels.json \
          --current build/BENCH_kernels.json [--tolerance 0.25] [--report-only]

Kernel records are matched by (kernel, impl, m, n, threads) and compared
on best-rep seconds (lower is better); service records are matched by
(workload, mode, tenants, requests, workers) and compared on solves/sec
(higher is better).  A configuration regresses when it degrades beyond
the tolerance band (default 25% — wide because the harness runs on shared
machines).  Matched configs that improved, and configs present on only one
side, are reported but never fail the check.  --report-only prints the
comparison but always exits 0 (used by the CI smoke job, whose tiny shapes
are not comparable to the committed full-scale baseline).

--max-robustness-overhead [FRACTION] (default 0.02 when given) adds an
INTRA-document check: wherever a kernel document contains both a
plan_solve_steady and a plan_solve_policy row for the same configuration,
the policy row must not exceed the steady row by more than the fraction
(DESIGN.md §9 — the always-on validation/report path must stay < 2%).

--min-warm-speedup [FACTOR] (default 5.0 when given) adds the service
analogue: wherever a service document contains both a cold and a warm row
for the same configuration, warm solves/sec must be at least FACTOR times
cold solves/sec (DESIGN.md §10 — the plan cache must pay for itself).

--max-deadline-overhead [FRACTION] (default 0.02 when given) gates the
deadline machinery: wherever a service document contains both a warm and
a deadline row for the same configuration, deadline solves/sec must not
fall below warm solves/sec by more than the fraction (DESIGN.md §13 —
the deadline row is the warm workload with a generous never-firing
budget on every request, so warm/deadline is the pure cost of arming the
cancel token and polling it at batch/node boundaries).

--min-simd-speedup [FACTOR] (default 1.5 when given) gates the simd
backend's microkernels: for each gemm-panel kernel (covariance_downdate,
gram) the geometric mean over the single-thread shapes of
blocked-seconds / simd-seconds must reach FACTOR (DESIGN.md §12 — the
explicit vector tiles must pay for themselves over the auto-vectorized
blocked kernels; the geometric mean keeps one memory-bound outlier shape
from hiding a regression at the compute-bound shapes and vice versa).

--min-incremental-speedup [FACTOR] (default 3.0 when given) gates the
incremental rebind fast path: wherever a kernel document contains both a
plan_solve_steady and a plan_solve_incremental row for the same
configuration, the incremental row must be at least FACTOR times faster
(DESIGN.md §11 — a single-constraint rebind takes the low-rank root
shift, O(k n) against the full tree's dense sweeps, falling back to the
exact dirty-subtree replay only when it cannot answer).

--max-refine-overhead [FRACTION] (default 0.02 when given) gates the
outer-loop refinement subsystem: wherever a kernel document contains
both a plan_solve_steady and a plan_solve_refine row for the same
configuration, the refine row must not exceed the steady row by more
than the fraction (DESIGN.md §14 — a single_pass refine::Refiner is the
plain solve plus convergence monitoring, and that monitoring must stay
< 2%).

Both intra-document rows come from the same interleaved run on the same
machine, so unlike the cross-run baseline comparison these checks are
meaningful at any scale and are NOT silenced by --report-only.

Passing an intra-document gate flag asserts that the named rows exist:
a document with no matching row pair, or of the wrong schema for the
gate, FAILS the check rather than skipping it — a renamed or dropped
bench row must not silently retire the gate.  The one exception is
--min-simd-speedup on a document recorded with simd_isa=scalar (no
vector unit on the recording machine), which skips with a note.

Exit status: 0 ok / report-only, 1 regression found, 2 invalid input.
"""

import argparse
import json
import math
import sys

KERNEL_SCHEMA = "phmse-kernel-bench-v1"
SERVICE_SCHEMA = "phmse-service-bench-v1"
KNOWN_KERNELS = {
    "covariance_downdate",
    "gram",
    "trsm_lower",
    "trsm_lower_transposed",
    "cholesky",
    # Solver-level rows from bench/solve_regress: the two halves of the
    # plan/execute split (Engine::compile vs steady-state plan.solve()).
    "plan_compile",
    "plan_solve_steady",
    # Same steady-state solve under the heaviest degradation policy
    # (retry + gating); plan_solve_policy / plan_solve_steady is the
    # robustness overhead gated by --max-robustness-overhead.
    "plan_solve_policy",
    # Single-constraint dirty-subtree re-solve (DESIGN.md §11);
    # plan_solve_steady / plan_solve_incremental is the speedup gated by
    # --min-incremental-speedup.
    "plan_solve_incremental",
    # Same steady-state solve routed through a single_pass refine::Refiner
    # (DESIGN.md §14); plan_solve_refine / plan_solve_steady is the
    # refinement monitoring overhead gated by --max-refine-overhead.
    "plan_solve_refine",
}
KNOWN_IMPLS = {"simd", "blocked", "ref", "engine"}
KNOWN_MODES = {"cold", "warm", "deadline"}

KERNEL_FIELDS = {
    "kernel": str,
    "impl": str,
    "m": int,
    "n": int,
    "threads": int,
    "reps": int,
    "seconds": float,
    "flops": float,
    "bytes": float,
    "gflops": float,
    "gbytes_per_sec": float,
}

SERVICE_FIELDS = {
    "workload": str,
    "mode": str,
    "tenants": int,
    "requests": int,
    "workers": int,
    "solves_per_sec": float,
    "p50_ms": float,
    "p95_ms": float,
    "p99_ms": float,
    "queue_p50_ms": float,
    "queue_p95_ms": float,
    "queue_p99_ms": float,
    "cache_hits": int,
    "cache_misses": int,
}


def fail(msg):
    print(f"bench_check: error: {msg}", file=sys.stderr)
    sys.exit(2)


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        fail(f"{path}: {exc}")
    validate(doc, path)
    return doc


def is_service(doc):
    return doc.get("schema") == SERVICE_SCHEMA


def validate(doc, path):
    """Schema check; exits 2 with a pointed message on the first violation."""
    if not isinstance(doc, dict):
        fail(f"{path}: top level must be an object")
    if doc.get("schema") not in (KERNEL_SCHEMA, SERVICE_SCHEMA):
        fail(f"{path}: schema is {doc.get('schema')!r}, expected "
             f"{KERNEL_SCHEMA!r} or {SERVICE_SCHEMA!r}")
    if not isinstance(doc.get("bench_scale"), (int, float)):
        fail(f"{path}: missing numeric bench_scale")
    results = doc.get("results")
    if not isinstance(results, list) or not results:
        fail(f"{path}: results must be a non-empty array")
    fields = SERVICE_FIELDS if is_service(doc) else KERNEL_FIELDS
    seen = set()
    for i, rec in enumerate(results):
        where = f"{path}: results[{i}]"
        if not isinstance(rec, dict):
            fail(f"{where}: must be an object")
        for field, ftype in fields.items():
            if field not in rec:
                fail(f"{where}: missing field {field!r}")
            value = rec[field]
            if ftype is float:
                if not isinstance(value, (int, float)):
                    fail(f"{where}: {field} must be a number")
            elif not isinstance(value, ftype):
                fail(f"{where}: {field} must be {ftype.__name__}")
        if is_service(doc):
            if rec["mode"] not in KNOWN_MODES:
                fail(f"{where}: unknown mode {rec['mode']!r}")
            if rec["solves_per_sec"] <= 0:
                fail(f"{where}: solves_per_sec must be positive")
            if min(rec["tenants"], rec["requests"], rec["workers"]) <= 0:
                fail(f"{where}: tenants/requests/workers must be positive")
        else:
            if rec["kernel"] not in KNOWN_KERNELS:
                fail(f"{where}: unknown kernel {rec['kernel']!r}")
            if rec["impl"] not in KNOWN_IMPLS:
                fail(f"{where}: unknown impl {rec['impl']!r}")
            if rec["seconds"] <= 0 or rec["reps"] <= 0:
                fail(f"{where}: seconds and reps must be positive")
        k = key(doc, rec)
        if k in seen:
            fail(f"{where}: duplicate configuration {k}")
        seen.add(k)


def key(doc, rec):
    if is_service(doc):
        return (rec["workload"], rec["mode"], rec["tenants"],
                rec["requests"], rec["workers"])
    return (rec["kernel"], rec["impl"], rec["m"], rec["n"], rec["threads"])


def gate_missing(path, what):
    """A gate flag was passed but its rows are absent: fail, don't skip.

    Silently returning 0 here would let a renamed or dropped bench row
    retire a CI gate without anyone noticing; the caller asserted the
    rows exist by passing the flag, so their absence is a violation.
    """
    print(f"bench_check: GATE FAILED: {path} {what}; the gate flag asserts "
          "those rows exist (rename/drop the flag if this is intentional)")
    return 1


def ratio_pair_check(doc, path, numer_kernel, denom_kernel, label, judge):
    """Shared walk for the intra-document solver-row ratio gates.

    Pairs numer_kernel against denom_kernel rows by configuration and
    lets `judge(ratio) -> (violated, line)` score each pair.  Returns
    the violation count; an empty pairing fails via gate_missing.
    """
    if is_service(doc):
        return gate_missing(
            path, f"is a service document ({label} needs kernel rows)")

    def config(rec):
        return (rec["impl"], rec["m"], rec["n"], rec["threads"])

    denom = {config(r): r for r in doc["results"]
             if r["kernel"] == denom_kernel}
    numer = {config(r): r for r in doc["results"]
             if r["kernel"] == numer_kernel}
    violations = 0
    checked = 0
    for cfg in sorted(denom.keys() & numer.keys()):
        checked += 1
        ratio = numer[cfg]["seconds"] / denom[cfg]["seconds"]
        tag = "{} m={} n={} t={}".format(*cfg)
        violated, line = judge(ratio)
        violations += 1 if violated else 0
        print("  {:8s} {} {} {}".format(
            "REGRESS" if violated else "ok", label, tag, line))
    if not checked:
        violations += gate_missing(
            path, f"has no {denom_kernel}/{numer_kernel} row pair")
    return violations


def check_robustness_overhead(doc, path, max_overhead):
    """Intra-document plan_solve_policy vs plan_solve_steady gate.

    Returns the number of violations.  The two rows are produced by the
    same interleaved run (bench/solve_regress), so their ratio is a
    machine-independent overhead measurement.
    """
    def judge(ratio):
        overhead = ratio - 1.0
        return overhead > max_overhead, "{:+.2f}% (limit {:+.2f}%)".format(
            100.0 * overhead, 100.0 * max_overhead)

    return ratio_pair_check(doc, path, "plan_solve_policy",
                            "plan_solve_steady", "robustness overhead",
                            judge)


def check_refine_overhead(doc, path, max_overhead):
    """Intra-document plan_solve_refine vs plan_solve_steady gate.

    Returns the number of violations.  The refine row routes the
    identical steady-state solve through a single_pass refine::Refiner
    in the same interleaved run (bench/solve_regress), so the ratio is
    the pure cost of the convergence monitoring (DESIGN.md §14).
    """
    def judge(ratio):
        overhead = ratio - 1.0
        return overhead > max_overhead, "{:+.2f}% (limit {:+.2f}%)".format(
            100.0 * overhead, 100.0 * max_overhead)

    return ratio_pair_check(doc, path, "plan_solve_refine",
                            "plan_solve_steady", "refine overhead", judge)


def check_incremental_speedup(doc, path, min_speedup):
    """Intra-document plan_solve_incremental vs plan_solve_steady gate.

    Returns the number of violations.  Both rows come from the same
    interleaved run in the same process (bench/solve_regress); the
    incremental row rebinds one constraint and re-solves via the low-rank
    fast path (solve_lowrank), so steady / incremental is the rebind
    payoff independent of the machine's absolute speed.
    """
    def judge(ratio):
        speedup = 1.0 / ratio
        return speedup < min_speedup, "{:.2f}x (floor {:.2f}x)".format(
            speedup, min_speedup)

    return ratio_pair_check(doc, path, "plan_solve_incremental",
                            "plan_solve_steady", "incremental speedup",
                            judge)


def check_simd_speedup(doc, path, min_speedup):
    """Intra-document simd vs blocked gate on the gemm-panel kernels.

    Returns the number of violations.  Both impl rows come from the same
    interleaved run (bench/kernels_regress) through pinned backend tables,
    so the ratio measures the microkernels' payoff independent of the
    machine's absolute speed.  Gated per kernel on the geometric mean over
    all matched single-thread shapes.
    """
    if is_service(doc):
        return gate_missing(
            path, "is a service document (simd speedup needs kernel rows)")

    # The one legitimate skip: the recording machine had no vector unit,
    # so the simd rows ran the scalar fallback and the ratio is
    # meaningless rather than missing.
    if doc.get("simd_isa") == "scalar":
        print(f"bench_check: note: {path} simd rows ran without vector "
              "microkernels (simd_isa=scalar); simd speedup not checked")
        return 0

    gemm_panel_kernels = ("covariance_downdate", "gram")
    blocked = {(r["kernel"], r["m"], r["n"]): r for r in doc["results"]
               if r["impl"] == "blocked" and r["threads"] == 1
               and r["kernel"] in gemm_panel_kernels}
    simd = {(r["kernel"], r["m"], r["n"]): r for r in doc["results"]
            if r["impl"] == "simd" and r["threads"] == 1
            and r["kernel"] in gemm_panel_kernels}
    matched = sorted(blocked.keys() & simd.keys())
    violations = 0
    checked = False
    for kernel in gemm_panel_kernels:
        cfgs = [k for k in matched if k[0] == kernel]
        if not cfgs:
            continue
        checked = True
        log_sum = 0.0
        for cfg in cfgs:
            speedup = blocked[cfg]["seconds"] / simd[cfg]["seconds"]
            log_sum += math.log(speedup)
            print("           simd speedup {} m={} n={} t=1 {:.2f}x"
                  .format(*cfg, speedup))
        geomean = math.exp(log_sum / len(cfgs))
        if geomean < min_speedup:
            violations += 1
            verdict = "REGRESS"
        else:
            verdict = "ok"
        print("  {:8s} simd speedup {} geomean {:.2f}x over {} shape(s) "
              "(floor {:.2f}x)".format(verdict, kernel, geomean, len(cfgs),
                                       min_speedup))
    if not checked:
        violations += gate_missing(
            path, "has no simd/blocked row pair on the gemm-panel kernels")
    return violations


def check_warm_speedup(doc, path, min_speedup):
    """Intra-document warm vs cold throughput gate for service documents.

    Returns the number of violations.  Both rows come from the same
    back-to-back run (bench/service_regress), so the ratio measures the
    plan cache's payoff independent of the machine's absolute speed.
    """
    if not is_service(doc):
        return gate_missing(
            path, "is a kernel document (warm speedup needs service rows)")

    def config(rec):
        return (rec["workload"], rec["tenants"], rec["requests"],
                rec["workers"])

    cold = {config(r): r for r in doc["results"] if r["mode"] == "cold"}
    warm = {config(r): r for r in doc["results"] if r["mode"] == "warm"}
    violations = 0
    checked = 0
    for cfg in sorted(cold.keys() & warm.keys()):
        checked += 1
        speedup = (warm[cfg]["solves_per_sec"] /
                   cold[cfg]["solves_per_sec"])
        tag = "{} tenants={} requests={} workers={}".format(*cfg)
        if speedup < min_speedup:
            violations += 1
            verdict = "REGRESS"
        else:
            verdict = "ok"
        print("  {:8s} warm speedup {} {:.2f}x (floor {:.2f}x)"
              .format(verdict, tag, speedup, min_speedup))
    if not checked:
        violations += gate_missing(path, "has no cold/warm row pair")
    return violations


def check_deadline_overhead(doc, path, max_overhead):
    """Intra-document deadline vs warm throughput gate for service docs.

    Returns the number of violations.  Both rows come from the same
    back-to-back run (bench/service_regress) over identical cached
    traffic — the deadline row merely arms a 30s budget that never
    fires — so warm/deadline - 1 is the cancel-token polling overhead
    independent of the machine's absolute speed.
    """
    if not is_service(doc):
        return gate_missing(
            path,
            "is a kernel document (deadline overhead needs service rows)")

    def config(rec):
        return (rec["workload"], rec["tenants"], rec["requests"],
                rec["workers"])

    warm = {config(r): r for r in doc["results"] if r["mode"] == "warm"}
    deadline = {config(r): r for r in doc["results"]
                if r["mode"] == "deadline"}
    violations = 0
    checked = 0
    for cfg in sorted(warm.keys() & deadline.keys()):
        checked += 1
        overhead = (warm[cfg]["solves_per_sec"] /
                    deadline[cfg]["solves_per_sec"] - 1.0)
        tag = "{} tenants={} requests={} workers={}".format(*cfg)
        if overhead > max_overhead:
            violations += 1
            verdict = "REGRESS"
        else:
            verdict = "ok"
        print("  {:8s} deadline overhead {} {:+.2f}% (limit {:+.2f}%)"
              .format(verdict, tag, 100.0 * overhead, 100.0 * max_overhead))
    if not checked:
        violations += gate_missing(path, "has no warm/deadline row pair")
    return violations


def compare(baseline, current, tolerance):
    """Returns (lines, regression_count) for the matched configurations."""
    service = is_service(baseline)
    base = {key(baseline, r): r for r in baseline["results"]}
    curr = {key(current, r): r for r in current["results"]}
    lines = []
    regressions = 0
    for k in sorted(base.keys() | curr.keys()):
        if service:
            tag = "{}/{} tenants={} requests={} workers={}".format(*k)
        else:
            tag = "{}/{} m={} n={} t={}".format(*k)
        if k not in curr:
            lines.append(f"  MISSING  {tag} (in baseline only)")
            continue
        if k not in base:
            lines.append(f"  NEW      {tag} (no baseline)")
            continue
        if service:
            # Throughput: higher is better; degradation ratio mirrors the
            # kernel seconds ratio so one tolerance band covers both.
            b = base[k]["solves_per_sec"]
            c = curr[k]["solves_per_sec"]
            ratio = b / c if c > 0 else float("inf")
            detail = "{:.1f}/s -> {:.1f}/s".format(b, c)
        else:
            b, c = base[k]["seconds"], curr[k]["seconds"]
            ratio = c / b
            detail = "{:.3e}s -> {:.3e}s".format(b, c)
        if ratio > 1.0 + tolerance:
            regressions += 1
            verdict = "REGRESS"
        elif ratio < 1.0 - tolerance:
            verdict = "faster"
        else:
            verdict = "ok"
        lines.append(
            "  {:8s} {} {} ({:+.1f}%)".format(
                verdict, tag, detail, 100.0 * (ratio - 1.0)
            )
        )
    return lines, regressions


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--validate", metavar="JSON",
                    help="validate a single document and exit")
    ap.add_argument("--baseline", metavar="JSON",
                    help="committed baseline document")
    ap.add_argument("--current", metavar="JSON",
                    help="freshly produced document to compare")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="allowed degradation fraction (default 0.25)")
    ap.add_argument("--report-only", action="store_true",
                    help="print the comparison but always exit 0")
    ap.add_argument("--max-robustness-overhead", metavar="FRACTION",
                    type=float, nargs="?", const=0.02, default=None,
                    help="fail if plan_solve_policy exceeds plan_solve_steady "
                         "by more than FRACTION within a kernel document "
                         "(default 0.02 when the flag is given); "
                         "not silenced by --report-only")
    ap.add_argument("--min-warm-speedup", metavar="FACTOR",
                    type=float, nargs="?", const=5.0, default=None,
                    help="fail if warm solves/sec is below FACTOR times cold "
                         "solves/sec within a service document "
                         "(default 5.0 when the flag is given); "
                         "not silenced by --report-only")
    ap.add_argument("--max-deadline-overhead", metavar="FRACTION",
                    type=float, nargs="?", const=0.02, default=None,
                    help="fail if deadline solves/sec falls below warm "
                         "solves/sec by more than FRACTION within a service "
                         "document (default 0.02 when the flag is given); "
                         "not silenced by --report-only")
    ap.add_argument("--min-simd-speedup", metavar="FACTOR",
                    type=float, nargs="?", const=1.5, default=None,
                    help="fail if the geometric mean of blocked/simd seconds "
                         "over the single-thread gemm-panel shapes is below "
                         "FACTOR within a kernel document (default 1.5 when "
                         "the flag is given); not silenced by --report-only")
    ap.add_argument("--min-incremental-speedup", metavar="FACTOR",
                    type=float, nargs="?", const=3.0, default=None,
                    help="fail if plan_solve_incremental is not at least "
                         "FACTOR times faster than plan_solve_steady within "
                         "a kernel document (default 3.0 when the flag is "
                         "given); not silenced by --report-only")
    ap.add_argument("--max-refine-overhead", metavar="FRACTION",
                    type=float, nargs="?", const=0.02, default=None,
                    help="fail if plan_solve_refine exceeds plan_solve_steady "
                         "by more than FRACTION within a kernel document "
                         "(default 0.02 when the flag is given); "
                         "not silenced by --report-only")
    args = ap.parse_args()

    if args.max_robustness_overhead is not None \
            and args.max_robustness_overhead < 0:
        ap.error("--max-robustness-overhead must be >= 0")
    if args.min_warm_speedup is not None and args.min_warm_speedup < 1:
        ap.error("--min-warm-speedup must be >= 1")
    if args.max_deadline_overhead is not None \
            and args.max_deadline_overhead < 0:
        ap.error("--max-deadline-overhead must be >= 0")
    if args.min_incremental_speedup is not None \
            and args.min_incremental_speedup < 1:
        ap.error("--min-incremental-speedup must be >= 1")
    if args.max_refine_overhead is not None and args.max_refine_overhead < 0:
        ap.error("--max-refine-overhead must be >= 0")
    if args.min_simd_speedup is not None and args.min_simd_speedup < 1:
        ap.error("--min-simd-speedup must be >= 1")

    if args.validate:
        doc = load(args.validate)
        print(f"bench_check: {args.validate}: valid {doc['schema']}")
        bad = 0
        if args.max_robustness_overhead is not None:
            bad += check_robustness_overhead(doc, args.validate,
                                             args.max_robustness_overhead)
        if args.min_warm_speedup is not None:
            bad += check_warm_speedup(doc, args.validate,
                                      args.min_warm_speedup)
        if args.max_deadline_overhead is not None:
            bad += check_deadline_overhead(doc, args.validate,
                                           args.max_deadline_overhead)
        if args.min_incremental_speedup is not None:
            bad += check_incremental_speedup(doc, args.validate,
                                             args.min_incremental_speedup)
        if args.max_refine_overhead is not None:
            bad += check_refine_overhead(doc, args.validate,
                                         args.max_refine_overhead)
        if args.min_simd_speedup is not None:
            bad += check_simd_speedup(doc, args.validate,
                                      args.min_simd_speedup)
        if bad:
            print(f"bench_check: {bad} intra-document violation(s)")
            return 1
        return 0

    if not args.baseline or not args.current:
        ap.error("need --validate, or both --baseline and --current")
    if args.tolerance < 0:
        ap.error("--tolerance must be >= 0")

    baseline = load(args.baseline)
    current = load(args.current)
    if baseline["schema"] != current["schema"]:
        fail(f"cannot compare {baseline['schema']} against "
             f"{current['schema']}")
    if baseline["bench_scale"] != current["bench_scale"]:
        print(
            "bench_check: note: bench_scale differs "
            f"({baseline['bench_scale']} vs {current['bench_scale']}); "
            "timings are not directly comparable"
        )

    lines, regressions = compare(baseline, current, args.tolerance)
    print(f"bench_check: {args.baseline} vs {args.current} "
          f"(tolerance {args.tolerance:.0%}):")
    for line in lines:
        print(line)

    intra_violations = 0
    if args.max_robustness_overhead is not None:
        intra_violations += check_robustness_overhead(
            current, args.current, args.max_robustness_overhead)
    if args.min_warm_speedup is not None:
        intra_violations += check_warm_speedup(
            current, args.current, args.min_warm_speedup)
    if args.max_deadline_overhead is not None:
        intra_violations += check_deadline_overhead(
            current, args.current, args.max_deadline_overhead)
    if args.min_incremental_speedup is not None:
        intra_violations += check_incremental_speedup(
            current, args.current, args.min_incremental_speedup)
    if args.max_refine_overhead is not None:
        intra_violations += check_refine_overhead(
            current, args.current, args.max_refine_overhead)
    if args.min_simd_speedup is not None:
        intra_violations += check_simd_speedup(
            current, args.current, args.min_simd_speedup)
    if intra_violations:
        print(f"bench_check: {intra_violations} intra-document violation(s)")

    if regressions:
        print(f"bench_check: {regressions} configuration(s) regressed")
        if not args.report_only:
            return 1
    else:
        print("bench_check: no regressions")
    # Intra-document: both rows come from the same run, so --report-only's
    # cross-machine rationale does not apply.
    return 1 if intra_violations else 0


if __name__ == "__main__":
    sys.exit(main())
