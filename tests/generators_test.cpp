#include <gtest/gtest.h>

#include "constraints/helix_gen.hpp"
#include "constraints/ribo_gen.hpp"
#include "molecule/ribo30s.hpp"
#include "molecule/rna_helix.hpp"

namespace phmse::cons {
namespace {

// The paper's Table 1 constraint counts; ours land within 0.2%.
struct Table1Row {
  Index length;
  Index paper_constraints;
};

class HelixConstraintCounts : public ::testing::TestWithParam<Table1Row> {};

INSTANTIATE_TEST_SUITE_P(PaperSizes, HelixConstraintCounts,
                         ::testing::Values(Table1Row{1, 675},
                                           Table1Row{2, 1574},
                                           Table1Row{4, 3294},
                                           Table1Row{8, 6810},
                                           Table1Row{16, 13824}));

TEST_P(HelixConstraintCounts, WithinHalfPercentOfPaper) {
  const auto [length, paper] = GetParam();
  const mol::HelixModel model = mol::build_helix(length);
  const ConstraintSet set = generate_helix_constraints(model);
  const double rel =
      std::abs(static_cast<double>(set.size() - paper)) / paper;
  EXPECT_LT(rel, 0.005) << "got " << set.size() << " want ~" << paper;
  // And the closed-form count matches the generator exactly.
  EXPECT_EQ(set.size(), helix_constraint_count(model.sequence));
}

TEST(HelixGen, AllFiveCategoriesPresent) {
  const mol::HelixModel model = mol::build_helix(2);
  const ConstraintSet set = generate_helix_constraints(model);
  for (int cat = 1; cat <= 5; ++cat) {
    EXPECT_GT(set.count_category(cat), 0) << "category " << cat;
  }
}

TEST(HelixGen, SingleBasePairHasNoJunctions) {
  const mol::HelixModel model = mol::build_helix(1);
  const ConstraintSet set = generate_helix_constraints(model);
  EXPECT_EQ(set.count_category(5), 0);
}

TEST(HelixGen, CategoryCountsMatchClosedForm) {
  // 1 bp of G-C: categories from first principles.
  const mol::HelixModel model = mol::build_helix(1);
  const ConstraintSet set = generate_helix_constraints(model);
  EXPECT_EQ(set.count_category(1), 2 * 66);          // C(12,2) per backbone
  EXPECT_EQ(set.count_category(2), 55 + 28);         // C(11,2) + C(8,2)
  EXPECT_EQ(set.count_category(3), 12 * 11 + 12 * 8);
  EXPECT_EQ(set.count_category(4), 11 * 8 + 144);
}

TEST(HelixGen, AllConstraintsAreDistances) {
  const mol::HelixModel model = mol::build_helix(2);
  const ConstraintSet set = generate_helix_constraints(model);
  for (const Constraint& c : set.all()) {
    EXPECT_EQ(c.kind, Kind::kDistance);
  }
}

TEST(HelixGen, ObservationsNearGroundTruth) {
  const mol::HelixModel model = mol::build_helix(2);
  const ConstraintSet set = generate_helix_constraints(model);
  // RMS residual at ground truth should be on the order of the noise.
  const double rms =
      rms_residual(set, model.topology, model.topology.true_state());
  EXPECT_GT(rms, 0.0);
  EXPECT_LT(rms, 0.5);
}

TEST(HelixGen, IntraBaseNoiseTighterThanJunctionNoise) {
  const mol::HelixModel model = mol::build_helix(2);
  const ConstraintSet set = generate_helix_constraints(model);
  double intra_var = 0.0;
  double junction_var = 0.0;
  for (const Constraint& c : set.all()) {
    if (c.category == 1) intra_var = c.variance;
    if (c.category == 5) junction_var = c.variance;
  }
  EXPECT_LT(intra_var, junction_var);
}

TEST(HelixGen, DeterministicForSameSeed) {
  const mol::HelixModel model = mol::build_helix(2);
  const ConstraintSet a = generate_helix_constraints(model);
  const ConstraintSet b = generate_helix_constraints(model);
  ASSERT_EQ(a.size(), b.size());
  for (Index i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].observed, b[i].observed);
  }
}

TEST(HelixGen, ChemistryAnglesOptIn) {
  const mol::HelixModel model = mol::build_helix(2);
  HelixNoise noise;
  EXPECT_EQ(generate_helix_constraints(model, noise).count_category(6), 0);

  noise.include_chemistry_angles = true;
  const ConstraintSet set = generate_helix_constraints(model, noise);
  // Per backbone of 12 atoms: 10 angles and 9 torsions; 4 backbones.
  EXPECT_EQ(set.count_category(6), 4 * 10);
  EXPECT_EQ(set.count_category(7), 4 * 9);
  for (const Constraint& c : set.all()) {
    if (c.category == 6) EXPECT_EQ(c.kind, Kind::kAngle);
    if (c.category == 7) EXPECT_EQ(c.kind, Kind::kTorsion);
  }
}

TEST(HelixGen, AnchorsAreNonCollinear) {
  // Frame fixing needs three non-collinear anchor points; the generator
  // anchors four atoms spread over both strands.
  const mol::HelixModel model = mol::build_helix(1);
  HelixNoise noise;
  noise.anchor_first_pair = true;
  const ConstraintSet set = generate_helix_constraints(model, noise);
  std::vector<Index> anchored;
  for (const Constraint& c : set.all()) {
    if (c.category == 0 && c.axis == 0) anchored.push_back(c.atoms[0]);
  }
  ASSERT_GE(anchored.size(), 3u);
  const mol::Vec3 a = model.topology.atom(anchored[0]).position;
  const mol::Vec3 b = model.topology.atom(anchored[1]).position;
  const mol::Vec3 c3 = model.topology.atom(anchored[2]).position;
  EXPECT_GT((b - a).cross(c3 - a).norm(), 1.0);
}

TEST(RiboGen, TotalNearPaperScale) {
  const mol::Ribo30sModel model = mol::build_ribo30s();
  const ConstraintSet set = generate_ribo_constraints(model);
  // "about 6500 constraints"
  EXPECT_GE(set.size(), 5800);
  EXPECT_LE(set.size(), 7200);
}

TEST(RiboGen, HasAllCategories) {
  const mol::Ribo30sModel model = mol::build_ribo30s();
  const ConstraintSet set = generate_ribo_constraints(model);
  for (int cat = 1; cat <= 4; ++cat) {
    EXPECT_GT(set.count_category(cat), 0) << "category " << cat;
  }
}

TEST(RiboGen, ProteinAnchorsAreThreePerProtein) {
  const mol::Ribo30sModel model = mol::build_ribo30s();
  const ConstraintSet set = generate_ribo_constraints(model);
  EXPECT_EQ(set.count_category(4), 21 * 3);
}

TEST(RiboGen, IntraSegmentConstraintsStayInSegment) {
  const mol::Ribo30sModel model = mol::build_ribo30s();
  const ConstraintSet set = generate_ribo_constraints(model);
  for (const Constraint& c : set.all()) {
    if (c.category != 1) continue;
    // Both atoms must fall into the same segment.
    const Index a = c.atoms[0];
    const Index b = c.atoms[1];
    bool same = false;
    for (const mol::Segment& s : model.segments) {
      if (a >= s.begin && a < s.end) {
        same = b >= s.begin && b < s.end;
        break;
      }
    }
    EXPECT_TRUE(same);
  }
}

TEST(RiboGen, ConstraintsReferenceValidAtoms) {
  const mol::Ribo30sModel model = mol::build_ribo30s();
  const ConstraintSet set = generate_ribo_constraints(model);
  const auto [lo, hi] = set.atom_span();
  EXPECT_GE(lo, 0);
  EXPECT_LT(hi, model.num_atoms());
}

}  // namespace
}  // namespace phmse::cons
