#include <gtest/gtest.h>

#include "constraints/helix_gen.hpp"
#include "constraints/ribo_gen.hpp"
#include "core/assign.hpp"
#include "molecule/ribo30s.hpp"
#include "molecule/rna_helix.hpp"
#include "support/check.hpp"

namespace phmse::core {
namespace {

TEST(Assign, EveryConstraintLandsExactlyOnce) {
  const mol::HelixModel model = mol::build_helix(4);
  const cons::ConstraintSet set = cons::generate_helix_constraints(model);
  Hierarchy h = build_helix_hierarchy(model);
  const AssignStats stats = assign_constraints(h, set);
  EXPECT_EQ(stats.total, set.size());
  EXPECT_EQ(h.total_constraints(), set.size());
}

TEST(Assign, ConstraintsFitTheirNode) {
  const mol::HelixModel model = mol::build_helix(4);
  const cons::ConstraintSet set = cons::generate_helix_constraints(model);
  Hierarchy h = build_helix_hierarchy(model);
  assign_constraints(h, set);
  h.for_each_post_order([](const HierNode& node) {
    if (node.constraints.empty()) return;
    const auto [lo, hi] = node.constraints.atom_span();
    EXPECT_GE(lo, node.atom_begin);
    EXPECT_LT(hi, node.atom_end);
  });
}

TEST(Assign, ConstraintsAreAtLowestContainingNode) {
  const mol::HelixModel model = mol::build_helix(2);
  const cons::ConstraintSet set = cons::generate_helix_constraints(model);
  Hierarchy h = build_helix_hierarchy(model);
  assign_constraints(h, set);
  // No constraint on an interior node may fit inside one of its children.
  h.for_each_post_order([](const HierNode& node) {
    for (const cons::Constraint& c : node.constraints.all()) {
      Index lo = c.atoms[0];
      Index hi = lo;
      for (Index k = 0; k < cons::arity(c.kind); ++k) {
        lo = std::min(lo, c.atoms[static_cast<std::size_t>(k)]);
        hi = std::max(hi, c.atoms[static_cast<std::size_t>(k)]);
      }
      for (const auto& child : node.children) {
        EXPECT_FALSE(lo >= child->atom_begin && hi < child->atom_end)
            << "constraint should have been pushed into " << child->name;
      }
    }
  });
}

TEST(Assign, HelixCategoriesLandAtTheirFig2Levels) {
  const mol::HelixModel model = mol::build_helix(4);
  const cons::ConstraintSet set = cons::generate_helix_constraints(model);
  Hierarchy h = build_helix_hierarchy(model);
  assign_constraints(h, set);
  h.for_each_post_order([](const HierNode& node) {
    for (const cons::Constraint& c : node.constraints.all()) {
      if (c.category == 1 || c.category == 2) {
        // Backbone/sidechain-internal distances must reach leaves.
        EXPECT_TRUE(node.is_leaf()) << node.name;
      } else if (c.category == 3) {
        // Base level: node named .../base1 or .../base2 (two leaf children).
        EXPECT_EQ(node.children.size(), 2u);
        EXPECT_TRUE(node.children[0]->is_leaf());
      }
    }
  });
}

TEST(Assign, MostHelixConstraintsAreLocalized) {
  // The "optimistic scenario" of Section 3.1: most observations live deep
  // in the tree, not at the root.
  const mol::HelixModel model = mol::build_helix(8);
  const cons::ConstraintSet set = cons::generate_helix_constraints(model);
  Hierarchy h = build_helix_hierarchy(model);
  const AssignStats stats = assign_constraints(h, set);
  // Categories 1-2 (~1/3 of the set) land on leaves; 3 and 4 land on base
  // and pair nodes (the bottom three levels).  Only the widest junction
  // constraints climb higher, and very few reach the root.
  EXPECT_GT(stats.on_leaves, set.size() / 5);
  const Index bottom_three = stats.per_level[stats.per_level.size() - 1] +
                             stats.per_level[stats.per_level.size() - 2] +
                             stats.per_level[stats.per_level.size() - 3];
  EXPECT_GT(bottom_three, (3 * set.size()) / 4);
  EXPECT_LT(stats.per_level[0], set.size() / 10);  // few at the root
}

TEST(Assign, FlatHierarchyTakesEverythingAtRoot) {
  const mol::HelixModel model = mol::build_helix(2);
  const cons::ConstraintSet set = cons::generate_helix_constraints(model);
  Hierarchy h = build_flat_hierarchy(model.num_atoms());
  const AssignStats stats = assign_constraints(h, set);
  EXPECT_EQ(stats.per_level[0], set.size());
  EXPECT_EQ(h.root().constraints.size(), set.size());
}

TEST(Assign, RiboConstraintsMostlyInsideDomains) {
  const mol::Ribo30sModel model = mol::build_ribo30s();
  const cons::ConstraintSet set = cons::generate_ribo_constraints(model);
  Hierarchy h = build_ribo_hierarchy(model);
  const AssignStats stats = assign_constraints(h, set);
  EXPECT_EQ(stats.total, set.size());
  // Intra-segment constraints (the majority) land on segment leaves.
  EXPECT_GT(stats.on_leaves, set.size() / 3);
}

TEST(Assign, OutOfRangeConstraintThrows) {
  Hierarchy h = build_flat_hierarchy(4);
  cons::ConstraintSet set;
  cons::Constraint c;
  c.kind = cons::Kind::kDistance;
  c.atoms = {0, 9, 0, 0};
  set.add(c);
  EXPECT_THROW(assign_constraints(h, set), phmse::Error);
}

TEST(Assign, ClearRemovesEverything) {
  const mol::HelixModel model = mol::build_helix(2);
  const cons::ConstraintSet set = cons::generate_helix_constraints(model);
  Hierarchy h = build_helix_hierarchy(model);
  assign_constraints(h, set);
  EXPECT_GT(h.total_constraints(), 0);
  clear_constraints(h);
  EXPECT_EQ(h.total_constraints(), 0);
}

TEST(Assign, ReassignmentAppends) {
  const mol::HelixModel model = mol::build_helix(1);
  const cons::ConstraintSet set = cons::generate_helix_constraints(model);
  Hierarchy h = build_helix_hierarchy(model);
  assign_constraints(h, set);
  assign_constraints(h, set);
  EXPECT_EQ(h.total_constraints(), 2 * set.size());
}

}  // namespace
}  // namespace phmse::core
