#include <gtest/gtest.h>

#include <cmath>

#include "molecule/geom.hpp"

namespace phmse::mol {
namespace {

TEST(Vec3, ArithmeticWorks) {
  const Vec3 a{1, 2, 3};
  const Vec3 b{4, 5, 6};
  const Vec3 sum = a + b;
  EXPECT_DOUBLE_EQ(sum.x, 5.0);
  EXPECT_DOUBLE_EQ(sum.y, 7.0);
  EXPECT_DOUBLE_EQ(sum.z, 9.0);
  const Vec3 diff = b - a;
  EXPECT_DOUBLE_EQ(diff.x, 3.0);
  const Vec3 scaled = a * 2.0;
  EXPECT_DOUBLE_EQ(scaled.z, 6.0);
}

TEST(Vec3, DotAndCross) {
  const Vec3 x{1, 0, 0};
  const Vec3 y{0, 1, 0};
  EXPECT_DOUBLE_EQ(x.dot(y), 0.0);
  const Vec3 z = x.cross(y);
  EXPECT_DOUBLE_EQ(z.x, 0.0);
  EXPECT_DOUBLE_EQ(z.y, 0.0);
  EXPECT_DOUBLE_EQ(z.z, 1.0);
}

TEST(Vec3, NormOfPythagoreanTriple) {
  EXPECT_DOUBLE_EQ((Vec3{3, 4, 0}).norm(), 5.0);
  EXPECT_DOUBLE_EQ((Vec3{3, 4, 0}).norm2(), 25.0);
}

TEST(Distance, SimpleCases) {
  EXPECT_DOUBLE_EQ(distance({0, 0, 0}, {1, 0, 0}), 1.0);
  EXPECT_DOUBLE_EQ(distance({1, 2, 3}, {1, 2, 3}), 0.0);
}

TEST(BondAngle, RightAngle) {
  EXPECT_NEAR(bond_angle({1, 0, 0}, {0, 0, 0}, {0, 1, 0}), M_PI / 2.0, 1e-12);
}

TEST(BondAngle, StraightAndZero) {
  EXPECT_NEAR(bond_angle({1, 0, 0}, {0, 0, 0}, {-1, 0, 0}), M_PI, 1e-12);
  EXPECT_NEAR(bond_angle({1, 0, 0}, {0, 0, 0}, {2, 0, 0}), 0.0, 1e-12);
}

TEST(BondAngle, DegenerateVertexIsSafe) {
  EXPECT_DOUBLE_EQ(bond_angle({0, 0, 0}, {0, 0, 0}, {1, 0, 0}), 0.0);
}

TEST(Dihedral, KnownConfigurations) {
  // cis: 0; trans: pi; +-90 degrees for perpendicular.
  EXPECT_NEAR(dihedral({1, 1, 0}, {1, 0, 0}, {-1, 0, 0}, {-1, 1, 0}), 0.0,
              1e-12);
  EXPECT_NEAR(std::abs(dihedral({1, 1, 0}, {1, 0, 0}, {-1, 0, 0},
                                {-1, -1, 0})),
              M_PI, 1e-12);
  EXPECT_NEAR(dihedral({1, 1, 0}, {1, 0, 0}, {-1, 0, 0}, {-1, 0, 1}),
              -M_PI / 2.0, 1e-12);
}

TEST(Dihedral, SignFlipsWithMirror) {
  const double d1 = dihedral({1, 1, 0}, {1, 0, 0}, {-1, 0, 0}, {-1, 0.5, 0.5});
  const double d2 =
      dihedral({1, 1, 0}, {1, 0, 0}, {-1, 0, 0}, {-1, 0.5, -0.5});
  EXPECT_NEAR(d1, -d2, 1e-12);
  EXPECT_NE(d1, 0.0);
}

}  // namespace
}  // namespace phmse::mol
