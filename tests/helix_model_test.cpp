#include <gtest/gtest.h>

#include "molecule/rna_helix.hpp"
#include "support/check.hpp"

namespace phmse::mol {
namespace {

// Table 1 of the paper: helices of 1, 2, 4, 8 and 16 base pairs have 43,
// 86, 170, 340 and 680 atoms.  The "GCAU" sequence reproduces this exactly.
class HelixAtomCounts
    : public ::testing::TestWithParam<std::pair<Index, Index>> {};

INSTANTIATE_TEST_SUITE_P(PaperSizes, HelixAtomCounts,
                         ::testing::Values(std::pair<Index, Index>{1, 43},
                                           std::pair<Index, Index>{2, 86},
                                           std::pair<Index, Index>{4, 170},
                                           std::pair<Index, Index>{8, 340},
                                           std::pair<Index, Index>{16, 680}));

TEST_P(HelixAtomCounts, MatchesPaperTable1) {
  const auto [length, atoms] = GetParam();
  const HelixModel model = build_helix(length);
  EXPECT_EQ(model.num_atoms(), atoms);
  EXPECT_EQ(model.num_pairs(), length);
}

TEST(HelixModel, SidechainSizesFollowBaseType) {
  EXPECT_EQ(sidechain_atoms('A'), 10);
  EXPECT_EQ(sidechain_atoms('C'), 8);
  EXPECT_EQ(sidechain_atoms('G'), 11);
  EXPECT_EQ(sidechain_atoms('U'), 8);
  EXPECT_THROW(sidechain_atoms('X'), phmse::Error);
}

TEST(HelixModel, WatsonCrickComplement) {
  EXPECT_EQ(complement('A'), 'U');
  EXPECT_EQ(complement('U'), 'A');
  EXPECT_EQ(complement('G'), 'C');
  EXPECT_EQ(complement('C'), 'G');
}

TEST(HelixModel, AtomRangesAreContiguousAndOrdered) {
  const HelixModel model = build_helix(4);
  Index cursor = 0;
  for (const BasePair& pair : model.pairs) {
    for (const BaseGroup* base : {&pair.strand1, &pair.strand2}) {
      EXPECT_EQ(base->backbone_begin, cursor);
      EXPECT_EQ(base->backbone_end - base->backbone_begin, kBackboneAtoms);
      EXPECT_EQ(base->sidechain_begin, base->backbone_end);
      cursor = base->sidechain_end;
    }
  }
  EXPECT_EQ(cursor, model.num_atoms());
}

TEST(HelixModel, StrandsAreComplementary) {
  const HelixModel model = build_helix(4);
  for (const BasePair& pair : model.pairs) {
    EXPECT_EQ(pair.strand2.type, complement(pair.strand1.type));
  }
  EXPECT_EQ(model.sequence, "GCAU");
}

TEST(HelixModel, HelixRisesAlongZ) {
  const HelixModel model = build_helix(8, /*jitter=*/0.0);
  // Mean z of each base pair must increase monotonically.
  double prev = -1e9;
  for (const BasePair& pair : model.pairs) {
    double z = 0.0;
    Index n = 0;
    for (Index a = pair.begin(); a < pair.end(); ++a) {
      z += model.topology.atom(a).position.z;
      ++n;
    }
    z /= static_cast<double>(n);
    EXPECT_GT(z, prev);
    prev = z;
  }
}

TEST(HelixModel, PairedBasesAreClose) {
  const HelixModel model = build_helix(4, 0.0);
  for (const BasePair& pair : model.pairs) {
    // Sidechains face each other: min cross-pair sidechain distance should
    // be much smaller than the helix diameter.
    double min_d = 1e9;
    for (Index i = pair.strand1.sidechain_begin;
         i < pair.strand1.sidechain_end; ++i) {
      for (Index j = pair.strand2.sidechain_begin;
           j < pair.strand2.sidechain_end; ++j) {
        min_d = std::min(min_d, distance(model.topology.atom(i).position,
                                         model.topology.atom(j).position));
      }
    }
    EXPECT_LT(min_d, 8.0);
  }
}

TEST(HelixModel, DeterministicForSameLength) {
  const HelixModel a = build_helix(2);
  const HelixModel b = build_helix(2);
  ASSERT_EQ(a.num_atoms(), b.num_atoms());
  for (Index i = 0; i < a.num_atoms(); ++i) {
    EXPECT_DOUBLE_EQ(a.topology.atom(i).position.x,
                     b.topology.atom(i).position.x);
  }
}

TEST(HelixModel, CustomSequenceRespected) {
  const HelixModel model = build_helix_with_sequence("AAG");
  EXPECT_EQ(model.num_pairs(), 3);
  EXPECT_EQ(model.pairs[0].strand1.type, 'A');
  EXPECT_EQ(model.pairs[2].strand1.type, 'G');
  EXPECT_EQ(model.pairs[2].strand2.type, 'C');
  // 2x(12+10+12+8) + (12+11+12+8) = 84 + 84 + 43
  EXPECT_EQ(model.num_atoms(), 42 + 42 + 43);
}

TEST(HelixModel, RejectsEmptyAndBadInput) {
  EXPECT_THROW(build_helix(0), phmse::Error);
  EXPECT_THROW(build_helix_with_sequence(""), phmse::Error);
  EXPECT_THROW(build_helix_with_sequence("GX"), phmse::Error);
}

}  // namespace
}  // namespace phmse::mol
