#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "constraints/constraint.hpp"
#include "constraints/set.hpp"
#include "molecule/topology.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace phmse::cons {
namespace {

using mol::Vec3;

std::array<Vec3, 4> random_positions(Rng& rng, double scale = 3.0) {
  std::array<Vec3, 4> pos;
  for (auto& p : pos) {
    p = {rng.gaussian(0.0, scale), rng.gaussian(0.0, scale),
         rng.gaussian(0.0, scale)};
  }
  return pos;
}

// Central finite-difference gradient of the measurement function.
Gradient fd_gradient(const Constraint& c, std::array<Vec3, 4> pos) {
  constexpr double h = 1e-6;
  Gradient g;
  for (Index k = 0; k < arity(c.kind); ++k) {
    for (int axis = 0; axis < 3; ++axis) {
      auto& coord = axis == 0 ? pos[static_cast<std::size_t>(k)].x
                    : axis == 1 ? pos[static_cast<std::size_t>(k)].y
                                : pos[static_cast<std::size_t>(k)].z;
      const double saved = coord;
      coord = saved + h;
      const double plus = evaluate(c, pos);
      coord = saved - h;
      const double minus = evaluate(c, pos);
      coord = saved;
      double d = (plus - minus) / (2.0 * h);
      auto& out = g.d[static_cast<std::size_t>(k)];
      (axis == 0 ? out.x : axis == 1 ? out.y : out.z) = d;
    }
  }
  return g;
}

void expect_gradient_matches_fd(const Constraint& c,
                                const std::array<Vec3, 4>& pos,
                                double tol = 1e-5) {
  Gradient analytic;
  evaluate_with_gradient(c, pos, analytic);
  const Gradient fd = fd_gradient(c, pos);
  for (Index k = 0; k < arity(c.kind); ++k) {
    const auto& a = analytic.d[static_cast<std::size_t>(k)];
    const auto& f = fd.d[static_cast<std::size_t>(k)];
    EXPECT_NEAR(a.x, f.x, tol) << "atom " << k << " x";
    EXPECT_NEAR(a.y, f.y, tol) << "atom " << k << " y";
    EXPECT_NEAR(a.z, f.z, tol) << "atom " << k << " z";
  }
}

TEST(ConstraintArity, MatchesKind) {
  EXPECT_EQ(arity(Kind::kDistance), 2);
  EXPECT_EQ(arity(Kind::kAngle), 3);
  EXPECT_EQ(arity(Kind::kTorsion), 4);
  EXPECT_EQ(arity(Kind::kPosition), 1);
}

TEST(DistanceConstraint, EvaluatesEuclideanDistance) {
  Constraint c;
  c.kind = Kind::kDistance;
  std::array<Vec3, 4> pos{};
  pos[0] = {0, 0, 0};
  pos[1] = {3, 4, 0};
  EXPECT_DOUBLE_EQ(evaluate(c, pos), 5.0);
}

TEST(DistanceConstraint, GradientIsUnitDirection) {
  Constraint c;
  c.kind = Kind::kDistance;
  std::array<Vec3, 4> pos{};
  pos[0] = {2, 0, 0};
  pos[1] = {0, 0, 0};
  Gradient g;
  evaluate_with_gradient(c, pos, g);
  EXPECT_DOUBLE_EQ(g.d[0].x, 1.0);
  EXPECT_DOUBLE_EQ(g.d[1].x, -1.0);
  EXPECT_DOUBLE_EQ(g.d[0].y, 0.0);
}

TEST(DistanceConstraint, CoincidentAtomsYieldZeroGradient) {
  Constraint c;
  c.kind = Kind::kDistance;
  std::array<Vec3, 4> pos{};  // all at origin
  Gradient g;
  const double v = evaluate_with_gradient(c, pos, g);
  EXPECT_DOUBLE_EQ(v, 0.0);
  EXPECT_DOUBLE_EQ(g.d[0].x, 0.0);
  EXPECT_DOUBLE_EQ(g.d[1].x, 0.0);
}

TEST(DegenerateGeometry, EveryKindIsTotalOnCoincidentAtoms) {
  // All four atoms at the same point: every measurement function follows
  // the straight-angle convention — finite value, zero gradient — instead
  // of dividing by a zero norm.
  for (const Kind kind :
       {Kind::kDistance, Kind::kAngle, Kind::kTorsion, Kind::kPosition}) {
    Constraint c;
    c.kind = kind;
    std::array<Vec3, 4> pos;
    pos.fill({1.25, -0.5, 3.0});
    Gradient g;
    const double v = evaluate_with_gradient(c, pos, g);
    EXPECT_TRUE(std::isfinite(v)) << "kind " << static_cast<int>(kind);
    if (kind != Kind::kPosition) {  // position's gradient is exactly e_axis
      for (Index k = 0; k < arity(kind); ++k) {
        const Vec3& d = g.d[static_cast<std::size_t>(k)];
        EXPECT_EQ(d.x, 0.0);
        EXPECT_EQ(d.y, 0.0);
        EXPECT_EQ(d.z, 0.0);
      }
    }
  }
}

TEST(DegenerateGeometry, CollinearTorsionYieldsZeroGradient) {
  Constraint c;
  c.kind = Kind::kTorsion;
  std::array<Vec3, 4> pos{};
  for (int i = 0; i < 4; ++i) pos[static_cast<std::size_t>(i)] = {1.0 * i, 0, 0};
  Gradient g;
  const double v = evaluate_with_gradient(c, pos, g);
  EXPECT_TRUE(std::isfinite(v));
  for (const Vec3& d : g.d) {
    EXPECT_EQ(d.x, 0.0);
    EXPECT_EQ(d.y, 0.0);
    EXPECT_EQ(d.z, 0.0);
  }
}

TEST(DegenerateGeometry, NonFinitePositionsNeverLeakIntoValueOrGradient) {
  // NaN/inf coordinates fail every `norm < epsilon` guard (NaN compares
  // false), so without the centralized guard they would flow through the
  // arithmetic into the residual and Jacobian.  The evaluators must return
  // a finite value and finite (zero) gradients instead; BatchUpdater's
  // validation separately reports the poisoned state.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  Rng rng(55);
  for (const Kind kind :
       {Kind::kDistance, Kind::kAngle, Kind::kTorsion, Kind::kPosition}) {
    for (const double bad : {nan, inf, -inf}) {
      Constraint c;
      c.kind = kind;
      std::array<Vec3, 4> pos = random_positions(rng);
      pos[0].y = bad;  // atom 0 participates in every kind
      Gradient g;
      const double v = evaluate_with_gradient(c, pos, g);
      EXPECT_TRUE(std::isfinite(v))
          << "kind " << static_cast<int>(kind) << " bad " << bad;
      for (Index k = 0; k < arity(kind); ++k) {
        const Vec3& d = g.d[static_cast<std::size_t>(k)];
        EXPECT_TRUE(std::isfinite(d.x) && std::isfinite(d.y) &&
                    std::isfinite(d.z))
            << "kind " << static_cast<int>(kind) << " atom " << k;
      }
    }
  }
}

TEST(AngleConstraint, EvaluatesKnownAngles) {
  Constraint c;
  c.kind = Kind::kAngle;
  std::array<Vec3, 4> pos{};
  pos[0] = {1, 0, 0};
  pos[1] = {0, 0, 0};
  pos[2] = {0, 1, 0};
  EXPECT_NEAR(evaluate(c, pos), M_PI / 2.0, 1e-12);
}

TEST(PositionConstraint, ObservesSelectedAxis) {
  Constraint c;
  c.kind = Kind::kPosition;
  std::array<Vec3, 4> pos{};
  pos[0] = {1.5, 2.5, 3.5};
  for (int axis = 0; axis < 3; ++axis) {
    c.axis = axis;
    EXPECT_DOUBLE_EQ(evaluate(c, pos), axis == 0 ? 1.5 : axis == 1 ? 2.5 : 3.5);
    Gradient g;
    evaluate_with_gradient(c, pos, g);
    EXPECT_DOUBLE_EQ(axis == 0 ? g.d[0].x : axis == 1 ? g.d[0].y : g.d[0].z,
                     1.0);
  }
}

// Property test: analytic gradients match finite differences on random
// geometries, for every constraint kind.
class GradientFd : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Seeds, GradientFd, ::testing::Range(0, 20));

TEST_P(GradientFd, DistanceGradient) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 100);
  Constraint c;
  c.kind = Kind::kDistance;
  expect_gradient_matches_fd(c, random_positions(rng));
}

TEST_P(GradientFd, AngleGradient) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 200);
  Constraint c;
  c.kind = Kind::kAngle;
  expect_gradient_matches_fd(c, random_positions(rng));
}

TEST_P(GradientFd, TorsionGradient) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 300);
  Constraint c;
  c.kind = Kind::kTorsion;
  expect_gradient_matches_fd(c, random_positions(rng), 1e-4);
}

TEST_P(GradientFd, PositionGradient) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 400);
  Constraint c;
  c.kind = Kind::kPosition;
  c.axis = GetParam() % 3;
  expect_gradient_matches_fd(c, random_positions(rng));
}

// Translation invariance: distance/angle/torsion values are unchanged when
// all atoms are shifted together (the gauge freedom the prior regularizes).
TEST_P(GradientFd, MeasurementsAreTranslationInvariant) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 500);
  const Vec3 shift{rng.gaussian(), rng.gaussian(), rng.gaussian()};
  for (Kind kind : {Kind::kDistance, Kind::kAngle, Kind::kTorsion}) {
    Constraint c;
    c.kind = kind;
    auto pos = random_positions(rng);
    const double v0 = evaluate(c, pos);
    for (auto& p : pos) p += shift;
    EXPECT_NEAR(evaluate(c, pos), v0, 1e-9);
  }
}

TEST(ConstraintSet, AtomSpanTracksExtremes) {
  ConstraintSet set;
  EXPECT_EQ(set.atom_span(), (std::pair<Index, Index>{0, -1}));
  Constraint c;
  c.kind = Kind::kDistance;
  c.atoms = {5, 9, 0, 0};
  set.add(c);
  c.atoms = {2, 7, 0, 0};
  set.add(c);
  EXPECT_EQ(set.atom_span(), (std::pair<Index, Index>{2, 9}));
}

TEST(ConstraintSet, AppendConcatenates) {
  ConstraintSet a;
  ConstraintSet b;
  Constraint c;
  a.add(c);
  b.add(c);
  b.add(c);
  a.append(b);
  EXPECT_EQ(a.size(), 3);
}

TEST(ConstraintSet, CountCategory) {
  ConstraintSet set;
  Constraint c;
  c.category = 1;
  set.add(c);
  set.add(c);
  c.category = 2;
  set.add(c);
  EXPECT_EQ(set.count_category(1), 2);
  EXPECT_EQ(set.count_category(2), 1);
  EXPECT_EQ(set.count_category(3), 0);
}

TEST(MakeObserved, ObservationNearTruth) {
  mol::Topology topo;
  topo.add_atom("a", {0, 0, 0});
  topo.add_atom("b", {10, 0, 0});
  Rng rng(7);
  const Constraint c =
      make_observed(Kind::kDistance, {0, 1, 0, 0}, topo, 0.01, rng, 3);
  EXPECT_NEAR(c.observed, 10.0, 0.1);
  EXPECT_DOUBLE_EQ(c.variance, 0.0001);
  EXPECT_EQ(c.category, 3);
}

TEST(MakeObserved, RejectsNonPositiveSigma) {
  mol::Topology topo;
  topo.add_atom("a", {0, 0, 0});
  Rng rng(8);
  EXPECT_THROW(
      make_observed(Kind::kPosition, {0, 0, 0, 0}, topo, 0.0, rng),
      phmse::Error);
}

TEST(RmsResidual, ZeroWhenObservationsExact) {
  mol::Topology topo;
  topo.add_atom("a", {0, 0, 0});
  topo.add_atom("b", {2, 0, 0});
  ConstraintSet set;
  Constraint c;
  c.kind = Kind::kDistance;
  c.atoms = {0, 1, 0, 0};
  c.observed = 2.0;
  set.add(c);
  EXPECT_DOUBLE_EQ(rms_residual(set, topo, topo.true_state()), 0.0);

  auto x = topo.true_state();
  x[3] = 3.0;  // stretch to distance 3
  EXPECT_NEAR(rms_residual(set, topo, x), 1.0, 1e-12);
}

}  // namespace
}  // namespace phmse::cons
