#include <gtest/gtest.h>

#include "constraints/helix_gen.hpp"
#include "constraints/ribo_gen.hpp"
#include "core/assign.hpp"
#include "core/schedule.hpp"
#include "core/work_model.hpp"
#include "molecule/ribo30s.hpp"
#include "molecule/rna_helix.hpp"
#include "support/check.hpp"

namespace phmse::core {
namespace {

Hierarchy prepared_helix(Index length) {
  const mol::HelixModel model = mol::build_helix(length);
  const cons::ConstraintSet set = cons::generate_helix_constraints(model);
  Hierarchy h = build_helix_hierarchy(model);
  assign_constraints(h, set);
  estimate_work(h, WorkModel{}, 16);
  return h;
}

class ScheduleProcs : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(ProcessorCounts, ScheduleProcs,
                         ::testing::Values(1, 2, 3, 4, 6, 8, 12, 16, 20, 32));

TEST_P(ScheduleProcs, HelixScheduleIsValid) {
  Hierarchy h = prepared_helix(4);
  assign_processors(h, GetParam());
  EXPECT_NO_THROW(validate_schedule(h));
  EXPECT_EQ(h.root().proc_first, 0);
  EXPECT_EQ(h.root().proc_count, GetParam());
}

TEST_P(ScheduleProcs, EveryNodeHasAtLeastOneProcessor) {
  Hierarchy h = prepared_helix(4);
  assign_processors(h, GetParam());
  h.for_each_post_order([&](const HierNode& node) {
    EXPECT_GE(node.proc_count, 1);
    EXPECT_GE(node.proc_first, 0);
    EXPECT_LE(node.proc_first + node.proc_count, GetParam());
  });
}

TEST(Schedule, PowerOfTwoHelixSplitsEvenly) {
  Hierarchy h = prepared_helix(4);
  assign_processors(h, 8);
  // The root has two equal-work sub-helices: 4 processors each.
  ASSERT_EQ(h.root().children.size(), 2u);
  EXPECT_EQ(h.root().children[0]->proc_count, 4);
  EXPECT_EQ(h.root().children[1]->proc_count, 4);
}

TEST(Schedule, OddProcessorCountForcesImbalance) {
  // The static-scheduling weakness the paper reports: with 2 equal subtrees
  // and 3 processors, one side gets 1 and the other 2.
  Hierarchy h = prepared_helix(4);
  assign_processors(h, 3);
  ASSERT_EQ(h.root().children.size(), 2u);
  const int c0 = h.root().children[0]->proc_count;
  const int c1 = h.root().children[1]->proc_count;
  EXPECT_EQ(c0 + c1, 3);
  EXPECT_EQ(std::abs(c0 - c1), 1);
}

TEST(Schedule, SingleProcessorSharedByAll) {
  Hierarchy h = prepared_helix(2);
  assign_processors(h, 1);
  h.for_each_post_order([](const HierNode& node) {
    EXPECT_EQ(node.proc_first, 0);
    EXPECT_EQ(node.proc_count, 1);
  });
}

TEST(Schedule, MoreProcessorsThanLeavesStillValid) {
  Hierarchy h = prepared_helix(1);  // 4 leaves
  assign_processors(h, 32);
  validate_schedule(h);
  // All 32 processors must be covered by the root.
  EXPECT_EQ(h.root().proc_count, 32);
}

TEST(Schedule, RiboHighBranchingDividesNearEvenly) {
  const mol::Ribo30sModel model = mol::build_ribo30s();
  const cons::ConstraintSet set = cons::generate_ribo_constraints(model);
  Hierarchy h = build_ribo_hierarchy(model);
  assign_constraints(h, set);
  estimate_work(h, WorkModel{}, 16);
  assign_processors(h, 12);
  validate_schedule(h);

  // The domains' processor counts should roughly track their work share.
  const double total = h.root().subtree_work;
  for (const auto& domain : h.root().children) {
    const double share = domain->subtree_work / total;
    const double procs = static_cast<double>(domain->proc_count) / 12.0;
    EXPECT_NEAR(procs, share, 0.25) << domain->name;
  }
}

TEST(Schedule, WorkHeavySubtreeGetsMoreProcessors) {
  // Hand-built tree: one child carries 3x the work of the other.
  auto root = std::make_unique<HierNode>();
  root->name = "root";
  root->atom_begin = 0;
  root->atom_end = 10;
  auto light = std::make_unique<HierNode>();
  light->name = "light";
  light->atom_begin = 0;
  light->atom_end = 5;
  light->own_work = light->subtree_work = 1.0;
  auto heavy = std::make_unique<HierNode>();
  heavy->name = "heavy";
  heavy->atom_begin = 5;
  heavy->atom_end = 10;
  heavy->own_work = heavy->subtree_work = 3.0;
  root->children.push_back(std::move(light));
  root->children.push_back(std::move(heavy));
  root->subtree_work = 4.0;
  Hierarchy h(std::move(root));

  assign_processors(h, 8);
  validate_schedule(h);
  const HierNode* heavy_node = h.root().children[1].get();
  if (heavy_node->name != "heavy") heavy_node = h.root().children[0].get();
  EXPECT_EQ(heavy_node->proc_count, 6);
}

TEST(Schedule, DescribeMentionsProcessorRanges) {
  Hierarchy h = prepared_helix(1);
  assign_processors(h, 4);
  const std::string d = describe_schedule(h);
  EXPECT_NE(d.find("procs=[0,4)"), std::string::npos);
}

TEST(Schedule, RejectsNonPositiveProcessorCount) {
  Hierarchy h = prepared_helix(1);
  EXPECT_THROW(assign_processors(h, 0), phmse::Error);
}

}  // namespace
}  // namespace phmse::core
