#include <gtest/gtest.h>

#include "molecule/ribo30s.hpp"
#include "support/check.hpp"

namespace phmse::mol {
namespace {

TEST(Ribo30s, DefaultSizeMatchesPaperScale) {
  const Ribo30sModel model = build_ribo30s();
  // "about 900 pseudo-atoms" — the default options land at 898.
  EXPECT_GE(model.num_atoms(), 850);
  EXPECT_LE(model.num_atoms(), 950);
  EXPECT_EQ(model.num_segments(), 65 + 65 + 21);
}

TEST(Ribo30s, SegmentKindsCounted) {
  const Ribo30sModel model = build_ribo30s();
  Index helices = 0;
  Index coils = 0;
  Index proteins = 0;
  for (const Segment& s : model.segments) {
    switch (s.kind) {
      case Segment::Kind::kHelix: ++helices; break;
      case Segment::Kind::kCoil: ++coils; break;
      case Segment::Kind::kProtein: ++proteins; break;
    }
  }
  EXPECT_EQ(helices, 65);
  EXPECT_EQ(coils, 65);
  EXPECT_EQ(proteins, 21);
}

TEST(Ribo30s, SegmentsTileTheTopology) {
  const Ribo30sModel model = build_ribo30s();
  Index cursor = 0;
  for (const Segment& s : model.segments) {
    EXPECT_EQ(s.begin, cursor);
    EXPECT_GT(s.size(), 0);
    cursor = s.end;
  }
  EXPECT_EQ(cursor, model.num_atoms());
}

TEST(Ribo30s, SegmentsOrderedByDomain) {
  const Ribo30sModel model = build_ribo30s();
  int prev = 0;
  for (const Segment& s : model.segments) {
    EXPECT_GE(s.domain, prev);
    EXPECT_LT(s.domain, model.num_domains);
    prev = s.domain;
  }
}

TEST(Ribo30s, DomainSegmentsReturnsMatchingRange) {
  const Ribo30sModel model = build_ribo30s();
  Index covered = 0;
  for (int d = 0; d < model.num_domains; ++d) {
    const auto [lo, hi] = model.domain_segments(d);
    for (Index s = lo; s < hi; ++s) {
      EXPECT_EQ(model.segments[static_cast<std::size_t>(s)].domain, d);
    }
    covered += hi - lo;
  }
  EXPECT_EQ(covered, model.num_segments());
}

TEST(Ribo30s, EveryDomainNonEmptyByDefault) {
  const Ribo30sModel model = build_ribo30s();
  for (int d = 0; d < model.num_domains; ++d) {
    const auto [lo, hi] = model.domain_segments(d);
    EXPECT_GT(hi - lo, 0) << "domain " << d;
  }
}

TEST(Ribo30s, ProteinsAreSinglePseudoAtoms) {
  const Ribo30sModel model = build_ribo30s();
  for (const Segment& s : model.segments) {
    if (s.kind == Segment::Kind::kProtein) EXPECT_EQ(s.size(), 1);
  }
}

TEST(Ribo30s, AtomsStayNearTheirSegmentCenter) {
  const Ribo30sModel model = build_ribo30s();
  for (const Segment& s : model.segments) {
    for (Index a = s.begin; a < s.end; ++a) {
      EXPECT_LT(distance(model.topology.atom(a).position, s.center), 20.0);
    }
  }
}

TEST(Ribo30s, DeterministicForSameSeed) {
  const Ribo30sModel a = build_ribo30s();
  const Ribo30sModel b = build_ribo30s();
  ASSERT_EQ(a.num_atoms(), b.num_atoms());
  for (Index i = 0; i < a.num_atoms(); ++i) {
    EXPECT_DOUBLE_EQ(a.topology.atom(i).position.x,
                     b.topology.atom(i).position.x);
  }
}

TEST(Ribo30s, CustomOptionsRespected) {
  Ribo30sOptions opts;
  opts.num_helices = 4;
  opts.num_coils = 3;
  opts.num_proteins = 2;
  opts.num_domains = 2;
  const Ribo30sModel model = build_ribo30s(opts);
  EXPECT_EQ(model.num_segments(), 9);
  EXPECT_EQ(model.num_domains, 2);
}

}  // namespace
}  // namespace phmse::mol
