// Deadline and cooperative-cancellation tests (DESIGN.md §13).
//
// The contract under test: a solve armed with a deadline or cancel token
// aborts at a batch/node boundary, the abort is TRANSACTIONAL — the plan
// stays reusable and the next exact solve is bitwise identical to one on a
// plan that was never cancelled — and a too-tight budget can (opt-in)
// degrade to the low-rank root update instead of failing.  The fault
// injector's kStall kind makes the timing deterministic where the build
// enables it; every timing-dependent assertion here is written to hold
// whether or not the deadline actually fired, so no test is flaky on a
// fast machine.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <limits>
#include <thread>
#include <vector>

#include "constraints/helix_gen.hpp"
#include "engine/engine.hpp"
#include "estimation/fault_injection.hpp"
#include "molecule/rna_helix.hpp"
#include "parallel/cancel.hpp"
#include "parallel/thread_pool.hpp"
#include "service/server.hpp"
#include "simarch/sim_context.hpp"
#include "support/rng.hpp"

namespace phmse {
namespace {

TEST(CancelToken, FlagIsStickyUntilReset) {
  par::CancelToken token;
  EXPECT_FALSE(token.stop_requested());
  EXPECT_FALSE(token.cancel_requested());
  token.cancel();
  EXPECT_TRUE(token.cancel_requested());
  EXPECT_TRUE(token.stop_requested());
  EXPECT_FALSE(token.expired());  // flag, not clock
  token.reset();
  EXPECT_FALSE(token.stop_requested());
}

TEST(CancelToken, DeadlineClockExpires) {
  par::CancelToken token;
  EXPECT_EQ(token.remaining_seconds(),
            std::numeric_limits<double>::infinity());
  token.set_deadline_after(3600.0);
  EXPECT_FALSE(token.expired());
  EXPECT_GT(token.remaining_seconds(), 3000.0);
  token.set_deadline_after(-1.0);  // already past
  EXPECT_TRUE(token.expired());
  EXPECT_TRUE(token.stop_requested());
  EXPECT_FALSE(token.cancel_requested());  // clock, not flag
  EXPECT_LT(token.remaining_seconds(), 0.0);
  token.reset();
  EXPECT_FALSE(token.expired());
}

TEST(CancelToken, LinkObservesUpstream) {
  par::CancelToken upstream;
  par::CancelToken token;
  token.link(&upstream);
  EXPECT_FALSE(token.stop_requested());
  upstream.cancel();
  EXPECT_TRUE(token.cancel_requested());
  // reset() clears only local state; the upstream link survives.
  token.reset();
  EXPECT_TRUE(token.stop_requested());
  upstream.reset();
  upstream.set_deadline_after(-1.0);
  EXPECT_TRUE(token.expired());
  EXPECT_LT(token.remaining_seconds(), 0.0);
  token.link(nullptr);
  EXPECT_FALSE(token.stop_requested());
}

TEST(CancelToken, ThrowCancelledCarriesLocation) {
  par::CancelToken token;
  token.cancel();
  try {
    par::throw_cancelled(token, 4, 9, 2);
    FAIL() << "throw_cancelled returned";
  } catch (const par::CancelledError& e) {
    EXPECT_FALSE(e.deadline_expired);
    EXPECT_EQ(e.atom_begin, 4);
    EXPECT_EQ(e.atom_end, 9);
    EXPECT_EQ(e.batch, 2);
  }
  token.reset();
  token.set_deadline_after(-1.0);
  try {
    par::throw_cancelled(token, -1, -1, -1);
    FAIL() << "throw_cancelled returned";
  } catch (const par::CancelledError& e) {
    EXPECT_TRUE(e.deadline_expired);
  }
}

struct Fixture {
  Index length;
  mol::HelixModel model;
  cons::ConstraintSet set;
  linalg::Vector initial;

  explicit Fixture(Index helix_length = 3)
      : length(helix_length), model(mol::build_helix(helix_length)) {
    set = cons::generate_helix_constraints(model);
    Rng rng(42);
    initial = model.topology.true_state();
    for (auto& v : initial) v += rng.gaussian(0.0, 0.3);
  }

  engine::Problem problem() const {
    return engine::Problem::custom(
        model.topology.size(), set,
        [model = model] { return core::build_helix_hierarchy(model); },
        "helix/" + std::to_string(length));
  }

  static engine::CompileOptions options() {
    engine::CompileOptions o;
    o.solve.max_cycles = 1;  // single-cycle: runs form reusable checkpoints
    o.solve.prior_sigma = 0.5;
    return o;
  }
};

TEST(Deadline, SpentBudgetShedsBeforeTheSolveStarts) {
  Fixture f;
  engine::Plan plan = Engine::compile(f.problem(), Fixture::options());
  engine::SolveOptions controls;
  controls.deadline_seconds = 1e-12;  // expires before the pre-check runs
  std::this_thread::sleep_for(std::chrono::microseconds(10));
  EXPECT_THROW((void)plan.solve(f.initial, controls), engine::DeadlineError);
  // Shedding happened before any state was touched: the plain solve works.
  const engine::Result r = plan.solve(f.initial);
  EXPECT_GT(r.cycles, 0);
}

TEST(Deadline, PreCancelledTokenShedsWithCancelledError) {
  Fixture f;
  engine::Plan plan = Engine::compile(f.problem(), Fixture::options());
  par::CancelToken token;
  token.cancel();
  engine::SolveOptions controls;
  controls.cancel = &token;
  EXPECT_THROW((void)plan.solve(f.initial, controls), par::CancelledError);
  // The caller's token is never mutated by the engine: still just a flag.
  EXPECT_TRUE(token.cancel_requested());
  EXPECT_FALSE(token.expired());
}

TEST(Deadline, DefaultControlsAreTheUncontrolledPath) {
  Fixture f;
  engine::Plan a = Engine::compile(f.problem(), Fixture::options());
  engine::Plan b = Engine::compile(f.problem(), Fixture::options());
  const engine::Result want = a.solve(f.initial);
  const engine::Result got = b.solve(f.initial, engine::SolveOptions{});
  EXPECT_TRUE(want.posterior().x == got.posterior().x);
}

// The tentpole invariant, per executor: whatever a mid-flight deadline did
// to the plan, the NEXT exact solve is bitwise identical to a solve on a
// plan that was never cancelled.  The deadline is a fraction of a measured
// baseline so it usually fires mid-flight; when the machine is fast enough
// that it does not, the assertion still holds (trivially) — no flake.
TEST(Deadline, SerialPostCancelSolveIsBitwiseIdentical) {
  Fixture f;
  engine::Plan ref = Engine::compile(f.problem(), Fixture::options());
  const engine::Result want = ref.solve(f.initial);

  engine::Plan plan = Engine::compile(f.problem(), Fixture::options());
  engine::SolveOptions controls;
  controls.deadline_seconds = std::max(want.seconds * 0.1, 1e-5);
  bool cancelled = false;
  try {
    (void)plan.solve(f.initial, controls);
  } catch (const engine::DeadlineError&) {
    cancelled = true;
    EXPECT_FALSE(plan.has_checkpoint());  // aborted runs leave no checkpoint
    EXPECT_TRUE(plan.last_report().cancelled);
    EXPECT_TRUE(plan.last_report().cancelled_by_deadline);
  }
  const engine::Result got = plan.solve(f.initial);
  EXPECT_TRUE(want.posterior().x == got.posterior().x);
  EXPECT_EQ(want.cycles, got.cycles);
  EXPECT_FALSE(got.report.cancelled);
  (void)cancelled;
}

TEST(Deadline, ThreadedPostCancelSolveIsBitwiseIdentical) {
  Fixture f;
  par::ThreadPool pool(4);
  engine::Plan ref = Engine::compile(f.problem(), Fixture::options());
  const engine::Result want = ref.solve(pool, f.initial);

  engine::Plan plan = Engine::compile(f.problem(), Fixture::options());
  engine::SolveOptions controls;
  controls.deadline_seconds = std::max(want.seconds * 0.1, 1e-5);
  try {
    (void)plan.solve(pool, f.initial, controls);
  } catch (const engine::DeadlineError&) {
    EXPECT_TRUE(plan.last_report().cancelled);
  }
  const engine::Result got = plan.solve(pool, f.initial);
  EXPECT_TRUE(want.posterior().x == got.posterior().x);
}

TEST(Deadline, SimulatedPostCancelSolveIsBitwiseIdentical) {
  Fixture f;
  engine::Plan ref = Engine::compile(f.problem(), Fixture::options());
  simarch::SimMachine m1(simarch::generic(4));
  const engine::Result want = ref.solve(m1, f.initial);

  engine::Plan plan = Engine::compile(f.problem(), Fixture::options());
  engine::SolveOptions controls;
  // The deadline clock is wall-clock even under the simulated executor
  // (the simulation itself takes real time to run).
  controls.deadline_seconds = std::max(want.seconds * 0.1, 1e-5);
  simarch::SimMachine m2(simarch::generic(4));
  try {
    (void)plan.solve(m2, f.initial, controls);
  } catch (const engine::DeadlineError&) {
    EXPECT_TRUE(plan.last_report().cancelled);
  }
  simarch::SimMachine m3(simarch::generic(4));
  const engine::Result got = plan.solve(m3, f.initial);
  EXPECT_TRUE(want.posterior().x == got.posterior().x);
}

TEST(Deadline, DegradeLowrankAnswersUnderATightDeadline) {
  Fixture f;
  engine::Plan plan = Engine::compile(f.problem(), Fixture::options());
  // Warm: one exact solve establishes the checkpoint and the EWMA the
  // degradation rung judges the remaining budget against.
  const engine::Result warm = plan.solve(f.initial);
  ASSERT_TRUE(plan.has_checkpoint());

  // Nudge one observation, then ask for a solve whose budget is half of
  // what the exact path historically took, with degradation opted in.
  std::vector<double> values;
  values.reserve(plan.num_observation_slots());
  for (const cons::Constraint& c : f.set.all()) values.push_back(c.observed);
  values[0] += 1e-3;
  plan.set_observations(values);

  engine::SolveOptions controls;
  controls.deadline_seconds = std::max(warm.seconds * 0.5, 1e-6);
  controls.degrade_lowrank = true;
  const engine::Result degraded = plan.solve_incremental(f.initial, controls);
  EXPECT_TRUE(degraded.report.low_rank);

  // Without the opt-in the same budget runs the exact path (and on this
  // problem size may or may not make it — both outcomes are legal; what
  // must hold is that low_rank is never silently chosen).
  plan.set_observations(values);
  engine::SolveOptions exact_controls;
  exact_controls.deadline_seconds = 30.0;
  const engine::Result exact = plan.solve_incremental(f.initial,
                                                      exact_controls);
  EXPECT_FALSE(exact.report.low_rank);
}

TEST(Deadline, ServerSubmitRejectsNonFiniteInputs) {
  Fixture f;
  service::ServerOptions opts;
  opts.workers = 1;
  service::Server server(opts);

  service::Request bad_obs;
  bad_obs.problem = f.problem();
  bad_obs.compile = Fixture::options();
  for (const cons::Constraint& c : f.set.all()) {
    bad_obs.observations.push_back(c.observed);
  }
  bad_obs.observations[1] = std::numeric_limits<double>::quiet_NaN();
  bad_obs.initial = f.initial;
  EXPECT_THROW((void)server.submit("t", std::move(bad_obs)), Error);

  service::Request bad_init;
  bad_init.problem = f.problem();
  bad_init.compile = Fixture::options();
  bad_init.initial = f.initial;
  bad_init.initial[0] = std::numeric_limits<double>::infinity();
  EXPECT_THROW((void)server.submit("t", std::move(bad_init)), Error);

  service::Request bad_deadline;
  bad_deadline.problem = f.problem();
  bad_deadline.compile = Fixture::options();
  bad_deadline.initial = f.initial;
  bad_deadline.deadline_seconds = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW((void)server.submit("t", std::move(bad_deadline)), Error);

  service::Request bad_retry;
  bad_retry.problem = f.problem();
  bad_retry.compile = Fixture::options();
  bad_retry.initial = f.initial;
  bad_retry.retry_budget = -1;
  EXPECT_THROW((void)server.submit("t", std::move(bad_retry)), Error);

  // Validation rejections never consume a submission slot.
  const service::ServerStats s = server.stats();
  EXPECT_EQ(s.submitted, 0);
  EXPECT_EQ(s.pending, 0u);
}

TEST(Deadline, ServerResponseCarriesQueueTimeAndAttempts) {
  Fixture f;
  service::ServerOptions opts;
  opts.workers = 1;
  service::Server server(opts);
  service::Request req;
  req.problem = f.problem();
  req.compile = Fixture::options();
  req.initial = f.initial;
  req.deadline_seconds = 30.0;  // generous: exercises the armed path only
  std::future<service::Response> fut = server.submit("t", std::move(req));
  const service::Response r = fut.get();
  EXPECT_GE(r.queue_seconds, 0.0);
  EXPECT_LT(r.queue_seconds, 30.0);
  EXPECT_EQ(r.attempts, 1);
  EXPECT_FALSE(r.report.cancelled);
  const service::ServerStats s = server.stats();
  EXPECT_EQ(s.completed, 1);
  EXPECT_EQ(s.expired, 0);
}

#ifdef PHMSE_FAULT_INJECTION

// With the injector's deterministic stall, the deadline fires mid-flight
// every time: the "pathological molecule" whose slow point is known.
class DeadlineFault : public ::testing::Test {
 protected:
  void SetUp() override { fault::Injector::instance().clear(); }
  void TearDown() override { fault::Injector::instance().clear(); }
};

TEST_F(DeadlineFault, StallMakesMidFlightExpiryDeterministic) {
  Fixture f;
  engine::Plan ref = Engine::compile(f.problem(), Fixture::options());
  const engine::Result want = ref.solve(f.initial);

  engine::Plan plan = Engine::compile(f.problem(), Fixture::options());
  // One 80ms stall at the first batch of whichever node runs first; the
  // 20ms deadline is over when the post-stall poll looks at the clock.
  fault::Injector::instance().arm(
      {fault::Kind::kStall, -1, -1, -1, 0.08, /*max_fires=*/1});
  engine::SolveOptions controls;
  controls.deadline_seconds = 0.02;
  EXPECT_THROW((void)plan.solve(f.initial, controls), engine::DeadlineError);
  EXPECT_TRUE(plan.last_report().cancelled);
  EXPECT_TRUE(plan.last_report().cancelled_by_deadline);

  // Transactional abort: with the injector disarmed the next exact solve
  // is bitwise identical to never having been cancelled.
  fault::Injector::instance().clear();
  const engine::Result got = plan.solve(f.initial);
  EXPECT_TRUE(want.posterior().x == got.posterior().x);
}

TEST_F(DeadlineFault, ExplicitCancelNamesTheAbortLocation) {
  Fixture f;
  engine::Plan plan = Engine::compile(f.problem(), Fixture::options());
  fault::Injector::instance().arm(
      {fault::Kind::kStall, -1, -1, -1, 0.08, /*max_fires=*/1});
  par::CancelToken token;
  std::thread canceller([&token] {
    std::this_thread::sleep_for(std::chrono::milliseconds(15));
    token.cancel();
  });
  engine::SolveOptions controls;
  controls.cancel = &token;
  try {
    (void)plan.solve(f.initial, controls);
    ADD_FAILURE() << "solve completed despite cancellation";
  } catch (const par::CancelledError& e) {
    EXPECT_FALSE(e.deadline_expired);  // flag, not clock
    EXPECT_GE(e.atom_begin, 0);        // a poll site named its node
  }
  canceller.join();
  EXPECT_TRUE(plan.last_report().cancelled);
  EXPECT_FALSE(plan.last_report().cancelled_by_deadline);
  EXPECT_GE(plan.last_report().cancelled_atom_begin, 0);
}

TEST_F(DeadlineFault, StalledThreadedAndSimRunsStayBitwiseAfterCancel) {
  Fixture f;
  par::ThreadPool pool(4);
  engine::Plan ref = Engine::compile(f.problem(), Fixture::options());
  const engine::Result want = ref.solve(pool, f.initial);

  engine::Plan plan = Engine::compile(f.problem(), Fixture::options());
  fault::Injector::instance().arm(
      {fault::Kind::kStall, -1, -1, -1, 0.08, /*max_fires=*/1});
  engine::SolveOptions controls;
  controls.deadline_seconds = 0.02;
  EXPECT_THROW((void)plan.solve(pool, f.initial, controls),
               engine::DeadlineError);
  fault::Injector::instance().clear();
  const engine::Result got = plan.solve(pool, f.initial);
  EXPECT_TRUE(want.posterior().x == got.posterior().x);

  engine::Plan splan = Engine::compile(f.problem(), Fixture::options());
  fault::Injector::instance().arm(
      {fault::Kind::kStall, -1, -1, -1, 0.08, /*max_fires=*/1});
  simarch::SimMachine m1(simarch::generic(4));
  EXPECT_THROW((void)splan.solve(m1, f.initial, controls),
               engine::DeadlineError);
  fault::Injector::instance().clear();
  simarch::SimMachine m2(simarch::generic(4));
  const engine::Result sim_got = splan.solve(m2, f.initial);
  EXPECT_TRUE(want.posterior().x == sim_got.posterior().x);
}

#else  // !PHMSE_FAULT_INJECTION

TEST(DeadlineFault, RequiresInjectionBuild) {
  GTEST_SKIP() << "configure with -DPHMSE_FAULT_INJECTION=ON "
                  "(the CI presets do) to run the deterministic-stall "
                  "deadline tests";
}

#endif  // PHMSE_FAULT_INJECTION

}  // namespace
}  // namespace phmse
