// Parameterized property sweeps of the Fig.-1 update: invariants that
// must hold across batch sizes, problem sizes and random data.
#include <gtest/gtest.h>

#include "constraints/set.hpp"
#include "estimation/update.hpp"
#include "linalg/blas.hpp"
#include "support/rng.hpp"

namespace phmse::est {
namespace {

using cons::Constraint;
using cons::Kind;

NodeState random_chain_state(Index atoms, double prior, Rng& rng) {
  NodeState st;
  st.atom_begin = 0;
  st.atom_end = atoms;
  st.x.resize(static_cast<std::size_t>(3 * atoms));
  for (Index a = 0; a < atoms; ++a) {
    st.x[static_cast<std::size_t>(3 * a)] = 1.4 * static_cast<double>(a);
    st.x[static_cast<std::size_t>(3 * a + 1)] = rng.gaussian(0.0, 0.3);
    st.x[static_cast<std::size_t>(3 * a + 2)] = rng.gaussian(0.0, 0.3);
  }
  st.reset_covariance(prior);
  return st;
}

cons::ConstraintSet random_constraints(const NodeState& st, Index count,
                                       Rng& rng) {
  cons::ConstraintSet set;
  const Index atoms = st.num_atoms();
  for (Index i = 0; i < count; ++i) {
    Constraint c;
    if (i % 5 == 4) {
      c.kind = Kind::kPosition;
      c.atoms = {rng.uniform_int(0, atoms - 1), 0, 0, 0};
      c.axis = static_cast<int>(rng.uniform_int(0, 2));
      c.observed = rng.gaussian(0.0, 2.0);
      c.variance = 0.25;
    } else {
      c.kind = Kind::kDistance;
      Index a = rng.uniform_int(0, atoms - 1);
      Index b = rng.uniform_int(0, atoms - 1);
      if (a == b) b = (b + 1) % atoms;
      c.atoms = {a, b, 0, 0};
      c.observed = 1.0 + rng.uniform(0.0, 3.0);
      c.variance = 0.04;
    }
    set.add(c);
  }
  return set;
}

class BatchSweep : public ::testing::TestWithParam<Index> {};

INSTANTIATE_TEST_SUITE_P(BatchSizes, BatchSweep,
                         ::testing::Values<Index>(1, 2, 3, 7, 16, 33, 64));

TEST_P(BatchSweep, CovarianceStaysSymmetricPositiveDefinite) {
  Rng rng(40 + static_cast<std::uint64_t>(GetParam()));
  NodeState st = random_chain_state(10, 1.0, rng);
  const cons::ConstraintSet set = random_constraints(st, 60, rng);

  par::SerialContext ctx;
  BatchUpdater up;
  up.apply_all(ctx, st, set, GetParam(), 8);

  // Symmetric to round-off...
  for (Index i = 0; i < st.dim(); ++i) {
    for (Index j = i + 1; j < st.dim(); ++j) {
      EXPECT_NEAR(st.c(i, j), st.c(j, i), 1e-10);
    }
  }
  // ...and positive definite: Cholesky succeeds after exact
  // symmetrization.
  linalg::Matrix c = st.c;
  c.symmetrize();
  EXPECT_NO_THROW(linalg::cholesky_serial(c));
}

TEST_P(BatchSweep, EveryMarginalVarianceWithinPrior) {
  Rng rng(60 + static_cast<std::uint64_t>(GetParam()));
  NodeState st = random_chain_state(8, 2.0, rng);
  const cons::ConstraintSet set = random_constraints(st, 40, rng);
  par::SerialContext ctx;
  BatchUpdater up;
  up.apply_all(ctx, st, set, GetParam(), 0);
  for (Index i = 0; i < st.dim(); ++i) {
    EXPECT_GT(st.c(i, i), 0.0);
    EXPECT_LE(st.c(i, i), 4.0 + 1e-9);  // prior variance
  }
}

TEST_P(BatchSweep, LinearDataGivesBatchingInvariantPosterior) {
  // For purely linear constraints the posterior is independent of how the
  // sequence is batched (information is additive).
  Rng rng(80);
  NodeState reference = random_chain_state(6, 1.5, rng);
  cons::ConstraintSet set;
  Rng crng(81);
  for (int i = 0; i < 30; ++i) {
    Constraint c;
    c.kind = Kind::kPosition;
    c.atoms = {crng.uniform_int(0, 5), 0, 0, 0};
    c.axis = static_cast<int>(crng.uniform_int(0, 2));
    c.observed = crng.gaussian(0.0, 1.0);
    c.variance = 0.2 + crng.uniform(0.0, 1.0);
    set.add(c);
  }

  par::SerialContext ctx;
  BatchUpdater up;
  NodeState baseline = reference;
  up.apply_all(ctx, baseline, set, 1, 0);

  NodeState batched = reference;
  up.apply_all(ctx, batched, set, GetParam(), 0);

  for (std::size_t i = 0; i < baseline.x.size(); ++i) {
    EXPECT_NEAR(batched.x[i], baseline.x[i], 1e-9);
  }
  EXPECT_LT(batched.c.frobenius_distance(baseline.c), 1e-8);
}

TEST_P(BatchSweep, RepeatedIdenticalMeasurementsConcentrate) {
  // Applying the same linear measurement k times shrinks the variance as
  // prior*r/(r + k*prior): check against the closed form.
  const double prior = 1.0;
  const double r = 0.5;
  Rng rng(90);
  NodeState st = random_chain_state(2, prior, rng);
  cons::ConstraintSet set;
  const Index k = GetParam();
  for (Index i = 0; i < k; ++i) {
    Constraint c;
    c.kind = Kind::kPosition;
    c.atoms = {0, 0, 0, 0};
    c.axis = 0;
    c.observed = 3.0;
    c.variance = r;
    set.add(c);
  }
  par::SerialContext ctx;
  BatchUpdater up;
  up.apply_all(ctx, st, set, 4, 0);
  const double expected_var =
      prior * r / (r + static_cast<double>(k) * prior);
  EXPECT_NEAR(st.c(0, 0), expected_var, 1e-9);
}

}  // namespace
}  // namespace phmse::est
