// Parameterized property sweeps of the Fig.-1 update: invariants that
// must hold across batch sizes, problem sizes and random data, plus a
// golden-value regression test pinning a seeded end-to-end refinement.
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <limits>
#include <span>
#include <string>

#include "constraints/helix_gen.hpp"
#include "constraints/set.hpp"
#include "estimation/update.hpp"
#include "linalg/blas.hpp"
#include "molecule/rna_helix.hpp"
#include "support/env.hpp"
#include "support/rng.hpp"

namespace phmse::est {
namespace {

using cons::Constraint;
using cons::Kind;

NodeState random_chain_state(Index atoms, double prior, Rng& rng) {
  NodeState st;
  st.atom_begin = 0;
  st.atom_end = atoms;
  st.x.resize(static_cast<std::size_t>(3 * atoms));
  for (Index a = 0; a < atoms; ++a) {
    st.x[static_cast<std::size_t>(3 * a)] = 1.4 * static_cast<double>(a);
    st.x[static_cast<std::size_t>(3 * a + 1)] = rng.gaussian(0.0, 0.3);
    st.x[static_cast<std::size_t>(3 * a + 2)] = rng.gaussian(0.0, 0.3);
  }
  st.reset_covariance(prior);
  return st;
}

cons::ConstraintSet random_constraints(const NodeState& st, Index count,
                                       Rng& rng) {
  cons::ConstraintSet set;
  const Index atoms = st.num_atoms();
  for (Index i = 0; i < count; ++i) {
    Constraint c;
    if (i % 5 == 4) {
      c.kind = Kind::kPosition;
      c.atoms = {rng.uniform_int(0, atoms - 1), 0, 0, 0};
      c.axis = static_cast<int>(rng.uniform_int(0, 2));
      c.observed = rng.gaussian(0.0, 2.0);
      c.variance = 0.25;
    } else {
      c.kind = Kind::kDistance;
      Index a = rng.uniform_int(0, atoms - 1);
      Index b = rng.uniform_int(0, atoms - 1);
      if (a == b) b = (b + 1) % atoms;
      c.atoms = {a, b, 0, 0};
      c.observed = 1.0 + rng.uniform(0.0, 3.0);
      c.variance = 0.04;
    }
    set.add(c);
  }
  return set;
}

class BatchSweep : public ::testing::TestWithParam<Index> {};

INSTANTIATE_TEST_SUITE_P(BatchSizes, BatchSweep,
                         ::testing::Values<Index>(1, 2, 3, 7, 16, 33, 64));

TEST_P(BatchSweep, CovarianceStaysSymmetricPositiveDefinite) {
  Rng rng(40 + static_cast<std::uint64_t>(GetParam()));
  NodeState st = random_chain_state(10, 1.0, rng);
  const cons::ConstraintSet set = random_constraints(st, 60, rng);

  par::SerialContext ctx;
  BatchUpdater up;
  up.apply_all(ctx, st, set, GetParam(), 8);

  // Symmetric to round-off...
  for (Index i = 0; i < st.dim(); ++i) {
    for (Index j = i + 1; j < st.dim(); ++j) {
      EXPECT_NEAR(st.c(i, j), st.c(j, i), 1e-10);
    }
  }
  // ...and positive definite: Cholesky succeeds after exact
  // symmetrization.
  linalg::Matrix c = st.c;
  c.symmetrize();
  EXPECT_NO_THROW(linalg::cholesky_serial(c));
}

TEST_P(BatchSweep, EveryMarginalVarianceWithinPrior) {
  Rng rng(60 + static_cast<std::uint64_t>(GetParam()));
  NodeState st = random_chain_state(8, 2.0, rng);
  const cons::ConstraintSet set = random_constraints(st, 40, rng);
  par::SerialContext ctx;
  BatchUpdater up;
  up.apply_all(ctx, st, set, GetParam(), 0);
  for (Index i = 0; i < st.dim(); ++i) {
    EXPECT_GT(st.c(i, i), 0.0);
    EXPECT_LE(st.c(i, i), 4.0 + 1e-9);  // prior variance
  }
}

TEST_P(BatchSweep, LinearDataGivesBatchingInvariantPosterior) {
  // For purely linear constraints the posterior is independent of how the
  // sequence is batched (information is additive).
  Rng rng(80);
  NodeState reference = random_chain_state(6, 1.5, rng);
  cons::ConstraintSet set;
  Rng crng(81);
  for (int i = 0; i < 30; ++i) {
    Constraint c;
    c.kind = Kind::kPosition;
    c.atoms = {crng.uniform_int(0, 5), 0, 0, 0};
    c.axis = static_cast<int>(crng.uniform_int(0, 2));
    c.observed = crng.gaussian(0.0, 1.0);
    c.variance = 0.2 + crng.uniform(0.0, 1.0);
    set.add(c);
  }

  par::SerialContext ctx;
  BatchUpdater up;
  NodeState baseline = reference;
  up.apply_all(ctx, baseline, set, 1, 0);

  NodeState batched = reference;
  up.apply_all(ctx, batched, set, GetParam(), 0);

  for (std::size_t i = 0; i < baseline.x.size(); ++i) {
    EXPECT_NEAR(batched.x[i], baseline.x[i], 1e-9);
  }
  EXPECT_LT(batched.c.frobenius_distance(baseline.c), 1e-8);
}

TEST_P(BatchSweep, RepeatedIdenticalMeasurementsConcentrate) {
  // Applying the same linear measurement k times shrinks the variance as
  // prior*r/(r + k*prior): check against the closed form.
  const double prior = 1.0;
  const double r = 0.5;
  Rng rng(90);
  NodeState st = random_chain_state(2, prior, rng);
  cons::ConstraintSet set;
  const Index k = GetParam();
  for (Index i = 0; i < k; ++i) {
    Constraint c;
    c.kind = Kind::kPosition;
    c.atoms = {0, 0, 0, 0};
    c.axis = 0;
    c.observed = 3.0;
    c.variance = r;
    set.add(c);
  }
  par::SerialContext ctx;
  BatchUpdater up;
  up.apply_all(ctx, st, set, 4, 0);
  const double expected_var =
      prior * r / (r + static_cast<double>(k) * prior);
  EXPECT_NEAR(st.c(0, 0), expected_var, 1e-9);
}

TEST_P(BatchSweep, RejectedBatchLeavesStateBitwiseUntouched) {
  // Transactional apply (DESIGN.md §9): a batch rejected by pre-update
  // validation — here a NaN observation — must leave x and C bitwise
  // identical, at every batch size, not merely "numerically close".
  Rng rng(120 + static_cast<std::uint64_t>(GetParam()));
  NodeState st = random_chain_state(10, 1.0, rng);
  cons::ConstraintSet set = random_constraints(st, GetParam(), rng);
  set.set_observed(set.size() / 2, std::numeric_limits<double>::quiet_NaN());

  par::SerialContext ctx;
  BatchUpdater up;
  const NodeState before = st;
  const BatchOutcome out =
      up.apply(ctx, st, std::span<const Constraint>(set.all()),
               SolvePolicy::skip_batch());

  EXPECT_EQ(out.status, BatchStatus::kSkipped);
  EXPECT_EQ(out.attempts, 0);
  EXPECT_EQ(st.x, before.x);
  EXPECT_EQ(st.c, before.c);

  // And under the default abort policy the same batch throws, also without
  // touching the state.
  EXPECT_THROW(up.apply(ctx, st, std::span<const Constraint>(set.all())),
               Error);
  EXPECT_EQ(st.x, before.x);
  EXPECT_EQ(st.c, before.c);
}

TEST_P(BatchSweep, NonAbortPolicyIsBitwiseIdenticalOnCleanData) {
  // The retry ladder and chi-squared gate observe a clean batch without
  // perturbing it: every policy produces the same bits as the historical
  // abort path.  "Clean" includes statistically consistent — the gate is
  // entitled to drop genuine outliers, so observe the state's own geometry
  // with noise at the constraint's sigma (chi^2/dof stays near 1, far
  // under the gate threshold of 25).
  Rng rng(140 + static_cast<std::uint64_t>(GetParam()));
  const NodeState reference = random_chain_state(9, 1.0, rng);
  cons::ConstraintSet set;
  for (Index i = 0; i < 50; ++i) {
    Constraint c;
    c.kind = Kind::kDistance;
    Index a = rng.uniform_int(0, 8);
    Index b = rng.uniform_int(0, 8);
    if (a == b) b = (b + 1) % 9;
    c.atoms = {a, b, 0, 0};
    const mol::Vec3 u = reference.position(a) - reference.position(b);
    c.observed = u.norm() + rng.gaussian(0.0, 0.2);
    c.variance = 0.04;
    set.add(c);
  }

  par::SerialContext ctx;
  NodeState baseline = reference;
  BatchUpdater up0;
  up0.apply_all(ctx, baseline, set, GetParam(), 8);  // default: abort

  for (const SolvePolicy& policy :
       {SolvePolicy::skip_batch(), SolvePolicy::retry_regularized(),
        SolvePolicy::gate_outliers()}) {
    NodeState st = reference;
    BatchUpdater up;
    NodeReport report;
    up.apply_all(ctx, st, set, GetParam(), 8, policy, &report);
    EXPECT_EQ(st.x, baseline.x);
    EXPECT_EQ(st.c, baseline.c);
    EXPECT_TRUE(report.clean());
    EXPECT_EQ(report.ok, report.batches);
  }
}

// End-to-end invariance: a seeded full refinement of a 2-bp helix (86
// atoms, state dimension 258 — wide enough to cross the blocked kernels'
// column-strip boundary) must reproduce the golden RMSD and covariance
// trace recorded with the pre-optimization scalar kernels.  This pins the
// whole Fig.-1 pipeline, so a kernel rewrite cannot silently drift the
// estimator.  Regenerate with PHMSE_UPDATE_GOLDEN=1 after an intentional
// numerical change (and justify the change in the commit).
TEST(UpdateGolden, SeededHelixRefinementMatchesGolden) {
  const mol::HelixModel model = mol::build_helix(2);
  const cons::ConstraintSet set = cons::generate_helix_constraints(model);
  Rng rng(20260805);
  NodeState st = make_initial_state(model.topology, 0, model.num_atoms(),
                                    1.0, 0.3, rng);
  par::SerialContext ctx;
  BatchUpdater up;
  up.apply_all(ctx, st, set, 16, 8);

  const double rmsd = model.topology.rmsd_to_truth(st.x);
  double trace = 0.0;
  for (Index i = 0; i < st.dim(); ++i) trace += st.c(i, i);

  const std::string path =
      std::string(PHMSE_GOLDEN_DIR) + "/helix_update_2bp.txt";
  if (env_flag("PHMSE_UPDATE_GOLDEN")) {
    std::ofstream out(path);
    out.precision(17);
    out << rmsd << "\n" << trace << "\n";
    ASSERT_TRUE(out.good()) << "failed to write " << path;
    GTEST_SKIP() << "golden regenerated at " << path;
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " — regenerate with PHMSE_UPDATE_GOLDEN=1";
  double g_rmsd = 0.0;
  double g_trace = 0.0;
  in >> g_rmsd >> g_trace;
  ASSERT_FALSE(in.fail()) << "malformed golden file " << path;

  // Blocked kernels keep each element's reduction order fixed, so only
  // FMA-contraction round-off may differ from the scalar reference; 1e-8
  // relative headroom is orders of magnitude above that but far below any
  // real estimator drift.
  EXPECT_NEAR(rmsd, g_rmsd, 1e-8 * std::max(1.0, std::abs(g_rmsd)));
  EXPECT_NEAR(trace, g_trace, 1e-8 * std::max(1.0, std::abs(g_trace)));
}

}  // namespace
}  // namespace phmse::est
