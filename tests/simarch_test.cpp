#include <gtest/gtest.h>

#include "simarch/machine.hpp"
#include "simarch/sim_context.hpp"
#include "support/check.hpp"

namespace phmse::simarch {
namespace {

using par::KernelStats;
using perf::Category;

TEST(MachineConfig, PresetsMatchThePaperPlatforms) {
  const MachineConfig dash = dash32();
  EXPECT_EQ(dash.processors, 32);
  EXPECT_EQ(dash.procs_per_cluster, 4);  // 8 clusters of 4
  EXPECT_EQ(dash.layout, MemoryLayout::kDistributed);

  const MachineConfig ch = challenge16();
  EXPECT_EQ(ch.processors, 16);
  EXPECT_EQ(ch.layout, MemoryLayout::kCentralized);
  // Challenge CPUs are ~3x faster (100 MHz R4400 vs 33 MHz R3000).
  EXPECT_GT(ch.flops_per_sec, 2.0 * dash.flops_per_sec);
}

TEST(ClustersSpanned, CountsCorrectly) {
  const MachineConfig dash = dash32();
  EXPECT_EQ(clusters_spanned(dash, 0, 1), 1);
  EXPECT_EQ(clusters_spanned(dash, 0, 4), 1);
  EXPECT_EQ(clusters_spanned(dash, 0, 5), 2);
  EXPECT_EQ(clusters_spanned(dash, 3, 2), 2);  // straddles a boundary
  EXPECT_EQ(clusters_spanned(dash, 0, 32), 8);
  EXPECT_THROW(clusters_spanned(dash, 30, 4), Error);
}

TEST(ChunkTime, ComputeScalesWithFlops) {
  const MachineConfig cfg = dash32();
  KernelStats a;
  a.flops = 1e6;
  KernelStats b;
  b.flops = 2e6;
  EXPECT_NEAR(chunk_time(cfg, b, 1, 1) / chunk_time(cfg, a, 1, 1), 2.0, 1e-9);
}

TEST(ChunkTime, RemoteMissesCostMoreAcrossClusters) {
  const MachineConfig cfg = dash32();
  KernelStats st;
  st.bytes_irregular = 1e6;
  const double local = chunk_time(cfg, st, 1, 32);
  const double spread = chunk_time(cfg, st, 8, 32);
  EXPECT_GT(spread, 2.0 * local);
}

TEST(ChunkTime, CentralizedMachineIgnoresClusterSpan) {
  const MachineConfig cfg = challenge16();
  KernelStats st;
  st.bytes_stream = 1e6;
  EXPECT_DOUBLE_EQ(chunk_time(cfg, st, 1, 16), chunk_time(cfg, st, 4, 16));
}

TEST(ChunkTime, BusContentionGrowsWithActiveProcessors) {
  const MachineConfig cfg = challenge16();
  KernelStats st;
  st.bytes_stream = 1e6;
  EXPECT_GT(chunk_time(cfg, st, 1, 16), chunk_time(cfg, st, 1, 1));
}

TEST(ChunkTime, CacheCapacityPenalizesOverflowingResidentSets) {
  MachineConfig cfg = dash32();
  KernelStats st;
  st.resident_bytes = 1e6;   // 1 MB tile
  st.resident_sweeps = 10.0;

  // Disabled capacity model: resident reuse is free.
  cfg.cache_bytes_per_proc = 0.0;
  const double free_reuse = chunk_time(cfg, st, 1, 1);

  // Tile fits: still free.
  cfg.cache_bytes_per_proc = 2e6;
  EXPECT_DOUBLE_EQ(chunk_time(cfg, st, 1, 1), free_reuse);

  // Tile overflows 4x: 3/4 of it re-fetched on each of the 9 extra sweeps.
  cfg.cache_bytes_per_proc = 0.25e6;
  const double overflowing = chunk_time(cfg, st, 1, 1);
  EXPECT_GT(overflowing, free_reuse);
  const double expected_extra_lines = 9.0 * 1e6 * 0.75 / cfg.line_bytes;
  EXPECT_NEAR(overflowing - free_reuse,
              expected_extra_lines * cfg.t_miss_local, 1e-9);
}

TEST(ChunkTime, SingleSweepNeverPaysCapacityPenalty) {
  MachineConfig cfg = dash32();
  cfg.cache_bytes_per_proc = 1024.0;
  KernelStats st;
  st.resident_bytes = 1e9;
  st.resident_sweeps = 1.0;  // streamed once: compulsory traffic only
  EXPECT_DOUBLE_EQ(chunk_time(cfg, st, 1, 1), 0.0);
}

TEST(BarrierTime, FreeForSoloTeamAndGrowsWithSize) {
  const MachineConfig cfg = dash32();
  EXPECT_DOUBLE_EQ(barrier_time(cfg, 1), 0.0);
  EXPECT_GT(barrier_time(cfg, 2), 0.0);
  EXPECT_GT(barrier_time(cfg, 32), barrier_time(cfg, 4));
}

TEST(SimMachine, StartsAtZeroAndTracksClocks) {
  SimMachine m(generic(4));
  EXPECT_DOUBLE_EQ(m.elapsed(), 0.0);
  m.set_clock(2, 1.5);
  EXPECT_DOUBLE_EQ(m.clock(2), 1.5);
  EXPECT_DOUBLE_EQ(m.elapsed(), 1.5);
  EXPECT_DOUBLE_EQ(m.max_clock(0, 2), 0.0);
}

TEST(SimMachine, SyncRangeJoinsClocks) {
  SimMachine m(generic(4));
  m.set_clock(0, 1.0);
  m.set_clock(1, 3.0);
  const double t = m.sync_range(0, 2);
  EXPECT_DOUBLE_EQ(t, 3.0);
  EXPECT_DOUBLE_EQ(m.clock(0), 3.0);
  EXPECT_DOUBLE_EQ(m.clock(2), 0.0);  // untouched
}

TEST(SimMachine, ResetClearsState) {
  SimMachine m(generic(2));
  m.set_clock(0, 5.0);
  m.proc_profile(0).add(Category::kVector, 1.0);
  m.reset();
  EXPECT_DOUBLE_EQ(m.elapsed(), 0.0);
  EXPECT_DOUBLE_EQ(m.reported_profile().time(Category::kVector), 0.0);
}

TEST(SimContext, ParallelRunsBodyAndAdvancesTeamUniformly) {
  SimMachine m(generic(4));
  SimContext ctx(m, 0, 4);
  int covered = 0;
  ctx.parallel(
      Category::kMatVec, 100,
      [](Index b, Index e) {
        KernelStats st;
        st.flops = static_cast<double>(e - b) * 1000.0;
        return st;
      },
      [&](Index b, Index e, int) { covered += static_cast<int>(e - b); });
  EXPECT_EQ(covered, 100);
  // All team members advanced identically (SPMD barrier convention).
  EXPECT_DOUBLE_EQ(m.clock(0), m.clock(3));
  EXPECT_GT(m.clock(0), 0.0);
}

TEST(SimContext, WiderTeamIsFasterOnBigKernels) {
  auto run = [](int procs) {
    SimMachine m(generic(8));
    SimContext ctx(m, 0, procs);
    ctx.parallel(
        Category::kMatVec, 1000,
        [](Index b, Index e) {
          KernelStats st;
          st.flops = static_cast<double>(e - b) * 1e5;
          return st;
        },
        [](Index, Index, int) {});
    return m.elapsed();
  };
  const double t1 = run(1);
  const double t8 = run(8);
  EXPECT_GT(t1 / t8, 6.0);  // near-linear for compute-bound work
}

TEST(SimContext, TinyKernelsFloorAtBarrierCost) {
  auto run = [](int procs) {
    SimMachine m(generic(8));
    SimContext ctx(m, 0, procs);
    for (int i = 0; i < 100; ++i) {
      ctx.parallel(
          Category::kVector, 64,
          [](Index b, Index e) {
            KernelStats st;
            st.flops = static_cast<double>(e - b);
            return st;
          },
          [](Index, Index, int) {});
    }
    return m.elapsed();
  };
  const double t1 = run(1);
  const double t8 = run(8);
  // The paper's vec category: little to gain, barrier overhead dominates.
  EXPECT_LT(t1 / t8, 2.0);
}

TEST(SimContext, SequentialChargesWholeTeam) {
  SimMachine m(generic(4));
  SimContext ctx(m, 0, 4);
  ctx.sequential(
      Category::kCholesky,
      [](Index, Index) {
        KernelStats st;
        st.flops = 1e6;
        return st;
      },
      [] {});
  EXPECT_DOUBLE_EQ(m.clock(0), m.clock(3));
  EXPECT_GT(m.proc_profile(3).time(Category::kCholesky), 0.0);
}

TEST(SimContext, DisjointTeamsAdvanceIndependently) {
  SimMachine m(generic(4));
  SimContext left(m, 0, 2);
  SimContext right(m, 2, 2);
  left.parallel(
      Category::kMatVec, 10,
      [](Index, Index) {
        KernelStats st;
        st.flops = 1e6;
        return st;
      },
      [](Index, Index, int) {});
  EXPECT_GT(m.clock(0), 0.0);
  EXPECT_DOUBLE_EQ(m.clock(2), 0.0);
  right.parallel(
      Category::kMatVec, 10,
      [](Index, Index) {
        KernelStats st;
        st.flops = 2e6;
        return st;
      },
      [](Index, Index, int) {});
  EXPECT_GT(m.clock(2), m.clock(0));
}

TEST(SimContext, ReportedProfileIsMaxOverProcessors) {
  SimMachine m(generic(4));
  SimContext left(m, 0, 1);
  SimContext right(m, 1, 1);
  auto cost = [](double f) {
    return [f](Index, Index) {
      KernelStats st;
      st.flops = f;
      return st;
    };
  };
  left.parallel(Category::kMatVec, 1, cost(1e6), [](Index, Index, int) {});
  right.parallel(Category::kMatVec, 1, cost(3e6), [](Index, Index, int) {});
  const double reported = m.reported_profile().time(Category::kMatVec);
  EXPECT_DOUBLE_EQ(reported, m.proc_profile(1).time(Category::kMatVec));
}

}  // namespace
}  // namespace phmse::simarch
