#include <gtest/gtest.h>

#include <cmath>

#include "linalg/blas.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace phmse::linalg {
namespace {

Matrix random_matrix(Index rows, Index cols, Rng& rng) {
  Matrix m(rows, cols);
  for (Index i = 0; i < rows; ++i) {
    for (Index j = 0; j < cols; ++j) m(i, j) = rng.gaussian();
  }
  return m;
}

// SPD matrix via A A^T + n I.
Matrix random_spd(Index n, Rng& rng) {
  const Matrix a = random_matrix(n, n, rng);
  Matrix s = matmul(a, transpose(a));
  for (Index i = 0; i < n; ++i) s(i, i) += static_cast<double>(n);
  return s;
}

TEST(Blas, DotComputesInnerProduct) {
  const double x[] = {1.0, 2.0, 3.0};
  const double y[] = {4.0, -5.0, 6.0};
  EXPECT_DOUBLE_EQ(dot(x, y, 3), 4.0 - 10.0 + 18.0);
  EXPECT_DOUBLE_EQ(dot(x, y, 0), 0.0);
}

TEST(Blas, AxpyAccumulates) {
  const double x[] = {1.0, 2.0};
  double y[] = {10.0, 20.0};
  axpy(2.0, x, y, 2);
  EXPECT_DOUBLE_EQ(y[0], 12.0);
  EXPECT_DOUBLE_EQ(y[1], 24.0);
}

TEST(Blas, GemvMatchesManual) {
  Matrix a(2, 3);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(0, 2) = 3;
  a(1, 0) = 4;
  a(1, 1) = 5;
  a(1, 2) = 6;
  Vector x{1.0, 0.0, -1.0};
  Vector y;
  gemv(a, x, y);
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], -2.0);
  EXPECT_DOUBLE_EQ(y[1], -2.0);
}

TEST(Blas, GemvChecksDimensions) {
  Matrix a(2, 3);
  Vector x(2);
  Vector y;
  EXPECT_THROW(gemv(a, x, y), Error);
}

TEST(Blas, MatmulIdentity) {
  Rng rng(1);
  const Matrix a = random_matrix(4, 4, rng);
  Matrix eye(4, 4);
  eye.set_identity();
  EXPECT_LT(matmul(a, eye).frobenius_distance(a), 1e-12);
  EXPECT_LT(matmul(eye, a).frobenius_distance(a), 1e-12);
}

TEST(Blas, MatmulTnEqualsTransposeThenMultiply) {
  Rng rng(2);
  const Matrix a = random_matrix(5, 3, rng);
  const Matrix b = random_matrix(5, 4, rng);
  const Matrix direct = matmul_tn(a, b);
  const Matrix via_t = matmul(transpose(a), b);
  EXPECT_LT(direct.frobenius_distance(via_t), 1e-12);
}

TEST(Blas, TransposeTwiceIsIdentity) {
  Rng rng(3);
  const Matrix a = random_matrix(3, 5, rng);
  EXPECT_EQ(transpose(transpose(a)), a);
}

TEST(Cholesky, ReconstructsSpdMatrix) {
  Rng rng(4);
  const Matrix s = random_spd(6, rng);
  Matrix l = s;
  cholesky_serial(l);
  const Matrix rebuilt = matmul(l, transpose(l));
  EXPECT_LT(rebuilt.frobenius_distance(s), 1e-9 * s.max_abs());
}

TEST(Cholesky, UpperTriangleZeroed) {
  Rng rng(5);
  Matrix l = random_spd(4, rng);
  cholesky_serial(l);
  for (Index i = 0; i < 4; ++i) {
    for (Index j = i + 1; j < 4; ++j) EXPECT_EQ(l(i, j), 0.0);
  }
}

TEST(Cholesky, RejectsIndefiniteMatrix) {
  Matrix m(2, 2);
  m(0, 0) = 1.0;
  m(1, 1) = -1.0;
  EXPECT_THROW(cholesky_serial(m), Error);
}

TEST(Trsv, LowerSolveMatchesDirect) {
  Rng rng(6);
  Matrix l = random_spd(5, rng);
  cholesky_serial(l);
  Vector b{1, 2, 3, 4, 5};
  Vector x = b;
  trsv_lower(l, x);
  // L x should reproduce b.
  Vector check(5, 0.0);
  for (Index i = 0; i < 5; ++i) {
    for (Index j = 0; j <= i; ++j) {
      check[static_cast<std::size_t>(i)] +=
          l(i, j) * x[static_cast<std::size_t>(j)];
    }
  }
  for (Index i = 0; i < 5; ++i) {
    EXPECT_NEAR(check[static_cast<std::size_t>(i)],
                b[static_cast<std::size_t>(i)], 1e-10);
  }
}

TEST(Trsv, TransposedSolveMatchesDirect) {
  Rng rng(7);
  Matrix l = random_spd(5, rng);
  cholesky_serial(l);
  Vector b{5, 4, 3, 2, 1};
  Vector x = b;
  trsv_lower_transposed(l, x);
  Vector check(5, 0.0);
  for (Index i = 0; i < 5; ++i) {
    for (Index j = i; j < 5; ++j) {
      check[static_cast<std::size_t>(i)] +=
          l(j, i) * x[static_cast<std::size_t>(j)];
    }
  }
  for (Index i = 0; i < 5; ++i) {
    EXPECT_NEAR(check[static_cast<std::size_t>(i)],
                b[static_cast<std::size_t>(i)], 1e-10);
  }
}

TEST(SpdSolve, RecoversKnownSolution) {
  Rng rng(8);
  const Matrix a = random_spd(6, rng);
  const Matrix x_true = random_matrix(6, 2, rng);
  const Matrix b = matmul(a, x_true);
  const Matrix x = spd_solve(a, b);
  EXPECT_LT(x.frobenius_distance(x_true), 1e-8);
}

TEST(SpdSolve, InverseTimesMatrixIsIdentity) {
  Rng rng(9);
  const Matrix a = random_spd(5, rng);
  Matrix eye(5, 5);
  eye.set_identity();
  const Matrix inv = spd_solve(a, eye);
  EXPECT_LT(matmul(a, inv).frobenius_distance(eye), 1e-9);
}

}  // namespace
}  // namespace phmse::linalg
