#include <gtest/gtest.h>

#include "linalg/csr.hpp"
#include "support/check.hpp"

namespace phmse::linalg {
namespace {

TEST(Csr, EmptyMatrixHasNoRows) {
  Csr m;
  EXPECT_EQ(m.rows(), 0);
  EXPECT_EQ(m.nnz(), 0);
}

TEST(CsrBuilder, BuildsRowsInOrder) {
  CsrBuilder b(5);
  b.begin_row();
  b.add(2, 1.5);
  b.add(0, -1.0);
  b.begin_row();
  b.add(4, 2.0);
  const Csr m = b.finish();

  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 5);
  EXPECT_EQ(m.nnz(), 3);

  // Within-row entries are sorted by column.
  const auto idx0 = m.row_indices(0);
  ASSERT_EQ(idx0.size(), 2u);
  EXPECT_EQ(idx0[0], 0);
  EXPECT_EQ(idx0[1], 2);
  EXPECT_DOUBLE_EQ(m.row_values(0)[0], -1.0);
  EXPECT_DOUBLE_EQ(m.row_values(0)[1], 1.5);
}

TEST(CsrBuilder, MergesDuplicateColumns) {
  CsrBuilder b(3);
  b.begin_row();
  b.add(1, 2.0);
  b.add(1, 0.5);
  const Csr m = b.finish();
  EXPECT_EQ(m.nnz(), 1);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 2.5);
}

TEST(CsrBuilder, EmptyRowsAllowed) {
  CsrBuilder b(3);
  b.begin_row();
  b.begin_row();
  b.add(0, 1.0);
  const Csr m = b.finish();
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.row_nnz(0), 0);
  EXPECT_EQ(m.row_nnz(1), 1);
}

TEST(CsrBuilder, AddOutsideRowThrows) {
  CsrBuilder b(3);
  EXPECT_THROW(b.add(0, 1.0), Error);
}

TEST(CsrBuilder, ColumnBoundsChecked) {
  CsrBuilder b(3);
  b.begin_row();
  EXPECT_THROW(b.add(3, 1.0), Error);
  EXPECT_THROW(b.add(-1, 1.0), Error);
}

TEST(Csr, AtReturnsZeroForMissingEntry) {
  CsrBuilder b(4);
  b.begin_row();
  b.add(1, 5.0);
  const Csr m = b.finish();
  EXPECT_DOUBLE_EQ(m.at(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(m.at(0, 3), 0.0);
}

TEST(CsrBuilder, FinishResetsBuilder) {
  CsrBuilder b(2);
  b.begin_row();
  b.add(0, 1.0);
  const Csr first = b.finish();
  EXPECT_EQ(first.rows(), 1);
  // Builder is reusable after finish().
  b.begin_row();
  b.add(1, 2.0);
  const Csr second = b.finish();
  EXPECT_EQ(second.rows(), 1);
  EXPECT_DOUBLE_EQ(second.at(0, 1), 2.0);
}

}  // namespace
}  // namespace phmse::linalg
