#include <gtest/gtest.h>

#include "constraints/helix_gen.hpp"
#include "core/hierarchy.hpp"
#include "molecule/ribo30s.hpp"
#include "molecule/rna_helix.hpp"
#include "support/check.hpp"

namespace phmse::core {
namespace {

TEST(HelixHierarchy, StructureMatchesFig2) {
  const mol::HelixModel model = mol::build_helix(4);
  const Hierarchy h = build_helix_hierarchy(model);
  h.validate();

  // 4 pairs: root + 2 sub-helices + 4 pairs + 8 bases + 16 leaves.
  EXPECT_EQ(h.num_leaves(), 16);
  EXPECT_EQ(h.num_nodes(), 1 + 2 + 4 + 8 + 16);
  // depth: helix(1) -> sub(2) -> pair(3) -> base(4) -> leaf(5)
  EXPECT_EQ(h.depth(), 5);
  EXPECT_EQ(h.root().num_atoms(), model.num_atoms());
}

TEST(HelixHierarchy, SingleBasePairSkipsHelixLevels) {
  const mol::HelixModel model = mol::build_helix(1);
  const Hierarchy h = build_helix_hierarchy(model);
  h.validate();
  EXPECT_EQ(h.num_leaves(), 4);   // 2 bases x (backbone + sidechain)
  EXPECT_EQ(h.depth(), 3);        // pair -> base -> leaf
}

TEST(HelixHierarchy, LeavesAreBackbonesAndSidechains) {
  const mol::HelixModel model = mol::build_helix(2);
  const Hierarchy h = build_helix_hierarchy(model);
  Index leaf_atoms = 0;
  h.for_each_post_order([&](const HierNode& node) {
    if (node.is_leaf()) {
      leaf_atoms += node.num_atoms();
      EXPECT_GE(node.num_atoms(), 8);
      EXPECT_LE(node.num_atoms(), 12);
    }
  });
  EXPECT_EQ(leaf_atoms, model.num_atoms());
}

TEST(HelixHierarchy, NonPowerOfTwoLengthWorks) {
  const mol::HelixModel model = mol::build_helix(5);
  const Hierarchy h = build_helix_hierarchy(model);
  h.validate();
  EXPECT_EQ(h.num_leaves(), 20);
}

TEST(RiboHierarchy, HighBranchingFactor) {
  const mol::Ribo30sModel model = mol::build_ribo30s();
  const Hierarchy h = build_ribo_hierarchy(model);
  h.validate();
  EXPECT_EQ(h.depth(), 3);  // root -> domains -> segments
  // Root branching equals the number of (non-empty) domains.
  EXPECT_GE(h.root().children.size(), 4u);
  EXPECT_EQ(h.num_leaves(), model.num_segments());
}

TEST(FlatHierarchy, SingleNode) {
  const Hierarchy h = build_flat_hierarchy(100);
  EXPECT_EQ(h.num_nodes(), 1);
  EXPECT_EQ(h.depth(), 1);
  EXPECT_TRUE(h.root().is_leaf());
  EXPECT_EQ(h.root().num_atoms(), 100);
}

TEST(BisectionHierarchy, RespectsLeafBound) {
  const Hierarchy h = build_bisection_hierarchy(100, 16);
  h.validate();
  h.for_each_post_order([&](const HierNode& node) {
    if (node.is_leaf()) EXPECT_LE(node.num_atoms(), 16);
  });
}

TEST(BisectionHierarchy, TinyProblemIsSingleLeaf) {
  const Hierarchy h = build_bisection_hierarchy(8, 16);
  EXPECT_EQ(h.num_nodes(), 1);
}

TEST(BottomUpHierarchy, BuildsValidBinaryTree) {
  const mol::HelixModel model = mol::build_helix(2);
  const cons::ConstraintSet set = cons::generate_helix_constraints(model);
  // Leaves: the 8 backbone/sidechain groups in atom order.
  std::vector<std::pair<Index, Index>> leaves;
  for (const auto& pair : model.pairs) {
    for (const auto* base : {&pair.strand1, &pair.strand2}) {
      leaves.emplace_back(base->backbone_begin, base->backbone_end);
      leaves.emplace_back(base->sidechain_begin, base->sidechain_end);
    }
  }
  const Hierarchy h = build_bottom_up_hierarchy(leaves, set);
  h.validate();
  EXPECT_EQ(h.num_leaves(), static_cast<Index>(leaves.size()));
  EXPECT_EQ(h.root().num_atoms(), model.num_atoms());
}

TEST(BottomUpHierarchy, MergesStronglyCoupledLeavesFirst) {
  // Three leaves; many constraints couple leaf 0 and 1, one couples 1-2.
  std::vector<std::pair<Index, Index>> leaves{{0, 2}, {2, 4}, {4, 6}};
  cons::ConstraintSet set;
  cons::Constraint c;
  c.kind = cons::Kind::kDistance;
  for (int i = 0; i < 10; ++i) {
    c.atoms = {1, 2, 0, 0};  // crosses leaves 0-1
    set.add(c);
  }
  c.atoms = {3, 4, 0, 0};  // crosses leaves 1-2
  set.add(c);

  const Hierarchy h = build_bottom_up_hierarchy(leaves, set);
  // First merge must join leaves 0 and 1: the root's first child spans
  // atoms [0,4).
  ASSERT_EQ(h.root().children.size(), 2u);
  EXPECT_EQ(h.root().children[0]->atom_end, 4);
  EXPECT_FALSE(h.root().children[0]->is_leaf());
  EXPECT_TRUE(h.root().children[1]->is_leaf());
}

TEST(BottomUpHierarchy, RejectsNonContiguousLeaves) {
  std::vector<std::pair<Index, Index>> leaves{{0, 2}, {3, 5}};
  EXPECT_THROW(build_bottom_up_hierarchy(leaves, cons::ConstraintSet{}),
               phmse::Error);
}

TEST(Hierarchy, DescribeShowsStructure) {
  const mol::HelixModel model = mol::build_helix(1);
  const Hierarchy h = build_helix_hierarchy(model);
  const std::string d = h.describe();
  EXPECT_NE(d.find("helix"), std::string::npos);
  EXPECT_NE(d.find("backbone"), std::string::npos);
  EXPECT_NE(d.find("sidechain"), std::string::npos);
}

TEST(Hierarchy, PostOrderVisitsChildrenFirst) {
  const mol::HelixModel model = mol::build_helix(2);
  Hierarchy h = build_helix_hierarchy(model);
  std::vector<const HierNode*> order;
  h.for_each_post_order([&](HierNode& n) { order.push_back(&n); });
  // Root must come last.
  EXPECT_EQ(order.back(), &h.root());
  // Every node must appear after all of its children.
  for (std::size_t i = 0; i < order.size(); ++i) {
    for (const auto& child : order[i]->children) {
      const auto child_pos =
          std::find(order.begin(), order.end(), child.get());
      EXPECT_LT(child_pos - order.begin(), static_cast<std::ptrdiff_t>(i));
    }
  }
}

}  // namespace
}  // namespace phmse::core
