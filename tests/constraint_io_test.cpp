#include <gtest/gtest.h>

#include <sstream>

#include "constraints/helix_gen.hpp"
#include "constraints/io.hpp"
#include "molecule/rna_helix.hpp"
#include "support/check.hpp"

namespace phmse::cons {
namespace {

TEST(ConstraintIo, ParsesEveryKind) {
  std::stringstream ss(R"(
# header comment
distance 0 1 2.5 0.1
angle 0 1 2 1.5708 0.02 6
torsion 0 1 2 3 -0.5 0.08 7
position 2 y 4.25 0.3

distance 1 3 7.0 0.5 5   # trailing comment
)");
  const ConstraintSet set = read_constraints(ss, 4);
  ASSERT_EQ(set.size(), 5);

  EXPECT_EQ(set[0].kind, Kind::kDistance);
  EXPECT_DOUBLE_EQ(set[0].observed, 2.5);
  EXPECT_DOUBLE_EQ(set[0].variance, 0.01);
  EXPECT_EQ(set[0].category, 0);

  EXPECT_EQ(set[1].kind, Kind::kAngle);
  EXPECT_EQ(set[1].category, 6);

  EXPECT_EQ(set[2].kind, Kind::kTorsion);
  EXPECT_EQ(set[2].atoms[3], 3);

  EXPECT_EQ(set[3].kind, Kind::kPosition);
  EXPECT_EQ(set[3].axis, 1);
  EXPECT_DOUBLE_EQ(set[3].observed, 4.25);

  EXPECT_EQ(set[4].category, 5);
}

TEST(ConstraintIo, RoundTripsThroughText) {
  const mol::HelixModel model = mol::build_helix(1);
  HelixNoise noise;
  noise.anchor_first_pair = true;
  noise.include_chemistry_angles = true;
  const ConstraintSet original = generate_helix_constraints(model, noise);

  std::stringstream ss;
  write_constraints(ss, original, "round trip");
  const ConstraintSet back = read_constraints(ss, model.num_atoms());

  ASSERT_EQ(back.size(), original.size());
  for (Index i = 0; i < back.size(); ++i) {
    EXPECT_EQ(back[i].kind, original[i].kind);
    EXPECT_EQ(back[i].atoms, original[i].atoms);
    EXPECT_EQ(back[i].axis, original[i].axis);
    EXPECT_EQ(back[i].category, original[i].category);
    EXPECT_NEAR(back[i].observed, original[i].observed, 1e-9);
    EXPECT_NEAR(back[i].variance, original[i].variance, 1e-12);
  }
}

TEST(ConstraintIo, RejectsUnknownKind) {
  std::stringstream ss("wiggle 0 1 2.0 0.1\n");
  EXPECT_THROW(read_constraints(ss), phmse::Error);
}

TEST(ConstraintIo, RejectsBadArity) {
  std::stringstream ss("distance 0 2.0 0.1\n");
  EXPECT_THROW(read_constraints(ss), phmse::Error);
}

TEST(ConstraintIo, RejectsOutOfRangeAtom) {
  std::stringstream ss("distance 0 9 2.0 0.1\n");
  EXPECT_THROW(read_constraints(ss, 4), phmse::Error);
  // Without a bound the same line parses.
  std::stringstream ss2("distance 0 9 2.0 0.1\n");
  EXPECT_EQ(read_constraints(ss2, -1).size(), 1);
}

TEST(ConstraintIo, RejectsNonPositiveSigma) {
  std::stringstream ss("distance 0 1 2.0 0.0\n");
  EXPECT_THROW(read_constraints(ss, 4), phmse::Error);
}

TEST(ConstraintIo, RejectsNonFiniteObservedValue) {
  // std::stod parses "nan"/"inf" happily; the reader must not let either
  // through — a non-finite observation would poison the solve far from the
  // file that caused it.
  for (const char* bad : {"nan", "-nan", "inf", "-inf", "NAN", "Infinity"}) {
    std::stringstream ss(std::string("distance 0 1 ") + bad + " 0.1\n");
    EXPECT_THROW(read_constraints(ss, 4), phmse::Error)
        << "observed value '" << bad << "' was accepted";
  }
}

TEST(ConstraintIo, RejectsNonFiniteOrNonPositiveSigma) {
  for (const char* bad : {"nan", "inf", "0", "-0.5", "1e-300", "1e300"}) {
    // 1e-300 squares to a variance that underflows to subnormal-then-zero
    // territory; 1e300 squares to overflow.  Both are rejected up front.
    std::stringstream ss(std::string("distance 0 1 2.0 ") + bad + "\n");
    EXPECT_THROW(read_constraints(ss, 4), phmse::Error)
        << "sigma '" << bad << "' was accepted";
  }
}

TEST(ConstraintIo, RejectsNonFiniteOrOutOfRangeCategory) {
  // The optional trailing category is cast to int; a non-finite or
  // out-of-range double would make that cast undefined behavior (seen in
  // the wild as category -2147483648).
  for (const char* bad : {"nan", "inf", "-inf", "1e300", "3e9", "-3e9"}) {
    std::stringstream ss(std::string("distance 0 1 2.0 0.1 ") + bad + "\n");
    EXPECT_THROW(read_constraints(ss, 4), phmse::Error)
        << "category '" << bad << "' was accepted";
  }
  std::stringstream ok("distance 0 1 2.0 0.1 5\n");
  EXPECT_EQ(read_constraints(ok, 4).all()[0].category, 5);
}

TEST(ConstraintIo, NonFiniteRejectionMentionsLineNumber) {
  std::stringstream ss("distance 0 1 2.0 0.1\nangle 0 1 2 nan 0.1\n");
  try {
    read_constraints(ss, 4);
    FAIL() << "expected throw";
  } catch (const phmse::Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 2"), std::string::npos) << what;
    EXPECT_NE(what.find("finite"), std::string::npos) << what;
  }
}

TEST(ConstraintIo, RejectionRoundTrip) {
  // A set written by write_constraints always reads back (the writer can
  // only emit finite values), and hand-corrupting the text afterwards is
  // caught on the way back in.
  ConstraintSet set;
  Constraint c;
  c.kind = Kind::kDistance;
  c.atoms = {0, 1, 0, 0};
  c.observed = 2.5;
  c.variance = 0.01;
  set.add(c);

  std::stringstream out;
  write_constraints(out, set, "rejection round trip");
  std::stringstream back(out.str());
  EXPECT_EQ(read_constraints(back, 4).size(), 1);

  std::string corrupted = out.str();
  const std::size_t pos = corrupted.find("2.5");
  ASSERT_NE(pos, std::string::npos);
  corrupted.replace(pos, 3, "inf");
  std::stringstream bad(corrupted);
  EXPECT_THROW(read_constraints(bad, 4), phmse::Error);
}

TEST(ConstraintIo, RejectsBadAxis) {
  std::stringstream ss("position 0 w 1.0 0.1\n");
  EXPECT_THROW(read_constraints(ss, 4), phmse::Error);
}

TEST(ConstraintIo, ErrorMentionsLineNumber) {
  std::stringstream ss("distance 0 1 2.0 0.1\nbogus line here\n");
  try {
    read_constraints(ss, 4);
    FAIL() << "expected throw";
  } catch (const phmse::Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(ConstraintIo, AcceptsNumericAxis) {
  std::stringstream ss("position 0 2 1.0 0.1\n");
  const ConstraintSet set = read_constraints(ss, 4);
  EXPECT_EQ(set[0].axis, 2);
}

}  // namespace
}  // namespace phmse::cons
