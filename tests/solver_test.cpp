#include <gtest/gtest.h>

#include "constraints/helix_gen.hpp"
#include "estimation/solver.hpp"
#include "molecule/rna_helix.hpp"
#include "support/rng.hpp"

namespace phmse::est {
namespace {

TEST(FlatSolver, SingleCycleRuns) {
  const mol::HelixModel model = mol::build_helix(1);
  const cons::ConstraintSet set = cons::generate_helix_constraints(model);

  Rng rng(1);
  NodeState st = make_initial_state(model.topology, 0, model.num_atoms(),
                                    5.0, 0.6, rng);
  par::SerialContext ctx;
  SolveOptions opts;
  opts.max_cycles = 1;
  const SolveResult res = solve_flat(ctx, st, set, opts);
  EXPECT_EQ(res.cycles, 1);
  EXPECT_GT(res.last_cycle_delta, 0.0);
  EXPECT_FALSE(res.converged);
}

TEST(FlatSolver, CyclesReduceConstraintResidual) {
  const mol::HelixModel model = mol::build_helix(1);
  const cons::ConstraintSet set = cons::generate_helix_constraints(model);

  Rng rng(2);
  NodeState st = make_initial_state(model.topology, 0, model.num_atoms(),
                                    5.0, 0.6, rng);
  const double rms_before =
      cons::rms_residual(set, model.topology, st.x);

  par::SerialContext ctx;
  SolveOptions opts;
  opts.max_cycles = 8;
  solve_flat(ctx, st, set, opts);
  const double rms_after = cons::rms_residual(set, model.topology, st.x);
  EXPECT_LT(rms_after, 0.3 * rms_before);
}

TEST(FlatSolver, CyclesImproveRmsdToTruth) {
  const mol::HelixModel model = mol::build_helix(1);
  cons::HelixNoise noise;
  noise.anchor_first_pair = true;  // pin the frame for a meaningful RMSD
  const cons::ConstraintSet set =
      cons::generate_helix_constraints(model, noise);

  Rng rng(3);
  NodeState st = make_initial_state(model.topology, 0, model.num_atoms(),
                                    0.5, 0.6, rng);
  const double rmsd_before = model.topology.rmsd_to_truth(st.x);
  par::SerialContext ctx;
  SolveOptions opts;
  opts.max_cycles = 8;
  opts.prior_sigma = 0.5;
  solve_flat(ctx, st, set, opts);
  EXPECT_LT(model.topology.rmsd_to_truth(st.x), rmsd_before);
}

TEST(FlatSolver, ToleranceStopsEarly) {
  const mol::HelixModel model = mol::build_helix(1);
  cons::HelixNoise noise;
  noise.anchor_first_pair = true;
  const cons::ConstraintSet set =
      cons::generate_helix_constraints(model, noise);

  Rng rng(4);
  NodeState st = make_initial_state(model.topology, 0, model.num_atoms(),
                                    0.5, 0.1, rng);
  par::SerialContext ctx;
  SolveOptions opts;
  opts.max_cycles = 50;
  opts.prior_sigma = 0.5;
  opts.tolerance = 0.05;  // the gauge modes random-walk at ~0.01 A / cycle
  const SolveResult res = solve_flat(ctx, st, set, opts);
  EXPECT_TRUE(res.converged);
  EXPECT_LT(res.cycles, 50);
}

TEST(FlatSolver, BatchSizeDoesNotChangeFixedPointMuch) {
  // Different batch sizes traverse different linearization points but must
  // land at comparable data fits.
  const mol::HelixModel model = mol::build_helix(1);
  const cons::ConstraintSet set = cons::generate_helix_constraints(model);

  auto solve_with_batch = [&](Index m) {
    Rng rng(5);
    NodeState st = make_initial_state(model.topology, 0, model.num_atoms(),
                                      0.5, 0.3, rng);
    par::SerialContext ctx;
    SolveOptions opts;
    opts.max_cycles = 10;
    opts.prior_sigma = 0.5;
    opts.batch_size = m;
    solve_flat(ctx, st, set, opts);
    return cons::rms_residual(set, model.topology, st.x);
  };
  const double rms_1 = solve_with_batch(1);
  const double rms_16 = solve_with_batch(16);
  const double rms_64 = solve_with_batch(64);
  EXPECT_NEAR(rms_1, rms_16, 0.05);
  EXPECT_NEAR(rms_16, rms_64, 0.05);
}

TEST(FlatSolver, RejectsConstraintsOutsideState) {
  const mol::HelixModel model = mol::build_helix(2);
  const cons::ConstraintSet set = cons::generate_helix_constraints(model);
  Rng rng(6);
  // State covers only the first base pair's atoms.
  NodeState st = make_initial_state(model.topology, 0, 43, 5.0, 0.1, rng);
  par::SerialContext ctx;
  EXPECT_THROW(solve_flat(ctx, st, set, SolveOptions{}), phmse::Error);
}

TEST(FlatSolver, ProfileCategoriesPopulated) {
  const mol::HelixModel model = mol::build_helix(1);
  const cons::ConstraintSet set = cons::generate_helix_constraints(model);
  Rng rng(7);
  NodeState st = make_initial_state(model.topology, 0, model.num_atoms(),
                                    5.0, 0.3, rng);
  par::SerialContext ctx;
  solve_flat(ctx, st, set, SolveOptions{});
  using perf::Category;
  for (Category c : {Category::kDenseSparse, Category::kCholesky,
                     Category::kSystemSolve, Category::kMatMat,
                     Category::kMatVec, Category::kVector}) {
    EXPECT_GT(ctx.profile().time(c), 0.0)
        << perf::category_name(c);
  }
}

}  // namespace
}  // namespace phmse::est
